/**
 * @file
 * Tests for the text assembler: syntax coverage, label handling,
 * error reporting, and an end-to-end run of assembled code.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"

namespace {

using namespace csb;
using isa::assemble;
using isa::Opcode;
using isa::Program;

TEST(Assembler, BasicAluAndComments)
{
    Program p = assemble(R"(
        ; a comment
        li   %r1, 10        # another comment
        li   %r2, 0x20
        add  %r3, %r1, %r2
        addi %r4, %r3, -5
        halt
    )");
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p.at(0).op, Opcode::Li);
    EXPECT_EQ(p.at(1).imm, 0x20);
    EXPECT_EQ(p.at(2).op, Opcode::Add);
    EXPECT_EQ(p.at(3).op, Opcode::Addi);
    EXPECT_EQ(p.at(3).imm, -5);
}

TEST(Assembler, ImmediateFormSelectedAutomatically)
{
    Program p = assemble(R"(
        add %r1, %r2, %r3
        add %r1, %r2, 7
        halt
    )");
    EXPECT_EQ(p.at(0).op, Opcode::Add);
    EXPECT_EQ(p.at(1).op, Opcode::Addi);
    EXPECT_EQ(p.at(1).imm, 7);
}

TEST(Assembler, MemoryOperands)
{
    Program p = assemble(R"(
        ldd  %r2, [%r1+8]
        std  %r2, [%r1]
        stb  %r3, [%r1-4]
        swap [%r1+16], %r5
        halt
    )");
    EXPECT_EQ(p.at(0).op, Opcode::Ldd);
    EXPECT_EQ(p.at(0).imm, 8);
    EXPECT_EQ(p.at(1).imm, 0);
    EXPECT_EQ(p.at(2).imm, -4);
    EXPECT_EQ(p.at(3).op, Opcode::Swap);
    EXPECT_EQ(p.at(3).imm, 16);
    EXPECT_EQ(p.at(3).rd, isa::ir(5));
}

TEST(Assembler, LabelsForwardAndBackward)
{
    Program p = assemble(R"(
        start:  addi %r1, %r1, 1
                blt  %r1, %r2, start
                jmp  end
                nop
        end:    halt
    )");
    EXPECT_EQ(p.at(1).target, 0);
    EXPECT_EQ(p.at(2).target, 4);
}

TEST(Assembler, LabelSharingLineWithInstruction)
{
    Program p = assemble(R"(
        loop: addi %r1, %r1, 1
        bne %r1, %r2, loop
        halt
    )");
    EXPECT_EQ(p.at(1).target, 0);
}

TEST(Assembler, EquConstants)
{
    Program p = assemble(R"(
        .equ DEVICE 0x22000000
        .equ COUNT 8
        li  %r1, DEVICE
        li  %r9, COUNT
        halt
    )");
    EXPECT_EQ(p.at(0).imm, 0x22000000);
    EXPECT_EQ(p.at(1).imm, 8);
}

TEST(Assembler, FpInstructions)
{
    Program p = assemble(R"(
        mvi2f %f0, %r1
        fitod %f1, %f0
        fadd  %f2, %f1, %f1
        mvf2i %r2, %f2
        stf   %f2, [%r3+0]
        halt
    )");
    EXPECT_EQ(p.at(0).op, Opcode::Mvi2f);
    EXPECT_EQ(p.at(2).op, Opcode::Fadd);
    EXPECT_EQ(p.at(4).op, Opcode::Stf);
}

TEST(Assembler, MarkAndMembar)
{
    Program p = assemble(R"(
        mark 0
        membar
        mark 1
        halt
    )");
    EXPECT_EQ(p.at(0).op, Opcode::Mark);
    EXPECT_EQ(p.at(1).op, Opcode::Membar);
    EXPECT_EQ(p.at(2).imm, 1);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("frobnicate %r1\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("add %r1, %r2\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("ldd %r1, %r2\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("li %r99, 0\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("jmp nowhere\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("li %r1, 0xZZ\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("x: nop\nx: nop\nhalt\n"), FatalError);
    EXPECT_THROW(assemble("li %r1, UNDEFINED\nhalt\n"), FatalError);
}

TEST(Assembler, EndToEndCsbSequence)
{
    // The paper's section 3.2 listing, in assembler text, runs on a
    // full system and produces exactly one line burst.
    core::SystemConfig cfg;
    cfg.normalize();
    core::System system(cfg);

    Program p = assemble(R"(
        .equ CSB_SPACE 0x22000000
                li   %r1, CSB_SPACE
                li   %r2, 0x1234
                li   %r3, 0x5678
        retry:  li   %r9, 8          ; expected value
                std  %r2, [%r1]      ; store 8 dwords in any order
                std  %r3, [%r1+40]
                std  %r2, [%r1+8]
                std  %r3, [%r1+16]
                std  %r2, [%r1+24]
                std  %r3, [%r1+32]
                std  %r2, [%r1+48]
                std  %r3, [%r1+56]
                swap [%r1], %r9      ; conditional flush
                li   %r10, 8
                bne  %r9, %r10, retry ; retry on failure
                halt
    )");
    system.run(p);
    ASSERT_EQ(system.device().writeLog().size(), 1u);
    EXPECT_EQ(system.device().writeLog()[0].data.size(), 64u);
    EXPECT_EQ(system.csb()->flushesSucceeded.value(), 1.0);
}

TEST(Assembler, RoundTripThroughDisassembler)
{
    // Disassembler output mnemonics must all be accepted back.
    Program original = assemble(R"(
        li %r1, 5
        add %r2, %r1, %r1
        std %r2, [%r1+8]
        membar
        halt
    )");
    // Spot-check the listing contains re-assemblable text.
    std::string listing = original.disassemble();
    EXPECT_NE(listing.find("std %r2, [%r1+8]"), std::string::npos);
}

} // namespace
