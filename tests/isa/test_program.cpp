/**
 * @file
 * Unit tests for the mini-ISA: instruction classification, the
 * program builder, label resolution and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/program.hh"
#include "sim/logging.hh"

namespace {

using namespace csb::isa;
using csb::FatalError;

TEST(Instruction, Classification)
{
    EXPECT_EQ(classOf(Opcode::Add), InstClass::IntAlu);
    EXPECT_EQ(classOf(Opcode::Li), InstClass::IntAlu);
    EXPECT_EQ(classOf(Opcode::Fadd), InstClass::FpAlu);
    EXPECT_EQ(classOf(Opcode::Ldd), InstClass::Load);
    EXPECT_EQ(classOf(Opcode::Std), InstClass::Store);
    EXPECT_EQ(classOf(Opcode::Swap), InstClass::Swap);
    EXPECT_EQ(classOf(Opcode::Membar), InstClass::Membar);
    EXPECT_EQ(classOf(Opcode::Bne), InstClass::Branch);
    EXPECT_EQ(classOf(Opcode::Jmp), InstClass::Branch);
    EXPECT_EQ(classOf(Opcode::Halt), InstClass::Halt);
}

TEST(Instruction, AccessSizes)
{
    EXPECT_EQ(accessSize(Opcode::Ldb), 1u);
    EXPECT_EQ(accessSize(Opcode::Stw), 4u);
    EXPECT_EQ(accessSize(Opcode::Std), 8u);
    EXPECT_EQ(accessSize(Opcode::Ldf), 8u);
    EXPECT_EQ(accessSize(Opcode::Swap), 8u);
    EXPECT_EQ(accessSize(Opcode::Add), 0u);
}

TEST(Instruction, LoadStorePredicates)
{
    EXPECT_TRUE(isLoad(Opcode::Ldd));
    EXPECT_TRUE(isLoad(Opcode::Swap));
    EXPECT_FALSE(isLoad(Opcode::Std));
    EXPECT_TRUE(isStore(Opcode::Std));
    EXPECT_TRUE(isStore(Opcode::Swap));
    EXPECT_FALSE(isStore(Opcode::Ldd));
}

TEST(RegId, Helpers)
{
    EXPECT_TRUE(ir(0).isZero());
    EXPECT_FALSE(ir(1).isZero());
    EXPECT_FALSE(fr(0).isZero());
    EXPECT_TRUE(ir(5).isInt());
    EXPECT_TRUE(fr(5).isFp());
    EXPECT_FALSE(noReg.valid());
    EXPECT_EQ(ir(3).toString(), "%r3");
    EXPECT_EQ(fr(7).toString(), "%f7");
}

TEST(Program, BackwardLabel)
{
    Program p;
    Label loop = p.newLabel();
    p.li(ir(1), 0);
    p.bind(loop);
    p.addi(ir(1), ir(1), 1);
    p.blt(ir(1), ir(2), loop);
    p.halt();
    p.finalize();
    EXPECT_EQ(p.at(2).target, 1);
}

TEST(Program, ForwardLabel)
{
    Program p;
    Label skip = p.newLabel();
    p.jmp(skip);
    p.nop();
    p.bind(skip);
    p.halt();
    p.finalize();
    EXPECT_EQ(p.at(0).target, 2);
}

TEST(Program, UnboundLabelIsFatal)
{
    Program p;
    Label never = p.newLabel();
    p.jmp(never);
    p.halt();
    EXPECT_THROW(p.finalize(), FatalError);
}

TEST(Program, MissingHaltAppended)
{
    Program p;
    p.nop();
    p.finalize();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).op, Opcode::Halt);
}

TEST(Program, CannotAppendAfterFinalize)
{
    Program p;
    p.halt();
    p.finalize();
    EXPECT_DEATH(p.nop(), "finalized");
}

TEST(Program, DisassemblyMentionsEveryMnemonic)
{
    Program p;
    p.li(ir(1), 5);
    p.std_(ir(1), ir(2), 8);
    p.swap(ir(3), ir(2), 0);
    p.membar();
    p.halt();
    p.finalize();
    std::string listing = p.disassemble();
    EXPECT_NE(listing.find("li"), std::string::npos);
    EXPECT_NE(listing.find("std %r1, [%r2+8]"), std::string::npos);
    EXPECT_NE(listing.find("swap [%r2+0], %r3"), std::string::npos);
    EXPECT_NE(listing.find("membar"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

TEST(Program, EveryOpcodeHasAMnemonic)
{
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        std::string name = mnemonic(static_cast<Opcode>(op));
        EXPECT_NE(name, "???") << "opcode " << op;
        EXPECT_FALSE(name.empty());
    }
}

TEST(Program, EveryOpcodeClassifies)
{
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        // classOf panics on unknown opcodes; surviving the call is
        // the assertion.
        (void)classOf(static_cast<Opcode>(op));
    }
    SUCCEED();
}

} // namespace
