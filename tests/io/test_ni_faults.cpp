/**
 * @file
 * Reliable-wire protocol tests: sequence numbers, checksums, ack +
 * timeout retransmission, duplicate suppression, and exactly-once
 * end-to-end delivery under injected wire faults.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>

#include "bus/system_bus.hh"
#include "io/network_interface.hh"
#include "mem/main_memory.hh"
#include "mem/physical_memory.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using io::NetworkInterface;
using io::NetworkInterfaceParams;
using io::NiMap;

constexpr Addr kNiBase = 0x100000;

class NiFaultFixture : public ::testing::Test
{
  protected:
    void
    make(NetworkInterfaceParams params = {},
         const sim::FaultPlan *plan = nullptr)
    {
        bus::BusParams bus_params;
        bus_params.widthBytes = 8;
        bus_params.ratio = 6;
        bus_params.maxBurstBytes = 64;
        bus = std::make_unique<bus::SystemBus>(sim, bus_params);
        memory = std::make_unique<mem::MainMemory>(storage, 60);
        bus->addTarget(0, 0x10000, memory.get());
        ni = std::make_unique<NetworkInterface>(sim, *bus, kNiBase,
                                                params);
        bus->addTarget(kNiBase, NiMap::windowSize, ni.get());
        if (plan) {
            injector = std::make_unique<sim::FaultInjector>(*plan);
            bus->setFaultInjector(injector.get());
            ni->setFaultInjector(injector.get());
        }
    }

    void
    sendPio(unsigned bytes, std::uint8_t fill)
    {
        std::vector<std::uint8_t> payload(bytes, fill);
        for (unsigned off = 0; off < bytes; off += 8) {
            unsigned n = std::min(8u, bytes - off);
            bus::BusTransaction txn;
            txn.kind = bus::TxnKind::Write;
            txn.addr = kNiBase + NiMap::pioBase + off;
            txn.size = n;
            txn.data.assign(payload.begin() + off,
                            payload.begin() + off + n);
            ni->write(txn, sim.curTick());
        }
        bus::BusTransaction bell;
        bell.kind = bus::TxnKind::Write;
        bell.addr = kNiBase + NiMap::doorbell;
        bell.size = 8;
        bell.data.resize(8);
        std::uint64_t length = bytes;
        std::memcpy(bell.data.data(), &length, 8);
        ni->write(bell, sim.curTick());
    }

    void
    runUntilIdle()
    {
        sim.run([&] { return ni->idle() && bus->quiescent(); }, 5000000);
        ASSERT_TRUE(ni->idle());
    }

    /** Every message delivered exactly once, payloads intact. */
    void
    expectExactlyOnce(unsigned messages, unsigned bytes)
    {
        ASSERT_EQ(ni->delivered().size(), messages);
        std::set<std::uint64_t> seqs;
        for (const io::DeliveredMessage &msg : ni->delivered()) {
            EXPECT_TRUE(seqs.insert(msg.seq).second)
                << "sequence " << msg.seq << " delivered twice";
            ASSERT_EQ(msg.payload.size(), bytes);
        }
    }

    sim::Simulator sim;
    mem::PhysicalMemory storage;
    std::unique_ptr<bus::SystemBus> bus;
    std::unique_ptr<mem::MainMemory> memory;
    std::unique_ptr<NetworkInterface> ni;
    std::unique_ptr<sim::FaultInjector> injector;
};

TEST_F(NiFaultFixture, ReliableModeWithoutFaultsDeliversCleanly)
{
    NetworkInterfaceParams params;
    params.reliableWire = true;
    make(params);
    for (unsigned i = 0; i < 4; ++i)
        sendPio(32, static_cast<std::uint8_t>(i + 1));
    runUntilIdle();
    expectExactlyOnce(4, 32);
    EXPECT_EQ(ni->retransmits.value(), 0.0);
    EXPECT_EQ(ni->duplicatesSuppressed.value(), 0.0);
    EXPECT_EQ(ni->checksumDiscards.value(), 0.0);
    // Payload contents survive the protocol framing.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(ni->delivered()[i].payload[0], i + 1);
}

TEST_F(NiFaultFixture, DroppedPacketsAreRetransmitted)
{
    sim::FaultPlan plan;
    plan.seed = 3;
    plan.wireDropRate = 0.5;
    make({}, &plan);
    ASSERT_TRUE(ni->reliableMode())
        << "wire faults must force the reliable protocol on";
    for (unsigned i = 0; i < 10; ++i)
        sendPio(24, static_cast<std::uint8_t>(i + 1));
    runUntilIdle();
    expectExactlyOnce(10, 24);
    EXPECT_GT(ni->retransmits.value(), 0.0)
        << "a 50% drop rate over 10 messages must lose at least one";
    EXPECT_EQ(injector->wireDrops.value() + ni->delivered().size() +
                  ni->duplicatesSuppressed.value() +
                  ni->checksumDiscards.value(),
              ni->retransmits.value() + 10)
        << "every transmission is dropped, delivered, suppressed or "
           "discarded";
}

TEST_F(NiFaultFixture, CorruptedPacketsDiscardedAndRecovered)
{
    sim::FaultPlan plan;
    plan.seed = 8;
    plan.wireCorruptRate = 0.5;
    make({}, &plan);
    for (unsigned i = 0; i < 10; ++i)
        sendPio(40, static_cast<std::uint8_t>(0x20 + i));
    runUntilIdle();
    expectExactlyOnce(10, 40);
    EXPECT_GT(ni->checksumDiscards.value(), 0.0);
    // Checksum protection: no delivered payload carries the flipped
    // byte of a corrupted transmission.  Retransmission may reorder
    // deliveries, so key the expected fill off the sequence number.
    for (const io::DeliveredMessage &msg : ni->delivered()) {
        for (std::uint8_t byte : msg.payload)
            EXPECT_EQ(byte, 0x20 + (msg.seq - 1));
    }
}

TEST_F(NiFaultFixture, LostAcksCauseDuplicatesWhichAreSuppressed)
{
    sim::FaultPlan plan;
    plan.seed = 21;
    plan.ackDropRate = 0.6;
    make({}, &plan);
    for (unsigned i = 0; i < 10; ++i)
        sendPio(16, static_cast<std::uint8_t>(i + 1));
    runUntilIdle();
    expectExactlyOnce(10, 16);
    EXPECT_GT(ni->duplicatesSuppressed.value(), 0.0)
        << "a lost ack forces a retransmission of a delivered packet";
    EXPECT_GT(ni->retransmits.value(), 0.0);
}

TEST_F(NiFaultFixture, AllWireFaultsTogetherStillExactlyOnce)
{
    sim::FaultPlan plan;
    plan.seed = 77;
    plan.wireDropRate = 0.2;
    plan.wireCorruptRate = 0.2;
    plan.ackDropRate = 0.2;
    make({}, &plan);
    for (unsigned i = 0; i < 20; ++i)
        sendPio(8 + (i % 5) * 8, static_cast<std::uint8_t>(i + 1));
    sim.run([&] { return ni->idle() && bus->quiescent(); }, 5000000);
    ASSERT_TRUE(ni->idle());
    ASSERT_EQ(ni->delivered().size(), 20u);
    std::set<std::uint64_t> seqs;
    for (const io::DeliveredMessage &msg : ni->delivered())
        EXPECT_TRUE(seqs.insert(msg.seq).second);
}

TEST_F(NiFaultFixture, DmaMessageSurvivesWireAndBusFaults)
{
    // Payload fetched by DMA over a NACKing bus, then sent across a
    // lossy wire: both recovery layers compose.
    sim::FaultPlan plan;
    plan.seed = 13;
    plan.busReadNackRate = 0.3;
    plan.wireDropRate = 0.3;
    make({}, &plan);
    std::vector<std::uint8_t> payload(192);
    for (unsigned i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
    storage.write(0x2000, payload.data(), payload.size());

    bus::BusTransaction txn;
    txn.kind = bus::TxnKind::Write;
    txn.addr = kNiBase + NiMap::descBase;
    txn.size = 8;
    txn.data.resize(8);
    std::uint64_t desc = io::packDescriptor(
        0x2000, static_cast<std::uint16_t>(payload.size()));
    std::memcpy(txn.data.data(), &desc, 8);
    ni->write(txn, sim.curTick());
    runUntilIdle();

    ASSERT_EQ(ni->delivered().size(), 1u);
    EXPECT_TRUE(ni->delivered()[0].viaDma);
    EXPECT_EQ(ni->delivered()[0].payload, payload)
        << "NACKed DMA reads must re-fetch into the right offsets";
    EXPECT_GT(ni->busNacks.value(), 0.0);
    EXPECT_EQ(ni->busNacks.value(), ni->busRetries.value());
}

TEST_F(NiFaultFixture, LegacyModeKeepsSequencesButNoProtocolTraffic)
{
    make();
    EXPECT_FALSE(ni->reliableMode());
    sendPio(32, 0xab);
    runUntilIdle();
    ASSERT_EQ(ni->delivered().size(), 1u);
    EXPECT_EQ(ni->delivered()[0].seq, 1u)
        << "sequence numbers are assigned in legacy mode too";
    EXPECT_EQ(ni->retransmits.value(), 0.0);
    EXPECT_EQ(ni->duplicatesSuppressed.value(), 0.0);
}

} // namespace
