/**
 * @file
 * Unit tests for the generic burst-capable device.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "io/burst_device.hh"
#include "sim/logging.hh"

namespace {

using namespace csb;
using io::BurstDevice;

bus::BusTransaction
makeWrite(Addr addr, unsigned size, std::uint8_t fill = 0xaa)
{
    bus::BusTransaction txn;
    txn.kind = bus::TxnKind::Write;
    txn.addr = addr;
    txn.size = size;
    txn.data.assign(size, fill);
    return txn;
}

TEST(BurstDevice, RecordsWritesWithTimestamps)
{
    BurstDevice device;
    device.write(makeWrite(0x100, 8), 42);
    device.write(makeWrite(0x200, 64), 99);
    ASSERT_EQ(device.writeLog().size(), 2u);
    EXPECT_EQ(device.writeLog()[0].completionTick, 42u);
    EXPECT_EQ(device.writeLog()[1].completionTick, 99u);
    EXPECT_EQ(device.writesReceived.value(), 2.0);
    EXPECT_EQ(device.bytesReceived.value(), 72.0);
}

TEST(BurstDevice, NonBurstCapableDeviceRejectsLines)
{
    // Section 3.3: the CSB needs the target to accept burst writes; a
    // device that cannot surfaces it loudly.
    BurstDevice device(12, /*max_accept=*/8);
    device.write(makeWrite(0x0, 8), 1); // fine
    EXPECT_THROW(device.write(makeWrite(0x40, 64), 2), FatalError);
}

TEST(BurstDevice, RegistersReadBack)
{
    BurstDevice device;
    device.setRegister(0x100, 0x1234567890ULL);
    bus::BusTransaction txn;
    txn.kind = bus::TxnKind::ReadReq;
    txn.addr = 0x100;
    txn.size = 8;
    std::vector<std::uint8_t> data;
    Tick latency = device.read(txn, 0, data);
    EXPECT_EQ(latency, 12u);
    std::uint64_t value = 0;
    std::memcpy(&value, data.data(), 8);
    EXPECT_EQ(value, 0x1234567890ULL);
}

TEST(BurstDevice, RegisterUpdateOverwrites)
{
    BurstDevice device;
    device.setRegister(0x100, 1);
    device.setRegister(0x100, 2);
    bus::BusTransaction txn;
    txn.kind = bus::TxnKind::ReadReq;
    txn.addr = 0x100;
    txn.size = 8;
    std::vector<std::uint8_t> data;
    device.read(txn, 0, data);
    std::uint64_t value = 0;
    std::memcpy(&value, data.data(), 8);
    EXPECT_EQ(value, 2u);
}

TEST(BurstDevice, UnsetRegistersReadZero)
{
    BurstDevice device;
    bus::BusTransaction txn;
    txn.kind = bus::TxnKind::ReadReq;
    txn.addr = 0x500;
    txn.size = 8;
    std::vector<std::uint8_t> data;
    device.read(txn, 0, data);
    for (std::uint8_t byte : data)
        EXPECT_EQ(byte, 0);
}

TEST(BurstDevice, ClearLogResets)
{
    BurstDevice device;
    device.write(makeWrite(0x0, 8), 1);
    device.clearLog();
    EXPECT_TRUE(device.writeLog().empty());
}

} // namespace
