/**
 * @file
 * Unit tests for the network interface: PIO path, doorbell, DMA
 * descriptors, the wire model, and pipelined DMA reads.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "bus/system_bus.hh"
#include "io/network_interface.hh"
#include "mem/main_memory.hh"
#include "mem/physical_memory.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using io::NetworkInterface;
using io::NetworkInterfaceParams;
using io::NiMap;

constexpr Addr kNiBase = 0x100000;

class NiFixture : public ::testing::Test
{
  protected:
    void
    make(NetworkInterfaceParams params = {})
    {
        bus::BusParams bus_params;
        bus_params.widthBytes = 8;
        bus_params.ratio = 6;
        bus_params.maxBurstBytes = 64;
        bus = std::make_unique<bus::SystemBus>(sim, bus_params);
        memory = std::make_unique<mem::MainMemory>(storage, 60);
        bus->addTarget(0, 0x10000, memory.get());
        ni = std::make_unique<NetworkInterface>(sim, *bus, kNiBase,
                                                params);
        bus->addTarget(kNiBase, NiMap::windowSize, ni.get());
    }

    /** Deliver a write transaction directly to the NI window. */
    void
    niWrite(Addr offset, const std::vector<std::uint8_t> &data)
    {
        bus::BusTransaction txn;
        txn.kind = bus::TxnKind::Write;
        txn.addr = kNiBase + offset;
        txn.size = static_cast<unsigned>(data.size());
        txn.data = data;
        ni->write(txn, sim.curTick());
    }

    void
    niWriteDword(Addr offset, std::uint64_t value)
    {
        std::vector<std::uint8_t> data(8);
        std::memcpy(data.data(), &value, 8);
        niWrite(offset, data);
    }

    void
    runUntilIdle()
    {
        sim.run([&] { return ni->idle() && bus->quiescent(); }, 1000000);
        ASSERT_TRUE(ni->idle());
    }

    sim::Simulator sim;
    mem::PhysicalMemory storage;
    std::unique_ptr<bus::SystemBus> bus;
    std::unique_ptr<mem::MainMemory> memory;
    std::unique_ptr<NetworkInterface> ni;
};

TEST_F(NiFixture, PioMessageDelivered)
{
    make();
    std::vector<std::uint8_t> payload(16);
    for (unsigned i = 0; i < 16; ++i)
        payload[i] = static_cast<std::uint8_t>(i + 1);
    niWrite(NiMap::pioBase, {payload.begin(), payload.begin() + 8});
    niWrite(NiMap::pioBase + 8, {payload.begin() + 8, payload.end()});
    niWriteDword(NiMap::doorbell, 16);
    runUntilIdle();

    ASSERT_EQ(ni->delivered().size(), 1u);
    EXPECT_EQ(ni->delivered()[0].payload, payload);
    EXPECT_FALSE(ni->delivered()[0].viaDma);
    EXPECT_EQ(ni->pioMessages.value(), 1.0);
}

TEST_F(NiFixture, CsbPaddingTrimmedByDoorbellLength)
{
    make();
    // A 64-byte line burst whose tail is CSB zero padding.
    std::vector<std::uint8_t> line(64, 0);
    for (unsigned i = 0; i < 24; ++i)
        line[i] = static_cast<std::uint8_t>(i + 1);
    niWrite(NiMap::pioBase, line);
    niWriteDword(NiMap::doorbell, 24);
    runUntilIdle();

    ASSERT_EQ(ni->delivered().size(), 1u);
    ASSERT_EQ(ni->delivered()[0].payload.size(), 24u);
    EXPECT_EQ(ni->delivered()[0].payload[23], 24);
}

TEST_F(NiFixture, DescriptorKicksDma)
{
    make();
    std::vector<std::uint8_t> payload(200);
    for (unsigned i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 3 + 1);
    storage.write(0x2000, payload.data(), payload.size());

    niWriteDword(NiMap::descBase, io::packDescriptor(0x2000, 200));
    runUntilIdle();

    ASSERT_EQ(ni->delivered().size(), 1u);
    EXPECT_TRUE(ni->delivered()[0].viaDma);
    EXPECT_EQ(ni->delivered()[0].payload, payload);
    EXPECT_EQ(ni->dmaMessages.value(), 1.0);
}

TEST_F(NiFixture, ZeroDescriptorsArePadding)
{
    make();
    // A 64-byte burst carrying two descriptors and six zero slots.
    std::vector<std::uint8_t> block(64, 0);
    std::uint64_t d0 = io::packDescriptor(0x2000, 8);
    std::uint64_t d1 = io::packDescriptor(0x2100, 8);
    std::memcpy(block.data(), &d0, 8);
    std::memcpy(block.data() + 24, &d1, 8);
    niWrite(NiMap::descBase, block);
    runUntilIdle();

    EXPECT_EQ(ni->descriptorsPushed.value(), 2.0);
    EXPECT_EQ(ni->delivered().size(), 2u);
}

TEST_F(NiFixture, DmaReadsArePipelined)
{
    NetworkInterfaceParams params;
    params.dmaMaxOutstanding = 4;
    make(params);
    storage.write(0x2000, std::vector<std::uint8_t>(512, 1).data(), 512);
    niWriteDword(NiMap::descBase, io::packDescriptor(0x2000, 512));
    runUntilIdle();

    // With 4 outstanding line reads, consecutive read-request address
    // cycles overlap the 60-tick memory latency: the whole 8-line
    // fetch must take far less than 8 serialized round trips.
    std::uint64_t first = UINT64_MAX;
    std::uint64_t last = 0;
    unsigned responses = 0;
    for (const auto &rec : bus->monitor().records()) {
        if (rec.kind == bus::TxnKind::ReadResp) {
            first = std::min(first, rec.firstDataCycle);
            last = std::max(last, rec.lastDataCycle);
            ++responses;
        }
    }
    ASSERT_EQ(responses, 8u);
    // Serialized: ~8 * (latency 10 cycles + 8 data) = ~144 cycles.
    // Pipelined: bounded by data cycles ~8*8 + latency ~10.
    EXPECT_LT(last - first, 100u);
}

TEST_F(NiFixture, WireSerializesMessages)
{
    NetworkInterfaceParams params;
    params.wireTicksPerByte = 2.0;
    params.wireLatency = 100;
    make(params);
    niWrite(NiMap::pioBase, std::vector<std::uint8_t>(8, 1));
    niWriteDword(NiMap::doorbell, 8);
    niWrite(NiMap::pioBase, std::vector<std::uint8_t>(8, 2));
    niWriteDword(NiMap::doorbell, 8);
    runUntilIdle();

    ASSERT_EQ(ni->delivered().size(), 2u);
    const auto &first = ni->delivered()[0];
    const auto &second = ni->delivered()[1];
    EXPECT_GE(second.sendTick, first.sendTick + 16)
        << "second message waits for the wire";
    EXPECT_EQ(first.deliverTick, first.sendTick + 100);
}

TEST_F(NiFixture, StatusReadCountsPendingWork)
{
    make();
    niWriteDword(NiMap::descBase, io::packDescriptor(0x2000, 64));
    bus::BusTransaction txn;
    txn.kind = bus::TxnKind::ReadReq;
    txn.addr = kNiBase;
    txn.size = 8;
    std::vector<std::uint8_t> data;
    ni->read(txn, sim.curTick(), data);
    std::uint64_t status = 0;
    std::memcpy(&status, data.data(), 8);
    EXPECT_EQ(status, 1u);
    runUntilIdle();
    ni->read(txn, sim.curTick(), data);
    std::memcpy(&status, data.data(), 8);
    EXPECT_EQ(status, 0u);
}

} // namespace
