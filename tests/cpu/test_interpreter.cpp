/**
 * @file
 * Unit tests for the sequential reference interpreter.
 */

#include <gtest/gtest.h>

#include "cpu/interpreter.hh"
#include "isa/program.hh"
#include "mem/physical_memory.hh"

namespace {

using namespace csb;
using cpu::ArchState;
using cpu::Interpreter;
using isa::ir;

TEST(Interpreter, AluAndControlFlow)
{
    isa::Program p;
    p.li(ir(1), 0);
    p.li(ir(2), 0);
    p.li(ir(3), 5);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    p.add_(ir(1), ir(1), ir(2));
    p.addi(ir(2), ir(2), 1);
    p.blt(ir(2), ir(3), loop);
    p.halt();
    p.finalize();

    mem::PhysicalMemory memory;
    Interpreter interp(p, memory);
    ArchState state = interp.run();
    EXPECT_TRUE(state.halted);
    EXPECT_EQ(state.intRegs[1], 10u);
    EXPECT_EQ(interp.instsExecuted(), 3u + 3 * 5 + 1);
}

TEST(Interpreter, MemoryAndSwap)
{
    isa::Program p;
    p.li(ir(1), 0x1000);
    p.li(ir(2), 42);
    p.std_(ir(2), ir(1), 0);
    p.li(ir(3), 7);
    p.swap(ir(3), ir(1), 0);
    p.ldd(ir(4), ir(1), 0);
    p.halt();
    p.finalize();

    mem::PhysicalMemory memory;
    ArchState state = Interpreter(p, memory).run();
    EXPECT_EQ(state.intRegs[3], 42u) << "swap returned the old value";
    EXPECT_EQ(state.intRegs[4], 7u) << "memory holds the swapped value";
}

TEST(Interpreter, MarksInCommitOrder)
{
    isa::Program p;
    p.mark(3);
    p.mark(1);
    p.mark(2);
    p.halt();
    p.finalize();
    mem::PhysicalMemory memory;
    Interpreter interp(p, memory);
    interp.run();
    EXPECT_EQ(interp.marks(),
              (std::vector<std::int64_t>{3, 1, 2}));
}

TEST(Interpreter, StepLimitStopsRunawayLoops)
{
    isa::Program p;
    isa::Label forever = p.newLabel();
    p.bind(forever);
    p.jmp(forever);
    p.halt();
    p.finalize();
    mem::PhysicalMemory memory;
    Interpreter interp(p, memory);
    ArchState state = interp.run(100);
    EXPECT_FALSE(state.halted);
    EXPECT_EQ(interp.instsExecuted(), 100u);
}

TEST(Interpreter, SubWordAccesses)
{
    isa::Program p;
    p.li(ir(1), 0x2000);
    p.li(ir(2), 0x11223344AABBCCDDLL);
    p.std_(ir(2), ir(1), 0);
    p.ldb(ir(3), ir(1), 0); // little-endian low byte
    p.ldw(ir(4), ir(1), 4); // upper word
    p.halt();
    p.finalize();
    mem::PhysicalMemory memory;
    ArchState state = Interpreter(p, memory).run();
    EXPECT_EQ(state.intRegs[3], 0xDDu);
    EXPECT_EQ(state.intRegs[4], 0x11223344u);
}

} // namespace
