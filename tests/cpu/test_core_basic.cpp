/**
 * @file
 * Functional tests of the out-of-order core: ALU semantics, branch
 * handling, loads/stores, forwarding, swap and membar.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.hh"
#include "isa/program.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using isa::Program;
using isa::ir;

SystemConfig
defaultConfig()
{
    SystemConfig cfg;
    cfg.normalize();
    return cfg;
}

TEST(CoreBasic, AluChain)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 10);
    p.li(ir(2), 32);
    p.add_(ir(3), ir(1), ir(2));
    p.slli(ir(4), ir(3), 1);
    p.sub(ir(5), ir(4), ir(1));
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[3], 42u);
    EXPECT_EQ(system.core().archState().intRegs[4], 84u);
    EXPECT_EQ(system.core().archState().intRegs[5], 74u);
}

TEST(CoreBasic, ZeroRegisterIsHardwired)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(0), 123); // write to r0 is dropped
    p.addi(ir(1), ir(0), 7);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[0], 0u);
    EXPECT_EQ(system.core().archState().intRegs[1], 7u);
}

TEST(CoreBasic, CountedLoop)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 0);  // sum
    p.li(ir(2), 0);  // i
    p.li(ir(3), 10); // bound
    isa::Label loop = p.newLabel();
    p.bind(loop);
    p.add_(ir(1), ir(1), ir(2));
    p.addi(ir(2), ir(2), 1);
    p.blt(ir(2), ir(3), loop);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[1], 45u);
}

TEST(CoreBasic, ForwardBranchSkips)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 1);
    isa::Label skip = p.newLabel();
    p.jmp(skip);
    p.li(ir(1), 99); // must be skipped
    p.bind(skip);
    p.addi(ir(2), ir(1), 1);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[1], 1u);
    EXPECT_EQ(system.core().archState().intRegs[2], 2u);
}

TEST(CoreBasic, CachedStoreLoadRoundTrip)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 0x8000);
    p.li(ir(2), 0xdeadbeef);
    p.std_(ir(2), ir(1), 0);
    p.ldd(ir(3), ir(1), 0);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[3], 0xdeadbeefu);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8000), 0xdeadbeefu);
}

TEST(CoreBasic, StoreToLoadForwardingValue)
{
    // Back-to-back store/load to the same address: the load must see
    // the store's value even though the store commits later.
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 0x8100);
    p.li(ir(2), 77);
    p.std_(ir(2), ir(1), 0);
    p.ldd(ir(3), ir(1), 0);
    p.addi(ir(4), ir(3), 1);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[4], 78u);
}

TEST(CoreBasic, SubWordStores)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 0x8200);
    p.li(ir(2), 0x11);
    p.li(ir(3), 0x2233);
    p.stb(ir(2), ir(1), 0);
    p.stw(ir(3), ir(1), 4);
    p.ldb(ir(4), ir(1), 0);
    p.ldw(ir(5), ir(1), 4);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[4], 0x11u);
    EXPECT_EQ(system.core().archState().intRegs[5], 0x2233u);
}

TEST(CoreBasic, FpArithmetic)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 3);
    p.li(ir(2), 4);
    p.mvi2f(isa::fr(0), ir(1));
    p.mvi2f(isa::fr(1), ir(2));
    p.fitod(isa::fr(2), isa::fr(0));
    p.fitod(isa::fr(3), isa::fr(1));
    p.fmul(isa::fr(4), isa::fr(2), isa::fr(3));
    p.mvf2i(ir(3), isa::fr(4));
    p.halt();
    p.finalize();
    system.run(p);
    double result;
    std::uint64_t bits = system.core().archState().intRegs[3];
    std::memcpy(&result, &bits, 8);
    EXPECT_DOUBLE_EQ(result, 12.0);
}

TEST(CoreBasic, CachedSwapIsAtomicRmw)
{
    System system(defaultConfig());
    system.memory().writeT<std::uint64_t>(0x8300, 5);
    Program p;
    p.li(ir(1), 0x8300);
    p.li(ir(2), 9);
    p.swap(ir(2), ir(1), 0);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[2], 5u)
        << "swap returns the old memory value";
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8300), 9u)
        << "swap deposits the register value";
}

TEST(CoreBasic, SpinLockAcquiresWhenFree)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(10), 0x8400);
    p.li(ir(11), 1);
    isa::Label spin = p.newLabel();
    p.bind(spin);
    p.swap(ir(11), ir(10), 0);
    p.bne(ir(11), ir(0), spin);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8400), 1u);
    EXPECT_EQ(system.core().archState().intRegs[11], 0u);
}

TEST(CoreBasic, MarksRecordRetireTimes)
{
    System system(defaultConfig());
    Program p;
    p.mark(7);
    p.li(ir(1), 1);
    p.mark(8);
    p.halt();
    p.finalize();
    system.run(p);
    Tick t7 = system.core().markTime(7);
    Tick t8 = system.core().markTime(8);
    ASSERT_NE(t7, maxTick);
    ASSERT_NE(t8, maxTick);
    EXPECT_LE(t7, t8);
}

TEST(CoreBasic, UncachedStoreReachesDevice)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioUncachedBase));
    p.li(ir(2), 0xabcd);
    p.std_(ir(2), ir(1), 0);
    p.membar();
    p.halt();
    p.finalize();
    system.run(p);
    ASSERT_EQ(system.device().writeLog().size(), 1u);
    EXPECT_EQ(system.device().writeLog()[0].addr, System::ioUncachedBase);
    std::uint64_t value = 0;
    std::memcpy(&value, system.device().writeLog()[0].data.data(), 8);
    EXPECT_EQ(value, 0xabcdu);
}

TEST(CoreBasic, UncachedLoadReturnsDeviceData)
{
    System system(defaultConfig());
    system.device().setRegister(System::ioUncachedBase + 0x40, 0x1234);
    Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioUncachedBase + 0x40));
    p.ldd(ir(2), ir(1), 0);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[2], 0x1234u);
}

TEST(CoreBasic, MembarDrainsUncachedBuffer)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioUncachedBase));
    p.li(ir(2), 1);
    for (int i = 0; i < 4; ++i)
        p.std_(ir(2), ir(1), i * 8);
    p.membar();
    p.mark(1);
    p.halt();
    p.finalize();
    system.run(p);
    Tick t1 = system.core().markTime(1);
    // 4 uncached dword stores at ratio 6 occupy >= 4 * 12 ticks on
    // the bus; the mark can only retire after the last completes.
    EXPECT_GE(t1, 48u);
    EXPECT_EQ(system.device().writeLog().size(), 4u);
}

TEST(CoreBasic, InstructionAndCycleStats)
{
    System system(defaultConfig());
    Program p;
    p.li(ir(1), 5);
    p.addi(ir(2), ir(1), 1);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().instsRetired.value(), 3.0);
    EXPECT_GT(system.core().numCycles.value(), 0.0);
    EXPECT_GT(system.core().ipc.value(), 0.0);
}

} // namespace
