/**
 * @file
 * Tests for preemptive context switching: state isolation, squash
 * correctness, and the CSB conflict scenario end to end.
 */

#include <gtest/gtest.h>

#include "core/kernels.hh"
#include "core/system.hh"
#include "cpu/context_scheduler.hh"
#include "isa/program.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using cpu::ContextScheduler;
using isa::ir;

SystemConfig
defaultConfig()
{
    SystemConfig cfg;
    cfg.normalize();
    return cfg;
}

/** A program that sums 0..n-1 into RAM at result_addr, slowly. */
isa::Program
makeSummer(Addr result_addr, unsigned n)
{
    isa::Program p;
    p.li(ir(1), 0);
    p.li(ir(2), 0);
    p.li(ir(3), n);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    p.add_(ir(1), ir(1), ir(2));
    p.addi(ir(2), ir(2), 1);
    p.blt(ir(2), ir(3), loop);
    p.li(ir(4), static_cast<std::int64_t>(result_addr));
    p.std_(ir(1), ir(4), 0);
    p.halt();
    p.finalize();
    return p;
}

TEST(ContextScheduler, BothProcessesRunToCompletion)
{
    System system(defaultConfig());
    isa::Program a = makeSummer(0x8000, 50);
    isa::Program b = makeSummer(0x8100, 30);
    ContextScheduler scheduler(system.simulator(), system.core(), 25);
    scheduler.addProcess(&a, 1);
    scheduler.addProcess(&b, 2);
    scheduler.start();
    system.simulator().run(
        [&] { return scheduler.allFinished() && system.quiescent(); },
        1000000);
    ASSERT_TRUE(scheduler.allFinished());
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8000), 1225u);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8100), 435u);
    EXPECT_GT(scheduler.preemptions.value(), 0.0);
}

TEST(ContextScheduler, RegisterStateIsolatedAcrossSwitches)
{
    // Two processes hammer the same registers with different values;
    // preemption must never leak one's registers into the other.
    System system(defaultConfig());
    isa::Program a;
    {
        a.li(ir(1), 0xAAAA);
        a.li(ir(5), 0);
        a.li(ir(6), 400);
        isa::Label loop = a.newLabel();
        a.bind(loop);
        a.addi(ir(1), ir(1), 0); // keep using r1
        a.addi(ir(5), ir(5), 1);
        a.blt(ir(5), ir(6), loop);
        a.li(ir(9), 0x9000);
        a.std_(ir(1), ir(9), 0);
        a.halt();
        a.finalize();
    }
    isa::Program b;
    {
        b.li(ir(1), 0xBBBB);
        b.li(ir(5), 0);
        b.li(ir(6), 400);
        isa::Label loop = b.newLabel();
        b.bind(loop);
        b.addi(ir(1), ir(1), 0);
        b.addi(ir(5), ir(5), 1);
        b.blt(ir(5), ir(6), loop);
        b.li(ir(9), 0x9100);
        b.std_(ir(1), ir(9), 0);
        b.halt();
        b.finalize();
    }
    ContextScheduler scheduler(system.simulator(), system.core(), 17);
    scheduler.addProcess(&a, 1);
    scheduler.addProcess(&b, 2);
    scheduler.start();
    system.simulator().run(
        [&] { return scheduler.allFinished() && system.quiescent(); },
        1000000);
    ASSERT_TRUE(scheduler.allFinished());
    EXPECT_GT(scheduler.preemptions.value(), 5.0);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x9000), 0xAAAAu);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x9100), 0xBBBBu);
}

TEST(ContextScheduler, CsbConflictDetectedAndRetried)
{
    // Two processes each push six line-sized atomic sequences through
    // the CSB under a quantum that lands preemptions inside store
    // sequences: flushes fail and retry, every line eventually
    // commits, and the device sees each exactly once.
    SystemConfig cfg = defaultConfig();
    System system(cfg);
    isa::Program a = core::makeCsbStoreKernel(System::ioCsbBase, 6 * 64,
                                              64);
    isa::Program b = core::makeCsbStoreKernel(
        System::ioCsbBase + 0x1000, 6 * 64, 64);

    ContextScheduler scheduler(system.simulator(), system.core(), 17);
    scheduler.addProcess(&a, 1);
    scheduler.addProcess(&b, 2);
    scheduler.start();
    system.simulator().run(
        [&] { return scheduler.allFinished() && system.quiescent(); },
        1000000);
    ASSERT_TRUE(scheduler.allFinished());

    auto &unit = *system.csb();
    EXPECT_EQ(unit.flushesSucceeded.value(), 12.0)
        << "each of the 12 sequences commits exactly once";
    EXPECT_EQ(system.device().writeLog().size(), 12u);
    EXPECT_GT(unit.flushesFailed.value(), 0.0)
        << "preemptions inside sequences must cause failed flushes";
    EXPECT_GT(unit.conflictsOnStore.value(), 0.0);
    // Exactly-once at the byte level: every committed line is full.
    for (const auto &write : system.device().writeLog())
        EXPECT_EQ(write.data.size(), 64u);
}

TEST(ContextScheduler, PidFollowsProcess)
{
    // The CSB tags sequences with the scheduler-assigned PID.
    System system(defaultConfig());
    isa::Program a = core::makeUnflushedStoresKernel(System::ioCsbBase, 2);
    ContextScheduler scheduler(system.simulator(), system.core(), 1000);
    scheduler.addProcess(&a, 7);
    scheduler.start();
    system.simulator().run([&] { return system.core().halted(); },
                           100000);
    EXPECT_EQ(system.csb()->pid(), 7);
    EXPECT_EQ(system.csb()->hitCounter(), 2u);
}

TEST(ContextScheduler, SingleProcessNeedsNoSwitches)
{
    System system(defaultConfig());
    isa::Program a = makeSummer(0x8000, 10);
    ContextScheduler scheduler(system.simulator(), system.core(), 10);
    scheduler.addProcess(&a, 1);
    scheduler.start();
    system.simulator().run(
        [&] { return scheduler.allFinished() && system.quiescent(); },
        100000);
    ASSERT_TRUE(scheduler.allFinished());
    EXPECT_EQ(scheduler.preemptions.value(), 0.0);
}

} // namespace
