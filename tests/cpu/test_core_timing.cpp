/**
 * @file
 * Timing-behaviour tests of the out-of-order core: issue width,
 * dependence serialization, uncached retire limiting, and the
 * non-speculative handling of uncached operations.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "isa/program.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using isa::ir;

SystemConfig
defaultConfig()
{
    SystemConfig cfg;
    cfg.normalize();
    return cfg;
}

/** Run and return cycles between marks 0 and 1. */
double
cyclesBetweenMarks(System &system, const isa::Program &p)
{
    system.run(p);
    Tick t0 = system.core().markTime(0);
    Tick t1 = system.core().markTime(1);
    EXPECT_NE(t0, maxTick);
    EXPECT_NE(t1, maxTick);
    return static_cast<double>(t1 - t0);
}

TEST(CoreTiming, IndependentAluOpsRunInParallel)
{
    // N independent adds on a 2-wide integer pipe: ~N/2 cycles.
    // A dependent chain of N adds: ~N cycles.
    SystemConfig cfg = defaultConfig();
    System sys_indep(cfg);
    isa::Program indep;
    indep.mark(0);
    for (int i = 0; i < 40; ++i)
        indep.addi(ir(1 + i % 20), ir(0), i);
    indep.mark(1);
    indep.halt();
    indep.finalize();
    double t_indep = cyclesBetweenMarks(sys_indep, indep);

    System sys_chain(cfg);
    isa::Program chain;
    chain.mark(0);
    for (int i = 0; i < 40; ++i)
        chain.addi(ir(1), ir(1), 1);
    chain.mark(1);
    chain.halt();
    chain.finalize();
    double t_chain = cyclesBetweenMarks(sys_chain, chain);

    EXPECT_LT(t_indep, t_chain * 0.7)
        << "independent ops must overlap (dep chain " << t_chain
        << ", independent " << t_indep << ")";
    EXPECT_GE(t_chain, 40.0) << "a dependence chain is serialized";
}

TEST(CoreTiming, DependentChainOneOpPerCycle)
{
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), 0);
    p.mark(0);
    for (int i = 0; i < 30; ++i)
        p.addi(ir(1), ir(1), 1);
    p.mark(1);
    p.halt();
    p.finalize();
    double cycles = cyclesBetweenMarks(system, p);
    EXPECT_NEAR(cycles, 30.0, 8.0);
    EXPECT_EQ(system.core().archState().intRegs[1], 30u);
}

TEST(CoreTiming, UncachedStoresRetireOnePerCycle)
{
    // The retire stage admits at most one uncached store per cycle
    // (the CSB's 1 cycle/dword slope in figure 5 depends on it).
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioCsbBase));
    p.li(ir(2), 42);
    p.std_(ir(2), ir(1), 512); // warm the TLB entry for the page
    p.mark(0);
    for (int i = 0; i < 8; ++i)
        p.std_(ir(2), ir(1), i * 8);
    p.mark(1);
    p.halt();
    p.finalize();
    double cycles = cyclesBetweenMarks(system, p);
    EXPECT_GE(cycles, 8.0);
    EXPECT_LE(cycles, 14.0);
}

TEST(CoreTiming, CachedStoresNotRateLimited)
{
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), 0x8000);
    p.li(ir(2), 42);
    p.std_(ir(2), ir(1), 512); // warm the TLB entry for the page
    p.mark(0);
    for (int i = 0; i < 8; ++i)
        p.std_(ir(2), ir(1), i * 8);
    p.mark(1);
    p.halt();
    p.finalize();
    double cycles = cyclesBetweenMarks(system, p);
    EXPECT_LE(cycles, 7.0)
        << "cached stores retire up to 4/cycle, uncached 1/cycle";
}

TEST(CoreTiming, UncachedLoadBlocksUntilBusReturns)
{
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioUncachedBase));
    p.mark(0);
    p.ldd(ir(2), ir(1), 0);
    p.mark(1);
    p.halt();
    p.finalize();
    double cycles = cyclesBetweenMarks(system, p);
    // Bus read round trip at ratio 6 with a 12-tick device: >= 24.
    EXPECT_GE(cycles, 24.0);
}

TEST(CoreTiming, CachedLoadMissCostsAboutHundredCycles)
{
    // Serialize the final mark behind the load value with a branch so
    // the measured interval includes the full miss.
    isa::Program p;
    p.li(ir(1), 0x8000);
    p.mark(0);
    p.ldd(ir(2), ir(1), 0);
    p.addi(ir(3), ir(2), 1);
    isa::Label done = p.newLabel();
    p.bge(ir(3), ir(0), done); // data-dependent, stalls fetch
    p.bind(done);
    p.mark(1);
    p.halt();
    p.finalize();
    System system(defaultConfig());
    double miss = cyclesBetweenMarks(system, p);
    EXPECT_GT(miss, 80.0);
    EXPECT_LT(miss, 130.0);
}

TEST(CoreTiming, WarmLoadIsFast)
{
    System system(defaultConfig());
    system.caches().touch(0x8000);
    system.caches().touch(0x8200);
    isa::Program p;
    p.li(ir(1), 0x8000);
    p.ldd(ir(9), ir(1), 0x200); // warm the TLB entry for the page
    p.mark(0);
    p.ldd(ir(2), ir(1), 0);
    p.addi(ir(3), ir(2), 1);
    p.mark(1);
    p.halt();
    p.finalize();
    double cycles = cyclesBetweenMarks(system, p);
    EXPECT_LT(cycles, 15.0);
}

TEST(CoreTiming, CsbStoresStallOnBusyLineBuffer)
{
    // After a flush, the single line buffer holds the data until the
    // bus takes it; immediately following combining stores stall.
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioCsbBase));
    p.li(ir(2), 1);
    p.li(ir(9), 1);
    p.std_(ir(2), ir(1), 0);
    p.swap(ir(9), ir(1), 0);
    p.mark(0);
    p.std_(ir(2), ir(1), 64); // stalls until line 0 is handed over
    p.mark(1);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_GT(system.core().csbStoreStallCycles.value(), 0.0);
}

TEST(CoreTiming, WindowLimitsInFlightInstructions)
{
    SystemConfig cfg = defaultConfig();
    cfg.core.windowSize = 8;
    cfg.normalize();
    System system(cfg);
    isa::Program p;
    p.mark(0);
    for (int i = 0; i < 64; ++i)
        p.addi(ir(1 + i % 8), ir(0), i);
    p.mark(1);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_GT(system.core().windowFullStallCycles.value(), 0.0);
}

TEST(CoreTiming, DataDependentBranchStallsFetch)
{
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), 0x8000);
    p.mark(0);
    p.ldd(ir(2), ir(1), 0); // cold miss: ~100 cycles
    isa::Label target = p.newLabel();
    p.beq(ir(2), ir(0), target); // depends on the load
    p.bind(target);
    p.mark(1);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_GT(system.core().branchFetchStallCycles.value(), 20.0);
}

} // namespace
