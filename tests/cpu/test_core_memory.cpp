/**
 * @file
 * Memory-path corner cases in the core: atomic swap in plain
 * uncached space, FP loads/stores, forwarding restrictions, and
 * ordering of mixed cached/uncached traffic.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.hh"
#include "isa/program.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using isa::fr;
using isa::ir;

SystemConfig
defaultConfig()
{
    SystemConfig cfg;
    cfg.normalize();
    return cfg;
}

TEST(CoreMemory, UncachedSwapIsAtomicOverTheBus)
{
    // A swap to plain uncached space performs a bus read followed by
    // a bus write, returning the device's old value.
    System system(defaultConfig());
    system.device().setRegister(System::ioUncachedBase + 0x100, 77);
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioUncachedBase + 0x100));
    p.li(ir(2), 99);
    p.swap(ir(2), ir(1), 0);
    p.membar();
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[2], 77u)
        << "swap returns the device's old value";
    // The device received the new value as a write.
    ASSERT_GE(system.device().writeLog().size(), 1u);
    std::uint64_t written = 0;
    std::memcpy(&written, system.device().writeLog().back().data.data(),
                8);
    EXPECT_EQ(written, 99u);
    // And both a read and a write crossed the bus.
    EXPECT_GE(system.bus().numReads.value(), 1.0);
    EXPECT_GE(system.bus().numWrites.value(), 1.0);
}

TEST(CoreMemory, FpRegistersMoveThroughMemory)
{
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), 0x8000);
    p.li(ir(2), 3);
    p.mvi2f(fr(0), ir(2));
    p.fitod(fr(1), fr(0));
    p.stf(fr(1), ir(1), 0);  // store the double 3.0
    p.ldf(fr(2), ir(1), 0);  // load it back
    p.mvf2i(ir(3), fr(2));
    p.halt();
    p.finalize();
    system.run(p);
    double value;
    std::uint64_t bits = system.core().archState().intRegs[3];
    std::memcpy(&value, &bits, 8);
    EXPECT_DOUBLE_EQ(value, 3.0);
}

TEST(CoreMemory, FpStoresToCsbSpaceCombine)
{
    // The paper's listing stores FP registers (std %f0) -- FP data
    // must flow into the CSB exactly like integer data.
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioCsbBase));
    p.li(ir(2), 0x4008000000000000LL); // bits of 3.0
    p.mvi2f(fr(0), ir(2));
    isa::Label retry = p.newLabel();
    p.bind(retry);
    p.li(ir(9), 2);
    p.stf(fr(0), ir(1), 0);
    p.stf(fr(0), ir(1), 8);
    p.swap(ir(9), ir(1), 0);
    p.li(ir(10), 2);
    p.bne(ir(9), ir(10), retry);
    p.halt();
    p.finalize();
    system.run(p);
    ASSERT_EQ(system.device().writeLog().size(), 1u);
    std::uint64_t dword = 0;
    std::memcpy(&dword, system.device().writeLog()[0].data.data(), 8);
    EXPECT_EQ(dword, 0x4008000000000000ULL);
}

TEST(CoreMemory, NoForwardingFromUncachedStoreToLoad)
{
    // Uncached data is never forwarded (the load may have side
    // effects); the load must go all the way to the device, which
    // here holds a DIFFERENT value than the pending store.
    System system(defaultConfig());
    system.device().setRegister(System::ioUncachedBase + 0x40, 0xAAAA);
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioUncachedBase + 0x40));
    p.li(ir(2), 0xBBBB);
    p.std_(ir(2), ir(1), 0);
    p.ldd(ir(3), ir(1), 0);
    p.membar();
    p.halt();
    p.finalize();
    system.run(p);
    // FIFO order: the store's write reaches the device before the
    // load reads it, but the value must come from the DEVICE model
    // (register value, unaffected by writes in BurstDevice), not from
    // store forwarding.
    EXPECT_EQ(system.core().archState().intRegs[3], 0xAAAAu);
}

TEST(CoreMemory, PartialOverlapStoreBlocksLoadUntilCommit)
{
    // A cached word load overlapping a pending dword store of a
    // different shape cannot forward; it must wait for the store to
    // commit and then read memory -- and see the stored bytes.
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), 0x8000);
    p.li(ir(2), 0x1122334455667788LL);
    p.std_(ir(2), ir(1), 0);
    p.ldw(ir(3), ir(1), 4); // upper word of the dword
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[3], 0x11223344u);
}

TEST(CoreMemory, MixedCachedAndUncachedOrdering)
{
    // Cached traffic does not wait for uncached traffic: the cached
    // store commits while the uncached store still sits in the
    // buffer.
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(System::ioUncachedBase));
    p.li(ir(2), 0x9000);
    p.li(ir(3), 5);
    p.std_(ir(3), ir(1), 0); // uncached, slow
    p.std_(ir(3), ir(2), 0); // cached, fast
    p.ldd(ir(4), ir(2), 0);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_EQ(system.core().archState().intRegs[4], 5u);
}

TEST(CoreMemory, MisalignedAccessIsFatal)
{
    System system(defaultConfig());
    isa::Program p;
    p.li(ir(1), 0x8004);
    p.ldd(ir(2), ir(1), 0); // 8-byte load at 4-byte alignment
    p.halt();
    p.finalize();
    EXPECT_THROW(system.run(p), FatalError);
}

TEST(CoreMemory, CsbStoresInRandomOrderSameLine)
{
    // "Note that combining stores can be issued in any order" --
    // section 3.2.  Shuffled offsets must produce the identical
    // committed line.
    auto run_order = [](const std::vector<unsigned> &order) {
        SystemConfig cfg;
        cfg.normalize();
        System system(cfg);
        isa::Program p;
        p.li(ir(1), static_cast<std::int64_t>(System::ioCsbBase));
        for (int r = 2; r <= 8; ++r)
            p.li(ir(r), 0x0101010101010101ULL *
                             static_cast<unsigned>(r));
        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), static_cast<std::int64_t>(order.size()));
        for (unsigned off : order)
            p.std_(ir(2 + (off / 8) % 7), ir(1), off);
        p.swap(ir(9), ir(1), 0);
        p.li(ir(10), static_cast<std::int64_t>(order.size()));
        p.bne(ir(9), ir(10), retry);
        p.halt();
        p.finalize();
        system.run(p);
        EXPECT_EQ(system.device().writeLog().size(), 1u);
        return system.device().writeLog()[0].data;
    };

    auto in_order = run_order({0, 8, 16, 24, 32, 40, 48, 56});
    auto shuffled = run_order({40, 0, 56, 16, 8, 48, 24, 32});
    EXPECT_EQ(in_order, shuffled);
}

TEST(CoreMemory, ContextSwitchDuringCacheMissIsSafe)
{
    // A pending cache-miss callback from a squashed context must be
    // dropped (epoch check), not corrupt the new context.
    System system(defaultConfig());
    isa::Program victim;
    victim.li(ir(1), 0x8000);
    victim.ldd(ir(2), ir(1), 0); // ~100-cycle miss
    victim.addi(ir(3), ir(2), 1);
    victim.halt();
    victim.finalize();

    isa::Program other;
    other.li(ir(2), 0xFFFF); // same register the squashed load targets
    other.li(ir(4), 0x9000);
    other.std_(ir(2), ir(4), 0);
    other.halt();
    other.finalize();

    system.core().loadProgram(&victim, 1);
    // Let the miss start, then switch away.
    system.simulator().runFor(10);
    cpu::ArchState other_state;
    other_state.pid = 2;
    bool switched = false;
    system.core().requestContextSwitch(&other, other_state,
                                       [&](const cpu::ArchState &) {
                                           switched = true;
                                       });
    system.simulator().run([&] { return system.core().halted(); },
                           100000);
    ASSERT_TRUE(switched);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x9000), 0xFFFFu)
        << "the new context's registers must be untouched by the "
           "squashed load";
}

} // namespace
