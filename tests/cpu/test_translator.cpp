/**
 * @file
 * The basic-block translation cache (cpu/translator.hh): block
 * formation rules, cache invalidation, exact budget accounting,
 * trace-stream identity, and broad differential checks of translated
 * dispatch against the legacy switch interpreter -- including a
 * 1000-seed sweep over the litmus generator's full token vocabulary
 * (CSB bursts, uncached I/O, swaps, membars, marks).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/system.hh"
#include "cpu/interpreter.hh"
#include "cpu/reference_executor.hh"
#include "cpu/translator.hh"
#include "isa/program.hh"
#include "litmus/generator.hh"
#include "litmus/testcase.hh"
#include "mem/physical_memory.hh"
#include "sim/trace_recorder.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using isa::ir;

/** A two-deep nested countdown loop with a mark per inner iteration:
 *  backward branches, a self-contained block re-entered many times. */
isa::Program
loopProgram(std::int64_t outer, std::int64_t inner)
{
    isa::Program p;
    p.li(ir(1), 0);
    p.li(ir(2), outer);
    isa::Label outer_l = p.newLabel();
    p.bind(outer_l);
    p.li(ir(3), inner);
    isa::Label inner_l = p.newLabel();
    p.bind(inner_l);
    p.add_(ir(1), ir(1), ir(2));
    p.xor_(ir(1), ir(1), ir(3));
    p.mark(42);
    p.addi(ir(3), ir(3), -1);
    p.bgt(ir(3), ir(0), inner_l);
    p.addi(ir(2), ir(2), -1);
    p.bgt(ir(2), ir(0), outer_l);
    p.halt();
    p.finalize();
    return p;
}

TEST(Translator, BlockFormationRules)
{
    // pc: 0 li, 1 li, 2 add, 3 nop, 4 sub(rd=r0), 5 ble->2,
    //     6 ldd, 7 add, 8 std, 9 mark, 10 membar, 11 halt
    isa::Program q;
    q.li(ir(1), 7);
    q.li(ir(2), 3);
    isa::Label body = q.newLabel();
    q.bind(body);
    q.add_(ir(3), ir(1), ir(2));
    q.nop();
    q.sub(ir(0), ir(1), ir(2)); // r0 destination: elided, still counted
    q.ble(ir(1), ir(0), body);
    q.ldd(ir(4), ir(1), 0);
    q.add_(ir(5), ir(4), ir(3));
    q.std_(ir(5), ir(1), 0);
    q.mark(9);
    q.membar();
    q.halt();
    q.finalize();

    cpu::Translator xlat;
    xlat.setProgram(&q);

    // Entry block: 2 li + add + nop + elided sub + branch = 6 insts.
    EXPECT_EQ(xlat.blockLen(0), 6u);
    // Branch target: add/nop/sub/branch = 4 (overlapping block).
    EXPECT_EQ(xlat.blockLen(2), 4u);
    // Boundary instructions start no block.
    EXPECT_EQ(xlat.blockLen(6), 0u);  // ldd
    EXPECT_EQ(xlat.blockLen(8), 0u);  // std
    EXPECT_EQ(xlat.blockLen(10), 0u); // membar
    EXPECT_EQ(xlat.blockLen(11), 0u); // halt
    // A compute instruction wedged between boundaries: block of 1,
    // parked before the store.
    EXPECT_EQ(xlat.blockLen(7), 1u);
    // Mark runs translated; the block [mark] stops at the membar.
    EXPECT_EQ(xlat.blockLen(9), 1u);
    // Out of range.
    EXPECT_EQ(xlat.blockLen(12), 0u);
}

TEST(Translator, SetProgramInvalidatesCache)
{
    isa::Program a;
    a.li(ir(1), 1);
    a.li(ir(2), 2);
    a.add_(ir(3), ir(1), ir(2));
    a.halt();
    a.finalize();

    isa::Program b;
    b.li(ir(1), 1);
    b.halt();
    b.finalize();

    cpu::Translator xlat;
    xlat.setProgram(&a);
    EXPECT_EQ(xlat.blockLen(0), 3u);
    xlat.setProgram(&b);
    EXPECT_EQ(xlat.blockLen(0), 1u);
    xlat.setProgram(nullptr);
    EXPECT_EQ(xlat.blockLen(0), 0u);
}

TEST(Translator, RunExecutesAndParksOnBoundary)
{
    isa::Program p = loopProgram(3, 4);
    cpu::ArchState state;
    std::vector<std::int64_t> marks;
    cpu::Translator xlat;
    xlat.setProgram(&p);
    std::uint64_t steps =
        xlat.run(state, std::uint64_t(-1), marks);
    // The whole program short of the final Halt is translated compute:
    // run() must execute all of it and park on the Halt boundary.
    EXPECT_EQ(p.at(state.pc).op, isa::Opcode::Halt);
    EXPECT_EQ(marks, std::vector<std::int64_t>(12, 42));
    // 2 setup + 3 outer x (1 li + 4 x 5 body + 2 tail) = 71.
    EXPECT_EQ(steps, 71u);
    EXPECT_FALSE(state.halted);
}

/** Budget semantics are exact: at every max_steps cutoff the
 *  translated interpreter matches the plain one bit-for-bit. */
TEST(Translator, BudgetExactnessSweep)
{
    isa::Program p = loopProgram(2, 3);
    mem::PhysicalMemory mem_a, mem_b;
    cpu::Interpreter full(p, mem_a);
    full.run(std::uint64_t(-1));
    std::uint64_t total = full.instsExecuted();
    ASSERT_GT(total, 20u);

    for (std::uint64_t budget = 0; budget <= total + 2; ++budget) {
        mem::PhysicalMemory m1, m2;
        cpu::Interpreter plain(p, m1);
        cpu::Interpreter fast(p, m2);
        fast.setTranslate(true);
        cpu::ArchState s1 = plain.run(budget);
        cpu::ArchState s2 = fast.run(budget);
        ASSERT_EQ(plain.instsExecuted(), fast.instsExecuted())
            << "budget " << budget;
        ASSERT_EQ(s1.pc, s2.pc) << "budget " << budget;
        ASSERT_EQ(s1.halted, s2.halted) << "budget " << budget;
        ASSERT_EQ(s1.intRegs, s2.intRegs) << "budget " << budget;
        ASSERT_EQ(plain.marks(), fast.marks()) << "budget " << budget;
    }
}

/** Translation must not perturb the recorded reference stream: the
 *  TraceRecorder sees boundary instructions only, and those all run
 *  on the untouched slow path. */
TEST(Translator, TraceStreamIdentity)
{
    isa::Program p;
    p.li(ir(1), 0x100);
    p.li(ir(2), 5);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    p.add_(ir(3), ir(2), ir(2));
    p.std_(ir(3), ir(1), 0);
    p.ldd(ir(4), ir(1), 0);
    p.swap(ir(5), ir(1), 8);
    p.membar();
    p.addi(ir(2), ir(2), -1);
    p.bgt(ir(2), ir(0), loop);
    p.halt();
    p.finalize();

    sim::TraceRecorder rec_plain, rec_fast;
    mem::PhysicalMemory m1, m2;
    cpu::Interpreter plain(p, m1);
    plain.setTraceRecorder(&rec_plain);
    cpu::Interpreter fast(p, m2);
    fast.setTraceRecorder(&rec_fast);
    fast.setTranslate(true);
    plain.run();
    fast.run();
    ASSERT_EQ(rec_plain.records().size(), rec_fast.records().size());
    EXPECT_EQ(rec_plain.records(), rec_fast.records());
}

/** Tightest possible loop: a two-instruction block branching to its
 *  own entry, re-dispatched from the cache thousands of times. */
TEST(Translator, SelfLoopingBlock)
{
    isa::Program p;
    p.li(ir(1), 5000);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    p.addi(ir(1), ir(1), -1);
    p.bgt(ir(1), ir(0), loop);
    p.halt();
    p.finalize();

    mem::PhysicalMemory m1, m2;
    cpu::Interpreter plain(p, m1);
    cpu::Interpreter fast(p, m2);
    fast.setTranslate(true);
    cpu::ArchState s1 = plain.run(std::uint64_t(-1));
    cpu::ArchState s2 = fast.run(std::uint64_t(-1));
    EXPECT_EQ(s1.intRegs, s2.intRegs);
    EXPECT_EQ(s1.pc, s2.pc);
    EXPECT_EQ(plain.instsExecuted(), fast.instsExecuted());
}

/** The cycle model's fast-forward mode must actually engage on a
 *  long compute loop and still match the off run architecturally. */
TEST(Translator, CoreFastForwardEngagesAndMatches)
{
    isa::Program p;
    p.li(ir(1), 0);
    p.li(ir(2), 500);
    p.li(ir(3), 0x1234567);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    for (int i = 0; i < 8; ++i) {
        p.add_(ir(1), ir(1), ir(3));
        p.xor_(ir(1), ir(1), ir(2));
    }
    p.std_(ir(1), ir(4), 0x8000);
    p.mark(3);
    p.addi(ir(2), ir(2), -1);
    p.bgt(ir(2), ir(0), loop);
    p.halt();
    p.finalize();

    cpu::ArchState st[2];
    std::vector<cpu::MarkRecord> marks[2];
    double ff_insts[2] = {0, 0};
    Tick ticks[2] = {0, 0};
    for (int ff = 0; ff < 2; ++ff) {
        SystemConfig cfg;
        if (ff)
            cfg.cpu.translate = cpu::TranslateMode::CoreFastForward;
        System system(cfg);
        system.core().loadProgram(&p, /*pid=*/1);
        ticks[ff] = system.simulator().run([&] {
            return system.core().halted() && system.quiescent();
        });
        st[ff] = system.core().archState();
        marks[ff] = system.core().marks();
        ff_insts[ff] = system.core().instsFastForwarded.value();
    }
    EXPECT_EQ(ff_insts[0], 0.0);
    EXPECT_GT(ff_insts[1], 0.0);       // the fast path really ran
    EXPECT_LT(ticks[1], ticks[0]);     // and compressed time
    EXPECT_EQ(st[0].intRegs, st[1].intRegs);
    EXPECT_EQ(st[0].pc, st[1].pc);
    EXPECT_EQ(st[0].halted, st[1].halted);
    ASSERT_EQ(marks[0].size(), marks[1].size());
    for (std::size_t i = 0; i < marks[0].size(); ++i)
        EXPECT_EQ(marks[0][i].first, marks[1][i].first) << i;
}

/**
 * 1000 litmus-generator seeds through the sequential reference with
 * translated dispatch on vs off: every observable the litmus oracle
 * itself compares (final registers, RAM arenas, the folded I/O image,
 * per-context ordered write streams, marks, CSB flush accounting)
 * must be bit-identical.
 */
TEST(Translator, ThousandSeedReferenceDifferential)
{
    litmus::GeneratorOptions gopts;
    for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
        litmus::TestCase tc = litmus::generate(seed, gopts);
        std::vector<isa::Program> programs;
        for (std::size_t c = 0; c < tc.contexts.size(); ++c)
            programs.push_back(litmus::lowerContext(tc, c));

        cpu::ReferenceExecutor ref[2];
        for (int t = 0; t < 2; ++t) {
            ref[t].setTranslate(t == 1);
            ref[t].pageTable().setAttr(System::ioUncachedBase,
                                       System::ioRegionSize,
                                       mem::PageAttr::Uncached);
            ref[t].pageTable().setAttr(
                System::ioAccelBase, System::ioRegionSize,
                mem::PageAttr::UncachedAccelerated);
            ref[t].pageTable().setAttr(System::ioCsbBase,
                                       System::ioRegionSize,
                                       mem::PageAttr::UncachedCombining);
            for (std::size_t c = 0; c < tc.contexts.size(); ++c)
                ref[t].addContext(&programs[c], tc.contexts[c].pid,
                                  unsigned(c));
            ref[t].run();
        }

        for (std::size_t c = 0; c < tc.contexts.size(); ++c) {
            ASSERT_EQ(ref[0].state(c).intRegs, ref[1].state(c).intRegs)
                << "seed " << seed << " ctx " << c;
            ASSERT_EQ(ref[0].state(c).pc, ref[1].state(c).pc)
                << "seed " << seed << " ctx " << c;
            ASSERT_EQ(ref[0].marks(c), ref[1].marks(c))
                << "seed " << seed << " ctx " << c;
            ASSERT_EQ(ref[0].ioWrites(c).size(),
                      ref[1].ioWrites(c).size())
                << "seed " << seed << " ctx " << c;

            std::vector<std::uint8_t> a(litmus::arenaBytes);
            std::vector<std::uint8_t> b(litmus::arenaBytes);
            ref[0].memory().read(litmus::arenaBase(c), a.data(),
                                 litmus::arenaBytes);
            ref[1].memory().read(litmus::arenaBase(c), b.data(),
                                 litmus::arenaBytes);
            ASSERT_EQ(a, b) << "seed " << seed << " ctx " << c;
            ASSERT_EQ(ref[0].csbFlushesSucceeded(unsigned(c)),
                      ref[1].csbFlushesSucceeded(unsigned(c)))
                << "seed " << seed << " ctx " << c;
        }
        ASSERT_EQ(ref[0].ioImage(), ref[1].ioImage())
            << "seed " << seed;
    }
}

} // namespace
