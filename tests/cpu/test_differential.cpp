/**
 * @file
 * Differential testing: random programs run on both the sequential
 * reference executor (the same oracle the litmus harness uses, see
 * docs/LITMUS.md) and the full out-of-order core; final architectural
 * state and memory must match bit-for-bit, no matter how the pipeline
 * reorders, forwards and speculates.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/system.hh"
#include "cpu/reference_executor.hh"
#include "isa/program.hh"
#include "sim/random.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using isa::ir;
using isa::fr;
using isa::Opcode;

constexpr Addr kArenaBase = 0x8000;
constexpr unsigned kArenaBytes = 256;
constexpr int kArenaReg = 15;

/** Generate a random, always-terminating program (forward branches
 *  only) over ALU ops, FP ops, cached loads/stores and swaps. */
isa::Program
randomProgram(std::uint64_t seed, unsigned length)
{
    sim::Random rng(seed);
    isa::Program p;

    // Seed registers with deterministic junk and set the arena base.
    for (int r = 1; r <= 12; ++r)
        p.li(ir(r), static_cast<std::int64_t>(rng.next()));
    p.li(ir(kArenaReg), kArenaBase);
    for (int f = 0; f < 4; ++f)
        p.mvi2f(fr(f), ir(1 + f));

    struct PendingLabel
    {
        isa::Label label;
        unsigned bindAt;
    };
    std::vector<PendingLabel> pending;

    auto reg = [&] { return ir(1 + static_cast<int>(rng.uniform(0, 11))); };
    auto freg = [&] { return fr(static_cast<int>(rng.uniform(0, 3))); };
    auto slot = [&](unsigned size) {
        return static_cast<std::int64_t>(
            rng.uniform(0, kArenaBytes / size - 1) * size);
    };

    for (unsigned i = 0; i < length; ++i) {
        // Bind any labels whose deadline arrived.
        for (auto it = pending.begin(); it != pending.end();) {
            if (it->bindAt <= i) {
                p.bind(it->label);
                it = pending.erase(it);
            } else {
                ++it;
            }
        }

        std::uint64_t dice = rng.uniform(0, 99);
        if (dice < 40) {
            // Integer ALU, register-register.
            static const Opcode ops[] = {
                Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                Opcode::Xor, Opcode::Sll, Opcode::Srl, Opcode::Sra,
                Opcode::Mul, Opcode::Slt, Opcode::Sltu,
            };
            isa::Instruction inst;
            inst.op = ops[rng.uniform(0, std::size(ops) - 1)];
            inst.rd = reg();
            inst.rs1 = reg();
            inst.rs2 = reg();
            p.add(inst);
        } else if (dice < 55) {
            // Integer ALU, immediate.
            static const Opcode ops[] = {
                Opcode::Addi, Opcode::Andi, Opcode::Ori, Opcode::Xori,
                Opcode::Slli, Opcode::Srli, Opcode::Slti,
            };
            isa::Instruction inst;
            inst.op = ops[rng.uniform(0, std::size(ops) - 1)];
            inst.rd = reg();
            inst.rs1 = reg();
            inst.imm = static_cast<std::int64_t>(rng.uniform(0, 63));
            p.add(inst);
        } else if (dice < 62) {
            p.li(reg(), static_cast<std::int64_t>(rng.next()));
        } else if (dice < 72) {
            // FP traffic (bit-exact through evalAlu on both models).
            std::uint64_t which = rng.uniform(0, 3);
            if (which == 0)
                p.fadd(freg(), freg(), freg());
            else if (which == 1)
                p.fmul(freg(), freg(), freg());
            else if (which == 2)
                p.mvi2f(freg(), reg());
            else
                p.mvf2i(reg(), freg());
        } else if (dice < 82) {
            // Cached store of random size.
            static const unsigned sizes[] = {1, 4, 8};
            unsigned size = sizes[rng.uniform(0, 2)];
            Opcode op = size == 1   ? Opcode::Stb
                        : size == 4 ? Opcode::Stw
                                    : Opcode::Std;
            isa::Instruction inst;
            inst.op = op;
            inst.rs2 = reg();
            inst.rs1 = ir(kArenaReg);
            inst.imm = slot(size);
            p.add(inst);
        } else if (dice < 92) {
            static const unsigned sizes[] = {1, 4, 8};
            unsigned size = sizes[rng.uniform(0, 2)];
            Opcode op = size == 1   ? Opcode::Ldb
                        : size == 4 ? Opcode::Ldw
                                    : Opcode::Ldd;
            isa::Instruction inst;
            inst.op = op;
            inst.rd = reg();
            inst.rs1 = ir(kArenaReg);
            inst.imm = slot(size);
            p.add(inst);
        } else if (dice < 95) {
            p.swap(reg(), ir(kArenaReg), slot(8));
        } else {
            // Forward conditional branch over the next few insts.
            static const Opcode ops[] = {Opcode::Beq, Opcode::Bne,
                                         Opcode::Blt, Opcode::Bge};
            isa::Label label = p.newLabel();
            isa::Instruction inst;
            inst.op = ops[rng.uniform(0, 3)];
            inst.rs1 = reg();
            inst.rs2 = reg();
            inst.labelId = label.id;
            p.add(inst);
            pending.push_back(
                {label, i + 1 + static_cast<unsigned>(
                                    rng.uniform(1, 6))});
        }
    }
    for (const PendingLabel &pl : pending)
        p.bind(pl.label);
    p.halt();
    p.finalize();
    return p;
}

class Differential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Differential, CoreMatchesReferenceInterpreter)
{
    isa::Program program = randomProgram(GetParam(), 300);

    // Reference execution.
    cpu::ReferenceExecutor reference;
    reference.addContext(&program, /*pid=*/1);
    reference.run();
    const cpu::ArchState &ref = reference.state(0);
    ASSERT_TRUE(ref.halted);

    // Pipelined execution.
    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    system.run(program);
    const cpu::ArchState &got = system.core().archState();

    for (int r = 0; r < isa::numIntRegs; ++r)
        EXPECT_EQ(got.intRegs[r], ref.intRegs[r]) << "%r" << r;
    for (int f = 0; f < isa::numFpRegs; ++f)
        EXPECT_EQ(got.fpRegs[f], ref.fpRegs[f]) << "%f" << f;
    EXPECT_EQ(got.pc, ref.pc);

    std::vector<std::uint8_t> ref_arena(kArenaBytes);
    std::vector<std::uint8_t> got_arena(kArenaBytes);
    reference.memory().read(kArenaBase, ref_arena.data(), kArenaBytes);
    system.memory().read(kArenaBase, got_arena.data(), kArenaBytes);
    EXPECT_EQ(got_arena, ref_arena);
}

TEST_P(Differential, NarrowWindowCoreMatchesToo)
{
    // A tiny window and single-issue pipe exercise different stall
    // paths; semantics must be identical.
    isa::Program program = randomProgram(GetParam() ^ 0xabcdef, 150);

    cpu::ReferenceExecutor reference;
    reference.addContext(&program, /*pid=*/1);
    reference.run();
    const cpu::ArchState &ref = reference.state(0);

    SystemConfig cfg;
    cfg.core.windowSize = 4;
    cfg.core.fetchWidth = 1;
    cfg.core.retireWidth = 1;
    cfg.core.intUnits = 1;
    cfg.core.fpUnits = 1;
    cfg.core.memPorts = 1;
    cfg.normalize();
    System system(cfg);
    system.run(program);

    for (int r = 0; r < isa::numIntRegs; ++r)
        EXPECT_EQ(system.core().archState().intRegs[r], ref.intRegs[r])
            << "%r" << r;
    std::vector<std::uint8_t> ref_arena(kArenaBytes);
    std::vector<std::uint8_t> got_arena(kArenaBytes);
    reference.memory().read(kArenaBase, ref_arena.data(), kArenaBytes);
    system.memory().read(kArenaBase, got_arena.data(), kArenaBytes);
    EXPECT_EQ(got_arena, ref_arena);
}

/**
 * Like randomProgram, but the whole body sits inside a backward
 * countdown loop (r13) and sprinkles MARK and MEMBAR tokens through
 * it: backward branches re-enter the same (translated) blocks with
 * different register values, and the mark stream must come out in
 * identical order on both models.
 */
isa::Program
randomLoopProgram(std::uint64_t seed, unsigned length,
                  std::int64_t trips)
{
    sim::Random rng(seed);
    isa::Program p;

    for (int r = 1; r <= 12; ++r)
        p.li(ir(r), static_cast<std::int64_t>(rng.next()));
    p.li(ir(kArenaReg), kArenaBase);
    p.li(ir(13), trips);
    isa::Label top = p.newLabel();
    p.bind(top);

    auto reg = [&] { return ir(1 + static_cast<int>(rng.uniform(0, 11))); };
    auto slot = [&](unsigned size) {
        return static_cast<std::int64_t>(
            rng.uniform(0, kArenaBytes / size - 1) * size);
    };

    for (unsigned i = 0; i < length; ++i) {
        std::uint64_t dice = rng.uniform(0, 99);
        if (dice < 45) {
            static const Opcode ops[] = {
                Opcode::Add, Opcode::Sub, Opcode::Xor, Opcode::And,
                Opcode::Or,  Opcode::Mul, Opcode::Sltu,
            };
            isa::Instruction inst;
            inst.op = ops[rng.uniform(0, std::size(ops) - 1)];
            inst.rd = reg();
            inst.rs1 = reg();
            inst.rs2 = reg();
            p.add(inst);
        } else if (dice < 60) {
            // Read-modify-write of an arena slot: the pattern that
            // once exposed stale store-to-load forwarding when two
            // same-address stores were in flight across iterations.
            std::int64_t off = slot(8);
            p.ldd(ir(1), ir(kArenaReg), off);
            p.add_(ir(1), ir(1), reg());
            p.std_(ir(1), ir(kArenaReg), off);
        } else if (dice < 72) {
            static const unsigned sizes[] = {1, 4, 8};
            unsigned size = sizes[rng.uniform(0, 2)];
            Opcode op = size == 1   ? Opcode::Stb
                        : size == 4 ? Opcode::Stw
                                    : Opcode::Std;
            isa::Instruction inst;
            inst.op = op;
            inst.rs2 = reg();
            inst.rs1 = ir(kArenaReg);
            inst.imm = slot(size);
            p.add(inst);
        } else if (dice < 82) {
            static const unsigned sizes[] = {1, 4, 8};
            unsigned size = sizes[rng.uniform(0, 2)];
            Opcode op = size == 1   ? Opcode::Ldb
                        : size == 4 ? Opcode::Ldw
                                    : Opcode::Ldd;
            isa::Instruction inst;
            inst.op = op;
            inst.rd = reg();
            inst.rs1 = ir(kArenaReg);
            inst.imm = slot(size);
            p.add(inst);
        } else if (dice < 88) {
            p.swap(reg(), ir(kArenaReg), slot(8));
        } else if (dice < 94) {
            p.mark(static_cast<std::int64_t>(rng.uniform(0, 999)));
        } else {
            p.membar();
        }
    }
    p.addi(ir(13), ir(13), -1);
    p.bgt(ir(13), ir(0), top);
    p.halt();
    p.finalize();
    return p;
}

TEST_P(Differential, BackwardLoopWithMarksMatches)
{
    isa::Program program =
        randomLoopProgram(GetParam() ^ 0x10071007, 60, 5);

    cpu::ReferenceExecutor reference;
    reference.addContext(&program, /*pid=*/1);
    reference.run();
    const cpu::ArchState &ref = reference.state(0);
    ASSERT_TRUE(ref.halted);

    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    system.run(program);
    const cpu::ArchState &got = system.core().archState();

    for (int r = 0; r < isa::numIntRegs; ++r)
        EXPECT_EQ(got.intRegs[r], ref.intRegs[r]) << "%r" << r;
    EXPECT_EQ(got.pc, ref.pc);

    std::vector<std::uint8_t> ref_arena(kArenaBytes);
    std::vector<std::uint8_t> got_arena(kArenaBytes);
    reference.memory().read(kArenaBase, ref_arena.data(), kArenaBytes);
    system.memory().read(kArenaBase, got_arena.data(), kArenaBytes);
    EXPECT_EQ(got_arena, ref_arena);

    // Mark ids must stream out in the same committed order.
    const auto &ref_marks = reference.marks(0);
    const auto &got_marks = system.core().marks();
    ASSERT_EQ(got_marks.size(), ref_marks.size());
    for (std::size_t i = 0; i < ref_marks.size(); ++i)
        EXPECT_EQ(got_marks[i].first, ref_marks[i]) << "mark " << i;
}

/**
 * Regression: a tight read-modify-write loop keeps two same-address
 * stores in flight across iterations once the window fills; the load
 * must forward from the YOUNGEST older store.  The oldest-first scan
 * this repo originally shipped forwarded one-generation-stale data
 * here from the fourth iteration on (caught by bench/perf_cpu).
 */
TEST(DifferentialRegression, RmwLoopForwardsYoungestStore)
{
    isa::Program p;
    p.li(ir(1), kArenaBase);
    p.li(ir(2), 8);
    p.li(ir(3), 0x27d4eb2f165667c5ull);
    p.li(ir(4), 0);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    for (int round = 0; round < 4; ++round) {
        p.add_(ir(4), ir(4), ir(3));
        p.xor_(ir(5), ir(4), ir(2));
        p.mul(ir(5), ir(5), ir(3));
        p.srli(ir(6), ir(5), 31);
        p.xor_(ir(4), ir(5), ir(6));
    }
    p.ldd(ir(7), ir(1), 0);
    p.add_(ir(7), ir(7), ir(4));
    p.std_(ir(7), ir(1), 0);
    p.std_(ir(4), ir(1), 8);
    p.mark(7);
    p.membar();
    p.addi(ir(2), ir(2), -1);
    p.bgt(ir(2), ir(0), loop);
    p.halt();
    p.finalize();

    cpu::ReferenceExecutor reference;
    reference.addContext(&p, /*pid=*/1);
    reference.run();

    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    system.run(p);

    EXPECT_EQ(system.core().archState().intRegs[7],
              reference.state(0).intRegs[7]);
    std::vector<std::uint8_t> ref_arena(kArenaBytes);
    std::vector<std::uint8_t> got_arena(kArenaBytes);
    reference.memory().read(kArenaBase, ref_arena.data(), kArenaBytes);
    system.memory().read(kArenaBase, got_arena.data(), kArenaBytes);
    EXPECT_EQ(got_arena, ref_arena);
}

std::vector<std::uint64_t>
seeds()
{
    std::vector<std::uint64_t> list;
    for (std::uint64_t s = 1; s <= 24; ++s)
        list.push_back(s * 0x9e3779b97f4a7c15ULL);
    return list;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::ValuesIn(seeds()));

} // namespace
