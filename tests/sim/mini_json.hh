/**
 * @file
 * A tiny recursive-descent JSON parser for tests that validate the
 * simulator's JSON emitters (stats export, Chrome traces, bench
 * artifacts).  Strict enough to reject malformed output; not a
 * general-purpose library.
 */

#ifndef CSB_TESTS_MINI_JSON_HH
#define CSB_TESTS_MINI_JSON_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mini_json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<ValuePtr> array;
    std::map<std::string, ValuePtr> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Object member access; throws when absent or not an object. */
    const Value &
    at(const std::string &key) const
    {
        if (kind != Kind::Object)
            throw std::runtime_error("not an object");
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key: " + key);
        return *it->second;
    }

    bool
    has(const std::string &key) const
    {
        return kind == Kind::Object && object.count(key) > 0;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    run()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const std::string &lit)
    {
        if (text_.compare(pos_, lit.size(), lit) != 0)
            return false;
        pos_ += lit.size();
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u digit");
                }
                // Tests only use BMP escapes; encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Value
    parseValue()
    {
        char c = peek();
        Value v;
        if (c == '{') {
            ++pos_;
            v.kind = Value::Kind::Object;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                std::string key = (skipWs(), parseString());
                expect(':');
                if (!v.object
                         .emplace(key, std::make_shared<Value>(
                                           parseValue()))
                         .second) {
                    fail("duplicate key: " + key);
                }
                char n = peek();
                ++pos_;
                if (n == '}')
                    return v;
                if (n != ',')
                    fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = Value::Kind::Array;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.array.push_back(
                    std::make_shared<Value>(parseValue()));
                char n = peek();
                ++pos_;
                if (n == ']')
                    return v;
                if (n != ',')
                    fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            v.kind = Value::Kind::String;
            v.string = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.kind = Value::Kind::Bool;
            return v;
        }
        if (consumeLiteral("null"))
            return v;
        // Number.
        std::size_t start = pos_;
        if (c == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("unexpected character");
        char *end = nullptr;
        std::string body = text_.substr(start, pos_ - start);
        v.kind = Value::Kind::Number;
        v.number = std::strtod(body.c_str(), &end);
        if (end != body.c_str() + body.size())
            fail("malformed number: " + body);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Parse a complete document; throws std::runtime_error on error. */
inline Value
parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace mini_json

#endif // CSB_TESTS_MINI_JSON_HH
