/**
 * @file
 * Locale-independence tests for the JSON number formatter.
 *
 * jsonNumber() used to go through snprintf("%.12g"), which honours
 * LC_NUMERIC: under a comma-decimal locale (de_DE, fr_FR, ...) it
 * prints "2,5" and corrupts every artifact.  The formatter now uses
 * std::to_chars, which is locale-independent by specification; these
 * tests pin that down and keep the output byte-compatible with the
 * historical "C"-locale rendering.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <limits>
#include <string>

#include "sim/json.hh"

namespace {

using csb::sim::jsonNumber;

/** RAII guard: restore LC_NUMERIC on scope exit. */
class NumericLocaleGuard
{
  public:
    NumericLocaleGuard()
        : saved_(std::setlocale(LC_NUMERIC, nullptr))
    {}

    ~NumericLocaleGuard() { std::setlocale(LC_NUMERIC, saved_.c_str()); }

  private:
    std::string saved_;
};

TEST(JsonLocale, NumbersSurviveCommaDecimalLocale)
{
    NumericLocaleGuard guard;
    const char *candidates[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                "fr_FR", "C.UTF-8@euro"};
    bool set = false;
    for (const char *loc : candidates) {
        if (std::setlocale(LC_NUMERIC, loc)) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.1f", 0.5);
            if (std::string(buf) == "0,5") {
                set = true;
                break;
            }
        }
    }
    if (!set)
        GTEST_SKIP() << "no comma-decimal locale installed";

    EXPECT_EQ(jsonNumber(2.5), "2.5");
    EXPECT_EQ(jsonNumber(-0.001953125), "-0.001953125");
    EXPECT_EQ(jsonNumber(1.0 / 3.0), "0.333333333333");
    EXPECT_EQ(jsonNumber(42.0), "42");
}

TEST(JsonLocale, MatchesHistoricalCLocaleRendering)
{
    NumericLocaleGuard guard;
    std::setlocale(LC_NUMERIC, "C");
    // Non-integer values must match the old snprintf("%.12g") output
    // byte for byte so committed artifacts stay identical.
    const double values[] = {0.5,         -2.25,       1.0 / 3.0,
                             3.0e-9,      6.25e17 + 0.5, 1234.5678,
                             0.0001,      99.99999999999};
    for (double v : values) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        EXPECT_EQ(jsonNumber(v), buf) << "v=" << v;
    }
    // Integer-valued doubles keep the integer fast path.
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(-17.0), "-17");
    EXPECT_EQ(jsonNumber(9007199254740992.0), "9007199254740992");
}

TEST(JsonLocale, NonFiniteValuesAreNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

} // namespace
