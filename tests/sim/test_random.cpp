/**
 * @file
 * Unit tests for the deterministic random source.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

namespace {

using csb::sim::Random;

TEST(Random, DeterministicForSameSeed)
{
    Random a(42);
    Random b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1);
    Random b(2);
    unsigned same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2u);
}

TEST(Random, UniformStaysInRange)
{
    Random rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Random, UniformSingletonRange)
{
    Random rng(7);
    EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Random, Uniform01Bounds)
{
    Random rng(9);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, ChanceExtremes)
{
    Random rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, RoughlyUniformCoverage)
{
    Random rng(13);
    int buckets[10] = {};
    constexpr int draws = 10000;
    for (int i = 0; i < draws; ++i)
        ++buckets[rng.uniform(0, 9)];
    for (int count : buckets) {
        EXPECT_GT(count, draws / 10 / 2);
        EXPECT_LT(count, draws / 10 * 2);
    }
}

} // namespace
