/**
 * @file
 * Randomized churn test for the event queue.
 *
 * Drives the queue with a deterministic but adversarial mix of
 * schedule / cancel / reschedule / service operations and checks the
 * observable contract against a simple reference model:
 *  - events fire in exact (tick, priority, insertion-order) order;
 *  - numPending() is the exact live count at every step;
 *  - numProcessed() counts every fired event;
 *  - the heap drains completely once everything has fired.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace {

using csb::Tick;
using csb::sim::Event;
using csb::sim::EventHandle;
using csb::sim::EventQueue;
using csb::sim::Random;

TEST(EventQueueStress, RandomChurnFiresInDeterministicOrder)
{
    EventQueue q;
    Random rng(0x5eedf00dULL);

    struct Rec
    {
        Tick when;
        int pri;
        std::uint64_t id;
    };
    std::vector<Rec> model;            // indexed by id
    std::vector<char> cancelled;       // parallel to model
    std::vector<EventHandle> handles;  // parallel to model
    std::vector<std::uint64_t> fired;

    const int kPris[] = {Event::MaximumPri, Event::DefaultPri,
                         Event::MinimumPri};
    const int kIters = 4000;
    std::size_t live = 0;

    for (int i = 0; i < kIters; ++i) {
        std::uint64_t roll = rng.uniform(0, 99);
        if (roll < 60 || handles.empty()) {
            Tick when = q.curTick() + rng.uniform(1, 500);
            int pri = kPris[rng.uniform(0, 2)];
            std::uint64_t id = model.size();
            model.push_back({when, pri, id});
            cancelled.push_back(0);
            handles.push_back(q.scheduleFunc(
                when, [&fired, id] { fired.push_back(id); }, pri));
            ++live;
        } else if (roll < 85) {
            std::uint64_t victim = rng.uniform(0, handles.size() - 1);
            if (handles[victim].pending()) {
                handles[victim].cancel();
                cancelled[victim] = 1;
                --live;
            }
        } else {
            Tick upto = q.curTick() + rng.uniform(0, 64);
            q.serviceUntil(upto);
            live = q.numPending();
        }
        ASSERT_EQ(q.numPending(), live) << "after op " << i;
    }

    while (q.serviceOne()) {
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.numPending(), 0u);
    EXPECT_EQ(q.heapSize(), 0u) << "drained queue must release its heap";

    // Expected firing order: every never-cancelled event, sorted by
    // (tick, priority, schedule order).  Cancelled events whose
    // callback already ran stay in the expectation (their cancel was
    // a no-op by contract).
    std::vector<Rec> expected;
    for (const Rec &r : model) {
        bool ran = std::find(fired.begin(), fired.end(), r.id)
                   != fired.end();
        if (!cancelled[r.id] || ran)
            expected.push_back(r);
    }
    std::sort(expected.begin(), expected.end(),
              [](const Rec &a, const Rec &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.pri != b.pri)
                      return a.pri < b.pri;
                  return a.id < b.id;
              });
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(fired[i], expected[i].id) << "at firing index " << i;
    EXPECT_EQ(q.numProcessed(), fired.size());
}

TEST(EventQueueStress, CompactionBoundsStaleEntries)
{
    EventQueue q;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 256; ++i)
        handles.push_back(q.scheduleFunc(1000 + i, [] {}));
    // Cancel from the back so the heap top stays live and lazy
    // top-purging cannot hide the stale entries.
    for (int i = 255; i >= 64; --i)
        handles[i].cancel();
    EXPECT_EQ(q.numPending(), 64u);
    EXPECT_GT(q.numCompactions(), 0u)
        << "stale entries outnumbering live ones must compact the heap";
    EXPECT_LE(q.heapSize(), 2 * q.numPending())
        << "compaction must bound stale entries to the live count";
    while (q.serviceOne()) {
    }
    EXPECT_EQ(q.numProcessed(), 64u);
    EXPECT_EQ(q.heapSize(), 0u);
}

class TickRecorder : public Event
{
  public:
    explicit TickRecorder(EventQueue *q, std::vector<Tick> *log)
        : queue_(q), log_(log)
    {}

    void process() override { log_->push_back(queue_->curTick()); }

  private:
    EventQueue *queue_;
    std::vector<Tick> *log_;
};

TEST(EventQueueStress, RescheduleChurnKeepsAccountingExact)
{
    EventQueue q;
    Random rng(0xca11ab1eULL);

    const std::size_t kEvents = 32;
    std::vector<Tick> log;
    std::vector<TickRecorder> events(kEvents, TickRecorder(&q, &log));
    // expected[i] == 0 means "not scheduled" (ticks below start at 1).
    std::vector<Tick> expected(kEvents, 0);

    const int kIters = 3000;
    for (int i = 0; i < kIters; ++i) {
        std::uint64_t victim = rng.uniform(0, kEvents - 1);
        std::uint64_t roll = rng.uniform(0, 99);
        if (roll < 70) {
            Tick when = q.curTick() + rng.uniform(1, 200);
            q.reschedule(&events[victim], when);
            expected[victim] = when;
        } else if (roll < 85) {
            if (events[victim].scheduled()) {
                q.deschedule(&events[victim]);
                expected[victim] = 0;
            }
        } else {
            std::size_t before = log.size();
            q.serviceUntil(q.curTick() + rng.uniform(0, 32));
            // Events that fired are no longer expected.
            for (std::size_t e = 0; e < kEvents; ++e)
                if (expected[e] && expected[e] <= q.curTick()
                    && !events[e].scheduled())
                    expected[e] = 0;
            (void)before;
        }
        std::size_t want = 0;
        for (Tick t : expected)
            want += t != 0;
        ASSERT_EQ(q.numPending(), want) << "after op " << i;
        ASSERT_LE(q.numPending(), q.heapSize());
    }

    // Drain and verify each still-scheduled event fires exactly at
    // its final reschedule target.
    std::vector<Tick> finals;
    for (Tick t : expected)
        if (t != 0)
            finals.push_back(t);
    std::sort(finals.begin(), finals.end());
    std::size_t already = log.size();
    while (q.serviceOne()) {
    }
    std::vector<Tick> tail(log.begin() + already, log.end());
    EXPECT_EQ(tail, finals);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.heapSize(), 0u);
}

} // namespace
