/**
 * @file
 * Forward-progress watchdog tests: an artificial livelock (events
 * keep firing, nothing progresses) must convert into a diagnostic
 * FatalError within the configured window, noteProgress() must defer
 * it, and tick-limit exhaustion must be counted instead of silent.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/clocked.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;

class SpinningDevice : public sim::Clocked
{
  public:
    SpinningDevice() : sim::Clocked("spinner", sim::ClockDomain(1)) {}
    void tick() override { ++ticks; }
    void
    debugDump(std::ostream &os) const override
    {
        os << "spun=" << ticks;
    }
    std::uint64_t ticks = 0;
};

TEST(Watchdog, LivelockFiresWithinWindow)
{
    sim::Simulator sim;
    SpinningDevice dev;
    sim.registerClocked(&dev);
    sim.setWatchdog(500);

    std::string message;
    Tick fired_at = 0;
    try {
        sim.run([] { return false; }, 100000);
        FAIL() << "watchdog never fired";
    } catch (const FatalError &err) {
        message = err.what();
        fired_at = sim.curTick();
    }
    EXPECT_GE(fired_at, 500u);
    EXPECT_LE(fired_at, 510u) << "fires promptly once the window lapses";
    EXPECT_NE(message.find("watchdog"), std::string::npos);
    // The diagnostic names the stuck component and its state.
    EXPECT_NE(message.find("spinner"), std::string::npos);
    EXPECT_NE(message.find("spun="), std::string::npos);
}

TEST(Watchdog, DiagnosticIncludesEventQueueState)
{
    sim::Simulator sim;
    sim.setWatchdog(200);
    // A self-rescheduling event: the queue is never empty, yet nothing
    // makes progress -- the classic livelock shape.
    std::function<void()> respin = [&] {
        sim.eventQueue().scheduleFunc(sim.curTick() + 10, respin);
    };
    sim.eventQueue().scheduleFunc(10, respin);

    try {
        sim.run([] { return false; }, 100000);
        FAIL() << "watchdog never fired";
    } catch (const FatalError &err) {
        std::string message = err.what();
        EXPECT_NE(message.find("event queue"), std::string::npos);
        EXPECT_NE(message.find("pending"), std::string::npos);
    }
}

TEST(Watchdog, NoteProgressDefersFiring)
{
    sim::Simulator sim;
    sim.setWatchdog(100);
    // Report progress every 50 ticks: the watchdog must stay quiet for
    // the whole run.
    std::function<void()> heartbeat = [&] {
        sim.noteProgress();
        sim.eventQueue().scheduleFunc(sim.curTick() + 50, heartbeat);
    };
    sim.eventQueue().scheduleFunc(50, heartbeat);
    EXPECT_NO_THROW(sim.run([] { return false; }, 2000));
    EXPECT_EQ(sim.curTick(), 2000u);
}

TEST(Watchdog, DisabledByDefault)
{
    sim::Simulator sim;
    EXPECT_EQ(sim.watchdogWindow(), 0u);
    EXPECT_NO_THROW(sim.run([] { return false; }, 5000));
}

TEST(Watchdog, TickLimitExhaustionIsCounted)
{
    setLogQuiet(true);
    sim::Simulator sim;
    EXPECT_EQ(sim.tickLimitHits(), 0u);
    sim.run([] { return false; }, 100);
    EXPECT_EQ(sim.tickLimitHits(), 1u);
    sim.run([] { return false; }, 100);
    EXPECT_EQ(sim.tickLimitHits(), 2u);
    // A run whose predicate finishes does not count.
    sim.run([&] { return sim.curTick() >= 250; }, 10000);
    EXPECT_EQ(sim.tickLimitHits(), 2u);
    setLogQuiet(false);
}

} // namespace
