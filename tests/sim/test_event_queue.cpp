/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using csb::Tick;
using csb::maxTick;
using csb::sim::Event;
using csb::sim::EventHandle;
using csb::sim::EventQueue;

class CountingEvent : public Event
{
  public:
    explicit CountingEvent(int *counter, Priority pri = DefaultPri)
        : Event(pri), counter_(counter)
    {}

    void process() override { ++*counter_; }

  private:
    int *counter_;
};

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.nextTick(), maxTick);
    EXPECT_FALSE(q.serviceOne());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFunc(30, [&] { order.push_back(3); });
    q.scheduleFunc(10, [&] { order.push_back(1); });
    q.scheduleFunc(20, [&] { order.push_back(2); });
    while (q.serviceOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFunc(5, [&] { order.push_back(1); });
    q.scheduleFunc(5, [&] { order.push_back(2); });
    q.scheduleFunc(5, [&] { order.push_back(3); });
    q.serviceUntil(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityOverridesInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFunc(5, [&] { order.push_back(1); }, Event::MinimumPri);
    q.scheduleFunc(5, [&] { order.push_back(2); }, Event::MaximumPri);
    q.serviceUntil(5);
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    EventHandle handle = q.scheduleFunc(5, [&] { ++fired; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    q.serviceUntil(10);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFiringIsSafe)
{
    EventQueue q;
    int fired = 0;
    EventHandle handle = q.scheduleFunc(5, [&] { ++fired; });
    q.serviceUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not crash or double-fire
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ServiceUntilAdvancesTime)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFunc(100, [&] { ++fired; });
    q.serviceUntil(50);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.curTick(), 50u);
    q.serviceUntil(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> times;
    std::function<void()> chain = [&] {
        times.push_back(q.curTick());
        if (times.size() < 4)
            q.scheduleFunc(q.curTick() + 10, chain);
    };
    q.scheduleFunc(10, chain);
    q.serviceUntil(100);
    EXPECT_EQ(times, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(EventQueue, CallerOwnedEventReschedules)
{
    EventQueue q;
    int count = 0;
    CountingEvent ev(&count);
    q.schedule(&ev, 10);
    q.reschedule(&ev, 20);
    q.serviceUntil(15);
    EXPECT_EQ(count, 0) << "stale entry must not fire";
    q.serviceUntil(25);
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, DescheduleCallerOwned)
{
    EventQueue q;
    int count = 0;
    CountingEvent ev(&count);
    q.schedule(&ev, 10);
    q.deschedule(&ev);
    q.serviceUntil(20);
    EXPECT_EQ(count, 0);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventQueue, NumProcessedCounts)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.scheduleFunc(i + 1, [] {});
    q.serviceUntil(10);
    EXPECT_EQ(q.numProcessed(), 5u);
}

} // namespace
