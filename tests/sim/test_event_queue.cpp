/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace {

using csb::Tick;
using csb::maxTick;
using csb::sim::Event;
using csb::sim::EventHandle;
using csb::sim::EventQueue;

class CountingEvent : public Event
{
  public:
    explicit CountingEvent(int *counter, Priority pri = DefaultPri)
        : Event(pri), counter_(counter)
    {}

    void process() override { ++*counter_; }

  private:
    int *counter_;
};

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_EQ(q.nextTick(), maxTick);
    EXPECT_FALSE(q.serviceOne());
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFunc(30, [&] { order.push_back(3); });
    q.scheduleFunc(10, [&] { order.push_back(1); });
    q.scheduleFunc(20, [&] { order.push_back(2); });
    while (q.serviceOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFunc(5, [&] { order.push_back(1); });
    q.scheduleFunc(5, [&] { order.push_back(2); });
    q.scheduleFunc(5, [&] { order.push_back(3); });
    q.serviceUntil(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityOverridesInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFunc(5, [&] { order.push_back(1); }, Event::MinimumPri);
    q.scheduleFunc(5, [&] { order.push_back(2); }, Event::MaximumPri);
    q.serviceUntil(5);
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    EventHandle handle = q.scheduleFunc(5, [&] { ++fired; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    q.serviceUntil(10);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFiringIsSafe)
{
    EventQueue q;
    int fired = 0;
    EventHandle handle = q.scheduleFunc(5, [&] { ++fired; });
    q.serviceUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not crash or double-fire
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ServiceUntilAdvancesTime)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFunc(100, [&] { ++fired; });
    q.serviceUntil(50);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.curTick(), 50u);
    q.serviceUntil(100);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> times;
    std::function<void()> chain = [&] {
        times.push_back(q.curTick());
        if (times.size() < 4)
            q.scheduleFunc(q.curTick() + 10, chain);
    };
    q.scheduleFunc(10, chain);
    q.serviceUntil(100);
    EXPECT_EQ(times, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(EventQueue, CallerOwnedEventReschedules)
{
    EventQueue q;
    int count = 0;
    CountingEvent ev(&count);
    q.schedule(&ev, 10);
    q.reschedule(&ev, 20);
    q.serviceUntil(15);
    EXPECT_EQ(count, 0) << "stale entry must not fire";
    q.serviceUntil(25);
    EXPECT_EQ(count, 1);
}

TEST(EventQueue, DescheduleCallerOwned)
{
    EventQueue q;
    int count = 0;
    CountingEvent ev(&count);
    q.schedule(&ev, 10);
    q.deschedule(&ev);
    q.serviceUntil(20);
    EXPECT_EQ(count, 0);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventQueue, NumProcessedCounts)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.scheduleFunc(i + 1, [] {});
    q.serviceUntil(10);
    EXPECT_EQ(q.numProcessed(), 5u);
}

TEST(EventQueue, NumPendingCountsLiveOnly)
{
    EventQueue q;
    EventHandle a = q.scheduleFunc(10, [] {});
    EventHandle b = q.scheduleFunc(20, [] {});
    EXPECT_EQ(q.numPending(), 2u);
    a.cancel();
    EXPECT_EQ(q.numPending(), 1u);
    EXPECT_EQ(q.nextTick(), 20u) << "cancelled event must not be peeked";
    q.serviceUntil(25);
    EXPECT_EQ(q.numPending(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(b.pending() == false);
}

TEST(EventQueue, HandleOutlivesQueue)
{
    int fired = 0;
    EventHandle handle;
    {
        EventQueue q;
        handle = q.scheduleFunc(5, [&] { ++fired; });
        EXPECT_TRUE(handle.pending());
    }
    // The queue drained its pending events on destruction; the handle
    // must observe that instead of dereferencing freed state.
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not touch the destroyed queue
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelRecyclesEventImmediately)
{
    EventQueue q;
    EventHandle far = q.scheduleFunc(1'000'000, [] {});
    EXPECT_EQ(q.funcPoolSize(), 0u);
    far.cancel();
    // The one-shot event is parked on the free list at cancel time,
    // not when simulated time finally reaches its original tick.
    EXPECT_EQ(q.funcPoolSize(), 1u);
    EXPECT_EQ(q.heapSize(), 0u) << "lone stale entry should be dropped";
    q.scheduleFunc(5, [] {});
    EXPECT_EQ(q.funcPoolSize(), 0u) << "pool node should be reused";
    q.serviceUntil(10);
    EXPECT_EQ(q.funcPoolSize(), 1u) << "fired event returns to the pool";
}

TEST(EventQueue, CancelReleasesClosureResources)
{
    EventQueue q;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> weak = token;
    EventHandle handle = q.scheduleFunc(1'000'000, [token] {});
    token.reset();
    EXPECT_FALSE(weak.expired());
    handle.cancel();
    EXPECT_TRUE(weak.expired())
        << "closure must be destroyed at cancel, not at its tick";
}

TEST(EventQueue, NextTickCachedAcrossPeeks)
{
    EventQueue q;
    for (int i = 0; i < 100; ++i)
        q.scheduleFunc(100 + i, [] {});
    // Heavy peeking must not disturb state or ordering.
    for (int i = 0; i < 10'000; ++i)
        EXPECT_EQ(q.nextTick(), 100u);
    EXPECT_EQ(q.numPending(), 100u);
    q.serviceUntil(500);
    EXPECT_EQ(q.numProcessed(), 100u);
}

} // namespace
