/**
 * @file
 * Fault-schedule machinery: the spec grammar, time-dependent rate
 * semantics, one-shot consumption, RNG-stream isolation and the
 * checkpoint round trip of the injector's schedule state
 * (docs/FAULTS.md).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace {

using csb::FatalError;
using csb::Tick;
namespace sim = csb::sim;

TEST(FaultSchedule, ParsesEveryClauseKind)
{
    auto sched = sim::parseFaultSchedule(
        "burst:bus-write-nack:1000..5000:0.3;"
        "brownout:bus-read-nack:0..20000:4000/1000:0.5;"
        "oneshot:ack-drop:777;"
        "storm:wire-drop:100..900:0.01x2/200;"
        "hang:50..60;"
        "flap:10..20");
    // hang = 1 entry, flap = 2 (wire-drop + ack-drop).
    ASSERT_EQ(sched.size(), 7u);
    EXPECT_EQ(sched[0].kind, sim::FaultScheduleEntry::Kind::Burst);
    EXPECT_EQ(sched[0].site, sim::FaultSite::BusWriteNack);
    EXPECT_EQ(sched[0].start, 1000u);
    EXPECT_EQ(sched[0].end, 5000u);
    EXPECT_DOUBLE_EQ(sched[0].rate, 0.3);
    EXPECT_EQ(sched[1].kind, sim::FaultScheduleEntry::Kind::Brownout);
    EXPECT_EQ(sched[1].period, 4000u);
    EXPECT_EQ(sched[1].onTicks, 1000u);
    EXPECT_EQ(sched[2].kind, sim::FaultScheduleEntry::Kind::OneShot);
    EXPECT_EQ(sched[2].start, 777u);
    EXPECT_EQ(sched[3].kind, sim::FaultScheduleEntry::Kind::Storm);
    EXPECT_DOUBLE_EQ(sched[3].multiplier, 2.0);
    EXPECT_EQ(sched[3].period, 200u);
    EXPECT_EQ(sched[4].site, sim::FaultSite::DeviceHang);
    EXPECT_DOUBLE_EQ(sched[4].rate, 1.0);
    EXPECT_EQ(sched[5].site, sim::FaultSite::WireDrop);
    EXPECT_EQ(sched[6].site, sim::FaultSite::AckDrop);
}

TEST(FaultSchedule, SpecRoundTrips)
{
    const std::string spec =
        "burst:bus-write-nack:1000..5000:0.3;"
        "brownout:bus-read-nack:0..20000:4000/1000:0.5;"
        "oneshot:ack-drop:777;"
        "storm:wire-drop:100..900:0.01x2/200";
    auto sched = sim::parseFaultSchedule(spec);
    std::string rendered = sim::faultScheduleSpec(sched);
    auto reparsed = sim::parseFaultSchedule(rendered);
    ASSERT_EQ(reparsed.size(), sched.size());
    EXPECT_EQ(sim::faultScheduleSpec(reparsed), rendered);
}

TEST(FaultSchedule, RejectsMalformedSpecs)
{
    EXPECT_THROW(sim::parseFaultSchedule("burst:no-such-site:0..1:0.5"),
                 FatalError);
    EXPECT_THROW(sim::parseFaultSchedule("burst:bus-write-nack:9..3:0.5"),
                 FatalError);
    EXPECT_THROW(sim::parseFaultSchedule("gibberish"), FatalError);
    EXPECT_THROW(sim::parseFaultSchedule("burst:bus-write-nack:0..5:2.5"),
                 FatalError);
    EXPECT_THROW(
        sim::parseFaultSchedule("brownout:bus-write-nack:0..5:0/0:0.5"),
        FatalError);
}

TEST(FaultSchedule, SiteNamesRoundTrip)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(sim::FaultSite::NumSites); ++i) {
        auto site = static_cast<sim::FaultSite>(i);
        EXPECT_EQ(sim::faultSiteFromName(sim::faultSiteName(site)),
                  site);
    }
    EXPECT_THROW(sim::faultSiteFromName("bogus"), FatalError);
}

TEST(FaultSchedule, BurstWindowIsExactAndRngFreeAtFullRate)
{
    sim::FaultPlan plan;
    plan.seed = 7;
    plan.schedule = sim::parseFaultSchedule("hang:100..200");
    sim::FaultInjector inj(plan);

    EXPECT_FALSE(inj.shouldFault(sim::FaultSite::DeviceHang, 99));
    EXPECT_TRUE(inj.shouldFault(sim::FaultSite::DeviceHang, 100));
    EXPECT_TRUE(inj.shouldFault(sim::FaultSite::DeviceHang, 199));
    EXPECT_FALSE(inj.shouldFault(sim::FaultSite::DeviceHang, 200));
    EXPECT_EQ(inj.injectedAt(sim::FaultSite::DeviceHang), 2u);

    // Full-rate windows never draw: a second injector with the same
    // seed but no schedule must see the exact same stream for a
    // Bernoulli site afterwards.
    sim::FaultPlan uniform;
    uniform.seed = 7;
    uniform.busWriteNackRate = 0.5;
    sim::FaultPlan withHang = uniform;
    withHang.schedule = plan.schedule;
    sim::FaultInjector a(uniform), b(withHang);
    for (Tick t = 0; t < 400; ++t)
        b.shouldFault(sim::FaultSite::DeviceHang, t);
    for (Tick t = 0; t < 256; ++t) {
        EXPECT_EQ(a.shouldFault(sim::FaultSite::BusWriteNack, t),
                  b.shouldFault(sim::FaultSite::BusWriteNack, t))
            << "tick " << t;
    }
}

TEST(FaultSchedule, EffectiveRateComposesAndClamps)
{
    sim::FaultPlan plan;
    plan.busWriteNackRate = 0.2;
    plan.schedule = sim::parseFaultSchedule(
        "burst:bus-write-nack:100..200:0.3;"
        "burst:bus-write-nack:150..200:0.9");
    sim::FaultInjector inj(plan);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 0), 0.2);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 120), 0.5);
    // 0.2 + 0.3 + 0.9 clamps to 1.0.
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 170), 1.0);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 200), 0.2);
}

TEST(FaultSchedule, BrownoutDutyCycles)
{
    sim::FaultPlan plan;
    plan.schedule = sim::parseFaultSchedule(
        "brownout:bus-write-nack:0..10000:100/25:1.0");
    sim::FaultInjector inj(plan);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 0), 1.0);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 24), 1.0);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 25), 0.0);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 100), 1.0);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 199), 0.0);
}

TEST(FaultSchedule, StormEscalatesPerPeriod)
{
    sim::FaultPlan plan;
    plan.schedule = sim::parseFaultSchedule(
        "storm:bus-write-nack:1000..9000:0.1x2/1000");
    sim::FaultInjector inj(plan);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 1000), 0.1);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 2000), 0.2);
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 3500), 0.4);
    // Escalation clamps at 1.0.
    EXPECT_DOUBLE_EQ(
        inj.effectiveRate(sim::FaultSite::BusWriteNack, 8999), 1.0);
}

TEST(FaultSchedule, OneShotFiresExactlyOnce)
{
    sim::FaultPlan plan;
    plan.schedule =
        sim::parseFaultSchedule("oneshot:bus-write-nack:500");
    sim::FaultInjector inj(plan);
    EXPECT_FALSE(inj.shouldFault(sim::FaultSite::BusWriteNack, 499));
    EXPECT_TRUE(inj.shouldFault(sim::FaultSite::BusWriteNack, 503));
    for (Tick t = 504; t < 600; ++t)
        EXPECT_FALSE(inj.shouldFault(sim::FaultSite::BusWriteNack, t));
    EXPECT_EQ(inj.injectedAt(sim::FaultSite::BusWriteNack), 1u);
}

TEST(FaultSchedule, InjectorStreamsAndOneShotsRoundTripCheckpoint)
{
    sim::FaultPlan plan;
    plan.seed = 11;
    plan.busWriteNackRate = 0.5;
    plan.wireDropRate = 0.25;
    plan.schedule = sim::parseFaultSchedule(
        "oneshot:ack-drop:100;burst:bus-write-nack:0..100000:0.1");
    sim::FaultInjector before(plan);

    // Consume part of two streams and the one-shot.
    for (Tick t = 0; t < 200; ++t) {
        before.shouldFault(sim::FaultSite::BusWriteNack, t);
        before.shouldFault(sim::FaultSite::WireDrop, t);
        before.shouldFault(sim::FaultSite::AckDrop, t);
    }
    EXPECT_EQ(before.injectedAt(sim::FaultSite::AckDrop), 1u);

    sim::CheckpointWriter cw;
    cw.beginSection("faults");
    before.checkpointSave(cw);
    std::ostringstream os;
    cw.writeTo(os);
    std::istringstream is(os.str());
    sim::CheckpointReader cr = sim::CheckpointReader::readFrom(is);
    sim::FaultInjector after(plan);
    cr.openSection("faults");
    after.checkpointRestore(cr);
    cr.closeSection();

    // The restored injector continues both draw sequences exactly,
    // and the consumed one-shot must not fire again.
    for (Tick t = 200; t < 600; ++t) {
        EXPECT_EQ(before.shouldFault(sim::FaultSite::BusWriteNack, t),
                  after.shouldFault(sim::FaultSite::BusWriteNack, t))
            << "tick " << t;
        EXPECT_EQ(before.shouldFault(sim::FaultSite::WireDrop, t),
                  after.shouldFault(sim::FaultSite::WireDrop, t))
            << "tick " << t;
        EXPECT_FALSE(after.shouldFault(sim::FaultSite::AckDrop, t));
    }
}

TEST(FaultSchedule, FingerprintTracksScheduleContents)
{
    sim::FaultPlan a, b, c;
    a.schedule = sim::parseFaultSchedule("hang:100..200");
    b.schedule = sim::parseFaultSchedule("hang:100..200");
    c.schedule = sim::parseFaultSchedule("hang:100..201");
    EXPECT_EQ(a.scheduleFingerprint(), b.scheduleFingerprint());
    EXPECT_NE(a.scheduleFingerprint(), c.scheduleFingerprint());
}

} // namespace
