/**
 * @file
 * Tests for the CSBC checkpoint container: typed round trip, the
 * strict section protocol, and rejection of corrupt or truncated
 * streams (docs/CHECKPOINT.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace {

using csb::FatalError;
using csb::sim::CheckpointReader;
using csb::sim::CheckpointWriter;

CheckpointWriter
sampleWriter()
{
    CheckpointWriter cw;
    cw.beginSection("alpha");
    cw.putU8(0xab);
    cw.putU32(0xdeadbeef);
    cw.putU64(0x0123456789abcdefULL);
    cw.putF64(2.5);
    cw.putStr("hello");
    cw.beginSection("beta");
    const std::uint8_t blob[] = {1, 2, 3, 4, 5};
    cw.putBytes(blob, sizeof(blob));
    return cw;
}

std::string
serialized(const CheckpointWriter &cw)
{
    std::ostringstream os;
    cw.writeTo(os);
    return os.str();
}

TEST(Checkpoint, TypedRoundTrip)
{
    std::istringstream in(serialized(sampleWriter()));
    CheckpointReader cr = CheckpointReader::readFrom(in);
    EXPECT_EQ(cr.numSections(), 2u);
    EXPECT_TRUE(cr.hasSection("alpha"));
    EXPECT_TRUE(cr.hasSection("beta"));
    EXPECT_FALSE(cr.hasSection("gamma"));

    cr.openSection("alpha");
    EXPECT_EQ(cr.getU8(), 0xab);
    EXPECT_EQ(cr.getU32(), 0xdeadbeefu);
    EXPECT_EQ(cr.getU64(), 0x0123456789abcdefULL);
    EXPECT_DOUBLE_EQ(cr.getF64(), 2.5);
    EXPECT_EQ(cr.getStr(), "hello");
    cr.closeSection();

    cr.openSection("beta");
    auto blob = cr.getBytes();
    ASSERT_EQ(blob.size(), 5u);
    EXPECT_EQ(blob[0], 1);
    EXPECT_EQ(blob[4], 5);
    cr.closeSection();
}

TEST(Checkpoint, SectionsOpenInAnyOrder)
{
    std::istringstream in(serialized(sampleWriter()));
    CheckpointReader cr = CheckpointReader::readFrom(in);
    cr.openSection("beta");
    (void)cr.getBytes();
    cr.closeSection();
    cr.openSection("alpha");
    EXPECT_EQ(cr.getU8(), 0xab);
    // Abandoning the rest of "alpha" without closeSection() is the
    // only way to leave a section early -- and closing it must throw.
    EXPECT_THROW(cr.closeSection(), FatalError);
}

TEST(Checkpoint, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "checkpoint_rt.csbc";
    sampleWriter().writeFile(path);
    CheckpointReader cr = CheckpointReader::loadFile(path);
    cr.openSection("alpha");
    EXPECT_EQ(cr.getU8(), 0xab);
    std::remove(path.c_str());
}

TEST(Checkpoint, OpeningMissingSectionThrows)
{
    std::istringstream in(serialized(sampleWriter()));
    CheckpointReader cr = CheckpointReader::readFrom(in);
    EXPECT_THROW(cr.openSection("gamma"), FatalError);
}

TEST(Checkpoint, ReadingPastSectionEndThrows)
{
    CheckpointWriter cw;
    cw.beginSection("tiny");
    cw.putU8(1);
    std::istringstream in(serialized(cw));
    CheckpointReader cr = CheckpointReader::readFrom(in);
    cr.openSection("tiny");
    EXPECT_EQ(cr.getU8(), 1);
    EXPECT_THROW(cr.getU64(), FatalError);
}

TEST(Checkpoint, UnconsumedPayloadFailsClose)
{
    CheckpointWriter cw;
    cw.beginSection("tiny");
    cw.putU32(7);
    std::istringstream in(serialized(cw));
    CheckpointReader cr = CheckpointReader::readFrom(in);
    cr.openSection("tiny");
    EXPECT_THROW(cr.closeSection(), FatalError);
}

TEST(Checkpoint, RejectsBadMagic)
{
    std::string bytes = serialized(sampleWriter());
    bytes[0] = 'X';
    std::istringstream in(bytes);
    EXPECT_THROW(CheckpointReader::readFrom(in), FatalError);
}

TEST(Checkpoint, RejectsUnknownVersion)
{
    std::string bytes = serialized(sampleWriter());
    bytes[4] = 42; // version field, little-endian low byte
    std::istringstream in(bytes);
    EXPECT_THROW(CheckpointReader::readFrom(in), FatalError);
}

TEST(Checkpoint, RejectsTruncation)
{
    std::string bytes = serialized(sampleWriter());
    for (std::size_t cut : {std::size_t(10), bytes.size() / 2,
                            bytes.size() - 1}) {
        std::istringstream in(bytes.substr(0, cut));
        EXPECT_THROW(CheckpointReader::readFrom(in), FatalError)
            << "cut at " << cut;
    }
}

TEST(Checkpoint, RejectsTrailingBytes)
{
    std::istringstream in(serialized(sampleWriter()) + "junk");
    EXPECT_THROW(CheckpointReader::readFrom(in), FatalError);
}

TEST(Checkpoint, LoadFileRejectsMissingFile)
{
    EXPECT_THROW(CheckpointReader::loadFile("/nonexistent/x.csbc"),
                 FatalError);
}

} // namespace
