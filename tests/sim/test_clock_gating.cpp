/**
 * @file
 * Tests for component clock gating and the quiescent-system
 * fast-forward in the Simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clocked.hh"
#include "sim/simulator.hh"

namespace {

using csb::Tick;
using csb::sim::ClockDomain;
using csb::sim::Clocked;
using csb::sim::Simulator;

/**
 * A device that gates itself whenever its work queue is empty and
 * records every tick on which it actually ran.
 */
class GatingDevice : public Clocked
{
  public:
    explicit GatingDevice(Simulator *sim, Tick period = 1)
        : Clocked("gating_dev", ClockDomain(period)), sim_(sim)
    {}

    void
    tick() override
    {
        if (pending_ == 0) {
            gate();
            return;
        }
        --pending_;
        ranAt_.push_back(sim_->curTick());
    }

    void
    addWork(unsigned n)
    {
        ungate();
        pending_ += n;
    }

    const std::vector<Tick> &ranAt() const { return ranAt_; }
    unsigned pending() const { return pending_; }

  private:
    Simulator *sim_;
    unsigned pending_ = 0;
    std::vector<Tick> ranAt_;
};

TEST(ClockGating, GatedDeviceIsSkipped)
{
    Simulator sim;
    GatingDevice dev(&sim);
    sim.registerClocked(&dev);
    EXPECT_EQ(sim.numGated(), 0u);

    sim.runFor(5);  // first tick gates the idle device
    EXPECT_TRUE(dev.gated());
    EXPECT_EQ(sim.numGated(), 1u);
    EXPECT_TRUE(dev.ranAt().empty());
}

TEST(ClockGating, UngateResumesTicking)
{
    Simulator sim;
    GatingDevice dev(&sim);
    sim.registerClocked(&dev);

    sim.runFor(10);
    EXPECT_TRUE(dev.gated());

    dev.addWork(3);
    EXPECT_FALSE(dev.gated());
    EXPECT_EQ(sim.numGated(), 0u);

    sim.runFor(10);
    // Work drained over three consecutive edges, then re-gated.
    EXPECT_EQ(dev.ranAt(), (std::vector<Tick>{10, 11, 12}));
    EXPECT_EQ(dev.pending(), 0u);
    EXPECT_TRUE(dev.gated());
}

TEST(ClockGating, RunForFastForwardsQuiescentSpans)
{
    Simulator sim;
    GatingDevice dev(&sim);
    sim.registerClocked(&dev);

    // Work arrives via an event far in the future; the span between
    // gating and that event must be jumped, not stepped.
    sim.eventQueue().scheduleFunc(100'000, [&] { dev.addWork(1); });
    Tick end = sim.runFor(200'000);
    EXPECT_EQ(end, 200'000u);
    EXPECT_EQ(sim.curTick(), 200'000u);
    EXPECT_EQ(dev.ranAt(), (std::vector<Tick>{100'000}));
    // Nearly the whole run was skipped; only the edges around the
    // event and the initial gating tick were stepped.
    EXPECT_GT(sim.fastForwardedTicks(), 190'000u);
}

TEST(ClockGating, FastForwardPreservesTickExactness)
{
    // The same workload stepped tick-by-tick and fast-forwarded must
    // run the device on identical ticks.
    // An always-on component defeats the whole-system fast-forward so
    // the reference run steps every tick.
    class AlwaysOn : public Clocked
    {
      public:
        AlwaysOn() : Clocked("always_on", ClockDomain(1)) {}
        void tick() override {}
    };
    auto drive = [](bool gated_path) {
        Simulator sim;
        GatingDevice dev(&sim, 3);  // period-3 domain
        sim.registerClocked(&dev);
        AlwaysOn keeper;
        if (!gated_path)
            sim.registerClocked(&keeper);
        for (Tick t : {50u, 51u, 1000u, 7777u})
            sim.eventQueue().scheduleFunc(t, [&dev] { dev.addWork(2); });
        sim.runFor(10'000);
        return dev.ranAt();
    };
    auto fast = drive(true);
    auto slow = drive(false);
    EXPECT_EQ(fast, slow);
    EXPECT_FALSE(fast.empty());
}

TEST(ClockGating, RunChecksPredicateEveryTickByDefault)
{
    Simulator sim;
    GatingDevice dev(&sim);
    sim.registerClocked(&dev);

    // With fast-forward off (the default), run() must stop exactly
    // where a curTick()-based predicate says, even though the whole
    // system is gated.
    Tick end = sim.run([&] { return sim.curTick() >= 123; }, 10'000);
    EXPECT_EQ(end, 123u);
    EXPECT_EQ(sim.fastForwardedTicks(), 0u);
}

TEST(ClockGating, RunFastForwardsWhenOptedIn)
{
    Simulator sim;
    GatingDevice dev(&sim);
    sim.registerClocked(&dev);
    sim.setIdleFastForward(true);

    bool fired = false;
    sim.eventQueue().scheduleFunc(5'000, [&] {
        dev.addWork(1);
        fired = true;
    });
    Tick end = sim.run([&] { return fired && dev.pending() == 0; },
                       1'000'000);
    // The device drains its work during tick 5000; run() observes the
    // predicate at the top of the next tick.
    EXPECT_EQ(end, 5'001u);
    EXPECT_GT(sim.fastForwardedTicks(), 4'000u);
    EXPECT_EQ(dev.ranAt(), (std::vector<Tick>{5'000}));
}

TEST(ClockGating, WatchdogStillFiresAcrossFastForward)
{
    Simulator sim;
    GatingDevice dev(&sim);
    sim.registerClocked(&dev);
    sim.setIdleFastForward(true);
    sim.setWatchdog(1'000);

    // No progress is ever noted, so run() must throw at the watchdog
    // deadline instead of fast-forwarding past it.
    EXPECT_THROW(sim.run([] { return false; }, 100'000),
                 csb::FatalError);
    EXPECT_LE(sim.curTick(), 2'000u)
        << "fast-forward must not overshoot the watchdog deadline";
}

} // namespace
