/**
 * @file
 * Tests for the CSBT trace format: recorder/reader round trip, the
 * text dump mode, and strict rejection of corrupt or truncated input
 * (docs/TRACE_FORMAT.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/trace_recorder.hh"

namespace {

using csb::FatalError;
using csb::sim::MemTrace;
using csb::sim::TraceFlagEventPhase;
using csb::sim::TraceFlagSwap;
using csb::sim::TraceOp;
using csb::sim::TraceRecord;
using csb::sim::TraceRecorder;

TraceRecord
rec(csb::Tick tick, TraceOp op, csb::Addr addr, std::uint8_t size,
    std::uint64_t value = 0, std::uint8_t flags = 0)
{
    TraceRecord r;
    r.tick = tick;
    r.op = op;
    r.addr = addr;
    r.size = size;
    r.value = value;
    r.flags = flags;
    r.pid = 1;
    return r;
}

/** A small stream exercising every field. */
TraceRecorder
sampleRecorder()
{
    TraceRecorder recorder(1, 64);
    recorder.append(rec(10, TraceOp::CachedLoad, 0x4000, 8, 20));
    recorder.append(rec(10, TraceOp::UncachedStore, 0x2000'0000, 8,
                        0x1111111111111111ULL, TraceFlagEventPhase));
    recorder.append(rec(15, TraceOp::CsbStore, 0x2200'0000, 8,
                        0x2222222222222222ULL));
    recorder.append(rec(22, TraceOp::CsbFlush, 0x2200'0000, 8, 1));
    recorder.append(
        rec(30, TraceOp::SwapMemWrite, 0x4000, 8, 7, TraceFlagSwap));
    recorder.append(rec(31, TraceOp::Membar, 0, 0));
    return recorder;
}

TEST(TraceRecorder, StreamRoundTripPreservesEveryRecord)
{
    TraceRecorder recorder = sampleRecorder();
    std::ostringstream out;
    recorder.writeTo(out);

    std::istringstream in(out.str());
    MemTrace trace = MemTrace::readFrom(in);
    EXPECT_EQ(trace.numCpus(), 1u);
    EXPECT_EQ(trace.lineBytes(), 64u);
    EXPECT_EQ(trace.records(), recorder.records());
}

TEST(TraceRecorder, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "trace_roundtrip.csbt";
    TraceRecorder recorder = sampleRecorder();
    recorder.writeFile(path);
    MemTrace trace = MemTrace::loadFile(path);
    EXPECT_EQ(trace.records(), recorder.records());
    std::remove(path.c_str());
}

TEST(TraceRecorder, RecordsForCpuFiltersAndPreservesOrder)
{
    TraceRecorder recorder(2, 64);
    TraceRecord a = rec(1, TraceOp::UncachedStore, 0x2000'0000, 8);
    TraceRecord b = a;
    b.cpu = 1;
    b.tick = 2;
    TraceRecord c = a;
    c.tick = 3;
    recorder.append(a);
    recorder.append(b);
    recorder.append(c);

    MemTrace trace = MemTrace::fromRecorder(recorder);
    auto cpu0 = trace.recordsForCpu(0);
    ASSERT_EQ(cpu0.size(), 2u);
    EXPECT_EQ(cpu0[0], a);
    EXPECT_EQ(cpu0[1], c);
    EXPECT_EQ(trace.recordsForCpu(1).size(), 1u);
}

TEST(TraceRecorder, TextDumpNamesEveryOp)
{
    MemTrace trace = MemTrace::fromRecorder(sampleRecorder());
    std::ostringstream os;
    trace.dumpText(os);
    std::string text = os.str();
    for (const char *op : {"cached-load", "uncached-store", "csb-store",
                           "csb-flush", "swap-mem-write", "membar"})
        EXPECT_NE(text.find(op), std::string::npos) << op;
    // One line per record plus the header comment.
    EXPECT_NE(text.find("CSBT"), std::string::npos);
}

TEST(TraceRecorder, RejectsBadMagic)
{
    TraceRecorder recorder = sampleRecorder();
    std::ostringstream out;
    recorder.writeTo(out);
    std::string bytes = out.str();
    bytes[0] = 'X';
    std::istringstream in(bytes);
    EXPECT_THROW(MemTrace::readFrom(in), FatalError);
}

TEST(TraceRecorder, RejectsUnknownVersion)
{
    TraceRecorder recorder = sampleRecorder();
    std::ostringstream out;
    recorder.writeTo(out);
    std::string bytes = out.str();
    bytes[4] = 99; // version field, little-endian low byte
    std::istringstream in(bytes);
    EXPECT_THROW(MemTrace::readFrom(in), FatalError);
}

TEST(TraceRecorder, RejectsTruncatedHeader)
{
    TraceRecorder recorder = sampleRecorder();
    std::ostringstream out;
    recorder.writeTo(out);
    std::istringstream in(out.str().substr(0, 17));
    EXPECT_THROW(MemTrace::readFrom(in), FatalError);
}

TEST(TraceRecorder, RejectsTruncatedRecords)
{
    TraceRecorder recorder = sampleRecorder();
    std::ostringstream out;
    recorder.writeTo(out);
    std::string bytes = out.str();
    std::istringstream in(bytes.substr(0, bytes.size() - 5));
    EXPECT_THROW(MemTrace::readFrom(in), FatalError);
}

TEST(TraceRecorder, RejectsTrailingBytes)
{
    TraceRecorder recorder = sampleRecorder();
    std::ostringstream out;
    recorder.writeTo(out);
    std::istringstream in(out.str() + "junk");
    EXPECT_THROW(MemTrace::readFrom(in), FatalError);
}

TEST(TraceRecorder, RejectsNonMonotonicTicks)
{
    TraceRecorder recorder(1, 64);
    recorder.append(rec(10, TraceOp::Membar, 0, 0));
    recorder.append(rec(5, TraceOp::Membar, 0, 0));
    std::ostringstream out;
    recorder.writeTo(out);
    std::istringstream in(out.str());
    EXPECT_THROW(MemTrace::readFrom(in), FatalError);
}

TEST(TraceRecorder, LoadFileRejectsMissingFile)
{
    EXPECT_THROW(MemTrace::loadFile("/nonexistent/trace.csbt"),
                 FatalError);
}

} // namespace
