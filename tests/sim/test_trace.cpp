/**
 * @file
 * Tests for the debug trace channels.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"

namespace {

namespace trace = csb::sim::trace;

class TraceFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::disable("all");
        trace::setOutput(&out);
        trace::setTickSource([this] { return tick; });
    }

    void
    TearDown() override
    {
        trace::disable("all");
        trace::setOutput(nullptr);
        trace::setTickSource(nullptr);
    }

    std::ostringstream out;
    csb::Tick tick = 0;
};

TEST_F(TraceFixture, DisabledChannelIsSilent)
{
    trace::log("quiet", "should not appear");
    EXPECT_TRUE(out.str().empty());
    EXPECT_FALSE(trace::enabled("quiet"));
}

TEST_F(TraceFixture, EnabledChannelEmits)
{
    trace::enable("loud");
    tick = 42;
    trace::log("loud", "value=", 7);
    EXPECT_NE(out.str().find("loud: value=7"), std::string::npos);
    EXPECT_NE(out.str().find("42"), std::string::npos);
}

TEST_F(TraceFixture, OtherChannelsStaySilent)
{
    trace::enable("a");
    trace::log("b", "nope");
    EXPECT_TRUE(out.str().empty());
}

TEST_F(TraceFixture, AllEnablesEverything)
{
    trace::enable("all");
    trace::log("anything", "yes");
    EXPECT_NE(out.str().find("anything: yes"), std::string::npos);
}

TEST_F(TraceFixture, DisableStopsEmission)
{
    trace::enable("ch");
    trace::log("ch", "one");
    trace::disable("ch");
    trace::log("ch", "two");
    EXPECT_NE(out.str().find("one"), std::string::npos);
    EXPECT_EQ(out.str().find("two"), std::string::npos);
}

TEST_F(TraceFixture, StreamedArgumentsFormat)
{
    trace::enable("fmt");
    trace::log("fmt", "addr=0x", std::hex, 255, std::dec, " n=", 10);
    EXPECT_NE(out.str().find("addr=0xff n=10"), std::string::npos);
}

} // namespace
