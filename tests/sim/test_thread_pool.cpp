/**
 * @file
 * Tests of the worker pool underneath the sweep engine: every task
 * runs exactly once, the bounded queue applies back-pressure instead
 * of growing, exceptions surface at wait(), and the pool survives
 * reuse and destruction with work still queued.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "sim/thread_pool.hh"

namespace {

using csb::sim::ThreadPool;

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4u);
    std::atomic<int> counter{0};
    constexpr int n = 200;
    for (int i = 0; i < n; ++i)
        pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), n);
    EXPECT_EQ(pool.tasksRun(), std::uint64_t(n));
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool; // 0 = auto must construct and work
    std::atomic<int> ran{0};
    pool.submit([&] { ran = 1; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, PoolIsReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { counter.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(counter.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, BoundedQueueAppliesBackPressure)
{
    // One worker, capacity 2: park the worker on a gate, then fill
    // the queue.  The next submit must block until the gate opens.
    ThreadPool pool(1, 2);
    std::mutex m;
    std::condition_variable cv;
    bool gate_open = false;
    pool.submit([&] {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return gate_open; });
    });
    // Give the worker time to dequeue the blocker, then fill up.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.submit([] {});
    pool.submit([] {});

    std::atomic<bool> fourth_submitted{false};
    std::thread producer([&] {
        pool.submit([] {});
        fourth_submitted = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(fourth_submitted.load())
        << "submit() returned although the queue was full";

    {
        std::lock_guard<std::mutex> lock(m);
        gate_open = true;
    }
    cv.notify_all();
    producer.join();
    pool.wait();
    EXPECT_TRUE(fourth_submitted.load());
    EXPECT_EQ(pool.tasksRun(), 4u);
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: the pool keeps working afterwards.
    std::atomic<int> ran{0};
    pool.submit([&] { ran = 1; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionIsKept)
{
    ThreadPool pool(1); // single worker => completion order == submit order
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::logic_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { counter.fetch_add(1); });
        // No wait(): the destructor must run the backlog, not drop it.
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, StressManyTasksManyWorkers)
{
    ThreadPool pool(8, 16);
    std::atomic<std::uint64_t> sum{0};
    constexpr int n = 2000;
    for (int i = 0; i < n; ++i)
        pool.submit([&sum, i] { sum.fetch_add(std::uint64_t(i)); });
    pool.wait();
    EXPECT_EQ(sum.load(), std::uint64_t(n) * (n - 1) / 2);
    EXPECT_EQ(pool.tasksRun(), std::uint64_t(n));
}

} // namespace
