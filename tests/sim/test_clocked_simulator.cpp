/**
 * @file
 * Unit tests for clock domains, Clocked objects and the Simulator
 * driver (evaluation order, event/tick interleaving).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clocked.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using sim::ClockDomain;
using sim::Clocked;
using sim::Simulator;

TEST(ClockDomain, EdgesAndCycles)
{
    ClockDomain fast(1);
    ClockDomain slow(6);
    EXPECT_TRUE(fast.isEdge(0));
    EXPECT_TRUE(fast.isEdge(5));
    EXPECT_TRUE(slow.isEdge(0));
    EXPECT_FALSE(slow.isEdge(5));
    EXPECT_TRUE(slow.isEdge(6));
    EXPECT_EQ(slow.cycleAt(0), 0u);
    EXPECT_EQ(slow.cycleAt(5), 0u);
    EXPECT_EQ(slow.cycleAt(6), 1u);
    EXPECT_EQ(slow.cycleAt(35), 5u);
    EXPECT_EQ(slow.tickOfCycle(3), 18u);
}

TEST(ClockDomain, PhaseShiftsEdges)
{
    ClockDomain shifted(4, 2);
    EXPECT_FALSE(shifted.isEdge(0));
    EXPECT_TRUE(shifted.isEdge(2));
    EXPECT_TRUE(shifted.isEdge(6));
    EXPECT_EQ(shifted.nextEdgeAt(3), 6u);
    EXPECT_EQ(shifted.nextEdgeAt(2), 2u);
    EXPECT_EQ(shifted.nextEdgeAt(0), 2u);
}

class Recorder : public Clocked
{
  public:
    Recorder(std::string name, ClockDomain domain, int order,
             std::vector<std::pair<std::string, Tick>> *log,
             Simulator *simulator)
        : Clocked(std::move(name), domain, order), log_(log),
          sim_(simulator)
    {}

    void
    tick() override
    {
        log_->emplace_back(name(), sim_->curTick());
    }

  private:
    std::vector<std::pair<std::string, Tick>> *log_;
    Simulator *sim_;
};

TEST(Simulator, RespectsClockDomains)
{
    Simulator simulator;
    std::vector<std::pair<std::string, Tick>> log;
    Recorder cpu("cpu", ClockDomain(1), 0, &log, &simulator);
    Recorder bus("bus", ClockDomain(3), -1, &log, &simulator);
    simulator.registerClocked(&cpu);
    simulator.registerClocked(&bus);
    simulator.runFor(6);

    unsigned cpu_ticks = 0;
    unsigned bus_ticks = 0;
    for (const auto &[name, tick] : log) {
        if (name == "cpu")
            ++cpu_ticks;
        else
            ++bus_ticks;
    }
    EXPECT_EQ(cpu_ticks, 6u);
    EXPECT_EQ(bus_ticks, 2u); // edges at ticks 0 and 3
}

TEST(Simulator, EvalOrderWithinTick)
{
    Simulator simulator;
    std::vector<std::pair<std::string, Tick>> log;
    Recorder late("late", ClockDomain(1), 10, &log, &simulator);
    Recorder early("early", ClockDomain(1), -10, &log, &simulator);
    // Register in the "wrong" order; evalOrder must win.
    simulator.registerClocked(&late);
    simulator.registerClocked(&early);
    simulator.runFor(1);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].first, "early");
    EXPECT_EQ(log[1].first, "late");
}

TEST(Simulator, EventsFireBeforeClockedAtSameTick)
{
    Simulator simulator;
    std::vector<std::string> order;
    class Ticker : public Clocked
    {
      public:
        Ticker(std::vector<std::string> *order, Simulator *simulator)
            : Clocked("t", ClockDomain(1)), order_(order),
              sim_(simulator)
        {}
        void
        tick() override
        {
            if (sim_->curTick() == 5)
                order_->push_back("clocked");
        }

      private:
        std::vector<std::string> *order_;
        Simulator *sim_;
    };
    Ticker ticker(&order, &simulator);
    simulator.registerClocked(&ticker);
    simulator.eventQueue().scheduleFunc(5, [&] {
        order.push_back("event");
    });
    simulator.runFor(8);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "event");
    EXPECT_EQ(order[1], "clocked");
}

TEST(Simulator, RunStopsOnPredicate)
{
    Simulator simulator;
    Tick end = simulator.run(
        [&] { return simulator.curTick() >= 10; }, 1000);
    EXPECT_EQ(end, 10u);
}

TEST(Simulator, RunHonoursMaxTicks)
{
    Simulator simulator;
    Tick end = simulator.run([] { return false; }, 25);
    EXPECT_EQ(end, 25u);
}

} // namespace
