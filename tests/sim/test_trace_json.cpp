/**
 * @file
 * Unit tests for the Chrome trace-event JSON writer: document
 * validity, monotonic timestamps after flush, track/thread metadata,
 * span and instant fields, and enable/disable state handling.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "sim/trace_json.hh"

#include "mini_json.hh"

namespace {

using namespace csb::sim::trace;

/** RAII guard: point the writer at a stream, always disable after. */
class TraceCapture
{
  public:
    TraceCapture() { jsonEnable(&os_); }
    ~TraceCapture() { jsonDisable(); }

    mini_json::Value
    flushAndParse()
    {
        jsonFlush();
        return mini_json::parse(os_.str());
    }

    std::string text() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

TEST(TraceJson, DisabledByDefaultAndCostsNothing)
{
    // No capture active: emission must be a no-op, not a crash.
    jsonDisable();
    EXPECT_FALSE(jsonEnabled());
    jsonSpan("bus", "write", 0, 10);
    EXPECT_EQ(jsonPendingEvents(), 0u);
}

TEST(TraceJson, ProducesAValidDocument)
{
    TraceCapture capture;
    EXPECT_TRUE(jsonEnabled());
    jsonSpan("bus", "write 64B", 10, 19,
             {{"addr", "0x1000"}, {"master", "csb.port"}});
    jsonInstant("dev", "burst 64B", 19, {{"device", "dev"}});
    EXPECT_EQ(jsonPendingEvents(), 2u);

    mini_json::Value doc = capture.flushAndParse();
    EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
    ASSERT_TRUE(doc.at("traceEvents").isArray());
    // 2 thread_name metadata records + the two events.
    EXPECT_EQ(doc.at("traceEvents").array.size(), 4u);
    EXPECT_EQ(jsonPendingEvents(), 0u); // flush cleared the buffer
}

TEST(TraceJson, SpanFieldsAreComplete)
{
    TraceCapture capture;
    jsonSpan("bus", "write 64B", 10, 19, {{"addr", "0x1000"}});
    mini_json::Value doc = capture.flushAndParse();

    const mini_json::Value *span = nullptr;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev->at("ph").string == "X")
            span = ev.get();
    }
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->at("name").string, "write 64B");
    EXPECT_EQ(span->at("cat").string, "bus");
    EXPECT_DOUBLE_EQ(span->at("ts").number, 10.0);
    EXPECT_DOUBLE_EQ(span->at("dur").number, 9.0);
    EXPECT_EQ(span->at("args").at("addr").string, "0x1000");
}

TEST(TraceJson, ZeroLengthSpanGetsMinimumDuration)
{
    TraceCapture capture;
    jsonSpan("bus", "tiny", 5, 5);
    mini_json::Value doc = capture.flushAndParse();
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev->at("ph").string == "X")
            EXPECT_GE(ev->at("dur").number, 1.0);
    }
}

TEST(TraceJson, TimestampsAreMonotonicAfterFlush)
{
    TraceCapture capture;
    // Emit deliberately out of order; flush must sort by ts.
    jsonSpan("bus", "third", 30, 40);
    jsonInstant("dev", "first", 1);
    jsonSpan("csb", "second", 12, 20);
    mini_json::Value doc = capture.flushAndParse();

    double last_ts = -1;
    unsigned events = 0;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev->at("ph").string == "M")
            continue; // metadata carries no timestamp
        ++events;
        EXPECT_GE(ev->at("ts").number, last_ts);
        last_ts = ev->at("ts").number;
    }
    EXPECT_EQ(events, 3u);
    EXPECT_DOUBLE_EQ(last_ts, 30.0);
}

TEST(TraceJson, TracksBecomeNamedThreads)
{
    TraceCapture capture;
    jsonSpan("bus", "a", 0, 1);
    jsonSpan("csb", "b", 2, 3);
    jsonSpan("bus", "c", 4, 5);
    mini_json::Value doc = capture.flushAndParse();

    std::map<double, std::string> tid_names;
    std::map<std::string, double> span_tids;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev->at("ph").string == "M") {
            EXPECT_EQ(ev->at("name").string, "thread_name");
            tid_names[ev->at("tid").number] =
                ev->at("args").at("name").string;
        } else {
            span_tids[ev->at("name").string] = ev->at("tid").number;
        }
    }
    ASSERT_EQ(tid_names.size(), 2u);
    // Same track -> same tid; different tracks -> different tids.
    EXPECT_EQ(span_tids.at("a"), span_tids.at("c"));
    EXPECT_NE(span_tids.at("a"), span_tids.at("b"));
    EXPECT_EQ(tid_names.at(span_tids.at("a")), "bus");
    EXPECT_EQ(tid_names.at(span_tids.at("b")), "csb");
}

TEST(TraceJson, InstantEventsCarryScope)
{
    TraceCapture capture;
    jsonInstant("csb", "flush-fail", 7,
                {{"expected", "8"}, {"counter", "3"}});
    mini_json::Value doc = capture.flushAndParse();
    bool found = false;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev->at("ph").string != "i")
            continue;
        found = true;
        EXPECT_EQ(ev->at("name").string, "flush-fail");
        EXPECT_DOUBLE_EQ(ev->at("ts").number, 7.0);
        EXPECT_EQ(ev->at("s").string, "t");
        EXPECT_EQ(ev->at("args").at("expected").string, "8");
    }
    EXPECT_TRUE(found);
}

TEST(TraceJson, DisableDropsBufferedEvents)
{
    {
        TraceCapture capture;
        jsonSpan("bus", "dropped", 0, 1);
        EXPECT_EQ(jsonPendingEvents(), 1u);
    } // ~TraceCapture -> jsonDisable()
    EXPECT_FALSE(jsonEnabled());
    EXPECT_EQ(jsonPendingEvents(), 0u);
}

TEST(TraceJson, HexArgFormats)
{
    EXPECT_EQ(hexArg(0x22000000u), "0x22000000");
    EXPECT_EQ(hexArg(0), "0x0");
}

} // namespace
