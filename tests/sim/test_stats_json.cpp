/**
 * @file
 * Unit tests for the JSON statistics export: string escaping, number
 * formatting, nested group serialization, Distribution bucketing and
 * percentiles, and reset behaviour.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/json.hh"
#include "sim/stats.hh"

#include "mini_json.hh"

namespace {

using namespace csb::sim;
using namespace csb::sim::stats;

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("bus cycles"), "bus cycles");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line1\nline2"), "line1\\nline2");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(JsonNumber, IntegralDoublesPrintAsIntegers)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
    EXPECT_EQ(jsonNumber(2.5), "2.5");
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
}

TEST(JsonWriterTest, RoundTripsThroughParser)
{
    std::ostringstream os;
    {
        JsonWriter jw(os, 2);
        jw.beginObject();
        jw.kv("name", "quo\"ted");
        jw.key("values").beginArray();
        jw.value(1).value(2.5).value(true);
        jw.endArray();
        jw.key("nested").beginObject();
        jw.kv("x", std::uint64_t{7});
        jw.endObject();
        jw.endObject();
    }
    mini_json::Value doc = mini_json::parse(os.str());
    EXPECT_EQ(doc.at("name").string, "quo\"ted");
    ASSERT_EQ(doc.at("values").array.size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("values").array[1]->number, 2.5);
    EXPECT_TRUE(doc.at("values").array[2]->boolean);
    EXPECT_DOUBLE_EQ(doc.at("nested").at("x").number, 7.0);
}

TEST(StatsJson, NestedGroupsMirrorTheTree)
{
    StatGroup root("sys");
    StatGroup bus("bus", &root);
    Scalar cycles(&root, "cycles", "total cycles");
    Scalar writes(&bus, "writes", "bus \"write\" count");
    Average lat(&bus, "lat", "latency");
    cycles = 42;
    writes = 7;
    lat.sample(10);
    lat.sample(20);

    std::ostringstream os;
    root.dumpStatsJson(os);
    mini_json::Value doc = mini_json::parse(os.str());

    EXPECT_EQ(doc.at("cycles").at("type").string, "scalar");
    EXPECT_DOUBLE_EQ(doc.at("cycles").at("value").number, 42.0);
    EXPECT_EQ(doc.at("cycles").at("desc").string, "total cycles");

    const mini_json::Value &b = doc.at("bus");
    EXPECT_DOUBLE_EQ(b.at("writes").at("value").number, 7.0);
    EXPECT_EQ(b.at("writes").at("desc").string, "bus \"write\" count");
    EXPECT_EQ(b.at("lat").at("type").string, "average");
    EXPECT_DOUBLE_EQ(b.at("lat").at("value").number, 15.0);
    EXPECT_DOUBLE_EQ(b.at("lat").at("sum").number, 30.0);
    EXPECT_DOUBLE_EQ(b.at("lat").at("count").number, 2.0);
}

TEST(StatsJson, FormulaEvaluatesAtDumpTime)
{
    StatGroup g("g");
    Scalar a(&g, "a", "");
    Formula twice(&g, "twice", "2a", [&] { return 2 * a.value(); });
    a = 21;
    std::ostringstream os;
    g.dumpStatsJson(os);
    mini_json::Value doc = mini_json::parse(os.str());
    EXPECT_EQ(doc.at("twice").at("type").string, "formula");
    EXPECT_DOUBLE_EQ(doc.at("twice").at("value").number, 42.0);
}

TEST(StatsJson, DistributionFieldsAndBuckets)
{
    StatGroup g("g");
    Distribution d(&g, "d", "a histogram", 0, 10, 2);
    d.sample(1);
    d.sample(3);
    d.sample(3);
    d.sample(100);  // overflow
    d.sample(-5);   // underflow

    std::ostringstream os;
    g.dumpStatsJson(os);
    mini_json::Value doc = mini_json::parse(os.str());
    const mini_json::Value &j = doc.at("d");
    EXPECT_EQ(j.at("type").string, "distribution");
    EXPECT_DOUBLE_EQ(j.at("samples").number, 5.0);
    EXPECT_DOUBLE_EQ(j.at("underflow").number, 1.0);
    EXPECT_DOUBLE_EQ(j.at("overflow").number, 1.0);
    EXPECT_DOUBLE_EQ(j.at("min_sampled").number, -5.0);
    EXPECT_DOUBLE_EQ(j.at("max_sampled").number, 100.0);
    ASSERT_TRUE(j.at("buckets").isArray());
    // (max - min) / bucket_size + 1 buckets: the top edge is held in
    // its own bucket so sampling exactly `max` is not overflow.
    ASSERT_EQ(j.at("buckets").array.size(), 6u);
    EXPECT_DOUBLE_EQ(j.at("buckets").array[0]->number, 1.0); // [0,2)
    EXPECT_DOUBLE_EQ(j.at("buckets").array[1]->number, 2.0); // [2,4)
    EXPECT_TRUE(j.has("p50"));
    EXPECT_TRUE(j.has("p90"));
    EXPECT_TRUE(j.has("p99"));
}

TEST(DistributionPercentile, ResolvesToBucketUpperEdge)
{
    StatGroup g("g");
    Distribution d(&g, "d", "", 0, 100, 10);
    for (int i = 0; i < 90; ++i)
        d.sample(5);   // bucket [0,10)
    for (int i = 0; i < 10; ++i)
        d.sample(95);  // bucket [90,100)
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.9), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.95), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
}

TEST(DistributionPercentile, HandlesUnderflowOverflowAndEmpty)
{
    StatGroup g("g");
    Distribution d(&g, "d", "", 0, 10, 2);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0); // empty
    d.sample(-3);
    d.sample(50);
    // First half of the mass is the underflow sample -> minSampled;
    // the tail is the overflow sample -> maxSampled.
    EXPECT_DOUBLE_EQ(d.percentile(0.5), -3.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 50.0);
}

TEST(StatsJson, ResetClearsEverySerializedValue)
{
    StatGroup root("sys");
    StatGroup child("c", &root);
    Scalar s(&root, "s", "");
    Distribution d(&child, "d", "", 0, 10, 2);
    s = 5;
    d.sample(3);
    root.resetStats();

    std::ostringstream os;
    root.dumpStatsJson(os);
    mini_json::Value doc = mini_json::parse(os.str());
    EXPECT_DOUBLE_EQ(doc.at("s").at("value").number, 0.0);
    const mini_json::Value &j = doc.at("c").at("d");
    EXPECT_DOUBLE_EQ(j.at("samples").number, 0.0);
    for (const auto &bucket : j.at("buckets").array)
        EXPECT_DOUBLE_EQ(bucket->number, 0.0);
}

} // namespace
