/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace {

using namespace csb::sim::stats;

TEST(Stats, ScalarArithmetic)
{
    StatGroup group("g");
    Scalar s(&group, "s", "a scalar");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_EQ(s.value(), 3.5);
    s = 10;
    EXPECT_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, AverageTracksMean)
{
    StatGroup group("g");
    Average avg(&group, "avg", "an average");
    EXPECT_EQ(avg.value(), 0.0);
    avg.sample(10);
    avg.sample(20);
    avg.sample(30);
    EXPECT_DOUBLE_EQ(avg.value(), 20.0);
    EXPECT_EQ(avg.count(), 3u);
    EXPECT_DOUBLE_EQ(avg.sum(), 60.0);
}

TEST(Stats, DistributionBucketsAndOverflow)
{
    StatGroup group("g");
    Distribution dist(&group, "d", "a histogram", 0, 10, 2);
    dist.sample(1);
    dist.sample(3);
    dist.sample(3);
    dist.sample(100);  // overflow
    dist.sample(-5);   // underflow
    EXPECT_EQ(dist.totalSamples(), 5u);
    EXPECT_EQ(dist.overflow(), 1u);
    EXPECT_EQ(dist.underflow(), 1u);
    EXPECT_EQ(dist.buckets()[0], 1u); // [0,2)
    EXPECT_EQ(dist.buckets()[1], 2u); // [2,4)
    EXPECT_EQ(dist.minSampled(), -5);
    EXPECT_EQ(dist.maxSampled(), 100);
}

TEST(Stats, PercentileEmptyDistributionIsZero)
{
    StatGroup group("g");
    Distribution dist(&group, "d", "", 0, 10, 2);
    EXPECT_EQ(dist.percentile(0.0), 0.0);
    EXPECT_EQ(dist.percentile(0.5), 0.0);
    EXPECT_EQ(dist.percentile(1.0), 0.0);
}

TEST(Stats, PercentileSingleSample)
{
    StatGroup group("g");
    Distribution dist(&group, "d", "", 0, 10, 2);
    dist.sample(3);
    // Every percentile of a one-sample distribution resolves to the
    // upper edge of the bucket holding that sample: [2,4) -> 4.
    EXPECT_DOUBLE_EQ(dist.percentile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(dist.percentile(0.5), 4.0);
    EXPECT_DOUBLE_EQ(dist.percentile(1.0), 4.0);
}

TEST(Stats, PercentileClampsOutOfRangeP)
{
    StatGroup group("g");
    Distribution dist(&group, "d", "", 0, 10, 2);
    dist.sample(1);
    dist.sample(9);
    EXPECT_DOUBLE_EQ(dist.percentile(-0.5), dist.percentile(0.0));
    EXPECT_DOUBLE_EQ(dist.percentile(2.0), dist.percentile(1.0));
}

TEST(Stats, PercentileBoundaries)
{
    StatGroup group("g");
    Distribution dist(&group, "d", "", 0, 10, 2);
    for (int v : {1, 3, 3, 5, 9})
        dist.sample(v);
    // rank(p=0) clamps to the first sample: bucket [0,2) -> 2.
    EXPECT_DOUBLE_EQ(dist.percentile(0.0), 2.0);
    // rank(p=0.5) = ceil(2.5) = 3rd sample: bucket [2,4) -> 4.
    EXPECT_DOUBLE_EQ(dist.percentile(0.5), 4.0);
    // rank(p=1) = 5th sample: bucket [8,10] upper edge clamps to max.
    EXPECT_DOUBLE_EQ(dist.percentile(1.0), 10.0);
}

TEST(Stats, PercentileUnderAndOverflowSamples)
{
    StatGroup group("g");
    Distribution dist(&group, "d", "", 0, 10, 2);
    dist.sample(-7);
    dist.sample(100);
    // Ranks inside the underflow bucket report the true minimum;
    // ranks past the last bucket report the true maximum.
    EXPECT_DOUBLE_EQ(dist.percentile(0.0), -7.0);
    EXPECT_DOUBLE_EQ(dist.percentile(1.0), 100.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup group("g");
    Scalar a(&group, "a", "");
    Scalar b(&group, "b", "");
    Formula ratio(&group, "ratio", "a/b", [&] {
        return b.value() != 0 ? a.value() / b.value() : 0.0;
    });
    EXPECT_EQ(ratio.value(), 0.0);
    a = 10;
    b = 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 2.5);
}

TEST(Stats, GroupHierarchyNames)
{
    StatGroup root("system");
    StatGroup child("cpu", &root);
    StatGroup grand("l1", &child);
    EXPECT_EQ(grand.fullStatName(), "system.cpu.l1");
}

TEST(Stats, DumpContainsAllStats)
{
    StatGroup root("sys");
    StatGroup child("bus", &root);
    Scalar a(&root, "cycles", "total cycles");
    Scalar b(&child, "writes", "bus writes");
    a = 42;
    b = 7;
    std::ostringstream os;
    root.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("sys.cycles"), std::string::npos);
    EXPECT_NE(out.find("sys.bus.writes"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("total cycles"), std::string::npos);
}

TEST(Stats, ResetRecurses)
{
    StatGroup root("sys");
    StatGroup child("bus", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a = 1;
    b = 2;
    root.resetStats();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}

TEST(Stats, FindStatByName)
{
    StatGroup group("g");
    Scalar a(&group, "hits", "");
    EXPECT_EQ(group.findStat("hits"), &a);
    EXPECT_EQ(group.findStat("misses"), nullptr);
}

} // namespace
