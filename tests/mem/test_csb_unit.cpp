/**
 * @file
 * Unit tests of the conditional store buffer driven directly (no
 * CPU): the exact semantics of section 3.2.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "bus/system_bus.hh"
#include "io/burst_device.hh"
#include "mem/csb.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using mem::ConditionalStoreBuffer;
using mem::CsbParams;

class CsbFixture : public ::testing::Test
{
  protected:
    void
    make(CsbParams params = {})
    {
        bus::BusParams bus_params;
        bus_params.kind = bus::BusKind::Multiplexed;
        bus_params.widthBytes = 8;
        bus_params.ratio = 6;
        bus_params.maxBurstBytes = 128;
        bus = std::make_unique<bus::SystemBus>(sim, bus_params);
        device = std::make_unique<io::BurstDevice>(12, 128);
        bus->addTarget(0, 0x100000, device.get());
        unit = std::make_unique<ConditionalStoreBuffer>(sim, *bus, params);
    }

    void
    storeDword(ProcId pid, Addr addr, std::uint64_t value)
    {
        unit->store(pid, addr, 8, &value);
    }

    void
    drain()
    {
        sim.run([&] { return unit->drained() && bus->quiescent(); },
                10000);
    }

    sim::Simulator sim;
    std::unique_ptr<bus::SystemBus> bus;
    std::unique_ptr<io::BurstDevice> device;
    std::unique_ptr<ConditionalStoreBuffer> unit;
};

TEST_F(CsbFixture, HitCounterCountsMatchingStores)
{
    make();
    storeDword(1, 0x1000, 1);
    storeDword(1, 0x1008, 2);
    storeDword(1, 0x1030, 3);
    EXPECT_EQ(unit->hitCounter(), 3u);
    EXPECT_EQ(unit->lineAddr(), 0x1000u);
    EXPECT_EQ(unit->pid(), 1);
}

TEST_F(CsbFixture, StoresMayArriveInAnyOrder)
{
    make();
    storeDword(1, 0x1038, 8);
    storeDword(1, 0x1000, 1);
    storeDword(1, 0x1018, 4);
    EXPECT_EQ(unit->hitCounter(), 3u);
}

TEST_F(CsbFixture, DifferentPidClearsAndRestarts)
{
    make();
    storeDword(1, 0x1000, 1);
    storeDword(1, 0x1008, 2);
    storeDword(2, 0x1000, 99); // competitor
    EXPECT_EQ(unit->hitCounter(), 1u);
    EXPECT_EQ(unit->pid(), 2);
    EXPECT_EQ(unit->conflictsOnStore.value(), 1.0);
}

TEST_F(CsbFixture, DifferentLineClearsAndRestarts)
{
    make();
    storeDword(1, 0x1000, 1);
    storeDword(1, 0x2000, 2); // other line, same pid
    EXPECT_EQ(unit->hitCounter(), 1u);
    EXPECT_EQ(unit->lineAddr(), 0x2000u);
}

TEST_F(CsbFixture, FlushSucceedsOnExactMatch)
{
    make();
    storeDword(1, 0x1000, 0xa);
    storeDword(1, 0x1008, 0xb);
    EXPECT_TRUE(unit->conditionalFlush(1, 0x1000, 2));
    EXPECT_EQ(unit->hitCounter(), 0u);
    EXPECT_EQ(unit->flushesSucceeded.value(), 1.0);
}

TEST_F(CsbFixture, FlushFailsOnWrongCount)
{
    make();
    storeDword(1, 0x1000, 0xa);
    storeDword(1, 0x1008, 0xb);
    EXPECT_FALSE(unit->conditionalFlush(1, 0x1000, 3));
    EXPECT_EQ(unit->hitCounter(), 0u) << "failed flush clears the buffer";
    EXPECT_EQ(unit->flushesFailed.value(), 1.0);
    drain();
    EXPECT_EQ(device->writeLog().size(), 0u) << "nothing was issued";
}

TEST_F(CsbFixture, FlushFailsOnWrongPid)
{
    make();
    storeDword(1, 0x1000, 0xa);
    EXPECT_FALSE(unit->conditionalFlush(2, 0x1000, 1));
}

TEST_F(CsbFixture, FlushFailsOnWrongAddress)
{
    make();
    storeDword(1, 0x1000, 0xa);
    EXPECT_FALSE(unit->conditionalFlush(1, 0x2000, 1));
}

TEST_F(CsbFixture, AddressCheckCanBeDisabled)
{
    CsbParams params;
    params.checkAddress = false;
    make(params);
    storeDword(1, 0x1000, 0xa);
    // Same pid+count, different address: accepted when the optional
    // address check is off (section 3.2 note).
    EXPECT_TRUE(unit->conditionalFlush(1, 0x2000, 1));
}

TEST_F(CsbFixture, FlushOnEmptyBufferFails)
{
    make();
    EXPECT_FALSE(unit->conditionalFlush(1, 0x1000, 0));
    EXPECT_FALSE(unit->conditionalFlush(1, 0x1000, 1));
}

TEST_F(CsbFixture, SuccessfulFlushIssuesOneZeroPaddedLine)
{
    make();
    storeDword(1, 0x1008, 0x1111111111111111ULL);
    storeDword(1, 0x1030, 0x3333333333333333ULL);
    ASSERT_TRUE(unit->conditionalFlush(1, 0x1000, 2));
    drain();

    ASSERT_EQ(device->writeLog().size(), 1u);
    const auto &write = device->writeLog()[0];
    EXPECT_EQ(write.addr, 0x1000u);
    ASSERT_EQ(write.data.size(), 64u);
    std::uint64_t dwords[8];
    std::memcpy(dwords, write.data.data(), 64);
    EXPECT_EQ(dwords[0], 0u) << "padding";
    EXPECT_EQ(dwords[1], 0x1111111111111111ULL);
    EXPECT_EQ(dwords[6], 0x3333333333333333ULL);
    for (int i : {2, 3, 4, 5, 7})
        EXPECT_EQ(dwords[i], 0u) << "padding dword " << i;
}

TEST_F(CsbFixture, PaddingDoesNotLeakAcrossSequences)
{
    make();
    // A first sequence fills the whole line with a secret...
    for (unsigned off = 0; off < 64; off += 8)
        storeDword(1, 0x1000 + off, 0x5ec5ec5ec5ec5ec5ULL);
    ASSERT_TRUE(unit->conditionalFlush(1, 0x1000, 8));
    drain();
    // ...then a second process stores one dword and flushes.
    storeDword(2, 0x1000, 0x7);
    ASSERT_TRUE(unit->conditionalFlush(2, 0x1000, 1));
    drain();

    ASSERT_EQ(device->writeLog().size(), 2u);
    const auto &second = device->writeLog()[1].data;
    std::uint64_t dword = 0;
    for (unsigned off = 8; off < 64; off += 8) {
        std::memcpy(&dword, second.data() + off, 8);
        EXPECT_EQ(dword, 0u) << "secret leaked at offset " << off;
    }
}

TEST_F(CsbFixture, OverwritingSameDwordStillCounts)
{
    // The counter counts stores, not distinct bytes (section 3.2).
    make();
    storeDword(1, 0x1000, 1);
    storeDword(1, 0x1000, 2);
    EXPECT_EQ(unit->hitCounter(), 2u);
    EXPECT_TRUE(unit->conditionalFlush(1, 0x1000, 2));
}

TEST_F(CsbFixture, SingleLineBufferBlocksStoresUntilSent)
{
    make();
    storeDword(1, 0x1000, 1);
    ASSERT_TRUE(unit->conditionalFlush(1, 0x1000, 1));
    EXPECT_FALSE(unit->canAcceptStore())
        << "line buffer holds the flushed data";
    drain();
    EXPECT_TRUE(unit->canAcceptStore());
}

TEST_F(CsbFixture, SecondLineBufferAllowsImmediateReuse)
{
    CsbParams params;
    params.numLineBuffers = 2;
    make(params);
    storeDword(1, 0x1000, 1);
    ASSERT_TRUE(unit->conditionalFlush(1, 0x1000, 1));
    EXPECT_TRUE(unit->canAcceptStore())
        << "the second line buffer takes over";
    storeDword(1, 0x1040, 2);
    ASSERT_TRUE(unit->conditionalFlush(1, 0x1040, 1));
    drain();
    EXPECT_EQ(device->writeLog().size(), 2u);
}

TEST_F(CsbFixture, PartialFlushIssuesOnlyValidBytes)
{
    CsbParams params;
    params.partialFlush = true;
    make(params);
    storeDword(1, 0x1000, 1);
    storeDword(1, 0x1008, 2);
    ASSERT_TRUE(unit->conditionalFlush(1, 0x1000, 2));
    drain();
    ASSERT_EQ(device->writeLog().size(), 1u);
    EXPECT_EQ(device->writeLog()[0].data.size(), 16u)
        << "relaxed mode issues a 16-byte transaction, not a line";
}

TEST_F(CsbFixture, InterruptionScenarioFromPaper)
{
    // Section 3.2's worked example: process 1 is interrupted before
    // its flush; process 2's first combining store clears the buffer
    // and resets the counter to 1; process 1's flush then fails.
    make();
    storeDword(1, 0x1000, 1);
    storeDword(1, 0x1008, 2); // ... preemption here
    storeDword(2, 0x3000, 9); // competitor's first store
    EXPECT_EQ(unit->hitCounter(), 1u);
    EXPECT_FALSE(unit->conditionalFlush(1, 0x1000, 2))
        << "original process detects the conflict";
    // Process 2 must also retry (its sequence was cleared by the
    // failed flush), which is safe: it had not flushed yet.
    storeDword(2, 0x3000, 9);
    EXPECT_TRUE(unit->conditionalFlush(2, 0x3000, 1));
}

} // namespace
