/**
 * @file
 * Unit tests for page attributes and the TLB (ASIDs, LRU, refills).
 */

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace {

using namespace csb;
using mem::PageAttr;
using mem::PageTable;
using mem::Tlb;

TEST(PageTable, DefaultsToCached)
{
    PageTable pt;
    EXPECT_EQ(pt.attrOf(0x1234), PageAttr::Cached);
}

TEST(PageTable, AttrCoversWholePages)
{
    PageTable pt;
    pt.setAttr(0x2000, 1, PageAttr::Uncached);
    EXPECT_EQ(pt.attrOf(0x2000), PageAttr::Uncached);
    EXPECT_EQ(pt.attrOf(0x2fff), PageAttr::Uncached);
    EXPECT_EQ(pt.attrOf(0x3000), PageAttr::Cached);
}

TEST(PageTable, MultiPageRange)
{
    PageTable pt;
    pt.setAttr(0x10000, 3 * PageTable::pageSize,
               PageAttr::UncachedCombining);
    EXPECT_EQ(pt.attrOf(0x10000), PageAttr::UncachedCombining);
    EXPECT_EQ(pt.attrOf(0x12fff), PageAttr::UncachedCombining);
    EXPECT_EQ(pt.attrOf(0x13000), PageAttr::Cached);
}

TEST(PageTable, AttrNames)
{
    EXPECT_STREQ(pageAttrName(PageAttr::Cached), "cached");
    EXPECT_STREQ(pageAttrName(PageAttr::UncachedAccelerated),
                 "uncached-accelerated");
    EXPECT_TRUE(isUncachedAttr(PageAttr::Uncached));
    EXPECT_TRUE(isUncachedAttr(PageAttr::UncachedCombining));
    EXPECT_FALSE(isUncachedAttr(PageAttr::Cached));
}

TEST(Tlb, HitAfterRefill)
{
    PageTable pt;
    pt.setAttr(0x5000, 1, PageAttr::Uncached);
    Tlb tlb(pt, 4, 20);
    Tick penalty = 0;
    EXPECT_EQ(tlb.translate(0x5010, 1, penalty), PageAttr::Uncached);
    EXPECT_EQ(penalty, 20u) << "first access misses";
    EXPECT_EQ(tlb.translate(0x5020, 1, penalty), PageAttr::Uncached);
    EXPECT_EQ(penalty, 0u) << "second access hits";
    EXPECT_EQ(tlb.hits.value(), 1.0);
    EXPECT_EQ(tlb.misses.value(), 1.0);
}

TEST(Tlb, AsidsDoNotAlias)
{
    PageTable pt;
    Tlb tlb(pt, 4, 20);
    Tick penalty = 0;
    tlb.translate(0x5000, 1, penalty);
    EXPECT_EQ(penalty, 20u);
    // Same page, different ASID: must miss (no flush needed -- the
    // space identifier disambiguates, as in MIPS/Alpha).
    tlb.translate(0x5000, 2, penalty);
    EXPECT_EQ(penalty, 20u);
    // Original ASID still hits.
    tlb.translate(0x5000, 1, penalty);
    EXPECT_EQ(penalty, 0u);
}

TEST(Tlb, LruEviction)
{
    PageTable pt;
    Tlb tlb(pt, 2, 20);
    Tick penalty = 0;
    tlb.translate(0x1000, 1, penalty); // A
    tlb.translate(0x2000, 1, penalty); // B
    tlb.translate(0x1000, 1, penalty); // touch A
    tlb.translate(0x3000, 1, penalty); // C evicts B (LRU)
    tlb.translate(0x1000, 1, penalty);
    EXPECT_EQ(penalty, 0u) << "A must have survived";
    tlb.translate(0x2000, 1, penalty);
    EXPECT_EQ(penalty, 20u) << "B must have been evicted";
}

TEST(Tlb, FlushDropsEverything)
{
    PageTable pt;
    Tlb tlb(pt, 4, 20);
    Tick penalty = 0;
    tlb.translate(0x1000, 1, penalty);
    tlb.flush();
    tlb.translate(0x1000, 1, penalty);
    EXPECT_EQ(penalty, 20u);
}

TEST(Tlb, PicksUpPageTableChangesAfterFlush)
{
    PageTable pt;
    Tlb tlb(pt, 4, 20);
    Tick penalty = 0;
    EXPECT_EQ(tlb.translate(0x7000, 1, penalty), PageAttr::Cached);
    pt.setAttr(0x7000, 1, PageAttr::UncachedCombining);
    // Stale until flushed -- exactly how real TLBs behave.
    EXPECT_EQ(tlb.translate(0x7000, 1, penalty), PageAttr::Cached);
    tlb.flush();
    EXPECT_EQ(tlb.translate(0x7000, 1, penalty),
              PageAttr::UncachedCombining);
}

} // namespace
