/**
 * @file
 * Unit and property tests for the aligned power-of-two decomposer.
 */

#include <gtest/gtest.h>

#include "mem/decompose.hh"

namespace {

using csb::Addr;
using csb::isPowerOf2;
using csb::mem::Chunk;
using csb::mem::ValidMask;
using csb::mem::decomposeAligned;

ValidMask
maskRange(unsigned from, unsigned to)
{
    ValidMask mask;
    for (unsigned i = from; i < to; ++i)
        mask.set(i);
    return mask;
}

TEST(Decompose, FullLineIsOneBurst)
{
    auto chunks = decomposeAligned(0x1000, maskRange(0, 64), 64, 64);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (Chunk{0x1000, 64}));
}

TEST(Decompose, SingleDword)
{
    auto chunks = decomposeAligned(0x1000, maskRange(8, 16), 64, 64);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (Chunk{0x1008, 8}));
}

TEST(Decompose, SevenDwordsNeedThreeTransactions)
{
    // Offsets 8..63: the 7-dword case of figure 5's 7-to-8 effect.
    auto chunks = decomposeAligned(0x1000, maskRange(8, 64), 64, 64);
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks[0], (Chunk{0x1008, 8}));
    EXPECT_EQ(chunks[1], (Chunk{0x1010, 16}));
    EXPECT_EQ(chunks[2], (Chunk{0x1020, 32}));
}

TEST(Decompose, SevenDwordsFromZero)
{
    // Offsets 0..55: 32 + 16 + 8.
    auto chunks = decomposeAligned(0x1000, maskRange(0, 56), 64, 64);
    ASSERT_EQ(chunks.size(), 3u);
    EXPECT_EQ(chunks[0], (Chunk{0x1000, 32}));
    EXPECT_EQ(chunks[1], (Chunk{0x1020, 16}));
    EXPECT_EQ(chunks[2], (Chunk{0x1030, 8}));
}

TEST(Decompose, MaxTxnCapsChunkSize)
{
    auto chunks = decomposeAligned(0x1000, maskRange(0, 64), 64, 16);
    ASSERT_EQ(chunks.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(chunks[i], (Chunk{0x1000 + i * 16, 16}));
}

TEST(Decompose, DisjointRunsSplit)
{
    ValidMask mask = maskRange(0, 8);
    for (unsigned i = 32; i < 40; ++i)
        mask.set(i);
    auto chunks = decomposeAligned(0x2000, mask, 64, 64);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0], (Chunk{0x2000, 8}));
    EXPECT_EQ(chunks[1], (Chunk{0x2020, 8}));
}

TEST(Decompose, EmptyMaskYieldsNothing)
{
    EXPECT_TRUE(decomposeAligned(0x1000, ValidMask{}, 64, 64).empty());
}

TEST(Decompose, SingleByteRuns)
{
    ValidMask mask;
    mask.set(3);
    mask.set(11);
    auto chunks = decomposeAligned(0, mask, 64, 64);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0], (Chunk{3, 1}));
    EXPECT_EQ(chunks[1], (Chunk{11, 1}));
}

// --- Property sweep: every contiguous dword run in every block size ---

struct DecomposeCase
{
    unsigned blockSize;
    unsigned firstDword;
    unsigned numDwords;
};

class DecomposeProperty : public ::testing::TestWithParam<DecomposeCase>
{
};

TEST_P(DecomposeProperty, ChunksAreLegalAndExact)
{
    const DecomposeCase &param = GetParam();
    constexpr Addr base = 0x40000;
    ValidMask mask = maskRange(param.firstDword * 8,
                               (param.firstDword + param.numDwords) * 8);
    auto chunks = decomposeAligned(base, mask, param.blockSize, 128);

    // Property 1: every chunk is a naturally aligned power of two.
    ValidMask covered;
    for (const Chunk &chunk : chunks) {
        EXPECT_TRUE(isPowerOf2(chunk.size));
        EXPECT_EQ(chunk.addr % chunk.size, 0u);
        EXPECT_GE(chunk.addr, base);
        EXPECT_LE(chunk.addr + chunk.size, base + param.blockSize);
        for (unsigned i = 0; i < chunk.size; ++i) {
            unsigned off = static_cast<unsigned>(chunk.addr - base) + i;
            EXPECT_FALSE(covered.test(off)) << "chunk overlap at " << off;
            covered.set(off);
        }
    }
    // Property 2: chunks cover exactly the valid bytes.
    EXPECT_EQ(covered, mask);
    // Property 3: ascending address order.
    for (std::size_t i = 1; i < chunks.size(); ++i)
        EXPECT_LT(chunks[i - 1].addr, chunks[i].addr);
}

std::vector<DecomposeCase>
allDwordRuns()
{
    std::vector<DecomposeCase> cases;
    for (unsigned block : {16u, 32u, 64u, 128u}) {
        unsigned dwords = block / 8;
        for (unsigned first = 0; first < dwords; ++first) {
            for (unsigned n = 1; first + n <= dwords; ++n)
                cases.push_back({block, first, n});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllRuns, DecomposeProperty,
                         ::testing::ValuesIn(allDwordRuns()));

} // namespace
