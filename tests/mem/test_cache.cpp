/**
 * @file
 * Unit tests for the cache model and the two-level hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace {

using namespace csb;
using mem::Cache;
using mem::CacheHierarchy;
using mem::CacheParams;

CacheParams
tiny(unsigned size, unsigned assoc, unsigned line, Tick lat)
{
    CacheParams params;
    params.sizeBytes = size;
    params.assoc = assoc;
    params.lineBytes = line;
    params.hitLatency = lat;
    return params;
}

TEST(Cache, MissThenHit)
{
    Cache cache(tiny(1024, 2, 64, 1), "c");
    EXPECT_FALSE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x13f, false).hit) << "same line";
    EXPECT_FALSE(cache.access(0x140, false).hit) << "next line";
    EXPECT_EQ(cache.hits.value(), 2.0);
    EXPECT_EQ(cache.misses.value(), 2.0);
}

TEST(Cache, LruReplacementWithinSet)
{
    // 2-way, 64B lines, 256B total: 2 sets.  Addresses 0x000, 0x080,
    // 0x100 map to set 0.
    Cache cache(tiny(256, 2, 64, 1), "c");
    cache.access(0x000, false);
    cache.access(0x080, false);
    cache.access(0x000, false);           // touch; 0x080 becomes LRU
    cache.access(0x100, false);           // evicts 0x080
    EXPECT_TRUE(cache.contains(0x000));
    EXPECT_FALSE(cache.contains(0x080));
    EXPECT_TRUE(cache.contains(0x100));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(tiny(128, 1, 64, 1), "c"); // direct-mapped, 2 sets
    cache.access(0x000, true);             // dirty
    auto result = cache.access(0x080, false); // same set, evicts
    EXPECT_TRUE(result.writeback);
    EXPECT_EQ(result.writebackAddr, 0x000u);
    EXPECT_EQ(cache.writebacks.value(), 1.0);
}

TEST(Cache, CleanEvictionSilent)
{
    Cache cache(tiny(128, 1, 64, 1), "c");
    cache.access(0x000, false);
    auto result = cache.access(0x080, false);
    EXPECT_FALSE(result.writeback);
}

TEST(Cache, InvalidateAndFlush)
{
    Cache cache(tiny(1024, 2, 64, 1), "c");
    cache.access(0x100, false);
    cache.invalidate(0x100);
    EXPECT_FALSE(cache.contains(0x100));
    cache.access(0x100, false);
    cache.access(0x200, false);
    cache.flushAll();
    EXPECT_FALSE(cache.contains(0x100));
    EXPECT_FALSE(cache.contains(0x200));
}

TEST(Cache, BadGeometryIsFatal)
{
    EXPECT_THROW(Cache(tiny(100, 3, 64, 1), "c"), FatalError);
    EXPECT_THROW(Cache(tiny(1024, 2, 48, 1), "c"), FatalError);
}

TEST(Hierarchy, LatenciesStack)
{
    CacheHierarchy hierarchy(tiny(1024, 2, 64, 2), tiny(8192, 4, 64, 8),
                             90, "h");
    // Cold: L1(2) + L2(8) + memory(90) = 100.
    EXPECT_EQ(hierarchy.accessLatency(0x1000, false), 100u);
    // Warm: L1 hit.
    EXPECT_EQ(hierarchy.accessLatency(0x1000, false), 2u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    // L1: direct-mapped 128B (2 lines); L2 big enough to keep both.
    CacheHierarchy hierarchy(tiny(128, 1, 64, 2), tiny(8192, 4, 64, 8),
                             90, "h");
    hierarchy.accessLatency(0x000, false);
    hierarchy.accessLatency(0x080, false); // evicts 0x000 from L1
    // 0x000: L1 miss, L2 hit = 2 + 8.
    EXPECT_EQ(hierarchy.accessLatency(0x000, false), 10u);
}

TEST(Hierarchy, TouchWarmsBothLevels)
{
    CacheHierarchy hierarchy(tiny(1024, 2, 64, 2), tiny(8192, 4, 64, 8),
                             90, "h");
    hierarchy.touch(0x2000);
    EXPECT_EQ(hierarchy.accessLatency(0x2000, false), 2u);
}

TEST(Hierarchy, EvictForcesFullMiss)
{
    CacheHierarchy hierarchy(tiny(1024, 2, 64, 2), tiny(8192, 4, 64, 8),
                             90, "h");
    hierarchy.touch(0x2000);
    hierarchy.evict(0x2000);
    EXPECT_EQ(hierarchy.accessLatency(0x2000, false), 100u);
}

TEST(Hierarchy, AsyncAccessCompletesAtLatency)
{
    CacheHierarchy hierarchy(tiny(1024, 2, 64, 2), tiny(8192, 4, 64, 8),
                             90, "h");
    sim::EventQueue events;
    hierarchy.deferredCall = [&](Tick when, std::function<void()> fn) {
        events.scheduleFunc(when, std::move(fn));
    };
    Tick completed = 0;
    hierarchy.access(0x3000, false, 10,
                     [&](Tick when) { completed = when; });
    events.serviceUntil(1000);
    EXPECT_EQ(completed, 110u); // 10 + 100 cold
    hierarchy.access(0x3000, false, 2000,
                     [&](Tick when) { completed = when; });
    events.serviceUntil(3000);
    EXPECT_EQ(completed, 2002u); // 2000 + 2 warm
}

TEST(Hierarchy, LineFetchRoutesMisses)
{
    CacheHierarchy hierarchy(tiny(1024, 2, 64, 2), tiny(8192, 4, 64, 8),
                             90, "h");
    sim::EventQueue events;
    hierarchy.deferredCall = [&](Tick when, std::function<void()> fn) {
        events.scheduleFunc(when, std::move(fn));
    };
    Addr fetched = 0;
    hierarchy.setLineFetch([&](Addr line, std::function<void(Tick)> done) {
        fetched = line;
        events.scheduleFunc(500, [done] { done(500); });
    });
    Tick completed = 0;
    hierarchy.access(0x3010, false, 0,
                     [&](Tick when) { completed = when; });
    events.serviceUntil(1000);
    EXPECT_EQ(fetched, 0x3000u) << "fetch is line-aligned";
    EXPECT_EQ(completed, 500u);
}

} // namespace
