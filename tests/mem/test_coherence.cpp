/**
 * @file
 * Unit tests for the MESI coherence policy and the snooping cache
 * hierarchy: a table-driven walk of every (state x local-op) and
 * (state x snoop-op) cell of the protocol, plus two-hierarchy
 * integration through a lambda snoop fabric (no bus needed) and a
 * random-walk invariant check.
 */

#include <gtest/gtest.h>

#include <random>

#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "sim/logging.hh"

namespace {

using namespace csb;
using mem::CacheHierarchy;
using mem::CacheParams;
using mem::CoherenceParams;
using mem::LineState;
using mem::MesiPolicy;
using bus::SnoopKind;

CacheParams
geom(unsigned size, unsigned assoc, unsigned line, Tick lat)
{
    CacheParams params;
    params.sizeBytes = size;
    params.assoc = assoc;
    params.lineBytes = line;
    params.hitLatency = lat;
    return params;
}

CoherenceParams
mesiParams()
{
    CoherenceParams params;
    params.kind = mem::CoherenceKind::Mesi;
    params.upgradeLatency = 12;
    params.cacheToCacheLatency = 30;
    return params;
}

// ---------------------------------------------------------------------
// Policy table walk: every cell of the MESI transition tables.
// ---------------------------------------------------------------------

TEST(MesiPolicy, FillStateTable)
{
    MesiPolicy mesi;
    // (is_write, others_had_copy) -> fill state
    EXPECT_EQ(mesi.fillState(false, false), LineState::Exclusive);
    EXPECT_EQ(mesi.fillState(false, true), LineState::Shared);
    EXPECT_EQ(mesi.fillState(true, false), LineState::Modified);
    EXPECT_EQ(mesi.fillState(true, true), LineState::Modified);
}

TEST(MesiPolicy, WriteUpgradeTable)
{
    MesiPolicy mesi;
    EXPECT_FALSE(mesi.writeNeedsUpgrade(LineState::Invalid));
    EXPECT_TRUE(mesi.writeNeedsUpgrade(LineState::Shared));
    EXPECT_FALSE(mesi.writeNeedsUpgrade(LineState::Exclusive));
    EXPECT_FALSE(mesi.writeNeedsUpgrade(LineState::Modified));
}

TEST(MesiPolicy, SnoopTable)
{
    struct Cell
    {
        LineState cur;
        SnoopKind kind;
        LineState next;
        bool supply;
        bool writeback;
    };
    // Every (state x probe) cell, including the ones a well-formed run
    // never reaches (the policy must stay total).
    const Cell cells[] = {
        {LineState::Invalid, SnoopKind::Read,
         LineState::Invalid, false, false},
        {LineState::Invalid, SnoopKind::ReadExclusive,
         LineState::Invalid, false, false},
        {LineState::Invalid, SnoopKind::Upgrade,
         LineState::Invalid, false, false},

        {LineState::Shared, SnoopKind::Read,
         LineState::Shared, false, false},
        {LineState::Shared, SnoopKind::ReadExclusive,
         LineState::Invalid, false, false},
        {LineState::Shared, SnoopKind::Upgrade,
         LineState::Invalid, false, false},

        {LineState::Exclusive, SnoopKind::Read,
         LineState::Shared, true, false},
        {LineState::Exclusive, SnoopKind::ReadExclusive,
         LineState::Invalid, true, false},
        {LineState::Exclusive, SnoopKind::Upgrade,
         LineState::Invalid, false, false},

        {LineState::Modified, SnoopKind::Read,
         LineState::Shared, true, true},
        {LineState::Modified, SnoopKind::ReadExclusive,
         LineState::Invalid, true, true},
        {LineState::Modified, SnoopKind::Upgrade,
         LineState::Invalid, false, true},
    };
    MesiPolicy mesi;
    for (const Cell &cell : cells) {
        mem::SnoopAction act = mesi.snoop(cell.cur, cell.kind);
        SCOPED_TRACE(std::string(mem::lineStateName(cell.cur)) + " x " +
                     bus::snoopKindName(cell.kind));
        EXPECT_EQ(act.next, cell.next);
        EXPECT_EQ(act.supply, cell.supply);
        EXPECT_EQ(act.writeback, cell.writeback);
    }
}

// ---------------------------------------------------------------------
// Two hierarchies wired back-to-back through a lambda snoop fabric.
// ---------------------------------------------------------------------

struct TwoCaches
{
    MesiPolicy mesi;
    CacheHierarchy a;
    CacheHierarchy b;

    TwoCaches()
        : a(geom(1024, 2, 64, 2), geom(8192, 4, 64, 8), 90, "a"),
          b(geom(1024, 2, 64, 2), geom(8192, 4, 64, 8), 90, "b")
    {
        a.setCoherence(&mesi, mesiParams(),
                       [this](Addr line, SnoopKind kind) {
                           return probe(b, line, kind);
                       });
        b.setCoherence(&mesi, mesiParams(),
                       [this](Addr line, SnoopKind kind) {
                           return probe(a, line, kind);
                       });
    }

    static bus::SnoopSummary
    probe(CacheHierarchy &other, Addr line, SnoopKind kind)
    {
        bus::SnoopReply reply = other.snoopProbe(line, kind);
        bus::SnoopSummary summary;
        summary.hits = reply.hadCopy ? 1 : 0;
        summary.hadCopy = reply.hadCopy;
        summary.supplied = reply.supplied;
        summary.wroteBack = reply.wroteBack;
        return summary;
    }
};

TEST(CoherentHierarchy, LocalOpStateWalk)
{
    // Local-op dimension of the matrix: drive one hierarchy through
    // every state and check each local read/write lands where the
    // protocol says.
    TwoCaches sys;
    const Addr line = 0x4000;

    // I --read--> E (no other copies).
    EXPECT_EQ(sys.a.lineState(line), LineState::Invalid);
    sys.a.accessLatency(line, false);
    EXPECT_EQ(sys.a.lineState(line), LineState::Exclusive);

    // E --read--> E (silent), E --write--> M (silent).
    sys.a.accessLatency(line, false);
    EXPECT_EQ(sys.a.lineState(line), LineState::Exclusive);
    EXPECT_EQ(sys.a.upgrades.value(), 0.0);
    sys.a.accessLatency(line, true);
    EXPECT_EQ(sys.a.lineState(line), LineState::Modified);
    EXPECT_EQ(sys.a.upgrades.value(), 0.0) << "E->M is silent";

    // M --read/write--> M (silent).
    sys.a.accessLatency(line, false);
    sys.a.accessLatency(line, true);
    EXPECT_EQ(sys.a.lineState(line), LineState::Modified);

    // Remote read: M --snoop-read--> S on both sides.
    sys.b.accessLatency(line, false);
    EXPECT_EQ(sys.a.lineState(line), LineState::Shared);
    EXPECT_EQ(sys.b.lineState(line), LineState::Shared);

    // S --read--> S (silent); S --write--> M via upgrade broadcast,
    // the other copy dies.
    sys.a.accessLatency(line, false);
    EXPECT_EQ(sys.a.lineState(line), LineState::Shared);
    sys.a.accessLatency(line, true);
    EXPECT_EQ(sys.a.lineState(line), LineState::Modified);
    EXPECT_EQ(sys.a.upgrades.value(), 1.0);
    EXPECT_EQ(sys.b.lineState(line), LineState::Invalid);

    // I --write--> M (read-exclusive kills the remote copy).
    sys.b.accessLatency(line, true);
    EXPECT_EQ(sys.b.lineState(line), LineState::Modified);
    EXPECT_EQ(sys.a.lineState(line), LineState::Invalid);
}

TEST(CoherentHierarchy, ReadSharingAndIntervention)
{
    TwoCaches sys;
    const Addr line = 0x8000;

    sys.a.accessLatency(line, true); // A owns the line Modified
    Tick warm = sys.b.accessLatency(0x100, false); // unrelated cold miss
    EXPECT_EQ(warm, 2u + 8u + 90u);

    // B's read is supplied cache-to-cache (30) instead of memory (90),
    // and A demand-writes-back its dirty copy.
    Tick miss = sys.b.accessLatency(line, false);
    EXPECT_EQ(miss, 2u + 8u + 30u);
    EXPECT_EQ(sys.b.cacheToCacheFills.value(), 1.0);
    EXPECT_EQ(sys.a.snoopHits.value(), 1.0);
    EXPECT_EQ(sys.a.snoopWritebacks.value(), 1.0);
    EXPECT_EQ(sys.a.lineState(line), LineState::Shared);
    EXPECT_EQ(sys.b.lineState(line), LineState::Shared);
}

TEST(CoherentHierarchy, UpgradeChargesLatencyAndInvalidates)
{
    TwoCaches sys;
    const Addr line = 0xc000;

    sys.a.accessLatency(line, false);
    sys.b.accessLatency(line, false); // both Shared now
    EXPECT_EQ(sys.a.lineState(line), LineState::Shared);
    EXPECT_EQ(sys.b.lineState(line), LineState::Shared);

    // Upgrade: write hit costs the L1 hit plus the broadcast.
    Tick write = sys.a.accessLatency(line, true);
    EXPECT_EQ(write, 2u + 12u);
    EXPECT_EQ(sys.a.upgrades.value(), 1.0);
    EXPECT_EQ(sys.b.snoopInvalidations.value(), 1.0);
    EXPECT_EQ(sys.b.lineState(line), LineState::Invalid);
    EXPECT_EQ(sys.a.lineState(line), LineState::Modified);
}

TEST(CoherentHierarchy, L1RefillFromSharedL2StaysShared)
{
    // Evict a Shared line from the L1 only, refill it by a read, then
    // write: the write must still broadcast an upgrade (the refill
    // must not launder S into E).
    TwoCaches sys;
    const Addr line = 0x0;     // L1 set 0
    const Addr alias1 = 0x400; // same L1 set (1KiB L1, 2-way)
    const Addr alias2 = 0x800;

    sys.a.accessLatency(line, false);
    sys.b.accessLatency(line, false); // both Shared
    sys.a.accessLatency(alias1, false);
    sys.a.accessLatency(alias2, false); // line evicted from A's L1
    EXPECT_EQ(sys.a.lineState(line), LineState::Shared) << "L2 keeps S";

    sys.a.accessLatency(line, false); // L1 refill from Shared L2
    sys.a.accessLatency(line, true);  // must upgrade, not go silent
    EXPECT_EQ(sys.a.upgrades.value(), 1.0);
    EXPECT_EQ(sys.b.lineState(line), LineState::Invalid);
}

TEST(CoherentHierarchy, SnoopWritebackUsesWritebackHook)
{
    TwoCaches sys;
    std::vector<Addr> spills;
    sys.a.setLineWriteback([&](Addr line) { spills.push_back(line); });

    sys.a.accessLatency(0x4000, true);
    sys.b.accessLatency(0x4000, true); // read-exclusive probes A
    ASSERT_EQ(spills.size(), 1u);
    EXPECT_EQ(spills[0], 0x4000u);
    EXPECT_EQ(sys.a.lineState(0x4000), LineState::Invalid);
    EXPECT_EQ(sys.b.lineState(0x4000), LineState::Modified);
}

TEST(CoherentHierarchy, RandomWalkKeepsMesiInvariant)
{
    // Random reads/writes from both sides over a handful of lines; the
    // single-writer/multi-reader invariant must hold after every op:
    // if one side holds M or E, the other side holds nothing.
    TwoCaches sys;
    std::mt19937_64 rng(0x6d657369);
    const Addr lines[] = {0x0, 0x40, 0x1000, 0x2040, 0x4080};

    for (int op = 0; op < 2000; ++op) {
        CacheHierarchy &actor = (rng() & 1) ? sys.a : sys.b;
        Addr line = lines[rng() % std::size(lines)];
        actor.accessLatency(line, (rng() & 3) == 0);

        for (Addr l : lines) {
            LineState sa = sys.a.lineState(l);
            LineState sb = sys.b.lineState(l);
            bool a_owns = sa == LineState::Modified ||
                          sa == LineState::Exclusive;
            bool b_owns = sb == LineState::Modified ||
                          sb == LineState::Exclusive;
            ASSERT_FALSE(a_owns && sb != LineState::Invalid)
                << "A owns 0x" << std::hex << l << " as "
                << mem::lineStateName(sa) << " but B holds "
                << mem::lineStateName(sb);
            ASSERT_FALSE(b_owns && sa != LineState::Invalid)
                << "B owns 0x" << std::hex << l << " as "
                << mem::lineStateName(sb) << " but A holds "
                << mem::lineStateName(sa);
        }
    }
}

TEST(CoherentHierarchy, NonCoherentBehaviorUnchanged)
{
    // Without a policy the hierarchy must behave exactly as before:
    // no probes, no upgrade cost, legacy miss latency.
    CacheHierarchy solo(geom(1024, 2, 64, 2), geom(8192, 4, 64, 8), 90,
                        "solo");
    EXPECT_FALSE(solo.coherent());
    EXPECT_EQ(solo.accessLatency(0x1000, false), 100u);
    EXPECT_EQ(solo.accessLatency(0x1000, true), 2u);
    EXPECT_EQ(solo.lineState(0x1000), LineState::Modified);
    EXPECT_EQ(solo.upgrades.value(), 0.0);
    EXPECT_EQ(solo.cacheToCacheFills.value(), 0.0);
}

} // namespace
