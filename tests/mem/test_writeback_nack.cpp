/**
 * @file
 * Regression test for the dirty-eviction path under the bus Nack/retry
 * protocol: a NACKed (or merely in-flight) cache-line spill must never
 * clobber stores that commit to the functional image while the spill
 * waits.  The caches are tag-state models -- stores commit to
 * PhysicalMemory directly -- so the spill payload is a *snapshot* that
 * memory must not re-apply (BusTransaction::snapshotPayload).
 *
 * The failure mode this pins down: setLineWriteback captured the line
 * bytes once at eviction initiation; a NACK storm then delayed the bus
 * write by thousands of ticks, and its completion wrote the stale
 * snapshot over stores committed in the window.
 *
 * The access sequence is driven directly against the System's cache
 * hierarchy (not through a core program) so the eviction order is
 * deterministic; everything downstream -- the System's writeback
 * retry loop, the bus, the fault injector, MainMemory -- is the real
 * wiring.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/fault.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;

SystemConfig
nackStormConfig()
{
    SystemConfig cfg;
    cfg.routeMissesOverBus = true;
    // Two-set direct-mapped levels: lines 0x8000 and 0x8080 collide in
    // BOTH levels, so one conflicting access pushes a dirty line all
    // the way out as a bus writeback.
    cfg.l1 = mem::CacheParams{128, 1, 64, /*hitLatency=*/2};
    cfg.l2 = mem::CacheParams{128, 1, 64, /*hitLatency=*/8};
    // Every bus write (i.e. the spill) is NACKed for the first 3000
    // ticks; the retry loop backs off through the window and succeeds
    // after it closes.
    cfg.faults.schedule =
        sim::parseFaultSchedule("burst:bus-write-nack:0..3000:1.0");
    cfg.watchdogTicks = 200'000;
    cfg.normalize();
    return cfg;
}

/** Dirty line 0x8000, evict it, then store into it while it spills. */
void
driveSpillRace(System &system)
{
    // Committed store: functional write + dirty tag (the same pair the
    // core's commitStore performs).
    system.memory().writeT<std::uint64_t>(0x8000, 1);
    system.caches(0).accessLatency(0x8000, /*is_write=*/true);

    // Conflicting access evicts the dirty line; the spill presents a
    // bus write that the fault schedule NACKs.
    system.caches(0).accessLatency(0x8080, /*is_write=*/false);

    // A later store to the spilled line commits while the spill is
    // still retrying.
    system.memory().writeT<std::uint64_t>(0x8008, 2);

    // Run past the whole retry train (backoffs sum to ~4k ticks), not
    // just to the first quiescent gap between attempts.
    system.simulator().run(
        [&] {
            return system.simulator().curTick() > 20'000 &&
                   system.quiescent();
        },
        1'000'000);
    ASSERT_TRUE(system.quiescent()) << "spill never completed";
}

TEST(WritebackNack, RetriedSpillDoesNotClobberNewerStores)
{
    System system(nackStormConfig());
    driveSpillRace(system);

    // The spill was NACKed at least once and eventually delivered.
    EXPECT_GT(system.bus().numNacks.value(), 0.0);
    EXPECT_GT(system.caches(0).l2().writebacks.value(), 0.0);
    EXPECT_GT(system.bus().numWrites.value(), 0.0);

    // The store that committed while the spill was in flight survives;
    // pre-fix the stale 64-byte snapshot overwrote it at completion.
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8000), 1u);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8008), 2u);
}

TEST(WritebackNack, CleanSpillDoesNotClobberEither)
{
    // No NACK storm: the spill completes on the first attempt, but its
    // payload still races the second store (capture at eviction vs
    // apply at bus completion) -- the snapshot must not clobber it
    // even on the happy path.
    SystemConfig cfg = nackStormConfig();
    cfg.faults = sim::FaultPlan{};
    cfg.normalize();
    System system(cfg);
    driveSpillRace(system);

    EXPECT_EQ(system.bus().numNacks.value(), 0.0);
    EXPECT_GT(system.caches(0).l2().writebacks.value(), 0.0);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8000), 1u);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8008), 2u);
}

} // namespace
