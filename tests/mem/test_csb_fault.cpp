/**
 * @file
 * CSB flush-port behaviour under injected bus faults: a NACKed flush
 * chunk is replayed byte-identically with backoff, every line is
 * delivered to the target exactly once and in order, and conflicting
 * writers still serialize correctly while retries are pending.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bus/system_bus.hh"
#include "mem/csb.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using bus::BusStatus;
using bus::BusTransaction;
using mem::ConditionalStoreBuffer;
using mem::CsbParams;

/** Records every delivered write; NACKs per a fixed schedule. */
class RecordingTarget : public bus::BusTarget
{
  public:
    const std::string &targetName() const override { return name_; }

    BusStatus
    accept(const BusTransaction &, Tick) override
    {
        if (nacksLeft > 0) {
            --nacksLeft;
            return BusStatus::Nack;
        }
        return BusStatus::Ok;
    }

    void
    write(const BusTransaction &txn, Tick now) override
    {
        writes.push_back({txn.addr, txn.data, now});
    }

    Tick
    read(const BusTransaction &txn, Tick now,
         std::vector<std::uint8_t> &data) override
    {
        data.assign(txn.size, 0);
        return now + 1;
    }

    struct Write
    {
        Addr addr;
        std::vector<std::uint8_t> data;
        Tick when;
    };
    std::vector<Write> writes;
    unsigned nacksLeft = 0;

  private:
    std::string name_ = "rec";
};

class CsbFaultFixture : public ::testing::Test
{
  protected:
    void
    make(CsbParams params = {})
    {
        bus::BusParams bus_params;
        bus_params.kind = bus::BusKind::Multiplexed;
        bus_params.widthBytes = 8;
        bus_params.ratio = 6;
        bus_params.maxBurstBytes = 128;
        bus_params.errorResponses = true; // NACKing targets in play
        bus = std::make_unique<bus::SystemBus>(sim, bus_params);
        target = std::make_unique<RecordingTarget>();
        bus->addTarget(0, 0x100000, target.get());
        unit = std::make_unique<ConditionalStoreBuffer>(sim, *bus, params);
    }

    void
    storeDword(ProcId pid, Addr addr, std::uint64_t value)
    {
        unit->store(pid, addr, 8, &value);
    }

    /** Accumulate and flush one full line of ascending dwords. */
    void
    sendLine(Addr line, std::uint64_t tag)
    {
        for (unsigned i = 0; i < 8; ++i)
            storeDword(1, line + i * 8, tag * 100 + i);
        ASSERT_TRUE(unit->conditionalFlush(1, line, 8));
    }

    void
    drain()
    {
        sim.run([&] { return unit->drained() && bus->quiescent(); },
                100000);
        ASSERT_TRUE(unit->drained());
    }

    sim::Simulator sim;
    std::unique_ptr<bus::SystemBus> bus;
    std::unique_ptr<RecordingTarget> target;
    std::unique_ptr<ConditionalStoreBuffer> unit;
};

TEST_F(CsbFaultFixture, NackedFlushReplaysByteIdentically)
{
    make();
    target->nacksLeft = 2;
    sendLine(0x1000, 1);
    drain();

    ASSERT_EQ(target->writes.size(), 1u)
        << "the line lands exactly once despite two NACKs";
    EXPECT_EQ(target->writes[0].addr, 0x1000u);
    ASSERT_EQ(target->writes[0].data.size(), 64u);
    std::uint64_t first = 0;
    std::memcpy(&first, target->writes[0].data.data(), 8);
    EXPECT_EQ(first, 100u);
    EXPECT_EQ(unit->busNacks.value(), 2.0);
    EXPECT_EQ(unit->busRetries.value(), 2.0);
    EXPECT_EQ(unit->linesIssued.value(), 1.0);
}

TEST_F(CsbFaultFixture, RetryWaitsOutConfiguredBackoff)
{
    CsbParams params;
    params.retry.initialBackoffTicks = 600;
    params.retry.multiplier = 2;
    make(params);
    target->nacksLeft = 1;
    sendLine(0x1000, 1);
    drain();

    ASSERT_EQ(target->writes.size(), 1u);
    // The first (NACKed) tenure completed well before the replayed
    // delivery: the retry waited at least the configured backoff.
    EXPECT_GE(target->writes[0].when, 600u);
    EXPECT_EQ(unit->busRetries.value(), 1.0);
}

TEST_F(CsbFaultFixture, LinesStayOrderedAcrossRetries)
{
    CsbParams params;
    params.numLineBuffers = 2;
    make(params);
    target->nacksLeft = 1; // first line's burst NACKs once
    sendLine(0x1000, 1);
    sendLine(0x1040, 2);
    drain();

    ASSERT_EQ(target->writes.size(), 2u);
    EXPECT_EQ(target->writes[0].addr, 0x1000u)
        << "the retried line must not be overtaken by the younger one";
    EXPECT_EQ(target->writes[1].addr, 0x1040u);
}

TEST_F(CsbFaultFixture, InjectedNacksStillDeliverEveryLineOnce)
{
    make();
    sim::FaultPlan plan;
    plan.seed = 11;
    plan.busWriteNackRate = 0.4;
    sim::FaultInjector injector(plan);
    bus->setFaultInjector(&injector);

    for (unsigned i = 0; i < 16; ++i) {
        sendLine(0x1000 + i * 0x40, i + 1);
        drain();
    }
    ASSERT_EQ(target->writes.size(), 16u)
        << "exactly one delivery per flushed line";
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(target->writes[i].addr, 0x1000u + i * 0x40);
        std::uint64_t first = 0;
        std::memcpy(&first, target->writes[i].data.data(), 8);
        EXPECT_EQ(first, (i + 1) * 100u);
    }
    EXPECT_GT(unit->busNacks.value(), 0.0) << "the plan did fire";
    EXPECT_EQ(unit->busNacks.value(), unit->busRetries.value());
}

TEST_F(CsbFaultFixture, ConflictingWriterClearsWhileRetryPending)
{
    make();
    target->nacksLeft = 1;
    sendLine(0x1000, 1);
    // While the flushed line sits in retry, a second process starts a
    // competing sequence: the accumulator semantics are unaffected by
    // the flush port's recovery.
    sim.runFor(30);
    EXPECT_TRUE(unit->retryPending() || !unit->drained());
    storeDword(2, 0x2000, 7);
    storeDword(1, 0x2000, 8); // conflict: clears, restarts as pid 1
    EXPECT_EQ(unit->hitCounter(), 1u);
    EXPECT_EQ(unit->pid(), 1);
    EXPECT_FALSE(unit->conditionalFlush(1, 0x2000, 99))
        << "wrong expected counter still fails under faults";
    drain();
    ASSERT_EQ(target->writes.size(), 1u)
        << "only the first line ever reached the bus";
}

} // namespace
