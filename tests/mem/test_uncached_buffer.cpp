/**
 * @file
 * Unit tests of the uncached buffer: FIFO order, combining rules,
 * lock-on-issue, decomposition, and load/store interleaving.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "bus/system_bus.hh"
#include "io/burst_device.hh"
#include "mem/uncached_buffer.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using mem::UncachedBuffer;
using mem::UncachedBufferParams;

class UbufFixture : public ::testing::Test
{
  protected:
    void
    make(unsigned combine_bytes, unsigned entries = 8,
         unsigned ratio = 6)
    {
        bus::BusParams bus_params;
        bus_params.kind = bus::BusKind::Multiplexed;
        bus_params.widthBytes = 8;
        bus_params.ratio = ratio;
        bus_params.maxBurstBytes = 128;
        bus = std::make_unique<bus::SystemBus>(sim, bus_params);
        device = std::make_unique<io::BurstDevice>(12, 128);
        bus->addTarget(0, 0x100000, device.get());
        UncachedBufferParams params;
        params.entries = entries;
        params.combineBytes = combine_bytes;
        unit = std::make_unique<UncachedBuffer>(sim, *bus, params);
    }

    void
    pushDword(Addr addr, std::uint64_t value)
    {
        ASSERT_TRUE(unit->canAcceptStore(addr, 8));
        unit->pushStore(addr, 8, &value);
    }

    void
    drain()
    {
        sim.run([&] { return unit->empty() && bus->quiescent(); }, 100000);
        ASSERT_TRUE(unit->empty());
    }

    sim::Simulator sim;
    std::unique_ptr<bus::SystemBus> bus;
    std::unique_ptr<io::BurstDevice> device;
    std::unique_ptr<UncachedBuffer> unit;
};

TEST_F(UbufFixture, NonCombiningIssuesOneTxnPerStore)
{
    make(0);
    for (unsigned i = 0; i < 4; ++i)
        pushDword(0x1000 + i * 8, i);
    drain();
    EXPECT_EQ(device->writeLog().size(), 4u);
    EXPECT_EQ(unit->txnsIssued.value(), 4.0);
    EXPECT_EQ(unit->storesCoalesced.value(), 0.0);
}

TEST_F(UbufFixture, StoresArriveInFifoOrder)
{
    make(0);
    pushDword(0x1010, 1);
    pushDword(0x1000, 2);
    pushDword(0x1020, 3);
    drain();
    ASSERT_EQ(device->writeLog().size(), 3u);
    EXPECT_EQ(device->writeLog()[0].addr, 0x1010u);
    EXPECT_EQ(device->writeLog()[1].addr, 0x1000u);
    EXPECT_EQ(device->writeLog()[2].addr, 0x1020u);
}

TEST_F(UbufFixture, CombiningMergesSameBlockStores)
{
    // All eight stores land before the bus can issue (ratio 6: first
    // edge at tick 0 already passed when stores arrive at tick 0 --
    // the head entry locks at the first present, later stores merge
    // into it until then).
    make(64);
    for (unsigned i = 0; i < 8; ++i)
        pushDword(0x1000 + i * 8, i);
    drain();
    // First store may go alone (it was presented immediately); the
    // rest coalesce.  Fewer transactions than stores is the point.
    EXPECT_LT(device->writeLog().size(), 8u);
    EXPECT_GT(unit->storesCoalesced.value(), 0.0);
}

TEST_F(UbufFixture, CombiningRespectsBlockBoundaries)
{
    make(32);
    pushDword(0x1000, 1);
    pushDword(0x1018, 2); // same 32B block
    pushDword(0x1020, 3); // next block: new entry
    EXPECT_EQ(unit->depth(), 2u);
}

TEST_F(UbufFixture, StoreAfterLoadDoesNotBypassIt)
{
    make(64);
    pushDword(0x1000, 1);
    bool load_done = false;
    ASSERT_TRUE(unit->canAcceptLoad());
    unit->pushLoad(0x2000, 8,
                   [&](Tick, const std::vector<std::uint8_t> &) {
                       load_done = true;
                   });
    // A store to the same block as the first one must NOT merge into
    // it across the load: it becomes a new (third) entry.
    pushDword(0x1008, 2);
    EXPECT_EQ(unit->depth(), 3u);
    drain();
    EXPECT_TRUE(load_done);
}

TEST_F(UbufFixture, CapacityLimitsAccepts)
{
    make(0, /*entries=*/2, /*ratio=*/64); // very slow bus
    pushDword(0x1000, 1);
    pushDword(0x2000, 2);
    EXPECT_FALSE(unit->canAcceptStore(0x3000, 8));
    EXPECT_FALSE(unit->canAcceptLoad());
    drain();
    EXPECT_TRUE(unit->canAcceptStore(0x3000, 8));
}

TEST_F(UbufFixture, CombiningTailAcceptsEvenWhenFull)
{
    make(64, /*entries=*/2, /*ratio=*/64);
    pushDword(0x1000, 1);
    pushDword(0x2000, 2); // second entry; buffer "full"
    // ...but a store into the open tail block still coalesces.
    EXPECT_TRUE(unit->canAcceptStore(0x2008, 8));
    pushDword(0x2008, 3);
    EXPECT_EQ(unit->depth(), 2u);
}

TEST_F(UbufFixture, PartialBlockDecomposesAligned)
{
    make(64, 8, /*ratio=*/64); // slow bus: everything coalesces first
    // Dwords at offsets 8..48: 8@8 + 16@16 + 16@32 once locked.
    pushDword(0x1008, 1);
    pushDword(0x1010, 2);
    pushDword(0x1018, 3);
    pushDword(0x1020, 4);
    pushDword(0x1028, 5);
    drain();
    ASSERT_EQ(device->writeLog().size(), 3u);
    EXPECT_EQ(device->writeLog()[0].addr, 0x1008u);
    EXPECT_EQ(device->writeLog()[0].data.size(), 8u);
    EXPECT_EQ(device->writeLog()[1].addr, 0x1010u);
    EXPECT_EQ(device->writeLog()[1].data.size(), 16u);
    EXPECT_EQ(device->writeLog()[2].addr, 0x1020u);
    EXPECT_EQ(device->writeLog()[2].data.size(), 16u);
}

TEST_F(UbufFixture, DataIntegrityThroughCombining)
{
    make(64, 8, 64);
    std::uint64_t values[8];
    for (unsigned i = 0; i < 8; ++i) {
        values[i] = 0x0123456789abcdefULL ^ (i * 0x1111);
        pushDword(0x1000 + i * 8, values[i]);
    }
    drain();
    ASSERT_EQ(device->writeLog().size(), 1u);
    const auto &data = device->writeLog()[0].data;
    ASSERT_EQ(data.size(), 64u);
    for (unsigned i = 0; i < 8; ++i) {
        std::uint64_t got = 0;
        std::memcpy(&got, data.data() + i * 8, 8);
        EXPECT_EQ(got, values[i]) << "dword " << i;
    }
}

TEST_F(UbufFixture, EmptyTracksInflightCompletions)
{
    make(0);
    pushDword(0x1000, 1);
    EXPECT_FALSE(unit->empty());
    // Run just until the entry leaves the queue: still not "empty"
    // while the bus transaction is in flight.
    sim.run([&] { return unit->depth() == 0; }, 10000);
    EXPECT_FALSE(unit->empty());
    drain();
    EXPECT_TRUE(unit->empty());
}

TEST_F(UbufFixture, LoadReturnsDeviceData)
{
    make(0);
    device->setRegister(0x3000, 0xfeedface);
    std::uint64_t got = 0;
    unit->pushLoad(0x3000, 8,
                   [&](Tick, const std::vector<std::uint8_t> &data) {
                       std::memcpy(&got, data.data(), 8);
                   });
    drain();
    EXPECT_EQ(got, 0xfeedfaceu);
}

class SeqUbufFixture : public UbufFixture
{
  protected:
    void
    makeSequential(unsigned combine_bytes, unsigned ratio = 64)
    {
        bus::BusParams bus_params;
        bus_params.kind = bus::BusKind::Multiplexed;
        bus_params.widthBytes = 8;
        bus_params.ratio = ratio;
        bus_params.maxBurstBytes = 128;
        bus = std::make_unique<bus::SystemBus>(sim, bus_params);
        device = std::make_unique<io::BurstDevice>(12, 128);
        bus->addTarget(0, 0x100000, device.get());
        UncachedBufferParams params;
        params.entries = 8;
        params.combineBytes = combine_bytes;
        params.policy = csb::mem::CombinePolicy::SequentialOnly;
        unit = std::make_unique<UncachedBuffer>(sim, *bus, params);
    }
};

TEST_F(SeqUbufFixture, SequentialPatternCombinesToOneBurst)
{
    makeSequential(64);
    for (unsigned i = 0; i < 8; ++i)
        pushDword(0x1000 + i * 8, i);
    drain();
    // Fully combined line: exactly one 64-byte burst (R10000 rule).
    ASSERT_EQ(device->writeLog().size(), 1u);
    EXPECT_EQ(device->writeLog()[0].data.size(), 64u);
}

TEST_F(SeqUbufFixture, NonSequentialStoreBreaksThePattern)
{
    makeSequential(64);
    pushDword(0x1000, 1);
    pushDword(0x1008, 2);
    pushDword(0x1018, 4); // skips 0x1010: pattern broken
    EXPECT_EQ(unit->depth(), 2u)
        << "the out-of-pattern store opens a new entry";
}

TEST_F(SeqUbufFixture, PartialBlockIssuesSingleBeats)
{
    makeSequential(64);
    // Sequential but incomplete (6 of 8 dwords): the R10000 issues a
    // series of single-beat transfers, not an aligned-chunk burst.
    for (unsigned i = 0; i < 6; ++i)
        pushDword(0x1000 + i * 8, i);
    drain();
    ASSERT_EQ(device->writeLog().size(), 6u);
    for (const auto &write : device->writeLog())
        EXPECT_EQ(write.data.size(), 8u);
}

TEST_F(SeqUbufFixture, DescendingOrderNeverCombines)
{
    makeSequential(64);
    for (int i = 7; i >= 0; --i) {
        ASSERT_TRUE(unit->canAcceptStore(0x1000 + i * 8, 8));
        std::uint64_t value = static_cast<std::uint64_t>(i);
        unit->pushStore(0x1000 + static_cast<unsigned>(i) * 8, 8,
                        &value);
    }
    EXPECT_EQ(unit->storesCoalesced.value(), 0.0);
    EXPECT_EQ(unit->depth(), 8u);
}

TEST_F(UbufFixture, SubDwordStores)
{
    make(0);
    std::uint8_t byte = 0x5a;
    ASSERT_TRUE(unit->canAcceptStore(0x1003, 1));
    unit->pushStore(0x1003, 1, &byte);
    drain();
    ASSERT_EQ(device->writeLog().size(), 1u);
    EXPECT_EQ(device->writeLog()[0].addr, 0x1003u);
    EXPECT_EQ(device->writeLog()[0].data.size(), 1u);
    EXPECT_EQ(device->writeLog()[0].data[0], 0x5a);
}

} // namespace
