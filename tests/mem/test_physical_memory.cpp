/**
 * @file
 * Unit tests for the sparse physical memory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/physical_memory.hh"

namespace {

using csb::mem::PhysicalMemory;

TEST(PhysicalMemory, ReadsZeroWhenUntouched)
{
    PhysicalMemory memory;
    EXPECT_EQ(memory.readT<std::uint64_t>(0x12345678), 0u);
    EXPECT_EQ(memory.framesAllocated(), 0u);
}

TEST(PhysicalMemory, RoundTripTyped)
{
    PhysicalMemory memory;
    memory.writeT<std::uint64_t>(0x1000, 0xdeadbeefcafebabeULL);
    EXPECT_EQ(memory.readT<std::uint64_t>(0x1000), 0xdeadbeefcafebabeULL);
    memory.writeT<std::uint8_t>(0x1000, 0x42);
    EXPECT_EQ(memory.readT<std::uint8_t>(0x1000), 0x42);
    // Only the low byte changed.
    EXPECT_EQ(memory.readT<std::uint64_t>(0x1000) & 0xff, 0x42u);
}

TEST(PhysicalMemory, CrossFrameAccess)
{
    PhysicalMemory memory;
    constexpr csb::Addr boundary = PhysicalMemory::frameSize;
    std::vector<std::uint8_t> data(16);
    for (unsigned i = 0; i < 16; ++i)
        data[i] = static_cast<std::uint8_t>(i + 1);
    memory.write(boundary - 8, data.data(), data.size());

    std::vector<std::uint8_t> readback(16);
    memory.read(boundary - 8, readback.data(), readback.size());
    EXPECT_EQ(readback, data);
    EXPECT_EQ(memory.framesAllocated(), 2u);
}

TEST(PhysicalMemory, SparseAllocation)
{
    PhysicalMemory memory;
    memory.writeT<std::uint8_t>(0, 1);
    memory.writeT<std::uint8_t>(1024 * 1024 * 1024ULL, 2);
    EXPECT_EQ(memory.framesAllocated(), 2u);
}

TEST(PhysicalMemory, ReadDoesNotAllocate)
{
    PhysicalMemory memory;
    std::uint64_t value = 0;
    memory.read(0x8000, &value, 8);
    EXPECT_EQ(memory.framesAllocated(), 0u);
}

TEST(PhysicalMemory, LargeBlockRoundTrip)
{
    PhysicalMemory memory;
    std::vector<std::uint8_t> block(3 * PhysicalMemory::frameSize + 17);
    for (std::size_t i = 0; i < block.size(); ++i)
        block[i] = static_cast<std::uint8_t>(i * 7 + 3);
    memory.write(0x3fff, block.data(), block.size());
    std::vector<std::uint8_t> readback(block.size());
    memory.read(0x3fff, readback.data(), readback.size());
    EXPECT_EQ(readback, block);
}

} // namespace
