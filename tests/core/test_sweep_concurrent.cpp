/**
 * @file
 * Static-state regression tests for concurrent Simulators.  These are
 * the tests the tsan preset exists for: two full System instances
 * stepping in different threads must not race through any hidden
 * global (trace tick source, trace channel config, stats export), and
 * a real bandwidth sweep through the worker pool must reproduce the
 * serial sweep exactly.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/experiments.hh"
#include "core/kernels.hh"
#include "core/sweep.hh"
#include "core/system.hh"

namespace {

using namespace csb;
using core::BandwidthSetup;
using core::Scheme;

/** One complete simulation: build a System, stream stores, report BW. */
double
storeBandwidth(unsigned ratio, unsigned transfer_bytes)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = ratio;
    cfg.enableCsb = true;
    cfg.normalize();
    core::System system(cfg);
    isa::Program p = core::makeCsbStoreKernel(core::System::ioCsbBase,
                                              transfer_bytes, 64);
    system.run(p);
    return static_cast<double>(transfer_bytes) /
           static_cast<double>(system.ioWriteBusCycles());
}

TEST(SweepConcurrent, TwoSimulatorsInParallelMatchSerial)
{
    // Reference values, measured with no other simulator alive.
    const double ref_a = storeBandwidth(2, 512);
    const double ref_b = storeBandwidth(6, 1024);

    // The same two simulations, overlapped on two threads.  Any
    // mutable static shared between Simulator/System instances makes
    // this racy (tsan) or wrong (value mismatch).
    double par_a = 0, par_b = 0;
    std::thread ta([&] {
        for (int i = 0; i < 4; ++i)
            par_a = storeBandwidth(2, 512);
    });
    std::thread tb([&] {
        for (int i = 0; i < 4; ++i)
            par_b = storeBandwidth(6, 1024);
    });
    ta.join();
    tb.join();
    EXPECT_EQ(par_a, ref_a);
    EXPECT_EQ(par_b, ref_b);
}

TEST(SweepConcurrent, BandwidthSweepIdenticalAcrossJobs)
{
    BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = 6;
    setup.lineBytes = 64;
    const std::vector<Scheme> schemes = {Scheme::NoCombine,
                                         Scheme::Combine64, Scheme::Csb};
    const std::vector<unsigned> sizes = {16, 64, 256, 1024};

    core::SweepRunner serial(1);
    core::BandwidthSweep a =
        core::runBandwidthSweep(serial, "t", setup, schemes, sizes);
    core::SweepRunner parallel(4);
    core::BandwidthSweep b =
        core::runBandwidthSweep(parallel, "t", setup, schemes, sizes);

    ASSERT_EQ(a.bandwidth.size(), b.bandwidth.size());
    for (std::size_t i = 0; i < a.bandwidth.size(); ++i)
        EXPECT_EQ(a.bandwidth[i], b.bandwidth[i])
            << "scheme row " << i << " diverged between jobs=1 and "
            << "jobs=4";
}

TEST(SweepConcurrent, LatencySweepIdenticalAcrossJobs)
{
    BandwidthSetup setup;
    core::SweepRunner serial(1);
    core::LatencySweep a =
        core::runLatencySweep(serial, "t", setup, /*lock_miss=*/true);
    core::SweepRunner parallel(4);
    core::LatencySweep b =
        core::runLatencySweep(parallel, "t", setup, /*lock_miss=*/true);
    ASSERT_EQ(a.cycles.size(), b.cycles.size());
    for (std::size_t i = 0; i < a.cycles.size(); ++i)
        EXPECT_EQ(a.cycles[i], b.cycles[i]);
}

TEST(SweepConcurrent, ManySmallSimulationsThroughThePool)
{
    // Deliberately more points than workers so tasks queue, recycle
    // workers, and exercise the back-pressure path with real Systems.
    core::SweepRunner runner(4);
    const std::vector<unsigned> sizes = {16, 32,  48,  64,  96, 128,
                                         192, 256, 384, 512, 768, 1024};
    std::vector<double> pooled = runner.map(sizes, [](unsigned size) {
        return storeBandwidth(6, size);
    });
    core::SweepRunner one(1);
    std::vector<double> serial = one.map(sizes, [](unsigned size) {
        return storeBandwidth(6, size);
    });
    EXPECT_EQ(pooled, serial);
}

} // namespace
