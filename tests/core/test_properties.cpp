/**
 * @file
 * Parameterized property sweeps across the full configuration space:
 * invariants that must hold for EVERY bus organization, width, ratio,
 * overhead setting, combining scheme and transfer size.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/experiments.hh"
#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;
using core::BandwidthSetup;
using core::Scheme;
using core::System;
using core::SystemConfig;

struct SweepCase
{
    bus::BusKind kind;
    unsigned width;
    unsigned ratio;
    unsigned turnaround;
    unsigned ackDelay;
    unsigned lineBytes;
    Scheme scheme;

    friend std::ostream &
    operator<<(std::ostream &os, const SweepCase &c)
    {
        os << (c.kind == bus::BusKind::Multiplexed ? "mux" : "split")
           << "_w" << c.width << "_r" << c.ratio << "_t" << c.turnaround
           << "_a" << c.ackDelay << "_l" << c.lineBytes << "_"
           << core::schemeName(c.scheme);
        return os;
    }
};

BandwidthSetup
setupOf(const SweepCase &c)
{
    BandwidthSetup setup;
    setup.bus.kind = c.kind;
    setup.bus.widthBytes = c.width;
    setup.bus.ratio = c.ratio;
    setup.bus.turnaround = c.turnaround;
    setup.bus.ackDelay = c.ackDelay;
    setup.lineBytes = c.lineBytes;
    return setup;
}

class BusProperty : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(BusProperty, ProtocolAndConservationInvariants)
{
    const SweepCase &c = GetParam();
    BandwidthSetup setup = setupOf(c);

    SystemConfig cfg;
    cfg.lineBytes = setup.lineBytes;
    cfg.bus = setup.bus;
    cfg.enableCsb = c.scheme == Scheme::Csb;
    cfg.ubuf.combineBytes = core::schemeCombineBytes(c.scheme);
    cfg.normalize();
    System system(cfg);

    constexpr unsigned transfer = 192; // 3 lines at 64B, deliberately
                                       // not a multiple of 128
    isa::Program p =
        c.scheme == Scheme::Csb
            ? core::makeCsbStoreKernel(System::ioCsbBase, transfer,
                                       c.lineBytes)
            : core::makeStoreKernel(System::ioAccelBase, transfer);
    system.run(p);

    // P1: every transaction is naturally aligned, power-of-two sized,
    // and no larger than the configured burst maximum.
    for (const auto &rec : system.bus().monitor().records()) {
        EXPECT_TRUE(isPowerOf2(rec.size)) << rec.size;
        EXPECT_EQ(rec.addr % rec.size, 0u);
        EXPECT_LE(rec.size, cfg.bus.maxBurstBytes);
    }

    // P2: byte conservation at the device.  Non-CSB schemes deliver
    // exactly the stored bytes; the CSB delivers whole (padded)
    // lines, i.e. transfer rounded up to the line size.
    double expected =
        c.scheme == Scheme::Csb
            ? static_cast<double>(
                  roundUp(transfer, c.lineBytes))
            : static_cast<double>(transfer);
    EXPECT_EQ(system.device().bytesReceived.value(), expected);

    // P3: transactions never overlap in time on the shared resource:
    // sorted by address cycle, each Write's tenure must not intersect
    // the next one's on the same path.
    const auto &records = system.bus().monitor().records();
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_GT(records[i].addrCycle, records[i - 1].addrCycle)
            << "one address cycle per bus cycle";
    }

    // P4: ackDelay honoured between strongly ordered transactions.
    if (c.ackDelay > 0) {
        for (std::size_t i = 1; i < records.size(); ++i) {
            if (records[i].stronglyOrdered &&
                records[i - 1].stronglyOrdered &&
                records[i].master == records[i - 1].master) {
                EXPECT_GE(records[i].addrCycle - records[i - 1].addrCycle,
                          c.ackDelay);
            }
        }
    }

    // P5: the system went fully quiescent.
    EXPECT_TRUE(system.quiescent());
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    const Scheme schemes[] = {Scheme::NoCombine, Scheme::Combine32,
                              Scheme::Combine64, Scheme::Csb};
    for (Scheme scheme : schemes) {
        for (unsigned ratio : {2u, 6u}) {
            cases.push_back({bus::BusKind::Multiplexed, 8, ratio, 0, 0,
                             64, scheme});
        }
        cases.push_back(
            {bus::BusKind::Multiplexed, 8, 6, 1, 0, 64, scheme});
        cases.push_back(
            {bus::BusKind::Multiplexed, 8, 6, 0, 4, 64, scheme});
        cases.push_back(
            {bus::BusKind::Multiplexed, 8, 6, 0, 8, 64, scheme});
        cases.push_back({bus::BusKind::Split, 16, 6, 0, 0, 64, scheme});
        cases.push_back({bus::BusKind::Split, 32, 6, 0, 0, 64, scheme});
        cases.push_back({bus::BusKind::Split, 16, 6, 1, 4, 64, scheme});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, BusProperty, ::testing::ValuesIn(sweepCases()),
    [](const ::testing::TestParamInfo<SweepCase> &info) {
        std::ostringstream os;
        os << info.param;
        std::string name = os.str();
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

// --- Monotonicity: bandwidth never decreases with transfer size for
// --- combining schemes on a clean bus (figure 3's qualitative law).

struct MonotonicCase
{
    Scheme scheme;
    unsigned ratio;
};

class BandwidthMonotonic
    : public ::testing::TestWithParam<MonotonicCase>
{
};

TEST_P(BandwidthMonotonic, NonDecreasingInTransferSize)
{
    BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = GetParam().ratio;
    setup.lineBytes = 64;
    double previous = 0;
    for (unsigned size : core::defaultTransferSizes()) {
        double bw =
            core::measureStoreBandwidth(setup, GetParam().scheme, size);
        EXPECT_GE(bw, previous - 1e-9)
            << core::schemeName(GetParam().scheme) << " at " << size;
        previous = bw;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BandwidthMonotonic,
    ::testing::Values(MonotonicCase{Scheme::NoCombine, 6},
                      MonotonicCase{Scheme::Combine16, 6},
                      MonotonicCase{Scheme::Combine32, 6},
                      MonotonicCase{Scheme::Combine64, 6},
                      MonotonicCase{Scheme::Csb, 6},
                      MonotonicCase{Scheme::Combine64, 2},
                      MonotonicCase{Scheme::Csb, 10}),
    [](const ::testing::TestParamInfo<MonotonicCase> &info) {
        std::string name = core::schemeName(info.param.scheme) + "_r" +
                           std::to_string(info.param.ratio);
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

// --- CSB end-to-end data integrity across line sizes. -----------------

class CsbLineSize : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CsbLineSize, FullLineDataIntegrity)
{
    unsigned line = GetParam();
    SystemConfig cfg;
    cfg.lineBytes = line;
    cfg.normalize();
    System system(cfg);
    isa::Program p =
        core::makeCsbStoreKernel(System::ioCsbBase, 2 * line, line);
    system.run(p);

    ASSERT_EQ(system.device().writeLog().size(), 2u);
    for (unsigned g = 0; g < 2; ++g) {
        const auto &write = system.device().writeLog()[g];
        EXPECT_EQ(write.addr, System::ioCsbBase + g * line);
        ASSERT_EQ(write.data.size(), line);
        for (unsigned i = 0; i < line / 8; ++i) {
            std::uint64_t got = 0;
            std::memcpy(&got, write.data.data() + i * 8, 8);
            unsigned dword_index = g * (line / 8) + i;
            std::uint64_t want =
                0x1111111111111111ULL * (2 + dword_index % 7);
            EXPECT_EQ(got, want) << "line " << g << " dword " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Lines, CsbLineSize,
                         ::testing::Values(16u, 32u, 64u, 128u));

} // namespace
