/**
 * @file
 * End-to-end integration tests reproducing the paper's analytic
 * reference points (section 4.3).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/experiments.hh"
#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;
using core::BandwidthSetup;
using core::Scheme;
using core::System;
using core::SystemConfig;

BandwidthSetup
muxSetup(unsigned ratio = 6, unsigned line = 64, unsigned turnaround = 0,
         unsigned ack = 0)
{
    BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = ratio;
    setup.bus.turnaround = turnaround;
    setup.bus.ackDelay = ack;
    setup.lineBytes = line;
    return setup;
}

TEST(Integration, NonCombiningBandwidthIsHalfPeak)
{
    // Paper: "the effective bus bandwidth is 4 bytes per bus cycle,
    // which is half of the peak bandwidth", independent of size.
    for (unsigned size : {16u, 64u, 256u, 1024u}) {
        double bw = measureStoreBandwidth(muxSetup(), Scheme::NoCombine,
                                          size);
        EXPECT_DOUBLE_EQ(bw, 4.0) << "transfer " << size;
    }
}

TEST(Integration, CsbSingleLineBandwidth)
{
    // One full 64-byte line: 1 addr + 8 data cycles.
    double bw = measureStoreBandwidth(muxSetup(), Scheme::Csb, 64);
    EXPECT_NEAR(bw, 64.0 / 9.0, 1e-9);
}

TEST(Integration, CsbSmallTransferPenalty)
{
    // 16 useful bytes still cost a full 9-cycle line burst.
    double bw = measureStoreBandwidth(muxSetup(), Scheme::Csb, 16);
    EXPECT_NEAR(bw, 16.0 / 9.0, 1e-9);
}

TEST(Integration, CsbBeatsEverythingAtLineSize)
{
    for (Scheme scheme : {Scheme::NoCombine, Scheme::Combine16,
                          Scheme::Combine32, Scheme::Combine64}) {
        double other = measureStoreBandwidth(muxSetup(), scheme, 64);
        double csb = measureStoreBandwidth(muxSetup(), Scheme::Csb, 64);
        EXPECT_GT(csb, other) << core::schemeName(scheme);
    }
}

TEST(Integration, NoCombineBeatsCsbForTinyTransfers)
{
    double nc = measureStoreBandwidth(muxSetup(), Scheme::NoCombine, 16);
    double csb = measureStoreBandwidth(muxSetup(), Scheme::Csb, 16);
    EXPECT_GT(nc, csb)
        << "sub-line transfers are penalized by the full-line burst";
}

TEST(Integration, CombiningApproachesCsbForLargeTransfers)
{
    double comb = measureStoreBandwidth(muxSetup(), Scheme::Combine64, 1024);
    double csb = measureStoreBandwidth(muxSetup(), Scheme::Csb, 1024);
    EXPECT_GT(comb, 4.0) << "combining must beat the non-combined rate";
    EXPECT_LE(comb, csb + 1e-9);
    EXPECT_GT(comb / csb, 0.6)
        << "large transfers should approach the CSB burst rate";
}

TEST(Integration, SplitBusDwordUsesHalfWidth)
{
    BandwidthSetup setup = muxSetup();
    setup.bus.kind = bus::BusKind::Split;
    setup.bus.widthBytes = 16;
    double bw = measureStoreBandwidth(setup, Scheme::NoCombine, 256);
    EXPECT_DOUBLE_EQ(bw, 8.0)
        << "a dword uses half of a 128-bit data path";
}

TEST(Integration, SplitBusCsbFullWidth)
{
    BandwidthSetup setup = muxSetup();
    setup.bus.kind = bus::BusKind::Split;
    setup.bus.widthBytes = 16;
    double bw = measureStoreBandwidth(setup, Scheme::Csb, 1024);
    // 64-byte bursts in 4 back-to-back data cycles: 16 B/cycle.
    EXPECT_NEAR(bw, 16.0, 0.5);
}

TEST(Integration, AckDelayHurtsShortTransactionsOnly)
{
    BandwidthSetup plain = muxSetup();
    BandwidthSetup delayed = muxSetup(6, 64, 0, /*ack=*/8);
    double nc_plain = measureStoreBandwidth(plain, Scheme::NoCombine, 256);
    double nc_delay = measureStoreBandwidth(delayed, Scheme::NoCombine, 256);
    EXPECT_LT(nc_delay, nc_plain / 2)
        << "dword writes every 8 cycles instead of every 2";
    double csb_plain = measureStoreBandwidth(plain, Scheme::Csb, 1024);
    double csb_delay = measureStoreBandwidth(delayed, Scheme::Csb, 1024);
    EXPECT_NEAR(csb_delay, csb_plain, 0.2)
        << "a 9-cycle burst hides an 8-cycle acknowledgment";
}

TEST(Integration, EveryIoTransactionIsAlignedPowerOfTwo)
{
    // Run a mixed workload and verify the bus-protocol invariant on
    // everything the uncached buffer and CSB produced.
    BandwidthSetup setup = muxSetup();
    for (Scheme scheme :
         {Scheme::NoCombine, Scheme::Combine32, Scheme::Csb}) {
        SystemConfig cfg;
        cfg.lineBytes = setup.lineBytes;
        cfg.bus = setup.bus;
        cfg.enableCsb = scheme == Scheme::Csb;
        cfg.ubuf.combineBytes = core::schemeCombineBytes(scheme);
        cfg.normalize();
        System system(cfg);
        isa::Program p =
            scheme == Scheme::Csb
                ? core::makeCsbStoreKernel(System::ioCsbBase, 192, 64)
                : core::makeStoreKernel(System::ioAccelBase, 192);
        system.run(p);
        for (const auto &rec : system.bus().monitor().records()) {
            EXPECT_TRUE(isPowerOf2(rec.size));
            EXPECT_EQ(rec.addr % rec.size, 0u);
        }
    }
}

TEST(Integration, ByteConservationThroughUncachedBuffer)
{
    // Every stored byte crosses the bus exactly once (no loss, no
    // duplication) for every combining scheme.
    for (Scheme scheme : {Scheme::NoCombine, Scheme::Combine16,
                          Scheme::Combine32, Scheme::Combine64}) {
        SystemConfig cfg;
        cfg.bus = muxSetup().bus;
        cfg.enableCsb = false;
        cfg.ubuf.combineBytes = core::schemeCombineBytes(scheme);
        cfg.normalize();
        System system(cfg);
        isa::Program p = core::makeStoreKernel(System::ioAccelBase, 264);
        system.run(p);
        EXPECT_EQ(system.bus().bytesWritten.value(), 264.0)
            << core::schemeName(scheme);
        EXPECT_EQ(system.device().bytesReceived.value(), 264.0);
    }
}

TEST(Integration, DeviceSeesExactStoredBytes)
{
    SystemConfig cfg;
    cfg.bus = muxSetup().bus;
    cfg.ubuf.combineBytes = 64;
    cfg.enableCsb = false;
    cfg.normalize();
    System system(cfg);
    isa::Program p = core::makeStoreKernel(System::ioAccelBase, 64);
    system.run(p);

    // Reassemble the device image and compare with the kernel's data
    // pattern (r2..r8 rotating).
    std::vector<std::uint8_t> image(64, 0);
    for (const auto &write : system.device().writeLog()) {
        std::copy(write.data.begin(), write.data.end(),
                  image.begin() + (write.addr - System::ioAccelBase));
    }
    for (unsigned i = 0; i < 8; ++i) {
        std::uint64_t got = 0;
        std::memcpy(&got, image.data() + i * 8, 8);
        std::uint64_t want = 0x1111111111111111ULL * (2 + i % 7);
        EXPECT_EQ(got, want) << "dword " << i;
    }
}

TEST(Integration, LockOverheadSlopeMatchesPaper)
{
    // Figure 5(a): without combining, latency grows ~12 CPU cycles
    // per doubleword at a CPU:bus ratio of 6 (one 2-cycle bus
    // transaction each).
    BandwidthSetup setup = muxSetup();
    double c2 = measureLockedSequence(setup, Scheme::NoCombine, 2, false);
    double c8 = measureLockedSequence(setup, Scheme::NoCombine, 8, false);
    double slope = (c8 - c2) / 6.0;
    EXPECT_NEAR(slope, 12.0, 2.0);
}

TEST(Integration, CsbSequenceSlopeMatchesPaper)
{
    // Figure 5: CSB latency increases ~1 cycle per doubleword (one
    // combining store retires per cycle).
    BandwidthSetup setup = muxSetup();
    double c2 = measureCsbSequence(setup, 2);
    double c8 = measureCsbSequence(setup, 8);
    double slope = (c8 - c2) / 6.0;
    EXPECT_NEAR(slope, 1.0, 0.5);
}

TEST(Integration, CsbFarCheaperThanLockedAccess)
{
    BandwidthSetup setup = muxSetup();
    for (unsigned n : {2u, 4u, 8u}) {
        double locked =
            measureLockedSequence(setup, Scheme::NoCombine, n, false);
        double via_csb = measureCsbSequence(setup, n);
        EXPECT_LT(via_csb, locked / 2) << n << " dwords";
    }
}

TEST(Integration, LockMissAddsRoughlyMissLatency)
{
    // Figure 5(b): a lock miss adds ~130 cycles (100-cycle memory
    // latency plus the longer acquire/release path).
    BandwidthSetup setup = muxSetup();
    double hit = measureLockedSequence(setup, Scheme::NoCombine, 4, false);
    double miss = measureLockedSequence(setup, Scheme::NoCombine, 4, true);
    EXPECT_GT(miss - hit, 60.0);
    EXPECT_LT(miss - hit, 250.0);
}

} // namespace
