/**
 * @file
 * Tests of the SweepRunner determinism contract: results come back in
 * point-index order regardless of completion order, the parallel path
 * reproduces the serial path bit for bit, rendering goes to private
 * per-point buffers, and exceptions pick the lowest failing index
 * (what a serial loop would have thrown first).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/sweep.hh"
#include "sim/thread_pool.hh"

namespace {

using csb::core::SweepRunner;

TEST(Sweep, ResolveJobs)
{
    EXPECT_EQ(csb::core::resolveJobs(1), 1u);
    EXPECT_EQ(csb::core::resolveJobs(7), 7u);
    EXPECT_EQ(csb::core::resolveJobs(0),
              csb::sim::ThreadPool::defaultThreads());
}

TEST(Sweep, SerialPathRunsInline)
{
    SweepRunner runner(1);
    EXPECT_EQ(runner.jobs(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    runner.mapIndex(8, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
        return i;
    });
    std::vector<std::size_t> expected(8);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected) << "jobs=1 must evaluate in index order";
}

TEST(Sweep, ResultsIndexedNotCompletionOrdered)
{
    // Later points finish first (earlier points sleep longer); the
    // result vector must still be in index order.
    SweepRunner runner(4);
    constexpr std::size_t n = 12;
    std::vector<std::size_t> results =
        runner.mapIndex(n, [](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds((n - i) * 2));
            return i * 10;
        });
    ASSERT_EQ(results.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(results[i], i * 10);
}

TEST(Sweep, ParallelMatchesSerialExactly)
{
    auto fn = [](std::size_t i) {
        // Deterministic but non-trivial per-point arithmetic.
        double x = 1.0 + double(i);
        for (int k = 0; k < 50; ++k)
            x = x * 1.0000001 + double(k % 7);
        return x;
    };
    SweepRunner serial(1);
    SweepRunner parallel(4);
    std::vector<double> a = serial.mapIndex(64, fn);
    std::vector<double> b = parallel.mapIndex(64, fn);
    EXPECT_EQ(a, b) << "--jobs N must be bit-identical to --jobs 1";
}

TEST(Sweep, MapOverPoints)
{
    SweepRunner runner(3);
    std::vector<int> points = {5, 3, 9, 1};
    std::vector<int> doubled =
        runner.map(points, [](int p) { return 2 * p; });
    EXPECT_EQ(doubled, (std::vector<int>{10, 6, 18, 2}));
}

TEST(Sweep, MapRenderedUsesPrivateBuffers)
{
    SweepRunner runner(4);
    std::vector<int> points = {0, 1, 2, 3, 4, 5, 6, 7};
    auto rows = runner.mapRendered(
        points, [](int p, std::ostream &os) {
            // Interleave writes with a sleep so concurrent points
            // would corrupt a shared stream.
            os << "point " << p;
            std::this_thread::sleep_for(std::chrono::milliseconds(3));
            os << " done\n";
            return p * p;
        });
    ASSERT_EQ(rows.size(), points.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].value, int(i * i));
        EXPECT_EQ(rows[i].text,
                  "point " + std::to_string(i) + " done\n");
    }
}

TEST(Sweep, LowestIndexExceptionWins)
{
    // Two failing points; the higher index fails *first* in wall
    // time, but the join must rethrow the lowest index's exception --
    // exactly what a serial loop would have thrown.
    SweepRunner runner(4);
    auto run = [&] {
        runner.mapIndex(8, [](std::size_t i) -> int {
            if (i == 6)
                throw std::logic_error("late index, early failure");
            if (i == 2) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(30));
                throw std::runtime_error("early index, late failure");
            }
            return int(i);
        });
    };
    try {
        run();
        FAIL() << "mapIndex did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "early index, late failure");
    } catch (const std::logic_error &) {
        FAIL() << "rethrew the higher-index exception";
    }
}

TEST(Sweep, SerialExceptionStopsAtFirstFailure)
{
    SweepRunner runner(1);
    std::atomic<int> evaluated{0};
    auto run = [&] {
        runner.mapIndex(8, [&](std::size_t i) -> int {
            evaluated.fetch_add(1);
            if (i == 3)
                throw std::runtime_error("stop");
            return int(i);
        });
    };
    EXPECT_THROW(run(), std::runtime_error);
    EXPECT_EQ(evaluated.load(), 4)
        << "jobs=1 must not evaluate points past the failure";
}

TEST(Sweep, RunnerIsReusableAcrossMaps)
{
    SweepRunner runner(4);
    for (int round = 0; round < 3; ++round) {
        std::vector<std::size_t> r =
            runner.mapIndex(16, [](std::size_t i) { return i + 1; });
        ASSERT_EQ(r.size(), 16u);
        EXPECT_EQ(r.front(), 1u);
        EXPECT_EQ(r.back(), 16u);
    }
}

} // namespace
