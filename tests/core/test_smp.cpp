/**
 * @file
 * Symmetric-multiprocessor tests: the paper's motivating setting is
 * cluster nodes that are themselves SMPs, where I/O bus occupancy and
 * synchronization overhead compound.  Two cores with private CSBs
 * share the bus and the device.
 */

#include <gtest/gtest.h>

#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;

SystemConfig
dualConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.normalize();
    return cfg;
}

/** Run both cores to completion. */
void
runBoth(System &system, const isa::Program &a, const isa::Program &b)
{
    system.core(0).loadProgram(&a, 1);
    system.core(1).loadProgram(&b, 2);
    system.simulator().run(
        [&] {
            return system.core(0).halted() && system.core(1).halted() &&
                   system.quiescent();
        },
        5'000'000);
    ASSERT_TRUE(system.core(0).halted());
    ASSERT_TRUE(system.core(1).halted());
}

TEST(Smp, TwoCoresRunIndependently)
{
    System system(dualConfig());
    isa::Program a;
    a.li(isa::ir(1), 11);
    a.li(isa::ir(2), 0x8000);
    a.std_(isa::ir(1), isa::ir(2), 0);
    a.halt();
    a.finalize();
    isa::Program b;
    b.li(isa::ir(1), 22);
    b.li(isa::ir(2), 0x8100);
    b.std_(isa::ir(1), isa::ir(2), 0);
    b.halt();
    b.finalize();
    runBoth(system, a, b);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8000), 11u);
    EXPECT_EQ(system.memory().readT<std::uint64_t>(0x8100), 22u);
}

TEST(Smp, PrivateCsbsNeverConflict)
{
    // Unlike two processes timesharing one CPU, two processors have
    // their own CSBs: concurrent sequences to the device cannot clear
    // each other.
    System system(dualConfig());
    isa::Program a = core::makeCsbStoreKernel(System::ioCsbBase, 4 * 64,
                                              64);
    isa::Program b = core::makeCsbStoreKernel(
        System::ioCsbBase + 0x1000, 4 * 64, 64);
    runBoth(system, a, b);

    EXPECT_EQ(system.csb(0)->flushesFailed.value(), 0.0);
    EXPECT_EQ(system.csb(1)->flushesFailed.value(), 0.0);
    EXPECT_EQ(system.csb(0)->flushesSucceeded.value(), 4.0);
    EXPECT_EQ(system.csb(1)->flushesSucceeded.value(), 4.0);
    EXPECT_EQ(system.device().writeLog().size(), 8u);
    for (const auto &write : system.device().writeLog())
        EXPECT_EQ(write.data.size(), 64u) << "every commit is one burst";
}

TEST(Smp, BusArbitrationInterleavesBursts)
{
    System system(dualConfig());
    isa::Program a = core::makeCsbStoreKernel(System::ioCsbBase, 8 * 64,
                                              64);
    isa::Program b = core::makeCsbStoreKernel(
        System::ioCsbBase + 0x1000, 8 * 64, 64);
    runBoth(system, a, b);

    // Both masters' line bursts appear, and the combined stream is
    // still one-address-cycle-per-transaction legal.
    const auto &records = system.bus().monitor().records();
    bool saw[2] = {false, false};
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].addr >= System::ioCsbBase + 0x1000)
            saw[1] = true;
        else if (records[i].addr >= System::ioCsbBase)
            saw[0] = true;
        if (i > 0)
            EXPECT_GT(records[i].addrCycle, records[i - 1].addrCycle);
    }
    EXPECT_TRUE(saw[0]);
    EXPECT_TRUE(saw[1]);
}

TEST(Smp, SharedBusHalvesPerCoreBandwidth)
{
    // One core streaming alone vs two cores streaming together: each
    // gets roughly half of the (saturated) bus.
    auto window_cycles = [](unsigned cores) {
        SystemConfig cfg;
        cfg.numCores = cores;
        cfg.normalize();
        System system(cfg);
        isa::Program a =
            core::makeCsbStoreKernel(System::ioCsbBase, 16 * 64, 64);
        isa::Program b = core::makeCsbStoreKernel(
            System::ioCsbBase + 0x1000, 16 * 64, 64);
        system.core(0).loadProgram(&a, 1);
        if (cores > 1)
            system.core(1).loadProgram(&b, 2);
        system.simulator().run(
            [&] {
                for (unsigned c = 0; c < cores; ++c) {
                    if (!system.core(c).halted())
                        return false;
                }
                return system.quiescent();
            },
            5'000'000);
        return system.ioWriteBusCycles();
    };
    std::uint64_t solo = window_cycles(1);
    std::uint64_t duo = window_cycles(2);
    // Twice the data over a saturated bus: about twice the window.
    EXPECT_GT(duo, solo + solo / 2);
    EXPECT_LT(duo, 3 * solo);
}

TEST(Smp, UncachedBuffersArePrivate)
{
    System system(dualConfig());
    isa::Program a = core::makeStoreKernel(System::ioAccelBase, 128);
    isa::Program b =
        core::makeStoreKernel(System::ioAccelBase + 0x1000, 128);
    runBoth(system, a, b);
    EXPECT_EQ(system.uncachedBuffer(0).storesPushed.value(), 16.0);
    EXPECT_EQ(system.uncachedBuffer(1).storesPushed.value(), 16.0);
    EXPECT_EQ(system.device().bytesReceived.value(), 256.0);
}

} // namespace
