/**
 * @file
 * Checkpoint/restore tick-identity contract: a run that checkpoints
 * at a quiescent boundary and resumes in a fresh process-equivalent
 * system must be indistinguishable -- same ticks, same stats -- from
 * the run that never stopped (docs/CHECKPOINT.md).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/kernels.hh"
#include "core/system.hh"
#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace {

using csb::FatalError;
using csb::Tick;
namespace core = csb::core;

core::SystemConfig
baseConfig()
{
    core::SystemConfig cfg;
    cfg.normalize();
    return cfg;
}

std::string
statsJson(core::System &system)
{
    std::ostringstream os;
    system.dumpStatsJson(os);
    return os.str();
}

/** First program: warm the caches and push uncached I/O. */
csb::isa::Program
warmupProgram()
{
    return core::makeStoreKernel(core::System::ioUncachedBase, 512);
}

/** Second program: CSB traffic, exercising the restored CSB path. */
csb::isa::Program
resumeProgram()
{
    return core::makeCsbStoreKernel(core::System::ioCsbBase, 512, 64);
}

TEST(CheckpointResume, ResumedRunIsTickIdenticalToUninterrupted)
{
    // Reference: one system runs both programs back to back.
    core::System reference(baseConfig());
    reference.run(warmupProgram());
    Tick ref_end = reference.run(resumeProgram());

    // Checkpointed: run the first program, save, restore into a fresh
    // system, run the second.
    std::string path = ::testing::TempDir() + "resume.csbc";
    {
        core::System before(baseConfig());
        before.run(warmupProgram());
        before.saveCheckpointFile(path);
    }
    core::System after(baseConfig());
    after.restoreCheckpointFile(path);
    Tick after_end = after.run(resumeProgram());
    std::remove(path.c_str());

    EXPECT_EQ(after_end, ref_end);
    EXPECT_EQ(statsJson(after), statsJson(reference));
}

TEST(CheckpointResume, OneCheckpointForksManyContinuations)
{
    // The sweep use case: one warm checkpoint, several grid points
    // forked from it.  Each fork must behave as if it had run the
    // warm-up itself.
    std::string path = ::testing::TempDir() + "fork.csbc";
    {
        core::System warm(baseConfig());
        warm.run(warmupProgram());
        warm.saveCheckpointFile(path);
    }

    for (unsigned bytes : {64u, 256u}) {
        core::System reference(baseConfig());
        reference.run(warmupProgram());
        Tick ref_end = reference.run(core::makeCsbStoreKernel(
            core::System::ioCsbBase, bytes, 64));

        core::System fork(baseConfig());
        fork.restoreCheckpointFile(path);
        Tick fork_end = fork.run(core::makeCsbStoreKernel(
            core::System::ioCsbBase, bytes, 64));

        EXPECT_EQ(fork_end, ref_end) << bytes << " bytes";
        EXPECT_EQ(statsJson(fork), statsJson(reference))
            << bytes << " bytes";
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, RestoredMemoryAndTickMatch)
{
    std::string path = ::testing::TempDir() + "state.csbc";
    Tick saved_tick = 0;
    {
        core::System before(baseConfig());
        saved_tick = before.run(warmupProgram());
        before.saveCheckpointFile(path);
    }
    core::System after(baseConfig());
    after.restoreCheckpointFile(path);
    EXPECT_EQ(after.simulator().curTick(), saved_tick);

    // The device saw the stores before the checkpoint; its write log
    // must survive the round trip.
    EXPECT_FALSE(after.device().writeLog().empty());
    std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsConfigMismatch)
{
    std::string path = ::testing::TempDir() + "mismatch.csbc";
    {
        core::System before(baseConfig());
        before.run(warmupProgram());
        before.saveCheckpointFile(path);
    }
    core::SystemConfig other = baseConfig();
    other.lineBytes = 32;
    other.normalize();
    core::System after(other);
    EXPECT_THROW(after.restoreCheckpointFile(path), FatalError);
    std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsCorruptedCheckpoint)
{
    std::string path = ::testing::TempDir() + "corrupt.csbc";
    {
        core::System before(baseConfig());
        before.run(warmupProgram());
        before.saveCheckpointFile(path);
    }

    // Truncate the file to half its size.
    std::string bytes;
    {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        bytes = buf.str();
    }
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size() / 2));
    }
    core::System after(baseConfig());
    EXPECT_THROW(after.restoreCheckpointFile(path), FatalError);
    std::remove(path.c_str());
}

} // namespace
