/**
 * @file
 * Trace replay determinism contract: replaying a recorded reference
 * stream against a fresh replay-mode system reproduces the live run's
 * memory-system behaviour tick for tick, byte for byte
 * (docs/TRACE_FORMAT.md).
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/experiments.hh"
#include "core/system.hh"
#include "sim/logging.hh"
#include "sim/trace_recorder.hh"

namespace {

using csb::FatalError;
using csb::sim::MemTrace;
using csb::sim::TraceRecorder;
namespace core = csb::core;
using core::Scheme;

core::BandwidthSetup
referenceSetup()
{
    core::BandwidthSetup setup;
    setup.bus.kind = csb::bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = 6;
    setup.lineBytes = 64;
    return setup;
}

void
expectSameRun(const core::TracedRun &live, const core::TracedRun &rep)
{
    EXPECT_EQ(live.endTick, rep.endTick);
    EXPECT_EQ(live.ioWriteBusCycles, rep.ioWriteBusCycles);
    EXPECT_EQ(live.ioWriteTxns, rep.ioWriteTxns);
    EXPECT_EQ(live.bytesPerBusCycle, rep.bytesPerBusCycle);
    EXPECT_EQ(live.memStatsJson, rep.memStatsJson);
}

class ReplayIdentity : public ::testing::TestWithParam<Scheme>
{};

TEST_P(ReplayIdentity, RecordThenReplayIsTickIdentical)
{
    core::BandwidthSetup setup = referenceSetup();
    TraceRecorder recorder(1, setup.lineBytes);
    core::TracedRun live = core::recordStoreBandwidth(
        setup, GetParam(), /*transfer_bytes=*/2048, &recorder);
    ASSERT_FALSE(recorder.records().empty());

    core::TracedRun rep = core::replayStoreBandwidth(
        setup, GetParam(), 2048, MemTrace::fromRecorder(recorder));
    expectSameRun(live, rep);
}

TEST_P(ReplayIdentity, ComputePaddedKernelStillTickIdentical)
{
    // The padded kernel leaves no records for its ALU chain; replay
    // fast-forwards the gaps yet must land every bus transaction on
    // the identical tick.
    core::BandwidthSetup setup = referenceSetup();
    TraceRecorder recorder(1, setup.lineBytes);
    core::TracedRun live = core::recordStoreBandwidth(
        setup, GetParam(), 1024, &recorder, /*alu_per_store=*/16);
    core::TracedRun rep = core::replayStoreBandwidth(
        setup, GetParam(), 1024, MemTrace::fromRecorder(recorder));
    expectSameRun(live, rep);
}

std::string
schemeTestName(const ::testing::TestParamInfo<Scheme> &info)
{
    switch (info.param) {
      case Scheme::NoCombine: return "NoCombine";
      case Scheme::Combine64: return "Combine64";
      case Scheme::Csb: return "Csb";
      default: return "Other";
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, ReplayIdentity,
                         ::testing::Values(Scheme::NoCombine,
                                           Scheme::Combine64,
                                           Scheme::Csb),
                         schemeTestName);

TEST(Replay, SurvivesOnDiskRoundTrip)
{
    core::BandwidthSetup setup = referenceSetup();
    TraceRecorder recorder(1, setup.lineBytes);
    core::TracedRun live = core::recordStoreBandwidth(
        setup, Scheme::Csb, 1024, &recorder);

    std::string path = ::testing::TempDir() + "replay_rt.csbt";
    recorder.writeFile(path);
    core::TracedRun rep = core::replayStoreBandwidth(
        setup, Scheme::Csb, 1024, MemTrace::loadFile(path));
    std::remove(path.c_str());
    expectSameRun(live, rep);
}

TEST(Replay, RecordingDoesNotPerturbTheRun)
{
    // Capture is passive: the recorded run's surface must equal an
    // unrecorded run's.
    core::BandwidthSetup setup = referenceSetup();
    TraceRecorder recorder(1, setup.lineBytes);
    core::TracedRun recorded = core::recordStoreBandwidth(
        setup, Scheme::NoCombine, 1024, &recorder);
    core::TracedRun plain = core::recordStoreBandwidth(
        setup, Scheme::NoCombine, 1024, nullptr);
    expectSameRun(plain, recorded);
    EXPECT_EQ(plain.bytesPerBusCycle,
              core::measureStoreBandwidth(setup, Scheme::NoCombine,
                                          1024));
}

TEST(Replay, RejectsTraceWithMismatchedGeometry)
{
    // A trace recorded at 64-byte lines cannot drive a 32-byte-line
    // system: the stream's flush/combining semantics assume the line.
    core::BandwidthSetup setup = referenceSetup();
    TraceRecorder recorder(1, setup.lineBytes);
    core::recordStoreBandwidth(setup, Scheme::Csb, 512, &recorder);

    core::BandwidthSetup narrow = referenceSetup();
    narrow.lineBytes = 32;
    core::SystemConfig cfg = core::bandwidthConfig(narrow, Scheme::Csb);
    cfg.replayMode = true;
    core::System system(cfg);
    EXPECT_THROW(system.replay(MemTrace::fromRecorder(recorder)),
                 FatalError);
}

TEST(Replay, RejectsInterpreterTraces)
{
    // Interpreter records carry step indices, not ticks; the replay
    // front end refuses them up front.
    TraceRecorder recorder(1, 64);
    csb::sim::TraceRecord rec;
    rec.tick = 0;
    rec.op = csb::sim::TraceOp::UncachedStore;
    rec.addr = 0x2000'0000;
    rec.size = 8;
    rec.flags = csb::sim::TraceFlagInterpreter;
    recorder.append(rec);

    core::SystemConfig cfg =
        core::bandwidthConfig(referenceSetup(), Scheme::NoCombine);
    cfg.replayMode = true;
    core::System system(cfg);
    EXPECT_THROW(system.replay(MemTrace::fromRecorder(recorder)),
                 FatalError);
}

} // namespace
