/**
 * @file
 * Property tests over the figure 5 latency experiment: qualitative
 * laws that must hold across the whole parameter space, not just at
 * the golden points.
 */

#include <gtest/gtest.h>

#include "core/experiments.hh"

namespace {

using namespace csb;
using core::BandwidthSetup;
using core::Scheme;

BandwidthSetup
mux(unsigned ratio)
{
    BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = ratio;
    setup.lineBytes = 64;
    return setup;
}

struct LatencyCase
{
    Scheme scheme;
    unsigned ratio;
    bool lockMiss;
};

class Fig5Property : public ::testing::TestWithParam<LatencyCase>
{
};

TEST_P(Fig5Property, LatencyMonotonicInTransferSize)
{
    const LatencyCase &c = GetParam();
    double previous = 0;
    for (unsigned n = 2; n <= 8; ++n) {
        double cycles =
            c.scheme == Scheme::Csb
                ? core::measureCsbSequence(mux(c.ratio), n)
                : core::measureLockedSequence(mux(c.ratio), c.scheme, n,
                                              c.lockMiss);
        EXPECT_GE(cycles, previous) << n << " dwords";
        previous = cycles;
    }
}

TEST_P(Fig5Property, CsbAlwaysCheapest)
{
    const LatencyCase &c = GetParam();
    if (c.scheme == Scheme::Csb)
        GTEST_SKIP() << "comparison baseline";
    for (unsigned n : {2u, 5u, 8u}) {
        double locked = core::measureLockedSequence(mux(c.ratio),
                                                    c.scheme, n,
                                                    c.lockMiss);
        double via_csb = core::measureCsbSequence(mux(c.ratio), n);
        EXPECT_LT(via_csb, locked)
            << core::schemeName(c.scheme) << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Fig5Property,
    ::testing::Values(LatencyCase{Scheme::NoCombine, 6, false},
                      LatencyCase{Scheme::NoCombine, 6, true},
                      LatencyCase{Scheme::Combine32, 6, false},
                      LatencyCase{Scheme::Combine64, 6, true},
                      LatencyCase{Scheme::NoCombine, 2, false},
                      LatencyCase{Scheme::NoCombine, 10, false},
                      LatencyCase{Scheme::Csb, 6, false},
                      LatencyCase{Scheme::Csb, 2, false}),
    [](const ::testing::TestParamInfo<LatencyCase> &info) {
        std::string name = core::schemeName(info.param.scheme) + "_r" +
                           std::to_string(info.param.ratio) +
                           (info.param.lockMiss ? "_miss" : "_hit");
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(Fig5Laws, LockMissNeverAffectsCsb)
{
    // The CSB sequence takes no lock; evicting the (unused) lock line
    // cannot change its latency.
    for (unsigned n : {2u, 8u}) {
        double cycles = core::measureCsbSequence(mux(6), n);
        EXPECT_EQ(cycles, core::measureCsbSequence(mux(6), n))
            << "deterministic";
        (void)cycles;
    }
    // Lock schemes shift by roughly the miss latency; the shift must
    // be size-independent (the miss happens once, at acquire).
    double shift2 =
        core::measureLockedSequence(mux(6), Scheme::NoCombine, 2, true) -
        core::measureLockedSequence(mux(6), Scheme::NoCombine, 2, false);
    double shift8 =
        core::measureLockedSequence(mux(6), Scheme::NoCombine, 8, true) -
        core::measureLockedSequence(mux(6), Scheme::NoCombine, 8, false);
    EXPECT_EQ(shift2, shift8);
    EXPECT_GT(shift2, 50.0);
}

TEST(Fig5Laws, SevenToEightDwordStep)
{
    // "The bus alignment restrictions lead to better bus utilization
    // when going from 7 to 8 transactions" -- with full-line
    // combining, 8 dwords are ONE transaction while 7 need three, so
    // the latency step from 7 to 8 dwords must not grow.
    double c7 =
        core::measureLockedSequence(mux(6), Scheme::Combine64, 7, false);
    double c8 =
        core::measureLockedSequence(mux(6), Scheme::Combine64, 8, false);
    double c6 =
        core::measureLockedSequence(mux(6), Scheme::Combine64, 6, false);
    EXPECT_LE(c8 - c7, c7 - c6)
        << "the full-line burst must not cost more than the partial";
}

TEST(Fig5Laws, WiderBusShrinksPerDwordCost)
{
    // "Wider and faster buses lead to a smaller per-doubleword
    // increase in latency" (figure 5 discussion).
    BandwidthSetup wide;
    wide.bus.kind = bus::BusKind::Split;
    wide.bus.widthBytes = 16;
    wide.bus.ratio = 6;
    wide.lineBytes = 64;
    double narrow_slope =
        (core::measureLockedSequence(mux(6), Scheme::NoCombine, 8,
                                     false) -
         core::measureLockedSequence(mux(6), Scheme::NoCombine, 2,
                                     false)) /
        6.0;
    double wide_slope =
        (core::measureLockedSequence(wide, Scheme::NoCombine, 8, false) -
         core::measureLockedSequence(wide, Scheme::NoCombine, 2, false)) /
        6.0;
    EXPECT_LT(wide_slope, narrow_slope);
}

} // namespace
