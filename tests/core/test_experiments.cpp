/**
 * @file
 * Tests of the experiment-runner layer itself: scheme helpers, sweep
 * structure, table formatting, config printing, and the message-
 * latency harness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/config_printer.hh"
#include "core/experiments.hh"

namespace {

using namespace csb;
using core::BandwidthSetup;
using core::Scheme;

TEST(Experiments, SchemeHelpers)
{
    EXPECT_EQ(core::schemeName(Scheme::NoCombine), "no-comb");
    EXPECT_EQ(core::schemeName(Scheme::Csb), "CSB");
    EXPECT_EQ(core::schemeCombineBytes(Scheme::NoCombine), 0u);
    EXPECT_EQ(core::schemeCombineBytes(Scheme::Combine32), 32u);
    EXPECT_EQ(core::schemeCombineBytes(Scheme::Csb), 0u);
}

TEST(Experiments, SchemesForLineScaleWithLine)
{
    auto s32 = core::schemesForLine(32);
    ASSERT_EQ(s32.size(), 4u);
    EXPECT_EQ(s32.front(), Scheme::NoCombine);
    EXPECT_EQ(s32.back(), Scheme::Csb);
    auto s128 = core::schemesForLine(128);
    EXPECT_EQ(s128.size(), 6u);
}

TEST(Experiments, DefaultTransferSizesMatchPaperAxis)
{
    auto sizes = core::defaultTransferSizes();
    EXPECT_EQ(sizes.front(), 16u);
    EXPECT_EQ(sizes.back(), 1024u);
    for (std::size_t i = 1; i < sizes.size(); ++i)
        EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
}

TEST(Experiments, SweepHasFullMatrix)
{
    BandwidthSetup setup;
    setup.bus.ratio = 6;
    setup.lineBytes = 64;
    std::vector<unsigned> sizes = {16, 64};
    std::vector<Scheme> schemes = {Scheme::NoCombine, Scheme::Csb};
    core::BandwidthSweep sweep =
        core::runBandwidthSweep("test", setup, schemes, sizes);
    ASSERT_EQ(sweep.bandwidth.size(), 2u);
    ASSERT_EQ(sweep.bandwidth[0].size(), 2u);
    for (const auto &row : sweep.bandwidth) {
        for (double bw : row)
            EXPECT_GT(bw, 0.0);
    }
}

TEST(Experiments, PrintSweepIsATable)
{
    BandwidthSetup setup;
    core::BandwidthSweep sweep = core::runBandwidthSweep(
        "unit-test panel", setup, {Scheme::NoCombine}, {16, 32});
    std::ostringstream os;
    core::printSweep(sweep, os);
    std::string text = os.str();
    EXPECT_NE(text.find("unit-test panel"), std::string::npos);
    EXPECT_NE(text.find("no-comb"), std::string::npos);
    EXPECT_NE(text.find("16"), std::string::npos);
    EXPECT_NE(text.find("bytes per bus cycle"), std::string::npos);
}

TEST(Experiments, LatencySweepShapes)
{
    BandwidthSetup setup;
    core::LatencySweep sweep =
        core::runLatencySweep("fig5 unit", setup, /*lock_miss=*/false);
    ASSERT_EQ(sweep.dwords.size(), 7u);
    ASSERT_EQ(sweep.cycles.size(), sweep.schemes.size());
    // Last scheme is the CSB and must be cheapest everywhere.
    const auto &csb_row = sweep.cycles.back();
    for (std::size_t i = 0; i + 1 < sweep.schemes.size(); ++i) {
        for (std::size_t j = 0; j < sweep.dwords.size(); ++j)
            EXPECT_LT(csb_row[j], sweep.cycles[i][j]);
    }
    std::ostringstream os;
    core::printLatencySweep(sweep, os);
    EXPECT_NE(os.str().find("lock+no-comb"), std::string::npos);
}

TEST(Experiments, MessageLatencyOrdering)
{
    BandwidthSetup setup;
    core::MessageLatency small = core::measureMessageLatency(setup, 32);
    EXPECT_LT(small.pioLockedCycles, small.dmaCycles)
        << "PIO beats DMA for short messages";
    core::MessageLatency large =
        core::measureMessageLatency(setup, 2048);
    EXPECT_LT(large.dmaCycles, large.pioLockedCycles)
        << "DMA beats conventional PIO for large messages";
    EXPECT_LT(large.pioCsbCycles, large.dmaCycles)
        << "the CSB keeps PIO ahead of DMA (section 5)";
}

TEST(Experiments, ConfigPrinterMentionsEverything)
{
    core::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.enableNi = true;
    cfg.csb.numLineBuffers = 2;
    cfg.normalize();
    std::ostringstream os;
    core::printConfig(cfg, os);
    std::string text = os.str();
    EXPECT_NE(text.find("cores                : 2"), std::string::npos);
    EXPECT_NE(text.find("multiplexed"), std::string::npos);
    EXPECT_NE(text.find("2 line buffer"), std::string::npos);
    EXPECT_NE(text.find("network interface"), std::string::npos);
    EXPECT_NE(text.find("TLB"), std::string::npos);
}

TEST(Experiments, ConfigPrinterDisabledCsb)
{
    core::SystemConfig cfg;
    cfg.enableCsb = false;
    cfg.normalize();
    std::ostringstream os;
    core::printConfig(cfg, os);
    EXPECT_NE(os.str().find("conditional store buf: disabled"),
              std::string::npos);
}

} // namespace
