/**
 * @file
 * System-level plumbing tests: address map, run semantics, stats
 * dumping, configuration validation, and system reuse.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/kernels.hh"
#include "core/system.hh"
#include "sim/logging.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using isa::ir;

TEST(SystemMisc, AddressMapAttributes)
{
    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    auto &pt = system.pageTable();
    EXPECT_EQ(pt.attrOf(System::ramBase + 0x1234), mem::PageAttr::Cached);
    EXPECT_EQ(pt.attrOf(System::ioUncachedBase),
              mem::PageAttr::Uncached);
    EXPECT_EQ(pt.attrOf(System::ioAccelBase),
              mem::PageAttr::UncachedAccelerated);
    EXPECT_EQ(pt.attrOf(System::ioCsbBase),
              mem::PageAttr::UncachedCombining);
}

TEST(SystemMisc, CsbDisabledDowngradesCombiningSpace)
{
    SystemConfig cfg;
    cfg.enableCsb = false;
    cfg.normalize();
    System system(cfg);
    EXPECT_EQ(system.pageTable().attrOf(System::ioCsbBase),
              mem::PageAttr::UncachedAccelerated);
    EXPECT_EQ(system.csb(), nullptr);
}

TEST(SystemMisc, RunTimesOutOnNonHaltingProgram)
{
    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    isa::Program p;
    isa::Label forever = p.newLabel();
    p.bind(forever);
    p.jmp(forever);
    p.halt();
    p.finalize();
    EXPECT_THROW(system.run(p, 1, /*max_ticks=*/2000), FatalError);
}

TEST(SystemMisc, SystemIsReusableAcrossRuns)
{
    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    isa::Program p = core::makeStoreKernel(System::ioUncachedBase, 64);
    system.run(p);
    std::size_t first = system.device().writeLog().size();
    system.core().clearMarks();
    system.run(p);
    EXPECT_EQ(system.device().writeLog().size(), 2 * first)
        << "a second run adds the same traffic again";
}

TEST(SystemMisc, StatsDumpCoversComponents)
{
    SystemConfig cfg;
    cfg.enableNi = true;
    cfg.normalize();
    System system(cfg);
    isa::Program p = core::makeCsbStoreKernel(System::ioCsbBase, 64, 64);
    system.run(p);
    std::ostringstream os;
    system.dumpStats(os);
    std::string text = os.str();
    for (const char *needle :
         {"system.cpu.instsRetired", "system.bus.numWrites",
          "system.csb.flushesSucceeded", "system.ubuf.storesPushed",
          "system.tlb.hits", "system.caches.l1.hits",
          "system.dev.bytesReceived", "system.ni.pioMessages"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(SystemMisc, InvalidConfigsAreFatal)
{
    {
        SystemConfig cfg;
        cfg.numCores = 0;
        EXPECT_THROW(cfg.normalize(), FatalError);
    }
    {
        SystemConfig cfg;
        cfg.bus.widthBytes = 12; // not a power of two
        EXPECT_THROW(cfg.normalize(), FatalError);
    }
    {
        SystemConfig cfg;
        cfg.lineBytes = 32;
        cfg.ubuf.combineBytes = 64; // combine block > line
        EXPECT_THROW(cfg.normalize(), FatalError);
    }
    {
        SystemConfig cfg;
        cfg.csb.numLineBuffers = 9;
        EXPECT_THROW(cfg.normalize(), FatalError);
    }
}

TEST(SystemMisc, MissesRoutedOverBusShareIt)
{
    // With routeMissesOverBus, a cache miss creates visible read
    // traffic on the system bus.
    SystemConfig cfg;
    cfg.routeMissesOverBus = true;
    cfg.normalize();
    System system(cfg);
    isa::Program p;
    p.li(ir(1), 0x8000);
    p.ldd(ir(2), ir(1), 0);
    p.halt();
    p.finalize();
    system.run(p);
    EXPECT_GE(system.bus().numReads.value(), 1.0);
    std::size_t line_reads = system.bus().monitor().count(
        [](const bus::TxnRecord &rec) {
            return rec.kind == bus::TxnKind::ReadReq && rec.size == 64;
        });
    EXPECT_GE(line_reads, 1u);
}

TEST(SystemMisc, MarkTimesAreMonotonic)
{
    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    isa::Program p;
    for (int i = 0; i < 5; ++i) {
        p.mark(i);
        p.li(ir(1), i);
    }
    p.halt();
    p.finalize();
    system.run(p);
    Tick previous = 0;
    for (int i = 0; i < 5; ++i) {
        Tick t = system.core().markTime(i);
        ASSERT_NE(t, maxTick);
        EXPECT_GE(t, previous);
        previous = t;
    }
    EXPECT_EQ(system.core().markTime(99), maxTick);
}

} // namespace
