/**
 * @file
 * Structural tests of the microbenchmark kernel generators: the code
 * they emit must match the paper's described sequences.
 */

#include <gtest/gtest.h>

#include "core/kernels.hh"
#include "isa/instruction.hh"

namespace {

using namespace csb;
using isa::InstClass;
using isa::Opcode;

unsigned
countClass(const isa::Program &p, InstClass cls)
{
    unsigned n = 0;
    for (const auto &inst : p.code()) {
        if (inst.instClass() == cls)
            ++n;
    }
    return n;
}

unsigned
countOp(const isa::Program &p, Opcode op)
{
    unsigned n = 0;
    for (const auto &inst : p.code()) {
        if (inst.op == op)
            ++n;
    }
    return n;
}

TEST(Kernels, StoreKernelShape)
{
    isa::Program p = core::makeStoreKernel(0x1000, 256);
    EXPECT_EQ(countClass(p, InstClass::Store), 32u) << "256B = 32 dwords";
    EXPECT_EQ(countOp(p, Opcode::Membar), 1u);
    EXPECT_EQ(countClass(p, InstClass::Mark), 2u);
    EXPECT_EQ(p.code().back().op, Opcode::Halt);
}

TEST(Kernels, CsbKernelOneFlushPerLine)
{
    isa::Program p = core::makeCsbStoreKernel(0x1000, 256, 64);
    EXPECT_EQ(countClass(p, InstClass::Swap), 4u) << "one flush per line";
    EXPECT_EQ(countClass(p, InstClass::Store), 32u);
    EXPECT_EQ(countClass(p, InstClass::Branch), 4u) << "one retry check";
}

TEST(Kernels, CsbKernelPartialLastGroup)
{
    // 80 bytes at 64B lines: one full line + a 2-dword group.
    isa::Program p = core::makeCsbStoreKernel(0x1000, 80, 64);
    EXPECT_EQ(countClass(p, InstClass::Swap), 2u);
    EXPECT_EQ(countClass(p, InstClass::Store), 10u);
}

TEST(Kernels, LockedKernelHasAcquireStoresDrainRelease)
{
    isa::Program p = core::makeLockedStoreKernel(0x4000, 0x1000, 4);
    EXPECT_EQ(countClass(p, InstClass::Swap), 1u) << "the lock acquire";
    // 4 payload stores + 1 release store.
    EXPECT_EQ(countClass(p, InstClass::Store), 5u);
    EXPECT_EQ(countOp(p, Opcode::Membar), 2u)
        << "separating lock/stores and stores/release (paper 4.2)";
}

TEST(Kernels, ShuffledKernelSameStoresDifferentOrder)
{
    isa::Program seq = core::makeStoreKernel(0x1000, 128);
    isa::Program shuf = core::makeShuffledStoreKernel(0x1000, 128, 64, 7);
    // Same multiset of store offsets...
    std::vector<std::int64_t> a;
    std::vector<std::int64_t> b;
    std::vector<std::int64_t> b_order;
    for (const auto &inst : seq.code()) {
        if (inst.instClass() == InstClass::Store)
            a.push_back(inst.imm);
    }
    for (const auto &inst : shuf.code()) {
        if (inst.instClass() == InstClass::Store) {
            b.push_back(inst.imm);
            b_order.push_back(inst.imm);
        }
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    // ...but not in ascending order.
    EXPECT_FALSE(std::is_sorted(b_order.begin(), b_order.end()));
}

TEST(Kernels, ShuffleIsDeterministicPerSeed)
{
    isa::Program a = core::makeShuffledStoreKernel(0x1000, 128, 64, 9);
    isa::Program b = core::makeShuffledStoreKernel(0x1000, 128, 64, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).op, b.at(i).op);
        EXPECT_EQ(a.at(i).imm, b.at(i).imm);
    }
}

TEST(Kernels, BackoffKernelContainsDelayLoop)
{
    isa::Program p =
        core::makeCsbStoreKernelWithBackoff(0x1000, 64, 64, 32);
    EXPECT_GE(countClass(p, InstClass::Branch), 3u)
        << "retry check, delay loop, cap check";
    EXPECT_EQ(countOp(p, Opcode::Slli), 1u) << "the backoff doubling";
}

TEST(Kernels, FallbackKernelHasLockPath)
{
    isa::Program p = core::makeCsbStoreKernelWithFallback(
        0x1000, 0x2000, 0x4000, 64, 64, 3);
    EXPECT_EQ(countClass(p, InstClass::Swap), 2u)
        << "conditional flush plus lock acquire";
    EXPECT_EQ(countOp(p, Opcode::Membar), 2u);
    // 8 CSB stores + 8 fallback stores + release.
    EXPECT_EQ(countClass(p, InstClass::Store), 17u);
}

TEST(Kernels, RejectsDegenerateShapes)
{
    EXPECT_DEATH(core::makeStoreKernel(0x1000, 0), "dword multiple");
    EXPECT_DEATH(core::makeStoreKernel(0x1000, 12), "dword multiple");
    EXPECT_DEATH(core::makeCsbSequenceKernel(0x1000, 0), "at least one");
}

} // namespace
