/**
 * @file
 * Tests for the application-traffic workload module.
 */

#include <gtest/gtest.h>

#include "core/workloads.hh"

namespace {

using namespace csb;
using core::MessageSizeDistribution;

TEST(Workloads, FixedDistribution)
{
    auto sizes =
        core::drawSizes(MessageSizeDistribution::fixed(96), 10);
    ASSERT_EQ(sizes.size(), 10u);
    for (unsigned size : sizes)
        EXPECT_EQ(size, 96u);
}

TEST(Workloads, ScientificStaysInCitedRange)
{
    auto sizes =
        core::drawSizes(MessageSizeDistribution::scientific(7), 500);
    for (unsigned size : sizes) {
        EXPECT_GE(size, 19u);
        EXPECT_LE(size, 230u);
    }
    // The spread should cover most of the range.
    unsigned lo = *std::min_element(sizes.begin(), sizes.end());
    unsigned hi = *std::max_element(sizes.begin(), sizes.end());
    EXPECT_LT(lo, 40u);
    EXPECT_GT(hi, 200u);
}

TEST(Workloads, BimodalMixesBothModes)
{
    auto sizes = core::drawSizes(
        MessageSizeDistribution::bimodal(32, 512, 0.8, 9), 500);
    unsigned small = 0;
    unsigned large = 0;
    for (unsigned size : sizes) {
        if (size == 32)
            ++small;
        else if (size == 512)
            ++large;
        else
            FAIL() << "unexpected size " << size;
    }
    EXPECT_GT(small, 300u);
    EXPECT_GT(large, 50u);
}

TEST(Workloads, SamplingIsDeterministic)
{
    auto a = core::drawSizes(MessageSizeDistribution::scientific(5), 64);
    auto b = core::drawSizes(MessageSizeDistribution::scientific(5), 64);
    EXPECT_EQ(a, b);
}

TEST(Workloads, MessageWorkloadDeliversEverything)
{
    core::BandwidthSetup setup;
    std::vector<unsigned> sizes = {19, 64, 128, 230, 40};
    for (bool use_csb : {false, true}) {
        core::AppTrafficResult result =
            core::runMessageWorkload(setup, use_csb, sizes);
        EXPECT_EQ(result.messages, 5u);
        EXPECT_EQ(result.delivered, 5u) << "use_csb=" << use_csb;
        EXPECT_EQ(result.payloadBytes, 19u + 64 + 128 + 230 + 40);
        EXPECT_GT(result.cyclesPerMessage, 0.0);
    }
}

TEST(Workloads, CsbBeatsLockedPioOnApplicationTraffic)
{
    core::BandwidthSetup setup;
    auto sizes =
        core::drawSizes(MessageSizeDistribution::scientific(11), 16);
    core::AppTrafficResult locked =
        core::runMessageWorkload(setup, false, sizes);
    core::AppTrafficResult via_csb =
        core::runMessageWorkload(setup, true, sizes);
    EXPECT_LT(via_csb.cyclesPerMessage, locked.cyclesPerMessage);
}

} // namespace
