/**
 * @file
 * Property tests for the partial-flush relaxation and NI byte
 * conservation under random message mixes.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/kernels.hh"
#include "core/system.hh"
#include "core/workloads.hh"
#include "io/network_interface.hh"
#include "sim/random.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;

// --- Partial flush: every issued transaction is legal and exactly
// --- the valid bytes cross the bus, for every dword count.

class PartialFlush : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PartialFlush, IssuesExactlyTheValidBytes)
{
    unsigned dwords = GetParam();
    SystemConfig cfg;
    cfg.csb.partialFlush = true;
    cfg.normalize();
    System system(cfg);
    isa::Program p =
        core::makeCsbSequenceKernel(System::ioCsbBase, dwords);
    system.run(p);

    std::uint64_t bytes = 0;
    for (const auto &rec : system.bus().monitor().records()) {
        if (rec.kind != bus::TxnKind::Write)
            continue;
        EXPECT_TRUE(isPowerOf2(rec.size));
        EXPECT_EQ(rec.addr % rec.size, 0u);
        bytes += rec.size;
    }
    EXPECT_EQ(bytes, dwords * 8ull)
        << "partial flush must move exactly the stored bytes";
    EXPECT_EQ(system.csb()->flushesSucceeded.value(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Dwords, PartialFlush,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

// --- Partial flush data integrity: the device reassembles the same
// --- dwords a full-line flush would deliver.

TEST(PartialFlushData, MatchesFullLineContent)
{
    auto committed_dwords = [](bool partial) {
        SystemConfig cfg;
        cfg.csb.partialFlush = partial;
        cfg.normalize();
        System system(cfg);
        isa::Program p =
            core::makeCsbSequenceKernel(System::ioCsbBase, 5);
        system.run(p);
        std::vector<std::uint64_t> dwords(8, 0);
        for (const auto &write : system.device().writeLog()) {
            for (unsigned i = 0; i < write.data.size(); i += 8) {
                std::uint64_t value = 0;
                std::memcpy(&value, write.data.data() + i, 8);
                dwords[(write.addr + i - System::ioCsbBase) / 8] = value;
            }
        }
        return dwords;
    };
    EXPECT_EQ(committed_dwords(true), committed_dwords(false));
}

// --- NI byte conservation under random message mixes. --------------

TEST(NiConservation, RandomMessageMixDeliversExactPayloads)
{
    sim::Random rng(314159);
    for (int round = 0; round < 3; ++round) {
        std::vector<unsigned> sizes;
        unsigned count = 4 + static_cast<unsigned>(rng.uniform(0, 4));
        for (unsigned i = 0; i < count; ++i)
            sizes.push_back(
                static_cast<unsigned>(rng.uniform(9, 400)));

        for (bool use_csb : {false, true}) {
            core::BandwidthSetup setup;
            core::AppTrafficResult result =
                core::runMessageWorkload(setup, use_csb, sizes);
            EXPECT_EQ(result.delivered, sizes.size());
            std::uint64_t expected = 0;
            for (unsigned s : sizes)
                expected += s;
            EXPECT_EQ(result.payloadBytes, expected);
        }
    }
}

TEST(NiConservation, DeliveredPayloadSizesMatchInOrder)
{
    // Two CSB PIO messages of different, non-line-multiple sizes: the
    // delivered payloads must carry exactly those sizes, in order,
    // with the line padding stripped by the doorbell length.
    using isa::ir;
    SystemConfig cfg;
    cfg.enableNi = true;
    cfg.normalize();
    System system(cfg);

    Addr pio = System::niBase + io::NiMap::pioBase;
    Addr bell = System::niBase + io::NiMap::doorbell;
    const unsigned sizes[] = {24, 136};

    isa::Program p;
    for (int r = 2; r <= 8; ++r)
        p.li(ir(r), 0x6b6b6b6b6b6b6b6bULL);
    p.li(ir(1), static_cast<std::int64_t>(pio));
    p.li(ir(14), static_cast<std::int64_t>(bell));
    for (unsigned bytes : sizes) {
        unsigned dwords = divCeil(bytes, 8);
        for (unsigned group = 0; group * 8 < dwords; ++group) {
            unsigned first = group * 8;
            unsigned count = std::min(8u, dwords - first);
            isa::Label retry = p.newLabel();
            p.bind(retry);
            p.li(ir(9), static_cast<std::int64_t>(count));
            for (unsigned i = 0; i < count; ++i)
                p.std_(ir(2 + (first + i) % 7), ir(1), (first + i) * 8);
            p.swap(ir(9), ir(1), first * 8);
            p.li(ir(12), static_cast<std::int64_t>(count));
            p.bne(ir(9), ir(12), retry);
        }
        p.membar();
        p.li(ir(13), static_cast<std::int64_t>(bytes));
        p.std_(ir(13), ir(14), 0);
        p.membar();
    }
    p.halt();
    p.finalize();
    system.run(p);

    ASSERT_EQ(system.ni()->delivered().size(), 2u);
    EXPECT_EQ(system.ni()->delivered()[0].payload.size(), 24u);
    EXPECT_EQ(system.ni()->delivered()[1].payload.size(), 136u);
    for (std::uint8_t byte : system.ni()->delivered()[0].payload)
        EXPECT_EQ(byte, 0x6b);
}

} // namespace
