/**
 * @file
 * Checkpoint/restore with fault injection ENABLED: the injector's
 * per-site RNG streams, one-shot flags, and the recovery machinery's
 * state (CSB degraded mode, NI sequence numbers) must round-trip so
 * a resumed faulty run is tick-identical to the uninterrupted one
 * (docs/CHECKPOINT.md, docs/FAULTS.md).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/kernels.hh"
#include "core/system.hh"
#include "sim/checkpoint.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace {

using csb::FatalError;
using csb::Tick;
namespace core = csb::core;
namespace sim = csb::sim;

core::SystemConfig
faultyConfig(const std::string &schedule)
{
    core::SystemConfig cfg;
    cfg.faults.seed = 42;
    cfg.faults.busWriteNackRate = 0.1;
    cfg.faults.schedule = sim::parseFaultSchedule(schedule);
    cfg.bus.errorResponses = true;
    cfg.ubuf.retry.maxAttempts = 32;
    cfg.normalize();
    return cfg;
}

std::string
statsJson(core::System &system)
{
    std::ostringstream os;
    system.dumpStatsJson(os);
    return os.str();
}

csb::isa::Program
firstProgram()
{
    return core::makeStoreKernel(core::System::ioUncachedBase, 512);
}

csb::isa::Program
secondProgram()
{
    return core::makeCsbStoreKernel(core::System::ioCsbBase, 512, 64);
}

/** In-memory save/restore into a fresh system built from @p cfg. */
std::unique_ptr<core::System>
roundTrip(core::System &before, const core::SystemConfig &cfg)
{
    sim::CheckpointWriter cw;
    before.saveCheckpoint(cw);
    std::ostringstream os;
    cw.writeTo(os);
    std::istringstream is(os.str());
    sim::CheckpointReader cr = sim::CheckpointReader::readFrom(is);
    auto after = std::make_unique<core::System>(cfg);
    after->restoreCheckpoint(cr);
    return after;
}

TEST(CheckpointFaults, ResumedFaultyRunIsTickIdentical)
{
    // The schedule straddles the checkpoint boundary: a burst active
    // on both sides plus a one-shot consumed before the save.
    const std::string schedule =
        "burst:bus-write-nack:0..1000000:0.1;oneshot:bus-read-nack:50";
    core::SystemConfig cfg = faultyConfig(schedule);

    core::System reference(cfg);
    reference.run(firstProgram());
    Tick ref_end = reference.run(secondProgram());

    core::System before(cfg);
    before.run(firstProgram());
    auto after = roundTrip(before, cfg);
    Tick after_end = after->run(secondProgram());

    EXPECT_EQ(after_end, ref_end);
    EXPECT_EQ(statsJson(*after), statsJson(reference));
}

TEST(CheckpointFaults, ScheduleFingerprintGuardsRestore)
{
    core::SystemConfig cfg =
        faultyConfig("burst:bus-write-nack:0..100000:0.1");
    core::System before(cfg);
    before.run(firstProgram());

    sim::CheckpointWriter cw;
    before.saveCheckpoint(cw);
    std::ostringstream os;
    cw.writeTo(os);

    // Same rates, different schedule -> fingerprint mismatch.
    core::SystemConfig other =
        faultyConfig("burst:bus-write-nack:0..100001:0.1");
    core::System after(other);
    std::istringstream is(os.str());
    sim::CheckpointReader cr = sim::CheckpointReader::readFrom(is);
    EXPECT_THROW(after.restoreCheckpoint(cr), FatalError);
}

TEST(CheckpointFaults, DegradedModeStateSurvivesRestore)
{
    // Drive the CSB into degraded mode with a device hang, checkpoint
    // WHILE degraded (quiescent between programs), and prove the
    // resumed run matches the uninterrupted one -- including the
    // re-promotion that happens in the second program.
    core::SystemConfig cfg;
    cfg.faults.seed = 9;
    // Hang window covers the first program's device writes; the CSB
    // budget is small so it escalates, and the window ends before the
    // second program so the resumed run re-promotes.
    cfg.faults.schedule = sim::parseFaultSchedule("hang:200..2600");
    cfg.bus.errorResponses = true;
    cfg.csb.degradedFallback = true;
    cfg.csb.retry.maxAttempts = 3;
    // Larger than the clean completions the first program can manage
    // after the hang lifts, so the checkpoint happens IN degraded
    // mode; the longer second program then re-promotes.
    cfg.csb.repromoteAfter = 100;
    cfg.normalize();

    auto program = [](unsigned bytes) {
        return core::makeCsbStoreKernel(core::System::ioCsbBase, bytes,
                                        64);
    };

    core::System reference(cfg);
    reference.run(program(512));
    ASSERT_TRUE(reference.csb()->degraded());
    Tick ref_end = reference.run(program(1024));
    EXPECT_FALSE(reference.csb()->degraded());
    EXPECT_GE(reference.csb()->repromotions.value(), 1.0);

    core::System before(cfg);
    before.run(program(512));
    ASSERT_TRUE(before.csb()->degraded());
    auto after = roundTrip(before, cfg);
    EXPECT_TRUE(after->csb()->degraded());
    Tick after_end = after->run(program(1024));

    EXPECT_EQ(after_end, ref_end);
    EXPECT_EQ(statsJson(*after), statsJson(reference));
}

} // namespace
