/**
 * @file
 * Golden-value regression tests: the exact bandwidth/latency numbers
 * the deterministic simulator currently produces for key points of
 * every figure.  A change to any timing-relevant component that moves
 * these numbers is caught here; update the constants deliberately
 * (and re-derive EXPERIMENTS.md) when the model is intentionally
 * changed.
 */

#include <gtest/gtest.h>

#include "core/experiments.hh"

namespace {

using namespace csb;
using core::BandwidthSetup;
using core::Scheme;

BandwidthSetup
mux(unsigned ratio, unsigned line, unsigned turnaround = 0,
    unsigned ack = 0)
{
    BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = ratio;
    setup.bus.turnaround = turnaround;
    setup.bus.ackDelay = ack;
    setup.lineBytes = line;
    return setup;
}

BandwidthSetup
split(unsigned width, unsigned turnaround = 0, unsigned ack = 0)
{
    BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Split;
    setup.bus.widthBytes = width;
    setup.bus.ratio = 6;
    setup.bus.turnaround = turnaround;
    setup.bus.ackDelay = ack;
    setup.lineBytes = 64;
    return setup;
}

double
bw(const BandwidthSetup &setup, Scheme scheme, unsigned bytes)
{
    return core::measureStoreBandwidth(setup, scheme, bytes);
}

TEST(Golden, Figure3Panels)
{
    // Fig 3(b): ratio 6, 32B line.
    EXPECT_NEAR(bw(mux(6, 32), Scheme::NoCombine, 1024), 4.00, 0.005);
    EXPECT_NEAR(bw(mux(6, 32), Scheme::Combine16, 1024), 5.31, 0.005);
    EXPECT_NEAR(bw(mux(6, 32), Scheme::Combine32, 1024), 6.32, 0.005);
    EXPECT_NEAR(bw(mux(6, 32), Scheme::Csb, 1024), 6.40, 0.005);
    EXPECT_NEAR(bw(mux(6, 32), Scheme::Csb, 16), 3.20, 0.005);

    // Fig 3(e): 64B line.
    EXPECT_NEAR(bw(mux(6, 64), Scheme::Csb, 64), 7.11, 0.005);
    EXPECT_NEAR(bw(mux(6, 64), Scheme::Csb, 16), 1.78, 0.005);
    EXPECT_NEAR(bw(mux(6, 64), Scheme::Combine64, 1024), 6.97, 0.005);

    // Fig 3(f): 128B line.
    EXPECT_NEAR(bw(mux(6, 128), Scheme::Csb, 1024), 7.53, 0.005);
    EXPECT_NEAR(bw(mux(6, 128), Scheme::Combine128, 1024), 7.21, 0.01);

    // Fig 3(g): turnaround.
    EXPECT_NEAR(bw(mux(6, 64, 1), Scheme::NoCombine, 1024), 2.67, 0.005);
    EXPECT_NEAR(bw(mux(6, 64, 1), Scheme::Csb, 1024), 6.44, 0.005);

    // Fig 3(h)/(i): fixed-delay acknowledgments.
    EXPECT_NEAR(bw(mux(6, 64, 0, 4), Scheme::NoCombine, 1024), 2.01,
                0.005);
    EXPECT_NEAR(bw(mux(6, 64, 0, 4), Scheme::Csb, 1024), 7.11, 0.005);
    EXPECT_NEAR(bw(mux(6, 64, 0, 8), Scheme::NoCombine, 1024), 1.01,
                0.005);
    EXPECT_NEAR(bw(mux(6, 64, 0, 8), Scheme::Csb, 1024), 7.11, 0.005);
}

TEST(Golden, Figure4Panels)
{
    // Fig 4(a): 128-bit split bus.
    EXPECT_NEAR(bw(split(16), Scheme::NoCombine, 1024), 8.00, 0.005);
    EXPECT_NEAR(bw(split(16), Scheme::Csb, 1024), 16.00, 0.005);
    // Fig 4(b): 256-bit split bus.
    EXPECT_NEAR(bw(split(32), Scheme::NoCombine, 1024), 8.00, 0.005);
    EXPECT_NEAR(bw(split(32), Scheme::Csb, 1024), 32.00, 0.005);
    // Fig 4(d): ack 4 -- only the CSB hides the acknowledgment.
    EXPECT_NEAR(bw(split(16, 0, 4), Scheme::Csb, 1024), 16.00, 0.005);
    EXPECT_NEAR(bw(split(16, 0, 4), Scheme::NoCombine, 1024), 2.01,
                0.005);
    // Fig 4(e): ack 8 affects everyone.
    EXPECT_NEAR(bw(split(16, 0, 8), Scheme::Csb, 1024), 8.26, 0.005);
}

TEST(Golden, Figure5Latencies)
{
    BandwidthSetup setup = mux(6, 64);
    // Lock hit, no combining: 55 + 12 per extra dword.
    EXPECT_EQ(core::measureLockedSequence(setup, Scheme::NoCombine, 2,
                                          false), 55.0);
    EXPECT_EQ(core::measureLockedSequence(setup, Scheme::NoCombine, 8,
                                          false), 127.0);
    // Lock miss shifts the curve up by ~96 cycles.
    EXPECT_EQ(core::measureLockedSequence(setup, Scheme::NoCombine, 2,
                                          true), 151.0);
    // CSB: 26 + 1 per extra dword, hit or miss alike.
    EXPECT_EQ(core::measureCsbSequence(setup, 2), 26.0);
    EXPECT_EQ(core::measureCsbSequence(setup, 8), 32.0);
}

} // namespace
