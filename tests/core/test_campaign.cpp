/**
 * @file
 * Fault campaigns and the recovery subsystem (docs/FAULTS.md): the
 * CSB's degraded-mode escalation and re-promotion, the NI link reset,
 * crash-restart exactly-once delivery, the health monitor, and the
 * determinism of the whole scorecard.
 */

#include <gtest/gtest.h>

#include "core/campaign.hh"
#include "core/health.hh"
#include "core/system.hh"
#include "core/workloads.hh"
#include "sim/logging.hh"

namespace {

using csb::FatalError;
namespace core = csb::core;
namespace sim = csb::sim;

core::CampaignScenario
cleanScenario()
{
    core::CampaignScenario sc;
    sc.name = "clean";
    sc.legs = 2;
    sc.messagesPerLeg = 6;
    sc.deviceLines = 2;
    return sc;
}

TEST(Campaign, CleanRunRecoversTrivially)
{
    core::CampaignResult r = core::runCampaign(cleanScenario(), 1);
    EXPECT_TRUE(r.recovered);
    EXPECT_EQ(r.legsCompleted, 2u);
    EXPECT_FALSE(r.crashed);
    EXPECT_EQ(r.messagesSent, 12u);
    EXPECT_EQ(r.delivered, 12u);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.duplicated, 0u);
    EXPECT_EQ(r.faultsInjected, 0u);
    EXPECT_GT(r.healthChecks, 0u);
    EXPECT_EQ(r.healthViolations, 0u);
}

TEST(Campaign, ScorecardIsDeterministic)
{
    core::CampaignScenario sc = cleanScenario();
    sc.schedule = "burst:bus-write-nack:500..4000:0.3";
    core::CampaignResult a = core::runCampaign(sc, 3);
    core::CampaignResult b = core::runCampaign(sc, 3);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.busNacks, b.busNacks);
    EXPECT_EQ(a.busRetries, b.busRetries);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.healthChecks, b.healthChecks);
}

TEST(Campaign, DeviceHangEntersDegradedModeAndRepromotes)
{
    core::CampaignScenario sc = cleanScenario();
    sc.legs = 3;
    sc.messagesPerLeg = 12;
    sc.deviceLines = 6;
    sc.schedule = "hang:2000..3500";
    core::CampaignResult r = core::runCampaign(sc, 1);
    EXPECT_TRUE(r.recovered);
    EXPECT_GE(r.faultsInjected, 1u);
    EXPECT_GE(r.degradedEntries, 1u);
    EXPECT_GE(r.repromotions, 1u);
    EXPECT_GT(r.degradedTicks, 0.0);
    EXPECT_GT(r.mttrTicks, 0.0);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.duplicated, 0u);
}

TEST(Campaign, WireFlapTriggersLinkResetAndRecovers)
{
    core::CampaignScenario sc = cleanScenario();
    sc.legs = 3;
    sc.messagesPerLeg = 12;
    sc.schedule = "flap:500..30000";
    core::CampaignResult r = core::runCampaign(sc, 1);
    EXPECT_TRUE(r.recovered);
    EXPECT_GE(r.linkResets, 1u);
    EXPECT_GT(r.linkDownTicks, 0.0);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.duplicated, 0u);
}

TEST(Campaign, CrashRestartDeliversExactlyOnce)
{
    core::CampaignScenario sc = cleanScenario();
    sc.legs = 3;
    sc.messagesPerLeg = 12;
    sc.schedule = "burst:bus-write-nack:1000..12000:0.3;hang:3000..7000";
    sc.crashAfterLeg = 1;
    sc.crashAfterTicks = 1500;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        core::CampaignResult r = core::runCampaign(sc, seed);
        EXPECT_TRUE(r.crashed) << "seed " << seed;
        EXPECT_TRUE(r.recovered) << "seed " << seed;
        EXPECT_EQ(r.legsCompleted, 3u) << "seed " << seed;
        EXPECT_EQ(r.lost, 0u) << "seed " << seed;
        EXPECT_EQ(r.duplicated, 0u) << "seed " << seed;
        EXPECT_EQ(r.delivered, r.messagesSent) << "seed " << seed;
    }
}

TEST(Campaign, CrashInFirstLegRestartsFromColdCheckpoint)
{
    core::CampaignScenario sc = cleanScenario();
    sc.crashAfterLeg = 0;
    sc.crashAfterTicks = 800;
    core::CampaignResult r = core::runCampaign(sc, 2);
    EXPECT_TRUE(r.crashed);
    EXPECT_TRUE(r.recovered);
    EXPECT_EQ(r.delivered, r.messagesSent);
}

TEST(Campaign, ValidatesScenario)
{
    core::CampaignScenario sc = cleanScenario();
    sc.crashAfterLeg = 5; // only 2 legs
    EXPECT_THROW(core::runCampaign(sc, 1), FatalError);
    sc = cleanScenario();
    sc.schedule = "not-a-schedule";
    EXPECT_THROW(core::runCampaign(sc, 1), FatalError);
}

TEST(Campaign, SummaryAggregates)
{
    core::CampaignScenario sc = cleanScenario();
    std::vector<core::CampaignResult> rs;
    rs.push_back(core::runCampaign(sc, 1));
    rs.push_back(core::runCampaign(sc, 2));
    core::CampaignSummary s = core::summarize(rs);
    EXPECT_EQ(s.runs, 2u);
    EXPECT_EQ(s.recoveredRuns, 2u);
    EXPECT_DOUBLE_EQ(s.recoveryRate, 1.0);
    EXPECT_EQ(s.totalLost, 0u);
}

TEST(HealthMonitor, PassiveOnHealthySystem)
{
    core::SystemConfig cfg;
    cfg.enableNi = true;
    cfg.ubuf.combineBytes = 0;
    cfg.normalize();
    core::System system(cfg);
    core::HealthParams hp;
    hp.period = 512;
    hp.livenessWindow = 100'000;
    core::HealthMonitor monitor(system, hp);
    monitor.arm();

    core::MessageProgramSpec spec;
    std::vector<unsigned> sizes{64, 128, 32};
    system.run(core::makeMessageProgram(spec, sizes));
    monitor.disarm();

    EXPECT_GT(monitor.checksRun(), 0u);
    EXPECT_TRUE(monitor.violations().empty());
    EXPECT_EQ(system.ni()->delivered().size(), sizes.size());
}

TEST(HealthMonitor, RejectsBadParams)
{
    core::SystemConfig cfg;
    cfg.normalize();
    core::System system(cfg);
    core::HealthParams hp;
    hp.period = 1000;
    hp.livenessWindow = 10; // shorter than the period
    EXPECT_THROW(core::HealthMonitor(system, hp), FatalError);
}

} // namespace
