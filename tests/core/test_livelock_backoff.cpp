/**
 * @file
 * The theoretical livelock of section 3.2 and its mitigations.
 *
 * "Theoretically, it is possible for two processes to be scheduled
 * such that each continuously conflicts with the other.  There are
 * numerous simple solutions for this livelock scenario.  One can
 * limit the number of failed conditional flushes, or use an
 * exponential backoff algorithm to reduce the likelihood of a
 * conflict."
 *
 * On a single core under a strictly periodic round-robin scheduler,
 * a sequence longer than the quantum NEVER completes through the CSB
 * (every resume is preempted before the flush) -- the pathological
 * schedule the paper worries about, in its most extreme form.  These
 * tests demonstrate the starvation, show that exponential backoff
 * slashes the wasted flush attempts, and show that the
 * bounded-retries-with-lock-fallback mitigation restores guaranteed
 * progress.
 */

#include <gtest/gtest.h>

#include "core/kernels.hh"
#include "core/system.hh"
#include "cpu/context_scheduler.hh"

namespace {

using namespace csb;
using core::System;
using core::SystemConfig;
using cpu::ContextScheduler;

constexpr Tick kResonantQuantum = 9; // < one 8-dword sequence
constexpr unsigned kGroups = 4;

struct RunOutcome
{
    bool finished = false;
    double flushesFailed = 0;
    double flushesSucceeded = 0;
    double deviceBytes = 0;
};

enum class Mitigation { None, Backoff, Fallback };

RunOutcome
runCompeting(Mitigation mitigation, Tick quantum, Tick budget = 300000)
{
    SystemConfig cfg;
    cfg.normalize();
    System system(cfg);
    constexpr unsigned bytes = kGroups * 64;
    constexpr Addr base_a = System::ioCsbBase;
    constexpr Addr base_b = System::ioCsbBase + 0x1000;
    isa::Program a;
    isa::Program b;
    switch (mitigation) {
      case Mitigation::None:
        a = core::makeCsbStoreKernel(base_a, bytes, 64);
        b = core::makeCsbStoreKernel(base_b, bytes, 64);
        break;
      case Mitigation::Backoff:
        a = core::makeCsbStoreKernelWithBackoff(base_a, bytes, 64, 256);
        b = core::makeCsbStoreKernelWithBackoff(base_b, bytes, 64, 256);
        break;
      case Mitigation::Fallback:
        a = core::makeCsbStoreKernelWithFallback(
            base_a, System::ioUncachedBase, 0x4000, bytes, 64, 3);
        b = core::makeCsbStoreKernelWithFallback(
            base_b, System::ioUncachedBase + 0x1000, 0x4000, bytes, 64,
            3);
        break;
    }
    ContextScheduler scheduler(system.simulator(), system.core(),
                               quantum);
    scheduler.addProcess(&a, 1);
    scheduler.addProcess(&b, 2);
    scheduler.start();
    system.simulator().run(
        [&] { return scheduler.allFinished() && system.quiescent(); },
        budget);

    RunOutcome outcome;
    outcome.finished = scheduler.allFinished();
    outcome.flushesFailed = system.csb()->flushesFailed.value();
    outcome.flushesSucceeded = system.csb()->flushesSucceeded.value();
    outcome.deviceBytes = system.device().bytesReceived.value();
    return outcome;
}

TEST(Livelock, PlainRetryStarvesUnderResonantQuantum)
{
    RunOutcome outcome =
        runCompeting(Mitigation::None, kResonantQuantum);
    EXPECT_FALSE(outcome.finished)
        << "a sequence longer than the quantum can never flush";
    EXPECT_EQ(outcome.flushesSucceeded, 0.0);
    EXPECT_GT(outcome.flushesFailed, 100.0)
        << "both processes spin on failing flushes";
}

TEST(Livelock, BackoffSlashesWastedFlushAttempts)
{
    RunOutcome plain = runCompeting(Mitigation::None, kResonantQuantum,
                                    100000);
    RunOutcome polite = runCompeting(Mitigation::Backoff,
                                     kResonantQuantum, 100000);
    // Backoff cannot create a flush window this scheduler never
    // grants, but it removes almost all of the useless retry traffic
    // (each of which costs CSB occupancy and a failed atomic).
    EXPECT_LT(polite.flushesFailed, plain.flushesFailed / 5)
        << "plain: " << plain.flushesFailed
        << ", with backoff: " << polite.flushesFailed;
}

TEST(Livelock, BoundedRetriesWithLockFallbackGuaranteesProgress)
{
    RunOutcome outcome =
        runCompeting(Mitigation::Fallback, kResonantQuantum, 2'000'000);
    EXPECT_TRUE(outcome.finished)
        << "the fallback path must complete under any schedule";
    // Every byte of both processes arrived (CSB lines are padded to
    // 64 B, the fallback path writes exact bytes; both equal 64 B
    // groups here).
    EXPECT_EQ(outcome.deviceBytes,
              static_cast<double>(2 * kGroups * 64));
}

TEST(Livelock, FallbackUnusedWhenSequencesFitTheQuantum)
{
    // With a quantum comfortably above the sequence length, all
    // groups commit through the CSB and the lock path never runs.
    RunOutcome outcome = runCompeting(Mitigation::Fallback, 200);
    EXPECT_TRUE(outcome.finished);
    EXPECT_EQ(outcome.flushesSucceeded,
              static_cast<double>(2 * kGroups));
}

TEST(Livelock, BackoffCostsNothingWithoutContention)
{
    // A single process never conflicts, so the backoff path never
    // executes and completion time matches the plain kernel's.
    SystemConfig cfg;
    cfg.normalize();

    System plain(cfg);
    isa::Program a = core::makeCsbStoreKernel(System::ioCsbBase, 256, 64);
    plain.run(a);
    double t_plain = static_cast<double>(plain.core().markTime(1) -
                                         plain.core().markTime(0));

    System backoff(cfg);
    isa::Program b = core::makeCsbStoreKernelWithBackoff(
        System::ioCsbBase, 256, 64);
    backoff.run(b);
    double t_backoff = static_cast<double>(backoff.core().markTime(1) -
                                           backoff.core().markTime(0));

    EXPECT_EQ(backoff.csb()->flushesFailed.value(), 0.0);
    EXPECT_NEAR(t_backoff, t_plain, 4.0);
}

TEST(Livelock, BackoffPreservesExactlyOnceUnderContention)
{
    RunOutcome outcome = runCompeting(Mitigation::Backoff, 17);
    EXPECT_TRUE(outcome.finished);
    EXPECT_EQ(outcome.flushesSucceeded,
              static_cast<double>(2 * kGroups))
        << "every line commits exactly once despite retries";
}

} // namespace
