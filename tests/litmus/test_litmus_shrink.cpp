/**
 * @file
 * Shrinker: deterministic convergence, and the end-to-end drop-flush
 * self-test -- with the bug knob armed, a generated failing case must
 * shrink to at most 20 lowered instructions and stay failing
 * (docs/LITMUS.md).
 */

#include <gtest/gtest.h>

#include "litmus/generator.hh"
#include "litmus/harness.hh"
#include "litmus/oracle.hh"
#include "litmus/shrink.hh"
#include "sim/logging.hh"

namespace csb::litmus {
namespace {

/** Synthetic predicate: fails while any CsbBurst token survives. */
bool
hasBurst(const TestCase &tc)
{
    for (const ContextProgram &cp : tc.contexts)
        for (const Token &t : cp.tokens)
            if (t.kind == TokenKind::CsbBurst)
                return true;
    return false;
}

TEST(LitmusShrink, MinimizesAgainstSyntheticPredicate)
{
    TestCase tc = generate(9);
    ASSERT_TRUE(hasBurst(tc));
    ShrinkStats stats;
    TestCase minimal = shrink(tc, hasBurst, &stats);
    // One context, one burst token, simplified to a single store of 1.
    ASSERT_EQ(minimal.contexts.size(), 1u);
    ASSERT_EQ(minimal.contexts[0].tokens.size(), 1u);
    EXPECT_EQ(minimal.contexts[0].tokens[0].kind, TokenKind::CsbBurst);
    EXPECT_EQ(minimal.contexts[0].tokens[0].nStores, 1);
    EXPECT_EQ(minimal.contexts[0].tokens[0].value, 1u);
    EXPECT_GE(stats.rounds, 1u);
    EXPECT_GT(stats.evaluations, 0u);
}

TEST(LitmusShrink, IsDeterministic)
{
    TestCase tc = generate(14);
    ASSERT_TRUE(hasBurst(tc));
    ShrinkStats a_stats, b_stats;
    TestCase a = shrink(tc, hasBurst, &a_stats);
    TestCase b = shrink(tc, hasBurst, &b_stats);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a_stats.evaluations, b_stats.evaluations);
    EXPECT_EQ(a_stats.rounds, b_stats.rounds);
}

TEST(LitmusShrink, RejectsPassingInput)
{
    TestCase tc = generate(1);
    EXPECT_THROW(
        shrink(tc, [](const TestCase &) { return false; }), FatalError);
}

TEST(LitmusShrink, DropFlushShrinksUnderTwentyInstructions)
{
    // The acceptance pipeline in miniature: find a seed whose case
    // fails under the armed bug knob, shrink it against the first
    // failing spec, and require a tiny, still-failing repro.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        TestCase tc = generate(seed);
        std::vector<RunSpec> specs = specsForSeed(seed, false, 1.0);
        const RunSpec *failing = nullptr;
        for (const RunSpec &spec : specs) {
            if (!runCase(tc, spec).passed()) {
                failing = &spec;
                break;
            }
        }
        if (!failing)
            continue; // this seed's case has no checked burst
        auto fails = [&](const TestCase &cand) {
            return !runCase(cand, *failing).passed();
        };
        ShrinkStats stats;
        TestCase minimal = shrink(tc, fails, &stats);
        EXPECT_TRUE(fails(minimal)) << "seed " << seed;
        EXPECT_LE(minimal.loweredInstructionCount(), 20u)
            << "seed " << seed << ": shrunk case still has "
            << minimal.loweredInstructionCount() << " instructions";
        // Deterministic convergence: re-shrinking reproduces the
        // identical minimal case with the identical effort.
        ShrinkStats again_stats;
        TestCase again = shrink(tc, fails, &again_stats);
        EXPECT_EQ(minimal, again);
        EXPECT_EQ(stats.evaluations, again_stats.evaluations);
        return; // one full pipeline check keeps the test fast
    }
    FAIL() << "no seed in 1..4 produced a drop-flush failure";
}

} // namespace
} // namespace csb::litmus
