/**
 * @file
 * Harness: report determinism across jobs, spec derivation, and
 * corpus replay against the checked-in regression entries
 * (docs/LITMUS.md).
 */

#include <gtest/gtest.h>

#include "litmus/harness.hh"

namespace csb::litmus {
namespace {

TEST(LitmusHarness, SpecDerivationIsDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        std::vector<RunSpec> a = specsForSeed(seed, false, 0);
        std::vector<RunSpec> b = specsForSeed(seed, false, 0);
        ASSERT_EQ(a.size(), b.size());
        ASSERT_EQ(a.size(), 3u); // one spec per scheme
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].name(), b[i].name());
            EXPECT_EQ(a[i].quantum, b[i].quantum);
            EXPECT_EQ(a[i].faultSeed, b[i].faultSeed);
        }
        // Quantum stays in the convergence-friendly band.
        EXPECT_GE(a[0].quantum, 120u);
        EXPECT_LE(a[0].quantum, 400u);
        EXPECT_NE(a[0].faultSeed, 0u);
    }
}

TEST(LitmusHarness, ScheduledFaultAxisIsDrawnAndOptional)
{
    // A quarter of sampled seeds draw the burst schedule; an empty
    // schedule disables the axis entirely.
    bool any_scheduled = false;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        for (const RunSpec &spec : specsForSeed(seed, false, 0))
            any_scheduled = any_scheduled || !spec.schedule.empty();
        for (const RunSpec &spec : specsForSeed(seed, false, 0, ""))
            EXPECT_TRUE(spec.schedule.empty());
    }
    EXPECT_TRUE(any_scheduled);
    // The full matrix's third fault flavor collapses without a
    // schedule: 2 flavors instead of 3.
    EXPECT_EQ(specsForSeed(3, true, 0, "").size() * 3,
              specsForSeed(3, true, 0).size() * 2);
}

TEST(LitmusHarness, ReportIsIdenticalAcrossJobs)
{
    HarnessOptions opts;
    opts.firstSeed = 1;
    opts.numSeeds = 12;
    opts.jobs = 1;
    HarnessResult serial = runHarness(opts);
    opts.jobs = 4;
    HarnessResult pooled = runHarness(opts);
    EXPECT_EQ(serial.report, pooled.report);
    EXPECT_EQ(serial.seedsRun, pooled.seedsRun);
    EXPECT_EQ(serial.seedsFailed, pooled.seedsFailed);
    EXPECT_EQ(serial.seedsRun, 12u);
    EXPECT_EQ(serial.seedsFailed, 0u);
}

TEST(LitmusHarness, DropFlushSweepFindsAndBoundsFailures)
{
    HarnessOptions opts;
    opts.firstSeed = 1;
    opts.numSeeds = 3;
    opts.dropFlushRate = 1.0;
    HarnessResult result = runHarness(opts);
    EXPECT_GT(result.seedsFailed, 0u);
    EXPECT_GT(result.maxShrunkInstructions, 0u);
    EXPECT_LE(result.maxShrunkInstructions, 20u);
}

TEST(LitmusHarness, CorpusReplays)
{
    std::string dir =
        std::string(CSBSIM_SOURCE_DIR) + "/tests/litmus/corpus";
    CorpusResult corpus = replayCorpus(dir);
    EXPECT_EQ(corpus.failures, 0u) << corpus.report;
    EXPECT_GE(corpus.entries, 5u);
}

TEST(LitmusHarness, MissingCorpusDirectoryIsAFailure)
{
    CorpusResult corpus = replayCorpus("/nonexistent/litmus/corpus");
    EXPECT_EQ(corpus.entries, 0u);
    EXPECT_EQ(corpus.failures, 1u);
}

} // namespace
} // namespace csb::litmus
