/**
 * @file
 * Differential oracle: clean cases pass on every point of the
 * hardware matrix; the armed CsbFlushDrop bug knob is detected by two
 * independent checks (docs/LITMUS.md).
 */

#include <gtest/gtest.h>

#include "litmus/generator.hh"
#include "litmus/harness.hh"
#include "litmus/oracle.hh"

namespace csb::litmus {
namespace {

TEST(LitmusOracle, CleanSeedsPassAcrossSampledMatrix)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        TestCase tc = generate(seed);
        for (const RunSpec &spec : specsForSeed(seed, false, 0)) {
            RunResult r = runCase(tc, spec);
            EXPECT_TRUE(r.passed())
                << "seed " << seed << " [" << spec.name() << "]: "
                << (r.discrepancies.empty()
                        ? ""
                        : r.discrepancies.front().what);
        }
    }
}

TEST(LitmusOracle, CleanSeedPassesFullMatrix)
{
    std::uint64_t seed = 3;
    TestCase tc = generate(seed);
    std::vector<RunSpec> specs = specsForSeed(seed, true, 0);
    // Full matrix: 3 schemes x {smp, sched if multi-ctx} x
    // {clean, uniform faults, scheduled burst}.
    unsigned contexts = contextsForSeed(seed);
    EXPECT_EQ(specs.size(), contexts > 1 ? 18u : 9u);
    for (const RunSpec &spec : specs)
        EXPECT_TRUE(runCase(tc, spec).passed()) << spec.name();
}

TEST(LitmusOracle, DropFlushBugIsDetected)
{
    // A single checked burst: the armed knob drops the flushed line
    // after success bookkeeping, so the device image misses bytes AND
    // the exactly-once invariant (linesIssued == flushesSucceeded)
    // breaks -- two independent detections.
    TestCase tc;
    tc.contexts.push_back(
        {1, {Token{TokenKind::CsbBurst, 8, 0, 2, 0, 0x1234}}});

    RunSpec clean;
    clean.scheme = Scheme::Csb;
    clean.mode = CtxMode::Smp;
    EXPECT_TRUE(runCase(tc, clean).passed());

    RunSpec buggy = clean;
    buggy.dropFlushRate = 1.0;
    RunResult r = runCase(tc, buggy);
    ASSERT_FALSE(r.passed());
    bool image_miss = false, exactly_once = false;
    for (const Discrepancy &d : r.discrepancies) {
        image_miss |= d.what.find("device byte") != std::string::npos;
        exactly_once |=
            d.what.find("exactly-once") != std::string::npos;
    }
    EXPECT_TRUE(image_miss);
    EXPECT_TRUE(exactly_once);
}

TEST(LitmusOracle, RunSpecNamesAreStable)
{
    RunSpec spec;
    spec.scheme = Scheme::Pio;
    spec.mode = CtxMode::Sched;
    spec.quantum = 150;
    EXPECT_EQ(spec.name(), "pio/sched(q=150)");
    spec.faults = true;
    spec.dropFlushRate = 1.0;
    EXPECT_EQ(spec.name(), "pio/sched(q=150)/faults/drop-flush");
    spec.schedule = "burst:bus-write-nack:0..100:0.5";
    EXPECT_EQ(spec.name(),
              "pio/sched(q=150)/faults/scheduled/drop-flush");
}

TEST(LitmusOracle, RecorderCapturesTheRun)
{
    TestCase tc = generate(5);
    RunSpec spec = specsForSeed(5, false, 0).front();
    sim::TraceRecorder recorder(
        spec.mode == CtxMode::Smp ? unsigned(tc.contexts.size()) : 1u,
        64);
    ASSERT_TRUE(runCase(tc, spec, &recorder).passed());
    EXPECT_FALSE(recorder.records().empty());
    // Recording is deterministic: a second run captures the same
    // stream.
    sim::TraceRecorder again(recorder.numCpus(), 64);
    ASSERT_TRUE(runCase(tc, spec, &again).passed());
    EXPECT_EQ(recorder.records(), again.records());
}

} // namespace
} // namespace csb::litmus
