/**
 * @file
 * Litmus test-case model: generation determinism, text round-trip,
 * lowering (docs/LITMUS.md).
 */

#include <gtest/gtest.h>

#include "litmus/generator.hh"
#include "litmus/testcase.hh"
#include "sim/logging.hh"

namespace csb::litmus {
namespace {

TEST(LitmusCase, GeneratorIsDeterministic)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 999ULL}) {
        TestCase a = generate(seed);
        TestCase b = generate(seed);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_EQ(a.seed, seed);
    }
    // Different seeds produce different cases (overwhelmingly likely;
    // these three are spot-checked, not a birthday argument).
    EXPECT_NE(generate(1), generate(2));
    EXPECT_NE(generate(2), generate(3));
}

TEST(LitmusCase, GeneratorRespectsLayout)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        TestCase tc = generate(seed);
        EXPECT_EQ(tc.contexts.size(), contextsForSeed(seed));
        ASSERT_FALSE(tc.contexts.empty());
        for (std::size_t c = 0; c < tc.contexts.size(); ++c) {
            EXPECT_EQ(tc.contexts[c].pid, ProcId(c + 1));
            for (const Token &t : tc.contexts[c].tokens) {
                EXPECT_TRUE(t.size == 1 || t.size == 4 || t.size == 8);
                EXPECT_LT(t.line, numLines);
                EXPECT_LT(t.slot, numSlots);
                EXPECT_GE(t.nStores, 1u);
                EXPECT_LE(t.nStores, maxBurstStores);
            }
        }
    }
}

TEST(LitmusCase, TextRoundTrips)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        TestCase tc = generate(seed);
        TestCase back = TestCase::fromText(tc.toText());
        EXPECT_EQ(tc, back) << "seed " << seed;
    }
}

TEST(LitmusCase, ParserSkipsDirectivesAndComments)
{
    std::string text =
        "# a corpus entry\n"
        "run scheme=csb mode=smp quantum=200 faults=0 drop-flush=0\n"
        "expect pass\n"
        "case seed=7\n"
        "context pid=3\n"
        "  csb-burst line=2 stores=4 size=8 value=0xabc\n"
        "  membar\n"
        "end\n";
    TestCase tc = TestCase::fromText(text);
    EXPECT_EQ(tc.seed, 7u);
    ASSERT_EQ(tc.contexts.size(), 1u);
    EXPECT_EQ(tc.contexts[0].pid, 3u);
    ASSERT_EQ(tc.contexts[0].tokens.size(), 2u);
    EXPECT_EQ(tc.contexts[0].tokens[0].kind, TokenKind::CsbBurst);
    EXPECT_EQ(tc.contexts[0].tokens[0].line, 2);
    EXPECT_EQ(tc.contexts[0].tokens[0].nStores, 4);
    EXPECT_EQ(tc.contexts[0].tokens[0].value, 0xabcu);
    EXPECT_EQ(tc.contexts[0].tokens[1].kind, TokenKind::Membar);
}

TEST(LitmusCase, ParserRejectsMalformedInput)
{
    EXPECT_THROW(TestCase::fromText("context pid=1\nend\n"),
                 FatalError); // no case line
    EXPECT_THROW(TestCase::fromText("case seed=1\n"), FatalError);
    EXPECT_THROW(
        TestCase::fromText("case seed=1\ncontext pid=1\n"
                           "  cached-store size=3 slot=0 value=1\nend\n"),
        FatalError); // bad size
    EXPECT_THROW(
        TestCase::fromText("case seed=1\ncontext pid=1\n"
                           "  frobnicate\nend\n"),
        FatalError); // unknown token
}

TEST(LitmusCase, LoweringIsPureAndCountsMatch)
{
    TestCase tc = generate(11);
    for (std::size_t c = 0; c < tc.contexts.size(); ++c) {
        isa::Program a = lowerContext(tc, c);
        isa::Program b = lowerContext(tc, c);
        ASSERT_EQ(a.size(), b.size());
    }
    std::size_t total = 0;
    for (std::size_t c = 0; c < tc.contexts.size(); ++c)
        total += lowerContext(tc, c).size();
    EXPECT_EQ(tc.loweredInstructionCount(), total);
}

TEST(LitmusCase, DisjointnessHoldsForGeneratedCases)
{
    // The guard is a no-op on everything the generator can draw --
    // disjointness is by construction; the validator only exists to
    // make the assumption loud if a future mode breaks it.
    for (std::uint64_t seed = 1; seed <= 100; ++seed)
        EXPECT_NO_THROW(generate(seed).validateDisjointness()) << seed;
}

TEST(LitmusCase, DisjointnessGuardRejectsEscapingTokens)
{
    // Lowering masks out-of-range indices (slot % numSlots), so a
    // hand-edited or future shared-location case would silently wrap
    // into a *valid but unintended* location; the guard must reject
    // the raw fields instead.
    TestCase tc;
    tc.contexts.push_back(
        {1, {Token{TokenKind::CachedStore, 8, 0, 1, /*slot=*/200, 1}}});
    EXPECT_THROW(tc.validateDisjointness(), FatalError);

    tc.contexts[0].tokens[0] =
        Token{TokenKind::CsbBurst, 8, /*line=*/numLines, 1, 0, 1};
    EXPECT_THROW(tc.validateDisjointness(), FatalError);

    tc.contexts[0].tokens[0] = Token{TokenKind::CsbBurst, 8, 0,
                                     /*nStores=*/maxBurstStores + 1, 0, 1};
    EXPECT_THROW(tc.validateDisjointness(), FatalError);

    tc.contexts[0].tokens[0] =
        Token{TokenKind::UncachedStore, /*size=*/3, 0, 1, 0, 1};
    EXPECT_THROW(tc.validateDisjointness(), FatalError);

    // The rejection message must carry a pasteable single-token repro.
    tc.contexts[0].tokens[0] =
        Token{TokenKind::CachedStore, 8, 0, 1, /*slot=*/200, 1};
    try {
        tc.validateDisjointness();
        FAIL() << "guard did not fire";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("slot=200"),
                  std::string::npos)
            << err.what();
    }

    // In-range fields pass.
    tc.contexts[0].tokens[0] = Token{TokenKind::CachedStore, 8, 0, 1,
                                     /*slot=*/numSlots - 1, 1};
    EXPECT_NO_THROW(tc.validateDisjointness());
}

TEST(LitmusCase, MinimalBurstLowersSmall)
{
    // The shrinker's target shape: one single-store checked burst must
    // lower within the <= 20 instruction repro bound with room to
    // spare (base li + store li + store + expected li + swap +
    // compare li + bne + halt = 8).
    TestCase tc;
    tc.contexts.push_back({1, {Token{TokenKind::CsbBurst, 8, 0, 1, 0, 1}}});
    EXPECT_EQ(tc.loweredInstructionCount(), 8u);
}

} // namespace
} // namespace csb::litmus
