/**
 * @file
 * Tests for the background-traffic bus master: load generation,
 * arbitration fairness, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bus/system_bus.hh"
#include "bus/traffic_generator.hh"
#include "io/burst_device.hh"
#include "mem/main_memory.hh"
#include "mem/physical_memory.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using bus::BusStatus;
using bus::TrafficGenerator;
using bus::TrafficGeneratorParams;

class TgenFixture : public ::testing::Test
{
  protected:
    void
    make(const TrafficGeneratorParams &params)
    {
        bus::BusParams bus_params;
        bus_params.widthBytes = 8;
        bus_params.ratio = 6;
        bus_params.maxBurstBytes = 64;
        bus = std::make_unique<bus::SystemBus>(sim, bus_params);
        memory = std::make_unique<mem::MainMemory>(storage, 60);
        bus->addTarget(0, 1 << 20, memory.get());
        tgen = std::make_unique<TrafficGenerator>(sim, *bus, params);
    }

    sim::Simulator sim;
    mem::PhysicalMemory storage;
    std::unique_ptr<bus::SystemBus> bus;
    std::unique_ptr<mem::MainMemory> memory;
    std::unique_ptr<TrafficGenerator> tgen;
};

TEST_F(TgenFixture, GeneratesTrafficWhenRunning)
{
    TrafficGeneratorParams params;
    params.interval = 2.0;
    make(params);
    tgen->start();
    sim.runFor(6000); // 1000 bus cycles
    double txns = tgen->reads.value() + tgen->writes.value();
    EXPECT_GT(txns, 100.0);
    EXPECT_GT(tgen->reads.value(), 0.0);
    EXPECT_GT(tgen->writes.value(), 0.0);
}

TEST_F(TgenFixture, SilentUntilStarted)
{
    make(TrafficGeneratorParams{});
    sim.runFor(600);
    EXPECT_EQ(tgen->reads.value() + tgen->writes.value(), 0.0);
}

TEST_F(TgenFixture, StopQuiesces)
{
    TrafficGeneratorParams params;
    params.interval = 2.0;
    make(params);
    tgen->start();
    sim.runFor(600);
    tgen->stop();
    double txns = tgen->reads.value() + tgen->writes.value();
    sim.runFor(600);
    EXPECT_EQ(tgen->reads.value() + tgen->writes.value(), txns);
}

TEST_F(TgenFixture, RespectsWriteFraction)
{
    TrafficGeneratorParams params;
    params.interval = 1.0;
    params.writeFraction = 1.0;
    make(params);
    tgen->start();
    sim.runFor(3000);
    EXPECT_EQ(tgen->reads.value(), 0.0);
    EXPECT_GT(tgen->writes.value(), 0.0);
}

TEST(TrafficGeneratorDeterminism, SameSeedSameTraffic)
{
    auto run_once = [](std::uint64_t seed) {
        sim::Simulator simulator;
        bus::BusParams bus_params;
        bus_params.widthBytes = 8;
        bus_params.ratio = 6;
        bus_params.maxBurstBytes = 64;
        bus::SystemBus the_bus(simulator, bus_params);
        mem::PhysicalMemory storage;
        mem::MainMemory memory(storage, 60);
        the_bus.addTarget(0, 1 << 20, &memory);
        TrafficGeneratorParams params;
        params.seed = seed;
        TrafficGenerator generator(simulator, the_bus, params);
        generator.start();
        simulator.runFor(3000);
        return std::make_pair(generator.bytesMoved.value(),
                              the_bus.monitor().records().size());
    };
    auto a = run_once(777);
    auto b = run_once(777);
    auto c = run_once(778);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.second, 0u);
    // A different seed should produce a different access pattern
    // (byte totals may coincide; record streams rarely do).
    (void)c;
}

TEST_F(TgenFixture, StaysInsideItsRegion)
{
    TrafficGeneratorParams params;
    params.base = 0x40000;
    params.regionSize = 0x1000;
    params.interval = 1.0;
    make(params);
    tgen->start();
    sim.runFor(3000);
    for (const auto &rec : bus->monitor().records()) {
        if (rec.kind == bus::TxnKind::ReadResp)
            continue;
        EXPECT_GE(rec.addr, 0x40000u);
        EXPECT_LT(rec.addr + rec.size, 0x41000u + 64);
    }
}

TEST_F(TgenFixture, SharesBusFairlyWithSecondMaster)
{
    TrafficGeneratorParams params;
    params.interval = 1.0; // saturating load
    make(params);
    MasterId victim = bus->registerMaster("victim");
    tgen->start();

    // The victim streams writes; round-robin must keep it moving.
    unsigned completed = 0;
    unsigned issued = 0;
    sim.run(
        [&] {
            if (issued < 50 && bus->masterIdle(victim)) {
                std::vector<std::uint8_t> data(8, 1);
                if (bus->requestWrite(victim, 0x80000 + issued * 8,
                                      std::move(data), true,
                                      [&](Tick, BusStatus) { ++completed; })) {
                    ++issued;
                }
            }
            return completed == 50;
        },
        200000);
    EXPECT_EQ(completed, 50u)
        << "a saturating background load must not starve the victim";
}

} // namespace
