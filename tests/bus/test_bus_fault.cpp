/**
 * @file
 * Bus error/retry protocol tests: injected NACKs and errors, the
 * completion-status plumbing, target-driven NACKs, unmapped-address
 * diagnostics, and the retry backoff schedule.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bus/retry.hh"
#include "bus/system_bus.hh"
#include "io/burst_device.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using bus::BusParams;
using bus::BusStatus;
using bus::BusTransaction;
using bus::SystemBus;

/** Records every delivered write; NACKs the first @p nacks accepts. */
class CountingTarget : public bus::BusTarget
{
  public:
    explicit CountingTarget(unsigned nacks = 0) : nacksLeft_(nacks) {}

    const std::string &targetName() const override { return name_; }

    BusStatus
    accept(const BusTransaction &, Tick) override
    {
        if (nacksLeft_ > 0) {
            --nacksLeft_;
            return BusStatus::Nack;
        }
        return BusStatus::Ok;
    }

    void
    write(const BusTransaction &txn, Tick) override
    {
        writes.push_back(txn.data);
    }

    Tick
    read(const BusTransaction &txn, Tick now,
         std::vector<std::uint8_t> &data) override
    {
        data.assign(txn.size, 0x5a);
        return now + 10;
    }

    std::vector<std::vector<std::uint8_t>> writes;

  private:
    std::string name_ = "counting";
    unsigned nacksLeft_;
};

class BusFaultFixture : public ::testing::Test
{
  protected:
    void
    make(unsigned target_nacks = 0, bool error_responses = false)
    {
        BusParams params;
        params.kind = bus::BusKind::Multiplexed;
        params.widthBytes = 8;
        params.ratio = 6;
        params.maxBurstBytes = 64;
        params.errorResponses = error_responses;
        bus = std::make_unique<SystemBus>(sim, params);
        target = std::make_unique<CountingTarget>(target_nacks);
        bus->addTarget(0, 0x100000, target.get());
        master = bus->registerMaster("m");
    }

    sim::Simulator sim;
    std::unique_ptr<SystemBus> bus;
    std::unique_ptr<CountingTarget> target;
    MasterId master = 0;
};

TEST_F(BusFaultFixture, InjectedWriteNackReachesCallbackNotTarget)
{
    make();
    sim::FaultPlan plan;
    plan.busWriteNackRate = 1.0;
    sim::FaultInjector injector(plan);
    bus->setFaultInjector(&injector);

    BusStatus got = BusStatus::Ok;
    bool done = false;
    std::vector<std::uint8_t> data(8, 0xaa);
    ASSERT_TRUE(bus->requestWrite(master, 0x100, data, true,
                                  [&](Tick, BusStatus status) {
                                      got = status;
                                      done = true;
                                  }));
    sim.run([&] { return done; }, 10000);
    EXPECT_EQ(got, BusStatus::Nack);
    EXPECT_TRUE(target->writes.empty())
        << "a NACKed write must not be delivered";
    EXPECT_EQ(bus->numNacks.value(), 1.0);
    EXPECT_EQ(injector.busWriteNacks.value(), 1.0);
    ASSERT_FALSE(bus->monitor().records().empty());
    EXPECT_EQ(bus->monitor().records().back().status, BusStatus::Nack);
}

TEST_F(BusFaultFixture, InjectedReadNackCompletesEmptyAtAddrPhase)
{
    make();
    sim::FaultPlan plan;
    plan.busReadNackRate = 1.0;
    sim::FaultInjector injector(plan);
    bus->setFaultInjector(&injector);

    BusStatus got = BusStatus::Ok;
    std::vector<std::uint8_t> payload{1};
    bool done = false;
    ASSERT_TRUE(bus->requestRead(
        master, 0x40, 8, false,
        [&](Tick, BusStatus status, const std::vector<std::uint8_t> &d) {
            got = status;
            payload = d;
            done = true;
        }));
    sim.run([&] { return done; }, 10000);
    EXPECT_EQ(got, BusStatus::Nack);
    EXPECT_TRUE(payload.empty()) << "a NACKed read returns no data";
    EXPECT_EQ(bus->numNacks.value(), 1.0);
}

TEST_F(BusFaultFixture, TargetAcceptNackHonoredAtCompletion)
{
    make(/*target_nacks=*/2);
    unsigned nacks = 0;
    unsigned oks = 0;
    std::vector<std::uint8_t> data(8, 0xbb);
    for (int i = 0; i < 3; ++i) {
        bool done = false;
        ASSERT_TRUE(bus->requestWrite(master, 0x100, data, true,
                                      [&](Tick, BusStatus status) {
                                          (status == BusStatus::Ok
                                               ? oks
                                               : nacks) += 1;
                                          done = true;
                                      }));
        sim.run([&] { return done; }, 10000);
    }
    EXPECT_EQ(nacks, 2u);
    EXPECT_EQ(oks, 1u);
    ASSERT_EQ(target->writes.size(), 1u)
        << "delivery happens exactly once, on the accepted attempt";
    EXPECT_EQ(bus->numNacks.value(), 2.0);
}

TEST_F(BusFaultFixture, InjectedBusErrorIsNotRetryable)
{
    make();
    sim::FaultPlan plan;
    plan.busErrorRate = 1.0;
    sim::FaultInjector injector(plan);
    bus->setFaultInjector(&injector);

    BusStatus got = BusStatus::Ok;
    bool done = false;
    std::vector<std::uint8_t> data(8, 0xcc);
    ASSERT_TRUE(bus->requestWrite(master, 0x100, data, true,
                                  [&](Tick, BusStatus status) {
                                      got = status;
                                      done = true;
                                  }));
    sim.run([&] { return done; }, 10000);
    EXPECT_EQ(got, BusStatus::Error);
    EXPECT_TRUE(target->writes.empty());
    EXPECT_EQ(bus->numErrors.value(), 1.0);
}

TEST_F(BusFaultFixture, UnmappedAddressPanicNamesMasterAndKind)
{
    make();
    std::vector<std::uint8_t> data(8, 0);
    EXPECT_DEATH(bus->requestWrite(master, 0x900000, data, true, {}),
                 "issued by master 'm'");
}

TEST_F(BusFaultFixture, UnmappedAddressDeliversErrorWhenEnabled)
{
    make(/*target_nacks=*/0, /*error_responses=*/true);
    BusStatus got = BusStatus::Ok;
    bool done = false;
    std::vector<std::uint8_t> data(8, 0);
    ASSERT_TRUE(bus->requestWrite(master, 0x900000, data, true,
                                  [&](Tick, BusStatus status) {
                                      got = status;
                                      done = true;
                                  }));
    sim.run([&] { return done; }, 10000);
    EXPECT_EQ(got, BusStatus::Error);
    EXPECT_EQ(bus->numErrors.value(), 1.0);
}

TEST(RetryPolicy, BackoffIsGeometricAndCapped)
{
    bus::RetryPolicy policy;
    policy.initialBackoffTicks = 16;
    policy.multiplier = 2;
    policy.maxBackoffTicks = 100;
    EXPECT_EQ(policy.backoffFor(1), 16u);
    EXPECT_EQ(policy.backoffFor(2), 32u);
    EXPECT_EQ(policy.backoffFor(3), 64u);
    EXPECT_EQ(policy.backoffFor(4), 100u) << "capped";
    EXPECT_EQ(policy.backoffFor(20), 100u) << "no overflow at high attempts";
}

TEST(FaultPlanValidate, RejectsRatesOutsideUnitInterval)
{
    sim::FaultPlan plan;
    plan.busWriteNackRate = 1.5;
    EXPECT_THROW(plan.validate(), FatalError);
    plan.busWriteNackRate = -0.1;
    EXPECT_THROW(plan.validate(), FatalError);
    plan.busWriteNackRate = 0.5;
    EXPECT_NO_THROW(plan.validate());
}

TEST(FaultInjectorDeterminism, SameSeedSameDecisions)
{
    sim::FaultPlan plan;
    plan.seed = 99;
    plan.wireDropRate = 0.3;
    sim::FaultInjector a(plan);
    sim::FaultInjector b(plan);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.shouldFault(sim::FaultSite::WireDrop, 0),
                  b.shouldFault(sim::FaultSite::WireDrop, 0));
    }
    EXPECT_GT(a.wireDrops.value(), 0.0);
    EXPECT_LT(a.wireDrops.value(), 1000.0);
}

TEST(FaultInjectorDeterminism, ZeroRateSiteNeverDraws)
{
    sim::FaultPlan plan;
    plan.seed = 5;
    plan.wireDropRate = 0.5;
    // Interleaving zero-rate queries must not perturb the nonzero
    // site's stream: they never touch the generator.
    sim::FaultInjector a(plan);
    sim::FaultInjector b(plan);
    std::vector<bool> with_noise;
    std::vector<bool> without;
    for (int i = 0; i < 200; ++i) {
        EXPECT_FALSE(a.shouldFault(sim::FaultSite::BusError, 0));
        with_noise.push_back(a.shouldFault(sim::FaultSite::WireDrop, 0));
        without.push_back(b.shouldFault(sim::FaultSite::WireDrop, 0));
    }
    EXPECT_EQ(with_noise, without);
    EXPECT_EQ(a.busErrors.value(), 0.0);
}

} // namespace
