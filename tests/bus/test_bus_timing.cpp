/**
 * @file
 * Analytic timing tests for the system bus models.  Expected values
 * follow the paper's section 4: a multiplexed-bus write of S bytes
 * occupies 1 + ceil(S/W) cycles; a split-bus write occupies
 * ceil(S/W) data cycles; ackDelay spaces strongly ordered address
 * cycles; the trailing turnaround is never charged to bandwidth.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bus/system_bus.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using bus::BusKind;
using bus::BusParams;
using bus::BusStatus;
using bus::SystemBus;
using bus::TxnKind;
using bus::TxnRecord;

/** Minimal recording target. */
class TestTarget : public bus::BusTarget
{
  public:
    const std::string &targetName() const override { return name_; }

    void
    write(const bus::BusTransaction &txn, Tick now) override
    {
        writes.emplace_back(txn.addr, now);
        lastData = txn.data;
    }

    Tick
    read(const bus::BusTransaction &txn, Tick,
         std::vector<std::uint8_t> &data) override
    {
        data.assign(txn.size, 0x5a);
        return readLatency;
    }

    Tick readLatency = 60;
    std::vector<std::pair<Addr, Tick>> writes;
    std::vector<std::uint8_t> lastData;

  private:
    std::string name_ = "test-target";
};

class BusFixture : public ::testing::Test
{
  protected:
    void
    makeBus(BusKind kind, unsigned width, unsigned ratio,
            unsigned turnaround = 0, unsigned ack_delay = 0)
    {
        BusParams params;
        params.kind = kind;
        params.widthBytes = width;
        params.ratio = ratio;
        params.turnaround = turnaround;
        params.ackDelay = ack_delay;
        params.maxBurstBytes = 64;
        bus = std::make_unique<SystemBus>(sim, params);
        bus->addTarget(0, 0x100000, &target);
        master = bus->registerMaster("test");
    }

    /**
     * Stream @p writes sequential transactions of @p size bytes,
     * presenting the next as soon as the bus accepts the previous.
     * Runs until all have completed.
     */
    void
    streamWrites(unsigned count, unsigned size, bool ordered = true)
    {
        unsigned issued = 0;
        unsigned completed = 0;
        sim.run(
            [&] {
                if (issued < count && bus->masterIdle(master)) {
                    std::vector<std::uint8_t> data(size, 0xcd);
                    bool ok = bus->requestWrite(
                        master, static_cast<Addr>(issued) * size,
                        std::move(data), ordered,
                        [&](Tick, BusStatus) { ++completed; });
                    EXPECT_TRUE(ok);
                    ++issued;
                }
                return completed == count;
            },
            100000);
        ASSERT_EQ(completed, count);
    }

    const std::vector<TxnRecord> &
    records() const
    {
        return bus->monitor().records();
    }

    sim::Simulator sim;
    std::unique_ptr<SystemBus> bus;
    TestTarget target;
    MasterId master = 0;
};

TEST_F(BusFixture, MultiplexedDwordWriteTakesTwoCycles)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    streamWrites(1, 8);
    ASSERT_EQ(records().size(), 1u);
    const TxnRecord &rec = records()[0];
    EXPECT_EQ(rec.lastDataCycle - rec.addrCycle + 1, 2u);
    // Completion at the end of the last data cycle, in CPU ticks.
    EXPECT_EQ(rec.completionTick, (rec.lastDataCycle + 1) * 6);
}

TEST_F(BusFixture, MultiplexedBackToBackDwords)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    streamWrites(4, 8);
    ASSERT_EQ(records().size(), 4u);
    for (std::size_t i = 1; i < 4; ++i) {
        EXPECT_EQ(records()[i].addrCycle - records()[i - 1].addrCycle, 2u)
            << "txn " << i;
    }
    // Effective bandwidth: 4 bytes per bus cycle (the paper's
    // half-of-peak reference point).
    EXPECT_DOUBLE_EQ(bus->monitor().bandwidthBytesPerBusCycle(), 4.0);
}

TEST_F(BusFixture, MultiplexedLineBurst)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    streamWrites(1, 64);
    const TxnRecord &rec = records()[0];
    // 1 address + 8 data cycles.
    EXPECT_EQ(rec.lastDataCycle - rec.addrCycle + 1, 9u);
    EXPECT_NEAR(bus->monitor().bandwidthBytesPerBusCycle(), 64.0 / 9.0,
                1e-9);
}

TEST_F(BusFixture, TurnaroundSpacesTransactions)
{
    makeBus(BusKind::Multiplexed, 8, 6, /*turnaround=*/1);
    streamWrites(3, 8);
    for (std::size_t i = 1; i < 3; ++i)
        EXPECT_EQ(records()[i].addrCycle - records()[i - 1].addrCycle, 3u);
    // Trailing turnaround not charged: 24 bytes over cycles 0..7.
    EXPECT_DOUBLE_EQ(bus->monitor().bandwidthBytesPerBusCycle(), 3.0);
}

TEST_F(BusFixture, AckDelaySpacesOrderedWrites)
{
    makeBus(BusKind::Multiplexed, 8, 6, 0, /*ack_delay=*/4);
    streamWrites(3, 8, /*ordered=*/true);
    for (std::size_t i = 1; i < 3; ++i)
        EXPECT_EQ(records()[i].addrCycle - records()[i - 1].addrCycle, 4u);
}

TEST_F(BusFixture, AckDelayIgnoredForUnorderedWrites)
{
    makeBus(BusKind::Multiplexed, 8, 6, 0, /*ack_delay=*/4);
    streamWrites(3, 8, /*ordered=*/false);
    for (std::size_t i = 1; i < 3; ++i)
        EXPECT_EQ(records()[i].addrCycle - records()[i - 1].addrCycle, 2u);
}

TEST_F(BusFixture, AckDelayOverlappedByLongBurst)
{
    // An 8-cycle burst completely hides an 8-cycle acknowledgment
    // (paper, figure 3(i) discussion).
    makeBus(BusKind::Multiplexed, 8, 6, 0, /*ack_delay=*/8);
    streamWrites(3, 64);
    for (std::size_t i = 1; i < 3; ++i)
        EXPECT_EQ(records()[i].addrCycle - records()[i - 1].addrCycle, 9u);
}

TEST_F(BusFixture, SplitDwordWriteSingleDataCycle)
{
    makeBus(BusKind::Split, 16, 6);
    streamWrites(4, 8);
    for (const TxnRecord &rec : records())
        EXPECT_EQ(rec.lastDataCycle, rec.firstDataCycle);
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_EQ(records()[i].addrCycle - records()[i - 1].addrCycle, 1u);
    // A dword uses half of a 128-bit bus: 8 bytes per cycle.
    EXPECT_DOUBLE_EQ(bus->monitor().bandwidthBytesPerBusCycle(), 8.0);
}

TEST_F(BusFixture, SplitWideBurstTwoCycles)
{
    // 64-byte burst on a 256-bit bus takes two data cycles, the same
    // as two individual dword stores (paper, figure 4 discussion).
    makeBus(BusKind::Split, 32, 6);
    streamWrites(1, 64);
    const TxnRecord &rec = records()[0];
    EXPECT_EQ(rec.lastDataCycle - rec.firstDataCycle + 1, 2u);
}

TEST_F(BusFixture, SplitTurnaroundSeparatesTenures)
{
    makeBus(BusKind::Split, 16, 6, /*turnaround=*/1);
    streamWrites(3, 8);
    for (std::size_t i = 1; i < 3; ++i)
        EXPECT_EQ(records()[i].firstDataCycle -
                      records()[i - 1].lastDataCycle,
                  2u);
}

TEST_F(BusFixture, WriteDataReachesTarget)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    streamWrites(1, 8);
    ASSERT_EQ(target.writes.size(), 1u);
    EXPECT_EQ(target.lastData, std::vector<std::uint8_t>(8, 0xcd));
}

TEST_F(BusFixture, ReadRoundTrip)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    bool done = false;
    std::vector<std::uint8_t> got;
    Tick completion = 0;
    ASSERT_TRUE(bus->requestRead(master, 0x40, 8, true,
                                 [&](Tick when, BusStatus,
                                     const std::vector<std::uint8_t> &d) {
                                     done = true;
                                     got = d;
                                     completion = when;
                                 }));
    sim.run([&] { return done; }, 100000);
    ASSERT_TRUE(done);
    EXPECT_EQ(got, std::vector<std::uint8_t>(8, 0x5a));
    // At least: one address cycle + 60 ticks latency + response.
    EXPECT_GE(completion, 60u);
    // Both the request and the response were recorded.
    ASSERT_EQ(records().size(), 2u);
    EXPECT_EQ(records()[0].kind, TxnKind::ReadReq);
    EXPECT_EQ(records()[1].kind, TxnKind::ReadResp);
}

TEST_F(BusFixture, MisalignedTransactionPanics)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    std::vector<std::uint8_t> data(8, 0);
    EXPECT_DEATH(bus->requestWrite(master, 0x4, std::move(data), true, {}),
                 "naturally aligned");
}

TEST_F(BusFixture, NonPowerOfTwoSizePanics)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    std::vector<std::uint8_t> data(24, 0);
    EXPECT_DEATH(bus->requestWrite(master, 0x0, std::move(data), true, {}),
                 "power of two");
}

TEST_F(BusFixture, BusyMasterRefusesSecondRequest)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    std::vector<std::uint8_t> data(8, 0);
    ASSERT_TRUE(bus->requestWrite(master, 0, data, true, {}));
    EXPECT_FALSE(bus->masterIdle(master));
    EXPECT_FALSE(bus->requestWrite(master, 8, data, true, {}));
}

TEST_F(BusFixture, RoundRobinBetweenMasters)
{
    makeBus(BusKind::Multiplexed, 8, 6);
    MasterId second = bus->registerMaster("second");
    unsigned done = 0;
    std::vector<std::uint8_t> data(8, 0);
    auto cb = [&](Tick, BusStatus) { ++done; };
    ASSERT_TRUE(bus->requestWrite(master, 0, data, false, cb));
    ASSERT_TRUE(bus->requestWrite(second, 64, data, false, cb));
    sim.run([&] { return done == 2; }, 10000);
    ASSERT_EQ(records().size(), 2u);
    EXPECT_NE(records()[0].master, records()[1].master);
}

} // namespace
