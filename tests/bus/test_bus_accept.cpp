/**
 * @file
 * Tests for SystemBus::wouldAcceptAtNextEdge and response/request
 * interactions -- the combining-window contract the uncached buffer
 * and CSB rely on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bus/system_bus.hh"
#include "io/burst_device.hh"
#include "sim/simulator.hh"

namespace {

using namespace csb;
using bus::BusKind;
using bus::BusStatus;
using bus::BusParams;
using bus::SystemBus;

class AcceptFixture : public ::testing::Test
{
  protected:
    void
    makeBus(BusKind kind, unsigned width, unsigned turnaround = 0,
            unsigned ack_delay = 0)
    {
        BusParams params;
        params.kind = kind;
        params.widthBytes = width;
        params.ratio = 6;
        params.turnaround = turnaround;
        params.ackDelay = ack_delay;
        params.maxBurstBytes = 64;
        bus = std::make_unique<SystemBus>(sim, params);
        device = std::make_unique<io::BurstDevice>(12, 64);
        bus->addTarget(0, 0x100000, device.get());
        master = bus->registerMaster("m");
    }

    void
    issueWrite(unsigned size, bool ordered = true)
    {
        std::vector<std::uint8_t> data(size, 0xee);
        ASSERT_TRUE(bus->requestWrite(master, nextAddr_, std::move(data),
                                      ordered, {}));
        nextAddr_ += 64;
    }

    sim::Simulator sim;
    std::unique_ptr<SystemBus> bus;
    std::unique_ptr<io::BurstDevice> device;
    MasterId master = 0;
    Addr nextAddr_ = 0;
};

TEST_F(AcceptFixture, IdleBusAccepts)
{
    makeBus(BusKind::Multiplexed, 8);
    EXPECT_TRUE(bus->wouldAcceptAtNextEdge(master, true, true));
    EXPECT_TRUE(bus->wouldAcceptAtNextEdge(master, false, false));
}

TEST_F(AcceptFixture, BusyBusRefusesUntilFree)
{
    makeBus(BusKind::Multiplexed, 8);
    issueWrite(64); // 9-cycle burst once started
    sim.runFor(6);  // burst starts at cycle 1
    EXPECT_FALSE(bus->wouldAcceptAtNextEdge(master, true, true))
        << "cycle 2: the burst occupies the bus";
    sim.runFor(6 * 9);
    EXPECT_TRUE(bus->wouldAcceptAtNextEdge(master, true, true))
        << "after the burst the next edge is free";
}

TEST_F(AcceptFixture, AckDelayGatesOrderedOnly)
{
    makeBus(BusKind::Multiplexed, 8, 0, /*ack_delay=*/8);
    issueWrite(8, /*ordered=*/true); // 2-cycle write
    sim.runFor(6 * 3);
    // The bus itself is free, but the ordered ack window is not.
    EXPECT_FALSE(bus->wouldAcceptAtNextEdge(master, true, true));
    EXPECT_TRUE(bus->wouldAcceptAtNextEdge(master, false, true));
    sim.runFor(6 * 8);
    EXPECT_TRUE(bus->wouldAcceptAtNextEdge(master, true, true));
}

TEST_F(AcceptFixture, SplitBusDataPathGatesWritesNotReads)
{
    makeBus(BusKind::Split, 16);
    issueWrite(64); // 4 data cycles
    sim.runFor(6);  // started at cycle 1
    EXPECT_FALSE(bus->wouldAcceptAtNextEdge(master, true, true))
        << "data path busy for a write";
    EXPECT_TRUE(bus->wouldAcceptAtNextEdge(master, true, false))
        << "the address path is free for a read request";
}

TEST_F(AcceptFixture, PendingResponseBlocksMultiplexedBus)
{
    makeBus(BusKind::Multiplexed, 8);
    bool done = false;
    ASSERT_TRUE(bus->requestRead(master, 0x40, 8, false,
                                 [&](Tick, BusStatus,
                                     const std::vector<std::uint8_t> &) {
                                     done = true;
                                 }));
    // Run until the device data is ready but the response has not yet
    // been driven: the response has priority over new requests.
    sim.run([&] { return done; }, 10000);
    EXPECT_TRUE(done);
    // Response record accounts its tenure.
    const auto &records = bus->monitor().records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_GT(records[1].firstDataCycle, records[0].addrCycle);
}

TEST_F(AcceptFixture, TurnaroundDelaysNextEdgeAcceptance)
{
    makeBus(BusKind::Multiplexed, 8, /*turnaround=*/1);
    issueWrite(8);
    // The write starts at cycle 0 and occupies cycles 0-1; cycle 2 is
    // the turnaround, so the bus frees at cycle 3.
    sim.runFor(6); // tick 6 = cycle 1; next edge is cycle 2: refuse
    EXPECT_FALSE(bus->wouldAcceptAtNextEdge(master, true, true));
    sim.runFor(6); // next edge is cycle 3: accept
    EXPECT_TRUE(bus->wouldAcceptAtNextEdge(master, true, true));
}

} // namespace
