/**
 * @file
 * Unit tests for the bus monitor's filtering and the effective-
 * bandwidth metric definition.
 */

#include <gtest/gtest.h>

#include "bus/bus_monitor.hh"

namespace {

using namespace csb;
using bus::BusMonitor;
using bus::TxnKind;
using bus::TxnRecord;

TxnRecord
rec(Addr addr, unsigned size, std::uint64_t addr_cycle,
    std::uint64_t last_data, TxnKind kind = TxnKind::Write)
{
    TxnRecord record;
    record.addr = addr;
    record.size = size;
    record.kind = kind;
    record.addrCycle = addr_cycle;
    record.firstDataCycle = addr_cycle + 1;
    record.lastDataCycle = last_data;
    return record;
}

TEST(BusMonitor, EmptyMonitor)
{
    BusMonitor monitor;
    EXPECT_EQ(monitor.count(), 0u);
    EXPECT_EQ(monitor.bytes(), 0u);
    EXPECT_EQ(monitor.bandwidthBytesPerBusCycle(), 0.0);
    EXPECT_EQ(monitor.firstAddrCycle(), 0u);
    EXPECT_EQ(monitor.lastDataCycle(), 0u);
}

TEST(BusMonitor, BandwidthDefinition)
{
    // 8 bytes in cycles [0..1], 8 bytes in [2..3]: 16 bytes over 4
    // cycles = 4 B/cycle (the paper's half-of-peak reference).
    BusMonitor monitor;
    monitor.record(rec(0x0, 8, 0, 1));
    monitor.record(rec(0x8, 8, 2, 3));
    EXPECT_DOUBLE_EQ(monitor.bandwidthBytesPerBusCycle(), 4.0);
    EXPECT_EQ(monitor.bytes(), 16u);
    EXPECT_EQ(monitor.firstAddrCycle(), 0u);
    EXPECT_EQ(monitor.lastDataCycle(), 3u);
}

TEST(BusMonitor, TrailingGapNotCharged)
{
    // A single 2-cycle transaction: the window is exactly its tenure
    // regardless of what idle time follows.
    BusMonitor monitor;
    monitor.record(rec(0x0, 8, 10, 11));
    EXPECT_DOUBLE_EQ(monitor.bandwidthBytesPerBusCycle(), 4.0);
}

TEST(BusMonitor, PredicatesFilter)
{
    BusMonitor monitor;
    monitor.record(rec(0x1000, 8, 0, 1));
    monitor.record(rec(0x2000'0000, 64, 2, 10));
    monitor.record(rec(0x2000'0040, 8, 11, 11, TxnKind::ReadReq));

    auto io_writes = [](const TxnRecord &record) {
        return record.kind == TxnKind::Write &&
               record.addr >= 0x2000'0000;
    };
    EXPECT_EQ(monitor.count(io_writes), 1u);
    EXPECT_EQ(monitor.bytes(io_writes), 64u);
    EXPECT_EQ(monitor.firstAddrCycle(io_writes), 2u);
    EXPECT_EQ(monitor.lastDataCycle(io_writes), 10u);
    EXPECT_NEAR(monitor.bandwidthBytesPerBusCycle(io_writes),
                64.0 / 9.0, 1e-12);
}

TEST(BusMonitor, ClearStartsFreshWindow)
{
    BusMonitor monitor;
    monitor.record(rec(0x0, 8, 0, 1));
    monitor.clear();
    EXPECT_EQ(monitor.count(), 0u);
    monitor.record(rec(0x0, 8, 100, 101));
    EXPECT_EQ(monitor.firstAddrCycle(), 100u);
}

} // namespace
