# Test driver for the litmus_jobs_identical ctest entry: the same seed
# sweep run serially (--jobs 1) and on the worker pool (--jobs 4) must
# print a byte-identical report -- the executable statement of the
# harness's determinism contract (docs/LITMUS.md).  Invoked as
#   cmake -DLITMUS=... -DOUT_DIR=... -P this
foreach(jobs 1 4)
    execute_process(
        COMMAND ${LITMUS} --first-seed 1 --seeds 32 --jobs ${jobs}
        RESULT_VARIABLE litmus_rc
        OUTPUT_FILE ${OUT_DIR}/litmus_jobs${jobs}.txt
        ERROR_QUIET)
    if(NOT litmus_rc EQUAL 0)
        message(FATAL_ERROR
                "${LITMUS} --jobs ${jobs} failed (rc=${litmus_rc})")
    endif()
endforeach()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/litmus_jobs1.txt ${OUT_DIR}/litmus_jobs4.txt
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR "--jobs 1 and --jobs 4 reports differ")
endif()
