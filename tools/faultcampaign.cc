/**
 * @file
 * The fault-campaign runner (docs/FAULTS.md).
 *
 *   tools/faultcampaign [--scenarios a,b|all] [--seeds N] [--jobs N]
 *                       [--json FILE] [--gate]
 *     Run each built-in campaign scenario across a seed sweep on a
 *     SweepRunner pool and print one robustness scorecard per
 *     scenario.  The report on stdout is byte-identical at any
 *     --jobs.  With --gate, exit 0 iff every run recovered with zero
 *     lost and zero duplicated messages.
 *
 *   tools/faultcampaign --schedule SPEC [--crash-leg N] ...
 *     Run a single custom scenario built from the flags instead of
 *     the built-in set.
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/sweep.hh"
#include "sim/logging.hh"

namespace {

using namespace csb;

/** The built-in campaign set (docs/FAULTS.md documents each). */
std::vector<core::CampaignScenario>
builtinScenarios()
{
    std::vector<core::CampaignScenario> all;

    // Window placement: a clean 3x12-message leg lasts ~2500 ticks,
    // so adversity is concentrated in the first ~2 legs and the
    // campaign proves recovery by finishing clean afterwards.

    core::CampaignScenario burst;
    burst.name = "burst-nack";
    burst.schedule = "burst:bus-write-nack:1000..6000:0.3";
    all.push_back(burst);

    core::CampaignScenario hang;
    hang.name = "device-hang";
    hang.deviceLines = 6;
    hang.schedule = "hang:2000..3500";
    all.push_back(hang);

    core::CampaignScenario flap;
    flap.name = "link-flap";
    flap.schedule = "flap:1000..30000";
    all.push_back(flap);

    core::CampaignScenario storm;
    storm.name = "ack-storm";
    storm.schedule = "storm:ack-drop:1000..20000:0.05x2/3000";
    all.push_back(storm);

    core::CampaignScenario brown;
    brown.name = "brownout-locked";
    brown.useCsb = false;
    brown.schedule = "brownout:bus-write-nack:1000..20000:4000/1500:0.5";
    all.push_back(brown);

    // The acceptance scenario: a 30% NACK burst, a device hang and a
    // mid-campaign crash-restart in one run.
    core::CampaignScenario combined;
    combined.name = "combined";
    combined.schedule =
        "burst:bus-write-nack:1000..12000:0.3;hang:3000..7000";
    combined.crashAfterLeg = 1;
    combined.crashAfterTicks = 1500;
    all.push_back(combined);

    return all;
}

void
usage(std::ostream &os)
{
    os << "usage: faultcampaign [options]\n"
          "  --scenarios LIST   comma-separated names, or 'all' "
          "(default all)\n"
          "  --list             print scenario names and exit\n"
          "  --first-seed N     first campaign seed (default 1)\n"
          "  --seeds N          seeds per scenario (default 10)\n"
          "  --jobs N           worker threads; 0 = all cores "
          "(default 1)\n"
          "  --json FILE        also write the scorecards as JSON\n"
          "  --gate             exit 1 unless every run recovered "
          "with\n"
          "                     zero lost/duplicated messages\n"
          "custom-scenario mode (replaces the built-in set):\n"
          "  --schedule SPEC    fault schedule (docs/FAULTS.md "
          "grammar)\n"
          "  --legs N           workload legs (default 3)\n"
          "  --messages N       messages per leg (default 12)\n"
          "  --device-lines N   device lines per leg (default 4)\n"
          "  --locked           lock-protected PIO instead of the "
          "CSB\n"
          "  --crash-leg N      crash inside leg N (default: no "
          "crash)\n"
          "  --crash-ticks N    ticks into the crash leg (default "
          "20000)\n";
}

std::uint64_t
parseU64(const char *flag, const char *val)
{
    try {
        return std::stoull(val, nullptr, 0);
    } catch (...) {
        std::cerr << "faultcampaign: bad value for " << flag << ": "
                  << val << "\n";
        std::exit(2);
    }
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (c == '\n')
            os << "\\n";
        else
            os << c;
    }
}

void
writeJson(std::ostream &os,
          const std::vector<core::CampaignScenario> &scenarios,
          const std::vector<std::vector<core::CampaignResult>> &results,
          const std::vector<std::uint64_t> &seeds)
{
    os << "{\n  \"scenarios\": [\n";
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        const core::CampaignScenario &sc = scenarios[s];
        core::CampaignSummary sum = core::summarize(results[s]);
        os << "    {\n      \"name\": \"";
        jsonEscape(os, sc.name);
        os << "\",\n      \"schedule\": \"";
        jsonEscape(os, sc.schedule);
        os << "\",\n      \"useCsb\": " << (sc.useCsb ? "true" : "false")
           << ",\n      \"crashAfterLeg\": " << sc.crashAfterLeg
           << ",\n      \"runs\": " << sum.runs
           << ",\n      \"recoveredRuns\": " << sum.recoveredRuns
           << ",\n      \"recoveryRate\": " << sum.recoveryRate
           << ",\n      \"totalLost\": " << sum.totalLost
           << ",\n      \"totalDuplicated\": " << sum.totalDuplicated
           << ",\n      \"totalFaultsInjected\": "
           << sum.totalFaultsInjected
           << ",\n      \"totalLinkResets\": " << sum.totalLinkResets
           << ",\n      \"totalDegradedEntries\": "
           << sum.totalDegradedEntries
           << ",\n      \"totalHealthViolations\": "
           << sum.totalHealthViolations
           << ",\n      \"meanMttrTicks\": " << sum.meanMttrTicks
           << ",\n      \"meanDegradedResidency\": "
           << sum.meanDegradedResidency << ",\n      \"perSeed\": [\n";
        for (std::size_t i = 0; i < results[s].size(); ++i) {
            const core::CampaignResult &r = results[s][i];
            os << "        {\"seed\": " << seeds[i]
               << ", \"recovered\": " << (r.recovered ? "true" : "false")
               << ", \"legsCompleted\": " << r.legsCompleted
               << ", \"crashed\": " << (r.crashed ? "true" : "false")
               << ", \"sent\": " << r.messagesSent
               << ", \"delivered\": " << r.delivered
               << ", \"lost\": " << r.lost
               << ", \"duplicated\": " << r.duplicated
               << ", \"faultsInjected\": " << r.faultsInjected
               << ", \"linkResets\": " << r.linkResets
               << ", \"degradedEntries\": " << r.degradedEntries
               << ", \"mttrTicks\": " << r.mttrTicks
               << ", \"healthViolations\": " << r.healthViolations
               << ", \"endTick\": " << r.endTick << "}"
               << (i + 1 < results[s].size() ? "," : "") << '\n';
        }
        os << "      ]\n    }"
           << (s + 1 < scenarios.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenarioList = "all";
    std::uint64_t firstSeed = 1;
    std::uint64_t numSeeds = 10;
    unsigned jobs = 1;
    std::string jsonPath;
    bool gate = false;
    bool list = false;

    core::CampaignScenario custom;
    custom.name = "custom";
    bool haveCustom = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "faultcampaign: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(arg, "--scenarios")) {
            scenarioList = next();
        } else if (!std::strcmp(arg, "--list")) {
            list = true;
        } else if (!std::strcmp(arg, "--first-seed")) {
            firstSeed = parseU64(arg, next());
        } else if (!std::strcmp(arg, "--seeds")) {
            numSeeds = parseU64(arg, next());
        } else if (!std::strcmp(arg, "--jobs")) {
            jobs = static_cast<unsigned>(parseU64(arg, next()));
        } else if (!std::strcmp(arg, "--json")) {
            jsonPath = next();
        } else if (!std::strcmp(arg, "--gate")) {
            gate = true;
        } else if (!std::strcmp(arg, "--schedule")) {
            custom.schedule = next();
            haveCustom = true;
        } else if (!std::strcmp(arg, "--legs")) {
            custom.legs = static_cast<unsigned>(parseU64(arg, next()));
            haveCustom = true;
        } else if (!std::strcmp(arg, "--messages")) {
            custom.messagesPerLeg =
                static_cast<unsigned>(parseU64(arg, next()));
            haveCustom = true;
        } else if (!std::strcmp(arg, "--device-lines")) {
            custom.deviceLines =
                static_cast<unsigned>(parseU64(arg, next()));
            haveCustom = true;
        } else if (!std::strcmp(arg, "--locked")) {
            custom.useCsb = false;
            haveCustom = true;
        } else if (!std::strcmp(arg, "--crash-leg")) {
            custom.crashAfterLeg =
                static_cast<int>(parseU64(arg, next()));
            haveCustom = true;
        } else if (!std::strcmp(arg, "--crash-ticks")) {
            custom.crashAfterTicks = parseU64(arg, next());
            haveCustom = true;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "faultcampaign: unknown option " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    std::vector<core::CampaignScenario> scenarios;
    if (haveCustom) {
        scenarios.push_back(custom);
    } else {
        std::vector<core::CampaignScenario> all = builtinScenarios();
        if (list) {
            for (const core::CampaignScenario &sc : all)
                std::cout << sc.name << '\n';
            return 0;
        }
        if (scenarioList == "all") {
            scenarios = all;
        } else {
            std::stringstream ss(scenarioList);
            std::string name;
            while (std::getline(ss, name, ',')) {
                bool found = false;
                for (const core::CampaignScenario &sc : all) {
                    if (sc.name == name) {
                        scenarios.push_back(sc);
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    std::cerr << "faultcampaign: unknown scenario '"
                              << name << "' (try --list)\n";
                    return 2;
                }
            }
        }
    }
    if (scenarios.empty()) {
        std::cerr << "faultcampaign: no scenarios selected\n";
        return 2;
    }

    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 0; s < numSeeds; ++s)
        seeds.push_back(firstSeed + s);

    core::SweepRunner runner(jobs);
    std::vector<std::vector<core::CampaignResult>> results;
    bool allRecovered = true;
    try {
        for (const core::CampaignScenario &sc : scenarios) {
            results.push_back(runner.map(
                seeds, [&sc](std::uint64_t seed) {
                    return core::runCampaign(sc, seed);
                }));
            for (const core::CampaignResult &r : results.back())
                allRecovered = allRecovered && r.recovered;
        }
    } catch (const FatalError &e) {
        std::cerr << "faultcampaign: " << e.what() << "\n";
        return 1;
    }

    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        core::renderCampaignTable(std::cout, scenarios[s], results[s],
                                  seeds);
        std::cout << '\n';
    }

    if (!jsonPath.empty()) {
        std::ofstream jf(jsonPath, std::ios::binary);
        if (!jf) {
            std::cerr << "faultcampaign: cannot write " << jsonPath
                      << "\n";
            return 1;
        }
        writeJson(jf, scenarios, results, seeds);
    }

    if (gate && !allRecovered) {
        std::cerr << "faultcampaign: GATE FAILED -- at least one run "
                     "did not recover cleanly\n";
        return 1;
    }
    return 0;
}
