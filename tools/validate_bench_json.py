#!/usr/bin/env python3
"""Validate a csbsim bench artifact against tools/bench_schema.json.

Implements the small JSON-Schema subset the schema actually uses
(type / const / required / properties / additionalProperties / items)
with the Python standard library only, so the check runs anywhere the
simulator builds -- no jsonschema package required.

Usage: validate_bench_json.py <artifact.json> [<schema.json>]
Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import pathlib
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _check_type(value, expected, path):
    if expected == "number":
        # bool is an int subclass; a bare true/false is not a number.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{path}: expected number, got "
                             f"{type(value).__name__}")
        return
    if expected == "integer":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{path}: expected integer, got "
                             f"{type(value).__name__}")
        return
    py = _TYPES.get(expected)
    if py is None:
        raise ValueError(f"{path}: schema uses unsupported type "
                         f"'{expected}'")
    if expected != "null" and isinstance(value, bool) and py is not bool:
        raise ValueError(f"{path}: expected {expected}, got bool")
    if not isinstance(value, py):
        raise ValueError(f"{path}: expected {expected}, got "
                         f"{type(value).__name__}")


def validate(value, schema, path="$"):
    """Recursively check `value` against the schema subset."""
    if "const" in schema:
        if value != schema["const"]:
            raise ValueError(f"{path}: expected constant "
                             f"{schema['const']!r}, got {value!r}")
        return
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                raise ValueError(f"{path}: missing required key "
                                 f"{key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}")
        # Schema-object form only: validate keys not named in
        # `properties` (e.g. the free-form scorecard metrics).
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            named = schema.get("properties", {})
            for key, item in value.items():
                if key not in named:
                    validate(item, extra, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 1
    artifact_path = pathlib.Path(argv[1])
    schema_path = (pathlib.Path(argv[2]) if len(argv) == 3 else
                   pathlib.Path(__file__).resolve().parent /
                   "bench_schema.json")
    try:
        artifact = json.loads(artifact_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {artifact_path}: {err}",
              file=sys.stderr)
        return 1
    schema = json.loads(schema_path.read_text())
    try:
        validate(artifact, schema)
    except ValueError as err:
        print(f"error: {artifact_path}: {err}", file=sys.stderr)
        return 1
    tables = artifact.get("tables", [])
    for t, table in enumerate(tables):
        width = len(table["columns"])
        for r, row in enumerate(table["rows"]):
            if len(row["values"]) != width:
                print(f"error: {artifact_path}: tables[{t}].rows[{r}] "
                      f"has {len(row['values'])} values for {width} "
                      f"columns", file=sys.stderr)
                return 1
    print(f"{artifact_path}: OK ({artifact['name']}, "
          f"{len(tables)} table(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
