/**
 * @file
 * The litmus CLI (docs/LITMUS.md).
 *
 * Two modes:
 *
 *   tools/litmus --seeds 1000 [--jobs N] [--full-matrix] ...
 *     Sweep generator seeds through the differential oracle; print the
 *     deterministic report on stdout (byte-identical at any --jobs),
 *     timing on stderr.  Exit 0 iff no seed failed -- unless
 *     --expect-failures, which inverts the condition for the
 *     drop-flush self-test.
 *
 *   tools/litmus --corpus tests/litmus/corpus
 *     Replay every checked-in regression entry.  Exit 0 iff every
 *     entry behaves as its `expect` directive says and every repro
 *     trace is reproduced byte-for-byte.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "litmus/harness.hh"
#include "sim/logging.hh"

namespace {

using namespace csb;

void
usage(std::ostream &os)
{
    os << "usage: litmus [options]\n"
          "  --first-seed N       first generator seed (default 1)\n"
          "  --seeds N            number of seeds to sweep (default 100)\n"
          "  --jobs N             worker threads; 0 = all cores "
          "(default 1)\n"
          "  --time-budget SEC    soft wall-clock cap, checked between "
          "batches\n"
          "  --full-matrix        all scheme x mode x faults points per "
          "seed\n"
          "  --tokens N           mean tokens per context (default 12)\n"
          "  --drop-flush RATE    arm the CsbFlushDrop bug knob "
          "(self-test)\n"
          "  --fault-schedule S   schedule for the scheduled-fault "
          "axis\n"
          "                       (docs/FAULTS.md grammar; 'none' "
          "disables)\n"
          "  --translate-ref      dispatch the sequential oracle via "
          "the\n"
          "                       translated fast path (result-"
          "invariant)\n"
          "  --translate-core     run every cycle-model spec with "
          "cpu\n"
          "                       fast-forward (cpu.translate=core-"
          "fastforward)\n"
          "  --no-shrink          report original failing cases "
          "unshrunk\n"
          "  --repro-dir DIR      write seed_<N>.litmus/.csbt repros "
          "here\n"
          "  --report FILE        also write the report to FILE\n"
          "  --expect-failures    exit 0 iff failures were found\n"
          "  --max-instructions N fail if a shrunk repro exceeds N "
          "lowered\n"
          "                       instructions\n"
          "  --corpus DIR         replay the regression corpus instead\n";
}

std::uint64_t
parseU64(const char *flag, const char *val)
{
    try {
        return std::stoull(val, nullptr, 0);
    } catch (...) {
        std::cerr << "litmus: bad value for " << flag << ": " << val
                  << "\n";
        std::exit(2);
    }
}

double
parseF64(const char *flag, const char *val)
{
    try {
        return std::stod(val);
    } catch (...) {
        std::cerr << "litmus: bad value for " << flag << ": " << val
                  << "\n";
        std::exit(2);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    litmus::HarnessOptions opts;
    std::string corpus_dir;
    std::string report_file;
    bool expect_failures = false;
    std::uint64_t max_instructions = 0;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "litmus: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(arg, "--first-seed")) {
            opts.firstSeed = parseU64(arg, value());
        } else if (!std::strcmp(arg, "--seeds")) {
            opts.numSeeds = parseU64(arg, value());
        } else if (!std::strcmp(arg, "--jobs")) {
            opts.jobs = unsigned(parseU64(arg, value()));
        } else if (!std::strcmp(arg, "--time-budget")) {
            opts.timeBudgetSec = parseF64(arg, value());
        } else if (!std::strcmp(arg, "--full-matrix")) {
            opts.fullMatrix = true;
        } else if (!std::strcmp(arg, "--tokens")) {
            opts.tokensPerContext = unsigned(parseU64(arg, value()));
        } else if (!std::strcmp(arg, "--drop-flush")) {
            opts.dropFlushRate = parseF64(arg, value());
        } else if (!std::strcmp(arg, "--fault-schedule")) {
            const char *spec = value();
            opts.faultSchedule = std::strcmp(spec, "none") ? spec : "";
        } else if (!std::strcmp(arg, "--translate-ref")) {
            opts.translateRef = true;
        } else if (!std::strcmp(arg, "--translate-core")) {
            opts.translateCore = true;
        } else if (!std::strcmp(arg, "--no-shrink")) {
            opts.shrinkFailures = false;
        } else if (!std::strcmp(arg, "--repro-dir")) {
            opts.reproDir = value();
        } else if (!std::strcmp(arg, "--report")) {
            report_file = value();
        } else if (!std::strcmp(arg, "--expect-failures")) {
            expect_failures = true;
        } else if (!std::strcmp(arg, "--max-instructions")) {
            max_instructions = parseU64(arg, value());
        } else if (!std::strcmp(arg, "--corpus")) {
            corpus_dir = value();
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "litmus: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    try {
        if (!corpus_dir.empty()) {
            litmus::CorpusResult corpus =
                litmus::replayCorpus(corpus_dir);
            std::cout << corpus.report;
            return corpus.failures == 0 ? 0 : 1;
        }

        if (opts.numSeeds == 0) {
            std::cerr << "litmus: --seeds must be positive\n";
            return 2;
        }

        auto start = std::chrono::steady_clock::now();
        litmus::HarnessResult result = litmus::runHarness(opts);
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        std::cout << result.report;
        if (!report_file.empty()) {
            std::ofstream out(report_file);
            out << result.report;
            if (!out) {
                std::cerr << "litmus: cannot write " << report_file
                          << "\n";
                return 2;
            }
        }
        // Timing never goes into the report: the report must be
        // byte-identical across hosts and --jobs values.
        std::cerr << "litmus: " << result.seedsRun << " seeds in "
                  << elapsed.count() << " s, jobs=" << opts.jobs
                  << "\n";

        if (max_instructions > 0 &&
            result.maxShrunkInstructions > max_instructions) {
            std::cerr << "litmus: a shrunk repro has "
                      << result.maxShrunkInstructions
                      << " lowered instructions, cap was "
                      << max_instructions << "\n";
            return 1;
        }
        if (expect_failures)
            return result.seedsFailed > 0 ? 0 : 1;
        return result.seedsFailed == 0 ? 0 : 1;
    } catch (const FatalError &err) {
        std::cerr << "litmus: fatal: " << err.what() << "\n";
        return 2;
    }
}
