#!/usr/bin/env python3
"""Documentation consistency gate (the `docs_check` ctest target).

Two checks, both stdlib-only:

1. Every intra-repository markdown link in the scanned documents
   resolves to an existing file (or directory).  External links
   (http/https/mailto) and pure in-page anchors are ignored; a
   `#fragment` suffix on a file link is stripped before the existence
   check (fragments are not validated).

2. Every `docs/*.md` file is referenced from README.md's
   "Documentation index" section, so a new document cannot be added
   without surfacing it where readers start.

Scanned documents: README.md, DESIGN.md, EXPERIMENTS.md and every
`docs/*.md`.  Exit status 0 when clean, 1 with one line per problem
on stderr otherwise.

Usage:
    tools/docs_check.py [--repo-root DIR]
"""

import argparse
import pathlib
import re
import sys

# [text](target) with no whitespace in target; inline code spans never
# match because the target may not contain backticks-with-spaces.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def scanned_documents(root):
    docs = [root / "README.md", root / "DESIGN.md",
            root / "EXPERIMENTS.md"]
    docs.extend(sorted((root / "docs").glob("*.md")))
    return [d for d in docs if d.is_file()]


def check_links(root, doc, errors):
    text = doc.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                errors.append(f"{doc.relative_to(root)}:{lineno}: "
                              f"link escapes the repository: {target}")
                continue
            if not resolved.exists():
                errors.append(f"{doc.relative_to(root)}:{lineno}: "
                              f"broken link: {target}")


def check_readme_index(root, errors):
    readme = root / "README.md"
    text = readme.read_text(encoding="utf-8")
    heading = "## Documentation index"
    start = text.find(heading)
    if start < 0:
        errors.append("README.md: missing a '## Documentation index' "
                      "section")
        return
    # The index section runs to the next H2 heading.
    stop = text.find("\n## ", start + len(heading))
    index = text[start:stop if stop > 0 else len(text)]
    for doc in sorted((root / "docs").glob("*.md")):
        ref = f"docs/{doc.name}"
        if ref not in index:
            errors.append(f"README.md: documentation index does not "
                          f"reference {ref}")


def main(argv):
    parser = argparse.ArgumentParser(
        description="check markdown links and the README doc index")
    parser.add_argument(
        "--repo-root",
        default=str(pathlib.Path(__file__).resolve().parent.parent))
    args = parser.parse_args(argv[1:])
    root = pathlib.Path(args.repo_root)

    errors = []
    docs = scanned_documents(root)
    for doc in docs:
        check_links(root, doc, errors)
    check_readme_index(root, errors)

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        print(f"docs_check: {len(docs)} documents, all intra-repo "
              f"links resolve, README index complete")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
