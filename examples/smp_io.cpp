/**
 * @file
 * An SMP node pushing I/O: the setting the paper's introduction is
 * about.  Two processors stream store bursts to the shared I/O device
 * concurrently -- first with conventional uncached stores, then
 * through their private conditional store buffers -- and the example
 * reports how much I/O the node squeezed through the shared bus and
 * how long the node was busy.
 */

#include <cstdio>
#include <iostream>

#include "core/config_printer.hh"
#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;

struct NodeResult
{
    double busWindowCycles = 0;
    double aggregateBandwidth = 0;
    Tick completion = 0;
};

NodeResult
runNode(bool use_csb, bool print_config)
{
    core::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.bus.ratio = 6;
    cfg.enableCsb = use_csb;
    if (!use_csb)
        cfg.ubuf.combineBytes = 0; // conventional uncached stores
    cfg.normalize();
    core::System system(cfg);
    if (print_config)
        core::printConfig(cfg, std::cout);

    constexpr unsigned bytes_per_core = 1024;
    Addr base0 = use_csb ? core::System::ioCsbBase
                         : core::System::ioUncachedBase;
    Addr base1 = base0 + 0x10000;
    isa::Program p0 =
        use_csb ? core::makeCsbStoreKernel(base0, bytes_per_core, 64)
                : core::makeStoreKernel(base0, bytes_per_core);
    isa::Program p1 =
        use_csb ? core::makeCsbStoreKernel(base1, bytes_per_core, 64)
                : core::makeStoreKernel(base1, bytes_per_core);

    system.core(0).loadProgram(&p0, 1);
    system.core(1).loadProgram(&p1, 2);
    system.simulator().run(
        [&] {
            return system.core(0).halted() && system.core(1).halted() &&
                   system.quiescent();
        },
        10'000'000);

    NodeResult result;
    result.busWindowCycles =
        static_cast<double>(system.ioWriteBusCycles());
    result.aggregateBandwidth =
        2.0 * bytes_per_core / result.busWindowCycles;
    result.completion = system.simulator().curTick();
    return result;
}

} // namespace

int
main()
{
    std::puts("Two processors of one node each send 1 KiB of I/O "
              "stores to the shared bus.\n");

    NodeResult plain = runNode(/*use_csb=*/false, /*print_config=*/true);
    std::puts("");
    NodeResult with_csb = runNode(/*use_csb=*/true,
                                  /*print_config=*/false);

    std::printf("%-28s %18s %18s\n", "", "uncached stores",
                "conditional store buf");
    std::printf("%-28s %18.0f %18.0f\n", "bus window (bus cycles)",
                plain.busWindowCycles, with_csb.busWindowCycles);
    std::printf("%-28s %18.2f %18.2f\n",
                "aggregate I/O (B/bus cycle)", plain.aggregateBandwidth,
                with_csb.aggregateBandwidth);
    std::printf("%-28s %18llu %18llu\n", "node done at (CPU cycles)",
                static_cast<unsigned long long>(plain.completion),
                static_cast<unsigned long long>(with_csb.completion));

    std::printf("\nWith private CSBs the same node finishes its I/O in "
                "%.0f%% of the time,\nmoving %.1fx the bytes per bus "
                "cycle -- the bus-occupancy relief the paper\ntargets "
                "for multiprocessor nodes.\n",
                100.0 * static_cast<double>(with_csb.completion) /
                    static_cast<double>(plain.completion),
                with_csb.aggregateBandwidth / plain.aggregateBandwidth);
    return 0;
}
