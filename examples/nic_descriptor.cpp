/**
 * @file
 * Atomic device access under competition -- the scenario that
 * motivates the CSB's non-blocking synchronization (section 3.2).
 *
 * Two processes share one core under a preemptive round-robin
 * scheduler.  Each pushes multi-word DMA descriptors into the network
 * interface's descriptor page through the conditional store buffer.
 * When a process is preempted between its combining stores and its
 * conditional flush, the competitor's first combining store clears
 * the buffer; the victim's flush then FAILS (returns 0) and its
 * software retries -- no locks, no deadlock, and every descriptor
 * arrives at the device exactly once.
 */

#include <cstdio>
#include <cstring>

#include "core/system.hh"
#include "cpu/context_scheduler.hh"
#include "io/network_interface.hh"
#include "isa/program.hh"

namespace {

using namespace csb;
using isa::ir;

/**
 * Program: push `count` descriptor blocks (4 descriptors each, 32
 * bytes) atomically through the CSB, tagged with `tag` in the length
 * field so the host can attribute them.
 */
isa::Program
makeDescriptorPusher(Addr desc_base, unsigned count, unsigned tag)
{
    isa::Program p;
    p.li(ir(1), static_cast<std::int64_t>(desc_base));
    for (unsigned i = 0; i < count; ++i) {
        // Each descriptor: {source address, length}; length carries
        // the process tag (values chosen to stay non-zero).
        for (int d = 0; d < 4; ++d) {
            p.li(ir(2 + d),
                 static_cast<std::int64_t>(io::packDescriptor(
                     0x10000 + i * 0x100 + static_cast<unsigned>(d) * 8,
                     static_cast<std::uint16_t>(tag))));
        }
        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), 4);
        p.std_(ir(2), ir(1), 0);
        p.std_(ir(3), ir(1), 8);
        p.std_(ir(4), ir(1), 16);
        p.std_(ir(5), ir(1), 24);
        p.swap(ir(9), ir(1), 0); // conditional flush
        p.li(ir(10), 4);
        p.bne(ir(9), ir(10), retry);
    }
    p.halt();
    p.finalize();
    return p;
}

} // namespace

int
main()
{
    core::SystemConfig cfg;
    cfg.bus.ratio = 6;
    cfg.enableCsb = true;
    cfg.enableNi = true;
    // Slow the wire down so DMA jobs overlap with the competition.
    cfg.ni.wireTicksPerByte = 1.0;
    cfg.normalize();
    core::System system(cfg);

    Addr desc = core::System::niBase + io::NiMap::descBase;
    isa::Program prog_a = makeDescriptorPusher(desc, 6, /*tag=*/100);
    isa::Program prog_b = makeDescriptorPusher(desc, 6, /*tag=*/200);

    // A short quantum maximizes preemptions inside store sequences.
    cpu::ContextScheduler scheduler(system.simulator(), system.core(),
                                    /*quantum=*/40, "sched");
    scheduler.addProcess(&prog_a, /*pid=*/1);
    scheduler.addProcess(&prog_b, /*pid=*/2);
    scheduler.start();

    system.simulator().run(
        [&] { return scheduler.allFinished() && system.quiescent(); },
        2'000'000);

    auto &csb_unit = *system.csb();
    std::printf("Preemptions:            %g\n",
                scheduler.preemptions.value());
    std::printf("Conditional flushes:    %g (%g failed and retried)\n",
                csb_unit.flushesAttempted.value(),
                csb_unit.flushesFailed.value());
    std::printf("Store-sequence clears:  %g\n",
                csb_unit.conflictsOnStore.value());

    // Exactly-once check: each process pushed 6 blocks x 4
    // descriptors, each descriptor tagged with its process in the
    // length field; the NI turned each into one DMA message of that
    // length.  Count delivered messages per tag.
    unsigned from_a = 0;
    unsigned from_b = 0;
    for (const auto &msg : system.ni()->delivered()) {
        if (msg.payload.size() == 100)
            ++from_a;
        else if (msg.payload.size() == 200)
            ++from_b;
    }
    std::printf("Descriptors delivered:  %u from process A, %u from "
                "process B\n", from_a, from_b);
    bool exactly_once = from_a == 6 * 4 && from_b == 6 * 4;
    std::printf("Exactly-once delivery:  %s\n",
                exactly_once ? "PASS" : "FAIL");
    std::printf("\nEvery failed flush was recovered by software retry; "
                "no locks were needed.\n");
    return exactly_once ? 0 : 1;
}
