/**
 * @file
 * Per-message overhead of fine-grain communication: the workload the
 * paper's introduction motivates (NOW-style clusters where speedup is
 * limited by per-message overhead, average message sizes 19-230
 * bytes, Mukherjee & Hill).
 *
 * Sends a burst of short messages through the network interface two
 * ways -- lock-protected PIO and CSB PIO -- and reports the per-
 * message CPU overhead and total completion time.
 */

#include <cstdio>

#include "core/system.hh"
#include "io/network_interface.hh"
#include "isa/program.hh"

namespace {

using namespace csb;
using isa::ir;

constexpr unsigned kMessages = 16;
constexpr unsigned kMessageBytes = 64; // a typical short message

isa::Program
makeLockedSender(Addr lock, Addr pio, Addr bell)
{
    isa::Program p;
    for (int r = 2; r <= 8; ++r)
        p.li(ir(r), 0x4242424242424242ULL);
    p.li(ir(1), static_cast<std::int64_t>(pio));
    p.li(ir(10), static_cast<std::int64_t>(lock));
    p.li(ir(14), static_cast<std::int64_t>(bell));
    p.li(ir(13), kMessageBytes);
    p.mark(0);
    for (unsigned m = 0; m < kMessages; ++m) {
        p.li(ir(11), 1);
        isa::Label spin = p.newLabel();
        p.bind(spin);
        p.swap(ir(11), ir(10), 0);
        p.bne(ir(11), ir(0), spin);
        p.membar();
        for (unsigned off = 0; off < kMessageBytes; off += 8)
            p.std_(ir(2 + (off / 8) % 7), ir(1), off);
        p.membar();
        p.std_(ir(13), ir(14), 0); // doorbell
        p.membar();
        p.li(ir(12), 0);
        p.std_(ir(12), ir(10), 0); // release
    }
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

isa::Program
makeCsbSender(Addr pio, Addr bell)
{
    isa::Program p;
    for (int r = 2; r <= 8; ++r)
        p.li(ir(r), 0x4242424242424242ULL);
    p.li(ir(1), static_cast<std::int64_t>(pio));
    p.li(ir(14), static_cast<std::int64_t>(bell));
    p.li(ir(13), kMessageBytes);
    p.mark(0);
    for (unsigned m = 0; m < kMessages; ++m) {
        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), kMessageBytes / 8);
        for (unsigned off = 0; off < kMessageBytes; off += 8)
            p.std_(ir(2 + (off / 8) % 7), ir(1), off);
        p.swap(ir(9), ir(1), 0); // conditional flush: atomic message
        p.li(ir(12), kMessageBytes / 8);
        p.bne(ir(9), ir(12), retry);
        p.membar();
        p.std_(ir(13), ir(14), 0); // doorbell
    }
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

struct RunResult
{
    double cpuCycles = 0;
    double messages = 0;
};

RunResult
runSender(bool use_csb)
{
    core::SystemConfig cfg;
    cfg.bus.ratio = 6;
    cfg.enableCsb = use_csb;
    cfg.enableNi = true;
    cfg.normalize();
    core::System system(cfg);

    Addr pio = core::System::niBase + io::NiMap::pioBase;
    Addr bell = core::System::niBase + io::NiMap::doorbell;
    constexpr Addr lock = 0x4000;
    system.caches().touch(lock);

    isa::Program p = use_csb ? makeCsbSender(pio, bell)
                             : makeLockedSender(lock, pio, bell);
    system.run(p);

    RunResult result;
    result.cpuCycles = static_cast<double>(system.core().markTime(1) -
                                           system.core().markTime(0));
    result.messages = system.ni()->pioMessages.value();
    return result;
}

} // namespace

int
main()
{
    RunResult locked = runSender(/*use_csb=*/false);
    RunResult via_csb = runSender(/*use_csb=*/true);

    std::printf("Sending %u messages of %u bytes each (PIO):\n\n",
                kMessages, kMessageBytes);
    std::printf("  mechanism   messages   total CPU cycles   "
                "cycles/message\n");
    std::printf("  lock+PIO    %8.0f   %16.0f   %14.1f\n",
                locked.messages, locked.cpuCycles,
                locked.cpuCycles / kMessages);
    std::printf("  CSB PIO     %8.0f   %16.0f   %14.1f\n",
                via_csb.messages, via_csb.cpuCycles,
                via_csb.cpuCycles / kMessages);
    std::printf("\nCSB saves %.1f cycles of overhead per message "
                "(%.1fx faster send path).\n",
                (locked.cpuCycles - via_csb.cpuCycles) / kMessages,
                locked.cpuCycles / via_csb.cpuCycles);
    std::printf("A NOW-study observation (paper section 2): program "
                "performance is more\nsensitive to per-message overhead "
                "than to latency -- this is the overhead\nthe CSB "
                "removes.\n");
    return 0;
}
