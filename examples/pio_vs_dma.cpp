/**
 * @file
 * Where is the PIO/DMA break-even point, and how far does the CSB
 * move it?  (Paper section 5: "The CSB moves the break-even point
 * between PIO and DMA towards bigger messages, potentially completely
 * eliminating the need for DMA on the send side.")
 *
 * For each message size this example measures send latency (first
 * instruction until the last payload byte enters the NI wire) for
 * conventional lock-protected PIO, CSB PIO, and descriptor-kicked
 * DMA, then reports both break-even points.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiments.hh"

int
main()
{
    namespace core = csb::core;

    core::BandwidthSetup setup;
    setup.bus.kind = csb::bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = 6;
    setup.lineBytes = 64;

    const std::vector<unsigned> sizes = {16,  32,  64,  128, 192,
                                         256, 384, 512, 1024, 2048};

    std::printf("message   lock+PIO    CSB+PIO        DMA   best\n");
    unsigned break_locked = 0;
    unsigned break_csb = 0;
    for (unsigned size : sizes) {
        core::MessageLatency lat =
            core::measureMessageLatency(setup, size);
        const char *best = "lock+PIO";
        double best_val = lat.pioLockedCycles;
        if (lat.pioCsbCycles < best_val) {
            best = "CSB+PIO";
            best_val = lat.pioCsbCycles;
        }
        if (lat.dmaCycles < best_val)
            best = "DMA";
        std::printf("%-9u %8.0f %10.0f %10.0f   %s\n", size,
                    lat.pioLockedCycles, lat.pioCsbCycles, lat.dmaCycles,
                    best);
        if (break_locked == 0 && lat.dmaCycles < lat.pioLockedCycles)
            break_locked = size;
        if (break_csb == 0 && lat.dmaCycles < lat.pioCsbCycles)
            break_csb = size;
    }

    auto show = [](unsigned v) {
        return v ? std::to_string(v) : std::string(">2048");
    };
    std::printf("\nBreak-even (DMA becomes faster):\n");
    std::printf("  vs conventional PIO : %s bytes\n",
                show(break_locked).c_str());
    std::printf("  vs CSB PIO          : %s bytes\n",
                show(break_csb).c_str());
    std::printf("\nThe CSB keeps programmed I/O competitive far beyond "
                "the conventional\nbreak-even point, exactly as the paper "
                "argues in section 5.\n");
    return 0;
}
