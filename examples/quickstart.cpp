/**
 * @file
 * Quickstart: build a system, write a short program that uses the
 * conditional store buffer, run it, and inspect what happened on the
 * system bus.
 *
 * The program stores eight doublewords into uncached-combining space
 * and commits them with one conditional flush; the bus monitor shows
 * a single 64-byte burst instead of eight single-beat transactions.
 */

#include <cstdio>

#include "core/system.hh"
#include "isa/program.hh"

int
main()
{
    using namespace csb;
    using isa::ir;

    // 1. Configure the system: 8-byte multiplexed bus, CPU:bus ratio
    //    6, 64-byte cache lines, CSB enabled.
    core::SystemConfig cfg;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = 6;
    cfg.lineBytes = 64;
    cfg.enableCsb = true;
    cfg.normalize();
    core::System system(cfg);

    // 2. Write the program with the fluent assembler.  This is the
    //    code pattern from the paper's section 3.2 listing.
    isa::Program p;
    isa::Label retry = p.newLabel();
    p.li(ir(1), core::System::ioCsbBase); // combining-space pointer
    for (int r = 2; r <= 8; ++r)          // data to send
        p.li(ir(r), 0x0101010101010101ULL * static_cast<unsigned>(r));

    p.bind(retry);
    p.li(ir(9), 8);                 // expected hit count
    p.std_(ir(2), ir(1), 0);        // 8 combining stores, any order
    p.std_(ir(4), ir(1), 16);
    p.std_(ir(3), ir(1), 8);
    p.std_(ir(5), ir(1), 24);
    p.std_(ir(6), ir(1), 32);
    p.std_(ir(8), ir(1), 48);
    p.std_(ir(7), ir(1), 40);
    p.std_(ir(2), ir(1), 56);
    p.swap(ir(9), ir(1), 0);        // conditional flush
    p.li(ir(10), 8);
    p.bne(ir(9), ir(10), retry);    // retry on conflict
    p.halt();
    p.finalize();

    std::puts("Program:");
    std::fputs(p.disassemble().c_str(), stdout);

    // 3. Run to completion.
    Tick end = system.run(p);
    std::printf("\nRan to quiescence at tick %llu\n",
                static_cast<unsigned long long>(end));

    // 4. Inspect the bus: the whole sequence became one burst.
    std::puts("\nBus transactions:");
    for (const auto &rec : system.bus().monitor().records()) {
        std::printf("  %-9s addr=0x%llx size=%-3u addr-cycle=%llu "
                    "data-cycles=[%llu..%llu]\n",
                    bus::txnKindName(rec.kind),
                    static_cast<unsigned long long>(rec.addr), rec.size,
                    static_cast<unsigned long long>(rec.addrCycle),
                    static_cast<unsigned long long>(rec.firstDataCycle),
                    static_cast<unsigned long long>(rec.lastDataCycle));
    }

    std::printf("\nCSB stats: %g stores merged, %g flushes, "
                "%g lines issued\n",
                system.csb()->storesAccepted.value(),
                system.csb()->flushesAttempted.value(),
                system.csb()->linesIssued.value());

    // 5. The device received exactly one 64-byte write.
    const auto &log = system.device().writeLog();
    std::printf("Device received %zu write(s); first is %zu bytes\n",
                log.size(), log.empty() ? 0 : log[0].data.size());
    return 0;
}
