/**
 * @file
 * Sweep-engine microbenchmark: wall-clock throughput of the same
 * bandwidth-sweep grid run serially (--jobs 1 path) and through the
 * SweepRunner worker pool, plus a byte-level determinism check that
 * the two produce identical results.
 *
 * The printed tables contain only deterministic quantities (grid
 * shape, point counts, the identical-results verdict), so the
 * EXPERIMENTS.md splice stays byte-identical across machines and
 * --jobs values.  Wall-clock seconds, the measured speedup and the
 * worker count go to the JSON artifact's tables and to stderr.
 *
 * The speedup doubles as the parallel-sweep regression gate:
 * `--min-sweep-speedup=N` makes the binary exit non-zero unless the
 * pool beats the serial path by at least N x.  Hosts with fewer than
 * 4 hardware threads skip the gate (a 1-core CI box cannot show a
 * parallel speedup); the determinism check always runs.
 */

#include "bench_common.hh"

#include <chrono>
#include <cstdlib>

#include "sim/thread_pool.hh"

namespace {

using namespace csb;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The grid: every scheme x transfer size at three CPU:bus ratios. */
struct GridPoint
{
    core::BandwidthSetup setup;
    core::Scheme scheme;
    unsigned size;
};

std::vector<GridPoint>
buildGrid()
{
    std::vector<GridPoint> grid;
    for (unsigned ratio : {2u, 6u, 10u}) {
        core::BandwidthSetup setup = bench::muxSetup(ratio, 64);
        for (core::Scheme scheme :
             core::schemesForLine(setup.lineBytes)) {
            for (unsigned size : core::defaultTransferSizes())
                grid.push_back({setup, scheme, size});
        }
    }
    return grid;
}

std::vector<double>
runGrid(core::SweepRunner &runner, const std::vector<GridPoint> &grid,
        double &seconds)
{
    auto t0 = std::chrono::steady_clock::now();
    std::vector<double> results =
        runner.map(grid, [](const GridPoint &point) {
            return core::measureStoreBandwidth(point.setup, point.scheme,
                                               point.size);
        });
    seconds = secondsSince(t0);
    return results;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace csb::bench;

    // Strip --min-sweep-speedup=N before google-benchmark sees argv.
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--min-sweep-speedup=", 0) == 0) {
            min_speedup = std::atof(arg.c_str() + 20);
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    unsigned jobs = core::resolveJobs(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "perf_sweep");

    const std::vector<GridPoint> grid = buildGrid();

    double serial_s = 0, parallel_s = 0;
    core::SweepRunner serial(1);
    std::vector<double> serial_results = runGrid(serial, grid, serial_s);

    core::SweepRunner pool(jobs);
    std::vector<double> pool_results = runGrid(pool, grid, parallel_s);

    bool identical = serial_results == pool_results;
    double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;

    // Deterministic text only: the grid shape and the determinism
    // verdict, never wall-clock or the machine's thread count.
    report.print("=== Parallel sweep engine ===\n");
    report.printf("grid: %zu independent simulations (3 ratios x %zu "
                  "schemes x %zu transfer sizes), one System each\n",
                  grid.size(),
                  core::schemesForLine(64).size(),
                  core::defaultTransferSizes().size());
    report.printf("serial vs pooled results identical: %s\n",
                  identical ? "yes" : "NO");
    report.print("(results are collected by point index, never by "
                 "completion order, so artifacts are byte-identical "
                 "for any --jobs value.  Wall-clock seconds and the "
                 "measured speedup are machine-dependent and live in "
                 "the JSON artifact's tables and on stderr.)\n\n");

    // Machine-dependent numbers: stderr for humans, artifact tables
    // for the perf trajectory.
    std::fprintf(stderr,
                 "sweep: %zu points, serial %.3f s, %u-worker pool "
                 "%.3f s -> speedup %.2fx\n",
                 grid.size(), serial_s, jobs, parallel_s, speedup);

    report.beginTable("Sweep wall-clock on this machine (varies by "
                      "host and --jobs; the speedup is the "
                      "bench_sweep_smoke gate on >= 4-thread hosts)",
                      {"seconds", "points_per_sec"});
    report.addRow("serial", {serial_s,
                             serial_s > 0 ? grid.size() / serial_s : 0});
    report.addRow("pooled", {parallel_s,
                             parallel_s > 0 ? grid.size() / parallel_s
                                            : 0});
    report.beginTable("Sweep speedup vs serial (workers = --jobs, "
                      "default one per hardware thread)",
                      {"speedup", "workers"});
    report.addRow("sweep", {speedup, double(jobs)});

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: pooled sweep diverged from serial sweep\n");
        return 1;
    }

    if (min_speedup > 0) {
        if (sim::ThreadPool::defaultThreads() < 4) {
            std::fprintf(stderr,
                         "SKIP: sweep-speedup gate needs >= 4 hardware "
                         "threads (this host has %u)\n",
                         sim::ThreadPool::defaultThreads());
        } else if (speedup < min_speedup) {
            std::fprintf(stderr,
                         "FAIL: sweep speedup %.2fx below required "
                         "%.2fx\n",
                         speedup, min_speedup);
            return 1;
        }
    }

    benchmark::RegisterBenchmark(
        "Sweep/pooled", [&](benchmark::State &state) {
            double seconds = 0;
            core::SweepRunner runner(jobs);
            for (auto _ : state)
                runGrid(runner, grid, seconds);
            state.counters["points_per_sec"] =
                seconds > 0 ? grid.size() / seconds : 0;
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "Sweep/serial", [&](benchmark::State &state) {
            double seconds = 0;
            core::SweepRunner runner(1);
            for (auto _ : state)
                runGrid(runner, grid, seconds);
            state.counters["points_per_sec"] =
                seconds > 0 ? grid.size() / seconds : 0;
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
