/**
 * @file
 * Figure 3 (g)-(i): uncached store bandwidth on an 8-byte multiplexed
 * bus under increasing bus transaction overhead: a mandatory
 * turnaround cycle (g) and fixed-delay acknowledgments of 4 (h) and
 * 8 (i) bus cycles.  Fixed: ratio 6, 64-byte block.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    csb::core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "fig3_mux_overhead");

    struct Panel
    {
        const char *name;
        unsigned turnaround;
        unsigned ack;
    };
    const Panel panels[] = {
        {"Fig 3(g) turnaround 1", 1, 0},
        {"Fig 3(h) ack delay 4", 0, 4},
        {"Fig 3(i) ack delay 8", 0, 8},
    };

    for (const Panel &panel : panels) {
        printBandwidthPanel(
            report, runner,
            std::string(panel.name) +
                ": 8B multiplexed bus, ratio 6, 64B block",
            muxSetup(6, 64, panel.turnaround, panel.ack));
        registerBandwidthPanel(panel.name,
                               muxSetup(6, 64, panel.turnaround,
                                        panel.ack));
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
