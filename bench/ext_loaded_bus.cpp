/**
 * @file
 * Extension: uncached store bandwidth under real multi-master bus
 * contention.  The paper approximates a loaded bus with a mandatory
 * turnaround cycle (figure 3(g)); here a TrafficGenerator injects
 * actual competing memory traffic and the schemes fight for the bus
 * through round-robin arbitration.
 *
 * Expectation (and result): under load, burst transactions defend
 * their share of the bus far better than single-beat stores -- the
 * same conclusion as figure 3(g), demonstrated directly.
 */

#include "bench_common.hh"

#include "bus/traffic_generator.hh"
#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;

/**
 * Measure I/O write bandwidth for one scheme under background load.
 * @param interval mean bus cycles between background transactions
 *                 (0 = no load)
 */
double
loadedBandwidth(core::Scheme scheme, double interval,
                unsigned transfer_bytes)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = 6;
    cfg.enableCsb = scheme == core::Scheme::Csb;
    cfg.ubuf.combineBytes = core::schemeCombineBytes(scheme);
    cfg.normalize();
    core::System system(cfg);

    std::unique_ptr<bus::TrafficGenerator> tgen;
    if (interval > 0) {
        bus::TrafficGeneratorParams params;
        params.base = 0x100000;
        params.regionSize = 1 << 20;
        params.txnBytes = 64;
        params.interval = interval;
        tgen = std::make_unique<bus::TrafficGenerator>(
            system.simulator(), system.bus(), params);
        tgen->start();
    }

    isa::Program p =
        scheme == core::Scheme::Csb
            ? core::makeCsbStoreKernel(core::System::ioCsbBase,
                                       transfer_bytes, 64)
            : core::makeStoreKernel(scheme == core::Scheme::NoCombine
                                        ? core::System::ioUncachedBase
                                        : core::System::ioAccelBase,
                                    transfer_bytes);
    system.core().loadProgram(&p, 1);
    system.simulator().run(
        [&] {
            return system.core().halted() &&
                   system.uncachedBuffer().empty() &&
                   (!system.csb() || system.csb()->drained());
        },
        10'000'000);
    if (tgen)
        tgen->stop();
    system.simulator().run([&] { return system.quiescent(); }, 100000);

    return static_cast<double>(transfer_bytes) /
           static_cast<double>(system.ioWriteBusCycles());
}

} // namespace

int
main(int argc, char **argv)
{
    using core::Scheme;
    core::SweepRunner runner(csb::bench::stripJobsFlag(argc, argv));
    csb::bench::JsonReport report(argc, argv, "ext_loaded_bus");
    const std::vector<Scheme> schemes = {Scheme::NoCombine,
                                         Scheme::Combine64, Scheme::Csb};
    const std::vector<double> loads = {0.0, 8.0, 4.0, 2.0};
    constexpr unsigned transfer = 1024;

    report.print("=== I/O store bandwidth under background bus load "
                 "(1 KiB transfers, 8B mux bus, ratio 6) ===\n");
    report.print("load         no-comb    comb-64        CSB\n");
    report.beginTable("I/O store bandwidth under background bus load",
                      {"no-comb", "comb-64", "CSB"});
    // The load x scheme grid flattens into independent points; rows
    // reassemble by index, so the table is identical for any --jobs.
    std::vector<double> flat = runner.mapIndex(
        loads.size() * schemes.size(), [&](std::size_t point) {
            double load = loads[point / schemes.size()];
            Scheme scheme = schemes[point % schemes.size()];
            return loadedBandwidth(scheme, load, transfer);
        });
    for (std::size_t i = 0; i < loads.size(); ++i) {
        double load = loads[i];
        std::string label =
            load == 0 ? "idle"
                      : "1/" + std::to_string(static_cast<int>(load)) +
                            " cyc";
        report.printf("%-10s", label.c_str());
        std::vector<double> row(flat.begin() + i * schemes.size(),
                                flat.begin() + (i + 1) * schemes.size());
        for (double bw : row)
            report.printf(" %10.2f", bw);
        report.print("\n");
        report.addRow(label, row);
    }
    report.print("(bytes per bus cycle across the transfer window; "
                 "bursts defend their share, single-beat stores "
                 "lose theirs)\n\n");

    for (double load : {0.0, 4.0}) {
        for (Scheme scheme : schemes) {
            std::string name =
                "LoadedBus/" + core::schemeName(scheme) +
                (load == 0 ? "/idle" : "/loaded");
            benchmark::RegisterBenchmark(
                name.c_str(),
                [scheme, load](benchmark::State &state) {
                    double bw = 0;
                    for (auto _ : state)
                        bw = loadedBandwidth(scheme, load, transfer);
                    state.counters["bytes_per_bus_cycle"] = bw;
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
