/**
 * @file
 * Figure 5 (a): CPU cycles of a lock/access/unlock sequence versus
 * the CSB atomic access, when the lock hits in the L1 cache.
 * 8-byte multiplexed bus, ratio 6, 64-byte block.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    namespace core = csb::core;
    using csb::core::Scheme;

    core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "fig5_lock_hit");
    core::BandwidthSetup setup = muxSetup(6, 64);

    core::LatencySweep sweep = printLatencyPanel(
        report, runner,
        "Fig 5(a): lock hits in L1 -- 8B multiplexed bus, ratio 6",
        setup, /*lock_miss=*/false);

    for (std::size_t i = 0; i < sweep.schemes.size(); ++i) {
        for (std::size_t j = 0; j < sweep.dwords.size(); ++j) {
            Scheme scheme = sweep.schemes[i];
            unsigned n = sweep.dwords[j];
            std::string name =
                std::string("Fig 5(a)/") +
                (scheme == Scheme::Csb
                     ? core::schemeName(scheme)
                     : "lock+" + core::schemeName(scheme)) +
                "/" + std::to_string(n * 8) + "B";
            benchmark::RegisterBenchmark(
                name.c_str(),
                [setup, scheme, n](benchmark::State &state) {
                    double cycles = 0;
                    for (auto _ : state) {
                        cycles =
                            scheme == Scheme::Csb
                                ? core::measureCsbSequence(setup, n)
                                : core::measureLockedSequence(
                                      setup, scheme, n, false);
                    }
                    state.counters["cpu_cycles"] = cycles;
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
