/**
 * @file
 * Figure 4 (a)-(b): uncached store bandwidth on a split address/data
 * bus, 128-bit (a) and 256-bit (b) data paths.  Fixed: ratio 6,
 * 64-byte block, no turnaround cycle.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    csb::core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "fig4_split_width");

    struct Panel
    {
        const char *name;
        unsigned width;
    };
    const Panel panels[] = {
        {"Fig 4(a) 16B split bus", 16},
        {"Fig 4(b) 32B split bus", 32},
    };

    for (const Panel &panel : panels) {
        printBandwidthPanel(
            report, runner,
            std::string(panel.name) +
                ": ratio 6, 64B block, no turnaround",
            splitSetup(panel.width, 6, 64));
        registerBandwidthPanel(panel.name, splitSetup(panel.width, 6, 64));
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
