/**
 * @file
 * Extension: robustness scorecard under fault campaigns.
 *
 * The paper's microbenchmarks assume a perfect machine; the fault
 * sweep (ext_fault_sweep) adds uniform adversity.  This bench goes
 * further: it runs the scheduled fault campaigns of docs/FAULTS.md --
 * a 30% NACK burst, a device hang that forces the CSB into degraded
 * mode, a long NI link flap, and the combined scenario with a
 * mid-campaign crash-restart from checkpoint -- across a seed sweep,
 * and reports the recovery subsystem's scorecard: recovery rate,
 * mean time to repair, degraded-mode residency, and exactly-once
 * accounting.  Any lost or duplicated message, or any run that fails
 * to recover, fails the binary.
 */

#include "bench_common.hh"

#include "core/campaign.hh"

namespace {

/**
 * The campaign set, calibrated like tools/faultcampaign's built-ins:
 * a clean 3x12-message leg lasts ~2500 ticks, so the windows below
 * concentrate adversity in the first ~2 legs and the campaign proves
 * recovery by finishing clean afterwards.
 */
std::vector<csb::core::CampaignScenario>
benchScenarios()
{
    namespace core = csb::core;
    std::vector<core::CampaignScenario> all;

    core::CampaignScenario burst;
    burst.name = "burst-nack";
    burst.schedule = "burst:bus-write-nack:1000..6000:0.3";
    all.push_back(burst);

    core::CampaignScenario hang;
    hang.name = "device-hang";
    hang.deviceLines = 6;
    hang.schedule = "hang:2000..3500";
    all.push_back(hang);

    core::CampaignScenario flap;
    flap.name = "link-flap";
    flap.schedule = "flap:1000..30000";
    all.push_back(flap);

    // The acceptance scenario: NACK burst + device hang + one
    // crash-restart from the pre-leg checkpoint, all in one run.
    core::CampaignScenario combined;
    combined.name = "combined";
    combined.schedule =
        "burst:bus-write-nack:1000..12000:0.3;hang:3000..7000";
    combined.crashAfterLeg = 1;
    combined.crashAfterTicks = 1500;
    all.push_back(combined);

    return all;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    namespace core = csb::core;

    core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "ext_recovery");

    const std::vector<core::CampaignScenario> scenarios =
        benchScenarios();
    constexpr std::uint64_t kFirstSeed = 1;
    constexpr std::uint64_t kSeeds = 6;

    // One flat point per (scenario, seed): the runner fans the whole
    // campaign matrix across its workers and collects by index, so
    // the aggregation below is order-independent of --jobs.
    std::vector<std::pair<unsigned, std::uint64_t>> points;
    for (unsigned s = 0; s < scenarios.size(); ++s)
        for (std::uint64_t i = 0; i < kSeeds; ++i)
            points.emplace_back(s, kFirstSeed + i);

    std::vector<core::CampaignResult> flat = runner.map(
        points, [&scenarios](std::pair<unsigned, std::uint64_t> pt) {
            return core::runCampaign(scenarios[pt.first], pt.second);
        });

    report.print("=== Recovery: fault campaigns, degraded modes and "
                 "crash-restart resilience ===\n");
    report.printf("(%llu seeds per scenario; a campaign recovers iff "
                  "every leg completes with exactly-once delivery and "
                  "no health violation)\n",
                  static_cast<unsigned long long>(kSeeds));
    report.print("scenario       recover   lost   dup   faults   "
                 "resets   degraded   crashes   mean-MTTR   "
                 "residency\n");
    report.beginTable(
        "Robustness scorecard: recovery rate, exactly-once accounting "
        "and repair cost per campaign scenario",
        {"recovery rate", "lost", "duplicated", "faults injected",
         "link resets", "degraded entries", "crash restarts",
         "mean MTTR (ticks)", "degraded residency"});

    bool gateOk = true;
    unsigned totalRuns = 0;
    unsigned totalRecovered = 0;
    std::uint64_t totalLost = 0;
    std::uint64_t totalDup = 0;
    double mttrSum = 0;
    unsigned mttrScenarios = 0;
    double residencySum = 0;

    for (unsigned s = 0; s < scenarios.size(); ++s) {
        std::vector<core::CampaignResult> rs(
            flat.begin() + s * kSeeds,
            flat.begin() + (s + 1) * kSeeds);
        core::CampaignSummary sum = core::summarize(rs);
        std::uint64_t crashes = 0;
        for (const core::CampaignResult &r : rs)
            crashes += r.crashed ? 1 : 0;

        report.printf("%-12s %9.2f %6llu %5llu %8llu %8llu %10llu "
                      "%9llu %11.1f %11.4f\n",
                      scenarios[s].name.c_str(), sum.recoveryRate,
                      static_cast<unsigned long long>(sum.totalLost),
                      static_cast<unsigned long long>(
                          sum.totalDuplicated),
                      static_cast<unsigned long long>(
                          sum.totalFaultsInjected),
                      static_cast<unsigned long long>(
                          sum.totalLinkResets),
                      static_cast<unsigned long long>(
                          sum.totalDegradedEntries),
                      static_cast<unsigned long long>(crashes),
                      sum.meanMttrTicks, sum.meanDegradedResidency);
        report.addRow(
            scenarios[s].name,
            {sum.recoveryRate,
             static_cast<double>(sum.totalLost),
             static_cast<double>(sum.totalDuplicated),
             static_cast<double>(sum.totalFaultsInjected),
             static_cast<double>(sum.totalLinkResets),
             static_cast<double>(sum.totalDegradedEntries),
             static_cast<double>(crashes), sum.meanMttrTicks,
             sum.meanDegradedResidency});

        gateOk = gateOk && sum.recoveredRuns == sum.runs &&
                 sum.totalLost == 0 && sum.totalDuplicated == 0;
        totalRuns += sum.runs;
        totalRecovered += sum.recoveredRuns;
        totalLost += sum.totalLost;
        totalDup += sum.totalDuplicated;
        if (sum.meanMttrTicks > 0) {
            mttrSum += sum.meanMttrTicks;
            ++mttrScenarios;
        }
        residencySum += sum.meanDegradedResidency;
    }

    double overallRate =
        totalRuns > 0 ? static_cast<double>(totalRecovered) / totalRuns
                      : 0;
    double overallMttr =
        mttrScenarios > 0 ? mttrSum / mttrScenarios : 0;
    double overallResidency =
        scenarios.empty() ? 0 : residencySum / scenarios.size();
    report.setScorecard({
        {"recovery_rate", overallRate},
        {"runs", static_cast<double>(totalRuns)},
        {"lost", static_cast<double>(totalLost)},
        {"duplicated", static_cast<double>(totalDup)},
        {"mean_mttr_ticks", overallMttr},
        {"mean_degraded_residency", overallResidency},
    });
    report.printf("(overall: %u/%u runs recovered; the combined "
                  "scenario crashes the System mid-leg and restores "
                  "the pre-leg checkpoint, and exactly-once delivery "
                  "holds because dup-suppression, retransmit and "
                  "fault-RNG state all round-trip through it.)\n\n",
                  totalRecovered, totalRuns);

    if (!gateOk) {
        std::fprintf(stderr, "recovery gate violated: a campaign run "
                             "failed to recover or lost/duplicated a "
                             "message\n");
        return 1;
    }

    for (const core::CampaignScenario &sc : scenarios) {
        std::string name = "Recovery/" + sc.name;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [sc](benchmark::State &state) {
                core::CampaignResult r;
                for (auto _ : state)
                    r = core::runCampaign(sc, 1);
                state.counters["recovered"] = r.recovered ? 1.0 : 0.0;
                state.counters["mttr_ticks"] = r.mttrTicks;
                state.counters["faults_injected"] =
                    static_cast<double>(r.faultsInjected);
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
