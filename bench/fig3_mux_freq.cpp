/**
 * @file
 * Figure 3 (a)-(c): uncached store bandwidth on an 8-byte multiplexed
 * bus while the processor:bus frequency ratio varies (2, 6, 10).
 * Fixed: 32-byte block, no turnaround cycle (the combining schemes'
 * asymptote of one cache line per 5 bus cycles identifies the block).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    csb::core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "fig3_mux_freq");

    struct Panel
    {
        const char *name;
        unsigned ratio;
    };
    const Panel panels[] = {
        {"Fig 3(a) ratio 2", 2},
        {"Fig 3(b) ratio 6", 6},
        {"Fig 3(c) ratio 10", 10},
    };

    for (const Panel &panel : panels) {
        printBandwidthPanel(
            report, runner,
            std::string(panel.name) +
                ": 8B multiplexed bus, 32B block, no turnaround",
            muxSetup(panel.ratio, 32));
        registerBandwidthPanel(panel.name, muxSetup(panel.ratio, 32));
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
