/**
 * @file
 * Event-kernel microbenchmark: wall-clock events/sec, sim-ticks/sec,
 * and a cancel-heavy churn workload, run against both the current
 * kernel and an in-process copy of the pre-fix kernel (copy-the-heap
 * nextTick(), new + shared_ptr per scheduleFunc(), no compaction).
 *
 * The printed tables contain only deterministic quantities (event
 * counts, compactions, pool/heap sizes), so the EXPERIMENTS.md splice
 * stays byte-identical across machines.  Wall-clock measurements go
 * to the JSON artifact's tables and to stderr.
 *
 * The churn workload doubles as the perf-smoke regression gate:
 * `--min-churn-speedup=N` makes the binary exit non-zero unless the
 * current kernel beats the legacy kernel by at least N x.  The ratio
 * is in-process and relative, so it is stable on shared runners.
 */

#include "bench_common.hh"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <queue>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace {

using csb::Tick;
using csb::maxTick;

// ---------------------------------------------------------------------
// Pre-fix kernel, reproduced verbatim in behaviour: nextTick() copies
// the whole priority queue to skip stale entries, every scheduleFunc()
// allocates an event and a shared state, cancellation leaves the
// closure alive until the entry's original tick pops.
// ---------------------------------------------------------------------

class LegacyEventQueue
{
  public:
    struct FuncEvent;

    struct FuncState
    {
        FuncEvent *event = nullptr;
        bool done = false;
    };

    struct FuncEvent
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        bool scheduled = false;
        std::function<void()> fn;
        std::shared_ptr<FuncState> state;
    };

    class Handle
    {
      public:
        Handle() = default;
        Handle(LegacyEventQueue *q, std::shared_ptr<FuncState> s)
            : queue_(q), state_(std::move(s))
        {}

        bool pending() const { return state_ && !state_->done; }

        void
        cancel()
        {
            if (!pending())
                return;
            state_->event->scheduled = false;
            state_->done = true;
        }

      private:
        LegacyEventQueue *queue_ = nullptr;
        std::shared_ptr<FuncState> state_;
    };

    ~LegacyEventQueue()
    {
        while (!queue_.empty()) {
            Entry entry = queue_.top();
            queue_.pop();
            if (entry.event->seq == entry.seq)
                delete entry.event;
        }
    }

    Tick curTick() const { return curTick_; }

    Handle
    scheduleFunc(Tick when, std::function<void()> fn)
    {
        auto state = std::make_shared<FuncState>();
        auto *ev = new FuncEvent;
        ev->when = when;
        ev->seq = nextSeq_++;
        ev->scheduled = true;
        ev->fn = std::move(fn);
        ev->state = state;
        state->event = ev;
        queue_.push(Entry{when, ev->seq, ev});
        return Handle(this, std::move(state));
    }

    Tick
    nextTick() const
    {
        // The pre-fix bug under test: a full O(n) copy per peek.
        auto copy = queue_;
        while (!copy.empty()) {
            const Entry &entry = copy.top();
            if (entry.event->scheduled && entry.event->seq == entry.seq)
                return entry.when;
            copy.pop();
        }
        return maxTick;
    }

    void
    serviceUntil(Tick now)
    {
        while (!queue_.empty()) {
            Entry entry = queue_.top();
            bool live = entry.event->scheduled &&
                        entry.event->seq == entry.seq;
            if (live && entry.when > now)
                break;
            queue_.pop();
            if (!live) {
                if (entry.event->seq == entry.seq)
                    delete entry.event;
                continue;
            }
            curTick_ = entry.when;
            entry.event->scheduled = false;
            entry.event->state->done = true;
            ++numProcessed_;
            auto fn = std::move(entry.event->fn);
            delete entry.event;
            fn();
        }
        curTick_ = now;
    }

    std::uint64_t numProcessed() const { return numProcessed_; }
    std::size_t heapSize() const { return queue_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        FuncEvent *event;
    };

    struct Compare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Compare> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t numProcessed_ = 0;
};

// ---------------------------------------------------------------------
// Workloads, templated so both kernels run the identical sequence.
// ---------------------------------------------------------------------

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Schedule/fire throughput: batches of short-range callbacks. */
template <typename Queue>
std::uint64_t
runThroughput(Queue &q, std::uint64_t target, double &seconds)
{
    std::uint64_t fired = 0;
    auto t0 = std::chrono::steady_clock::now();
    Tick t = q.curTick();
    while (fired < target) {
        for (unsigned i = 0; i < 64; ++i)
            q.scheduleFunc(t + 1 + i % 7, [&fired] { ++fired; });
        t += 8;
        q.serviceUntil(t);
    }
    seconds = secondsSince(t0);
    return fired;
}

struct ChurnResult
{
    std::uint64_t fired = 0;
    std::uint64_t peeks = 0;
    std::size_t finalHeap = 0;
    double seconds = 0;
};

/**
 * Cancel-heavy churn: a window of pending callbacks is continuously
 * cancelled and replaced, with a nextTick() peek per iteration --
 * the access pattern retry backoff and watchdog polling produce.
 */
template <typename Queue>
ChurnResult
runChurn(Queue &q, unsigned window, std::uint64_t iters)
{
    using Handle =
        decltype(q.scheduleFunc(Tick(0), std::function<void()>()));
    std::vector<Handle> slots(window);
    csb::sim::Random rng(0x0c5b0c5bULL);
    ChurnResult res;
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        Tick now = q.curTick();
        auto slot = static_cast<std::size_t>(rng.uniform(0, window - 1));
        slots[slot].cancel();
        slots[slot] = q.scheduleFunc(
            now + 1 + rng.uniform(0, 100000),
            [&res] { ++res.fired; });
        benchmark::DoNotOptimize(q.nextTick());
        ++res.peeks;
        if ((i & 1023) == 1023)
            q.serviceUntil(now + 16);
    }
    res.seconds = secondsSince(t0);
    res.finalHeap = q.heapSize();
    return res;
}

/** Clocked device that gates itself whenever it has no work. */
class IdleDevice : public csb::sim::Clocked
{
  public:
    IdleDevice()
        : csb::sim::Clocked("idle-dev", csb::sim::ClockDomain(1))
    {}

    void
    tick() override
    {
        ++ticksRun;
        if (pending_ == 0) {
            gate();
            return;
        }
        --pending_;
        ++workDone;
    }

    void
    addWork()
    {
        ++pending_;
        ungate();
    }

    std::uint64_t ticksRun = 0;
    std::uint64_t workDone = 0;

  private:
    unsigned pending_ = 0;
};

struct GatingResult
{
    std::uint64_t simTicks = 0;
    std::uint64_t deviceTicks = 0;
    std::uint64_t fastForwarded = 0;
    double seconds = 0;
};

/**
 * Sim-ticks/sec with a mostly-idle clocked device: work arrives every
 * @p period ticks; in between, the gated system fast-forwards.
 */
GatingResult
runGated(Tick total, Tick period)
{
    csb::sim::Simulator sim;
    IdleDevice dev;
    sim.registerClocked(&dev);

    std::function<void(Tick)> arm = [&](Tick when) {
        sim.eventQueue().scheduleFunc(when, [&arm, &dev, when, period] {
            dev.addWork();
            arm(when + period);
        });
    };
    arm(period);

    GatingResult res;
    auto t0 = std::chrono::steady_clock::now();
    sim.runFor(total);
    res.seconds = secondsSince(t0);
    res.simTicks = total;
    res.deviceTicks = dev.ticksRun;
    res.fastForwarded = sim.fastForwardedTicks();
    return res;
}

double
rate(double count, double seconds)
{
    return seconds > 0 ? count / seconds : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace csb::bench;

    // Strip --min-churn-speedup=N before google-benchmark sees argv.
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--min-churn-speedup=", 0) == 0) {
            min_speedup = std::atof(arg.c_str() + 20);
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    // Accept --jobs like every other bench, but run the workloads
    // serially regardless: this binary measures wall-clock kernel
    // rates, and concurrent workloads would time each other's noise.
    (void)stripJobsFlag(argc, argv);
    JsonReport report(argc, argv, "perf_kernel");

    constexpr std::uint64_t kThroughputEvents = 200'000;
    constexpr unsigned kChurnWindow = 1024;
    constexpr std::uint64_t kChurnIters = 20'000;
    constexpr Tick kGatedTicks = 2'000'000;
    constexpr Tick kGatedPeriod = 1'000;

    double tput_new_s = 0, tput_old_s = 0;
    std::uint64_t fired_new, fired_old;
    std::size_t tput_pool = 0;
    {
        csb::sim::EventQueue q;
        fired_new = runThroughput(q, kThroughputEvents, tput_new_s);
        tput_pool = q.funcPoolSize();
    }
    {
        LegacyEventQueue q;
        fired_old = runThroughput(q, kThroughputEvents, tput_old_s);
    }

    ChurnResult churn_new, churn_old;
    std::uint64_t compactions = 0;
    {
        csb::sim::EventQueue q;
        churn_new = runChurn(q, kChurnWindow, kChurnIters);
        compactions = q.numCompactions();
    }
    {
        LegacyEventQueue q;
        churn_old = runChurn(q, kChurnWindow, kChurnIters);
    }

    GatingResult gated = runGated(kGatedTicks, kGatedPeriod);

    // Both kernels must have executed the identical simulation.
    if (fired_new != fired_old || churn_new.fired != churn_old.fired) {
        std::fprintf(stderr,
                     "kernel divergence: new fired %llu/%llu, "
                     "legacy %llu/%llu\n",
                     static_cast<unsigned long long>(fired_new),
                     static_cast<unsigned long long>(churn_new.fired),
                     static_cast<unsigned long long>(fired_old),
                     static_cast<unsigned long long>(churn_old.fired));
        return 1;
    }

    double speedup = churn_new.seconds > 0
                         ? churn_old.seconds / churn_new.seconds
                         : 0.0;

    // Deterministic text only: counts and kernel counters, never
    // wall-clock, so the EXPERIMENTS.md splice is byte-identical on
    // every machine.
    report.print("=== Event-kernel microbenchmark ===\n");
    report.printf("throughput: %llu events fired in schedule/fire "
                  "batches (both kernels agree); %llu pooled events "
                  "served every allocation after warm-up\n",
                  static_cast<unsigned long long>(fired_new),
                  static_cast<unsigned long long>(tput_pool));
    report.printf("churn: window %u, %llu schedule+cancel iterations "
                  "with a nextTick() peek each -> %llu fired, "
                  "%llu compactions, final heap %llu entries "
                  "(legacy heap: %llu)\n",
                  kChurnWindow,
                  static_cast<unsigned long long>(kChurnIters),
                  static_cast<unsigned long long>(churn_new.fired),
                  static_cast<unsigned long long>(compactions),
                  static_cast<unsigned long long>(churn_new.finalHeap),
                  static_cast<unsigned long long>(churn_old.finalHeap));
    report.printf("clock gating: %llu sim ticks with work every %llu "
                  "ticks -> idle device ticked %llu times, "
                  "%llu ticks fast-forwarded\n",
                  static_cast<unsigned long long>(gated.simTicks),
                  static_cast<unsigned long long>(kGatedPeriod),
                  static_cast<unsigned long long>(gated.deviceTicks),
                  static_cast<unsigned long long>(gated.fastForwarded));
    report.print("(wall-clock rates are machine-dependent and live in "
                 "the JSON artifact's tables and on stderr, not in "
                 "this reproducible text.)\n\n");

    // Machine-dependent numbers: stderr for humans, artifact tables
    // for the perf trajectory.
    std::fprintf(stderr,
                 "throughput: new %.0f events/s, legacy %.0f events/s\n",
                 rate(static_cast<double>(fired_new), tput_new_s),
                 rate(static_cast<double>(fired_old), tput_old_s));
    std::fprintf(stderr,
                 "churn:      new %.3f s, legacy %.3f s -> speedup "
                 "%.1fx\n",
                 churn_new.seconds, churn_old.seconds, speedup);
    std::fprintf(stderr, "gating:     %.0f sim-ticks/s\n",
                 rate(static_cast<double>(gated.simTicks),
                      gated.seconds));

    report.beginTable("Kernel wall-clock on this machine (varies by "
                      "host; the churn speedup is the regression gate)",
                      {"seconds", "per_sec"});
    report.addRow("throughput/current",
                  {tput_new_s,
                   rate(static_cast<double>(fired_new), tput_new_s)});
    report.addRow("throughput/legacy",
                  {tput_old_s,
                   rate(static_cast<double>(fired_old), tput_old_s)});
    report.addRow("churn/current",
                  {churn_new.seconds,
                   rate(static_cast<double>(kChurnIters),
                        churn_new.seconds)});
    report.addRow("churn/legacy",
                  {churn_old.seconds,
                   rate(static_cast<double>(kChurnIters),
                        churn_old.seconds)});
    report.addRow("gated-sim",
                  {gated.seconds,
                   rate(static_cast<double>(gated.simTicks),
                        gated.seconds)});
    report.beginTable("Churn speedup vs pre-fix kernel "
                      "(acceptance: >= 3x)",
                      {"speedup"});
    report.addRow("churn", {speedup});

    if (min_speedup > 0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: churn speedup %.2fx below required %.2fx\n",
                     speedup, min_speedup);
        return 1;
    }

    benchmark::RegisterBenchmark(
        "Kernel/churn", [&](benchmark::State &state) {
            ChurnResult r;
            for (auto _ : state) {
                csb::sim::EventQueue q;
                r = runChurn(q, kChurnWindow, kChurnIters);
            }
            state.counters["iters_per_sec"] =
                rate(static_cast<double>(kChurnIters), r.seconds);
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "Kernel/gated_sim", [&](benchmark::State &state) {
            GatingResult r;
            for (auto _ : state)
                r = runGated(kGatedTicks, kGatedPeriod);
            state.counters["ticks_per_sec"] =
                rate(static_cast<double>(r.simTicks), r.seconds);
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
