/**
 * @file
 * Ablation studies of the CSB design choices called out in DESIGN.md:
 *
 *  1. one vs. two line buffers (section 3.2's pipelining extension),
 *     measured where the CPU -- not the bus -- is the bottleneck
 *     (low CPU:bus ratio);
 *  2. full-line flush vs. the relaxed partial flush (buses that
 *     support multiple burst sizes), measured on sub-line transfers;
 *  3. conditional-flush latency sensitivity of the figure 5 metric.
 */

#include "bench_common.hh"

#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;

double
csbBandwidth(unsigned ratio, unsigned line_buffers, bool partial_flush,
             unsigned transfer_bytes)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = ratio;
    cfg.enableCsb = true;
    cfg.csb.numLineBuffers = line_buffers;
    cfg.csb.partialFlush = partial_flush;
    cfg.normalize();
    core::System system(cfg);
    isa::Program p =
        core::makeCsbStoreKernel(core::System::ioCsbBase, transfer_bytes,
                                 64);
    system.run(p);
    return static_cast<double>(transfer_bytes) /
           static_cast<double>(system.ioWriteBusCycles());
}

/**
 * CPU-side completion time (mark-to-mark) of a multi-line CSB
 * sequence: with one line buffer the next group's stores stall until
 * the flushed line is handed to the bus, so a second buffer shortens
 * the CPU's critical path even when bus throughput is unchanged.
 */
double
csbCpuCompletion(unsigned ratio, unsigned line_buffers,
                 unsigned transfer_bytes)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = ratio;
    cfg.enableCsb = true;
    cfg.csb.numLineBuffers = line_buffers;
    cfg.normalize();
    core::System system(cfg);
    isa::Program p =
        core::makeCsbStoreKernel(core::System::ioCsbBase, transfer_bytes,
                                 64);
    system.run(p);
    return static_cast<double>(system.core().markTime(1) -
                               system.core().markTime(0));
}

double
csbLatency(Tick flush_latency, unsigned n_dwords)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = 6;
    cfg.enableCsb = true;
    cfg.core.csbFlushLatency = flush_latency;
    cfg.normalize();
    core::System system(cfg);
    isa::Program p =
        core::makeCsbSequenceKernel(core::System::ioCsbBase, n_dwords);
    system.run(p);
    return static_cast<double>(system.core().markTime(1) -
                               system.core().markTime(0));
}

} // namespace

int
main(int argc, char **argv)
{
    csb::bench::JsonReport report(argc, argv, "ext_csb_ablation");

    report.print("=== Ablation 1a: CSB line buffers -- bus bandwidth "
                 "(8B mux bus) ===\n");
    report.print("ratio   transfer   1-buffer   2-buffer  "
                 "(B/bus-cycle)\n");
    report.beginTable("Ablation 1a: CSB line buffers -- bus bandwidth",
                      {"1-buffer", "2-buffer"});
    for (unsigned ratio : {1u, 2u, 6u}) {
        for (unsigned bytes : {256u, 1024u}) {
            double one = csbBandwidth(ratio, 1, false, bytes);
            double two = csbBandwidth(ratio, 2, false, bytes);
            report.printf("%-7u %-10u %10.2f %10.2f\n", ratio, bytes,
                          one, two);
            report.addRow("ratio" + std::to_string(ratio) + "/" +
                              std::to_string(bytes),
                          {one, two});
        }
    }
    report.print("(bus throughput is bus-limited either way)\n\n");

    report.print("=== Ablation 1b: CSB line buffers -- CPU completion "
                 "(8B mux bus) ===\n");
    report.print("ratio   transfer   1-buffer   2-buffer  "
                 "(CPU cycles)\n");
    report.beginTable("Ablation 1b: CSB line buffers -- CPU completion",
                      {"1-buffer", "2-buffer"});
    for (unsigned ratio : {2u, 6u}) {
        for (unsigned bytes : {128u, 256u, 512u}) {
            double one = csbCpuCompletion(ratio, 1, bytes);
            double two = csbCpuCompletion(ratio, 2, bytes);
            report.printf("%-7u %-10u %10.0f %10.0f\n", ratio, bytes,
                          one, two);
            report.addRow("ratio" + std::to_string(ratio) + "/" +
                              std::to_string(bytes),
                          {one, two});
        }
    }
    report.print("(the second line buffer removes the stall of the next "
                 "group's stores behind a flushed-but-unsent line -- the "
                 "pipelining extension of section 3.2)\n\n");

    report.print("=== Ablation 2: full-line vs partial flush "
                 "(ratio 6) ===\n");
    report.print("transfer   full-line    partial\n");
    report.beginTable("Ablation 2: full-line vs partial flush",
                      {"full-line", "partial"});
    for (unsigned bytes : {8u, 16u, 32u, 64u, 256u}) {
        double full = csbBandwidth(6, 1, false, bytes);
        double partial = csbBandwidth(6, 1, true, bytes);
        report.printf("%-10u %10.2f %10.2f\n", bytes, full, partial);
        report.addRow(std::to_string(bytes), {full, partial});
    }
    report.print("(partial flush removes the sub-line padding penalty "
                 "when the bus supports multiple burst sizes)\n\n");

    report.print("=== Ablation 3: conditional-flush latency vs figure 5 "
                 "metric (8 dwords) ===\n");
    report.print("flush-latency   cycles\n");
    report.beginTable("Ablation 3: conditional-flush latency vs "
                      "figure 5 metric",
                      {"cycles"});
    for (csb::Tick lat : {1u, 2u, 4u, 8u}) {
        double cycles = csbLatency(lat, 8);
        report.printf("%-15llu %7.0f\n",
                      static_cast<unsigned long long>(lat), cycles);
        report.addRow(std::to_string(lat), {cycles});
    }
    report.print("\n");

    for (unsigned ratio : {1u, 6u}) {
        std::string name =
            "CsbAblation/lineBuffers/ratio" + std::to_string(ratio);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [ratio](benchmark::State &state) {
                double one = 0;
                double two = 0;
                for (auto _ : state) {
                    one = csbBandwidth(ratio, 1, false, 1024);
                    two = csbBandwidth(ratio, 2, false, 1024);
                }
                state.counters["one_buffer_bw"] = one;
                state.counters["two_buffer_bw"] = two;
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        "CsbAblation/partialFlush/16B",
        [](benchmark::State &state) {
            double full = 0;
            double partial = 0;
            for (auto _ : state) {
                full = csbBandwidth(6, 1, false, 16);
                partial = csbBandwidth(6, 1, true, 16);
            }
            state.counters["full_line_bw"] = full;
            state.counters["partial_bw"] = partial;
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
