/**
 * @file
 * Ablation studies of the CSB design choices called out in DESIGN.md:
 *
 *  1. one vs. two line buffers (section 3.2's pipelining extension),
 *     measured where the CPU -- not the bus -- is the bottleneck
 *     (low CPU:bus ratio);
 *  2. full-line flush vs. the relaxed partial flush (buses that
 *     support multiple burst sizes), measured on sub-line transfers;
 *  3. conditional-flush latency sensitivity of the figure 5 metric.
 */

#include "bench_common.hh"

#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;

double
csbBandwidth(unsigned ratio, unsigned line_buffers, bool partial_flush,
             unsigned transfer_bytes)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = ratio;
    cfg.enableCsb = true;
    cfg.csb.numLineBuffers = line_buffers;
    cfg.csb.partialFlush = partial_flush;
    cfg.normalize();
    core::System system(cfg);
    isa::Program p =
        core::makeCsbStoreKernel(core::System::ioCsbBase, transfer_bytes,
                                 64);
    system.run(p);
    return static_cast<double>(transfer_bytes) /
           static_cast<double>(system.ioWriteBusCycles());
}

/**
 * CPU-side completion time (mark-to-mark) of a multi-line CSB
 * sequence: with one line buffer the next group's stores stall until
 * the flushed line is handed to the bus, so a second buffer shortens
 * the CPU's critical path even when bus throughput is unchanged.
 */
double
csbCpuCompletion(unsigned ratio, unsigned line_buffers,
                 unsigned transfer_bytes)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = ratio;
    cfg.enableCsb = true;
    cfg.csb.numLineBuffers = line_buffers;
    cfg.normalize();
    core::System system(cfg);
    isa::Program p =
        core::makeCsbStoreKernel(core::System::ioCsbBase, transfer_bytes,
                                 64);
    system.run(p);
    return static_cast<double>(system.core().markTime(1) -
                               system.core().markTime(0));
}

double
csbLatency(Tick flush_latency, unsigned n_dwords)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = 6;
    cfg.enableCsb = true;
    cfg.core.csbFlushLatency = flush_latency;
    cfg.normalize();
    core::System system(cfg);
    isa::Program p =
        core::makeCsbSequenceKernel(core::System::ioCsbBase, n_dwords);
    system.run(p);
    return static_cast<double>(system.core().markTime(1) -
                               system.core().markTime(0));
}

} // namespace

int
main(int argc, char **argv)
{
    core::SweepRunner runner(csb::bench::stripJobsFlag(argc, argv));
    csb::bench::JsonReport report(argc, argv, "ext_csb_ablation");

    struct GridPoint
    {
        unsigned ratio;
        unsigned bytes;
    };

    report.print("=== Ablation 1a: CSB line buffers -- bus bandwidth "
                 "(8B mux bus) ===\n");
    report.print("ratio   transfer   1-buffer   2-buffer  "
                 "(B/bus-cycle)\n");
    report.beginTable("Ablation 1a: CSB line buffers -- bus bandwidth",
                      {"1-buffer", "2-buffer"});
    {
        std::vector<GridPoint> grid;
        for (unsigned ratio : {1u, 2u, 6u})
            for (unsigned bytes : {256u, 1024u})
                grid.push_back({ratio, bytes});
        auto rows = runner.mapRendered(
            grid, [](const GridPoint &g, std::ostream &os) {
                double one = csbBandwidth(g.ratio, 1, false, g.bytes);
                double two = csbBandwidth(g.ratio, 2, false, g.bytes);
                char buf[64];
                std::snprintf(buf, sizeof buf,
                              "%-7u %-10u %10.2f %10.2f\n", g.ratio,
                              g.bytes, one, two);
                os << buf;
                return std::pair<double, double>{one, two};
            });
        for (std::size_t i = 0; i < grid.size(); ++i) {
            report.print(rows[i].text);
            report.addRow("ratio" + std::to_string(grid[i].ratio) + "/" +
                              std::to_string(grid[i].bytes),
                          {rows[i].value.first, rows[i].value.second});
        }
    }
    report.print("(bus throughput is bus-limited either way)\n\n");

    report.print("=== Ablation 1b: CSB line buffers -- CPU completion "
                 "(8B mux bus) ===\n");
    report.print("ratio   transfer   1-buffer   2-buffer  "
                 "(CPU cycles)\n");
    report.beginTable("Ablation 1b: CSB line buffers -- CPU completion",
                      {"1-buffer", "2-buffer"});
    {
        std::vector<GridPoint> grid;
        for (unsigned ratio : {2u, 6u})
            for (unsigned bytes : {128u, 256u, 512u})
                grid.push_back({ratio, bytes});
        auto rows = runner.mapRendered(
            grid, [](const GridPoint &g, std::ostream &os) {
                double one = csbCpuCompletion(g.ratio, 1, g.bytes);
                double two = csbCpuCompletion(g.ratio, 2, g.bytes);
                char buf[64];
                std::snprintf(buf, sizeof buf,
                              "%-7u %-10u %10.0f %10.0f\n", g.ratio,
                              g.bytes, one, two);
                os << buf;
                return std::pair<double, double>{one, two};
            });
        for (std::size_t i = 0; i < grid.size(); ++i) {
            report.print(rows[i].text);
            report.addRow("ratio" + std::to_string(grid[i].ratio) + "/" +
                              std::to_string(grid[i].bytes),
                          {rows[i].value.first, rows[i].value.second});
        }
    }
    report.print("(the second line buffer removes the stall of the next "
                 "group's stores behind a flushed-but-unsent line -- the "
                 "pipelining extension of section 3.2)\n\n");

    report.print("=== Ablation 2: full-line vs partial flush "
                 "(ratio 6) ===\n");
    report.print("transfer   full-line    partial\n");
    report.beginTable("Ablation 2: full-line vs partial flush",
                      {"full-line", "partial"});
    {
        const std::vector<unsigned> sizes = {8u, 16u, 32u, 64u, 256u};
        auto rows = runner.mapRendered(
            sizes, [](unsigned bytes, std::ostream &os) {
                double full = csbBandwidth(6, 1, false, bytes);
                double partial = csbBandwidth(6, 1, true, bytes);
                char buf[64];
                std::snprintf(buf, sizeof buf, "%-10u %10.2f %10.2f\n",
                              bytes, full, partial);
                os << buf;
                return std::pair<double, double>{full, partial};
            });
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            report.print(rows[i].text);
            report.addRow(std::to_string(sizes[i]),
                          {rows[i].value.first, rows[i].value.second});
        }
    }
    report.print("(partial flush removes the sub-line padding penalty "
                 "when the bus supports multiple burst sizes)\n\n");

    report.print("=== Ablation 3: conditional-flush latency vs figure 5 "
                 "metric (8 dwords) ===\n");
    report.print("flush-latency   cycles\n");
    report.beginTable("Ablation 3: conditional-flush latency vs "
                      "figure 5 metric",
                      {"cycles"});
    {
        const std::vector<csb::Tick> lats = {1u, 2u, 4u, 8u};
        auto rows = runner.mapRendered(
            lats, [](csb::Tick lat, std::ostream &os) {
                double cycles = csbLatency(lat, 8);
                char buf[48];
                std::snprintf(buf, sizeof buf, "%-15llu %7.0f\n",
                              static_cast<unsigned long long>(lat),
                              cycles);
                os << buf;
                return cycles;
            });
        for (std::size_t i = 0; i < lats.size(); ++i) {
            report.print(rows[i].text);
            report.addRow(std::to_string(lats[i]), {rows[i].value});
        }
    }
    report.print("\n");

    for (unsigned ratio : {1u, 6u}) {
        std::string name =
            "CsbAblation/lineBuffers/ratio" + std::to_string(ratio);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [ratio](benchmark::State &state) {
                double one = 0;
                double two = 0;
                for (auto _ : state) {
                    one = csbBandwidth(ratio, 1, false, 1024);
                    two = csbBandwidth(ratio, 2, false, 1024);
                }
                state.counters["one_buffer_bw"] = one;
                state.counters["two_buffer_bw"] = two;
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        "CsbAblation/partialFlush/16B",
        [](benchmark::State &state) {
            double full = 0;
            double partial = 0;
            for (auto _ : state) {
                full = csbBandwidth(6, 1, false, 16);
                partial = csbBandwidth(6, 1, true, 16);
            }
            state.counters["full_line_bw"] = full;
            state.counters["partial_bw"] = partial;
        })
        ->Iterations(1)->Unit(benchmark::kMillisecond);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
