/**
 * @file
 * CPU-dispatch microbenchmark: the basic-block translation cache
 * (cpu/translator.hh) against the legacy switch-dispatch interpreter,
 * plus the cycle-level core's translated fast-forward mode.
 *
 * Three kernels stress the dispatch paths differently:
 *  - alu_branch: a tight pure-compute loop (one long basic block per
 *    iteration) -- the best case for threaded dispatch and the kernel
 *    the bench_cpu_smoke speedup gate measures;
 *  - store_heavy: a store per couple of instructions, so every block
 *    is tiny and execution bounces straight back to the slow path --
 *    the honest near-zero-gain control;
 *  - mixed: compute bursts between loads/stores/marks, the shape of a
 *    real workload.
 *
 * Every kernel is run interpreted and translated and the results --
 * final architectural state, instruction count, marks -- must be
 * bit-identical, or the binary exits non-zero.  The printed tables
 * contain only deterministic quantities (kernel shapes, instruction
 * counts, verdicts, cycle-model tick counts); wall-clock seconds and
 * the measured speedups are machine-dependent and go to stderr and
 * nowhere else, so the artifact is byte-identical across hosts and
 * --jobs values (bench_jobs_identical_cpu compares the JSON bytes).
 *
 * `--min-cpu-speedup=N` turns the alu_branch measurement into the
 * bench_cpu_smoke regression gate: exit non-zero unless translated
 * dispatch beats the interpreter by at least N x.  When the
 * interpreted baseline is too short to time reliably (a constrained
 * or heavily loaded host), the gate prints SKIP and passes, mirroring
 * bench_sweep_smoke.
 */

#include "bench_common.hh"

#include <chrono>
#include <cstdlib>

#include "core/system.hh"
#include "cpu/interpreter.hh"
#include "mem/physical_memory.hh"

namespace {

using namespace csb;
using isa::ir;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Cached scratch area (same region the litmus arenas use). */
constexpr Addr kArenaBase = 0x8000;

/** One kernel: a program plus bookkeeping for the report. */
struct Kernel
{
    const char *name;
    isa::Program program;
};

/**
 * Pure compute: each iteration is one ~42-instruction basic block
 * (integer mixing chain of one-cycle ops, so dispatch overhead -- the
 * thing being measured -- dominates the arithmetic) ending in the
 * backward loop branch.
 */
Kernel
aluBranchKernel(std::int64_t iters)
{
    Kernel k;
    k.name = "alu_branch";
    isa::Program &p = k.program;
    p.li(ir(1), 0);                       // accumulator
    p.li(ir(2), iters);                   // countdown
    p.li(ir(3), 0x9e3779b97f4a7c15ull);   // odd mixing constant
    isa::Label loop = p.newLabel();
    p.bind(loop);
    for (int round = 0; round < 10; ++round) {
        p.xor_(ir(4), ir(1), ir(3));
        p.srli(ir(5), ir(4), 29);
        p.add_(ir(1), ir(4), ir(5));
        p.sub(ir(1), ir(1), ir(2));
    }
    p.addi(ir(2), ir(2), -1);
    p.bgt(ir(2), ir(0), loop);
    p.halt();
    p.finalize();
    return k;
}

/**
 * A cached store every second instruction: every basic block is a
 * stub, so translation can win almost nothing here by design.
 */
Kernel
storeHeavyKernel(std::int64_t iters)
{
    Kernel k;
    k.name = "store_heavy";
    isa::Program &p = k.program;
    p.li(ir(1), kArenaBase);
    p.li(ir(2), iters);
    p.li(ir(3), 0);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    for (int slot = 0; slot < 4; ++slot) {
        p.addi(ir(3), ir(3), 1);
        p.std_(ir(3), ir(1), slot * 8);
    }
    p.addi(ir(2), ir(2), -1);
    p.bgt(ir(2), ir(0), loop);
    p.halt();
    p.finalize();
    return k;
}

/** Compute bursts between loads, stores and a per-iteration mark. */
Kernel
mixedKernel(std::int64_t iters)
{
    Kernel k;
    k.name = "mixed";
    isa::Program &p = k.program;
    p.li(ir(1), kArenaBase);
    p.li(ir(2), iters);
    p.li(ir(3), 0x27d4eb2f165667c5ull);
    p.li(ir(4), 0);
    isa::Label loop = p.newLabel();
    p.bind(loop);
    for (int round = 0; round < 4; ++round) {
        p.add_(ir(4), ir(4), ir(3));
        p.xor_(ir(5), ir(4), ir(2));
        p.mul(ir(5), ir(5), ir(3));
        p.srli(ir(6), ir(5), 31);
        p.xor_(ir(4), ir(5), ir(6));
    }
    p.ldd(ir(7), ir(1), 0);
    p.add_(ir(7), ir(7), ir(4));
    p.std_(ir(7), ir(1), 0);
    p.std_(ir(4), ir(1), 8);
    p.mark(7);
    p.membar();
    p.addi(ir(2), ir(2), -1);
    p.bgt(ir(2), ir(0), loop);
    p.halt();
    p.finalize();
    return k;
}

/** Outcome of one interpreter run. */
struct InterpResult
{
    cpu::ArchState state;
    std::vector<std::int64_t> marks;
    std::uint64_t insts = 0;
    double seconds = 0;
};

InterpResult
runInterpreted(const Kernel &kernel, bool translate)
{
    mem::PhysicalMemory memory;
    cpu::Interpreter interp(kernel.program, memory);
    interp.setTranslate(translate);
    auto t0 = std::chrono::steady_clock::now();
    InterpResult r;
    r.state = interp.run(std::uint64_t(-1));
    r.seconds = secondsSince(t0);
    r.marks = interp.marks();
    r.insts = interp.instsExecuted();
    return r;
}

bool
sameResult(const InterpResult &a, const InterpResult &b)
{
    return a.state.intRegs == b.state.intRegs &&
           a.state.fpRegs == b.state.fpRegs &&
           a.state.pc == b.state.pc &&
           a.state.halted == b.state.halted && a.marks == b.marks &&
           a.insts == b.insts;
}

/** Outcome of one cycle-model run (deterministic tick count). */
struct SystemResult
{
    cpu::ArchState state;
    std::vector<std::int64_t> markIds;
    Tick ticks = 0;
    std::uint64_t fastForwarded = 0;
};

SystemResult
runSystem(const Kernel &kernel, bool fast_forward)
{
    core::SystemConfig cfg;
    if (fast_forward)
        cfg.cpu.translate = cpu::TranslateMode::CoreFastForward;
    core::System system(cfg);
    system.core().loadProgram(&kernel.program, /*pid=*/1);
    SystemResult r;
    r.ticks = system.simulator().run(
        [&] { return system.core().halted() && system.quiescent(); },
        /*max_ticks=*/200'000'000);
    r.state = system.core().archState();
    for (const cpu::MarkRecord &mark : system.core().marks())
        r.markIds.push_back(mark.first);
    r.fastForwarded =
        std::uint64_t(system.core().instsFastForwarded.value());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace csb::bench;

    // Strip --min-cpu-speedup=N before google-benchmark sees argv.
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--min-cpu-speedup=", 0) == 0) {
            min_speedup = std::atof(arg.c_str() + 18);
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    // --jobs is accepted for CLI uniformity (regen passes it to every
    // bench) but the kernels are timed serially on purpose: competing
    // workers would corrupt the wall-clock comparison.
    (void)stripJobsFlag(argc, argv);
    JsonReport report(argc, argv, "perf_cpu");

    std::vector<Kernel> kernels;
    kernels.push_back(aluBranchKernel(600'000));
    kernels.push_back(storeHeavyKernel(150'000));
    kernels.push_back(mixedKernel(60'000));

    report.print("=== Translated dispatch (cpu.translate) ===\n");
    report.print("Each kernel runs on the functional interpreter with "
                 "legacy switch dispatch and with the basic-block "
                 "translation cache; final state, instruction count "
                 "and marks must be bit-identical.  Wall-clock and "
                 "speedups are machine-dependent and go to stderr "
                 "only; everything below is deterministic.\n\n");

    report.beginTable("Kernel shapes (dynamic counts are exact and "
                      "host-independent)",
                      {"static_insts", "dynamic_insts", "identical"});

    bool all_identical = true;
    double alu_speedup = 0, alu_base_s = 0;
    for (const Kernel &kernel : kernels) {
        // Best-of-3 keeps the gate stable against scheduler noise.
        InterpResult plain, translated;
        for (int rep = 0; rep < 3; ++rep) {
            InterpResult p = runInterpreted(kernel, false);
            InterpResult t = runInterpreted(kernel, true);
            if (rep == 0 || p.seconds < plain.seconds)
                plain = std::move(p);
            if (rep == 0 || t.seconds < translated.seconds)
                translated = std::move(t);
        }
        bool identical = sameResult(plain, translated);
        all_identical = all_identical && identical;
        double speedup = translated.seconds > 0
                             ? plain.seconds / translated.seconds
                             : 0;
        if (std::string(kernel.name) == "alu_branch") {
            alu_speedup = speedup;
            alu_base_s = plain.seconds;
        }
        report.printf("%-12s %8zu static, %10llu dynamic insts, "
                      "translated == interpreted: %s\n",
                      kernel.name, kernel.program.size(),
                      (unsigned long long)plain.insts,
                      identical ? "yes" : "NO");
        report.addRow(kernel.name,
                      {double(kernel.program.size()),
                       double(plain.insts), identical ? 1.0 : 0.0});
        std::fprintf(stderr,
                     "%s: interpreted %.3f s, translated %.3f s -> "
                     "%.2fx\n",
                     kernel.name, plain.seconds, translated.seconds,
                     speedup);
    }

    // Cycle model: off vs core-fastforward on the mixed kernel.  Tick
    // counts are deterministic, so they belong in the report: they
    // document the time compression the approximate mode trades for
    // speed, while the architectural results must not move.
    const Kernel &mixed = kernels.back();
    SystemResult sys_off = runSystem(mixed, false);
    SystemResult sys_ff = runSystem(mixed, true);
    bool sys_identical =
        sys_off.state.intRegs == sys_ff.state.intRegs &&
        sys_off.state.fpRegs == sys_ff.state.fpRegs &&
        sys_off.state.pc == sys_ff.state.pc &&
        sys_off.state.halted == sys_ff.state.halted &&
        sys_off.markIds == sys_ff.markIds;
    all_identical = all_identical && sys_identical;

    report.print("\ncycle model, mixed kernel: cpu.translate=off vs "
                 "core-fastforward (architectural results must match; "
                 "ticks legitimately compress)\n");
    report.printf("arch state + marks identical: %s\n",
                  sys_identical ? "yes" : "NO");
    report.beginTable("Cycle-model fast-forward on the mixed kernel "
                      "(deterministic)",
                      {"ticks", "insts_fast_forwarded", "identical"});
    report.addRow("off", {double(sys_off.ticks),
                          double(sys_off.fastForwarded),
                          sys_identical ? 1.0 : 0.0});
    report.addRow("core-fastforward",
                  {double(sys_ff.ticks), double(sys_ff.fastForwarded),
                   sys_identical ? 1.0 : 0.0});
    std::fprintf(stderr,
                 "system mixed: off %llu ticks, ff %llu ticks "
                 "(%.1fx fewer), %llu insts fast-forwarded\n",
                 (unsigned long long)sys_off.ticks,
                 (unsigned long long)sys_ff.ticks,
                 sys_ff.ticks > 0 ? double(sys_off.ticks) /
                                        double(sys_ff.ticks)
                                  : 0.0,
                 (unsigned long long)sys_ff.fastForwarded);

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: translated dispatch diverged from "
                             "the interpreter\n");
        return 1;
    }
    if (sys_ff.fastForwarded == 0) {
        std::fprintf(stderr, "FAIL: core fast-forward never engaged "
                             "on the mixed kernel\n");
        return 1;
    }

    if (min_speedup > 0) {
        if (alu_base_s < 0.05) {
            std::fprintf(stderr,
                         "SKIP: cpu-speedup gate needs an interpreted "
                         "baseline >= 0.05 s to time reliably (got "
                         "%.3f s on this host)\n",
                         alu_base_s);
        } else if (alu_speedup < min_speedup) {
            std::fprintf(stderr,
                         "FAIL: alu_branch translated speedup %.2fx "
                         "below required %.2fx\n",
                         alu_speedup, min_speedup);
            return 1;
        }
    }

    for (const Kernel &kernel : kernels) {
        std::string name = std::string("Cpu/") + kernel.name;
        benchmark::RegisterBenchmark(
            name.c_str(), [&kernel](benchmark::State &state) {
                InterpResult r;
                for (auto _ : state)
                    r = runInterpreted(kernel, true);
                state.counters["insts_per_sec"] =
                    r.seconds > 0 ? double(r.insts) / r.seconds : 0;
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
