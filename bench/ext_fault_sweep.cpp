/**
 * @file
 * Extension: message traffic under injected faults.
 *
 * The paper's microbenchmarks assume a perfect bus and wire.  This
 * sweep subjects the application message workload to a seeded fault
 * plan -- bus write NACKs plus wire drops, corruptions and lost acks
 * -- and measures what the retry/retransmit machinery costs.  The
 * reliable wire protocol (sequence numbers, checksum, ack + timeout
 * retransmit, duplicate suppression) must deliver every accepted
 * message exactly once at every fault rate, or the binary fails.
 */

#include "bench_common.hh"

#include "core/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    namespace core = csb::core;
    using core::MessageSizeDistribution;

    core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "ext_fault_sweep");
    core::BandwidthSetup setup = muxSetup(6, 64);
    constexpr unsigned kMessages = 48;
    const std::vector<unsigned> sizes = core::drawSizes(
        MessageSizeDistribution::scientific(42), kMessages);

    const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.10};

    report.print("=== Fault sweep: scientific message traffic under "
                 "injected bus/wire faults ===\n");
    report.print("(rate applies to bus write NACKs, wire drops, wire "
                 "corruptions and ack drops alike)\n");
    report.print("fault rate   lock+PIO   CSB PIO   bus retries   "
                 "retransmits   dups+bad-csum   exactly-once\n");
    report.beginTable("Fault sweep: send overhead per message (CPU "
                      "cycles) and recovery work vs fault rate",
                      {"lock+PIO", "CSB PIO", "bus retries",
                       "retransmits", "dups+bad-csum", "exactly-once"});

    struct RatePoint
    {
        std::string label;
        std::vector<double> values;
        bool exactlyOnce = false;
    };
    // Each fault rate is an independent pair of simulations (seeded
    // injector per System), dispatched across the runner's workers
    // and rendered into per-point buffers.
    auto rows = runner.mapRendered(
        rates, [&](double rate, std::ostream &os) {
            csb::sim::FaultPlan plan;
            plan.seed = 7;
            plan.busWriteNackRate = rate;
            plan.wireDropRate = rate;
            plan.wireCorruptRate = rate;
            plan.ackDropRate = rate;

            core::AppTrafficResult locked = core::runMessageWorkload(
                setup, /*use_csb=*/false, sizes, &plan);
            core::AppTrafficResult via_csb = core::runMessageWorkload(
                setup, /*use_csb=*/true, sizes, &plan);

            double retries = static_cast<double>(locked.busRetries +
                                                 via_csb.busRetries);
            double retrans = static_cast<double>(locked.retransmits +
                                                 via_csb.retransmits);
            double discards = static_cast<double>(
                locked.duplicatesSuppressed + locked.checksumDiscards +
                via_csb.duplicatesSuppressed + via_csb.checksumDiscards);

            RatePoint point;
            point.exactlyOnce =
                locked.exactlyOnce && via_csb.exactlyOnce;
            char label[16];
            std::snprintf(label, sizeof label, "%.2f", rate);
            point.label = label;
            point.values = {locked.cyclesPerMessage,
                            via_csb.cyclesPerMessage,
                            retries,
                            retrans,
                            discards,
                            point.exactlyOnce ? 1.0 : 0.0};
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "%9s %10.1f %9.1f %13.0f %13.0f %15.0f %14s\n",
                          label, locked.cyclesPerMessage,
                          via_csb.cyclesPerMessage, retries, retrans,
                          discards, point.exactlyOnce ? "yes" : "NO");
            os << buf;
            return point;
        });

    bool all_exactly_once = true;
    for (const auto &row : rows) {
        report.print(row.text);
        report.addRow(row.value.label, row.value.values);
        all_exactly_once = all_exactly_once && row.value.exactlyOnce;
    }
    report.print("(48 messages per run per mode; each message is "
                 "delivered exactly once at every fault rate -- the "
                 "wire protocol absorbs drops, corruptions and lost "
                 "acks, and NACKed bus writes are replayed in order.)"
                 "\n\n");

    if (!all_exactly_once) {
        std::fprintf(stderr,
                     "exactly-once delivery violated under faults!\n");
        return 1;
    }

    for (double rate : {0.0, 0.05}) {
        std::string name = "FaultSweep/scientific/rate_" +
                           std::to_string(static_cast<int>(rate * 100)) +
                           "pct";
        benchmark::RegisterBenchmark(
            name.c_str(),
            [setup, sizes, rate](benchmark::State &state) {
                csb::sim::FaultPlan plan;
                plan.seed = 7;
                plan.busWriteNackRate = rate;
                plan.wireDropRate = rate;
                plan.wireCorruptRate = rate;
                plan.ackDropRate = rate;
                core::AppTrafficResult result;
                for (auto _ : state) {
                    result = core::runMessageWorkload(setup, true, sizes,
                                                      &plan);
                }
                state.counters["cycles_per_message"] =
                    result.cyclesPerMessage;
                state.counters["retransmits"] =
                    static_cast<double>(result.retransmits);
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
