/**
 * @file
 * Extension: SMP I/O scaling.  The paper's motivation (section 1) is
 * that cluster nodes are themselves shared-memory multiprocessors,
 * where "system bus occupancy and synchronization overheads" compound
 * the I/O bottleneck.  This bench measures aggregate and per-core I/O
 * store bandwidth with 1 and 2 processors streaming concurrently,
 * per scheme.
 */

#include "bench_common.hh"

#include "core/kernels.hh"
#include "core/system.hh"

namespace {

using namespace csb;

struct ScalingResult
{
    double aggregate = 0;  // bytes per bus cycle over the shared window
    double completion = 0; // CPU cycles until the last core finished
};

ScalingResult
measure(core::Scheme scheme, unsigned cores, unsigned bytes_per_core)
{
    core::SystemConfig cfg;
    cfg.numCores = cores;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = 6;
    cfg.enableCsb = scheme == core::Scheme::Csb;
    cfg.ubuf.combineBytes = core::schemeCombineBytes(scheme);
    cfg.normalize();
    core::System system(cfg);

    std::vector<isa::Program> programs;
    for (unsigned c = 0; c < cores; ++c) {
        Addr base =
            (scheme == core::Scheme::Csb
                 ? core::System::ioCsbBase
                 : scheme == core::Scheme::NoCombine
                       ? core::System::ioUncachedBase
                       : core::System::ioAccelBase) +
            c * 0x10000;
        programs.push_back(
            scheme == core::Scheme::Csb
                ? core::makeCsbStoreKernel(base, bytes_per_core, 64)
                : core::makeStoreKernel(base, bytes_per_core));
    }
    for (unsigned c = 0; c < cores; ++c) {
        system.core(c).loadProgram(&programs[c],
                                   static_cast<ProcId>(c + 1));
    }
    system.simulator().run(
        [&] {
            for (unsigned c = 0; c < cores; ++c) {
                if (!system.core(c).halted())
                    return false;
            }
            return system.quiescent();
        },
        10'000'000);

    ScalingResult result;
    result.aggregate =
        static_cast<double>(cores * bytes_per_core) /
        static_cast<double>(system.ioWriteBusCycles());
    result.completion = static_cast<double>(system.simulator().curTick());
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    using core::Scheme;
    core::SweepRunner runner(csb::bench::stripJobsFlag(argc, argv));
    csb::bench::JsonReport report(argc, argv, "ext_smp_scaling");
    constexpr unsigned per_core = 1024;
    const std::vector<Scheme> schemes = {Scheme::NoCombine,
                                         Scheme::Combine64, Scheme::Csb};

    report.print("=== SMP I/O store scaling (1 KiB per core, 8B mux "
                 "bus, ratio 6, 64B line) ===\n");
    report.print("scheme     1-core agg  2-core agg   1-core done  "
                 "2-core done\n");
    report.beginTable("SMP I/O store scaling",
                      {"1-core agg", "2-core agg", "1-core done",
                       "2-core done"});
    struct SchemePoint
    {
        ScalingResult one;
        ScalingResult two;
    };
    auto rows = runner.mapRendered(
        schemes, [&](Scheme scheme, std::ostream &os) {
            SchemePoint point{measure(scheme, 1, per_core),
                              measure(scheme, 2, per_core)};
            char buf[96];
            std::snprintf(buf, sizeof buf,
                          "%-10s %11.2f %11.2f %12.0f %12.0f\n",
                          core::schemeName(scheme).c_str(),
                          point.one.aggregate, point.two.aggregate,
                          point.one.completion, point.two.completion);
            os << buf;
            return point;
        });
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const SchemePoint &point = rows[i].value;
        report.print(rows[i].text);
        report.addRow(core::schemeName(schemes[i]),
                      {point.one.aggregate, point.two.aggregate,
                       point.one.completion, point.two.completion});
    }
    report.print("(aggregate bytes per bus cycle and CPU-cycle "
                 "completion time.  Every scheme is bus-bound, so "
                 "doubling the cores doubles the completion time; what "
                 "differs is how much I/O the node pushes through the "
                 "shared bus -- the CSB moves ~78% more than "
                 "single-beat stores.  This is exactly the bus-"
                 "occupancy pressure the paper's introduction blames "
                 "for the SMP I/O bottleneck.)\n\n");

    for (Scheme scheme : schemes) {
        for (unsigned cores : {1u, 2u}) {
            std::string name = "SmpScaling/" +
                               core::schemeName(scheme) + "/" +
                               std::to_string(cores) + "core";
            benchmark::RegisterBenchmark(
                name.c_str(),
                [scheme, cores](benchmark::State &state) {
                    double bw = 0;
                    for (auto _ : state)
                        bw = measure(scheme, cores, per_core).aggregate;
                    state.counters["aggregate_bytes_per_cycle"] = bw;
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
