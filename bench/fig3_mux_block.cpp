/**
 * @file
 * Figure 3 (d)-(f): uncached store bandwidth on an 8-byte multiplexed
 * bus while the cache block size varies (32, 64, 128 bytes).
 * Fixed: processor:bus ratio 6, no turnaround cycle.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    csb::core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "fig3_mux_block");

    struct Panel
    {
        const char *name;
        unsigned block;
    };
    const Panel panels[] = {
        {"Fig 3(d) block 32B", 32},
        {"Fig 3(e) block 64B", 64},
        {"Fig 3(f) block 128B", 128},
    };

    for (const Panel &panel : panels) {
        printBandwidthPanel(
            report, runner,
            std::string(panel.name) +
                ": 8B multiplexed bus, ratio 6, no turnaround",
            muxSetup(6, panel.block));
        registerBandwidthPanel(panel.name, muxSetup(6, panel.block));
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
