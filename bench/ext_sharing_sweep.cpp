/**
 * @file
 * Extension: cached-line sharing patterns under snooping MESI.
 *
 * The fig5 lock studies assume lock lines ping-pong between caches;
 * until ROADMAP item 2 the SMP mode had no coherence protocol, so
 * nothing ping-ponged and nothing invalidated.  This bench drives the
 * canonical sharing patterns -- private (control), producer/consumer
 * (the SPSC-queue shape from Torquati, PAPERS.md), migratory
 * (lock-style read-modify-write ownership handoff), and false sharing
 * (disjoint data in one line) -- on two cores, with coherence off and
 * with snooping MESI attached, and reports completion time plus the
 * full snoop counter set (probes, hits, interventions, invalidations,
 * writebacks-on-snoop, cache-to-cache fills, upgrades).
 *
 * Coherence off is the pre-PR-8 bus: every counter must read zero and
 * the timing must match the legacy model exactly (the byte-identity
 * contract).  With MESI on, private traffic must stay snoop-silent
 * after warm-up misses while the sharing patterns pay for ownership
 * movement -- false sharing as much as true sharing, which is the
 * classic motivation for line-aligned SPSC queue slots.
 */

#include "bench_common.hh"

#include "core/system.hh"
#include "isa/program.hh"

namespace {

using namespace csb;

enum class Pattern { Private, ProducerConsumer, Migratory, FalseSharing };

const char *
patternName(Pattern pattern)
{
    switch (pattern) {
      case Pattern::Private: return "private";
      case Pattern::ProducerConsumer: return "prod/cons";
      case Pattern::Migratory: return "migratory";
      case Pattern::FalseSharing: return "false-share";
    }
    return "?";
}

/** Shared cacheable region; line-aligned, well inside RAM. */
constexpr Addr sharedBase = 0x9000;
/** Private region of core @p c (distinct cache sets from shared). */
constexpr Addr
privateBase(unsigned c)
{
    return 0xa000 + c * 0x1000;
}
constexpr unsigned numLines = 4;
constexpr unsigned rounds = 24;

/** Emit @p rounds passes over @p numLines lines for one core. */
isa::Program
patternProgram(Pattern pattern, unsigned core)
{
    isa::Program p;
    Addr base = pattern == Pattern::Private ? privateBase(core)
                                            : sharedBase;
    p.li(isa::ir(1), static_cast<std::int64_t>(base));
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned l = 0; l < numLines; ++l) {
            std::int64_t off = std::int64_t(l) * 64;
            switch (pattern) {
              case Pattern::Private:
                // Control: each core read-modify-writes its own lines;
                // after the warm-up misses this must be snoop-silent.
                p.ldd(isa::ir(4), isa::ir(1), off);
                p.li(isa::ir(5), std::int64_t(r + 1));
                p.std_(isa::ir(5), isa::ir(1), off);
                break;
              case Pattern::ProducerConsumer:
                // Core 0 publishes, core 1 polls: every producer store
                // invalidates the consumer's copy, every consumer load
                // pulls the line back Shared (cache-to-cache).
                if (core == 0) {
                    p.li(isa::ir(5), std::int64_t(r + 1));
                    p.std_(isa::ir(5), isa::ir(1), off);
                } else {
                    p.ldd(isa::ir(4), isa::ir(1), off);
                }
                break;
              case Pattern::Migratory:
                // Lock-style handoff: both cores read-modify-write the
                // same lines, so exclusive ownership migrates with a
                // demand writeback on every snoop of a Modified line.
                p.ldd(isa::ir(4), isa::ir(1), off);
                p.li(isa::ir(5), std::int64_t(r + 1));
                p.std_(isa::ir(5), isa::ir(1), off);
                break;
              case Pattern::FalseSharing:
                // Disjoint dwords of the SAME line: no data is shared,
                // yet the line ping-pongs exactly like migratory.
                p.li(isa::ir(5), std::int64_t(r + 1));
                p.std_(isa::ir(5), isa::ir(1),
                       off + std::int64_t(core) * 8);
                break;
            }
        }
    }
    p.halt();
    p.finalize();
    return p;
}

struct SharingPoint
{
    double ticks = 0;
    double snoopProbes = 0;
    double snoopHits = 0;
    double interventions = 0;
    double invalidations = 0;
    double snoopWritebacks = 0;
    double c2cFills = 0;
    double upgrades = 0;
};

SharingPoint
measure(Pattern pattern, bool coherent)
{
    core::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.lineBytes = 64;
    cfg.routeMissesOverBus = true;
    if (coherent)
        cfg.coherence.kind = mem::CoherenceKind::Mesi;
    cfg.normalize();
    core::System system(cfg);

    std::vector<isa::Program> programs;
    for (unsigned c = 0; c < 2; ++c)
        programs.push_back(patternProgram(pattern, c));
    for (unsigned c = 0; c < 2; ++c) {
        system.core(c).loadProgram(&programs[c],
                                   static_cast<ProcId>(c + 1));
    }
    system.simulator().run(
        [&] {
            return system.core(0).halted() && system.core(1).halted() &&
                   system.quiescent();
        },
        10'000'000);

    SharingPoint point;
    point.ticks = static_cast<double>(system.simulator().curTick());
    point.snoopProbes = system.bus().snoopProbes.value();
    point.snoopHits = system.bus().snoopHits.value();
    point.interventions = system.bus().snoopInterventions.value();
    point.invalidations = system.bus().snoopInvalidations.value();
    point.snoopWritebacks = system.bus().snoopWritebacks.value();
    for (unsigned c = 0; c < 2; ++c) {
        point.c2cFills += system.caches(c).cacheToCacheFills.value();
        point.upgrades += system.caches(c).upgrades.value();
    }
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    core::SweepRunner runner(csb::bench::stripJobsFlag(argc, argv));
    csb::bench::JsonReport report(argc, argv, "ext_sharing_sweep");
    const std::vector<Pattern> patterns = {
        Pattern::Private, Pattern::ProducerConsumer, Pattern::Migratory,
        Pattern::FalseSharing};

    report.print("=== Cached-line sharing patterns, 2 cores (4 lines x "
                 "24 rounds, 64B lines, snooping MESI) ===\n");
    report.print("pattern      base ticks  mesi ticks  probes  hits  "
                 "c2c  upgrades  invals  snoop-wb\n");
    report.beginTable("Sharing patterns under MESI",
                      {"base ticks", "mesi ticks", "snoop probes",
                       "snoop hits", "c2c fills", "upgrades",
                       "invalidations", "snoop writebacks"});
    struct PatternPoint
    {
        SharingPoint base;
        SharingPoint mesi;
    };
    auto rows = runner.mapRendered(
        patterns, [&](Pattern pattern, std::ostream &os) {
            PatternPoint point{measure(pattern, false),
                               measure(pattern, true)};
            char buf[120];
            std::snprintf(buf, sizeof buf,
                          "%-12s %10.0f %11.0f %7.0f %5.0f %4.0f %9.0f "
                          "%7.0f %9.0f\n",
                          patternName(pattern), point.base.ticks,
                          point.mesi.ticks, point.mesi.snoopProbes,
                          point.mesi.snoopHits, point.mesi.c2cFills,
                          point.mesi.upgrades, point.mesi.invalidations,
                          point.mesi.snoopWritebacks);
            os << buf;
            return point;
        });
    for (std::size_t i = 0; i < patterns.size(); ++i) {
        const PatternPoint &point = rows[i].value;
        report.print(rows[i].text);
        report.addRow(patternName(patterns[i]),
                      {point.base.ticks, point.mesi.ticks,
                       point.mesi.snoopProbes, point.mesi.snoopHits,
                       point.mesi.c2cFills, point.mesi.upgrades,
                       point.mesi.invalidations,
                       point.mesi.snoopWritebacks});
    }
    report.print("(base = coherence off, the pre-coherence bus: all "
                 "snoop counters are structurally zero there and are "
                 "shown for the MESI run only.  Private traffic snoops "
                 "only on its warm-up misses and never hits; the "
                 "sharing patterns pay per round -- producer/consumer "
                 "alternates invalidation and cache-to-cache supply, "
                 "migratory adds a demand writeback each handoff, and "
                 "false sharing ping-pongs identically despite sharing "
                 "no data, the classic argument for line-aligned queue "
                 "slots.)\n\n");

    for (Pattern pattern : patterns) {
        for (bool coherent : {false, true}) {
            std::string name = std::string("SharingSweep/") +
                               patternName(pattern) + "/" +
                               (coherent ? "mesi" : "base");
            benchmark::RegisterBenchmark(
                name.c_str(),
                [pattern, coherent](benchmark::State &state) {
                    double ticks = 0;
                    for (auto _ : state)
                        ticks = measure(pattern, coherent).ticks;
                    state.counters["ticks"] = ticks;
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
