/**
 * @file
 * Extension: sensitivity to store ORDER -- the CSB's real edge over
 * hardware pattern detection.
 *
 * The paper's related-work section notes the R10000's accelerated
 * buffer "is limited to strictly sequential access patterns" and that
 * hardware-transparent schemes "fail if the sequence of stores is
 * interrupted".  This bench streams the same bytes in ascending vs
 * shuffled per-line order through three mechanisms:
 *
 *   - seq-only:  R10000-style pattern-detecting combining
 *   - block:     idealized any-order block combining
 *   - CSB:       software-controlled combining
 *
 * The CSB is order-blind by construction ("combining stores can be
 * issued in any order", section 3.2); the pattern detector collapses
 * to single-beat transfers on shuffled code.
 */

#include "bench_common.hh"

#include "core/kernels.hh"
#include "core/system.hh"
#include "mem/uncached_buffer.hh"

namespace {

using namespace csb;

enum class Mechanism { SeqOnly, Block, Csb };

double
orderBandwidth(Mechanism mechanism, bool shuffled,
               unsigned transfer_bytes)
{
    core::SystemConfig cfg;
    cfg.lineBytes = 64;
    cfg.bus.kind = bus::BusKind::Multiplexed;
    cfg.bus.widthBytes = 8;
    cfg.bus.ratio = 6;
    cfg.enableCsb = mechanism == Mechanism::Csb;
    if (mechanism != Mechanism::Csb) {
        cfg.ubuf.combineBytes = 64;
        cfg.ubuf.policy = mechanism == Mechanism::SeqOnly
                              ? mem::CombinePolicy::SequentialOnly
                              : mem::CombinePolicy::Block;
    }
    cfg.normalize();
    core::System system(cfg);

    constexpr std::uint64_t seed = 2026;
    isa::Program p;
    if (mechanism == Mechanism::Csb) {
        p = shuffled
                ? core::makeShuffledCsbStoreKernel(
                      core::System::ioCsbBase, transfer_bytes, 64, seed)
                : core::makeCsbStoreKernel(core::System::ioCsbBase,
                                           transfer_bytes, 64);
    } else {
        p = shuffled
                ? core::makeShuffledStoreKernel(
                      core::System::ioAccelBase, transfer_bytes, 64,
                      seed)
                : core::makeStoreKernel(core::System::ioAccelBase,
                                        transfer_bytes);
    }
    system.run(p);
    return static_cast<double>(transfer_bytes) /
           static_cast<double>(system.ioWriteBusCycles());
}

const char *
mechanismName(Mechanism mechanism)
{
    switch (mechanism) {
      case Mechanism::SeqOnly: return "seq-only";
      case Mechanism::Block: return "block";
      case Mechanism::Csb: return "CSB";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    core::SweepRunner runner(csb::bench::stripJobsFlag(argc, argv));
    csb::bench::JsonReport report(argc, argv, "ext_store_order");
    constexpr unsigned transfer = 1024;
    const std::vector<Mechanism> mechanisms = {
        Mechanism::SeqOnly, Mechanism::Block, Mechanism::Csb};

    report.print("=== Store-order sensitivity (1 KiB, 8B mux bus, "
                 "ratio 6, 64B line) ===\n");
    report.print("mechanism   ascending   shuffled   order penalty\n");
    report.beginTable("Store-order sensitivity",
                      {"ascending", "shuffled", "order penalty %"});
    struct OrderPoint
    {
        double seq = 0;
        double shuf = 0;
        double penalty = 0;
    };
    auto rows = runner.mapRendered(
        mechanisms, [&](Mechanism mechanism, std::ostream &os) {
            OrderPoint point;
            point.seq = orderBandwidth(mechanism, false, transfer);
            point.shuf = orderBandwidth(mechanism, true, transfer);
            point.penalty = 100.0 * (1.0 - point.shuf / point.seq);
            char buf[80];
            std::snprintf(buf, sizeof buf, "%-11s %9.2f %10.2f %12.0f%%\n",
                          mechanismName(mechanism), point.seq, point.shuf,
                          point.penalty);
            os << buf;
            return point;
        });
    for (std::size_t i = 0; i < mechanisms.size(); ++i) {
        const OrderPoint &point = rows[i].value;
        report.print(rows[i].text);
        report.addRow(mechanismName(mechanisms[i]),
                      {point.seq, point.shuf, point.penalty});
    }
    report.print("(bytes per bus cycle.  Pattern-detecting hardware "
                 "loses its combining on shuffled stores; the "
                 "software-controlled CSB is order-blind.)\n\n");

    for (Mechanism mechanism : mechanisms) {
        for (bool shuffled : {false, true}) {
            std::string name = std::string("StoreOrder/") +
                               mechanismName(mechanism) + "/" +
                               (shuffled ? "shuffled" : "ascending");
            benchmark::RegisterBenchmark(
                name.c_str(),
                [mechanism, shuffled](benchmark::State &state) {
                    double bw = 0;
                    for (auto _ : state)
                        bw = orderBandwidth(mechanism, shuffled,
                                            transfer);
                    state.counters["bytes_per_bus_cycle"] = bw;
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
