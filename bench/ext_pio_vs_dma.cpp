/**
 * @file
 * Section 5 extension: quantify the PIO-vs-DMA break-even point the
 * paper argues the CSB shifts towards larger messages.  For each
 * message size, measure send latency (first instruction to last
 * payload byte on the wire) for lock-protected PIO, CSB PIO and
 * descriptor-initiated DMA.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    namespace core = csb::core;

    core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "ext_pio_vs_dma");
    core::BandwidthSetup setup = muxSetup(6, 64);
    const std::vector<unsigned> sizes = {16,  32,  64,   128, 256,
                                         512, 1024, 2048, 4096};

    report.print("=== PIO vs DMA send latency (CPU cycles) -- "
                 "8B multiplexed bus, ratio 6, 64B line ===\n");
    report.print("bytes       lock+PIO    CSB+PIO        DMA\n");
    report.beginTable("PIO vs DMA send latency (CPU cycles)",
                      {"lock+PIO", "CSB+PIO", "DMA"});
    // One independent simulation per message size; each point renders
    // its row into a private buffer and the main thread splices them
    // back in size order.
    auto rows = runner.mapRendered(
        sizes, [&](unsigned size, std::ostream &os) {
            core::MessageLatency lat =
                core::measureMessageLatency(setup, size);
            char buf[80];
            std::snprintf(buf, sizeof buf, "%-8u %10.0f %10.0f %10.0f\n",
                          size, lat.pioLockedCycles, lat.pioCsbCycles,
                          lat.dmaCycles);
            os << buf;
            return lat;
        });

    unsigned crossover_locked = 0;
    unsigned crossover_csb = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const core::MessageLatency &lat = rows[i].value;
        report.print(rows[i].text);
        report.addRow(std::to_string(sizes[i]),
                      {lat.pioLockedCycles, lat.pioCsbCycles,
                       lat.dmaCycles});
        if (crossover_locked == 0 && lat.dmaCycles < lat.pioLockedCycles)
            crossover_locked = sizes[i];
        if (crossover_csb == 0 && lat.dmaCycles < lat.pioCsbCycles)
            crossover_csb = sizes[i];
    }
    report.print("\nDMA overtakes lock-protected PIO at: " +
                 (crossover_locked ? std::to_string(crossover_locked)
                                   : std::string("never (in range)")) +
                 " bytes\n");
    report.print("DMA overtakes CSB PIO at:            " +
                 (crossover_csb ? std::to_string(crossover_csb)
                                : std::string("never (in range)")) +
                 " bytes\n");
    report.print("(the CSB moves the PIO/DMA break-even point towards "
                 "bigger messages -- paper section 5)\n\n");

    for (unsigned size : sizes) {
        std::string name = "PioVsDma/" + std::to_string(size) + "B";
        benchmark::RegisterBenchmark(
            name.c_str(),
            [setup, size](benchmark::State &state) {
                core::MessageLatency lat;
                for (auto _ : state)
                    lat = core::measureMessageLatency(setup, size);
                state.counters["lock_pio_cycles"] = lat.pioLockedCycles;
                state.counters["csb_pio_cycles"] = lat.pioCsbCycles;
                state.counters["dma_cycles"] = lat.dmaCycles;
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
