# Test driver for the bench_jobs_identical ctest entry: run one bench
# binary serially (--jobs 1) and through the worker pool (--jobs 4)
# and require byte-identical stdout AND byte-identical JSON artifacts.
# This is the executable statement of the sweep engine's contract:
# results are collected by point index, never by completion order.
# Invoked as
#   cmake -DBENCH=... -DOUT_DIR=... -P this
file(MAKE_DIRECTORY ${OUT_DIR})
foreach(jobs 1 4)
    execute_process(
        COMMAND ${BENCH} --jobs ${jobs}
                --json ${OUT_DIR}/jobs${jobs}.json
                --benchmark_filter=__nothing__
        RESULT_VARIABLE bench_rc
        OUTPUT_FILE ${OUT_DIR}/jobs${jobs}.txt)
    if(NOT bench_rc EQUAL 0)
        message(FATAL_ERROR
                "${BENCH} --jobs ${jobs} failed (rc=${bench_rc})")
    endif()
endforeach()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/jobs1.txt ${OUT_DIR}/jobs4.txt
    RESULT_VARIABLE text_rc)
if(NOT text_rc EQUAL 0)
    message(FATAL_ERROR "--jobs 1 and --jobs 4 stdout differ")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT_DIR}/jobs1.json ${OUT_DIR}/jobs4.json
    RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "--jobs 1 and --jobs 4 JSON artifacts differ")
endif()
