/**
 * @file
 * Shared helpers for the figure-regeneration benchmark binaries.
 *
 * Each binary prints the paper-style series table(s) for its figure
 * panel group and registers one google-benchmark per data point whose
 * counters carry the measured value.  Simulations are deterministic,
 * so every benchmark runs a single iteration.
 */

#ifndef CSB_BENCH_COMMON_HH
#define CSB_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiments.hh"
#include "core/sweep.hh"
#include "sim/json.hh"

namespace csb::bench {

/**
 * Strip a `--jobs N` (or `--jobs=N`) argument before google-benchmark
 * sees argv, exactly like JsonReport strips `--json`.  Returns the
 * requested worker count for the binary's SweepRunner: 0 means auto
 * (one per hardware thread) and is the default, 1 is the exact serial
 * path.  Results are byte-identical for every value -- the runner
 * collects by point index -- so the flag only changes wall-clock.
 */
inline unsigned
stripJobsFlag(int &argc, char **argv)
{
    unsigned jobs = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        int consumed = 0;
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = unsigned(std::strtoul(argv[i + 1], nullptr, 10));
            consumed = 2;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = unsigned(std::strtoul(arg.c_str() + 7, nullptr, 10));
            consumed = 1;
        }
        if (consumed > 0) {
            for (int j = i; j + consumed < argc; ++j)
                argv[j] = argv[j + consumed];
            argc -= consumed;
            break;
        }
    }
    return jobs;
}

/**
 * Trace capture/replay file arguments of a bench binary
 * (docs/TRACE_FORMAT.md).  Stripped before google-benchmark sees argv.
 */
struct TraceFileFlags
{
    /** `--trace-record PREFIX`: write point i to `PREFIX.<i>.csbt`. */
    std::string record;
    /** `--trace-replay PREFIX`: replay from `PREFIX.<i>.csbt` files. */
    std::string replay;
};

/**
 * Strip `--trace-record PREFIX` / `--trace-replay PREFIX` (and their
 * `=`-joined forms).  Benches with trace support write every recorded
 * grid point to its own CSBT file, or feed the replay phase from
 * previously written files instead of in-memory streams, exercising
 * the on-disk round trip end to end.
 */
inline TraceFileFlags
stripTraceFlags(int &argc, char **argv)
{
    TraceFileFlags flags;
    const std::pair<const char *, std::string *> known[] = {
        {"--trace-record", &flags.record},
        {"--trace-replay", &flags.replay},
    };
    for (int i = 1; i < argc;) {
        std::string arg = argv[i];
        int consumed = 0;
        for (const auto &[name, slot] : known) {
            std::string joined = std::string(name) + "=";
            if (arg == name && i + 1 < argc) {
                *slot = argv[i + 1];
                consumed = 2;
            } else if (arg.rfind(joined, 0) == 0) {
                *slot = arg.substr(joined.size());
                consumed = 1;
            }
        }
        if (consumed == 0) {
            ++i;
            continue;
        }
        for (int j = i; j + consumed < argc; ++j)
            argv[j] = argv[j + consumed];
        argc -= consumed;
    }
    return flags;
}

/**
 * Machine-readable companion to the printed tables.
 *
 * Every bench binary owns one JsonReport.  It strips a `--json <path>`
 * (or `--json=<path>`) argument before google-benchmark sees argv;
 * when present, the destructor writes a `BENCH_<name>.json`-style
 * artifact with the structured series (`tables`) plus the exact text
 * the binary printed (`rendered`), which tools/regen_experiments
 * splices back into EXPERIMENTS.md.  Without `--json` the report only
 * forwards text to stdout.
 */
class JsonReport
{
  public:
    JsonReport(int &argc, char **argv, std::string name)
        : name_(std::move(name))
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            int consumed = 0;
            if (arg == "--json" && i + 1 < argc) {
                path_ = argv[i + 1];
                consumed = 2;
            } else if (arg.rfind("--json=", 0) == 0) {
                path_ = arg.substr(7);
                consumed = 1;
            }
            if (consumed > 0) {
                for (int j = i; j + consumed < argc; ++j)
                    argv[j] = argv[j + consumed];
                argc -= consumed;
                break;
            }
        }
    }

    ~JsonReport() { write(); }

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    bool enabled() const { return !path_.empty(); }

    /**
     * Emit @p text to stdout and record it for the artifact.
     *
     * Main thread only: rendered_ and std::cout are unsynchronized by
     * design.  Sweep workers render into per-point buffers
     * (core::SweepRunner::mapRendered) and the main thread splices
     * them here in point order, which is what keeps artifacts
     * byte-identical for any --jobs value.
     */
    void
    print(const std::string &text)
    {
        std::cout << text;
        rendered_ += text;
    }

    /** printf-style print(). */
    void
    printf(const char *fmt, ...)
    {
        va_list ap;
        va_start(ap, fmt);
        va_list ap2;
        va_copy(ap2, ap);
        int n = std::vsnprintf(nullptr, 0, fmt, ap);
        va_end(ap);
        std::string buf(n > 0 ? n : 0, '\0');
        if (n > 0)
            std::vsnprintf(buf.data(), buf.size() + 1, fmt, ap2);
        va_end(ap2);
        print(buf);
    }

    /** Start a structured table; rows are appended with addRow(). */
    void
    beginTable(std::string title, std::vector<std::string> columns)
    {
        tables_.push_back(
            Table{std::move(title), std::move(columns), {}});
    }

    /** Append one row (label + one value per column) to the last table. */
    void
    addRow(std::string label, std::vector<double> values)
    {
        tables_.back().rows.push_back(
            Row{std::move(label), std::move(values)});
    }

    /** Record a bandwidth sweep as a structured table. */
    void
    addSweep(const core::BandwidthSweep &sweep)
    {
        std::vector<std::string> columns;
        for (core::Scheme scheme : sweep.schemes)
            columns.push_back(core::schemeName(scheme));
        beginTable(sweep.title, std::move(columns));
        for (std::size_t j = 0; j < sweep.sizes.size(); ++j) {
            std::vector<double> values;
            for (std::size_t i = 0; i < sweep.schemes.size(); ++i)
                values.push_back(sweep.bandwidth[i][j]);
            addRow(std::to_string(sweep.sizes[j]), std::move(values));
        }
    }

    /** Record a latency sweep as a structured table. */
    void
    addLatencySweep(const core::LatencySweep &sweep)
    {
        std::vector<std::string> columns;
        for (core::Scheme scheme : sweep.schemes) {
            columns.push_back(scheme == core::Scheme::Csb
                                  ? core::schemeName(scheme)
                                  : "lock+" + core::schemeName(scheme));
        }
        beginTable(sweep.title, std::move(columns));
        for (std::size_t j = 0; j < sweep.dwords.size(); ++j) {
            std::vector<double> values;
            for (std::size_t i = 0; i < sweep.schemes.size(); ++i)
                values.push_back(sweep.cycles[i][j]);
            addRow(std::to_string(sweep.dwords[j] * 8),
                   std::move(values));
        }
    }

    /**
     * Attach a flat name -> number scorecard to the artifact,
     * emitted as a top-level "scorecard" object (used by the
     * robustness benches; see tools/bench_schema.json).
     */
    void
    setScorecard(std::vector<std::pair<std::string, double>> entries)
    {
        scorecard_ = std::move(entries);
    }

  private:
    struct Row
    {
        std::string label;
        std::vector<double> values;
    };

    struct Table
    {
        std::string title;
        std::vector<std::string> columns;
        std::vector<Row> rows;
    };

    void
    write()
    {
        if (!enabled())
            return;
        std::ofstream os(path_);
        if (!os.is_open()) {
            std::fprintf(stderr, "cannot open --json file '%s'\n",
                         path_.c_str());
            return;
        }
        sim::JsonWriter jw(os, 2);
        jw.beginObject();
        jw.kv("schema", "csbsim-bench-1");
        jw.kv("name", name_);
        jw.key("tables");
        jw.beginArray();
        for (const Table &table : tables_) {
            jw.beginObject();
            jw.kv("title", table.title);
            jw.key("columns");
            jw.beginArray();
            for (const std::string &column : table.columns)
                jw.value(column);
            jw.endArray();
            jw.key("rows");
            jw.beginArray();
            for (const Row &row : table.rows) {
                jw.beginObject();
                jw.kv("label", row.label);
                jw.key("values");
                jw.beginArray();
                for (double v : row.values)
                    jw.value(v);
                jw.endArray();
                jw.endObject();
            }
            jw.endArray();
            jw.endObject();
        }
        jw.endArray();
        if (!scorecard_.empty()) {
            jw.key("scorecard");
            jw.beginObject();
            for (const auto &[key, value] : scorecard_) {
                jw.key(key);
                jw.value(value);
            }
            jw.endObject();
        }
        jw.kv("rendered", rendered_);
        jw.endObject();
        os << "\n";
    }

    std::string name_;
    std::string path_;
    std::string rendered_;
    std::vector<Table> tables_;
    std::vector<std::pair<std::string, double>> scorecard_;
};

/** Register one benchmark per (scheme, size) point of a sweep. */
inline void
registerBandwidthPanel(const std::string &panel,
                       const core::BandwidthSetup &setup)
{
    using core::Scheme;
    for (Scheme scheme : core::schemesForLine(setup.lineBytes)) {
        for (unsigned size : core::defaultTransferSizes()) {
            std::string name =
                panel + "/" + core::schemeName(scheme) + "/" +
                std::to_string(size) + "B";
            benchmark::RegisterBenchmark(
                name.c_str(),
                [setup, scheme, size](benchmark::State &state) {
                    double bw = 0;
                    for (auto _ : state) {
                        bw = core::measureStoreBandwidth(setup, scheme,
                                                         size);
                    }
                    state.counters["bytes_per_bus_cycle"] = bw;
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }
}

/**
 * Run, print and record the full sweep table for one panel.  The grid
 * points execute through @p runner's workers; rendering and the
 * JsonReport stay on the calling thread.
 */
inline core::BandwidthSweep
printBandwidthPanel(JsonReport &report, core::SweepRunner &runner,
                    const std::string &title,
                    const core::BandwidthSetup &setup)
{
    core::BandwidthSweep sweep = core::runBandwidthSweep(
        runner, title, setup, core::schemesForLine(setup.lineBytes),
        core::defaultTransferSizes());
    std::ostringstream os;
    core::printSweep(sweep, os);
    report.print(os.str());
    report.addSweep(sweep);
    return sweep;
}

/** Run, print and record one figure-5 latency panel. */
inline core::LatencySweep
printLatencyPanel(JsonReport &report, core::SweepRunner &runner,
                  const std::string &title,
                  const core::BandwidthSetup &setup, bool lock_miss)
{
    core::LatencySweep sweep =
        core::runLatencySweep(runner, title, setup, lock_miss);
    std::ostringstream os;
    core::printLatencySweep(sweep, os);
    report.print(os.str());
    report.addLatencySweep(sweep);
    return sweep;
}

/** Multiplexed-bus setup shorthand. */
inline core::BandwidthSetup
muxSetup(unsigned ratio, unsigned line_bytes, unsigned turnaround = 0,
         unsigned ack_delay = 0)
{
    core::BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = ratio;
    setup.bus.turnaround = turnaround;
    setup.bus.ackDelay = ack_delay;
    setup.lineBytes = line_bytes;
    return setup;
}

/** Split-bus setup shorthand. */
inline core::BandwidthSetup
splitSetup(unsigned width, unsigned ratio, unsigned line_bytes,
           unsigned turnaround = 0, unsigned ack_delay = 0)
{
    core::BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Split;
    setup.bus.widthBytes = width;
    setup.bus.ratio = ratio;
    setup.bus.turnaround = turnaround;
    setup.bus.ackDelay = ack_delay;
    setup.lineBytes = line_bytes;
    return setup;
}

} // namespace csb::bench

#endif // CSB_BENCH_COMMON_HH
