/**
 * @file
 * Shared helpers for the figure-regeneration benchmark binaries.
 *
 * Each binary prints the paper-style series table(s) for its figure
 * panel group and registers one google-benchmark per data point whose
 * counters carry the measured value.  Simulations are deterministic,
 * so every benchmark runs a single iteration.
 */

#ifndef CSB_BENCH_COMMON_HH
#define CSB_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "core/experiments.hh"

namespace csb::bench {

/** Register one benchmark per (scheme, size) point of a sweep. */
inline void
registerBandwidthPanel(const std::string &panel,
                       const core::BandwidthSetup &setup)
{
    using core::Scheme;
    for (Scheme scheme : core::schemesForLine(setup.lineBytes)) {
        for (unsigned size : core::defaultTransferSizes()) {
            std::string name =
                panel + "/" + core::schemeName(scheme) + "/" +
                std::to_string(size) + "B";
            benchmark::RegisterBenchmark(
                name.c_str(),
                [setup, scheme, size](benchmark::State &state) {
                    double bw = 0;
                    for (auto _ : state) {
                        bw = core::measureStoreBandwidth(setup, scheme,
                                                         size);
                    }
                    state.counters["bytes_per_bus_cycle"] = bw;
                })
                ->Iterations(1)->Unit(benchmark::kMillisecond);
        }
    }
}

/** Print the full sweep table for one panel. */
inline void
printBandwidthPanel(const std::string &title,
                    const core::BandwidthSetup &setup)
{
    core::BandwidthSweep sweep = core::runBandwidthSweep(
        title, setup, core::schemesForLine(setup.lineBytes),
        core::defaultTransferSizes());
    core::printSweep(sweep, std::cout);
}

/** Multiplexed-bus setup shorthand. */
inline core::BandwidthSetup
muxSetup(unsigned ratio, unsigned line_bytes, unsigned turnaround = 0,
         unsigned ack_delay = 0)
{
    core::BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Multiplexed;
    setup.bus.widthBytes = 8;
    setup.bus.ratio = ratio;
    setup.bus.turnaround = turnaround;
    setup.bus.ackDelay = ack_delay;
    setup.lineBytes = line_bytes;
    return setup;
}

/** Split-bus setup shorthand. */
inline core::BandwidthSetup
splitSetup(unsigned width, unsigned ratio, unsigned line_bytes,
           unsigned turnaround = 0, unsigned ack_delay = 0)
{
    core::BandwidthSetup setup;
    setup.bus.kind = bus::BusKind::Split;
    setup.bus.widthBytes = width;
    setup.bus.ratio = ratio;
    setup.bus.turnaround = turnaround;
    setup.bus.ackDelay = ack_delay;
    setup.lineBytes = line_bytes;
    return setup;
}

} // namespace csb::bench

#endif // CSB_BENCH_COMMON_HH
