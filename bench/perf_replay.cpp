/**
 * @file
 * Trace replay vs core-driven execution: record the reference stream
 * of a store-bandwidth grid (fig3-style multiplexed bus), replay every
 * point against a coreless replay-mode system, prove the tick-identity
 * contract, and measure the wall-clock speedup of skipping the core.
 *
 * The printed tables contain only deterministic quantities (bandwidth,
 * quiescence ticks, bus cycles, trace record counts and the identity
 * verdict), so the EXPERIMENTS.md splice stays byte-identical across
 * machines.  Wall-clock numbers go to the JSON artifact's tables and
 * to stderr.
 *
 * The identity check doubles as the replay regression gate:
 * `--min-replay-speedup=N` makes the binary exit non-zero unless
 * replay beats live execution by at least N x over the grid (and any
 * per-point divergence fails the binary unconditionally).
 *
 * `--trace-record PREFIX` additionally writes every point's stream to
 * `PREFIX.<i>.csbt`; `--trace-replay PREFIX` feeds the replay phase
 * from those files instead of memory, exercising the on-disk CSBT
 * round trip (docs/TRACE_FORMAT.md) end to end.
 */

#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "sim/trace_recorder.hh"

namespace {

using namespace csb::bench;
namespace core = csb::core;
namespace sim = csb::sim;
using csb::Tick;
using core::Scheme;

struct GridPoint
{
    Scheme scheme;
    unsigned bytes;
    /** Dependent ALU instructions between stores (see makeStoreKernel). */
    unsigned aluPerStore;
};

/** Record + replay result of one grid point. */
struct PointResult
{
    core::TracedRun live;
    core::TracedRun replayed;
    sim::MemTrace trace;
    bool identical = false;
};

std::vector<GridPoint>
makeGrid()
{
    // Two workload shapes per scheme: the paper's pure store-pressure
    // microbenchmark (pad 0), and its application-reality counterpart
    // with 32 dependent compute instructions per store.  Replay
    // fast-forwards across the compute, which is where trace-driven
    // simulation earns its keep.
    std::vector<GridPoint> grid;
    for (Scheme scheme :
         {Scheme::NoCombine, Scheme::Combine64, Scheme::Csb}) {
        grid.push_back({scheme, 16384u, 0u});
        grid.push_back({scheme, 16384u, 32u});
    }
    return grid;
}

std::string
pointName(const GridPoint &point)
{
    return core::schemeName(point.scheme) + "/" +
           std::to_string(point.bytes) + "B" +
           (point.aluPerStore
                ? "/pad" + std::to_string(point.aluPerStore)
                : "");
}

bool
sameRun(const core::TracedRun &a, const core::TracedRun &b)
{
    return a.endTick == b.endTick &&
           a.ioWriteBusCycles == b.ioWriteBusCycles &&
           a.ioWriteTxns == b.ioWriteTxns &&
           a.bytesPerBusCycle == b.bytesPerBusCycle &&
           a.memStatsJson == b.memStatsJson;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip --min-replay-speedup=N before google-benchmark sees argv.
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--min-replay-speedup=", 0) == 0) {
            min_speedup = std::atof(arg.c_str() + 21);
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    core::SweepRunner runner(stripJobsFlag(argc, argv));
    TraceFileFlags files = stripTraceFlags(argc, argv);
    JsonReport report(argc, argv, "perf_replay");

    // The fig3/fig5 reference machine: 8-byte multiplexed bus at
    // ratio 6, 64-byte lines.
    core::BandwidthSetup setup = muxSetup(6, 64);
    std::vector<GridPoint> grid = makeGrid();

    // Phase 1 -- record each point live, replay it, and compare the
    // determinism surfaces.  Points are independent; they dispatch
    // through the SweepRunner's workers and come back in grid order.
    std::vector<PointResult> results = runner.mapIndex(
        grid.size(), [&](std::size_t index) {
            const GridPoint &point = grid[index];
            PointResult res;
            sim::TraceRecorder recorder(1, setup.lineBytes);
            res.live = core::recordStoreBandwidth(
                setup, point.scheme, point.bytes, &recorder,
                point.aluPerStore);
            if (!files.record.empty()) {
                recorder.writeFile(files.record + "." +
                                   std::to_string(index) + ".csbt");
            }
            res.trace =
                files.replay.empty()
                    ? sim::MemTrace::fromRecorder(recorder)
                    : sim::MemTrace::loadFile(files.replay + "." +
                                              std::to_string(index) +
                                              ".csbt");
            res.replayed = core::replayStoreBandwidth(
                setup, point.scheme, point.bytes, res.trace);
            res.identical = sameRun(res.live, res.replayed);
            return res;
        });

    bool all_identical = true;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (results[i].identical)
            continue;
        all_identical = false;
        std::fprintf(stderr,
                     "FAIL: replay of %s diverged from live execution "
                     "(live tick %llu / %llu bus cycles, replay tick "
                     "%llu / %llu bus cycles, stats %s)\n",
                     pointName(grid[i]).c_str(),
                     static_cast<unsigned long long>(
                         results[i].live.endTick),
                     static_cast<unsigned long long>(
                         results[i].live.ioWriteBusCycles),
                     static_cast<unsigned long long>(
                         results[i].replayed.endTick),
                     static_cast<unsigned long long>(
                         results[i].replayed.ioWriteBusCycles),
                     results[i].live.memStatsJson ==
                             results[i].replayed.memStatsJson
                         ? "identical"
                         : "DIFFER");
    }

    // Phase 2 -- wall-clock.  Serial regardless of --jobs (concurrent
    // workloads would time each other's noise); best of kRepeats full
    // grid passes per mode.
    constexpr int kRepeats = 3;
    double live_s = 1e30, replay_s = 1e30;
    for (int r = 0; r < kRepeats; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        for (const GridPoint &point : grid) {
            benchmark::DoNotOptimize(core::recordStoreBandwidth(
                setup, point.scheme, point.bytes, nullptr,
                point.aluPerStore));
        }
        live_s = std::min(live_s, secondsSince(t0));

        t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < grid.size(); ++i) {
            benchmark::DoNotOptimize(core::replayStoreBandwidth(
                setup, grid[i].scheme, grid[i].bytes,
                results[i].trace));
        }
        replay_s = std::min(replay_s, secondsSince(t0));
    }
    double speedup = replay_s > 0 ? live_s / replay_s : 0.0;

    // Deterministic text only: the per-point surfaces and the identity
    // verdict, never wall-clock.
    report.print("=== Trace replay vs live execution -- 8B multiplexed "
                 "bus, ratio 6, 64B lines ===\n");
    report.printf("%-22s%12s%12s%12s%12s%10s\n", "point", "B/cycle",
                  "end-tick", "bus-cycles", "records", "replay");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        report.printf("%-22s%12.2f%12llu%12llu%12llu%10s\n",
                      pointName(grid[i]).c_str(),
                      results[i].live.bytesPerBusCycle,
                      static_cast<unsigned long long>(
                          results[i].live.endTick),
                      static_cast<unsigned long long>(
                          results[i].live.ioWriteBusCycles),
                      static_cast<unsigned long long>(
                          results[i].trace.records().size()),
                      results[i].identical ? "exact" : "DIVERGED");
    }
    report.printf("replay identity: %s (%zu/%zu points tick-identical, "
                  "stats JSON byte-identical)\n",
                  all_identical ? "PASS" : "FAIL",
                  static_cast<std::size_t>(
                      std::count_if(results.begin(), results.end(),
                                    [](const PointResult &r) {
                                        return r.identical;
                                    })),
                  grid.size());
    report.print("(wall-clock speedup is machine-dependent and lives "
                 "in the JSON artifact's tables and on stderr, not in "
                 "this reproducible text.)\n\n");

    std::fprintf(stderr,
                 "replay: live %.4f s, replay %.4f s over %zu points "
                 "-> speedup %.1fx\n",
                 live_s, replay_s, grid.size(), speedup);

    report.beginTable("Replay wall-clock on this machine (varies by "
                      "host; the speedup is the regression gate)",
                      {"seconds"});
    report.addRow("live-grid", {live_s});
    report.addRow("replay-grid", {replay_s});
    report.beginTable("Replay speedup vs core-driven execution "
                      "(acceptance: >= 5x)",
                      {"speedup"});
    report.addRow("grid", {speedup});

    if (!all_identical)
        return 1;
    if (min_speedup > 0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: replay speedup %.2fx below required %.2fx\n",
                     speedup, min_speedup);
        return 1;
    }

    for (std::size_t i = 0; i < grid.size(); ++i) {
        std::string name = "Replay/" + pointName(grid[i]);
        const PointResult &res = results[i];
        benchmark::RegisterBenchmark(
            name.c_str(),
            [setup, point = grid[i], trace = res.trace](
                benchmark::State &state) {
                core::TracedRun run;
                for (auto _ : state) {
                    run = core::replayStoreBandwidth(
                        setup, point.scheme, point.bytes, trace);
                }
                state.counters["bytes_per_bus_cycle"] =
                    run.bytesPerBusCycle;
                state.counters["end_tick"] =
                    static_cast<double>(run.endTick);
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
