# Test driver for the bench_json_artifact ctest entry: run one bench
# binary in --json mode, then validate the artifact against the
# schema.  Invoked as
#   cmake -DBENCH=... -DPYTHON=... -DVALIDATOR=... -DOUT=... -P this
execute_process(
    COMMAND ${BENCH} --json ${OUT} --benchmark_filter=__nothing__
    RESULT_VARIABLE bench_rc
    OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} --json failed (rc=${bench_rc})")
endif()
execute_process(
    COMMAND ${PYTHON} ${VALIDATOR} ${OUT}
    RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
    message(FATAL_ERROR "schema validation failed (rc=${validate_rc})")
endif()
