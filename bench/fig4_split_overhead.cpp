/**
 * @file
 * Figure 4 (c)-(e): uncached store bandwidth on a 16-byte split bus
 * under increasing transaction overhead: a turnaround cycle (c) and
 * fixed-delay acknowledgments of 4 (d) and 8 (e) bus cycles.
 * Fixed: ratio 6, 64-byte block.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    csb::core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "fig4_split_overhead");

    struct Panel
    {
        const char *name;
        unsigned turnaround;
        unsigned ack;
    };
    const Panel panels[] = {
        {"Fig 4(c) turnaround 1", 1, 0},
        {"Fig 4(d) ack delay 4", 0, 4},
        {"Fig 4(e) ack delay 8", 0, 8},
    };

    for (const Panel &panel : panels) {
        printBandwidthPanel(
            report, runner,
            std::string(panel.name) + ": 16B split bus, ratio 6, 64B block",
            splitSetup(16, 6, 64, panel.turnaround, panel.ack));
        registerBandwidthPanel(
            panel.name, splitSetup(16, 6, 64, panel.turnaround, panel.ack));
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
