/**
 * @file
 * Extension: the paper's stated next step -- realistic application
 * message traffic instead of maximum-pressure microbenchmarks.
 *
 * Message sizes are drawn from the distribution the paper cites
 * (Mukherjee & Hill: parallel scientific applications average 19-230
 * bytes per message), plus a control/bulk bimodal mix, and sent
 * through the network interface with lock-protected conventional PIO
 * versus lock-free CSB PIO.  The metric is CPU cycles of send
 * overhead per message -- the quantity the NOW study found program
 * performance is most sensitive to (paper section 2).
 */

#include "bench_common.hh"

#include "core/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace csb::bench;
    namespace core = csb::core;
    using core::MessageSizeDistribution;

    core::SweepRunner runner(stripJobsFlag(argc, argv));
    JsonReport report(argc, argv, "ext_app_messages");
    core::BandwidthSetup setup = muxSetup(6, 64);
    constexpr unsigned kMessages = 48;

    struct Workload
    {
        const char *name;
        std::vector<unsigned> sizes;
    };
    const std::vector<Workload> workloads = {
        {"scientific (19-230B uniform)",
         core::drawSizes(MessageSizeDistribution::scientific(42),
                         kMessages)},
        {"control-heavy bimodal (80% 32B / 20% 512B)",
         core::drawSizes(
             MessageSizeDistribution::bimodal(32, 512, 0.8, 43),
             kMessages)},
        {"fixed 64B", core::drawSizes(MessageSizeDistribution::fixed(64),
                                      kMessages)},
        {"fixed 230B",
         core::drawSizes(MessageSizeDistribution::fixed(230),
                         kMessages)},
    };

    report.print("=== Application message traffic: send overhead per "
                 "message (CPU cycles) ===\n");
    report.print("workload                                     lock+PIO"
                 "    CSB PIO    speedup\n");
    report.beginTable("Application message traffic: send overhead per "
                      "message (CPU cycles)",
                      {"lock+PIO", "CSB PIO", "speedup"});
    struct ModeResults
    {
        core::AppTrafficResult locked;
        core::AppTrafficResult viaCsb;
    };
    // Each workload point runs both send modes in its own pair of
    // Systems and renders its row into a per-point buffer.
    auto rows = runner.mapRendered(
        workloads, [&](const Workload &workload, std::ostream &os) {
            ModeResults r;
            r.locked = core::runMessageWorkload(setup, /*use_csb=*/false,
                                                workload.sizes);
            r.viaCsb = core::runMessageWorkload(setup, /*use_csb=*/true,
                                                workload.sizes);
            char buf[96];
            std::snprintf(buf, sizeof buf, "%-44s %8.1f %10.1f %9.2fx\n",
                          workload.name, r.locked.cyclesPerMessage,
                          r.viaCsb.cyclesPerMessage,
                          r.locked.cyclesPerMessage /
                              r.viaCsb.cyclesPerMessage);
            os << buf;
            return r;
        });
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const ModeResults &r = rows[i].value;
        report.print(rows[i].text);
        report.addRow(workloads[i].name,
                      {r.locked.cyclesPerMessage,
                       r.viaCsb.cyclesPerMessage,
                       r.locked.cyclesPerMessage /
                           r.viaCsb.cyclesPerMessage});
        if (r.locked.delivered != workloads[i].sizes.size() ||
            r.viaCsb.delivered != workloads[i].sizes.size()) {
            std::fprintf(stderr, "message count mismatch!\n");
            return 1;
        }
    }
    report.print("(48 messages per run; every message delivered by the "
                 "NI in both modes.  The CSB's advantage holds on "
                 "application-like traffic, not just the paper's "
                 "maximum-pressure loops.)\n\n");

    for (bool use_csb : {false, true}) {
        std::string name = std::string("AppMessages/scientific/") +
                           (use_csb ? "csb" : "locked");
        benchmark::RegisterBenchmark(
            name.c_str(),
            [setup, use_csb](benchmark::State &state) {
                auto sizes = core::drawSizes(
                    MessageSizeDistribution::scientific(42), kMessages);
                core::AppTrafficResult result;
                for (auto _ : state) {
                    result = core::runMessageWorkload(setup, use_csb,
                                                      sizes);
                }
                state.counters["cycles_per_message"] =
                    result.cyclesPerMessage;
            })
            ->Iterations(1)->Unit(benchmark::kMillisecond);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
