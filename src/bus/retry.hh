/**
 * @file
 * Bounded exponential backoff shared by every bus master.
 *
 * The schedule is fully deterministic (no jitter): attempt k waits
 * initialBackoffTicks * multiplier^k ticks, capped at maxBackoffTicks,
 * and a master that exhausts maxAttempts raises a FatalError rather
 * than spinning forever.  Determinism matters more than decorrelation
 * here -- the simulator's round-robin arbitration already breaks ties,
 * and identical runs must stay bit-identical.
 */

#ifndef CSB_BUS_RETRY_HH
#define CSB_BUS_RETRY_HH

#include <algorithm>

#include "sim/types.hh"

namespace csb::bus {

/** Retry schedule for NACKed bus transactions. */
struct RetryPolicy
{
    /** Delay before the first retry, in CPU ticks. */
    Tick initialBackoffTicks = 16;
    /** Geometric growth factor per failed attempt. */
    unsigned multiplier = 2;
    /** Upper bound on the per-attempt delay. */
    Tick maxBackoffTicks = 4096;
    /** Attempts (including the first) before giving up fatally. */
    unsigned maxAttempts = 16;

    /** Backoff before retry number @p attempt (first retry is 1). */
    Tick
    backoffFor(unsigned attempt) const
    {
        Tick delay = initialBackoffTicks;
        for (unsigned i = 1; i < attempt && delay < maxBackoffTicks; ++i)
            delay *= multiplier;
        return std::min(delay, maxBackoffTicks);
    }
};

} // namespace csb::bus

#endif // CSB_BUS_RETRY_HH
