/**
 * @file
 * Bus transaction descriptors shared by masters, targets and the
 * instrumentation monitor.
 */

#ifndef CSB_BUS_TRANSACTION_HH
#define CSB_BUS_TRANSACTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace csb::bus {

/** Kind of bus tenure. */
enum class TxnKind : std::uint8_t {
    Write,      ///< address + write data from the master
    ReadReq,    ///< address only; data returns in a ReadResp tenure
    ReadResp,   ///< data tenure driven by the target
};

const char *txnKindName(TxnKind kind);

/**
 * Completion status delivered to the master with its callback.
 * Nack means the target (or the fault injector) refused the transfer
 * and the master should retry with backoff; Error is non-retryable
 * (e.g. an unmapped address with error responses enabled).
 */
enum class BusStatus : std::uint8_t {
    Ok,
    Nack,
    Error,
};

const char *busStatusName(BusStatus status);

/**
 * One bus transaction.  Sizes are powers of two between one byte and
 * the maximum burst (cache line) and must be naturally aligned; the
 * bus enforces both (paper section 4.1).
 */
struct BusTransaction
{
    TxnKind kind = TxnKind::Write;
    Addr addr = 0;
    unsigned size = 0;
    MasterId master = 0;
    /**
     * Strongly ordered (uncached) transactions may not have their
     * address cycle issued before the previous strongly ordered
     * transaction of the same master has been positively acknowledged
     * (ackDelay bus cycles after its address cycle).
     */
    bool stronglyOrdered = false;
    /** Write payload / read result. */
    std::vector<std::uint8_t> data;
    /**
     * The payload is a snapshot of bytes that are already current in
     * the functional memory image (a cache-line spill: the tag model
     * tracks dirtiness, but stores commit to PhysicalMemory directly).
     * Functional targets must NOT re-apply such a payload -- it may be
     * older than stores committed while the transaction was queued or
     * retried -- but timing, stats and traces treat it as any write.
     */
    bool snapshotPayload = false;
    /** Unique id assigned by the bus at start. */
    std::uint64_t id = 0;
    /** Completion status (set by the bus before callbacks fire). */
    BusStatus status = BusStatus::Ok;

    std::string toString() const;
};

/**
 * Completed-transaction record kept by the BusMonitor.  All cycle
 * fields are bus-cycle indices.
 */
struct TxnRecord
{
    std::uint64_t id = 0;
    TxnKind kind = TxnKind::Write;
    Addr addr = 0;
    unsigned size = 0;
    MasterId master = 0;
    bool stronglyOrdered = false;
    std::uint64_t addrCycle = 0;
    std::uint64_t firstDataCycle = 0;
    std::uint64_t lastDataCycle = 0;
    /** CPU tick at which the master's request was first presented. */
    Tick requestTick = 0;
    /** CPU tick at which the transaction completed. */
    Tick completionTick = 0;
    /**
     * Status as decided when the tenure started (unmapped addresses
     * and injected faults).  A target NACK decided at completion time
     * is reflected in the master's callback and the bus stats, not
     * retroactively here.
     */
    BusStatus status = BusStatus::Ok;
};

} // namespace csb::bus

#endif // CSB_BUS_TRANSACTION_HH
