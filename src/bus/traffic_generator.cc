#include "traffic_generator.hh"

#include "sim/logging.hh"

namespace csb::bus {

TrafficGenerator::TrafficGenerator(sim::Simulator &simulator,
                                   SystemBus &bus,
                                   const TrafficGeneratorParams &params,
                                   std::string name,
                                   sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(bus.params().ratio),
                   /*eval_order=*/-4),
      sim::stats::StatGroup(name, stat_parent),
      reads(this, "reads", "background read transactions"),
      writes(this, "writes", "background write transactions"),
      bytesMoved(this, "bytesMoved", "background bytes moved"),
      retries(this, "retries", "issue attempts the bus deferred"),
      sim_(simulator), bus_(bus), params_(params),
      rng_(params.seed)
{
    csb_assert(isPowerOf2(params_.txnBytes), "txn size must be 2^n");
    csb_assert(params_.interval >= 1.0, "interval must be >= 1 cycle");
    masterId_ = bus_.registerMaster(name + ".port");
    simulator.registerClocked(this);
}

void
TrafficGenerator::tick()
{
    if (!running_)
        return;
    auto cycle = static_cast<double>(bus_.curBusCycle());
    if (cycle < nextIssueCycle_)
        return;
    if (!bus_.masterIdle(masterId_)) {
        retries += 1;
        return;
    }

    // Uniformly distributed line-aligned address within the region.
    Addr span = params_.regionSize / params_.txnBytes;
    Addr addr = params_.base +
                rng_.uniform(0, span - 1) * params_.txnBytes;
    bool is_write = rng_.uniform01() < params_.writeFraction;

    if (is_write) {
        std::vector<std::uint8_t> data(params_.txnBytes, 0xb6);
        bool ok = bus_.requestWrite(masterId_, addr, std::move(data),
                                    /*strongly_ordered=*/false,
                                    /*on_complete=*/{});
        csb_assert(ok, "traffic write refused despite idle master");
        writes += 1;
    } else {
        bool ok = bus_.requestRead(
            masterId_, addr, params_.txnBytes,
            /*strongly_ordered=*/false,
            [](Tick, const std::vector<std::uint8_t> &) {});
        csb_assert(ok, "traffic read refused despite idle master");
        reads += 1;
    }
    bytesMoved += params_.txnBytes;

    // Schedule the next attempt with +/-50% jitter around the mean
    // interval so the load does not phase-lock with the victim.
    double jitter = 0.5 + rng_.uniform01();
    nextIssueCycle_ = cycle + params_.interval * jitter;
}

} // namespace csb::bus
