#include "traffic_generator.hh"

#include "sim/logging.hh"

namespace csb::bus {

TrafficGenerator::TrafficGenerator(sim::Simulator &simulator,
                                   SystemBus &bus,
                                   const TrafficGeneratorParams &params,
                                   std::string name,
                                   sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(bus.params().ratio),
                   /*eval_order=*/-4),
      sim::stats::StatGroup(name, stat_parent),
      reads(this, "reads", "background read transactions"),
      writes(this, "writes", "background write transactions"),
      bytesMoved(this, "bytesMoved", "background bytes moved"),
      retries(this, "retries", "issue attempts the bus deferred"),
      busNacks(this, "busNacks", "transactions NACKed on the bus"),
      busRetries(this, "busRetries",
                 "NACKed transactions reissued after backoff"),
      sim_(simulator), bus_(bus), params_(params),
      rng_(params.seed)
{
    csb_assert(isPowerOf2(params_.txnBytes), "txn size must be 2^n");
    csb_assert(params_.interval >= 1.0, "interval must be >= 1 cycle");
    masterId_ = bus_.registerMaster(name + ".port");
    simulator.registerClocked(this);
}

void
TrafficGenerator::tick()
{
    if (!running_ && !redo_) {
        // Stopped with no pending retry: sleep until start() (or a
        // late NACK completion arming redo_) ungates us.
        gate();
        return;
    }

    // A NACKed transaction waiting out its backoff takes precedence
    // over new traffic (and is serviced even after stop()).
    if (redo_) {
        if (sim_.curTick() < redo_->earliest || !bus_.masterIdle(masterId_))
            return;
        Redo redo = *redo_;
        redo_.reset();
        issue(redo.addr, redo.isWrite, redo.attempt);
        return;
    }

    if (!running_)
        return;
    auto cycle = static_cast<double>(bus_.curBusCycle());
    if (cycle < nextIssueCycle_)
        return;
    if (!bus_.masterIdle(masterId_)) {
        retries += 1;
        return;
    }

    // Uniformly distributed line-aligned address within the region.
    Addr span = params_.regionSize / params_.txnBytes;
    Addr addr = params_.base +
                rng_.uniform(0, span - 1) * params_.txnBytes;
    bool is_write = rng_.uniform01() < params_.writeFraction;

    issue(addr, is_write, /*attempt=*/0);
    if (is_write)
        writes += 1;
    else
        reads += 1;
    bytesMoved += params_.txnBytes;

    // Schedule the next attempt with +/-50% jitter around the mean
    // interval so the load does not phase-lock with the victim.
    double jitter = 0.5 + rng_.uniform01();
    nextIssueCycle_ = cycle + params_.interval * jitter;
}

void
TrafficGenerator::issue(Addr addr, bool is_write, unsigned attempt)
{
    if (is_write) {
        std::vector<std::uint8_t> data(params_.txnBytes, 0xb6);
        bool ok = bus_.requestWrite(
            masterId_, addr, std::move(data),
            /*strongly_ordered=*/false,
            [this, addr, attempt](Tick when, BusStatus status) {
                onCompletion(addr, true, attempt, when, status);
            });
        csb_assert(ok, "traffic write refused despite idle master");
    } else {
        bool ok = bus_.requestRead(
            masterId_, addr, params_.txnBytes,
            /*strongly_ordered=*/false,
            [this, addr, attempt](Tick when, BusStatus status,
                                  const std::vector<std::uint8_t> &) {
                onCompletion(addr, false, attempt, when, status);
            });
        csb_assert(ok, "traffic read refused despite idle master");
    }
}

void
TrafficGenerator::onCompletion(Addr addr, bool is_write, unsigned attempt,
                               Tick when, BusStatus status)
{
    if (status == BusStatus::Ok)
        return;
    if (status == BusStatus::Error) {
        csb_fatal("traffic generator ", sim::Clocked::name(),
                  ": bus error on ", is_write ? "write" : "read",
                  " at 0x", std::hex, addr);
    }
    busNacks += 1;
    if (attempt + 1 >= params_.retry.maxAttempts) {
        csb_fatal("traffic generator ", sim::Clocked::name(),
                  ": retries exhausted (", params_.retry.maxAttempts,
                  ") at 0x", std::hex, addr);
    }
    busRetries += 1;
    redo_ = Redo{is_write, addr, attempt + 1,
                 when + params_.retry.backoffFor(attempt + 1)};
    ungate();
}

} // namespace csb::bus
