/**
 * @file
 * Bus instrumentation: per-transaction records and the paper's
 * effective-bandwidth metric (bytes per bus cycle, measured from the
 * first address cycle to the last data cycle; a trailing turnaround
 * cycle is not charged -- section 4.3.1).
 */

#ifndef CSB_BUS_BUS_MONITOR_HH
#define CSB_BUS_BUS_MONITOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"
#include "transaction.hh"

namespace csb::sim {
class CheckpointWriter;
class CheckpointReader;
} // namespace csb::sim

namespace csb::bus {

/** Records every completed transaction; supports measurement windows. */
class BusMonitor
{
  public:
    /** Append a completed-transaction record. */
    void record(const TxnRecord &rec) { records_.push_back(rec); }

    /** Forget all records (start a fresh measurement window). */
    void clear() { records_.clear(); }

    const std::vector<TxnRecord> &records() const { return records_; }

    /** Number of recorded transactions matching @p pred (all if empty). */
    std::size_t count(
        const std::function<bool(const TxnRecord &)> &pred = {}) const;

    /** Total bytes moved by matching transactions. */
    std::uint64_t bytes(
        const std::function<bool(const TxnRecord &)> &pred = {}) const;

    /**
     * Effective bandwidth over the matching records:
     * bytes / (max(lastDataCycle) - min(addrCycle) + 1).
     * @return 0 when no record matches.
     */
    double bandwidthBytesPerBusCycle(
        const std::function<bool(const TxnRecord &)> &pred = {}) const;

    /** Bus cycle of the first matching address cycle (or 0). */
    std::uint64_t firstAddrCycle(
        const std::function<bool(const TxnRecord &)> &pred = {}) const;

    /** Bus cycle of the last matching data cycle (or 0). */
    std::uint64_t lastDataCycle(
        const std::function<bool(const TxnRecord &)> &pred = {}) const;

    /**
     * Serialize all transaction records so bandwidth measurements
     * spanning a checkpoint boundary match an uninterrupted run.
     * Restore requires an empty monitor.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;
    void checkpointRestore(sim::CheckpointReader &cr);

  private:
    std::vector<TxnRecord> records_;
};

} // namespace csb::bus

#endif // CSB_BUS_BUS_MONITOR_HH
