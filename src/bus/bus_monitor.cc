#include "bus_monitor.hh"

#include <algorithm>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace csb::bus {

namespace {

bool
matches(const std::function<bool(const TxnRecord &)> &pred,
        const TxnRecord &rec)
{
    return !pred || pred(rec);
}

} // namespace

std::size_t
BusMonitor::count(const std::function<bool(const TxnRecord &)> &pred) const
{
    std::size_t n = 0;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec))
            ++n;
    }
    return n;
}

std::uint64_t
BusMonitor::bytes(const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t total = 0;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec))
            total += rec.size;
    }
    return total;
}

std::uint64_t
BusMonitor::firstAddrCycle(
    const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t first = UINT64_MAX;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec))
            first = std::min(first, rec.addrCycle);
    }
    return first == UINT64_MAX ? 0 : first;
}

std::uint64_t
BusMonitor::lastDataCycle(
    const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t last = 0;
    bool any = false;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec)) {
            last = std::max(last, rec.lastDataCycle);
            any = true;
        }
    }
    return any ? last : 0;
}

double
BusMonitor::bandwidthBytesPerBusCycle(
    const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t total_bytes = 0;
    std::uint64_t first = UINT64_MAX;
    std::uint64_t last = 0;
    for (const TxnRecord &rec : records_) {
        if (!matches(pred, rec))
            continue;
        total_bytes += rec.size;
        first = std::min(first, rec.addrCycle);
        last = std::max(last, rec.lastDataCycle);
    }
    if (total_bytes == 0 || first == UINT64_MAX)
        return 0.0;
    return static_cast<double>(total_bytes) /
           static_cast<double>(last - first + 1);
}

void
BusMonitor::checkpointSave(sim::CheckpointWriter &cw) const
{
    cw.putU64(records_.size());
    for (const TxnRecord &rec : records_) {
        cw.putU64(rec.id);
        cw.putU8(static_cast<std::uint8_t>(rec.kind));
        cw.putU64(rec.addr);
        cw.putU32(rec.size);
        cw.putU32(rec.master);
        cw.putU8(rec.stronglyOrdered ? 1 : 0);
        cw.putU64(rec.addrCycle);
        cw.putU64(rec.firstDataCycle);
        cw.putU64(rec.lastDataCycle);
        cw.putU64(rec.requestTick);
        cw.putU64(rec.completionTick);
        cw.putU8(static_cast<std::uint8_t>(rec.status));
    }
}

void
BusMonitor::checkpointRestore(sim::CheckpointReader &cr)
{
    csb_assert(records_.empty(),
               "bus monitor checkpoint restore into a used monitor");
    const std::uint64_t count = cr.getU64();
    records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TxnRecord rec;
        rec.id = cr.getU64();
        rec.kind = static_cast<TxnKind>(cr.getU8());
        rec.addr = cr.getU64();
        rec.size = cr.getU32();
        rec.master = static_cast<MasterId>(cr.getU32());
        rec.stronglyOrdered = cr.getU8() != 0;
        rec.addrCycle = cr.getU64();
        rec.firstDataCycle = cr.getU64();
        rec.lastDataCycle = cr.getU64();
        rec.requestTick = cr.getU64();
        rec.completionTick = cr.getU64();
        rec.status = static_cast<BusStatus>(cr.getU8());
        records_.push_back(rec);
    }
}

} // namespace csb::bus
