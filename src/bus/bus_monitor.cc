#include "bus_monitor.hh"

#include <algorithm>

namespace csb::bus {

namespace {

bool
matches(const std::function<bool(const TxnRecord &)> &pred,
        const TxnRecord &rec)
{
    return !pred || pred(rec);
}

} // namespace

std::size_t
BusMonitor::count(const std::function<bool(const TxnRecord &)> &pred) const
{
    std::size_t n = 0;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec))
            ++n;
    }
    return n;
}

std::uint64_t
BusMonitor::bytes(const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t total = 0;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec))
            total += rec.size;
    }
    return total;
}

std::uint64_t
BusMonitor::firstAddrCycle(
    const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t first = UINT64_MAX;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec))
            first = std::min(first, rec.addrCycle);
    }
    return first == UINT64_MAX ? 0 : first;
}

std::uint64_t
BusMonitor::lastDataCycle(
    const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t last = 0;
    bool any = false;
    for (const TxnRecord &rec : records_) {
        if (matches(pred, rec)) {
            last = std::max(last, rec.lastDataCycle);
            any = true;
        }
    }
    return any ? last : 0;
}

double
BusMonitor::bandwidthBytesPerBusCycle(
    const std::function<bool(const TxnRecord &)> &pred) const
{
    std::uint64_t total_bytes = 0;
    std::uint64_t first = UINT64_MAX;
    std::uint64_t last = 0;
    for (const TxnRecord &rec : records_) {
        if (!matches(pred, rec))
            continue;
        total_bytes += rec.size;
        first = std::min(first, rec.addrCycle);
        last = std::max(last, rec.lastDataCycle);
    }
    if (total_bytes == 0 || first == UINT64_MAX)
        return 0.0;
    return static_cast<double>(total_bytes) /
           static_cast<double>(last - first + 1);
}

} // namespace csb::bus
