#include "system_bus.hh"

#include <algorithm>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "sim/trace_json.hh"

namespace csb::bus {

const char *
txnKindName(TxnKind kind)
{
    switch (kind) {
      case TxnKind::Write: return "write";
      case TxnKind::ReadReq: return "read-req";
      case TxnKind::ReadResp: return "read-resp";
    }
    return "?";
}

const char *
snoopKindName(SnoopKind kind)
{
    switch (kind) {
      case SnoopKind::Read: return "read";
      case SnoopKind::ReadExclusive: return "read-excl";
      case SnoopKind::Upgrade: return "upgrade";
    }
    return "?";
}

const char *
busStatusName(BusStatus status)
{
    switch (status) {
      case BusStatus::Ok: return "ok";
      case BusStatus::Nack: return "nack";
      case BusStatus::Error: return "error";
    }
    return "?";
}

std::string
BusTransaction::toString() const
{
    std::ostringstream os;
    os << txnKindName(kind) << " addr=0x" << std::hex << addr << std::dec
       << " size=" << size << " master=" << master
       << (stronglyOrdered ? " ordered" : "");
    return os.str();
}

void
BusParams::validate() const
{
    if (!isPowerOf2(widthBytes) || widthBytes == 0 || widthBytes > 64)
        csb_fatal("bus width must be a power of two in [1,64], got ",
                  widthBytes);
    if (ratio == 0)
        csb_fatal("processor:bus frequency ratio must be >= 1");
    if (!isPowerOf2(maxBurstBytes) || maxBurstBytes < widthBytes)
        csb_fatal("max burst must be a power of two >= bus width");
}

SystemBus::SystemBus(sim::Simulator &simulator, const BusParams &params,
                     std::string name, sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(params.ratio), /*eval_order=*/-10),
      sim::stats::StatGroup(name, stat_parent),
      numWrites(this, "numWrites", "write transactions completed"),
      numReads(this, "numReads", "read transactions completed"),
      bytesWritten(this, "bytesWritten", "bytes moved by writes"),
      bytesRead(this, "bytesRead", "bytes moved by read responses"),
      busyDataCycles(this, "busyDataCycles",
                     "bus cycles spent moving address or data"),
      orderingStallCycles(this, "orderingStallCycles",
                          "cycles a ready request waited for an ack"),
      turnaroundCycles(this, "turnaroundCycles",
                       "idle turnaround cycles inserted after tenures"),
      txnLatencyCycles(this, "txnLatencyCycles",
                       "bus cycles from request to completion",
                       0, 128, 4),
      numNacks(this, "numNacks",
               "transactions completed with a NACK status"),
      numErrors(this, "numErrors",
                "transactions completed with an error status"),
      snoopProbes(this, "snoopProbes", "snoop broadcasts issued"),
      snoopHits(this, "snoopHits", "probed caches that held a copy"),
      snoopMisses(this, "snoopMisses",
                  "broadcasts no other cache had the line for"),
      snoopInterventions(this, "snoopInterventions",
                         "broadcasts supplied cache-to-cache"),
      snoopInvalidations(this, "snoopInvalidations",
                         "copies invalidated by broadcast probes"),
      snoopWritebacks(this, "snoopWritebacks",
                      "dirty copies demand-written-back by probes"),
      utilization(this, "utilization",
                  "busy fraction of elapsed bus cycles",
                  [this] {
                      std::uint64_t c = curBusCycle();
                      return c ? busyDataCycles.value() /
                                     static_cast<double>(c)
                               : 0.0;
                  }),
      sim_(simulator), params_(params)
{
    params_.validate();
    simulator.registerClocked(this);
}

SystemBus::~SystemBus() = default;

MasterId
SystemBus::registerMaster(const std::string &name)
{
    masterNames_.push_back(name);
    slots_.emplace_back();
    lastOrderedAddrCycle_.push_back(
        -static_cast<std::int64_t>(params_.ackDelay) - 1);
    return static_cast<MasterId>(masterNames_.size() - 1);
}

void
SystemBus::addTarget(Addr base, Addr size, BusTarget *target)
{
    csb_assert(target != nullptr, "null bus target");
    for (const TargetRange &range : targets_) {
        bool disjoint = base + size <= range.base ||
                        range.base + range.size <= base;
        if (!disjoint) {
            csb_fatal("bus target '", target->targetName(),
                      "' overlaps '", range.target->targetName(), "'");
        }
    }
    targets_.push_back(TargetRange{base, size, target});
}

void
SystemBus::checkTransaction(const BusTransaction &txn) const
{
    csb_assert(txn.size > 0 && isPowerOf2(txn.size),
               "transaction size must be a non-zero power of two, got ",
               txn.size);
    csb_assert(txn.size <= params_.maxBurstBytes,
               "transaction larger than max burst: ", txn.size);
    csb_assert(txn.addr % txn.size == 0,
               "transaction not naturally aligned: addr=", txn.addr,
               " size=", txn.size);
    csb_assert(txn.master < slots_.size(), "unknown master ", txn.master);
}

BusTarget *
SystemBus::findTarget(Addr addr, unsigned size) const
{
    for (const TargetRange &range : targets_) {
        if (addr >= range.base && addr + size <= range.base + range.size)
            return range.target;
    }
    return nullptr;
}

void
SystemBus::unmappedAbort(const BusTransaction &txn) const
{
    csb_panic("no bus target for addr 0x", std::hex, txn.addr, std::dec,
              " size ", txn.size, " (", txnKindName(txn.kind),
              " issued by master '", masterNames_[txn.master],
              "'; set BusParams::errorResponses to deliver a bus error "
              "instead of aborting)");
}

BusStatus
SystemBus::noteFailure(const BusTransaction &txn, BusStatus status,
                       Tick when)
{
    if (status == BusStatus::Nack)
        numNacks += 1;
    else if (status == BusStatus::Error)
        numErrors += 1;
    sim::trace::log("bus", busStatusName(status), " completion ",
                    txn.toString());
    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonInstant(
            "bus", std::string("bus-") + busStatusName(status), when,
            {{"addr", sim::trace::hexArg(txn.addr)},
             {"master", masterNames_[txn.master]},
             {"kind", txnKindName(txn.kind)}});
    }
    return status;
}

bool
SystemBus::requestWrite(MasterId master, Addr addr,
                        std::vector<std::uint8_t> data,
                        bool strongly_ordered, WriteCallback on_complete,
                        StartCallback on_start, bool snapshot_payload)
{
    csb_assert(master < slots_.size(), "unknown master");
    if (slots_[master].has_value())
        return false;
    ungate();

    Request req;
    req.txn.kind = TxnKind::Write;
    req.txn.addr = addr;
    req.txn.size = static_cast<unsigned>(data.size());
    req.txn.master = master;
    req.txn.stronglyOrdered = strongly_ordered;
    req.txn.data = std::move(data);
    req.txn.snapshotPayload = snapshot_payload;
    req.onWrite = std::move(on_complete);
    req.onStart = std::move(on_start);
    req.requestTick = sim_.curTick();
    checkTransaction(req.txn);
    if (!findTarget(addr, req.txn.size)) {
        // Fail fast on unmapped addresses unless the configuration
        // asks for a bus error response instead.
        if (!params_.errorResponses)
            unmappedAbort(req.txn);
        req.unmapped = true;
    }
    slots_[master] = std::move(req);
    return true;
}

bool
SystemBus::requestRead(MasterId master, Addr addr, unsigned size,
                       bool strongly_ordered, ReadCallback on_complete,
                       StartCallback on_start)
{
    csb_assert(master < slots_.size(), "unknown master");
    if (slots_[master].has_value())
        return false;
    ungate();

    Request req;
    req.txn.kind = TxnKind::ReadReq;
    req.txn.addr = addr;
    req.txn.size = size;
    req.txn.master = master;
    req.txn.stronglyOrdered = strongly_ordered;
    req.onRead = std::move(on_complete);
    req.onStart = std::move(on_start);
    req.requestTick = sim_.curTick();
    checkTransaction(req.txn);
    if (!findTarget(addr, size)) {
        if (!params_.errorResponses)
            unmappedAbort(req.txn);
        req.unmapped = true;
    }
    slots_[master] = std::move(req);
    return true;
}

void
SystemBus::registerSnooper(Snooper *snooper)
{
    csb_assert(snooper != nullptr, "null snooper");
    for (const Snooper *s : snoopers_)
        csb_assert(s != snooper, "snooper registered twice");
    snoopers_.push_back(snooper);
}

SnoopSummary
SystemBus::snoopBroadcast(const Snooper *requester, Addr line_addr,
                          SnoopKind kind)
{
    SnoopSummary summary;
    snoopProbes += 1;
    for (Snooper *snooper : snoopers_) {
        if (snooper == requester)
            continue;
        SnoopReply reply = snooper->snoopProbe(line_addr, kind);
        if (!reply.hadCopy)
            continue;
        ++summary.hits;
        summary.hadCopy = true;
        summary.supplied = summary.supplied || reply.supplied;
        summary.wroteBack = summary.wroteBack || reply.wroteBack;
        snoopHits += 1;
        if (reply.invalidated)
            snoopInvalidations += 1;
        if (reply.wroteBack)
            snoopWritebacks += 1;
    }
    if (!summary.hadCopy)
        snoopMisses += 1;
    if (summary.supplied)
        snoopInterventions += 1;

    sim::trace::log("bus", "snoop ", snoopKindName(kind), " addr=0x",
                    std::hex, line_addr, std::dec, " hits=", summary.hits);
    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonInstant(
            "bus", std::string("snoop-") + snoopKindName(kind),
            sim_.curTick(),
            {{"addr", sim::trace::hexArg(line_addr)},
             {"hits", std::to_string(summary.hits)},
             {"supplied", summary.supplied ? "true" : "false"},
             {"wroteBack", summary.wroteBack ? "true" : "false"}});
    }
    return summary;
}

bool
SystemBus::masterIdle(MasterId master) const
{
    csb_assert(master < slots_.size(), "unknown master");
    return !slots_[master].has_value();
}

bool
SystemBus::wouldAcceptAtNextEdge(MasterId master, bool strongly_ordered,
                                 bool is_write) const
{
    csb_assert(master < slots_.size(), "unknown master");
    // A request presented during this CPU tick is examined at the
    // next bus edge.
    std::uint64_t c = clockDomain().cycleAt(sim_.curTick()) + 1;
    if (c < addrNextFree_)
        return false;
    if (is_write && params_.kind == BusKind::Split && c < dataNextFree_)
        return false;
    if (strongly_ordered && params_.ackDelay != 0) {
        std::int64_t earliest =
            lastOrderedAddrCycle_[master] +
            static_cast<std::int64_t>(params_.ackDelay);
        if (static_cast<std::int64_t>(c) < earliest)
            return false;
    }
    // A ready response takes priority over new requests on the
    // multiplexed organization.
    if (params_.kind == BusKind::Multiplexed && !responses_.empty() &&
        responses_.front().readyTick <= clockDomain().tickOfCycle(c)) {
        return false;
    }
    return true;
}

bool
SystemBus::quiescent() const
{
    if (inFlight_ > 0 || !responses_.empty())
        return false;
    for (const auto &slot : slots_) {
        if (slot.has_value())
            return false;
    }
    return true;
}

std::uint64_t
SystemBus::curBusCycle() const
{
    return clockDomain().cycleAt(sim_.curTick());
}

unsigned
SystemBus::dataCycles(unsigned size) const
{
    return static_cast<unsigned>(divCeil(size, params_.widthBytes));
}

bool
SystemBus::orderingAllows(const Request &req, std::uint64_t c) const
{
    if (!req.txn.stronglyOrdered || params_.ackDelay == 0)
        return true;
    std::int64_t earliest =
        lastOrderedAddrCycle_[req.txn.master] +
        static_cast<std::int64_t>(params_.ackDelay);
    return static_cast<std::int64_t>(c) >= earliest;
}

void
SystemBus::tick()
{
    if (quiescent()) {
        // No request, no queued response, nothing in flight: the bus
        // sleeps until a master presents a new transaction.
        gate();
        return;
    }
    std::uint64_t c = curBusCycle();
    bool data_path_taken = tryStartResponse(c);
    tryStartRequest(c, data_path_taken);
}

bool
SystemBus::tryStartResponse(std::uint64_t c)
{
    if (responses_.empty())
        return false;

    PendingResponse &resp = responses_.front();
    Tick now = sim_.curTick();
    if (resp.readyTick > now)
        return false;

    unsigned cycles = dataCycles(resp.txn.size);
    if (params_.kind == BusKind::Multiplexed) {
        if (c < addrNextFree_)
            return false;
        addrNextFree_ = c + cycles + params_.turnaround;
    } else {
        if (c < dataNextFree_)
            return false;
        dataNextFree_ = c + cycles + params_.turnaround;
    }

    TxnRecord rec;
    rec.id = resp.txn.id;
    rec.kind = TxnKind::ReadResp;
    rec.addr = resp.txn.addr;
    rec.size = resp.txn.size;
    rec.master = resp.txn.master;
    rec.stronglyOrdered = resp.txn.stronglyOrdered;
    rec.addrCycle = resp.reqAddrCycle;
    rec.firstDataCycle = c;
    rec.lastDataCycle = c + cycles - 1;
    rec.requestTick = resp.requestTick;
    rec.completionTick = clockDomain().tickOfCycle(rec.lastDataCycle + 1);
    monitor_.record(rec);

    numReads += 1;
    bytesRead += resp.txn.size;
    busyDataCycles += cycles;
    turnaroundCycles += params_.turnaround;
    txnLatencyCycles.sample(
        static_cast<double>(rec.completionTick - rec.requestTick) /
        clockDomain().period());

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonSpan(
            "bus", "read-resp " + std::to_string(rec.size) + "B",
            clockDomain().tickOfCycle(rec.firstDataCycle),
            rec.completionTick,
            {{"addr", sim::trace::hexArg(rec.addr)},
             {"master", masterNames_[rec.master]}});
    }

    PendingResponse done = std::move(resp);
    responses_.pop_front();
    sim_.eventQueue().scheduleFunc(
        rec.completionTick,
        [this, done = std::move(done), when = rec.completionTick]() {
            --inFlight_;
            if (done.onRead)
                done.onRead(when, BusStatus::Ok, done.txn.data);
        });
    return true;
}

bool
SystemBus::tryStartRequest(std::uint64_t c, bool data_path_taken)
{
    if (slots_.empty())
        return false;

    // On the multiplexed organization a response tenure consumes the
    // whole bus for this cycle.
    if (params_.kind == BusKind::Multiplexed && data_path_taken)
        return false;

    if (c < addrNextFree_)
        return false;

    std::size_t n = slots_.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t m = (lastGranted_ + 1 + i) % n;
        if (!slots_[m].has_value())
            continue;
        Request &req = *slots_[m];
        if (!orderingAllows(req, c)) {
            orderingStallCycles += 1;
            continue;
        }
        if (req.txn.kind == TxnKind::Write) {
            // A split-bus write drives address and data together, so
            // the data path must be free as well.
            if (params_.kind == BusKind::Split &&
                (data_path_taken || c < dataNextFree_)) {
                continue;
            }
            startWrite(req, c);
        } else {
            startRead(req, c);
        }
        lastGranted_ = m;
        slots_[m].reset();
        return true;
    }
    return false;
}

void
SystemBus::startWrite(Request &req, std::uint64_t c)
{
    req.txn.id = nextTxnId_++;
    unsigned cycles = dataCycles(req.txn.size);

    TxnRecord rec;
    rec.id = req.txn.id;
    rec.kind = TxnKind::Write;
    rec.addr = req.txn.addr;
    rec.size = req.txn.size;
    rec.master = req.txn.master;
    rec.stronglyOrdered = req.txn.stronglyOrdered;
    rec.addrCycle = c;
    rec.requestTick = req.requestTick;

    if (params_.kind == BusKind::Multiplexed) {
        rec.firstDataCycle = c + 1;
        rec.lastDataCycle = c + cycles;
        addrNextFree_ = c + 1 + cycles + params_.turnaround;
        busyDataCycles += 1 + cycles;
    } else {
        rec.firstDataCycle = c;
        rec.lastDataCycle = c + cycles - 1;
        addrNextFree_ = c + 1;
        dataNextFree_ = c + cycles + params_.turnaround;
        busyDataCycles += cycles;
    }
    rec.completionTick = clockDomain().tickOfCycle(rec.lastDataCycle + 1);

    // Injected faults are decided when the tenure starts; drawing here
    // rather than at completion keeps the record and the trace able to
    // show the outcome, and is equally deterministic.
    BusStatus preset = BusStatus::Ok;
    if (req.unmapped)
        preset = BusStatus::Error;
    else if (injector_ && injector_->shouldFault(sim::FaultSite::BusError,
                                                 clockDomain().tickOfCycle(c)))
        preset = BusStatus::Error;
    else if (injector_ &&
             injector_->shouldFault(sim::FaultSite::BusWriteNack,
                                    clockDomain().tickOfCycle(c)))
        preset = BusStatus::Nack;
    rec.status = preset;

    if (req.txn.stronglyOrdered)
        lastOrderedAddrCycle_[req.txn.master] = static_cast<std::int64_t>(c);

    monitor_.record(rec);
    numWrites += 1;
    bytesWritten += req.txn.size;
    turnaroundCycles += params_.turnaround;
    txnLatencyCycles.sample(
        static_cast<double>(rec.completionTick - rec.requestTick) /
        clockDomain().period());
    ++inFlight_;
    sim_.noteProgress();
    sim::trace::log("bus", "write start cycle=", c, " ",
                    req.txn.toString());

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonSpan(
            "bus", "write " + std::to_string(rec.size) + "B",
            clockDomain().tickOfCycle(rec.addrCycle), rec.completionTick,
            {{"addr", sim::trace::hexArg(rec.addr)},
             {"master", masterNames_[rec.master]},
             {"ordered", rec.stronglyOrdered ? "true" : "false"}});
    }

    if (req.onStart)
        req.onStart(sim_.curTick());

    BusTarget *target = findTarget(req.txn.addr, req.txn.size);
    sim_.eventQueue().scheduleFunc(
        rec.completionTick,
        [this, target, preset, txn = std::move(req.txn),
         cb = std::move(req.onWrite), when = rec.completionTick]() mutable {
            --inFlight_;
            BusStatus status = preset;
            // Target flow control only matters for transfers the wire
            // actually carried intact.
            if (status == BusStatus::Ok)
                status = target->accept(txn, when);
            txn.status = status;
            if (status == BusStatus::Ok)
                target->write(txn, when);
            else
                noteFailure(txn, status, when);
            if (cb)
                cb(when, status);
        });
}

void
SystemBus::startRead(Request &req, std::uint64_t c)
{
    req.txn.id = nextTxnId_++;

    TxnRecord rec;
    rec.id = req.txn.id;
    rec.kind = TxnKind::ReadReq;
    rec.addr = req.txn.addr;
    rec.size = req.txn.size;
    rec.master = req.txn.master;
    rec.stronglyOrdered = req.txn.stronglyOrdered;
    rec.addrCycle = c;
    rec.firstDataCycle = c;
    rec.lastDataCycle = c; // request tenure is the address cycle only
    rec.requestTick = req.requestTick;
    rec.completionTick = clockDomain().tickOfCycle(c + 1);

    BusStatus preset = BusStatus::Ok;
    if (req.unmapped)
        preset = BusStatus::Error;
    else if (injector_ && injector_->shouldFault(sim::FaultSite::BusError,
                                                 clockDomain().tickOfCycle(c)))
        preset = BusStatus::Error;
    else if (injector_ &&
             injector_->shouldFault(sim::FaultSite::BusReadNack,
                                    clockDomain().tickOfCycle(c)))
        preset = BusStatus::Nack;
    rec.status = preset;

    addrNextFree_ = c + 1 +
        (params_.kind == BusKind::Multiplexed ? params_.turnaround : 0);
    busyDataCycles += 1;
    if (params_.kind == BusKind::Multiplexed)
        turnaroundCycles += params_.turnaround;

    if (req.txn.stronglyOrdered)
        lastOrderedAddrCycle_[req.txn.master] = static_cast<std::int64_t>(c);

    monitor_.record(rec);
    ++inFlight_;
    sim_.noteProgress();
    sim::trace::log("bus", "read start cycle=", c, " ",
                    req.txn.toString());

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonSpan(
            "bus", "read-req",
            clockDomain().tickOfCycle(c), rec.completionTick,
            {{"addr", sim::trace::hexArg(rec.addr)},
             {"master", masterNames_[rec.master]}});
    }

    if (req.onStart)
        req.onStart(sim_.curTick());

    // Ask the target for the data at the end of the address cycle.
    BusTarget *target = findTarget(req.txn.addr, req.txn.size);
    Tick addr_end = clockDomain().tickOfCycle(c + 1);
    sim_.eventQueue().scheduleFunc(
        addr_end,
        [this, target, preset, req = std::move(req), addr_cycle = c,
         addr_end]() mutable {
            BusStatus status = preset;
            if (status == BusStatus::Ok)
                status = target->accept(req.txn, addr_end);
            if (status != BusStatus::Ok) {
                // A NACKed/errored read never occupies a response
                // tenure: the master learns at the address-cycle end
                // and must retry (or give up) itself.
                --inFlight_;
                req.txn.status = status;
                noteFailure(req.txn, status, addr_end);
                if (req.onRead)
                    req.onRead(addr_end, status, {});
                return;
            }
            std::vector<std::uint8_t> data;
            Tick latency = target->read(req.txn, addr_end, data);
            csb_assert(data.size() == req.txn.size,
                       "target returned wrong read size");
            PendingResponse resp;
            resp.txn = std::move(req.txn);
            resp.txn.kind = TxnKind::ReadResp;
            resp.txn.data = std::move(data);
            resp.onRead = std::move(req.onRead);
            resp.readyTick = addr_end + latency;
            resp.reqAddrCycle = addr_cycle;
            resp.requestTick = req.requestTick;
            responses_.push_back(std::move(resp));
        });
}

void
SystemBus::checkpointSave(sim::CheckpointWriter &cw) const
{
    csb_assert(quiescent(), "bus checkpoint requires a quiescent bus");
    cw.putU64(addrNextFree_);
    cw.putU64(dataNextFree_);
    cw.putU64(nextTxnId_);
    cw.putU64(lastGranted_);
    cw.putU64(lastOrderedAddrCycle_.size());
    for (std::int64_t cycle : lastOrderedAddrCycle_)
        cw.putU64(static_cast<std::uint64_t>(cycle));
    monitor_.checkpointSave(cw);
}

void
SystemBus::checkpointRestore(sim::CheckpointReader &cr)
{
    csb_assert(quiescent(), "bus checkpoint restore into a busy bus");
    addrNextFree_ = cr.getU64();
    dataNextFree_ = cr.getU64();
    nextTxnId_ = cr.getU64();
    lastGranted_ = static_cast<std::size_t>(cr.getU64());
    const std::uint64_t masters = cr.getU64();
    if (masters != lastOrderedAddrCycle_.size())
        csb_fatal("checkpoint bus has ", masters,
                  " masters, this bus has ", lastOrderedAddrCycle_.size());
    for (std::int64_t &cycle : lastOrderedAddrCycle_)
        cycle = static_cast<std::int64_t>(cr.getU64());
    monitor_.checkpointRestore(cr);
}

void
SystemBus::debugDump(std::ostream &os) const
{
    unsigned waiting = 0;
    for (const auto &slot : slots_) {
        if (slot.has_value())
            ++waiting;
    }
    os << "inFlight=" << inFlight_ << " pendingRequests=" << waiting
       << " pendingResponses=" << responses_.size()
       << " addrNextFree=" << addrNextFree_ << " curCycle="
       << curBusCycle();
    if (injector_) {
        os << '\n';
        injector_->debugDump(os);
    }
}

std::unique_ptr<SystemBus>
makeMultiplexedBus(sim::Simulator &simulator, unsigned width_bytes,
                   unsigned ratio, unsigned turnaround, unsigned ack_delay,
                   unsigned max_burst)
{
    BusParams params;
    params.kind = BusKind::Multiplexed;
    params.widthBytes = width_bytes;
    params.ratio = ratio;
    params.turnaround = turnaround;
    params.ackDelay = ack_delay;
    params.maxBurstBytes = max_burst;
    return std::make_unique<SystemBus>(simulator, params);
}

std::unique_ptr<SystemBus>
makeSplitBus(sim::Simulator &simulator, unsigned width_bytes, unsigned ratio,
             unsigned turnaround, unsigned ack_delay, unsigned max_burst)
{
    BusParams params;
    params.kind = BusKind::Split;
    params.widthBytes = width_bytes;
    params.ratio = ratio;
    params.turnaround = turnaround;
    params.ackDelay = ack_delay;
    params.maxBurstBytes = max_burst;
    return std::make_unique<SystemBus>(simulator, params);
}

} // namespace csb::bus
