/**
 * @file
 * A synthetic bus master injecting background memory traffic.
 *
 * The paper approximates a heavily loaded bus with a turnaround cycle
 * ("it can also be viewed as an approximation of a heavily loaded bus
 * with multiple masters", section 4.3.1).  This component models the
 * load directly: a second master issuing line-sized reads/writes to
 * main memory with a configurable duty cycle, competing with the
 * uncached traffic through the ordinary round-robin arbitration.
 */

#ifndef CSB_BUS_TRAFFIC_GENERATOR_HH
#define CSB_BUS_TRAFFIC_GENERATOR_HH

#include <optional>
#include <string>

#include "retry.hh"
#include "sim/clocked.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "system_bus.hh"

namespace csb::bus {

/** Traffic generator configuration. */
struct TrafficGeneratorParams
{
    /** Base of the address region to hit. */
    Addr base = 0;
    /** Size of the region (wraps around). */
    Addr regionSize = 1 << 20;
    /** Transaction size in bytes (power of two). */
    unsigned txnBytes = 64;
    /** Fraction of transactions that are writes, in [0, 1]. */
    double writeFraction = 0.5;
    /**
     * Target issue rate: average bus cycles between transaction
     * *attempts*.  1.0 saturates the bus; larger values lighten the
     * load.
     */
    double interval = 4.0;
    /** RNG seed (deterministic). */
    std::uint64_t seed = 12345;
    /** Backoff schedule for NACKed transactions. */
    RetryPolicy retry;
};

/** Background-load bus master. */
class TrafficGenerator : public sim::Clocked, public sim::stats::StatGroup
{
  public:
    TrafficGenerator(sim::Simulator &simulator, SystemBus &bus,
                     const TrafficGeneratorParams &params,
                     std::string name = "tgen",
                     sim::stats::StatGroup *stat_parent = nullptr);

    /** Begin injecting traffic. */
    void
    start()
    {
        running_ = true;
        ungate();
    }

    /** Stop presenting new transactions (in-flight ones finish). */
    void stop() { running_ = false; }

    void tick() override;

    sim::stats::Scalar reads;
    sim::stats::Scalar writes;
    sim::stats::Scalar bytesMoved;
    sim::stats::Scalar retries;
    /** Transactions NACKed on the bus. */
    sim::stats::Scalar busNacks;
    /** NACKed transactions reissued after backoff. */
    sim::stats::Scalar busRetries;

  private:
    /** A NACKed transaction waiting out its backoff. */
    struct Redo
    {
        bool isWrite = false;
        Addr addr = 0;
        unsigned attempt = 0;
        Tick earliest = 0;
    };

    void issue(Addr addr, bool is_write, unsigned attempt);
    void onCompletion(Addr addr, bool is_write, unsigned attempt,
                      Tick when, BusStatus status);

    sim::Simulator &sim_;
    SystemBus &bus_;
    TrafficGeneratorParams params_;
    MasterId masterId_;
    sim::Random rng_;
    bool running_ = false;
    /** Next bus cycle at which to attempt an issue. */
    double nextIssueCycle_ = 0;
    std::optional<Redo> redo_;
};

} // namespace csb::bus

#endif // CSB_BUS_TRAFFIC_GENERATOR_HH
