/**
 * @file
 * Interface implemented by bus targets (memory, I/O devices).
 */

#ifndef CSB_BUS_BUS_TARGET_HH
#define CSB_BUS_BUS_TARGET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "transaction.hh"

namespace csb::bus {

/**
 * A slave on the system bus.  Targets see writes when the last data
 * cycle completes, and serve reads with a device-specific latency.
 */
class BusTarget
{
  public:
    virtual ~BusTarget() = default;

    /** @return name used in traces and stats. */
    virtual const std::string &targetName() const = 0;

    /**
     * Flow control: asked at completion (writes) or at the end of the
     * address cycle (reads) whether the target takes the transaction.
     * Returning Nack tells the master to retry with backoff; Error is
     * non-retryable.  The default always accepts, so ordinary targets
     * need not care.
     */
    virtual BusStatus accept(const BusTransaction &txn, Tick now)
    {
        (void)txn;
        (void)now;
        return BusStatus::Ok;
    }

    /**
     * A write transaction has fully transferred.
     * @param txn  the completed transaction (data included)
     * @param now  CPU tick of completion
     */
    virtual void write(const BusTransaction &txn, Tick now) = 0;

    /**
     * Serve a read.  Called at the end of the address cycle.
     * @param txn  the request (addr/size)
     * @param now  CPU tick of the address cycle end
     * @param data out: txn.size bytes
     * @return device latency in CPU ticks until the data is ready to
     *         be driven back on the bus
     */
    virtual Tick read(const BusTransaction &txn, Tick now,
                      std::vector<std::uint8_t> &data) = 0;
};

} // namespace csb::bus

#endif // CSB_BUS_BUS_TARGET_HH
