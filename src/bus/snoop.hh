/**
 * @file
 * Snooping interface between the system bus and cached masters.
 *
 * A coherent cached master registers itself with the bus as a
 * Snooper.  When any coherent master needs a line (read miss), needs
 * it exclusively (write miss) or needs to upgrade a shared copy
 * before writing, it asks the bus to broadcast a snoop probe; the bus
 * walks every *other* snooper synchronously (atomic-bus snooping: tag
 * state settles in the same tick, latencies are charged separately)
 * and aggregates their replies.  The reply tells the requester
 * whether any other cache held the line (fill Shared vs Exclusive),
 * whether an owner supplied it cache-to-cache, and whether a dirty
 * copy was demand-written-back on the way.
 *
 * The probe vocabulary is deliberately protocol-neutral -- MESI,
 * MOESI and update protocols all decide their transitions from these
 * three observed bus events (see mem/coherence.hh for the policy
 * side).
 */

#ifndef CSB_BUS_SNOOP_HH
#define CSB_BUS_SNOOP_HH

#include <cstdint>

#include "sim/types.hh"

namespace csb::bus {

/** Bus event a snoop probe announces to the other caches. */
enum class SnoopKind : std::uint8_t {
    Read,          ///< another master wants to read the line
    ReadExclusive, ///< another master wants the line to write it
    Upgrade,       ///< another master upgrades its Shared copy to write
};

const char *snoopKindName(SnoopKind kind);

/** One cache's answer to a probe. */
struct SnoopReply
{
    /** The snooped cache held a valid copy (a "snoop hit"). */
    bool hadCopy = false;
    /** The copy was supplied cache-to-cache (owner intervention). */
    bool supplied = false;
    /** A dirty copy was demand-written-back. */
    bool wroteBack = false;
    /** The copy was invalidated by the probe. */
    bool invalidated = false;
};

/** Aggregated outcome of one broadcast, returned to the requester. */
struct SnoopSummary
{
    /** Number of caches that held a copy. */
    unsigned hits = 0;
    /** At least one other cache held a copy. */
    bool hadCopy = false;
    /** An owner supplied the line cache-to-cache. */
    bool supplied = false;
    /** A dirty copy was demand-written-back. */
    bool wroteBack = false;
};

/**
 * A cached master that answers snoop probes.  snoopProbe() must apply
 * the protocol transition to the local tags immediately and return
 * what happened; it is never invoked for the requester's own probe.
 */
class Snooper
{
  public:
    virtual ~Snooper() = default;

    virtual SnoopReply snoopProbe(Addr line_addr, SnoopKind kind) = 0;
};

} // namespace csb::bus

#endif // CSB_BUS_SNOOP_HH
