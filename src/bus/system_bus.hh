/**
 * @file
 * The parameterized system bus model.
 *
 * Two organizations are supported, matching the paper's section 4.1:
 *
 *  - multiplexed: address and data share one set of wires.  A write of
 *    S bytes occupies 1 + ceil(S/width) bus cycles; a read request
 *    occupies its address cycle and the response data returns later.
 *
 *  - split: separate address and data paths.  A write occupies one
 *    address cycle and ceil(S/width) data cycles starting in the same
 *    cycle.
 *
 * Both organizations are fully pipelined with overlapped arbitration;
 * back-to-back transactions from one master are allowed unless a
 * turnaround cycle is configured.  Optional selective flow control
 * (ackDelay) forces the address cycles of *strongly ordered*
 * transactions of one master to be at least ackDelay bus cycles
 * apart, modelling the wait for a positive acknowledgment.
 *
 * All transaction sizes must be powers of two between 1 byte and the
 * maximum burst size, naturally aligned.
 */

#ifndef CSB_BUS_SYSTEM_BUS_HH
#define CSB_BUS_SYSTEM_BUS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus_monitor.hh"
#include "bus_target.hh"
#include "snoop.hh"
#include "sim/clocked.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "transaction.hh"

namespace csb::bus {

/** Bus organization. */
enum class BusKind : std::uint8_t { Multiplexed, Split };

/** Static bus configuration. */
struct BusParams
{
    BusKind kind = BusKind::Multiplexed;
    /** Data path width in bytes (8 for multiplexed, 16/32 for split). */
    unsigned widthBytes = 8;
    /** CPU ticks per bus cycle (the processor:bus frequency ratio). */
    unsigned ratio = 6;
    /** Idle bus cycles inserted after every transaction / data tenure. */
    unsigned turnaround = 0;
    /**
     * Fixed-delay acknowledgment: minimum spacing, in bus cycles,
     * between the address cycles of consecutive strongly ordered
     * transactions of the same master.  0 disables flow control.
     */
    unsigned ackDelay = 0;
    /** Largest legal burst (one cache line). */
    unsigned maxBurstBytes = 64;
    /**
     * Run the full error/retry protocol: a transaction to an unmapped
     * address completes with BusStatus::Error delivered to the master
     * instead of aborting the process, targets are expected to NACK
     * via accept(), and strongly-ordered masters serialize their
     * streams against retry hazards (see ordersMustSerialize()).
     */
    bool errorResponses = false;

    /** Throws FatalError when inconsistent. */
    void validate() const;
};

/** Invoked when a write transaction has fully transferred (or failed). */
using WriteCallback =
    std::function<void(Tick completion_tick, BusStatus status)>;
/**
 * Invoked when read data has been returned over the bus.  On Nack or
 * Error the data vector is empty and the master should retry (Nack)
 * or give up (Error).
 */
using ReadCallback =
    std::function<void(Tick completion_tick, BusStatus status,
                       const std::vector<std::uint8_t> &data)>;
/** Invoked when the request's address cycle is driven (txn started). */
using StartCallback = std::function<void(Tick start_tick)>;

/**
 * The system bus.  Masters present at most one request at a time via
 * requestWrite()/requestRead(); the bus starts at most one new
 * transaction per bus cycle, picking ready masters round-robin.
 */
class SystemBus : public sim::Clocked, public sim::stats::StatGroup
{
  public:
    SystemBus(sim::Simulator &simulator, const BusParams &params,
              std::string name = "bus",
              sim::stats::StatGroup *stat_parent = nullptr);

    ~SystemBus() override;

    const BusParams &params() const { return params_; }

    /** Register a master port.  @return its id. */
    MasterId registerMaster(const std::string &name);

    /** Map [base, base+size) to @p target.  Ranges must not overlap. */
    void addTarget(Addr base, Addr size, BusTarget *target);

    /**
     * Present a write request.
     * @param snapshot_payload see BusTransaction::snapshotPayload
     * @return false when this master already has a pending request.
     */
    bool requestWrite(MasterId master, Addr addr,
                      std::vector<std::uint8_t> data, bool strongly_ordered,
                      WriteCallback on_complete,
                      StartCallback on_start = {},
                      bool snapshot_payload = false);

    /** Present a read request.  @see requestWrite */
    bool requestRead(MasterId master, Addr addr, unsigned size,
                     bool strongly_ordered, ReadCallback on_complete,
                     StartCallback on_start = {});

    /** @return true when the master may present a new request. */
    bool masterIdle(MasterId master) const;

    /**
     * Register a cached master for snooping.  Every registered snooper
     * except the requester is probed on each snoopBroadcast().
     */
    void registerSnooper(Snooper *snooper);

    /**
     * Broadcast a snoop probe on behalf of @p requester to every other
     * registered snooper and aggregate the replies.  Atomic-bus
     * snooping: tag state settles synchronously within the call;
     * latency is charged by the caller (upgrade / cache-to-cache
     * knobs, demand write-backs travel as ordinary bus writes).
     */
    SnoopSummary snoopBroadcast(const Snooper *requester, Addr line_addr,
                                SnoopKind kind);

    /**
     * @return true when a request presented now by @p master would
     * start at the next bus edge.  Masters with combining buffers use
     * this to keep an entry open (still coalescing) until the moment
     * the bus can actually take it -- "combining is limited by the
     * time that an entry spends waiting in the buffer" (section 4.1).
     * Competition from other masters in the same cycle may still
     * delay the start by a cycle; that is inherent to arbitration.
     */
    bool wouldAcceptAtNextEdge(MasterId master, bool strongly_ordered,
                               bool is_write) const;

    /** @return true when nothing is pending or in flight. */
    bool quiescent() const;

    /** Current bus cycle index. */
    std::uint64_t curBusCycle() const;

    /** Data cycles needed for @p size bytes. */
    unsigned dataCycles(unsigned size) const;

    BusMonitor &monitor() { return monitor_; }
    const BusMonitor &monitor() const { return monitor_; }

    /**
     * Attach the system's fault injector (null to detach).  The bus
     * consults the BusWriteNack / BusReadNack / BusError sites.
     */
    void setFaultInjector(sim::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** The attached fault injector, or null. */
    const sim::FaultInjector *faultInjector() const { return injector_; }

    /**
     * True when attached masters must serialize their strongly-ordered
     * streams: a NACK is only discovered at completion, so with NACKs
     * possible (an injector with bus faults, or errorResponses mode
     * where targets may refuse) a master may not pipeline a younger
     * ordered transaction behind one whose status is still unknown
     * (the retry would land after its younger neighbour).
     */
    bool ordersMustSerialize() const
    {
        return params_.errorResponses ||
               (injector_ && injector_->plan().busFaultsEnabled());
    }

    void tick() override;

    void debugDump(std::ostream &os) const override;

    /**
     * Serialize timing state (free cycles, txn id, arbitration
     * pointer, per-master ordering history) and the monitor records.
     * @pre quiescent() -- no request may be pending or in flight.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;

    /** Restore state written by checkpointSave().  @pre quiescent() */
    void checkpointRestore(sim::CheckpointReader &cr);

    // Statistics (public for the harness; gem5 naming convention says
    // stats are part of the visible interface).
    sim::stats::Scalar numWrites;
    sim::stats::Scalar numReads;
    sim::stats::Scalar bytesWritten;
    sim::stats::Scalar bytesRead;
    sim::stats::Scalar busyDataCycles;
    sim::stats::Scalar orderingStallCycles;
    /** Idle bus cycles inserted as turnaround after tenures. */
    sim::stats::Scalar turnaroundCycles;
    /** Bus cycles from request presentation to transfer completion. */
    sim::stats::Distribution txnLatencyCycles;
    /** Transactions completed with BusStatus::Nack. */
    sim::stats::Scalar numNacks;
    /** Transactions completed with BusStatus::Error. */
    sim::stats::Scalar numErrors;
    /** Snoop probes broadcast (one per requesting miss/upgrade). */
    sim::stats::Scalar snoopProbes;
    /** Probed caches that held a copy, summed over broadcasts. */
    sim::stats::Scalar snoopHits;
    /** Broadcasts no other cache had the line for. */
    sim::stats::Scalar snoopMisses;
    /** Broadcasts answered by an owner cache-to-cache. */
    sim::stats::Scalar snoopInterventions;
    /** Copies invalidated by broadcast probes. */
    sim::stats::Scalar snoopInvalidations;
    /** Dirty copies demand-written-back by broadcast probes. */
    sim::stats::Scalar snoopWritebacks;
    /** busyDataCycles over elapsed bus cycles (computed on demand). */
    sim::stats::Formula utilization;

  private:
    struct Request
    {
        BusTransaction txn;
        WriteCallback onWrite;
        ReadCallback onRead;
        StartCallback onStart;
        Tick requestTick = 0;
        /** Address matched no target; completes with Error. */
        bool unmapped = false;
    };

    struct PendingResponse
    {
        BusTransaction txn;
        ReadCallback onRead;
        Tick readyTick = 0;
        std::uint64_t reqAddrCycle = 0;
        Tick requestTick = 0;
    };

    struct TargetRange
    {
        Addr base;
        Addr size;
        BusTarget *target;
    };

    /** Validate size/alignment; panics on protocol violations. */
    void checkTransaction(const BusTransaction &txn) const;

    /** @return the mapped target, or null when the range is unmapped. */
    BusTarget *findTarget(Addr addr, unsigned size) const;

    /** Abort with a diagnostic naming the issuing master. */
    [[noreturn]] void unmappedAbort(const BusTransaction &txn) const;

    /** Count + trace a failed completion; @return the status. */
    BusStatus noteFailure(const BusTransaction &txn, BusStatus status,
                          Tick when);

    /** @return true when master @p m may start an ordered txn at @p c. */
    bool orderingAllows(const Request &req, std::uint64_t c) const;

    bool tryStartResponse(std::uint64_t c);
    bool tryStartRequest(std::uint64_t c, bool data_path_taken);
    void startWrite(Request &req, std::uint64_t c);
    void startRead(Request &req, std::uint64_t c);

    sim::Simulator &sim_;
    BusParams params_;

    std::vector<std::string> masterNames_;
    std::vector<std::optional<Request>> slots_;
    std::vector<std::int64_t> lastOrderedAddrCycle_;
    std::vector<TargetRange> targets_;
    std::deque<PendingResponse> responses_;

    /** Earliest cycle a new address may be driven. */
    std::uint64_t addrNextFree_ = 0;
    /** Earliest cycle a new data tenure may start (split bus only). */
    std::uint64_t dataNextFree_ = 0;
    std::uint64_t nextTxnId_ = 1;
    std::size_t lastGranted_ = 0;
    /** Transactions started but not yet completed. */
    unsigned inFlight_ = 0;
    /** Optional fault injector (not owned). */
    sim::FaultInjector *injector_ = nullptr;
    /** Coherent cached masters, probed on every broadcast (not owned). */
    std::vector<Snooper *> snoopers_;

    BusMonitor monitor_;
};

/** Convenience factory for the multiplexed organization. */
std::unique_ptr<SystemBus> makeMultiplexedBus(
    sim::Simulator &simulator, unsigned width_bytes, unsigned ratio,
    unsigned turnaround = 0, unsigned ack_delay = 0,
    unsigned max_burst = 64);

/** Convenience factory for the split address/data organization. */
std::unique_ptr<SystemBus> makeSplitBus(
    sim::Simulator &simulator, unsigned width_bytes, unsigned ratio,
    unsigned turnaround = 0, unsigned ack_delay = 0,
    unsigned max_burst = 64);

} // namespace csb::bus

#endif // CSB_BUS_SYSTEM_BUS_HH
