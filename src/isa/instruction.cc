#include "instruction.hh"

#include <sstream>

#include "sim/logging.hh"

namespace csb::isa {

std::string
RegId::toString() const
{
    switch (cls) {
      case RegClass::Int:
        return "%r" + std::to_string(idx);
      case RegClass::Fp:
        return "%f" + std::to_string(idx);
      case RegClass::None:
        return "%-";
    }
    return "%?";
}

InstClass
classOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return InstClass::Nop;
      case Opcode::Halt:
        return InstClass::Halt;
      case Opcode::Mark:
        return InstClass::Mark;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Mul:
      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Slti:
      case Opcode::Li:
      case Opcode::Mvf2i:
        return InstClass::IntAlu;
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fmov:
      case Opcode::Fitod:
      case Opcode::Mvi2f:
        return InstClass::FpAlu;
      case Opcode::Ldb:
      case Opcode::Ldw:
      case Opcode::Ldd:
      case Opcode::Ldf:
        return InstClass::Load;
      case Opcode::Stb:
      case Opcode::Stw:
      case Opcode::Std:
      case Opcode::Stf:
        return InstClass::Store;
      case Opcode::Swap:
        return InstClass::Swap;
      case Opcode::Membar:
        return InstClass::Membar;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
        return InstClass::Branch;
      case Opcode::NumOpcodes:
        break;
    }
    csb_panic("classOf: bad opcode ", static_cast<int>(op));
}

unsigned
accessSize(Opcode op)
{
    switch (op) {
      case Opcode::Ldb:
      case Opcode::Stb:
        return 1;
      case Opcode::Ldw:
      case Opcode::Stw:
        return 4;
      case Opcode::Ldd:
      case Opcode::Std:
      case Opcode::Ldf:
      case Opcode::Stf:
      case Opcode::Swap:
        return 8;
      default:
        return 0;
    }
}

bool
isLoad(Opcode op)
{
    InstClass cls = classOf(op);
    return cls == InstClass::Load || cls == InstClass::Swap;
}

bool
isStore(Opcode op)
{
    InstClass cls = classOf(op);
    return cls == InstClass::Store || cls == InstClass::Swap;
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::Mark: return "mark";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Mul: return "mul";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Slti: return "slti";
      case Opcode::Li: return "li";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fsub: return "fsub";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fmov: return "fmov";
      case Opcode::Fitod: return "fitod";
      case Opcode::Mvi2f: return "mvi2f";
      case Opcode::Mvf2i: return "mvf2i";
      case Opcode::Ldb: return "ldb";
      case Opcode::Ldw: return "ldw";
      case Opcode::Ldd: return "ldd";
      case Opcode::Stb: return "stb";
      case Opcode::Stw: return "stw";
      case Opcode::Std: return "std";
      case Opcode::Ldf: return "ldf";
      case Opcode::Stf: return "stf";
      case Opcode::Swap: return "swap";
      case Opcode::Membar: return "membar";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Ble: return "ble";
      case Opcode::Bgt: return "bgt";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::NumOpcodes: break;
    }
    return "???";
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << mnemonic(op);
    switch (instClass()) {
      case InstClass::IntAlu:
      case InstClass::FpAlu:
        if (rd.valid())
            os << " " << rd.toString();
        if (rs1.valid())
            os << ", " << rs1.toString();
        if (rs2.valid())
            os << ", " << rs2.toString();
        else if (op != Opcode::Fmov && op != Opcode::Mvi2f &&
                 op != Opcode::Mvf2i && op != Opcode::Fitod)
            os << ", " << imm;
        break;
      case InstClass::Load:
        os << " " << rd.toString() << ", [" << rs1.toString()
           << (imm >= 0 ? "+" : "") << imm << "]";
        break;
      case InstClass::Store:
        os << " " << rs2.toString() << ", [" << rs1.toString()
           << (imm >= 0 ? "+" : "") << imm << "]";
        break;
      case InstClass::Swap:
        os << " [" << rs1.toString() << (imm >= 0 ? "+" : "") << imm
           << "], " << rd.toString();
        break;
      case InstClass::Branch:
        if (op != Opcode::Jmp)
            os << " " << rs1.toString() << ", " << rs2.toString() << ",";
        os << " @" << target;
        break;
      case InstClass::Mark:
        os << " " << imm;
        break;
      default:
        break;
    }
    return os.str();
}

} // namespace csb::isa
