/**
 * @file
 * The csbsim mini-ISA.
 *
 * A SPARC-V9-flavoured RISC instruction set sufficient for the
 * paper's microbenchmarks: integer/FP ALU operations, byte/word/
 * doubleword loads and stores, the atomic SWAP (which doubles as the
 * CSB conditional flush when its effective address lies in
 * uncached-combining space), MEMBAR, and compare-and-branch forms.
 *
 * Instructions are kept as decoded structs rather than encoded
 * machine words: the paper's experiments depend on instruction
 * *timing*, not on binary encodings (see DESIGN.md, substitutions).
 */

#ifndef CSB_ISA_INSTRUCTION_HH
#define CSB_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace csb::isa {

/** Number of architectural integer registers (r0 is hardwired zero). */
constexpr int numIntRegs = 32;
/** Number of architectural floating-point registers. */
constexpr int numFpRegs = 32;

/** Register file selector. */
enum class RegClass : std::uint8_t { Int, Fp, None };

/** An architectural register identifier. */
struct RegId
{
    RegClass cls = RegClass::None;
    std::uint8_t idx = 0;

    constexpr bool
    operator==(const RegId &other) const
    {
        return cls == other.cls && idx == other.idx;
    }

    constexpr bool isInt() const { return cls == RegClass::Int; }
    constexpr bool isFp() const { return cls == RegClass::Fp; }
    constexpr bool valid() const { return cls != RegClass::None; }

    /** True for the hardwired zero register r0. */
    constexpr bool
    isZero() const
    {
        return cls == RegClass::Int && idx == 0;
    }

    std::string toString() const;
};

/** Integer register r<n>. */
constexpr RegId
ir(int n)
{
    return RegId{RegClass::Int, static_cast<std::uint8_t>(n)};
}

/** Floating-point register f<n>. */
constexpr RegId
fr(int n)
{
    return RegId{RegClass::Fp, static_cast<std::uint8_t>(n)};
}

/** No register. */
constexpr RegId noReg{};

/** Operation codes. */
enum class Opcode : std::uint8_t {
    Nop,
    Halt,       ///< stop the program (simulator convention)
    Mark,       ///< record a timestamp in the host-side mark channel

    // Integer ALU, register-register.
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul, Slt, Sltu,
    // Integer ALU, register-immediate.
    Addi, Andi, Ori, Xori, Slli, Srli, Slti,
    Li,         ///< rd = 64-bit immediate (pseudo-op; sethi+or on SPARC)

    // Floating point (double precision).
    Fadd, Fsub, Fmul, Fmov, Fitod,
    Mvi2f,      ///< move int reg bits to fp reg
    Mvf2i,      ///< move fp reg bits to int reg

    // Memory.  Effective address is rs1 + imm.
    Ldb, Ldw, Ldd,      ///< int loads: 1, 4, 8 bytes
    Stb, Stw, Std,      ///< int stores: 1, 4, 8 bytes
    Ldf, Stf,           ///< fp doubleword load / store (SPARC ldd/std %f)
    Swap,               ///< atomic: rd <-> mem[rs1+imm], 8 bytes
    Membar,             ///< drain uncached buffer before graduating

    // Control.  Branches compare rs1 with rs2 and jump to a label.
    Beq, Bne, Ble, Bgt, Blt, Bge,
    Jmp,                ///< unconditional branch to label

    NumOpcodes,
};

/** Broad classification used by the pipeline model. */
enum class InstClass : std::uint8_t {
    Nop,
    IntAlu,
    FpAlu,
    Load,
    Store,
    Swap,
    Membar,
    Branch,
    Mark,
    Halt,
};

/** @return the pipeline class of @p op. */
InstClass classOf(Opcode op);

/** @return memory access size in bytes (0 for non-memory ops). */
unsigned accessSize(Opcode op);

/** @return true when @p op reads memory (loads and swap). */
bool isLoad(Opcode op);

/** @return true when @p op writes memory (stores and swap). */
bool isStore(Opcode op);

/** @return mnemonic string of @p op. */
const char *mnemonic(Opcode op);

/**
 * A decoded instruction.
 *
 * Field usage by class:
 *  - ALU reg-reg:   rd, rs1, rs2
 *  - ALU reg-imm:   rd, rs1, imm
 *  - Load:          rd, [rs1 + imm]
 *  - Store:         rs2, [rs1 + imm]      (rs2 is the data source)
 *  - Swap:          rd <-> [rs1 + imm]    (rd is both source and dest)
 *  - Branch:        rs1 ? rs2, target
 *  - Mark:          imm is the mark id
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId rd = noReg;
    RegId rs1 = noReg;
    RegId rs2 = noReg;
    std::int64_t imm = 0;
    /** Branch target as an instruction index; -1 = unresolved label. */
    std::int64_t target = -1;
    /** Label id while unresolved (Program::finalize patches target). */
    std::int32_t labelId = -1;

    InstClass instClass() const { return classOf(op); }

    /** Human-readable rendering for traces and tests. */
    std::string toString() const;
};

} // namespace csb::isa

#endif // CSB_ISA_INSTRUCTION_HH
