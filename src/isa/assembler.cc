#include "assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace csb::isa {

namespace {

/** A parsed operand. */
struct Operand
{
    enum class Kind { Reg, Imm, Mem, Symbol };

    Kind kind = Kind::Imm;
    RegId reg = noReg;       // Reg
    std::int64_t imm = 0;    // Imm / Mem offset
    RegId base = noReg;      // Mem base
    std::string symbol;      // Symbol (label or .equ name)
};

/** Parser state for one assemble() call. */
class Parser
{
  public:
    explicit Parser(const std::string &source)
        : source_(source)
    {}

    Program run();

  private:
    struct LabelInfo
    {
        Label label;
        bool bound = false;
    };

    [[noreturn]] void
    error(const std::string &message) const
    {
        csb_fatal("asm line ", lineNo_, ": ", message);
    }

    static std::string trim(const std::string &text);
    static bool isIdentifier(const std::string &text);

    std::int64_t parseNumber(const std::string &text) const;
    RegId parseRegister(const std::string &text) const;
    Operand parseOperand(const std::string &text) const;
    std::vector<Operand> parseOperands(const std::string &text) const;

    std::int64_t immOf(const Operand &operand) const;
    RegId regOf(const Operand &operand) const;
    Label labelOf(const Operand &operand);

    void handleDirective(const std::string &line);
    void handleInstruction(const std::string &mnemonic,
                           const std::vector<Operand> &ops);

    const std::string &source_;
    Program program_;
    std::map<std::string, LabelInfo> labels_;
    std::map<std::string, std::int64_t> constants_;
    unsigned lineNo_ = 0;
};

std::string
Parser::trim(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

bool
Parser::isIdentifier(const std::string &text)
{
    if (text.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(text[0])) &&
        text[0] != '_' && text[0] != '.') {
        return false;
    }
    for (char ch : text) {
        if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_' &&
            ch != '.') {
            return false;
        }
    }
    return true;
}

std::int64_t
Parser::parseNumber(const std::string &text) const
{
    std::string body = text;
    bool negative = false;
    if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
        negative = body[0] == '-';
        body = body.substr(1);
    }
    if (body.empty())
        error("malformed number '" + text + "'");
    std::int64_t value = 0;
    try {
        std::size_t used = 0;
        value = static_cast<std::int64_t>(std::stoull(body, &used, 0));
        if (used != body.size())
            error("trailing characters in number '" + text + "'");
    } catch (const std::exception &) {
        error("malformed number '" + text + "'");
    }
    return negative ? -value : value;
}

RegId
Parser::parseRegister(const std::string &text) const
{
    if (text.size() < 3 || text[0] != '%')
        error("expected a register, got '" + text + "'");
    char file = text[1];
    std::int64_t index = parseNumber(text.substr(2));
    if (index < 0 ||
        index >= (file == 'f' ? numFpRegs : numIntRegs)) {
        error("register index out of range in '" + text + "'");
    }
    if (file == 'r')
        return ir(static_cast<int>(index));
    if (file == 'f')
        return fr(static_cast<int>(index));
    error("unknown register file in '" + text + "'");
}

Operand
Parser::parseOperand(const std::string &text) const
{
    Operand operand;
    std::string body = trim(text);
    if (body.empty())
        error("empty operand");

    if (body.front() == '[') {
        if (body.back() != ']')
            error("unterminated memory operand '" + body + "'");
        std::string inner = trim(body.substr(1, body.size() - 2));
        operand.kind = Operand::Kind::Mem;
        std::size_t sign = inner.find_first_of("+-", 1);
        if (sign == std::string::npos) {
            operand.base = parseRegister(inner);
            operand.imm = 0;
        } else {
            operand.base = parseRegister(trim(inner.substr(0, sign)));
            std::string offset = trim(inner.substr(sign));
            // "+ 8" / "-8" both parse through parseNumber.
            operand.imm = parseNumber(offset);
        }
        return operand;
    }
    if (body.front() == '%') {
        operand.kind = Operand::Kind::Reg;
        operand.reg = parseRegister(body);
        return operand;
    }
    if (std::isdigit(static_cast<unsigned char>(body.front())) ||
        body.front() == '-' || body.front() == '+') {
        operand.kind = Operand::Kind::Imm;
        operand.imm = parseNumber(body);
        return operand;
    }
    if (isIdentifier(body)) {
        operand.kind = Operand::Kind::Symbol;
        operand.symbol = body;
        return operand;
    }
    error("cannot parse operand '" + body + "'");
}

std::vector<Operand>
Parser::parseOperands(const std::string &text) const
{
    std::vector<Operand> operands;
    std::string rest = trim(text);
    while (!rest.empty()) {
        // Memory operands contain no commas, so a plain split works.
        std::size_t comma = rest.find(',');
        std::string piece =
            comma == std::string::npos ? rest : rest.substr(0, comma);
        operands.push_back(parseOperand(piece));
        if (comma == std::string::npos)
            break;
        rest = trim(rest.substr(comma + 1));
        if (rest.empty())
            error("trailing comma");
    }
    return operands;
}

std::int64_t
Parser::immOf(const Operand &operand) const
{
    if (operand.kind == Operand::Kind::Imm)
        return operand.imm;
    if (operand.kind == Operand::Kind::Symbol) {
        auto it = constants_.find(operand.symbol);
        if (it == constants_.end())
            error("unknown constant '" + operand.symbol + "'");
        return it->second;
    }
    error("expected an immediate");
}

RegId
Parser::regOf(const Operand &operand) const
{
    if (operand.kind != Operand::Kind::Reg)
        error("expected a register");
    return operand.reg;
}

Label
Parser::labelOf(const Operand &operand)
{
    if (operand.kind != Operand::Kind::Symbol)
        error("expected a label");
    auto [it, inserted] =
        labels_.try_emplace(operand.symbol, LabelInfo{});
    if (inserted)
        it->second.label = program_.newLabel();
    return it->second.label;
}

void
Parser::handleDirective(const std::string &line)
{
    std::istringstream stream(line);
    std::string directive;
    stream >> directive;
    if (directive == ".equ") {
        std::string name;
        std::string value;
        stream >> name >> value;
        if (name.empty() || value.empty() || !isIdentifier(name))
            error("usage: .equ NAME value");
        constants_[name] = parseNumber(value);
        return;
    }
    error("unknown directive '" + directive + "'");
}

void
Parser::handleInstruction(const std::string &mnemonic,
                          const std::vector<Operand> &ops)
{
    auto need = [&](std::size_t n) {
        if (ops.size() != n) {
            error(mnemonic + " expects " + std::to_string(n) +
                  " operand(s), got " + std::to_string(ops.size()));
        }
    };

    // Register-register ops with an optional immediate form.
    struct AluEntry
    {
        const char *name;
        Opcode rr;
        Opcode ri; // Nop = no immediate form
    };
    static const AluEntry alu_table[] = {
        {"add", Opcode::Add, Opcode::Addi},
        {"and", Opcode::And, Opcode::Andi},
        {"or", Opcode::Or, Opcode::Ori},
        {"xor", Opcode::Xor, Opcode::Xori},
        {"sll", Opcode::Sll, Opcode::Slli},
        {"srl", Opcode::Srl, Opcode::Srli},
        {"slt", Opcode::Slt, Opcode::Slti},
        {"sub", Opcode::Sub, Opcode::Nop},
        {"sra", Opcode::Sra, Opcode::Nop},
        {"mul", Opcode::Mul, Opcode::Nop},
        {"sltu", Opcode::Sltu, Opcode::Nop},
        {"addi", Opcode::Nop, Opcode::Addi},
        {"andi", Opcode::Nop, Opcode::Andi},
        {"ori", Opcode::Nop, Opcode::Ori},
        {"xori", Opcode::Nop, Opcode::Xori},
        {"slli", Opcode::Nop, Opcode::Slli},
        {"srli", Opcode::Nop, Opcode::Srli},
        {"slti", Opcode::Nop, Opcode::Slti},
    };
    for (const AluEntry &entry : alu_table) {
        if (mnemonic != entry.name)
            continue;
        need(3);
        Instruction inst;
        inst.rd = regOf(ops[0]);
        inst.rs1 = regOf(ops[1]);
        if (ops[2].kind == Operand::Kind::Reg) {
            if (entry.rr == Opcode::Nop)
                error(mnemonic + " requires an immediate last operand");
            inst.op = entry.rr;
            inst.rs2 = regOf(ops[2]);
        } else {
            if (entry.ri == Opcode::Nop)
                error(mnemonic + " has no immediate form");
            inst.op = entry.ri;
            inst.imm = immOf(ops[2]);
        }
        program_.add(inst);
        return;
    }

    static const std::map<std::string, Opcode> fp_rrr = {
        {"fadd", Opcode::Fadd},
        {"fsub", Opcode::Fsub},
        {"fmul", Opcode::Fmul},
    };
    if (auto it = fp_rrr.find(mnemonic); it != fp_rrr.end()) {
        need(3);
        Instruction inst;
        inst.op = it->second;
        inst.rd = regOf(ops[0]);
        inst.rs1 = regOf(ops[1]);
        inst.rs2 = regOf(ops[2]);
        program_.add(inst);
        return;
    }
    static const std::map<std::string, Opcode> fp_rr = {
        {"fmov", Opcode::Fmov},
        {"fitod", Opcode::Fitod},
        {"mvi2f", Opcode::Mvi2f},
        {"mvf2i", Opcode::Mvf2i},
    };
    if (auto it = fp_rr.find(mnemonic); it != fp_rr.end()) {
        need(2);
        Instruction inst;
        inst.op = it->second;
        inst.rd = regOf(ops[0]);
        inst.rs1 = regOf(ops[1]);
        program_.add(inst);
        return;
    }

    if (mnemonic == "li") {
        need(2);
        program_.li(regOf(ops[0]), immOf(ops[1]));
        return;
    }

    static const std::map<std::string, Opcode> loads = {
        {"ldb", Opcode::Ldb},
        {"ldw", Opcode::Ldw},
        {"ldd", Opcode::Ldd},
        {"ldf", Opcode::Ldf},
    };
    if (auto it = loads.find(mnemonic); it != loads.end()) {
        need(2);
        if (ops[1].kind != Operand::Kind::Mem)
            error(mnemonic + " expects a memory operand");
        Instruction inst;
        inst.op = it->second;
        inst.rd = regOf(ops[0]);
        inst.rs1 = ops[1].base;
        inst.imm = ops[1].imm;
        program_.add(inst);
        return;
    }

    static const std::map<std::string, Opcode> stores = {
        {"stb", Opcode::Stb},
        {"stw", Opcode::Stw},
        {"std", Opcode::Std},
        {"stf", Opcode::Stf},
    };
    if (auto it = stores.find(mnemonic); it != stores.end()) {
        need(2);
        if (ops[1].kind != Operand::Kind::Mem)
            error(mnemonic + " expects a memory operand");
        Instruction inst;
        inst.op = it->second;
        inst.rs2 = regOf(ops[0]);
        inst.rs1 = ops[1].base;
        inst.imm = ops[1].imm;
        program_.add(inst);
        return;
    }

    if (mnemonic == "swap") {
        need(2);
        if (ops[0].kind != Operand::Kind::Mem)
            error("swap expects [mem], %reg");
        Instruction inst;
        inst.op = Opcode::Swap;
        inst.rd = regOf(ops[1]);
        inst.rs1 = ops[0].base;
        inst.imm = ops[0].imm;
        program_.add(inst);
        return;
    }

    static const std::map<std::string, Opcode> branches = {
        {"beq", Opcode::Beq}, {"bne", Opcode::Bne},
        {"ble", Opcode::Ble}, {"bgt", Opcode::Bgt},
        {"blt", Opcode::Blt}, {"bge", Opcode::Bge},
    };
    if (auto it = branches.find(mnemonic); it != branches.end()) {
        need(3);
        Instruction inst;
        inst.op = it->second;
        inst.rs1 = regOf(ops[0]);
        inst.rs2 = regOf(ops[1]);
        Label label = labelOf(ops[2]);
        inst.labelId = label.id;
        program_.add(inst);
        return;
    }
    if (mnemonic == "jmp") {
        need(1);
        Instruction inst;
        inst.op = Opcode::Jmp;
        Label label = labelOf(ops[0]);
        inst.labelId = label.id;
        program_.add(inst);
        return;
    }

    if (mnemonic == "membar") {
        need(0);
        program_.membar();
        return;
    }
    if (mnemonic == "nop") {
        need(0);
        program_.nop();
        return;
    }
    if (mnemonic == "halt") {
        need(0);
        program_.halt();
        return;
    }
    if (mnemonic == "mark") {
        need(1);
        program_.mark(immOf(ops[0]));
        return;
    }

    error("unknown mnemonic '" + mnemonic + "'");
}

Program
Parser::run()
{
    std::istringstream stream(source_);
    std::string raw;
    while (std::getline(stream, raw)) {
        ++lineNo_;
        // Strip comments.
        std::size_t comment = raw.find_first_of(";#");
        std::string line =
            trim(comment == std::string::npos ? raw
                                              : raw.substr(0, comment));
        if (line.empty())
            continue;
        if (line[0] == '.') {
            handleDirective(line);
            continue;
        }
        // Leading labels (possibly several).
        std::size_t colon;
        while ((colon = line.find(':')) != std::string::npos) {
            std::string name = trim(line.substr(0, colon));
            if (!isIdentifier(name))
                break; // not a label -- leave for operand parsing
            auto [it, inserted] =
                labels_.try_emplace(name, LabelInfo{});
            if (inserted)
                it->second.label = program_.newLabel();
            if (it->second.bound)
                error("label '" + name + "' defined twice");
            program_.bind(it->second.label);
            it->second.bound = true;
            line = trim(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        std::size_t space = line.find_first_of(" \t");
        std::string mnemonic =
            space == std::string::npos ? line : line.substr(0, space);
        std::string operand_text =
            space == std::string::npos ? "" : line.substr(space + 1);
        for (char &ch : mnemonic)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        handleInstruction(mnemonic, parseOperands(operand_text));
    }

    for (const auto &[name, info] : labels_) {
        if (!info.bound)
            csb_fatal("asm: label '", name, "' referenced but never "
                      "defined");
    }
    program_.finalize();
    return std::move(program_);
}

} // namespace

Program
assemble(const std::string &source)
{
    return Parser(source).run();
}

} // namespace csb::isa
