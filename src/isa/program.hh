/**
 * @file
 * Programmatic assembler for the mini-ISA.
 *
 * Microbenchmark kernels are built with fluent helper methods, e.g.:
 *
 *   Program p;
 *   Label retry = p.newLabel();
 *   p.li(ir(1), bufAddr);
 *   p.bind(retry);
 *   p.li(ir(4), 8);             // expected hit count
 *   p.std_(ir(2), ir(1), 0);    // combining stores, any order
 *   ...
 *   p.swap(ir(4), ir(1), 0);    // conditional flush
 *   p.li(ir(5), 8);
 *   p.bne(ir(4), ir(5), retry); // retry on failure
 *   p.halt();
 *   p.finalize();
 */

#ifndef CSB_ISA_PROGRAM_HH
#define CSB_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "instruction.hh"

namespace csb::isa {

/** An opaque forward-referencable code label. */
struct Label
{
    std::int32_t id = -1;
    bool valid() const { return id >= 0; }
};

/**
 * An assembled instruction sequence.  PCs are instruction indices.
 */
class Program
{
  public:
    Program() = default;

    /** Allocate a label that can be branched to before it is bound. */
    Label newLabel();

    /** Bind @p label to the current end of the program. */
    void bind(Label label);

    /** Append a raw instruction. */
    std::size_t add(const Instruction &inst);

    // --- Convenience emitters (names follow the mnemonics; a trailing
    // --- underscore avoids keyword clashes).

    void nop() { add({Opcode::Nop}); }
    void halt() { add({Opcode::Halt}); }

    /** Record a host-visible timestamp with identifier @p id. */
    void mark(std::int64_t id) { add({Opcode::Mark, noReg, noReg, noReg, id}); }

    void add_(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Add, rd, rs1, rs2); }
    void sub(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Sub, rd, rs1, rs2); }
    void and_(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::And, rd, rs1, rs2); }
    void or_(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Or, rd, rs1, rs2); }
    void xor_(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Xor, rd, rs1, rs2); }
    void sll(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Sll, rd, rs1, rs2); }
    void srl(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Srl, rd, rs1, rs2); }
    void mul(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Mul, rd, rs1, rs2); }
    void slt(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Slt, rd, rs1, rs2); }

    void addi(RegId rd, RegId rs1, std::int64_t imm) { rri(Opcode::Addi, rd, rs1, imm); }
    void andi(RegId rd, RegId rs1, std::int64_t imm) { rri(Opcode::Andi, rd, rs1, imm); }
    void ori(RegId rd, RegId rs1, std::int64_t imm) { rri(Opcode::Ori, rd, rs1, imm); }
    void xori(RegId rd, RegId rs1, std::int64_t imm) { rri(Opcode::Xori, rd, rs1, imm); }
    void slli(RegId rd, RegId rs1, std::int64_t imm) { rri(Opcode::Slli, rd, rs1, imm); }
    void srli(RegId rd, RegId rs1, std::int64_t imm) { rri(Opcode::Srli, rd, rs1, imm); }
    void slti(RegId rd, RegId rs1, std::int64_t imm) { rri(Opcode::Slti, rd, rs1, imm); }

    /** rd = 64-bit immediate. */
    void li(RegId rd, std::int64_t imm) { rri(Opcode::Li, rd, noReg, imm); }

    void fadd(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Fadd, rd, rs1, rs2); }
    void fsub(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Fsub, rd, rs1, rs2); }
    void fmul(RegId rd, RegId rs1, RegId rs2) { rrr(Opcode::Fmul, rd, rs1, rs2); }
    void fmov(RegId rd, RegId rs1) { rrr(Opcode::Fmov, rd, rs1, noReg); }
    void fitod(RegId fd, RegId fs1) { rrr(Opcode::Fitod, fd, fs1, noReg); }
    void mvi2f(RegId fd, RegId rs1) { rrr(Opcode::Mvi2f, fd, rs1, noReg); }
    void mvf2i(RegId rd, RegId fs1) { rrr(Opcode::Mvf2i, rd, fs1, noReg); }

    void ldb(RegId rd, RegId base, std::int64_t off) { mem(Opcode::Ldb, rd, noReg, base, off); }
    void ldw(RegId rd, RegId base, std::int64_t off) { mem(Opcode::Ldw, rd, noReg, base, off); }
    void ldd(RegId rd, RegId base, std::int64_t off) { mem(Opcode::Ldd, rd, noReg, base, off); }
    void ldf(RegId fd, RegId base, std::int64_t off) { mem(Opcode::Ldf, fd, noReg, base, off); }

    void stb(RegId rs, RegId base, std::int64_t off) { mem(Opcode::Stb, noReg, rs, base, off); }
    void stw(RegId rs, RegId base, std::int64_t off) { mem(Opcode::Stw, noReg, rs, base, off); }
    void std_(RegId rs, RegId base, std::int64_t off) { mem(Opcode::Std, noReg, rs, base, off); }
    void stf(RegId fs, RegId base, std::int64_t off) { mem(Opcode::Stf, noReg, fs, base, off); }

    /** Atomic swap: rd <-> mem[base+off] (conditional flush in CSB space). */
    void swap(RegId rd, RegId base, std::int64_t off) { mem(Opcode::Swap, rd, noReg, base, off); }

    void membar() { add({Opcode::Membar}); }

    void beq(RegId a, RegId b, Label l) { branch(Opcode::Beq, a, b, l); }
    void bne(RegId a, RegId b, Label l) { branch(Opcode::Bne, a, b, l); }
    void ble(RegId a, RegId b, Label l) { branch(Opcode::Ble, a, b, l); }
    void bgt(RegId a, RegId b, Label l) { branch(Opcode::Bgt, a, b, l); }
    void blt(RegId a, RegId b, Label l) { branch(Opcode::Blt, a, b, l); }
    void bge(RegId a, RegId b, Label l) { branch(Opcode::Bge, a, b, l); }
    void jmp(Label l) { branch(Opcode::Jmp, noReg, noReg, l); }

    /**
     * Resolve all labels.  Must be called before execution; throws
     * FatalError on unbound labels or ill-formed instructions.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    const std::vector<Instruction> &code() const { return code_; }
    std::size_t size() const { return code_.size(); }

    const Instruction &
    at(std::size_t pc) const
    {
        return code_.at(pc);
    }

    /** Multi-line disassembly listing. */
    std::string disassemble() const;

  private:
    void rrr(Opcode op, RegId rd, RegId rs1, RegId rs2);
    void rri(Opcode op, RegId rd, RegId rs1, std::int64_t imm);
    void mem(Opcode op, RegId rd, RegId data, RegId base, std::int64_t off);
    void branch(Opcode op, RegId a, RegId b, Label l);

    std::vector<Instruction> code_;
    std::vector<std::int64_t> labelTargets_;
    bool finalized_ = false;
};

} // namespace csb::isa

#endif // CSB_ISA_PROGRAM_HH
