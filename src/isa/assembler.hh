/**
 * @file
 * Text assembler for the mini-ISA.
 *
 * Accepts a SPARC-flavoured assembly dialect matching the disassembler
 * output, e.g.:
 *
 *     ; send one line through the CSB
 *             li   %r1, 0x22000000
 *     retry:  li   %r9, 8
 *             std  %r2, [%r1+0]
 *             std  %r3, [%r1+8]
 *             swap [%r1+0], %r9
 *             li   %r10, 8
 *             bne  %r9, %r10, retry
 *             halt
 *
 * Syntax:
 *  - one instruction per line; `;` or `#` start a comment
 *  - labels are identifiers followed by `:` (may share a line with an
 *    instruction)
 *  - registers are %r0..%r31 and %f0..%f31
 *  - immediates are decimal or 0x-hex, optionally negative
 *  - memory operands are [%rN+imm] or [%rN] or [%rN-imm]
 *  - `.equ NAME value` defines a constant usable as an immediate
 *
 * Errors throw csb::FatalError with a line number.
 */

#ifndef CSB_ISA_ASSEMBLER_HH
#define CSB_ISA_ASSEMBLER_HH

#include <string>

#include "program.hh"

namespace csb::isa {

/**
 * Assemble @p source into a finalized Program.
 * @throws csb::FatalError on any syntax or semantic error
 */
Program assemble(const std::string &source);

} // namespace csb::isa

#endif // CSB_ISA_ASSEMBLER_HH
