#include "program.hh"

#include <sstream>

#include "sim/logging.hh"

namespace csb::isa {

Label
Program::newLabel()
{
    labelTargets_.push_back(-1);
    return Label{static_cast<std::int32_t>(labelTargets_.size() - 1)};
}

void
Program::bind(Label label)
{
    csb_assert(label.valid(), "binding an invalid label");
    csb_assert(labelTargets_[label.id] == -1, "label bound twice");
    labelTargets_[label.id] = static_cast<std::int64_t>(code_.size());
}

std::size_t
Program::add(const Instruction &inst)
{
    csb_assert(!finalized_, "appending to a finalized program");
    code_.push_back(inst);
    return code_.size() - 1;
}

void
Program::rrr(Opcode op, RegId rd, RegId rs1, RegId rs2)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    add(inst);
}

void
Program::rri(Opcode op, RegId rd, RegId rs1, std::int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.imm = imm;
    add(inst);
}

void
Program::mem(Opcode op, RegId rd, RegId data, RegId base, std::int64_t off)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = base;
    inst.rs2 = data;
    inst.imm = off;
    add(inst);
}

void
Program::branch(Opcode op, RegId a, RegId b, Label l)
{
    csb_assert(l.valid(), "branch to an invalid label");
    Instruction inst;
    inst.op = op;
    inst.rs1 = a;
    inst.rs2 = b;
    inst.labelId = l.id;
    add(inst);
}

void
Program::finalize()
{
    for (std::size_t pc = 0; pc < code_.size(); ++pc) {
        Instruction &inst = code_[pc];
        if (inst.instClass() == InstClass::Branch) {
            csb_assert(inst.labelId >= 0, "branch without a label at ", pc);
            std::int64_t target = labelTargets_.at(inst.labelId);
            if (target < 0) {
                csb_fatal("program uses unbound label ", inst.labelId,
                          " at pc ", pc);
            }
            inst.target = target;
        }
        if (inst.instClass() == InstClass::Store && !inst.rs2.valid())
            csb_fatal("store without a data register at pc ", pc);
        if (isLoad(inst.op) && !inst.rd.valid())
            csb_fatal("load without a destination register at pc ", pc);
    }
    if (code_.empty() || code_.back().op != Opcode::Halt) {
        csb_warn("program does not end in halt; appending one");
        code_.push_back({Opcode::Halt});
    }
    finalized_ = true;
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < code_.size(); ++pc)
        os << pc << ":\t" << code_[pc].toString() << "\n";
    return os.str();
}

} // namespace csb::isa
