#include "health.hh"

#include <sstream>

#include "io/network_interface.hh"
#include "sim/logging.hh"
#include "system.hh"

namespace csb::core {

void
HealthParams::validate() const
{
    if (period < 1)
        csb_fatal("health period must be >= 1 tick");
    if (livenessWindow < period)
        csb_fatal("liveness window shorter than the check period");
}

HealthMonitor::HealthMonitor(System &system, HealthParams params)
    : system_(system), params_(params)
{
    params_.validate();
}

void
HealthMonitor::arm()
{
    csb_assert(!armed_, "health monitor armed twice");
    armed_ = true;
    lastSig_ = progressSignature();
    lastProgressTick_ = system_.simulator().curTick();
    Tick first = system_.simulator().curTick() + params_.period;
    system_.simulator().eventQueue().scheduleFunc(first, [this, first] {
        check(first);
    });
}

void
HealthMonitor::disarm()
{
    armed_ = false;
}

std::uint64_t
HealthMonitor::progressSignature() const
{
    // FNV-1a over every monotone activity counter: any work anywhere
    // in the machine changes the signature.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    bus::SystemBus &bus = system_.bus();
    mix(static_cast<std::uint64_t>(bus.numReads.value()));
    mix(static_cast<std::uint64_t>(bus.numWrites.value()));
    mix(static_cast<std::uint64_t>(bus.numNacks.value()));
    for (unsigned cpu = 0; cpu < system_.numCores(); ++cpu) {
        mix(static_cast<std::uint64_t>(
            system_.core(cpu).instsRetired.value()));
        mem::UncachedBuffer &ubuf = system_.uncachedBuffer(cpu);
        mix(static_cast<std::uint64_t>(ubuf.txnsIssued.value()));
        mix(static_cast<std::uint64_t>(ubuf.busRetries.value()));
        if (mem::ConditionalStoreBuffer *csb = system_.csb(cpu)) {
            mix(static_cast<std::uint64_t>(csb->flushesAttempted.value()));
            mix(static_cast<std::uint64_t>(csb->busRetries.value()));
            mix(static_cast<std::uint64_t>(csb->linesIssued.value()));
        }
    }
    if (io::NetworkInterface *ni = system_.ni()) {
        mix(static_cast<std::uint64_t>(ni->delivered().size()));
        mix(static_cast<std::uint64_t>(ni->retransmits.value()));
        mix(static_cast<std::uint64_t>(ni->busRetries.value()));
        mix(static_cast<std::uint64_t>(ni->linkResets.value()));
        mix(static_cast<std::uint64_t>(ni->bytesSent.value()));
    }
    return h;
}

void
HealthMonitor::check(Tick now)
{
    if (!armed_)
        return;
    ++checks_;

    // Safety: exactly-once delivery.  Scan only the log suffix added
    // since the previous check.
    if (io::NetworkInterface *ni = system_.ni()) {
        const auto &log = ni->delivered();
        for (; deliveredScanned_ < log.size(); ++deliveredScanned_) {
            std::uint64_t seq = log[deliveredScanned_].seq;
            if (!seqsSeen_.insert(seq).second) {
                std::ostringstream os;
                os << "seq " << seq << " delivered twice";
                violations_.push_back(
                    {now, "duplicate-delivery", os.str()});
            }
        }
    }

    // Safety: CSB flush accounting must balance.
    for (unsigned cpu = 0; cpu < system_.numCores(); ++cpu) {
        mem::ConditionalStoreBuffer *csb = system_.csb(cpu);
        if (!csb)
            continue;
        double attempted = csb->flushesAttempted.value();
        double succeeded = csb->flushesSucceeded.value();
        double failed = csb->flushesFailed.value();
        if (attempted != succeeded + failed) {
            std::ostringstream os;
            os << "cpu " << cpu << ": attempted " << attempted
               << " != succeeded " << succeeded << " + failed " << failed;
            violations_.push_back({now, "flush-accounting", os.str()});
        }
    }

    // Liveness: the signature must move while the system is busy.
    std::uint64_t sig = progressSignature();
    if (system_.quiescent() || sig != lastSig_) {
        lastSig_ = sig;
        lastProgressTick_ = now;
    } else if (now - lastProgressTick_ >= params_.livenessWindow) {
        std::ostringstream os;
        os << "no progress for " << (now - lastProgressTick_)
           << " ticks while non-quiescent";
        violations_.push_back({now, "liveness-stall", os.str()});
        lastProgressTick_ = now; // re-arm, don't spam every period
    }

    Tick next = now + params_.period;
    system_.simulator().eventQueue().scheduleFunc(next, [this, next] {
        check(next);
    });
}

} // namespace csb::core
