#include "workloads.hh"

#include <set>

#include "io/network_interface.hh"
#include "kernels.hh"
#include "sim/logging.hh"
#include "system.hh"

namespace csb::core {

MessageSizeDistribution
MessageSizeDistribution::fixed(unsigned bytes)
{
    csb_assert(bytes >= 1, "empty message");
    MessageSizeDistribution dist(Kind::Fixed, 0);
    dist.fixed_ = bytes;
    return dist;
}

MessageSizeDistribution
MessageSizeDistribution::scientific(std::uint64_t seed)
{
    return MessageSizeDistribution(Kind::Uniform, seed);
}

MessageSizeDistribution
MessageSizeDistribution::bimodal(unsigned small_bytes,
                                 unsigned large_bytes,
                                 double small_fraction,
                                 std::uint64_t seed)
{
    MessageSizeDistribution dist(Kind::Bimodal, seed);
    dist.small_ = small_bytes;
    dist.large_ = large_bytes;
    dist.smallFraction_ = small_fraction;
    return dist;
}

unsigned
MessageSizeDistribution::sample()
{
    switch (kind_) {
      case Kind::Fixed:
        return fixed_;
      case Kind::Uniform:
        return static_cast<unsigned>(rng_.uniform(lo_, hi_));
      case Kind::Bimodal:
        return rng_.uniform01() < smallFraction_ ? small_ : large_;
    }
    return fixed_;
}

std::vector<unsigned>
drawSizes(MessageSizeDistribution dist, unsigned count)
{
    std::vector<unsigned> sizes;
    sizes.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        sizes.push_back(dist.sample());
    return sizes;
}

namespace {

using isa::ir;

/** Append one lock-protected PIO send of @p bytes. */
void
appendLockedSend(isa::Program &p, unsigned bytes)
{
    unsigned dwords = divCeil(bytes, 8);
    // Acquire (r10 = lock addr preset, r11 scratch).
    p.li(ir(11), 1);
    isa::Label spin = p.newLabel();
    p.bind(spin);
    p.swap(ir(11), ir(10), 0);
    p.bne(ir(11), ir(0), spin);
    p.membar();
    for (unsigned i = 0; i < dwords; ++i)
        p.std_(ir(2 + i % 7), ir(1), i * 8);
    p.membar();
    p.li(ir(13), static_cast<std::int64_t>(bytes));
    p.std_(ir(13), ir(14), 0); // doorbell
    p.membar();
    p.li(ir(12), 0);
    p.std_(ir(12), ir(10), 0); // release
}

/** Append one CSB PIO send of @p bytes (lock-free). */
void
appendCsbSend(isa::Program &p, unsigned bytes, unsigned line_bytes)
{
    unsigned dwords = divCeil(bytes, 8);
    for (unsigned group = 0; group * (line_bytes / 8) < dwords;
         ++group) {
        unsigned first = group * (line_bytes / 8);
        unsigned count =
            std::min<unsigned>(line_bytes / 8, dwords - first);
        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), static_cast<std::int64_t>(count));
        for (unsigned i = 0; i < count; ++i)
            p.std_(ir(2 + (first + i) % 7), ir(1), (first + i) * 8);
        p.swap(ir(9), ir(1), first * 8);
        p.li(ir(12), static_cast<std::int64_t>(count));
        p.bne(ir(9), ir(12), retry);
    }
    p.membar(); // drain flushed lines before the doorbell
    p.li(ir(13), static_cast<std::int64_t>(bytes));
    p.std_(ir(13), ir(14), 0);
}

/** Append one cache line's worth of stores to the device window. */
void
appendDeviceLine(isa::Program &p, unsigned line, unsigned line_bytes,
                 bool use_csb)
{
    unsigned dwords = line_bytes / 8;
    unsigned base = line * line_bytes;
    if (use_csb) {
        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), static_cast<std::int64_t>(dwords));
        for (unsigned i = 0; i < dwords; ++i)
            p.std_(ir(2 + i % 7), ir(15), base + i * 8);
        p.swap(ir(9), ir(15), base);
        p.li(ir(12), static_cast<std::int64_t>(dwords));
        p.bne(ir(9), ir(12), retry);
    } else {
        for (unsigned i = 0; i < dwords; ++i)
            p.std_(ir(2 + i % 7), ir(15), base + i * 8);
    }
}

} // namespace

isa::Program
makeMessageProgram(const MessageProgramSpec &spec,
                   const std::vector<unsigned> &sizes)
{
    using isa::ir;

    Addr pio = System::niBase + io::NiMap::pioBase;
    Addr bell = System::niBase + io::NiMap::doorbell;

    isa::Program p;
    for (int r = 2; r <= 8; ++r)
        p.li(ir(r), 0x5a5a5a5a5a5a5a5aULL);
    p.li(ir(1), static_cast<std::int64_t>(pio));
    p.li(ir(10), static_cast<std::int64_t>(spec.lockAddr));
    p.li(ir(14), static_cast<std::int64_t>(bell));
    if (spec.deviceLines > 0)
        p.li(ir(15), static_cast<std::int64_t>(System::ioCsbBase));
    p.mark(0);
    for (unsigned bytes : sizes) {
        if (spec.useCsb)
            appendCsbSend(p, bytes, spec.lineBytes);
        else
            appendLockedSend(p, bytes);
        if (spec.fenceDoorbell)
            p.membar();
    }
    p.mark(1);
    for (unsigned line = 0; line < spec.deviceLines; ++line)
        appendDeviceLine(p, line, spec.lineBytes, spec.useCsb);
    if (spec.deviceLines > 0)
        p.membar();
    p.halt();
    p.finalize();
    return p;
}

AppTrafficResult
runMessageWorkload(const BandwidthSetup &setup, bool use_csb,
                   const std::vector<unsigned> &message_sizes,
                   const sim::FaultPlan *faults)
{
    SystemConfig cfg;
    cfg.lineBytes = setup.lineBytes;
    cfg.bus = setup.bus;
    cfg.enableCsb = use_csb;
    cfg.ubuf.combineBytes = 0; // conventional PIO baseline
    cfg.enableNi = true;
    if (faults) {
        cfg.faults = *faults;
        // Protocol mode (and its ordered-stream serialization) only
        // when bus faults can actually fire, so an all-zero or
        // wire-only plan keeps bus timing identical to a clean run.
        cfg.bus.errorResponses = faults->busFaultsEnabled();
    }
    cfg.normalize();
    System system(cfg);

    MessageProgramSpec pspec;
    pspec.useCsb = use_csb;
    pspec.lineBytes = setup.lineBytes;
    pspec.fenceDoorbell = faults && faults->busFaultsEnabled();
    system.caches().touch(pspec.lockAddr);

    isa::Program p = makeMessageProgram(pspec, message_sizes);

    system.run(p);

    AppTrafficResult result;
    result.messages = static_cast<unsigned>(message_sizes.size());
    for (unsigned bytes : message_sizes)
        result.payloadBytes += bytes;
    result.totalCycles = static_cast<double>(
        system.core().markTime(1) - system.core().markTime(0));
    result.cyclesPerMessage =
        result.totalCycles / static_cast<double>(result.messages);
    result.delivered =
        static_cast<unsigned>(system.ni()->delivered().size());

    const io::NetworkInterface &ni = *system.ni();
    result.busNacks = static_cast<std::uint64_t>(
        system.bus().numNacks.value());
    result.busRetries = static_cast<std::uint64_t>(
        ni.busRetries.value() + system.uncachedBuffer().busRetries.value() +
        (system.csb() ? system.csb()->busRetries.value() : 0));
    result.retransmits =
        static_cast<std::uint64_t>(ni.retransmits.value());
    result.duplicatesSuppressed =
        static_cast<std::uint64_t>(ni.duplicatesSuppressed.value());
    result.checksumDiscards =
        static_cast<std::uint64_t>(ni.checksumDiscards.value());

    std::set<std::uint64_t> seqs;
    for (const io::DeliveredMessage &msg : ni.delivered())
        seqs.insert(msg.seq);
    result.exactlyOnce = result.delivered == result.messages &&
                         seqs.size() == ni.delivered().size();
    return result;
}

} // namespace csb::core
