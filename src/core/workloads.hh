/**
 * @file
 * Application-level message workloads.
 *
 * The paper closes with: "The next step is to evaluate the benefits
 * of these performance advantages in terms of realistic applications,
 * since the microbenchmarks used in this study were designed to
 * maximize the pressure on the I/O subsystem rather than model
 * application reality."  This module takes that step with synthetic
 * application traffic: message sizes drawn from the distribution the
 * paper cites (Mukherjee & Hill: average message sizes of 19 to 230
 * bytes for parallel scientific applications), sent through the
 * network interface with either conventional lock-protected PIO or
 * the CSB.
 */

#ifndef CSB_CORE_WORKLOADS_HH
#define CSB_CORE_WORKLOADS_HH

#include <cstdint>
#include <vector>

#include "experiments.hh"
#include "isa/program.hh"
#include "sim/fault.hh"
#include "sim/random.hh"

namespace csb::core {

/** Message-size generator. */
class MessageSizeDistribution
{
  public:
    /** Every message is exactly @p bytes. */
    static MessageSizeDistribution fixed(unsigned bytes);

    /**
     * Uniform in [19, 230] bytes -- the range of average message
     * sizes Mukherjee & Hill report for parallel scientific codes
     * (paper section 2).
     */
    static MessageSizeDistribution scientific(std::uint64_t seed);

    /**
     * Bimodal: @p small_fraction of messages are @p small_bytes
     * (control traffic), the rest @p large_bytes (bulk payloads).
     */
    static MessageSizeDistribution bimodal(unsigned small_bytes,
                                           unsigned large_bytes,
                                           double small_fraction,
                                           std::uint64_t seed);

    /** Next message size in bytes (>= 1). */
    unsigned sample();

  private:
    enum class Kind { Fixed, Uniform, Bimodal };

    MessageSizeDistribution(Kind kind, std::uint64_t seed)
        : kind_(kind), rng_(seed)
    {}

    Kind kind_;
    sim::Random rng_;
    unsigned fixed_ = 64;
    unsigned lo_ = 19;
    unsigned hi_ = 230;
    unsigned small_ = 32;
    unsigned large_ = 1024;
    double smallFraction_ = 0.8;
};

/** Result of one application-traffic run. */
struct AppTrafficResult
{
    unsigned messages = 0;
    std::uint64_t payloadBytes = 0;
    /** Total send-loop time, CPU cycles (mark 0 to mark 1). */
    double totalCycles = 0;
    double cyclesPerMessage = 0;
    /** Messages actually delivered by the NI (sanity). */
    unsigned delivered = 0;
    /** Bus-level NACKs seen by any master (faults only). */
    std::uint64_t busNacks = 0;
    /** NACKed transactions reissued after backoff. */
    std::uint64_t busRetries = 0;
    /** Wire packets retransmitted after an ack timeout. */
    std::uint64_t retransmits = 0;
    /** Duplicate wire arrivals suppressed at the receiver. */
    std::uint64_t duplicatesSuppressed = 0;
    /** Wire arrivals discarded for a checksum mismatch. */
    std::uint64_t checksumDiscards = 0;
    /**
     * True when every accepted message was delivered exactly once:
     * the delivered count matches the send count and no sequence
     * number appears twice in the receive log.
     */
    bool exactlyOnce = false;
};

/** How a message send loop is materialised as a program. */
struct MessageProgramSpec
{
    /** CSB PIO (lock-free) when true, lock-protected PIO otherwise. */
    bool useCsb = true;
    /** CSB line size (group size of the combining send loop). */
    unsigned lineBytes = 64;
    /**
     * membar after every doorbell.  Required when bus faults can NACK:
     * the doorbell and the payload flush travel on different masters,
     * and a NACKed doorbell replaying after its backoff would otherwise
     * be passed by the next message's line burst.
     */
    bool fenceDoorbell = false;
    /** Spin-lock word for the lock-protected PIO path (cached RAM). */
    Addr lockAddr = 0x4000;
    /**
     * Cache lines to write through the device window (uncached-
     * combining page) after the send loop.  0 = NI traffic only.
     * Non-zero legs exercise the BurstDevice -- and, under a scheduled
     * device-hang fault, the CSB's degraded-mode escalation.
     */
    unsigned deviceLines = 0;
};

/**
 * Build the message-send program runMessageWorkload executes: r2..r8
 * hold the payload pattern, r1/r10/r14 the PIO window, lock word and
 * doorbell; mark(0)/mark(1) bracket the send loop.  The program is
 * finalized and ready for System::run.
 */
isa::Program makeMessageProgram(const MessageProgramSpec &spec,
                                const std::vector<unsigned> &sizes);

/**
 * Send @p message_sizes.size() messages through the NI.
 * @param use_csb  CSB PIO (lock-free) when true, lock-protected PIO
 *                 with conventional uncached stores otherwise
 * @param faults   optional seeded fault plan; non-null enables the
 *                 injector (and, for wire faults, the reliable wire
 *                 protocol) for the run
 */
AppTrafficResult runMessageWorkload(
    const BandwidthSetup &setup, bool use_csb,
    const std::vector<unsigned> &message_sizes,
    const sim::FaultPlan *faults = nullptr);

/** Draw @p count sizes from @p dist. */
std::vector<unsigned> drawSizes(MessageSizeDistribution dist,
                                unsigned count);

} // namespace csb::core

#endif // CSB_CORE_WORKLOADS_HH
