#include "sweep.hh"

namespace csb::core {

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? sim::ThreadPool::defaultThreads() : jobs;
}

sim::ThreadPool &
SweepRunner::pool()
{
    if (!pool_)
        pool_ = std::make_unique<sim::ThreadPool>(jobs_);
    return *pool_;
}

} // namespace csb::core
