#include "replay_core.hh"

#include "sim/logging.hh"

namespace csb::core {

ReplayCore::ReplayCore(sim::Simulator &simulator,
                       const cpu::CoreMemPorts &ports,
                       std::vector<sim::TraceRecord> records,
                       std::string name)
    : sim::Clocked(std::move(name), sim::ClockDomain(1), /*eval_order=*/0),
      sim_(simulator), ports_(ports), records_(std::move(records))
{
    csb_assert(ports_.caches && ports_.ubuf && ports_.memory,
               "replay core needs caches, ubuf and memory ports");
    for (const sim::TraceRecord &rec : records_) {
        if (rec.flags & sim::TraceFlagInterpreter)
            csb_fatal("interpreter-sourced traces are not cycle-accurate "
                      "and cannot be replayed (docs/TRACE_FORMAT.md)");
    }
    simulator.registerClocked(this);
    scheduleNext();
}

void
ReplayCore::scheduleNext()
{
    gate();
    if (next_ >= records_.size())
        return;
    Tick when = records_[next_].tick;
    csb_assert(when >= sim_.curTick(), "replay record in the past");
    if (wakeupAt_ == when)
        return;
    wakeupAt_ = when;
    // MinimumPri: the pump runs after every regular event of the tick,
    // mirroring where the live core's completion callbacks landed.
    sim_.eventQueue().scheduleFunc(when, [this] { pump(); },
                                   sim::Event::MinimumPri);
}

void
ReplayCore::pump()
{
    wakeupAt_ = maxTick;
    Tick now = sim_.curTick();
    while (next_ < records_.size() && records_[next_].tick == now &&
           records_[next_].eventPhase()) {
        issue(records_[next_]);
        ++next_;
    }
    if (next_ < records_.size() && records_[next_].tick == now) {
        // Clocked-phase records due this tick: the clocked phase has
        // not run yet (events fire first), so ungating here makes
        // tick() fire at exactly the recorded tick.
        ungate();
        return;
    }
    scheduleNext();
}

void
ReplayCore::tick()
{
    Tick now = sim_.curTick();
    while (next_ < records_.size() && records_[next_].tick == now &&
           !records_[next_].eventPhase()) {
        issue(records_[next_]);
        ++next_;
    }
    scheduleNext();
}

void
ReplayCore::issue(const sim::TraceRecord &rec)
{
    Tick now = sim_.curTick();
    switch (rec.op) {
      case sim::TraceOp::CachedLoad:
        // value carries the recorded TLB penalty: the live core issued
        // the lookup at now + penalty; tags mutate at call time either
        // way, only the (discarded) completion callback shifts.
        ports_.caches->access(rec.addr, /*is_write=*/false,
                              now + rec.value, [](Tick) {});
        break;

      case sim::TraceOp::CachedStore:
        ports_.memory->write(rec.addr, &rec.value, rec.size);
        ports_.caches->accessLatency(rec.addr, /*is_write=*/true);
        break;

      case sim::TraceOp::CachedSwapStart:
        ports_.caches->access(rec.addr, /*is_write=*/true, now,
                              [](Tick) {});
        break;

      case sim::TraceOp::SwapMemWrite:
        ports_.memory->write(rec.addr, &rec.value, rec.size);
        break;

      case sim::TraceOp::UncachedLoad:
        // The recorded run only issued once the buffer had room; an
        // identically configured replay sees the identical occupancy.
        csb_assert(ports_.ubuf->canAcceptLoad(),
                   "replay: uncached buffer refused a recorded load");
        ports_.ubuf->pushLoad(
            rec.addr, rec.size,
            [](Tick, const std::vector<std::uint8_t> &) {});
        break;

      case sim::TraceOp::UncachedStore:
        csb_assert(ports_.ubuf->canAcceptStore(rec.addr, rec.size),
                   "replay: uncached buffer refused a recorded store");
        ports_.ubuf->pushStore(rec.addr, rec.size, &rec.value);
        break;

      case sim::TraceOp::CsbStore:
        csb_assert(ports_.csb, "replay: CSB record without a CSB");
        csb_assert(ports_.csb->canAcceptStore(),
                   "replay: CSB refused a recorded combining store");
        ports_.csb->store(static_cast<ProcId>(rec.pid), rec.addr,
                          rec.size, &rec.value);
        break;

      case sim::TraceOp::CsbFlush:
        csb_assert(ports_.csb, "replay: CSB record without a CSB");
        // value carries the expected hit count; the outcome steered
        // the recorded program, so the stream already reflects it.
        (void)ports_.csb->conditionalFlush(static_cast<ProcId>(rec.pid),
                                           rec.addr, rec.value);
        break;

      case sim::TraceOp::Membar:
        // Ordering is implied by the stream; nothing to drive.
        break;
    }
}

void
ReplayCore::debugDump(std::ostream &os) const
{
    os << "issued=" << next_ << "/" << records_.size()
       << " wakeupAt=" << wakeupAt_;
}

} // namespace csb::core
