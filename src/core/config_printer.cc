#include "config_printer.hh"

namespace csb::core {

namespace {

const char *
busKindName(bus::BusKind kind)
{
    return kind == bus::BusKind::Multiplexed ? "multiplexed"
                                             : "split address/data";
}

} // namespace

void
printConfig(const SystemConfig &config, std::ostream &os)
{
    os << "system configuration:\n";
    os << "  cores                : " << config.numCores << "\n";
    os << "  cache line           : " << config.lineBytes << " B\n";

    os << "  bus                  : " << busKindName(config.bus.kind)
       << ", " << config.bus.widthBytes << " B wide, 1:"
       << config.bus.ratio << " CPU:bus";
    if (config.bus.turnaround)
        os << ", turnaround " << config.bus.turnaround;
    if (config.bus.ackDelay)
        os << ", ack delay " << config.bus.ackDelay;
    os << ", max burst " << config.bus.maxBurstBytes << " B\n";

    os << "  core                 : " << config.core.fetchWidth
       << "-wide fetch, " << config.core.retireWidth << "-wide retire, "
       << config.core.windowSize << "-entry window, "
       << config.core.intUnits << " INT + " << config.core.fpUnits
       << " FP units, " << config.core.memPorts << " mem ports, "
       << config.core.maxUncachedRetirePerCycle
       << " uncached retire/cycle\n";

    os << "  uncached buffer      : " << config.ubuf.entries
       << " entries, ";
    if (config.ubuf.combineBytes == 0) {
        os << "no combining\n";
    } else {
        os << "combining into " << config.ubuf.combineBytes
           << " B blocks\n";
    }

    if (config.enableCsb) {
        os << "  conditional store buf: " << config.csb.lineBytes
           << " B line, " << config.csb.numLineBuffers
           << " line buffer(s)"
           << (config.csb.checkAddress ? ", address checked" : "")
           << (config.csb.partialFlush ? ", partial flush" : "")
           << ", flush latency " << config.core.csbFlushLatency
           << "\n";
    } else {
        os << "  conditional store buf: disabled\n";
    }

    os << "  L1                   : " << config.l1.sizeBytes / 1024
       << " KiB, " << config.l1.assoc << "-way, hit "
       << config.l1.hitLatency << "\n";
    os << "  L2                   : " << config.l2.sizeBytes / 1024
       << " KiB, " << config.l2.assoc << "-way, hit "
       << config.l2.hitLatency << "\n";
    os << "  memory               : miss +" << config.fixedMissLatency
       << " cycles"
       << (config.routeMissesOverBus ? " (misses routed over the bus)"
                                     : "")
       << ", bus-read latency " << config.memReadLatency << "\n";
    os << "  TLB                  : " << config.tlbEntries
       << " entries, miss +" << config.tlbMissPenalty << " cycles\n";
    if (config.enableNi) {
        os << "  network interface    : wire "
           << config.ni.wireTicksPerByte << " ticks/B + "
           << config.ni.wireLatency << " ticks, DMA "
           << config.ni.dmaBurstBytes << " B bursts, "
           << config.ni.dmaMaxOutstanding << " outstanding, startup "
           << config.ni.dmaStartupTicks << "\n";
    }
}

} // namespace csb::core
