/**
 * @file
 * Every knob of a simulated system in one structure.
 */

#ifndef CSB_CORE_SYSTEM_CONFIG_HH
#define CSB_CORE_SYSTEM_CONFIG_HH

#include "bus/system_bus.hh"
#include "cpu/core.hh"
#include "io/network_interface.hh"
#include "mem/cache.hh"
#include "mem/csb.hh"
#include "mem/uncached_buffer.hh"
#include "sim/fault.hh"
#include "sim/types.hh"

namespace csb::core {

/**
 * Complete configuration of a System.  Call normalize() after
 * editing: it propagates the cache-line size into the caches, CSB and
 * bus max-burst so a single lineBytes edit reconfigures everything,
 * exactly as the paper's block-size sweeps do.
 */
struct SystemConfig
{
    /** Cache line size; also the CSB line and the largest bus burst. */
    unsigned lineBytes = 64;

    /**
     * Processors on the shared bus (SMP node, as in the paper's
     * motivation).  Each core gets a private TLB, cache hierarchy,
     * uncached buffer and CSB; bus, memory and devices are shared.
     * Multi-core workloads that share writable cached data need a
     * coherence protocol -- set coherence.kind (default None keeps
     * the legacy private-cache semantics, where sharing cached
     * writable lines between cores is a workload bug).
     */
    unsigned numCores = 1;

    /**
     * Snooping cache coherence across the per-core hierarchies
     * (mem/coherence.hh).  None by default: single-core systems need
     * no snooping and all legacy artifacts stay byte-identical.
     */
    mem::CoherenceParams coherence;

    bus::BusParams bus;

    cpu::CoreParams core;

    /**
     * Basic-block translated dispatch (cpu/translator.hh).  Off by
     * default: every artifact stays byte-identical.  Interpreter mode
     * only affects the functional engines (a System ignores it);
     * CoreFastForward lets each cycle-level core retire long
     * pure-compute block chains in one tick -- a documented
     * approximate-timing mode, fingerprinted in checkpoints.
     */
    cpu::TranslateConfig cpu;

    mem::UncachedBufferParams ubuf;

    bool enableCsb = true;
    mem::CsbParams csb;

    mem::CacheParams l1{32 * 1024, 2, 64, /*hitLatency=*/2};
    mem::CacheParams l2{512 * 1024, 4, 64, /*hitLatency=*/8};

    /**
     * Fixed latency charged past the L2 when misses are NOT routed
     * over the bus.  Tuned so an L1 miss costs ~100 CPU cycles total
     * (the paper's reference point in section 4.3.2).
     */
    Tick fixedMissLatency = 90;

    /** Route L2 misses over the system bus as line reads. */
    bool routeMissesOverBus = false;

    /** Main-memory read latency seen by the bus target. */
    Tick memReadLatency = 60;

    unsigned tlbEntries = 64;
    Tick tlbMissPenalty = 20;

    bool enableNi = false;
    io::NetworkInterfaceParams ni;

    /** Device register-read latency and burst capability. */
    Tick deviceReadLatency = 12;
    unsigned deviceMaxAccept = 128;

    /**
     * Seeded fault plan.  All-zero rates (the default) build no
     * injector at all, keeping clean runs bit-identical to a build
     * without the fault machinery.
     */
    sim::FaultPlan faults;

    /**
     * Forward-progress watchdog window in ticks: the run aborts with
     * a diagnostic FatalError after this many ticks with no retire
     * and no bus activity.  0 (default) disables the watchdog.
     */
    Tick watchdogTicks = 0;

    /**
     * Build the system for trace replay: every processor slice gets a
     * ReplayCore instead of an out-of-order cpu::Core (and no TLB
     * lookups happen -- recorded penalties are replayed instead).
     * Drive such a system with System::replay(), not System::run().
     */
    bool replayMode = false;

    /** Propagate lineBytes; validate everything. */
    void normalize();
};

} // namespace csb::core

#endif // CSB_CORE_SYSTEM_CONFIG_HH
