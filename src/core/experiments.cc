#include "experiments.hh"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>

#include "io/network_interface.hh"
#include "kernels.hh"
#include "sim/logging.hh"
#include "system.hh"

namespace csb::core {

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::NoCombine: return "no-comb";
      case Scheme::Combine16: return "comb-16";
      case Scheme::Combine32: return "comb-32";
      case Scheme::Combine64: return "comb-64";
      case Scheme::Combine128: return "comb-128";
      case Scheme::Csb: return "CSB";
    }
    return "?";
}

unsigned
schemeCombineBytes(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Combine16: return 16;
      case Scheme::Combine32: return 32;
      case Scheme::Combine64: return 64;
      case Scheme::Combine128: return 128;
      default: return 0;
    }
}

std::vector<Scheme>
schemesForLine(unsigned line_bytes)
{
    std::vector<Scheme> schemes{Scheme::NoCombine};
    if (line_bytes >= 16)
        schemes.push_back(Scheme::Combine16);
    if (line_bytes >= 32)
        schemes.push_back(Scheme::Combine32);
    if (line_bytes >= 64)
        schemes.push_back(Scheme::Combine64);
    if (line_bytes >= 128)
        schemes.push_back(Scheme::Combine128);
    schemes.push_back(Scheme::Csb);
    return schemes;
}

std::vector<unsigned>
defaultTransferSizes()
{
    return {16, 32, 64, 128, 256, 512, 1024};
}

namespace {

SystemConfig
configFor(const BandwidthSetup &setup, Scheme scheme)
{
    SystemConfig cfg;
    cfg.lineBytes = setup.lineBytes;
    cfg.bus = setup.bus;
    cfg.enableCsb = scheme == Scheme::Csb;
    cfg.ubuf.combineBytes = schemeCombineBytes(scheme);
    cfg.normalize();
    return cfg;
}

} // namespace

double
measureStoreBandwidth(const BandwidthSetup &setup, Scheme scheme,
                      unsigned transfer_bytes)
{
    System system(configFor(setup, scheme));

    isa::Program program =
        scheme == Scheme::Csb
            ? makeCsbStoreKernel(System::ioCsbBase, transfer_bytes,
                                 setup.lineBytes)
            : makeStoreKernel(scheme == Scheme::NoCombine
                                  ? System::ioUncachedBase
                                  : System::ioAccelBase,
                              transfer_bytes);
    system.run(program);

    std::uint64_t cycles = system.ioWriteBusCycles();
    csb_assert(cycles > 0, "no I/O transactions recorded");
    // Useful bytes per bus cycle: the CSB's zero padding does not
    // count as payload (that is exactly its small-transfer penalty).
    return static_cast<double>(transfer_bytes) /
           static_cast<double>(cycles);
}

BandwidthSweep
runBandwidthSweep(SweepRunner &runner, const std::string &title,
                  const BandwidthSetup &setup,
                  const std::vector<Scheme> &schemes,
                  const std::vector<unsigned> &sizes)
{
    BandwidthSweep sweep;
    sweep.title = title;
    sweep.sizes = sizes;
    sweep.schemes = schemes;

    // Flatten the scheme x size grid into independent points; each
    // builds its own System, so the runner may execute them on any
    // worker in any order.  Results come back in grid-index order.
    std::vector<double> flat = runner.mapIndex(
        schemes.size() * sizes.size(), [&](std::size_t point) {
            Scheme scheme = schemes[point / sizes.size()];
            unsigned size = sizes[point % sizes.size()];
            return measureStoreBandwidth(setup, scheme, size);
        });

    for (std::size_t i = 0; i < schemes.size(); ++i) {
        sweep.bandwidth.emplace_back(
            flat.begin() + i * sizes.size(),
            flat.begin() + (i + 1) * sizes.size());
    }
    return sweep;
}

BandwidthSweep
runBandwidthSweep(const std::string &title, const BandwidthSetup &setup,
                  const std::vector<Scheme> &schemes,
                  const std::vector<unsigned> &sizes)
{
    SweepRunner serial(1);
    return runBandwidthSweep(serial, title, setup, schemes, sizes);
}

void
printSweep(const BandwidthSweep &sweep, std::ostream &os)
{
    os << "=== " << sweep.title << " ===\n";
    os << std::left << std::setw(10) << "transfer";
    for (Scheme scheme : sweep.schemes)
        os << std::right << std::setw(10) << schemeName(scheme);
    os << "\n";
    for (std::size_t j = 0; j < sweep.sizes.size(); ++j) {
        os << std::left << std::setw(10) << sweep.sizes[j];
        for (std::size_t i = 0; i < sweep.schemes.size(); ++i) {
            os << std::right << std::setw(10) << std::fixed
               << std::setprecision(2) << sweep.bandwidth[i][j];
        }
        os << "\n";
    }
    os << "(bytes per bus cycle)\n\n";
}

// --------------------------------------------------------------------
// Trace capture/replay

SystemConfig
bandwidthConfig(const BandwidthSetup &setup, Scheme scheme)
{
    return configFor(setup, scheme);
}

namespace {

isa::Program
bandwidthKernel(const BandwidthSetup &setup, Scheme scheme,
                unsigned transfer_bytes, unsigned alu_per_store)
{
    return scheme == Scheme::Csb
               ? makeCsbStoreKernel(System::ioCsbBase, transfer_bytes,
                                    setup.lineBytes, alu_per_store)
               : makeStoreKernel(scheme == Scheme::NoCombine
                                     ? System::ioUncachedBase
                                     : System::ioAccelBase,
                                 transfer_bytes, alu_per_store);
}

/** Capture the common determinism surface of a finished run. */
TracedRun
summarizeRun(System &system, Tick end_tick, unsigned transfer_bytes)
{
    TracedRun run;
    run.endTick = end_tick;
    run.ioWriteBusCycles = system.ioWriteBusCycles();
    run.ioWriteTxns = system.ioWriteTxns();
    csb_assert(run.ioWriteBusCycles > 0, "no I/O transactions recorded");
    run.bytesPerBusCycle = static_cast<double>(transfer_bytes) /
                           static_cast<double>(run.ioWriteBusCycles);
    std::ostringstream os;
    system.dumpMemStatsJson(os);
    run.memStatsJson = os.str();
    return run;
}

} // namespace

TracedRun
recordStoreBandwidth(const BandwidthSetup &setup, Scheme scheme,
                     unsigned transfer_bytes,
                     sim::TraceRecorder *recorder,
                     unsigned alu_per_store)
{
    System system(configFor(setup, scheme));
    if (recorder) {
        csb_assert(recorder->numCpus() == 1 &&
                       recorder->lineBytes() == setup.lineBytes,
                   "recorder geometry does not match the setup");
        system.attachTraceRecorder(recorder);
    }
    Tick end = system.run(
        bandwidthKernel(setup, scheme, transfer_bytes, alu_per_store));
    return summarizeRun(system, end, transfer_bytes);
}

TracedRun
replayStoreBandwidth(const BandwidthSetup &setup, Scheme scheme,
                     unsigned transfer_bytes, const sim::MemTrace &trace)
{
    SystemConfig cfg = configFor(setup, scheme);
    cfg.replayMode = true;
    System system(cfg);
    Tick end = system.replay(trace);
    return summarizeRun(system, end, transfer_bytes);
}

double
measureLockedSequence(const BandwidthSetup &setup, Scheme scheme,
                      unsigned n_dwords, bool lock_miss)
{
    csb_assert(scheme != Scheme::Csb,
               "use measureCsbSequence for the CSB");
    System system(configFor(setup, scheme));

    constexpr Addr lock_addr = 0x4000;
    if (!lock_miss)
        system.caches().touch(lock_addr);

    Addr io_base = scheme == Scheme::NoCombine ? System::ioUncachedBase
                                               : System::ioAccelBase;
    isa::Program program =
        makeLockedStoreKernel(lock_addr, io_base, n_dwords);
    system.run(program);

    Tick t0 = system.core().markTime(0);
    Tick t1 = system.core().markTime(1);
    csb_assert(t0 != maxTick && t1 != maxTick, "marks missing");
    return static_cast<double>(t1 - t0);
}

double
measureCsbSequence(const BandwidthSetup &setup, unsigned n_dwords)
{
    System system(configFor(setup, Scheme::Csb));
    isa::Program program =
        makeCsbSequenceKernel(System::ioCsbBase, n_dwords);
    system.run(program);

    Tick t0 = system.core().markTime(0);
    Tick t1 = system.core().markTime(1);
    csb_assert(t0 != maxTick && t1 != maxTick, "marks missing");
    return static_cast<double>(t1 - t0);
}

LatencySweep
runLatencySweep(SweepRunner &runner, const std::string &title,
                const BandwidthSetup &setup, bool lock_miss)
{
    LatencySweep sweep;
    sweep.title = title;
    sweep.dwords = {2, 3, 4, 5, 6, 7, 8};
    sweep.schemes = schemesForLine(setup.lineBytes);

    std::vector<double> flat = runner.mapIndex(
        sweep.schemes.size() * sweep.dwords.size(),
        [&](std::size_t point) {
            Scheme scheme = sweep.schemes[point / sweep.dwords.size()];
            unsigned n = sweep.dwords[point % sweep.dwords.size()];
            return scheme == Scheme::Csb
                       ? measureCsbSequence(setup, n)
                       : measureLockedSequence(setup, scheme, n,
                                               lock_miss);
        });

    for (std::size_t i = 0; i < sweep.schemes.size(); ++i) {
        sweep.cycles.emplace_back(
            flat.begin() + i * sweep.dwords.size(),
            flat.begin() + (i + 1) * sweep.dwords.size());
    }
    return sweep;
}

LatencySweep
runLatencySweep(const std::string &title, const BandwidthSetup &setup,
                bool lock_miss)
{
    SweepRunner serial(1);
    return runLatencySweep(serial, title, setup, lock_miss);
}

void
printLatencySweep(const LatencySweep &sweep, std::ostream &os)
{
    os << "=== " << sweep.title << " ===\n";
    os << std::left << std::setw(10) << "bytes";
    for (Scheme scheme : sweep.schemes) {
        std::string name = scheme == Scheme::Csb
                               ? schemeName(scheme)
                               : "lock+" + schemeName(scheme);
        os << std::right << std::setw(14) << name;
    }
    os << "\n";
    for (std::size_t j = 0; j < sweep.dwords.size(); ++j) {
        os << std::left << std::setw(10) << sweep.dwords[j] * 8;
        for (std::size_t i = 0; i < sweep.schemes.size(); ++i) {
            os << std::right << std::setw(14) << std::fixed
               << std::setprecision(0) << sweep.cycles[i][j];
        }
        os << "\n";
    }
    os << "(CPU cycles per atomic access sequence)\n\n";
}

// --------------------------------------------------------------------
// Section 5 extension: PIO vs DMA

namespace {

/** Build the PIO send kernel (lock-protected, non-CSB). */
isa::Program
makePioLockedSend(Addr lock_addr, Addr pio_base, Addr doorbell,
                  unsigned bytes)
{
    using isa::ir;
    isa::Program p;
    for (int r = 2; r <= 8; ++r)
        p.li(ir(r), 0x2222222222222222ULL * static_cast<unsigned>(r));
    p.li(ir(1), static_cast<std::int64_t>(pio_base));
    p.li(ir(10), static_cast<std::int64_t>(lock_addr));
    p.li(ir(11), 1);
    p.mark(0);
    isa::Label spin = p.newLabel();
    p.bind(spin);
    p.swap(ir(11), ir(10), 0);
    p.bne(ir(11), ir(0), spin);
    p.membar();
    for (unsigned off = 0; off < bytes; off += 8)
        p.std_(ir(2 + (off / 8) % 7), ir(1), off);
    p.membar();
    p.li(ir(13), static_cast<std::int64_t>(bytes));
    p.li(ir(14), static_cast<std::int64_t>(doorbell));
    p.std_(ir(13), ir(14), 0);
    p.membar();
    p.li(ir(12), 0);
    p.std_(ir(12), ir(10), 0);
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

/** Build the PIO send kernel through the CSB (lock-free). */
isa::Program
makePioCsbSend(Addr pio_base, Addr doorbell, unsigned bytes,
               unsigned line_bytes)
{
    using isa::ir;
    isa::Program p;
    for (int r = 2; r <= 8; ++r)
        p.li(ir(r), 0x3333333333333333ULL * static_cast<unsigned>(r));
    p.li(ir(1), static_cast<std::int64_t>(pio_base));
    p.mark(0);
    for (unsigned group = 0; group * line_bytes < bytes; ++group) {
        unsigned group_base = group * line_bytes;
        unsigned group_bytes = std::min(line_bytes, bytes - group_base);
        auto dwords = static_cast<std::int64_t>(group_bytes / 8);
        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), dwords);
        for (unsigned off = 0; off < group_bytes; off += 8)
            p.std_(ir(2 + ((group_base + off) / 8) % 7), ir(1),
                   group_base + off);
        p.swap(ir(9), ir(1), group_base);
        p.li(ir(12), dwords);
        p.bne(ir(9), ir(12), retry);
    }
    p.membar(); // drain the flushed lines before ringing the doorbell
    p.li(ir(13), static_cast<std::int64_t>(bytes));
    p.li(ir(14), static_cast<std::int64_t>(doorbell));
    p.std_(ir(13), ir(14), 0);
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

/** Build the DMA send kernel: one descriptor push. */
isa::Program
makeDmaSend(Addr desc_reg, Addr payload_addr, unsigned bytes)
{
    using isa::ir;
    isa::Program p;
    p.li(ir(14), static_cast<std::int64_t>(desc_reg));
    p.mark(0);
    p.li(ir(2), static_cast<std::int64_t>(io::packDescriptor(
                    payload_addr, static_cast<std::uint16_t>(bytes))));
    p.std_(ir(2), ir(14), 0);
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

double
sendLatency(System &system, const isa::Program &program)
{
    system.run(program);
    Tick t0 = system.core().markTime(0);
    csb_assert(t0 != maxTick, "mark 0 missing");
    const auto &delivered = system.ni()->delivered();
    csb_assert(!delivered.empty(), "no message was delivered");
    return static_cast<double>(delivered.back().sendTick - t0);
}

} // namespace

MessageLatency
measureMessageLatency(const BandwidthSetup &setup, unsigned payload_bytes)
{
    MessageLatency result;
    result.bytes = payload_bytes;
    constexpr Addr lock_addr = 0x4000;

    Addr pio = System::niBase + io::NiMap::pioBase;
    Addr bell = System::niBase + io::NiMap::doorbell;
    Addr desc = System::niBase + io::NiMap::descBase;

    // PIO under a lock: conventional uncached stores (the baseline
    // the paper's cited NI designs use).
    {
        SystemConfig cfg = configFor(setup, Scheme::NoCombine);
        cfg.enableNi = true;
        cfg.normalize();
        System system(cfg);
        system.caches().touch(lock_addr);
        result.pioLockedCycles = sendLatency(
            system,
            makePioLockedSend(lock_addr, pio, bell, payload_bytes));
    }

    // PIO through the CSB, lock-free.
    {
        SystemConfig cfg = configFor(setup, Scheme::Csb);
        cfg.enableNi = true;
        cfg.normalize();
        System system(cfg);
        result.pioCsbCycles = sendLatency(
            system,
            makePioCsbSend(pio, bell, payload_bytes, setup.lineBytes));
    }

    // DMA: one descriptor store; the NI fetches the payload itself.
    {
        SystemConfig cfg = configFor(setup, Scheme::NoCombine);
        cfg.enableNi = true;
        cfg.normalize();
        System system(cfg);
        constexpr Addr payload_addr = 0x10000;
        std::vector<std::uint8_t> payload(payload_bytes, 0xab);
        system.memory().write(payload_addr, payload.data(),
                              payload.size());
        result.dmaCycles = sendLatency(
            system, makeDmaSend(desc, payload_addr, payload_bytes));
    }

    return result;
}

} // namespace csb::core
