#include "system.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "sim/checkpoint.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace csb::core {

void
SystemConfig::normalize()
{
    l1.lineBytes = lineBytes;
    l2.lineBytes = lineBytes;
    csb.lineBytes = lineBytes;
    bus.maxBurstBytes = std::max(lineBytes, bus.widthBytes);

    if (numCores == 0)
        csb_fatal("a system needs at least one core");
    bus.validate();
    core.validate();
    ubuf.validate();
    if (enableCsb)
        csb.validate();
    l1.validate();
    l2.validate();
    coherence.validate();
    cpu.validate();
    if (ubuf.combineBytes > lineBytes) {
        csb_fatal("uncached buffer combine block (", ubuf.combineBytes,
                  ") exceeds the cache line (", lineBytes, ")");
    }
}

System::System(SystemConfig config)
    : sim::stats::StatGroup("system"), config_(std::move(config))
{
    config_.normalize();

    if (config_.faults.enabled()) {
        injector_ = std::make_unique<sim::FaultInjector>(config_.faults,
                                                         "faults", this);
    }
    if (config_.watchdogTicks != 0)
        sim_.setWatchdog(config_.watchdogTicks);

    bus_ = std::make_unique<bus::SystemBus>(sim_, config_.bus, "bus", this);
    if (injector_)
        bus_->setFaultInjector(injector_.get());

    // One stateless policy instance serves every hierarchy.
    cohPolicy_ = mem::makeCoherencePolicy(config_.coherence.kind);

    mainMemory_ = std::make_unique<mem::MainMemory>(
        physMem_, config_.memReadLatency, "mem", this);
    bus_->addTarget(ramBase, ramSize, mainMemory_.get());

    device_ = std::make_unique<io::BurstDevice>(
        config_.deviceReadLatency, config_.deviceMaxAccept, "dev", this);
    if (injector_)
        device_->setFaultInjector(injector_.get());
    bus_->addTarget(ioUncachedBase,
                    (ioCsbBase + ioRegionSize) - ioUncachedBase,
                    device_.get());

    if (config_.enableNi) {
        ni_ = std::make_unique<io::NetworkInterface>(
            sim_, *bus_, niBase, config_.ni, "ni", this);
        bus_->addTarget(niBase, io::NiMap::windowSize, ni_.get());
        if (injector_)
            ni_->setFaultInjector(injector_.get());
    }

    // Page attributes (section 3.1: encoded in page table entries).
    pageTable_.setAttr(ioUncachedBase, ioRegionSize, mem::PageAttr::Uncached);
    pageTable_.setAttr(ioAccelBase, ioRegionSize,
                       mem::PageAttr::UncachedAccelerated);
    pageTable_.setAttr(ioCsbBase, ioRegionSize,
                       config_.enableCsb ? mem::PageAttr::UncachedCombining
                                         : mem::PageAttr::UncachedAccelerated);
    if (config_.enableNi) {
        mem::PageAttr burst_attr = config_.enableCsb
                                       ? mem::PageAttr::UncachedCombining
                                       : mem::PageAttr::UncachedAccelerated;
        pageTable_.setAttr(niBase + io::NiMap::descBase, io::NiMap::descSize,
                           burst_attr);
        pageTable_.setAttr(niBase + io::NiMap::doorbell,
                           mem::PageTable::pageSize,
                           mem::PageAttr::Uncached);
        pageTable_.setAttr(niBase + io::NiMap::pioBase, io::NiMap::pioSize,
                           burst_attr);
    }

    cores_.resize(config_.numCores);
    for (unsigned cpu = 0; cpu < config_.numCores; ++cpu)
        buildCoreSlice(cpu);
}

void
System::buildCoreSlice(unsigned cpu)
{
    CoreSlice &slice = cores_[cpu];
    std::string suffix =
        config_.numCores > 1 ? std::to_string(cpu) : std::string{};

    slice.tlb = std::make_unique<mem::Tlb>(pageTable_, config_.tlbEntries,
                                           config_.tlbMissPenalty,
                                           "tlb" + suffix, this);

    slice.caches = std::make_unique<mem::CacheHierarchy>(
        config_.l1, config_.l2, config_.fixedMissLatency,
        "caches" + suffix, this);
    slice.caches->deferredCall = [this](Tick when,
                                        std::function<void()> fn) {
        sim_.eventQueue().scheduleFunc(when, std::move(fn));
    };

    if (cohPolicy_) {
        mem::CacheHierarchy *caches = slice.caches.get();
        caches->setCoherence(
            cohPolicy_.get(), config_.coherence,
            [this, caches](Addr line_addr, bus::SnoopKind kind) {
                return bus_->snoopBroadcast(caches, line_addr, kind);
            });
        bus_->registerSnooper(caches);
    }

    if (config_.routeMissesOverBus) {
        slice.missMaster =
            bus_->registerMaster("cachemiss" + suffix + ".port");
        MasterId miss_master = slice.missMaster;
        bus::RetryPolicy miss_retry; // defaults; NACKs only under faults
        slice.caches->setLineFetch(
            [this, miss_master, miss_retry](Addr line_addr,
                                            std::function<void(Tick)> done) {
                // Retry until the miss port is free (overlapping
                // misses serialize, as with a single MSHR); a NACKed
                // fetch reissues after backoff.
                auto attempt =
                    std::make_shared<std::function<void(unsigned)>>();
                *attempt = [this, miss_master, line_addr, miss_retry,
                            done = std::move(done),
                            attempt](unsigned try_no) {
                    bool ok = bus_->requestRead(
                        miss_master, line_addr, config_.lineBytes,
                        /*strongly_ordered=*/false,
                        [this, done, attempt, try_no, miss_retry,
                         line_addr](Tick when, bus::BusStatus status,
                                    const std::vector<std::uint8_t> &) {
                            if (status == bus::BusStatus::Ok) {
                                done(when);
                                // Break the attempt->attempt cycle.
                                *attempt = {};
                                return;
                            }
                            if (status == bus::BusStatus::Error) {
                                csb_fatal("bus error on cache line "
                                          "fetch at 0x", std::hex,
                                          line_addr);
                            }
                            if (try_no + 1 >= miss_retry.maxAttempts) {
                                csb_fatal("cache line fetch retries "
                                          "exhausted at 0x", std::hex,
                                          line_addr);
                            }
                            sim_.eventQueue().scheduleFunc(
                                when + miss_retry.backoffFor(try_no + 1),
                                [attempt, try_no] {
                                    (*attempt)(try_no + 1);
                                });
                        });
                    if (!ok) {
                        sim_.eventQueue().scheduleFunc(
                            sim_.curTick() + 1,
                            [attempt, try_no] { (*attempt)(try_no); });
                    }
                };
                (*attempt)(0);
            });
        slice.caches->setLineWriteback([this, miss_master,
                                        miss_retry](Addr line_addr) {
            auto attempt =
                std::make_shared<std::function<void(unsigned)>>();
            *attempt = [this, miss_master, line_addr, miss_retry,
                        attempt](unsigned try_no) {
                // Capture the payload fresh on EVERY attempt, not once
                // at eviction: stores may commit to the image while the
                // spill waits for the port or retries after a NACK, and
                // a stale capture would clobber them at completion.
                // The payload is flagged as a snapshot so the memory
                // counts it without re-applying it (see
                // BusTransaction::snapshotPayload).
                std::vector<std::uint8_t> data(config_.lineBytes);
                physMem_.read(line_addr, data.data(), data.size());
                bool ok = bus_->requestWrite(
                    miss_master, line_addr, std::move(data),
                    /*strongly_ordered=*/false,
                    /*on_complete=*/
                    [this, attempt, try_no, miss_retry,
                     line_addr](Tick when, bus::BusStatus status) {
                        if (status == bus::BusStatus::Ok) {
                            *attempt = {};
                            return;
                        }
                        if (status == bus::BusStatus::Error) {
                            csb_fatal("bus error on cache writeback "
                                      "at 0x", std::hex, line_addr);
                        }
                        if (try_no + 1 >= miss_retry.maxAttempts) {
                            csb_fatal("cache writeback retries "
                                      "exhausted at 0x", std::hex,
                                      line_addr);
                        }
                        sim_.eventQueue().scheduleFunc(
                            when + miss_retry.backoffFor(try_no + 1),
                            [attempt, try_no] {
                                (*attempt)(try_no + 1);
                            });
                    },
                    /*on_start=*/{}, /*snapshot_payload=*/true);
                if (!ok) {
                    sim_.eventQueue().scheduleFunc(
                        sim_.curTick() + 1,
                        [attempt, try_no] { (*attempt)(try_no); });
                }
            };
            (*attempt)(0);
        });
    }

    slice.ubuf = std::make_unique<mem::UncachedBuffer>(
        sim_, *bus_, config_.ubuf, "ubuf" + suffix, this);

    if (config_.enableCsb) {
        slice.csb = std::make_unique<mem::ConditionalStoreBuffer>(
            sim_, *bus_, config_.csb, "csb" + suffix, this);
        if (injector_)
            slice.csb->setFaultInjector(injector_.get());
    }

    // In replay mode the slice has no core at all: a ReplayCore is
    // attached by replay() once the trace is known.  Constructing a
    // cpu::Core here would defeat the quiescent-system fast-forward
    // (the core never gates its clock).
    if (config_.replayMode)
        return;

    cpu::CoreMemPorts ports;
    ports.tlb = slice.tlb.get();
    ports.caches = slice.caches.get();
    ports.ubuf = slice.ubuf.get();
    ports.csb = slice.csb.get();
    ports.memory = &physMem_;
    slice.core = std::make_unique<cpu::Core>(sim_, config_.core, ports,
                                             "cpu" + suffix, this);
    // Interpreter mode only concerns the functional engines; a System
    // reacts to CoreFastForward alone.
    if (config_.cpu.translate == cpu::TranslateMode::CoreFastForward)
        slice.core->enableFastForward(config_.cpu);
}

System::~System()
{
    // Machine-readable stats export: when CSBSIM_STATS_JSON names a
    // file, serialize the full stats tree there at teardown.  Each
    // System overwrites the file, so a process that builds several
    // systems (the bench sweeps) leaves the last configuration's
    // tree -- exactly one valid JSON document either way.  Concurrent
    // sweep workers tear Systems down in parallel; the mutex keeps
    // each rewrite atomic (some System's complete tree wins).
    if (const char *path = std::getenv("CSBSIM_STATS_JSON")) {
        static std::mutex export_mutex;
        std::lock_guard<std::mutex> lock(export_mutex);
        std::ofstream os(path);
        if (os)
            dumpStatsJson(os);
    }
}

bool
System::quiescent() const
{
    for (const CoreSlice &slice : cores_) {
        if (!slice.ubuf->empty())
            return false;
        if (slice.csb && !slice.csb->drained())
            return false;
    }
    if (!bus_->quiescent())
        return false;
    if (ni_ && !ni_->idle())
        return false;
    return true;
}

Tick
System::run(const isa::Program &program, ProcId pid, Tick max_ticks)
{
    csb_assert(!config_.replayMode,
               "a replay-mode system executes traces via replay(), "
               "not programs via run()");
    cores_.at(0).core->loadProgram(&program, pid);
    Tick end = sim_.run(
        [this] {
            for (const CoreSlice &slice : cores_) {
                if (!slice.core->halted())
                    return false;
            }
            return quiescent();
        },
        max_ticks);
    if (!cores_.at(0).core->halted()) {
        csb_fatal("program did not halt within ", max_ticks,
                  " ticks (deadlock or runaway loop?)");
    }
    return end;
}

void
System::attachTraceRecorder(sim::TraceRecorder *recorder)
{
    csb_assert(!config_.replayMode,
               "recording from a replay would re-capture the input");
    for (unsigned cpu = 0; cpu < cores_.size(); ++cpu) {
        cores_[cpu].core->setTraceRecorder(
            recorder, static_cast<std::uint8_t>(cpu));
    }
}

Tick
System::replay(const sim::MemTrace &trace, Tick max_ticks)
{
    csb_assert(config_.replayMode,
               "replay() needs a system built with replayMode set");
    if (trace.numCpus() != cores_.size())
        csb_fatal("trace was recorded on ", trace.numCpus(),
                  " cores, this system has ", cores_.size());
    if (trace.lineBytes() != config_.lineBytes)
        csb_fatal("trace was recorded with ", trace.lineBytes(),
                  "-byte lines, this system uses ", config_.lineBytes);

    for (unsigned cpu = 0; cpu < cores_.size(); ++cpu) {
        CoreSlice &slice = cores_[cpu];
        std::string suffix =
            cores_.size() > 1 ? std::to_string(cpu) : std::string{};
        cpu::CoreMemPorts ports;
        ports.tlb = slice.tlb.get();
        ports.caches = slice.caches.get();
        ports.ubuf = slice.ubuf.get();
        ports.csb = slice.csb.get();
        ports.memory = &physMem_;
        slice.replay = std::make_unique<ReplayCore>(
            sim_, ports, trace.recordsForCpu(static_cast<std::uint8_t>(cpu)),
            "replay" + suffix);
    }

    // Replay only sees memory records, so there is no per-retire
    // progress heartbeat to feed a watchdog; disarm it and let the
    // simulator fast-forward the gated spans between records.
    sim_.setWatchdog(0);
    sim_.setIdleFastForward(true);

    Tick end = sim_.run(
        [this] {
            for (const CoreSlice &slice : cores_) {
                if (!slice.replay->done())
                    return false;
            }
            return quiescent();
        },
        max_ticks);
    for (const CoreSlice &slice : cores_) {
        if (!slice.replay->done()) {
            csb_fatal("replay did not finish within ", max_ticks,
                      " ticks");
        }
    }
    return end;
}

void
System::dumpMemStatsJson(std::ostream &os, int indent) const
{
    sim::JsonWriter jw(os, indent);
    jw.beginObject();
    jw.key("bus");
    bus_->dumpJson(jw);
    jw.key("mem");
    mainMemory_->dumpJson(jw);
    jw.key("dev");
    device_->dumpJson(jw);
    if (ni_) {
        jw.key("ni");
        ni_->dumpJson(jw);
    }
    if (injector_) {
        jw.key("faults");
        injector_->dumpJson(jw);
    }
    for (unsigned cpu = 0; cpu < cores_.size(); ++cpu) {
        const CoreSlice &slice = cores_[cpu];
        std::string suffix =
            cores_.size() > 1 ? std::to_string(cpu) : std::string{};
        jw.key("caches" + suffix);
        slice.caches->dumpJson(jw);
        jw.key("ubuf" + suffix);
        slice.ubuf->dumpJson(jw);
        if (slice.csb) {
            jw.key("csb" + suffix);
            slice.csb->dumpJson(jw);
        }
    }
    jw.endObject();
    os << "\n";
}

namespace {

/** Scalar knobs a checkpoint is only valid across when identical. */
std::vector<std::pair<const char *, std::uint64_t>>
configFingerprint(const SystemConfig &c)
{
    return {
        {"lineBytes", c.lineBytes},
        {"numCores", c.numCores},
        {"enableCsb", c.enableCsb ? 1u : 0u},
        {"enableNi", c.enableNi ? 1u : 0u},
        {"routeMissesOverBus", c.routeMissesOverBus ? 1u : 0u},
        {"busKind", static_cast<std::uint64_t>(c.bus.kind)},
        {"busWidthBytes", c.bus.widthBytes},
        {"busRatio", c.bus.ratio},
        {"busTurnaround", c.bus.turnaround},
        {"busAckDelay", c.bus.ackDelay},
        {"busErrorResponses", c.bus.errorResponses ? 1u : 0u},
        {"ubufEntries", c.ubuf.entries},
        {"ubufCombineBytes", c.ubuf.combineBytes},
        {"ubufPolicy", static_cast<std::uint64_t>(c.ubuf.policy)},
        {"csbLineBuffers", c.enableCsb ? c.csb.numLineBuffers : 0},
        {"csbCheckAddress", c.enableCsb && c.csb.checkAddress ? 1u : 0u},
        {"csbPartialFlush", c.enableCsb && c.csb.partialFlush ? 1u : 0u},
        {"l1SizeBytes", c.l1.sizeBytes},
        {"l1Assoc", c.l1.assoc},
        {"l2SizeBytes", c.l2.sizeBytes},
        {"l2Assoc", c.l2.assoc},
        {"fixedMissLatency", c.fixedMissLatency},
        {"memReadLatency", c.memReadLatency},
        {"tlbEntries", c.tlbEntries},
        {"tlbMissPenalty", c.tlbMissPenalty},
        {"deviceMaxAccept", c.deviceMaxAccept},
        {"faultsEnabled", c.faults.enabled() ? 1u : 0u},
        {"faultSchedule", c.faults.schedule.empty()
                              ? 0u
                              : c.faults.scheduleFingerprint()},
        {"csbDegradedFallback",
         c.enableCsb && c.csb.degradedFallback ? 1u : 0u},
        {"niLinkReset", c.enableNi && c.ni.linkReset ? 1u : 0u},
        {"coherenceKind", static_cast<std::uint64_t>(c.coherence.kind)},
        {"cohUpgradeLatency", c.coherence.upgradeLatency},
        {"cohCacheToCacheLatency", c.coherence.cacheToCacheLatency},
        {"cpuTranslate", static_cast<std::uint64_t>(c.cpu.translate)},
    };
}

} // namespace

void
System::saveCheckpoint(sim::CheckpointWriter &cw) const
{
    csb_assert(!config_.replayMode,
               "checkpointing a replay-mode system is not supported");
    csb_assert(quiescent(), "checkpoint requires a quiescent system "
                            "(buffers, bus and devices drained)");
    for (const CoreSlice &slice : cores_) {
        csb_assert(slice.core->halted(),
                   "checkpoint requires every core halted");
    }

    cw.beginSection("config");
    auto fingerprint = configFingerprint(config_);
    cw.putU64(fingerprint.size());
    for (const auto &[key, value] : fingerprint) {
        cw.putStr(key);
        cw.putU64(value);
    }

    cw.beginSection("sim");
    cw.putU64(sim_.curTick());

    cw.beginSection("memory");
    physMem_.checkpointSave(cw);

    for (unsigned cpu = 0; cpu < cores_.size(); ++cpu) {
        const CoreSlice &slice = cores_[cpu];
        std::string suffix =
            cores_.size() > 1 ? std::to_string(cpu) : std::string{};
        cw.beginSection("cpu" + suffix);
        slice.core->checkpointSave(cw);
        cw.beginSection("tlb" + suffix);
        slice.tlb->checkpointSave(cw);
        cw.beginSection("caches" + suffix);
        slice.caches->checkpointSave(cw);
        if (slice.csb) {
            cw.beginSection("csb" + suffix);
            slice.csb->checkpointSave(cw);
        }
        // The uncached buffer is empty at any quiescent boundary
        // (quiescent() requires it); it has no section.
    }

    cw.beginSection("bus");
    bus_->checkpointSave(cw);

    cw.beginSection("dev");
    device_->checkpointSave(cw);

    if (ni_) {
        cw.beginSection("ni");
        ni_->checkpointSave(cw);
    }

    if (injector_) {
        cw.beginSection("faults");
        injector_->checkpointSave(cw);
    }

    cw.beginSection("stats");
    checkpointSaveStats(cw);
}

void
System::saveCheckpointFile(const std::string &path) const
{
    sim::CheckpointWriter cw;
    saveCheckpoint(cw);
    cw.writeFile(path);
}

void
System::restoreCheckpoint(sim::CheckpointReader &cr)
{
    csb_assert(!config_.replayMode,
               "restoring into a replay-mode system is not supported");
    csb_assert(sim_.curTick() == 0,
               "checkpoint restore needs a freshly built system");

    cr.openSection("config");
    auto fingerprint = configFingerprint(config_);
    const std::uint64_t knobs = cr.getU64();
    if (knobs != fingerprint.size())
        csb_fatal("checkpoint config has ", knobs, " knobs, expected ",
                  fingerprint.size(), " -- incompatible writer");
    for (const auto &[key, value] : fingerprint) {
        std::string saved_key = cr.getStr();
        std::uint64_t saved_value = cr.getU64();
        if (saved_key != key)
            csb_fatal("checkpoint config knob '", saved_key,
                      "' where '", key, "' was expected");
        if (saved_value != value)
            csb_fatal("checkpoint was taken with ", key, "=", saved_value,
                      ", this system has ", key, "=", value);
    }
    cr.closeSection();

    cr.openSection("sim");
    Tick when = cr.getU64();
    cr.closeSection();
    sim_.restoreTick(when);

    cr.openSection("memory");
    physMem_.checkpointRestore(cr);
    cr.closeSection();

    for (unsigned cpu = 0; cpu < cores_.size(); ++cpu) {
        CoreSlice &slice = cores_[cpu];
        std::string suffix =
            cores_.size() > 1 ? std::to_string(cpu) : std::string{};
        cr.openSection("cpu" + suffix);
        slice.core->checkpointRestore(cr);
        cr.closeSection();
        cr.openSection("tlb" + suffix);
        slice.tlb->checkpointRestore(cr);
        cr.closeSection();
        cr.openSection("caches" + suffix);
        slice.caches->checkpointRestore(cr);
        cr.closeSection();
        if (slice.csb) {
            cr.openSection("csb" + suffix);
            slice.csb->checkpointRestore(cr);
            cr.closeSection();
        }
    }

    cr.openSection("bus");
    bus_->checkpointRestore(cr);
    cr.closeSection();

    cr.openSection("dev");
    device_->checkpointRestore(cr);
    cr.closeSection();

    if (ni_) {
        cr.openSection("ni");
        ni_->checkpointRestore(cr);
        cr.closeSection();
    }

    if (injector_) {
        cr.openSection("faults");
        injector_->checkpointRestore(cr);
        cr.closeSection();
    }

    cr.openSection("stats");
    checkpointRestoreStats(cr);
    cr.closeSection();
}

void
System::restoreCheckpointFile(const std::string &path)
{
    sim::CheckpointReader cr = sim::CheckpointReader::loadFile(path);
    restoreCheckpoint(cr);
}

std::uint64_t
System::ioWriteBusCycles() const
{
    auto is_io_write = [](const bus::TxnRecord &rec) {
        return rec.kind == bus::TxnKind::Write && rec.addr >= ioUncachedBase;
    };
    const bus::BusMonitor &mon = bus_->monitor();
    if (mon.count(is_io_write) == 0)
        return 0;
    return mon.lastDataCycle(is_io_write) - mon.firstAddrCycle(is_io_write) +
           1;
}

std::size_t
System::ioWriteTxns() const
{
    return bus_->monitor().count([](const bus::TxnRecord &rec) {
        return rec.kind == bus::TxnKind::Write && rec.addr >= ioUncachedBase;
    });
}

} // namespace csb::core
