#include "system.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "sim/logging.hh"

namespace csb::core {

void
SystemConfig::normalize()
{
    l1.lineBytes = lineBytes;
    l2.lineBytes = lineBytes;
    csb.lineBytes = lineBytes;
    bus.maxBurstBytes = std::max(lineBytes, bus.widthBytes);

    if (numCores == 0)
        csb_fatal("a system needs at least one core");
    bus.validate();
    core.validate();
    ubuf.validate();
    if (enableCsb)
        csb.validate();
    l1.validate();
    l2.validate();
    if (ubuf.combineBytes > lineBytes) {
        csb_fatal("uncached buffer combine block (", ubuf.combineBytes,
                  ") exceeds the cache line (", lineBytes, ")");
    }
}

System::System(SystemConfig config)
    : sim::stats::StatGroup("system"), config_(std::move(config))
{
    config_.normalize();

    if (config_.faults.enabled()) {
        injector_ = std::make_unique<sim::FaultInjector>(config_.faults,
                                                         "faults", this);
    }
    if (config_.watchdogTicks != 0)
        sim_.setWatchdog(config_.watchdogTicks);

    bus_ = std::make_unique<bus::SystemBus>(sim_, config_.bus, "bus", this);
    if (injector_)
        bus_->setFaultInjector(injector_.get());

    mainMemory_ = std::make_unique<mem::MainMemory>(
        physMem_, config_.memReadLatency, "mem", this);
    bus_->addTarget(ramBase, ramSize, mainMemory_.get());

    device_ = std::make_unique<io::BurstDevice>(
        config_.deviceReadLatency, config_.deviceMaxAccept, "dev", this);
    bus_->addTarget(ioUncachedBase,
                    (ioCsbBase + ioRegionSize) - ioUncachedBase,
                    device_.get());

    if (config_.enableNi) {
        ni_ = std::make_unique<io::NetworkInterface>(
            sim_, *bus_, niBase, config_.ni, "ni", this);
        bus_->addTarget(niBase, io::NiMap::windowSize, ni_.get());
        if (injector_)
            ni_->setFaultInjector(injector_.get());
    }

    // Page attributes (section 3.1: encoded in page table entries).
    pageTable_.setAttr(ioUncachedBase, ioRegionSize, mem::PageAttr::Uncached);
    pageTable_.setAttr(ioAccelBase, ioRegionSize,
                       mem::PageAttr::UncachedAccelerated);
    pageTable_.setAttr(ioCsbBase, ioRegionSize,
                       config_.enableCsb ? mem::PageAttr::UncachedCombining
                                         : mem::PageAttr::UncachedAccelerated);
    if (config_.enableNi) {
        mem::PageAttr burst_attr = config_.enableCsb
                                       ? mem::PageAttr::UncachedCombining
                                       : mem::PageAttr::UncachedAccelerated;
        pageTable_.setAttr(niBase + io::NiMap::descBase, io::NiMap::descSize,
                           burst_attr);
        pageTable_.setAttr(niBase + io::NiMap::doorbell,
                           mem::PageTable::pageSize,
                           mem::PageAttr::Uncached);
        pageTable_.setAttr(niBase + io::NiMap::pioBase, io::NiMap::pioSize,
                           burst_attr);
    }

    cores_.resize(config_.numCores);
    for (unsigned cpu = 0; cpu < config_.numCores; ++cpu)
        buildCoreSlice(cpu);
}

void
System::buildCoreSlice(unsigned cpu)
{
    CoreSlice &slice = cores_[cpu];
    std::string suffix =
        config_.numCores > 1 ? std::to_string(cpu) : std::string{};

    slice.tlb = std::make_unique<mem::Tlb>(pageTable_, config_.tlbEntries,
                                           config_.tlbMissPenalty,
                                           "tlb" + suffix, this);

    slice.caches = std::make_unique<mem::CacheHierarchy>(
        config_.l1, config_.l2, config_.fixedMissLatency,
        "caches" + suffix, this);
    slice.caches->deferredCall = [this](Tick when,
                                        std::function<void()> fn) {
        sim_.eventQueue().scheduleFunc(when, std::move(fn));
    };

    if (config_.routeMissesOverBus) {
        slice.missMaster =
            bus_->registerMaster("cachemiss" + suffix + ".port");
        MasterId miss_master = slice.missMaster;
        bus::RetryPolicy miss_retry; // defaults; NACKs only under faults
        slice.caches->setLineFetch(
            [this, miss_master, miss_retry](Addr line_addr,
                                            std::function<void(Tick)> done) {
                // Retry until the miss port is free (overlapping
                // misses serialize, as with a single MSHR); a NACKed
                // fetch reissues after backoff.
                auto attempt =
                    std::make_shared<std::function<void(unsigned)>>();
                *attempt = [this, miss_master, line_addr, miss_retry,
                            done = std::move(done),
                            attempt](unsigned try_no) {
                    bool ok = bus_->requestRead(
                        miss_master, line_addr, config_.lineBytes,
                        /*strongly_ordered=*/false,
                        [this, done, attempt, try_no, miss_retry,
                         line_addr](Tick when, bus::BusStatus status,
                                    const std::vector<std::uint8_t> &) {
                            if (status == bus::BusStatus::Ok) {
                                done(when);
                                // Break the attempt->attempt cycle.
                                *attempt = {};
                                return;
                            }
                            if (status == bus::BusStatus::Error) {
                                csb_fatal("bus error on cache line "
                                          "fetch at 0x", std::hex,
                                          line_addr);
                            }
                            if (try_no + 1 >= miss_retry.maxAttempts) {
                                csb_fatal("cache line fetch retries "
                                          "exhausted at 0x", std::hex,
                                          line_addr);
                            }
                            sim_.eventQueue().scheduleFunc(
                                when + miss_retry.backoffFor(try_no + 1),
                                [attempt, try_no] {
                                    (*attempt)(try_no + 1);
                                });
                        });
                    if (!ok) {
                        sim_.eventQueue().scheduleFunc(
                            sim_.curTick() + 1,
                            [attempt, try_no] { (*attempt)(try_no); });
                    }
                };
                (*attempt)(0);
            });
        slice.caches->setLineWriteback([this, miss_master,
                                        miss_retry](Addr line_addr) {
            std::vector<std::uint8_t> data(config_.lineBytes);
            physMem_.read(line_addr, data.data(), data.size());
            auto attempt =
                std::make_shared<std::function<void(unsigned)>>();
            *attempt = [this, miss_master, line_addr, miss_retry,
                        data = std::move(data), attempt](unsigned try_no) {
                bool ok = bus_->requestWrite(
                    miss_master, line_addr, data,
                    /*strongly_ordered=*/false,
                    /*on_complete=*/
                    [this, attempt, try_no, miss_retry,
                     line_addr](Tick when, bus::BusStatus status) {
                        if (status == bus::BusStatus::Ok) {
                            *attempt = {};
                            return;
                        }
                        if (status == bus::BusStatus::Error) {
                            csb_fatal("bus error on cache writeback "
                                      "at 0x", std::hex, line_addr);
                        }
                        if (try_no + 1 >= miss_retry.maxAttempts) {
                            csb_fatal("cache writeback retries "
                                      "exhausted at 0x", std::hex,
                                      line_addr);
                        }
                        sim_.eventQueue().scheduleFunc(
                            when + miss_retry.backoffFor(try_no + 1),
                            [attempt, try_no] {
                                (*attempt)(try_no + 1);
                            });
                    });
                if (!ok) {
                    sim_.eventQueue().scheduleFunc(
                        sim_.curTick() + 1,
                        [attempt, try_no] { (*attempt)(try_no); });
                }
            };
            (*attempt)(0);
        });
    }

    slice.ubuf = std::make_unique<mem::UncachedBuffer>(
        sim_, *bus_, config_.ubuf, "ubuf" + suffix, this);

    if (config_.enableCsb) {
        slice.csb = std::make_unique<mem::ConditionalStoreBuffer>(
            sim_, *bus_, config_.csb, "csb" + suffix, this);
    }

    cpu::CoreMemPorts ports;
    ports.tlb = slice.tlb.get();
    ports.caches = slice.caches.get();
    ports.ubuf = slice.ubuf.get();
    ports.csb = slice.csb.get();
    ports.memory = &physMem_;
    slice.core = std::make_unique<cpu::Core>(sim_, config_.core, ports,
                                             "cpu" + suffix, this);
}

System::~System()
{
    // Machine-readable stats export: when CSBSIM_STATS_JSON names a
    // file, serialize the full stats tree there at teardown.  Each
    // System overwrites the file, so a process that builds several
    // systems (the bench sweeps) leaves the last configuration's
    // tree -- exactly one valid JSON document either way.  Concurrent
    // sweep workers tear Systems down in parallel; the mutex keeps
    // each rewrite atomic (some System's complete tree wins).
    if (const char *path = std::getenv("CSBSIM_STATS_JSON")) {
        static std::mutex export_mutex;
        std::lock_guard<std::mutex> lock(export_mutex);
        std::ofstream os(path);
        if (os)
            dumpStatsJson(os);
    }
}

bool
System::quiescent() const
{
    for (const CoreSlice &slice : cores_) {
        if (!slice.ubuf->empty())
            return false;
        if (slice.csb && !slice.csb->drained())
            return false;
    }
    if (!bus_->quiescent())
        return false;
    if (ni_ && !ni_->idle())
        return false;
    return true;
}

Tick
System::run(const isa::Program &program, ProcId pid, Tick max_ticks)
{
    cores_.at(0).core->loadProgram(&program, pid);
    Tick end = sim_.run(
        [this] {
            for (const CoreSlice &slice : cores_) {
                if (!slice.core->halted())
                    return false;
            }
            return quiescent();
        },
        max_ticks);
    if (!cores_.at(0).core->halted()) {
        csb_fatal("program did not halt within ", max_ticks,
                  " ticks (deadlock or runaway loop?)");
    }
    return end;
}

std::uint64_t
System::ioWriteBusCycles() const
{
    auto is_io_write = [](const bus::TxnRecord &rec) {
        return rec.kind == bus::TxnKind::Write && rec.addr >= ioUncachedBase;
    };
    const bus::BusMonitor &mon = bus_->monitor();
    if (mon.count(is_io_write) == 0)
        return 0;
    return mon.lastDataCycle(is_io_write) - mon.firstAddrCycle(is_io_write) +
           1;
}

std::size_t
System::ioWriteTxns() const
{
    return bus_->monitor().count([](const bus::TxnRecord &rec) {
        return rec.kind == bus::TxnKind::Write && rec.addr >= ioUncachedBase;
    });
}

} // namespace csb::core
