/**
 * @file
 * Experiment runners regenerating every figure of the paper's
 * evaluation (section 4.3), plus the section 5 PIO-vs-DMA study.
 *
 * Figures 3 and 4 report effective uncached-store bandwidth in bytes
 * per bus cycle (y) against transfer size in bytes (x) for a set of
 * combining schemes; figure 5 reports CPU cycles per atomic I/O
 * access sequence.  The runners build a fresh System per data point
 * so schemes never share warmed state.
 */

#ifndef CSB_CORE_EXPERIMENTS_HH
#define CSB_CORE_EXPERIMENTS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "bus/system_bus.hh"
#include "sim/trace_recorder.hh"
#include "sweep.hh"
#include "system_config.hh"

namespace csb::core {

/** Uncached-store handling scheme (one bar group in figures 3/4). */
enum class Scheme
{
    NoCombine,
    Combine16,
    Combine32,
    Combine64,
    Combine128,
    Csb,
};

/** Short display name, e.g. "comb-32". */
std::string schemeName(Scheme scheme);

/** Combining block size of a scheme; 0 for NoCombine and Csb. */
unsigned schemeCombineBytes(Scheme scheme);

/** NoCombine, every combine size up to @p line_bytes, then Csb. */
std::vector<Scheme> schemesForLine(unsigned line_bytes);

/** Shared setup of one bandwidth panel. */
struct BandwidthSetup
{
    bus::BusParams bus;
    unsigned lineBytes = 64;
};

/** The paper's transfer-size axis: 16 B .. 1 KiB. */
std::vector<unsigned> defaultTransferSizes();

/**
 * Run the store-bandwidth microbenchmark for one (scheme, size)
 * point.  @return useful bytes per bus cycle on the I/O path.
 */
double measureStoreBandwidth(const BandwidthSetup &setup, Scheme scheme,
                             unsigned transfer_bytes);

/** One panel of figure 3 or 4. */
struct BandwidthSweep
{
    std::string title;
    std::vector<unsigned> sizes;
    std::vector<Scheme> schemes;
    /** bandwidth[scheme index][size index], bytes per bus cycle. */
    std::vector<std::vector<double>> bandwidth;
};

/**
 * Run a full scheme x size sweep for one panel.  Every grid point is
 * an independent Simulator run dispatched through @p runner; results
 * land in the matrix by grid index, so the sweep is byte-identical
 * for any job count.
 */
BandwidthSweep runBandwidthSweep(SweepRunner &runner,
                                 const std::string &title,
                                 const BandwidthSetup &setup,
                                 const std::vector<Scheme> &schemes,
                                 const std::vector<unsigned> &sizes);

/** Serial convenience overload (a jobs=1 runner). */
BandwidthSweep runBandwidthSweep(const std::string &title,
                                 const BandwidthSetup &setup,
                                 const std::vector<Scheme> &schemes,
                                 const std::vector<unsigned> &sizes);

/** Print a sweep as the paper-style series table. */
void printSweep(const BandwidthSweep &sweep, std::ostream &os);

// --- Trace capture/replay (docs/TRACE_FORMAT.md) --------------------

/**
 * The exact SystemConfig a bandwidth grid point runs with; exposed so
 * trace replay can rebuild a byte-identical system for the point.
 */
SystemConfig bandwidthConfig(const BandwidthSetup &setup, Scheme scheme);

/**
 * Determinism surface of one bandwidth point.  A live (recorded) run
 * and its trace replay must produce this structure byte for byte --
 * that contract is enforced by tests/core/test_replay and gated by
 * bench/perf_replay on every regeneration.
 */
struct TracedRun
{
    /** Same metric as measureStoreBandwidth(). */
    double bytesPerBusCycle = 0;
    /** Tick at which the system went quiescent. */
    Tick endTick = 0;
    /** Bus cycles spanned by the I/O write transactions. */
    std::uint64_t ioWriteBusCycles = 0;
    /** I/O write transactions seen by the bus monitor. */
    std::uint64_t ioWriteTxns = 0;
    /** Full System::dumpMemStatsJson() document. */
    std::string memStatsJson;
};

/**
 * Run one bandwidth point live, optionally capturing every data
 * reference into @p recorder (null runs without capture, e.g. for
 * timing pure execution).  A non-null recorder must be built for one
 * cpu with the setup's line size.  @p alu_per_store pads the kernel
 * with dependent compute between stores (see makeStoreKernel).
 */
TracedRun recordStoreBandwidth(const BandwidthSetup &setup, Scheme scheme,
                               unsigned transfer_bytes,
                               sim::TraceRecorder *recorder,
                               unsigned alu_per_store = 0);

/**
 * Replay a recorded bandwidth point against a fresh replay-mode
 * system (no core, no decode) and report the identical surface.  The
 * compute padding of the recorded kernel needs no parameter here: it
 * left no records, so replay fast-forwards across it.
 */
TracedRun replayStoreBandwidth(const BandwidthSetup &setup, Scheme scheme,
                               unsigned transfer_bytes,
                               const sim::MemTrace &trace);

// --- Figure 5 -------------------------------------------------------

/**
 * Measure the lock/access/unlock sequence (figure 5) in CPU cycles.
 * @param scheme    uncached-buffer combining scheme for the stores
 * @param n_dwords  stores inside the critical section (2..8)
 * @param lock_miss when true the lock line misses all caches
 */
double measureLockedSequence(const BandwidthSetup &setup, Scheme scheme,
                             unsigned n_dwords, bool lock_miss);

/** Measure the CSB atomic sequence (figure 5) in CPU cycles. */
double measureCsbSequence(const BandwidthSetup &setup, unsigned n_dwords);

/** One panel of figure 5. */
struct LatencySweep
{
    std::string title;
    std::vector<unsigned> dwords;
    std::vector<Scheme> schemes; ///< locking schemes; Csb means the CSB
    std::vector<std::vector<double>> cycles;
};

/** Parallel variant: grid points dispatched through @p runner. */
LatencySweep runLatencySweep(SweepRunner &runner, const std::string &title,
                             const BandwidthSetup &setup, bool lock_miss);

LatencySweep runLatencySweep(const std::string &title,
                             const BandwidthSetup &setup, bool lock_miss);

void printLatencySweep(const LatencySweep &sweep, std::ostream &os);

// --- Section 5 extension: PIO vs DMA crossover ----------------------

/** Result of one message-send latency measurement. */
struct MessageLatency
{
    unsigned bytes = 0;
    double pioLockedCycles = 0;  ///< PIO send under a lock
    double pioCsbCycles = 0;     ///< PIO send through the CSB
    double dmaCycles = 0;        ///< descriptor push + DMA fetch
};

/**
 * Measure send-side message latency (store start to last payload byte
 * handed to the NI wire) for the three mechanisms.
 */
MessageLatency measureMessageLatency(const BandwidthSetup &setup,
                                     unsigned payload_bytes);

} // namespace csb::core

#endif // CSB_CORE_EXPERIMENTS_HH
