/**
 * @file
 * Continuously-running health monitor for fault campaigns.
 *
 * A campaign must distinguish "the system is riding out injected
 * adversity" from "the system is wedged or corrupting data".  The
 * monitor runs as a periodic simulation event alongside the workload
 * and checks two families of invariants (docs/FAULTS.md):
 *
 *  - liveness: while the system is non-quiescent, a signature of
 *    progress counters (instructions retired, bus traffic, retries,
 *    wire deliveries) must change within every livenessWindow ticks;
 *
 *  - safety: no sequence number may ever appear twice in the NI's
 *    delivered log (exactly-once delivery), and the CSB's flush
 *    accounting (attempted == succeeded + failed) must balance.
 *
 * Violations are recorded, never thrown: the campaign runner decides
 * what a violation means for the scorecard.  The monitor is passive --
 * it reads statistics and component state but perturbs nothing, so an
 * armed monitor never changes simulated behaviour or timing of the
 * components themselves (its wake-up events do sit in the event
 * queue, which is invisible to clock-gated components).
 */

#ifndef CSB_CORE_HEALTH_HH
#define CSB_CORE_HEALTH_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace csb::core {

class System;

/** Health-monitor cadence and thresholds. */
struct HealthParams
{
    /** Ticks between checks. */
    Tick period = 4096;
    /**
     * Maximum ticks the progress signature may stay frozen while the
     * system is non-quiescent before a liveness violation is recorded.
     * Must comfortably exceed the longest legitimate quiet stretch
     * (maximum retry backoff, link-reset latency, hang windows).
     */
    Tick livenessWindow = 500'000;

    void validate() const;
};

/** One recorded invariant violation. */
struct HealthViolation
{
    Tick tick = 0;
    /** "liveness-stall" | "duplicate-delivery" | "flush-accounting" */
    std::string kind;
    std::string detail;
};

/**
 * The monitor itself.  Construct against a live System, then arm().
 * The monitor re-arms itself every period until disarm() -- its
 * pending wake-up never blocks System::run (termination is
 * predicate-based) or saveCheckpoint (only the restore side demands
 * an empty event queue, and restores target a fresh system).
 *
 * Lifetime: the monitor must outlive any further simulation of the
 * System it is armed on (its wake-ups capture `this`); destroying the
 * System first is always safe because the event queue dies with it.
 */
class HealthMonitor
{
  public:
    HealthMonitor(System &system, HealthParams params);

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Schedule the first check one period from now. */
    void arm();

    /** Stop checking; pending wake-ups become no-ops. */
    void disarm();

    const std::vector<HealthViolation> &violations() const
    {
        return violations_;
    }

    std::uint64_t checksRun() const { return checks_; }

  private:
    void check(Tick now);

    /** Monotone counter tuple folded to one word; change = progress. */
    std::uint64_t progressSignature() const;

    System &system_;
    HealthParams params_;
    bool armed_ = false;
    std::uint64_t checks_ = 0;
    std::uint64_t lastSig_ = 0;
    Tick lastProgressTick_ = 0;
    /** Delivered-log entries already scanned for duplicate seqs. */
    std::size_t deliveredScanned_ = 0;
    std::set<std::uint64_t> seqsSeen_;
    std::vector<HealthViolation> violations_;
};

} // namespace csb::core

#endif // CSB_CORE_HEALTH_HH
