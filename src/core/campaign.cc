#include "campaign.hh"

#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

#include "health.hh"
#include "io/network_interface.hh"
#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "system.hh"
#include "workloads.hh"

namespace csb::core {

void
CampaignScenario::validate() const
{
    if (legs < 1)
        csb_fatal("campaign needs at least one leg");
    if (messagesPerLeg < 1)
        csb_fatal("campaign legs need messages");
    if (crashAfterLeg >= static_cast<int>(legs))
        csb_fatal("crash leg ", crashAfterLeg, " out of range (",
                  legs, " legs)");
    if (crashAfterLeg >= 0 && crashAfterTicks < 1)
        csb_fatal("crash needs a positive tick offset");
    if (csbRetryMaxAttempts < 1 || ubufRetryMaxAttempts < 1 ||
        niMaxSendAttempts < 1)
        csb_fatal("retry budgets must be >= 1");
    if (legMaxTicks < 1)
        csb_fatal("leg tick budget must be positive");
    // Parse errors surface here rather than mid-campaign.
    sim::parseFaultSchedule(schedule);
}

namespace {

SystemConfig
configFor(const CampaignScenario &scenario, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.enableNi = true;
    cfg.enableCsb = scenario.useCsb;
    cfg.ubuf.combineBytes = 0; // conventional PIO baseline
    cfg.faults = scenario.baseFaults;
    cfg.faults.seed = seed;
    cfg.faults.schedule = sim::parseFaultSchedule(scenario.schedule);
    cfg.bus.errorResponses = cfg.faults.busFaultsEnabled();
    // Recovery posture: CSB escalates to degraded mode quickly, the
    // NI resets a dead link instead of dying, the ubuf is patient.
    cfg.csb.degradedFallback = true;
    cfg.csb.retry.maxAttempts = scenario.csbRetryMaxAttempts;
    cfg.ubuf.retry.maxAttempts = scenario.ubufRetryMaxAttempts;
    cfg.ni.linkReset = true;
    cfg.ni.maxSendAttempts = scenario.niMaxSendAttempts;
    cfg.normalize();
    return cfg;
}

std::uint64_t
legSeed(std::uint64_t seed, unsigned leg)
{
    return seed * 0x9e3779b97f4a7c15ULL + leg + 1;
}

std::uint64_t
totalInjected(const sim::FaultInjector *inj)
{
    if (!inj)
        return 0;
    std::uint64_t total = 0;
    for (unsigned i = 0;
         i < static_cast<unsigned>(sim::FaultSite::NumSites); ++i)
        total += inj->injectedAt(static_cast<sim::FaultSite>(i));
    return total;
}

} // namespace

CampaignResult
runCampaign(const CampaignScenario &scenario, std::uint64_t seed)
{
    scenario.validate();

    CampaignResult r;
    r.messagesSent = scenario.legs * scenario.messagesPerLeg;

    // Every leg's message sizes are drawn up front so the re-run of a
    // crashed leg issues byte-identical traffic.
    std::vector<std::vector<unsigned>> legSizes;
    legSizes.reserve(scenario.legs);
    for (unsigned leg = 0; leg < scenario.legs; ++leg) {
        legSizes.push_back(drawSizes(
            MessageSizeDistribution::scientific(legSeed(seed, leg)),
            scenario.messagesPerLeg));
    }

    MessageProgramSpec pspec;
    pspec.useCsb = scenario.useCsb;
    pspec.deviceLines = scenario.deviceLines;

    SystemConfig cfg = configFor(scenario, seed);
    pspec.lineBytes = cfg.lineBytes;
    pspec.fenceDoorbell = cfg.faults.busFaultsEnabled();

    HealthParams hp;
    hp.period = scenario.healthPeriod;
    hp.livenessWindow = scenario.livenessWindow;

    auto system = std::make_unique<System>(cfg);
    auto monitor = std::make_unique<HealthMonitor>(*system, hp);
    monitor->arm();

    auto retireMonitor = [&] {
        monitor->disarm();
        r.healthChecks += monitor->checksRun();
        r.healthViolations += monitor->violations().size();
        monitor.reset();
    };

    std::string checkpoint; // latest pre-leg CSBC image
    try {
        for (unsigned leg = 0; leg < scenario.legs; ++leg) {
            {
                sim::CheckpointWriter cw;
                system->saveCheckpoint(cw);
                std::ostringstream os;
                cw.writeTo(os);
                checkpoint = os.str();
            }
            isa::Program p = makeMessageProgram(pspec, legSizes[leg]);
            if (static_cast<int>(leg) == scenario.crashAfterLeg &&
                !r.crashed) {
                // Crash: run partway, then throw the whole System away
                // -- volatile state (including any partial deliveries
                // of this leg) is lost, exactly as on a real machine.
                system->core().loadProgram(&p, /*pid=*/1);
                system->simulator().runFor(scenario.crashAfterTicks);
                r.crashed = true;
                retireMonitor();
                system.reset();

                system = std::make_unique<System>(cfg);
                std::istringstream is(checkpoint);
                sim::CheckpointReader cr =
                    sim::CheckpointReader::readFrom(is);
                system->restoreCheckpoint(cr);
                monitor =
                    std::make_unique<HealthMonitor>(*system, hp);
                monitor->arm();
            }
            system->run(p, /*pid=*/1, scenario.legMaxTicks);
            ++r.legsCompleted;
        }
    } catch (const FatalError &e) {
        r.failure = e.what();
    }

    retireMonitor();

    // Scorecard harvest over the surviving timeline.
    io::NetworkInterface &ni = *system->ni();
    r.delivered = static_cast<unsigned>(ni.delivered().size());
    std::set<std::uint64_t> seqs;
    for (const io::DeliveredMessage &msg : ni.delivered())
        seqs.insert(msg.seq);
    unsigned unique = static_cast<unsigned>(seqs.size());
    r.duplicated = r.delivered - unique;
    r.lost = r.messagesSent > unique ? r.messagesSent - unique : 0;

    r.faultsInjected = totalInjected(system->faults());
    r.busNacks =
        static_cast<std::uint64_t>(system->bus().numNacks.value());
    r.retransmits = static_cast<std::uint64_t>(ni.retransmits.value());
    r.linkResets = static_cast<std::uint64_t>(ni.linkResets.value());
    r.linkDownTicks = ni.linkDownTicks.value();

    double episodes = ni.linkRecoveries.value();
    double outage = ni.linkDownTicks.value();
    r.busRetries = static_cast<std::uint64_t>(
        ni.busRetries.value() +
        system->uncachedBuffer().busRetries.value());
    for (unsigned cpu = 0; cpu < system->numCores(); ++cpu) {
        mem::ConditionalStoreBuffer *csb = system->csb(cpu);
        if (!csb)
            continue;
        r.busRetries +=
            static_cast<std::uint64_t>(csb->busRetries.value());
        r.degradedEntries +=
            static_cast<std::uint64_t>(csb->degradedEntries.value());
        r.repromotions +=
            static_cast<std::uint64_t>(csb->repromotions.value());
        r.degradedTicks += csb->degradedTicks.value();
        episodes += csb->repromotions.value();
        outage += csb->degradedTicks.value();
    }
    r.mttrTicks = episodes > 0 ? outage / episodes : 0;
    r.endTick = system->simulator().curTick();

    r.recovered = r.failure.empty() &&
                  r.legsCompleted == scenario.legs && r.lost == 0 &&
                  r.duplicated == 0 && r.healthViolations == 0;
    return r;
}

CampaignSummary
summarize(const std::vector<CampaignResult> &results)
{
    CampaignSummary s;
    s.runs = static_cast<unsigned>(results.size());
    double mttrSum = 0;
    unsigned mttrRuns = 0;
    double residencySum = 0;
    for (const CampaignResult &r : results) {
        if (r.recovered)
            ++s.recoveredRuns;
        s.totalLost += r.lost;
        s.totalDuplicated += r.duplicated;
        s.totalFaultsInjected += r.faultsInjected;
        s.totalLinkResets += r.linkResets;
        s.totalDegradedEntries += r.degradedEntries;
        s.totalHealthViolations += r.healthViolations;
        if (r.mttrTicks > 0) {
            mttrSum += r.mttrTicks;
            ++mttrRuns;
        }
        if (r.endTick > 0) {
            residencySum += (r.degradedTicks + r.linkDownTicks) /
                            static_cast<double>(r.endTick);
        }
    }
    s.recoveryRate =
        s.runs > 0 ? static_cast<double>(s.recoveredRuns) / s.runs : 0;
    s.meanMttrTicks = mttrRuns > 0 ? mttrSum / mttrRuns : 0;
    s.meanDegradedResidency =
        s.runs > 0 ? residencySum / s.runs : 0;
    return s;
}

void
renderCampaignTable(std::ostream &os, const CampaignScenario &scenario,
                    const std::vector<CampaignResult> &results,
                    const std::vector<std::uint64_t> &seeds)
{
    csb_assert(results.size() == seeds.size(),
               "result/seed count mismatch");
    os << "scenario " << scenario.name << " ("
       << (scenario.useCsb ? "csb" : "locked-pio") << ", "
       << scenario.legs << " legs x " << scenario.messagesPerLeg
       << " msgs";
    if (scenario.deviceLines > 0)
        os << " + " << scenario.deviceLines << " device lines";
    if (scenario.crashAfterLeg >= 0) {
        os << ", crash in leg " << scenario.crashAfterLeg << " @ +"
           << scenario.crashAfterTicks;
    }
    os << ")\n";
    if (!scenario.schedule.empty())
        os << "  schedule: " << scenario.schedule << '\n';
    os << "  " << std::setw(8) << "seed" << std::setw(10) << "recover"
       << std::setw(7) << "legs" << std::setw(7) << "sent"
       << std::setw(7) << "dlvr" << std::setw(6) << "lost"
       << std::setw(6) << "dup" << std::setw(8) << "faults"
       << std::setw(8) << "resets" << std::setw(8) << "degrad"
       << std::setw(10) << "mttr" << std::setw(12) << "endTick"
       << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CampaignResult &r = results[i];
        os << "  " << std::setw(8) << seeds[i] << std::setw(10)
           << (r.recovered ? "yes" : "NO") << std::setw(7)
           << r.legsCompleted << std::setw(7) << r.messagesSent
           << std::setw(7) << r.delivered << std::setw(6) << r.lost
           << std::setw(6) << r.duplicated << std::setw(8)
           << r.faultsInjected << std::setw(8) << r.linkResets
           << std::setw(8) << r.degradedEntries << std::setw(10)
           << std::fixed << std::setprecision(1) << r.mttrTicks
           << std::setw(12) << r.endTick << '\n';
        os.unsetf(std::ios::fixed);
        if (!r.failure.empty())
            os << "    failure: " << r.failure << '\n';
    }
    CampaignSummary s = summarize(results);
    os << "  recovery " << s.recoveredRuns << '/' << s.runs
       << ", lost " << s.totalLost << ", dup " << s.totalDuplicated
       << ", faults " << s.totalFaultsInjected << ", mean MTTR "
       << std::fixed << std::setprecision(1) << s.meanMttrTicks
       << " ticks, degraded residency " << std::setprecision(4)
       << s.meanDegradedResidency << '\n';
    os.unsetf(std::ios::fixed);
}

} // namespace csb::core
