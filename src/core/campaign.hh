/**
 * @file
 * Fault campaigns: scheduled adversity against a live workload, with
 * crash-restart resilience and a robustness scorecard (docs/FAULTS.md).
 *
 * A campaign runs a message workload in `legs` -- each leg sends a
 * batch of NI messages (and optionally writes device lines) -- under a
 * seeded fault plan extended with a fault schedule (bursts, brownouts,
 * hangs, storms).  Before every leg the runner takes an in-memory CSBC
 * checkpoint; an optional scheduled *crash* kills the System object
 * partway through a leg, rebuilds it from the latest checkpoint, and
 * re-runs the leg.  Because the checkpoint carries the fault
 * injector's RNG streams and the NI's sequence state, the surviving
 * timeline is deterministic and exactly-once delivery must hold across
 * the restart -- the crashed attempt's partial deliveries die with its
 * System, exactly as a real machine's volatile state would.
 *
 * A HealthMonitor (health.hh) rides along for the whole campaign and
 * contributes liveness/safety violations to the scorecard.
 */

#ifndef CSB_CORE_CAMPAIGN_HH
#define CSB_CORE_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/fault.hh"
#include "sim/types.hh"

namespace csb::core {

/** One campaign configuration (independent of the seed). */
struct CampaignScenario
{
    std::string name = "campaign";
    /** CSB PIO legs when true, lock-protected PIO legs otherwise. */
    bool useCsb = true;
    /** Workload legs; a checkpoint precedes each. */
    unsigned legs = 3;
    /** NI messages sent per leg (scientific size mix). */
    unsigned messagesPerLeg = 12;
    /** Device-window lines written per leg (0 = NI traffic only). */
    unsigned deviceLines = 4;
    /** Fault-schedule spec (docs/FAULTS.md grammar); may be empty. */
    std::string schedule;
    /** Uniform base rates; the per-run seed overrides baseFaults.seed. */
    sim::FaultPlan baseFaults;
    /** Leg index to crash inside (-1 = no crash). */
    int crashAfterLeg = -1;
    /** Ticks into the crash leg before the System is killed. */
    Tick crashAfterTicks = 20'000;

    // Recovery budgets (docs/FAULTS.md): small CSB budget so hangs
    // escalate to degraded mode; patient ubuf/NI budgets plus link
    // reset so the campaign rides out windows instead of dying.
    unsigned csbRetryMaxAttempts = 6;
    unsigned ubufRetryMaxAttempts = 24;
    unsigned niMaxSendAttempts = 8;

    Tick healthPeriod = 1024;
    Tick livenessWindow = 500'000;
    /** Per-leg tick budget (relative); overrun = failed campaign. */
    Tick legMaxTicks = 8'000'000;

    /** Throws FatalError when the scenario is malformed. */
    void validate() const;
};

/** Robustness scorecard of one campaign run (one seed). */
struct CampaignResult
{
    /**
     * The headline bit: every leg completed, exactly-once delivery
     * held (zero lost, zero duplicated), and the health monitor saw
     * no violation.
     */
    bool recovered = false;
    unsigned legsCompleted = 0;
    /** The scheduled crash-restart actually happened. */
    bool crashed = false;

    // Exactly-once accounting over the surviving timeline.
    unsigned messagesSent = 0;
    unsigned delivered = 0;
    unsigned lost = 0;
    unsigned duplicated = 0;

    // Adversity actually absorbed.
    std::uint64_t faultsInjected = 0;
    std::uint64_t busNacks = 0;
    std::uint64_t busRetries = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t linkResets = 0;
    std::uint64_t degradedEntries = 0;
    std::uint64_t repromotions = 0;

    // Recovery quality.
    double degradedTicks = 0;
    double linkDownTicks = 0;
    /**
     * Mean ticks to repair: total outage residency (degraded mode +
     * link-down) over closed recovery episodes; 0 when no episode
     * closed.
     */
    double mttrTicks = 0;

    std::uint64_t healthChecks = 0;
    std::uint64_t healthViolations = 0;
    Tick endTick = 0;
    /** Nonempty when the campaign aborted on a FatalError. */
    std::string failure;
};

/** Run @p scenario once under @p seed. */
CampaignResult runCampaign(const CampaignScenario &scenario,
                           std::uint64_t seed);

/** Aggregate scorecard of a multi-seed campaign sweep. */
struct CampaignSummary
{
    unsigned runs = 0;
    unsigned recoveredRuns = 0;
    double recoveryRate = 0;
    std::uint64_t totalLost = 0;
    std::uint64_t totalDuplicated = 0;
    std::uint64_t totalFaultsInjected = 0;
    std::uint64_t totalLinkResets = 0;
    std::uint64_t totalDegradedEntries = 0;
    std::uint64_t totalHealthViolations = 0;
    /** Mean of per-run MTTRs over runs with a closed episode. */
    double meanMttrTicks = 0;
    /** Mean fraction of run time spent degraded or link-down. */
    double meanDegradedResidency = 0;
};

CampaignSummary summarize(const std::vector<CampaignResult> &results);

/** One scorecard line per run plus a summary block, for CLIs. */
void renderCampaignTable(std::ostream &os, const CampaignScenario &scenario,
                         const std::vector<CampaignResult> &results,
                         const std::vector<std::uint64_t> &seeds);

} // namespace csb::core

#endif // CSB_CORE_CAMPAIGN_HH
