/**
 * @file
 * Generators for the paper's microbenchmark kernels (section 4.2).
 *
 * Register conventions used by all kernels:
 *   r1       I/O base pointer
 *   r2..r8   preset data values
 *   r9, r12  swap / expected-value registers
 *   r10      lock address, r11 lock value
 *
 * Marks: id 0 retires immediately before the measured sequence, id 1
 * immediately after it.
 */

#ifndef CSB_CORE_KERNELS_HH
#define CSB_CORE_KERNELS_HH

#include "isa/program.hh"
#include "sim/types.hh"

namespace csb::core {

/**
 * Uncached store bandwidth kernel: @p total_bytes of doubleword
 * stores to ascending addresses starting at @p base (the loop is
 * fully unrolled).  Used for every series of figures 3 and 4 except
 * the CSB one.
 *
 * @p alu_per_store inserts that many dependent ALU instructions
 * before every store -- the address-generation/marshalling compute a
 * real application spends between its I/O references (the paper's
 * closing "application reality" remark).  The compute emits no memory
 * references, so a trace replay of the padded kernel fast-forwards
 * straight across it; bench/perf_replay uses this to measure the
 * replay-vs-execute speedup on compute-bearing workloads.
 */
isa::Program makeStoreKernel(Addr base, unsigned total_bytes,
                             unsigned alu_per_store = 0);

/**
 * CSB store bandwidth kernel: for every cache-line group, the
 * expected-count setup, the group's doubleword stores, a conditional
 * flush, and the compare-and-retry check -- the code pattern of the
 * paper's SPARC listing in section 3.2.  @p alu_per_store pads each
 * store with dependent compute exactly like makeStoreKernel.
 */
isa::Program makeCsbStoreKernel(Addr base, unsigned total_bytes,
                                unsigned line_bytes,
                                unsigned alu_per_store = 0);

/**
 * Store bandwidth kernel with a SHUFFLED store order inside every
 * line (deterministic per @p seed).  Sequential-pattern hardware
 * combining (the R10000's) cannot coalesce this; the CSB does not
 * care ("combining stores can be issued in any order", section 3.2).
 */
isa::Program makeShuffledStoreKernel(Addr base, unsigned total_bytes,
                                     unsigned line_bytes,
                                     std::uint64_t seed);

/** CSB variant of the shuffled kernel (stores shuffled, then flush). */
isa::Program makeShuffledCsbStoreKernel(Addr base, unsigned total_bytes,
                                        unsigned line_bytes,
                                        std::uint64_t seed);

/**
 * The lock/access/unlock sequence of figure 5: spin-acquire via
 * cached atomic swap, @p n_dwords uncached stores to @p io_base, a
 * MEMBAR to drain the uncached buffer, then the lock release store.
 */
isa::Program makeLockedStoreKernel(Addr lock_addr, Addr io_base,
                                   unsigned n_dwords);

/**
 * The CSB atomic-access sequence of figure 5: @p n_dwords combining
 * stores followed by a conditional flush and the retry check.
 */
isa::Program makeCsbSequenceKernel(Addr csb_base, unsigned n_dwords);

/**
 * Combining stores WITHOUT a flush, then halt -- used by conflict
 * tests/examples to model a process preempted before its flush.
 */
isa::Program makeUnflushedStoresKernel(Addr csb_base, unsigned n_dwords);

/**
 * Like makeCsbStoreKernel, but with exponential backoff after failed
 * conditional flushes: the retry spins an empty delay loop whose
 * iteration count doubles on every consecutive failure, up to
 * @p max_backoff.  This is the livelock mitigation sketched in the
 * paper's section 3.2 ("use an exponential backoff algorithm to
 * reduce the likelihood of a conflict").
 */
isa::Program makeCsbStoreKernelWithBackoff(Addr base,
                                           unsigned total_bytes,
                                           unsigned line_bytes,
                                           unsigned max_backoff = 64);

/**
 * The paper's other livelock mitigation: "limit the number of failed
 * conditional flushes".  Each line group is attempted through the CSB
 * at most @p max_retries times; after that the kernel falls back to a
 * lock-protected sequence of plain uncached stores (to the uncached
 * alias of the same device window at @p fallback_base), which makes
 * progress under any scheduler because mutual exclusion -- not a
 * single-quantum window -- provides the atomicity.
 */
isa::Program makeCsbStoreKernelWithFallback(
    Addr csb_base, Addr fallback_base, Addr lock_addr,
    unsigned total_bytes, unsigned line_bytes, unsigned max_retries = 3);

} // namespace csb::core

#endif // CSB_CORE_KERNELS_HH
