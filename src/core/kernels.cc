#include "kernels.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace csb::core {

using isa::ir;
using isa::Program;

namespace {

/** Preset r2..r8 with recognizable data values. */
void
presetData(Program &p)
{
    for (int r = 2; r <= 8; ++r)
        p.li(ir(r), 0x1111111111111111ULL * static_cast<unsigned>(r));
}

/** Data register for the store at doubleword index @p i. */
isa::RegId
dataReg(unsigned i)
{
    return ir(2 + static_cast<int>(i % 7));
}

/**
 * @p count dependent ALU instructions on scratch register r15: each
 * reads the previous result, so the chain retires one per cycle and
 * models address-generation/marshalling compute between stores.
 */
void
aluPad(Program &p, unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        p.addi(ir(15), ir(15), 1);
}

} // namespace

Program
makeStoreKernel(Addr base, unsigned total_bytes, unsigned alu_per_store)
{
    csb_assert(total_bytes >= 8 && total_bytes % 8 == 0,
               "transfer must be a positive dword multiple");
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(base));
    p.mark(0);
    for (unsigned off = 0; off < total_bytes; off += 8) {
        aluPad(p, alu_per_store);
        p.std_(dataReg(off / 8), ir(1), off);
    }
    p.membar(); // wait for the last store to leave the buffer
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

Program
makeCsbStoreKernel(Addr base, unsigned total_bytes, unsigned line_bytes,
                   unsigned alu_per_store)
{
    csb_assert(total_bytes >= 8 && total_bytes % 8 == 0,
               "transfer must be a positive dword multiple");
    csb_assert(line_bytes >= 16 && isPowerOf2(line_bytes),
               "bad line size");
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(base));
    p.mark(0);
    for (unsigned group = 0; group * line_bytes < total_bytes; ++group) {
        unsigned group_base = group * line_bytes;
        unsigned group_bytes =
            std::min(line_bytes, total_bytes - group_base);
        auto dwords = static_cast<std::int64_t>(group_bytes / 8);

        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), dwords); // expected hit count
        for (unsigned off = 0; off < group_bytes; off += 8) {
            aluPad(p, alu_per_store);
            p.std_(dataReg((group_base + off) / 8), ir(1),
                   group_base + off);
        }
        p.swap(ir(9), ir(1), group_base); // conditional flush
        p.li(ir(12), dwords);
        p.bne(ir(9), ir(12), retry); // retry on failure
    }
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

namespace {

/** Deterministically shuffled dword offsets of one line group. */
std::vector<unsigned>
shuffledOffsets(unsigned group_base, unsigned group_bytes,
                sim::Random &rng)
{
    std::vector<unsigned> offsets;
    for (unsigned off = 0; off < group_bytes; off += 8)
        offsets.push_back(group_base + off);
    for (std::size_t i = offsets.size(); i > 1; --i) {
        std::size_t j = rng.uniform(0, i - 1);
        std::swap(offsets[i - 1], offsets[j]);
    }
    return offsets;
}

} // namespace

Program
makeShuffledStoreKernel(Addr base, unsigned total_bytes,
                        unsigned line_bytes, std::uint64_t seed)
{
    csb_assert(total_bytes >= 8 && total_bytes % 8 == 0,
               "transfer must be a positive dword multiple");
    sim::Random rng(seed);
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(base));
    p.mark(0);
    for (unsigned group = 0; group * line_bytes < total_bytes; ++group) {
        unsigned group_base = group * line_bytes;
        unsigned group_bytes =
            std::min(line_bytes, total_bytes - group_base);
        for (unsigned off : shuffledOffsets(group_base, group_bytes, rng))
            p.std_(dataReg(off / 8), ir(1), off);
    }
    p.membar();
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

Program
makeShuffledCsbStoreKernel(Addr base, unsigned total_bytes,
                           unsigned line_bytes, std::uint64_t seed)
{
    csb_assert(total_bytes >= 8 && total_bytes % 8 == 0,
               "transfer must be a positive dword multiple");
    sim::Random rng(seed);
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(base));
    p.mark(0);
    for (unsigned group = 0; group * line_bytes < total_bytes; ++group) {
        unsigned group_base = group * line_bytes;
        unsigned group_bytes =
            std::min(line_bytes, total_bytes - group_base);
        auto dwords = static_cast<std::int64_t>(group_bytes / 8);
        isa::Label retry = p.newLabel();
        p.bind(retry);
        p.li(ir(9), dwords);
        for (unsigned off : shuffledOffsets(group_base, group_bytes, rng))
            p.std_(dataReg(off / 8), ir(1), off);
        p.swap(ir(9), ir(1), group_base);
        p.li(ir(12), dwords);
        p.bne(ir(9), ir(12), retry);
    }
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

Program
makeLockedStoreKernel(Addr lock_addr, Addr io_base, unsigned n_dwords)
{
    csb_assert(n_dwords >= 1, "need at least one store");
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(io_base));
    p.mark(0);

    // Lock acquire (paper: 8 instructions around the atomic swap).
    p.li(ir(10), static_cast<std::int64_t>(lock_addr));
    p.li(ir(11), 1);
    isa::Label spin = p.newLabel();
    p.bind(spin);
    p.swap(ir(11), ir(10), 0);
    p.bne(ir(11), ir(0), spin); // old value non-zero: lock was held
    p.membar();                 // separate lock from the uncached stores

    for (unsigned i = 0; i < n_dwords; ++i)
        p.std_(dataReg(i), ir(1), i * 8);

    p.membar(); // release only after the last store left the buffer

    // Lock release (paper: 3 instructions).
    p.li(ir(12), 0);
    p.std_(ir(12), ir(10), 0);
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

Program
makeCsbSequenceKernel(Addr csb_base, unsigned n_dwords)
{
    csb_assert(n_dwords >= 1, "need at least one store");
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(csb_base));
    p.mark(0);

    isa::Label retry = p.newLabel();
    p.bind(retry);
    p.li(ir(9), static_cast<std::int64_t>(n_dwords));
    for (unsigned i = 0; i < n_dwords; ++i)
        p.std_(dataReg(i), ir(1), i * 8);
    p.swap(ir(9), ir(1), 0); // conditional flush
    p.li(ir(12), static_cast<std::int64_t>(n_dwords));
    p.bne(ir(9), ir(12), retry);

    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

Program
makeCsbStoreKernelWithBackoff(Addr base, unsigned total_bytes,
                              unsigned line_bytes, unsigned max_backoff)
{
    csb_assert(total_bytes >= 8 && total_bytes % 8 == 0,
               "transfer must be a positive dword multiple");
    csb_assert(max_backoff >= 1, "backoff bound must be positive");
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(base));
    p.li(ir(20), 1); // current backoff (delay-loop iterations)
    p.li(ir(22), static_cast<std::int64_t>(max_backoff));
    p.mark(0);
    for (unsigned group = 0; group * line_bytes < total_bytes; ++group) {
        unsigned group_base = group * line_bytes;
        unsigned group_bytes =
            std::min(line_bytes, total_bytes - group_base);
        auto dwords = static_cast<std::int64_t>(group_bytes / 8);

        isa::Label retry = p.newLabel();
        isa::Label success = p.newLabel();
        p.bind(retry);
        p.li(ir(9), dwords);
        for (unsigned off = 0; off < group_bytes; off += 8)
            p.std_(dataReg((group_base + off) / 8), ir(1),
                   group_base + off);
        p.swap(ir(9), ir(1), group_base);
        p.li(ir(12), dwords);
        p.beq(ir(9), ir(12), success);

        // Failed flush: spin for r20 iterations, then double the
        // backoff (capped at r22) and retry.
        p.or_(ir(21), ir(20), ir(0));
        isa::Label delay = p.newLabel();
        p.bind(delay);
        p.addi(ir(21), ir(21), -1);
        p.bgt(ir(21), ir(0), delay);
        p.slli(ir(20), ir(20), 1);
        isa::Label capped = p.newLabel();
        p.ble(ir(20), ir(22), capped);
        p.or_(ir(20), ir(22), ir(0));
        p.bind(capped);
        p.jmp(retry);

        p.bind(success);
        p.li(ir(20), 1); // conflict resolved: reset the backoff
    }
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

Program
makeCsbStoreKernelWithFallback(Addr csb_base, Addr fallback_base,
                               Addr lock_addr, unsigned total_bytes,
                               unsigned line_bytes, unsigned max_retries)
{
    csb_assert(total_bytes >= 8 && total_bytes % 8 == 0,
               "transfer must be a positive dword multiple");
    csb_assert(max_retries >= 1, "need at least one CSB attempt");
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(csb_base));
    p.li(ir(18), static_cast<std::int64_t>(fallback_base));
    p.li(ir(10), static_cast<std::int64_t>(lock_addr));
    p.mark(0);
    for (unsigned group = 0; group * line_bytes < total_bytes; ++group) {
        unsigned group_base = group * line_bytes;
        unsigned group_bytes =
            std::min(line_bytes, total_bytes - group_base);
        auto dwords = static_cast<std::int64_t>(group_bytes / 8);

        isa::Label retry = p.newLabel();
        isa::Label fallback = p.newLabel();
        isa::Label group_done = p.newLabel();

        p.li(ir(19), static_cast<std::int64_t>(max_retries));
        p.bind(retry);
        p.li(ir(9), dwords);
        for (unsigned off = 0; off < group_bytes; off += 8)
            p.std_(dataReg((group_base + off) / 8), ir(1),
                   group_base + off);
        p.swap(ir(9), ir(1), group_base);
        p.li(ir(12), dwords);
        p.beq(ir(9), ir(12), group_done);
        p.addi(ir(19), ir(19), -1);
        p.bgt(ir(19), ir(0), retry);

        // Bounded failures exhausted: take the lock and use plain
        // uncached stores through the non-combining alias window.
        p.bind(fallback);
        p.li(ir(11), 1);
        isa::Label spin = p.newLabel();
        p.bind(spin);
        p.swap(ir(11), ir(10), 0);
        p.bne(ir(11), ir(0), spin);
        p.membar();
        for (unsigned off = 0; off < group_bytes; off += 8)
            p.std_(dataReg((group_base + off) / 8), ir(18),
                   group_base + off);
        p.membar();
        p.li(ir(12), 0);
        p.std_(ir(12), ir(10), 0);

        p.bind(group_done);
    }
    p.mark(1);
    p.halt();
    p.finalize();
    return p;
}

Program
makeUnflushedStoresKernel(Addr csb_base, unsigned n_dwords)
{
    Program p;
    presetData(p);
    p.li(ir(1), static_cast<std::int64_t>(csb_base));
    for (unsigned i = 0; i < n_dwords; ++i)
        p.std_(dataReg(i), ir(1), i * 8);
    p.halt();
    p.finalize();
    return p;
}

} // namespace csb::core
