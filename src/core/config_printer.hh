/**
 * @file
 * Human-readable dump of a SystemConfig -- every experiment binary
 * can show exactly what it simulated.
 */

#ifndef CSB_CORE_CONFIG_PRINTER_HH
#define CSB_CORE_CONFIG_PRINTER_HH

#include <ostream>

#include "system_config.hh"

namespace csb::core {

/** Write a readable multi-line description of @p config to @p os. */
void printConfig(const SystemConfig &config, std::ostream &os);

} // namespace csb::core

#endif // CSB_CORE_CONFIG_PRINTER_HH
