/**
 * @file
 * The top-level simulated system: core + caches + TLB + uncached
 * buffer + CSB + system bus + main memory + I/O devices, wired
 * according to a SystemConfig.  This is the primary entry point of
 * the csbsim public API.
 */

#ifndef CSB_CORE_SYSTEM_HH
#define CSB_CORE_SYSTEM_HH

#include <memory>
#include <ostream>

#include "bus/system_bus.hh"
#include "cpu/context_scheduler.hh"
#include "cpu/core.hh"
#include "io/burst_device.hh"
#include "io/network_interface.hh"
#include "isa/program.hh"
#include "mem/cache.hh"
#include "mem/csb.hh"
#include "mem/main_memory.hh"
#include "mem/page_table.hh"
#include "mem/physical_memory.hh"
#include "mem/uncached_buffer.hh"
#include "replay_core.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/trace_recorder.hh"
#include "system_config.hh"

namespace csb::core {

/**
 * A complete single-node system.
 *
 * Fixed physical address map:
 *   [0x0000'0000, 0x1000'0000)  cached RAM
 *   [0x2000'0000, +1 MiB)       device window, plain uncached pages
 *   [0x2100'0000, +1 MiB)       device window, uncached-accelerated
 *   [0x2200'0000, +1 MiB)       device window, uncached-combining
 *   [0x3000'0000, +8 KiB)       network interface (when enabled),
 *                               PIO/descriptor pages combining
 */
class System : public sim::stats::StatGroup
{
  public:
    static constexpr Addr ramBase = 0x0000'0000;
    static constexpr Addr ramSize = 0x1000'0000;
    static constexpr Addr ioUncachedBase = 0x2000'0000;
    static constexpr Addr ioAccelBase = 0x2100'0000;
    static constexpr Addr ioCsbBase = 0x2200'0000;
    static constexpr Addr ioRegionSize = 0x0010'0000;
    static constexpr Addr niBase = 0x3000'0000;

    explicit System(SystemConfig config);
    ~System() override;

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Load @p program and run until it halts and all buffers, the
     * bus, and (when enabled) the NI have drained.
     * @return the tick at which everything went quiescent
     */
    Tick run(const isa::Program &program, ProcId pid = 1,
             Tick max_ticks = 50'000'000);

    /** @return true when all queues/buses/devices are idle. */
    bool quiescent() const;

    /**
     * Record every data reference of every core into @p recorder
     * (cores stamp their own index); null detaches.  Recording is
     * passive and never perturbs timing.  Execute-mode systems only.
     */
    void attachTraceRecorder(sim::TraceRecorder *recorder);

    /**
     * Replay @p trace (see docs/TRACE_FORMAT.md) against this system's
     * memory hierarchy and run until every record has been issued and
     * the system is quiescent.  Requires config().replayMode; the
     * trace's cpu count and line size must match this configuration.
     * @return the tick at which everything went quiescent
     */
    Tick replay(const sim::MemTrace &trace, Tick max_ticks = 50'000'000);

    /**
     * Serialize the memory-system stats subtree (bus, mem, dev, NI,
     * faults, per-core caches/ubuf/csb) as a JSON document.  This is
     * the replay determinism surface: it deliberately excludes the
     * tlb and cpu groups, which trace replay does not reproduce.
     */
    void dumpMemStatsJson(std::ostream &os, int indent = 2) const;

    /**
     * Serialize the complete system state (tick, memory, arch state,
     * caches, TLB, CSB accumulator, bus, devices, stats) to the CSBC
     * format specified in docs/CHECKPOINT.md.  Only legal at a
     * quiescent boundary with every core halted and drained.
     */
    void saveCheckpoint(sim::CheckpointWriter &cw) const;

    /** saveCheckpoint() to the file at @p path. */
    void saveCheckpointFile(const std::string &path) const;

    /**
     * Restore a checkpoint into this freshly built system.  The
     * configuration fingerprint must match the saving system's, and
     * nothing may have run yet (curTick == 0).
     */
    void restoreCheckpoint(sim::CheckpointReader &cr);

    /** restoreCheckpoint() from the file at @p path. */
    void restoreCheckpointFile(const std::string &path);
    // Statistics of every component dump via the inherited
    // StatGroup::dumpStats(std::ostream&) (text) and
    // StatGroup::dumpStatsJson(std::ostream&) (JSON); setting
    // CSBSIM_STATS_JSON=<path> writes the JSON tree at destruction
    // (see docs/OBSERVABILITY.md).

    // Component access.  The index selects the processor of an SMP
    // configuration; the index-free forms are the core-0 shorthands
    // used by single-processor experiments.
    sim::Simulator &simulator() { return sim_; }
    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
    cpu::Core &core(unsigned cpu = 0) { return *cores_.at(cpu).core; }
    mem::UncachedBuffer &uncachedBuffer(unsigned cpu = 0)
    {
        return *cores_.at(cpu).ubuf;
    }
    mem::ConditionalStoreBuffer *csb(unsigned cpu = 0)
    {
        return cores_.at(cpu).csb.get();
    }
    mem::CacheHierarchy &caches(unsigned cpu = 0)
    {
        return *cores_.at(cpu).caches;
    }
    mem::Tlb &tlb(unsigned cpu = 0) { return *cores_.at(cpu).tlb; }
    bus::SystemBus &bus() { return *bus_; }
    mem::PhysicalMemory &memory() { return physMem_; }
    mem::PageTable &pageTable() { return pageTable_; }
    io::BurstDevice &device() { return *device_; }
    io::NetworkInterface *ni() { return ni_.get(); }
    /** The fault injector, or null when the plan is all-zero. */
    sim::FaultInjector *faults() { return injector_.get(); }

    const SystemConfig &config() const { return config_; }

    /** Bus cycles from the first to the last I/O write transaction. */
    std::uint64_t ioWriteBusCycles() const;

    /** Count of I/O write transactions recorded by the bus monitor. */
    std::size_t ioWriteTxns() const;

  private:
    /** Per-processor private components. */
    struct CoreSlice
    {
        std::unique_ptr<mem::Tlb> tlb;
        std::unique_ptr<mem::CacheHierarchy> caches;
        std::unique_ptr<mem::UncachedBuffer> ubuf;
        std::unique_ptr<mem::ConditionalStoreBuffer> csb;
        /** Null in replay mode. */
        std::unique_ptr<cpu::Core> core;
        /** Null outside replay mode; built lazily by replay(). */
        std::unique_ptr<ReplayCore> replay;
        /** Bus master for cache-miss line fetches (optional). */
        MasterId missMaster = 0;
    };

    void buildCoreSlice(unsigned cpu);

    SystemConfig config_;
    sim::Simulator sim_;
    mem::PhysicalMemory physMem_;
    mem::PageTable pageTable_;

    std::unique_ptr<sim::FaultInjector> injector_;
    std::unique_ptr<bus::SystemBus> bus_;
    /** Shared coherence policy; null when coherence.kind is None. */
    std::unique_ptr<mem::CoherencePolicy> cohPolicy_;
    std::unique_ptr<mem::MainMemory> mainMemory_;
    std::unique_ptr<io::BurstDevice> device_;
    std::unique_ptr<io::NetworkInterface> ni_;
    std::vector<CoreSlice> cores_;
};

} // namespace csb::core

#endif // CSB_CORE_SYSTEM_HH
