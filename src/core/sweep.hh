/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * Every experiment in this repo is a grid of *independent* simulation
 * runs (scheme x transfer size, fault rate, message mix, ...).  Each
 * point builds its own Simulator/System, so points can execute on a
 * worker pool -- but artifacts must stay byte-identical no matter how
 * the OS schedules the workers.  SweepRunner guarantees that by
 * construction:
 *
 *  - results are collected **by point index, never by completion
 *    order**;
 *  - `jobs == 1` runs the points inline on the calling thread, in
 *    index order, with no pool at all -- the exact serial path;
 *  - worker code renders into a per-point buffer (mapRendered), never
 *    into std::cout or a shared string;
 *  - when points throw, the exception for the **lowest** failing
 *    index is rethrown at the join point, matching what the serial
 *    loop would have thrown first.
 */

#ifndef CSB_CORE_SWEEP_HH
#define CSB_CORE_SWEEP_HH

#include <cstddef>
#include <exception>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/thread_pool.hh"

namespace csb::core {

/** 0 means auto: one job per hardware thread (at least 1). */
unsigned resolveJobs(unsigned jobs);

/** A sweep point's result plus the text it rendered into its buffer. */
template <typename T>
struct Rendered
{
    T value;
    std::string text;
};

class SweepRunner
{
  public:
    /** @param jobs worker count; 0 = auto, 1 = exact serial path. */
    explicit SweepRunner(unsigned jobs = 1) : jobs_(resolveJobs(jobs)) {}

    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate @p fn(0) .. @p fn(n-1) and return the results in index
     * order.  @p fn must be safe to call concurrently from worker
     * threads when jobs() > 1 (i.e. build its own Simulator/System
     * per call and touch no shared mutable state).
     */
    template <typename Fn>
    auto
    mapIndex(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using T = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<T> results;
        results.reserve(n);
        if (jobs_ == 1) {
            for (std::size_t i = 0; i < n; ++i)
                results.push_back(fn(i));
            return results;
        }

        std::vector<std::optional<T>> slots(n);
        std::vector<std::exception_ptr> errors(n);
        sim::ThreadPool &pool = this->pool();
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&, i] {
                try {
                    slots[i].emplace(fn(i));
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool.wait();
        for (std::size_t i = 0; i < n; ++i) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
        }
        for (std::size_t i = 0; i < n; ++i)
            results.push_back(std::move(*slots[i]));
        return results;
    }

    /** mapIndex over a vector of points: fn(point) per point. */
    template <typename Point, typename Fn>
    auto
    map(const std::vector<Point> &points, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const Point &>>
    {
        return mapIndex(points.size(), [&](std::size_t i) {
            return fn(points[i]);
        });
    }

    /**
     * Per-point buffer API: @p fn(point, os) renders its table rows
     * into the ostream it is handed -- one private buffer per point,
     * so workers never touch std::cout or a shared rendered string.
     * The caller splices the buffers back in index order.
     */
    template <typename Point, typename Fn>
    auto
    mapRendered(const std::vector<Point> &points, Fn &&fn)
        -> std::vector<Rendered<
            std::invoke_result_t<Fn &, const Point &, std::ostream &>>>
    {
        using V =
            std::invoke_result_t<Fn &, const Point &, std::ostream &>;
        return mapIndex(points.size(), [&](std::size_t i) {
            std::ostringstream os;
            V value = fn(points[i], os);
            return Rendered<V>{std::move(value), os.str()};
        });
    }

  private:
    sim::ThreadPool &pool();

    unsigned jobs_;
    std::unique_ptr<sim::ThreadPool> pool_; ///< lazy, reused across maps
};

} // namespace csb::core

#endif // CSB_CORE_SWEEP_HH
