/**
 * @file
 * Trace replay front end: drives a recorded reference stream directly
 * into the memory system, skipping fetch/decode/issue entirely.
 *
 * A ReplayCore replaces the cpu::Core of one processor slice.  It owns
 * the slice's portion of a MemTrace (see sim/trace_recorder.hh) and
 * re-issues every record at its recorded tick and phase:
 *
 *  - clocked-phase records are issued from tick() at the core's
 *    evaluation order (0), exactly where the live core issued them, so
 *    components at negative eval order (bus, ubuf, CSB) observe them
 *    one tick later, as in the recorded run;
 *  - event-phase records (SWAP completion writes) are issued from an
 *    event scheduled at the record's tick, so they land in the event
 *    phase as recorded.
 *
 * Between records the core gates its clock and parks a wakeup event at
 * the next record's tick, which lets the simulator's quiescent-system
 * fast-forward skip the gaps -- the source of replay's speedup over
 * core-driven execution (bench/perf_replay).
 *
 * Determinism contract: replaying a trace against an identically
 * configured memory system reproduces the recorded run's memory-system
 * state and stats tick for tick (docs/TRACE_FORMAT.md, "Replay
 * semantics").  TLB and core-internal stats are not reproduced -- the
 * replay core consults neither.
 */

#ifndef CSB_CORE_REPLAY_CORE_HH
#define CSB_CORE_REPLAY_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "sim/clocked.hh"
#include "sim/simulator.hh"
#include "sim/trace_recorder.hh"

namespace csb::core {

/** Replays one core's recorded reference stream into its mem ports. */
class ReplayCore : public sim::Clocked
{
  public:
    /**
     * @param simulator the owning simulation
     * @param ports     the slice's memory-system ports (tlb unused)
     * @param records   this core's records, in stream order
     * @param name      instance name ("replay", "replay1", ...)
     */
    ReplayCore(sim::Simulator &simulator, const cpu::CoreMemPorts &ports,
               std::vector<sim::TraceRecord> records,
               std::string name = "replay");

    /** @return true once every record has been issued. */
    bool done() const { return next_ >= records_.size(); }

    /** Records issued so far (tests / progress reporting). */
    std::size_t issued() const { return next_; }

    void tick() override;

    void debugDump(std::ostream &os) const override;

  private:
    /** Issue one record into the memory system. */
    void issue(const sim::TraceRecord &rec);

    /**
     * Park a wakeup at the next record's tick: an event-phase pump for
     * event records, an ungating alarm for clocked records.  Gates the
     * clock when the next record is not due this tick.
     */
    void scheduleNext();

    /** Event-phase pump: issue due event records, then reschedule. */
    void pump();

    sim::Simulator &sim_;
    cpu::CoreMemPorts ports_;
    std::vector<sim::TraceRecord> records_;
    std::size_t next_ = 0;
    /** A wakeup event is already parked at this tick (maxTick: none). */
    Tick wakeupAt_ = maxTick;
};

} // namespace csb::core

#endif // CSB_CORE_REPLAY_CORE_HH
