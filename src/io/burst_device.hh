/**
 * @file
 * A generic burst-capable I/O device target.
 *
 * Records every write with its completion timestamp, which is what
 * the bandwidth experiments measure.  Section 3.3 notes that the CSB
 * needs the target device to accept burst writes; setting
 * maxAcceptBytes below the line size models a device that cannot, and
 * the bus (which has no retry semantics in this model) reports it as
 * a fatal configuration error -- surfacing the system implication.
 */

#ifndef CSB_IO_BURST_DEVICE_HH
#define CSB_IO_BURST_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bus/bus_target.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"

namespace csb::io {

/** One write observed by the device. */
struct DeviceWrite
{
    Addr addr = 0;
    std::vector<std::uint8_t> data;
    Tick completionTick = 0;
};

/** Burst-capable memory-mapped device. */
class BurstDevice : public bus::BusTarget, public sim::stats::StatGroup
{
  public:
    /**
     * @param read_latency  latency of register reads, CPU ticks
     * @param max_accept    largest write the device accepts (bytes)
     */
    BurstDevice(Tick read_latency = 12, unsigned max_accept = 128,
                std::string name = "dev",
                sim::stats::StatGroup *stat_parent = nullptr);

    const std::string &targetName() const override { return name_; }

    /**
     * Flow control hook: while the FaultSite::DeviceHang site is
     * active (a scheduled hang window, docs/FAULTS.md) the device
     * NACKs every write, so masters exhaust retry budgets and must
     * recover.  With no injector or no hang configured this is the
     * always-Ok default.
     */
    bus::BusStatus accept(const bus::BusTransaction &txn,
                          Tick now) override;

    void write(const bus::BusTransaction &txn, Tick now) override;

    Tick read(const bus::BusTransaction &txn, Tick now,
              std::vector<std::uint8_t> &data) override;

    const std::vector<DeviceWrite> &writeLog() const { return writeLog_; }
    void clearLog() { writeLog_.clear(); }

    /** Set the value returned by register reads at @p addr. */
    void setRegister(Addr addr, std::uint64_t value);

    /** Attach the system's fault injector (null to detach). */
    void setFaultInjector(sim::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /**
     * Serialize the write log and register file so device-side
     * measurements spanning a checkpoint boundary match an
     * uninterrupted run.  Restore requires an empty write log.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;
    void checkpointRestore(sim::CheckpointReader &cr);

    sim::stats::Scalar writesReceived;
    sim::stats::Scalar bytesReceived;
    sim::stats::Scalar readsServed;

  private:
    std::string name_;
    Tick readLatency_;
    unsigned maxAccept_;
    sim::FaultInjector *injector_ = nullptr;
    std::vector<DeviceWrite> writeLog_;
    std::vector<std::pair<Addr, std::uint64_t>> registers_;
};

} // namespace csb::io

#endif // CSB_IO_BURST_DEVICE_HH
