/**
 * @file
 * A network interface model in the style of the NIs the paper cites
 * (Atoll, HP Medusa): a memory-mapped device with
 *
 *  - a PIO transmit window: uncached/combined stores append payload
 *    bytes; a doorbell write finalizes the message;
 *  - a descriptor register: a single doubleword store packs
 *    {source address, length} and kicks a DMA transfer (Atoll-style);
 *    a CSB line burst to the descriptor region pushes up to
 *    line/8 descriptors atomically (zero doublewords are padding);
 *  - a DMA engine that fetches payload from main memory over the
 *    system bus in line-sized reads;
 *  - a serial wire with configurable bandwidth and latency delivering
 *    packets to a receive log.
 *
 * Register map (offsets from the NI base address; each region sits in
 * its own page so it can carry its own memory attribute):
 *   [0x0000, 0x1000)  descriptor push region
 *   [0x1000]          doorbell: value = message length in bytes
 *   [0x2000, 0x3000)  PIO payload window
 */

#ifndef CSB_IO_NETWORK_INTERFACE_HH
#define CSB_IO_NETWORK_INTERFACE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bus/retry.hh"
#include "bus/system_bus.hh"
#include "mem/physical_memory.hh"
#include "sim/clocked.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace csb::io {

/** Offsets within the NI's bus window. */
struct NiMap
{
    static constexpr Addr descBase = 0x0000;
    static constexpr Addr descSize = 0x1000;
    static constexpr Addr doorbell = 0x1000;
    static constexpr Addr pioBase = 0x2000;
    static constexpr Addr pioSize = 0x1000;
    static constexpr Addr windowSize = 0x4000;
};

/** Pack an Atoll-style DMA descriptor into one doubleword. */
constexpr std::uint64_t
packDescriptor(Addr source, std::uint16_t length)
{
    return (source << 16) | length;
}

/** A message delivered by the wire. */
struct DeliveredMessage
{
    std::vector<std::uint8_t> payload;
    /** Tick the message entered the wire (transmit complete at NI). */
    Tick sendTick = 0;
    /** Tick the last byte arrived at the far end. */
    Tick deliverTick = 0;
    /** True when the payload was fetched by DMA, false for PIO. */
    bool viaDma = false;
    /** Wire sequence number (unique per accepted message). */
    std::uint64_t seq = 0;
};

/** NI configuration. */
struct NetworkInterfaceParams
{
    /** Wire bandwidth: CPU ticks per payload byte. */
    double wireTicksPerByte = 0.5;
    /** Wire propagation latency in CPU ticks. */
    Tick wireLatency = 200;
    /** Fixed DMA engine startup cost per descriptor, CPU ticks. */
    Tick dmaStartupTicks = 60;
    /** Burst size of DMA line reads. */
    unsigned dmaBurstBytes = 64;
    /** Pipelined outstanding DMA reads (real engines prefetch). */
    unsigned dmaMaxOutstanding = 4;
    /** Latency of NI register reads. */
    Tick readLatency = 12;
    /**
     * Force the reliable wire protocol (sequence numbers, checksum,
     * ack + timeout retransmit, duplicate suppression) even when no
     * wire faults are configured.  The protocol turns itself on
     * automatically when the attached fault plan enables wire faults.
     */
    bool reliableWire = false;
    /** Acknowledgment propagation latency back across the wire. */
    Tick ackLatency = 200;
    /** Retransmit timer, armed when a packet finishes transmitting. */
    Tick retransmitTimeout = 4096;
    /** Send attempts per packet before giving up fatally. */
    unsigned maxSendAttempts = 16;
    /**
     * Recovery protocol (docs/FAULTS.md): when a packet exhausts its
     * send budget, instead of a fatal error the NI declares the link
     * down, quiesces the wire for linkResetLatency ticks, reinits the
     * DMA retry engine, and replays every unacknowledged packet from
     * the retransmit window in sequence order.  Off by default: the
     * legacy fatal keeps misconfigured runs loud.
     */
    bool linkReset = false;
    /** Ticks the wire stays quiesced during a link reset. */
    Tick linkResetLatency = 2048;
    /** Backoff schedule for DMA reads NACKed on the bus. */
    bus::RetryPolicy retry;
};

/**
 * The network interface: a bus target (register window) plus a bus
 * master (DMA engine) plus a wire.
 */
class NetworkInterface : public bus::BusTarget,
                         public sim::Clocked,
                         public sim::stats::StatGroup
{
  public:
    NetworkInterface(sim::Simulator &simulator, bus::SystemBus &bus,
                     Addr base, const NetworkInterfaceParams &params,
                     std::string name = "ni",
                     sim::stats::StatGroup *stat_parent = nullptr);

    const std::string &targetName() const override { return name_; }

    void write(const bus::BusTransaction &txn, Tick now) override;

    Tick read(const bus::BusTransaction &txn, Tick now,
              std::vector<std::uint8_t> &data) override;

    void tick() override;

    /** Messages fully delivered at the far end of the wire. */
    const std::vector<DeliveredMessage> &delivered() const
    {
        return delivered_;
    }

    /** @return true when no DMA or wire activity is pending. */
    bool idle() const;

    Addr base() const { return base_; }

    /**
     * Attach the system's fault injector (null to detach).  The NI
     * consults the WireDrop / WireCorrupt / AckDrop sites and the bus
     * NACK handling of its DMA port; wire faults implicitly enable
     * the reliable wire protocol.
     */
    void setFaultInjector(sim::FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** @return true when the reliable wire protocol is active. */
    bool reliableMode() const
    {
        return params_.reliableWire ||
               (injector_ && injector_->plan().wireFaultsEnabled());
    }

    void debugDump(std::ostream &os) const override;

    /**
     * Serialize the PIO accumulation buffer, wire availability, the
     * delivered-message log and the reliable-protocol sequence state.
     * @pre idle() -- no DMA or wire activity may be pending, though a
     * partially written PIO message is allowed.
     */
    void checkpointSave(sim::CheckpointWriter &cw) const;

    /** Restore state written by checkpointSave().  @pre idle() */
    void checkpointRestore(sim::CheckpointReader &cr);

    sim::stats::Scalar pioMessages;
    sim::stats::Scalar dmaMessages;
    sim::stats::Scalar bytesSent;
    sim::stats::Scalar descriptorsPushed;
    /** Ticks the wire spent transmitting payload bytes. */
    sim::stats::Scalar wireBusyTicks;
    /** DMA reads NACKed on the bus. */
    sim::stats::Scalar busNacks;
    /** NACKed DMA reads reissued after backoff. */
    sim::stats::Scalar busRetries;
    /** Packets retransmitted after an ack timeout. */
    sim::stats::Scalar retransmits;
    /** Duplicate arrivals suppressed at the receiver. */
    sim::stats::Scalar duplicatesSuppressed;
    /** Arrivals discarded for a checksum mismatch. */
    sim::stats::Scalar checksumDiscards;
    /** Link resets performed after send-budget exhaustion. */
    sim::stats::Scalar linkResets;
    /** Ticks from first link reset to the window draining empty. */
    sim::stats::Scalar linkDownTicks;
    /** Recovery episodes completed (window drained after a reset). */
    sim::stats::Scalar linkRecoveries;
    /** Payload size of each message entering the wire. */
    sim::stats::Distribution messageBytes;

  private:
    struct DmaJob
    {
        Addr source = 0;
        unsigned length = 0;
        /** Bytes whose reads have been issued to the bus. */
        unsigned issued = 0;
        /** Bytes received back (responses return in order). */
        unsigned fetched = 0;
        /** Reads issued but not yet answered. */
        unsigned outstanding = 0;
        std::vector<std::uint8_t> payload;
        Tick startTick = 0;
        bool startupDone = false;
    };

    /** A DMA read NACKed on the bus, waiting out its backoff. */
    struct DmaRetry
    {
        Addr addr = 0;
        unsigned size = 0;
        /** Byte offset of this read within the job's payload. */
        unsigned offset = 0;
        unsigned attempt = 0;
        Tick earliest = 0;
    };

    /** An unacknowledged packet owned by the sender (reliable mode). */
    struct WirePacket
    {
        std::uint64_t seq = 0;
        std::vector<std::uint8_t> payload;
        std::uint64_t checksum = 0;
        bool viaDma = false;
        unsigned attempts = 0;
        Tick firstSendTick = 0;
    };

    void pushDescriptor(std::uint64_t desc, Tick now);
    void finishMessage(std::vector<std::uint8_t> payload, Tick now,
                       bool via_dma);
    /** Put one (re)transmission of @p seq onto the wire. */
    void transmitPacket(std::uint64_t seq, Tick now);
    /** Receiver side: a packet's last byte arrived. */
    void receivePacket(std::uint64_t seq,
                       std::vector<std::uint8_t> wire_bytes,
                       std::uint64_t claimed_checksum, Tick send_done,
                       Tick arrival, bool via_dma);
    void issueDmaRead(Addr addr, unsigned size, unsigned offset,
                      unsigned attempt);
    /**
     * Link-down recovery: quiesce the wire, reinit the DMA retry
     * engine, zero every unacked packet's attempt count (disarming
     * stale retransmit timers), and replay the retransmit window in
     * sequence order once the wire comes back.
     */
    void performLinkReset(Tick now);

    sim::Simulator &sim_;
    bus::SystemBus &bus_;
    Addr base_;
    NetworkInterfaceParams params_;
    std::string name_;
    MasterId masterId_;
    sim::FaultInjector *injector_ = nullptr;

    std::vector<std::uint8_t> pioBuffer_;
    std::deque<DmaJob> dmaQueue_;
    /** NACKed DMA reads of the front job awaiting reissue. */
    std::deque<DmaRetry> dmaRetries_;
    /** Wire is busy until this tick. */
    Tick wireFreeAt_ = 0;
    unsigned messagesInWire_ = 0;
    std::vector<DeliveredMessage> delivered_;

    // Reliable wire protocol state (all empty in legacy mode).
    std::uint64_t nextSeq_ = 1;
    /** Sender: packets sent but not yet positively acknowledged. */
    std::map<std::uint64_t, WirePacket> unacked_;
    /** Receiver: sequence numbers already delivered (dup filter). */
    std::set<std::uint64_t> deliveredSeqs_;
    /**
     * First link reset of the current recovery episode, or maxTick
     * when the link is healthy.  Transient: checkpoints require an
     * idle NI, and an empty retransmit window closes the episode.
     */
    Tick resetStartTick_ = maxTick;
};

} // namespace csb::io

#endif // CSB_IO_NETWORK_INTERFACE_HH
