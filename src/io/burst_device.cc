#include "burst_device.hh"

#include <cstring>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/trace_json.hh"

namespace csb::io {

BurstDevice::BurstDevice(Tick read_latency, unsigned max_accept,
                         std::string name,
                         sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(name, stat_parent),
      writesReceived(this, "writesReceived", "write transactions seen"),
      bytesReceived(this, "bytesReceived", "bytes written to the device"),
      readsServed(this, "readsServed", "register reads served"),
      name_(std::move(name)), readLatency_(read_latency),
      maxAccept_(max_accept)
{
}

bus::BusStatus
BurstDevice::accept(const bus::BusTransaction &txn, Tick now)
{
    (void)txn;
    if (injector_ &&
        injector_->shouldFault(sim::FaultSite::DeviceHang, now)) {
        return bus::BusStatus::Nack;
    }
    return bus::BusStatus::Ok;
}

void
BurstDevice::write(const bus::BusTransaction &txn, Tick now)
{
    if (txn.size > maxAccept_) {
        csb_fatal("device '", name_, "' cannot accept a ", txn.size,
                  "-byte burst (max ", maxAccept_,
                  "); see DESIGN.md / paper section 3.3");
    }
    DeviceWrite rec;
    rec.addr = txn.addr;
    rec.data = txn.data;
    rec.completionTick = now;
    writeLog_.push_back(std::move(rec));
    writesReceived += 1;
    bytesReceived += txn.size;

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonInstant(
            "dev", "burst " + std::to_string(txn.size) + "B", now,
            {{"addr", sim::trace::hexArg(txn.addr)},
             {"device", name_}});
    }
}

Tick
BurstDevice::read(const bus::BusTransaction &txn, Tick,
                  std::vector<std::uint8_t> &data)
{
    data.assign(txn.size, 0);
    for (const auto &[addr, value] : registers_) {
        if (addr >= txn.addr && addr + 8 <= txn.addr + txn.size) {
            std::memcpy(data.data() + (addr - txn.addr), &value, 8);
        }
    }
    readsServed += 1;
    return readLatency_;
}

void
BurstDevice::setRegister(Addr addr, std::uint64_t value)
{
    for (auto &[existing, stored] : registers_) {
        if (existing == addr) {
            stored = value;
            return;
        }
    }
    registers_.emplace_back(addr, value);
}

void
BurstDevice::checkpointSave(sim::CheckpointWriter &cw) const
{
    cw.putU64(writeLog_.size());
    for (const DeviceWrite &rec : writeLog_) {
        cw.putU64(rec.addr);
        cw.putU64(rec.data.size());
        if (!rec.data.empty())
            cw.putBytes(rec.data.data(), rec.data.size());
        cw.putU64(rec.completionTick);
    }
    cw.putU64(registers_.size());
    for (const auto &[addr, value] : registers_) {
        cw.putU64(addr);
        cw.putU64(value);
    }
}

void
BurstDevice::checkpointRestore(sim::CheckpointReader &cr)
{
    csb_assert(writeLog_.empty(),
               "device checkpoint restore into a used device");
    const std::uint64_t writes = cr.getU64();
    writeLog_.reserve(writes);
    for (std::uint64_t i = 0; i < writes; ++i) {
        DeviceWrite rec;
        rec.addr = cr.getU64();
        const std::uint64_t bytes = cr.getU64();
        if (bytes > 0) {
            rec.data = cr.getBytes();
            csb_assert(rec.data.size() == bytes, "device write payload");
        }
        rec.completionTick = cr.getU64();
        writeLog_.push_back(std::move(rec));
    }
    registers_.clear();
    const std::uint64_t regs = cr.getU64();
    for (std::uint64_t i = 0; i < regs; ++i) {
        Addr addr = cr.getU64();
        std::uint64_t value = cr.getU64();
        registers_.emplace_back(addr, value);
    }
}

} // namespace csb::io
