#include "burst_device.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/trace_json.hh"

namespace csb::io {

BurstDevice::BurstDevice(Tick read_latency, unsigned max_accept,
                         std::string name,
                         sim::stats::StatGroup *stat_parent)
    : sim::stats::StatGroup(name, stat_parent),
      writesReceived(this, "writesReceived", "write transactions seen"),
      bytesReceived(this, "bytesReceived", "bytes written to the device"),
      readsServed(this, "readsServed", "register reads served"),
      name_(std::move(name)), readLatency_(read_latency),
      maxAccept_(max_accept)
{
}

void
BurstDevice::write(const bus::BusTransaction &txn, Tick now)
{
    if (txn.size > maxAccept_) {
        csb_fatal("device '", name_, "' cannot accept a ", txn.size,
                  "-byte burst (max ", maxAccept_,
                  "); see DESIGN.md / paper section 3.3");
    }
    DeviceWrite rec;
    rec.addr = txn.addr;
    rec.data = txn.data;
    rec.completionTick = now;
    writeLog_.push_back(std::move(rec));
    writesReceived += 1;
    bytesReceived += txn.size;

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonInstant(
            "dev", "burst " + std::to_string(txn.size) + "B", now,
            {{"addr", sim::trace::hexArg(txn.addr)},
             {"device", name_}});
    }
}

Tick
BurstDevice::read(const bus::BusTransaction &txn, Tick,
                  std::vector<std::uint8_t> &data)
{
    data.assign(txn.size, 0);
    for (const auto &[addr, value] : registers_) {
        if (addr >= txn.addr && addr + 8 <= txn.addr + txn.size) {
            std::memcpy(data.data() + (addr - txn.addr), &value, 8);
        }
    }
    readsServed += 1;
    return readLatency_;
}

void
BurstDevice::setRegister(Addr addr, std::uint64_t value)
{
    for (auto &[existing, stored] : registers_) {
        if (existing == addr) {
            stored = value;
            return;
        }
    }
    registers_.emplace_back(addr, value);
}

} // namespace csb::io
