#include "network_interface.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/trace_json.hh"

namespace csb::io {

NetworkInterface::NetworkInterface(sim::Simulator &simulator,
                                   bus::SystemBus &bus, Addr base,
                                   const NetworkInterfaceParams &params,
                                   std::string name,
                                   sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(1), /*eval_order=*/-3),
      sim::stats::StatGroup(name, stat_parent),
      pioMessages(this, "pioMessages", "messages sent via PIO"),
      dmaMessages(this, "dmaMessages", "messages sent via DMA"),
      bytesSent(this, "bytesSent", "payload bytes onto the wire"),
      descriptorsPushed(this, "descriptorsPushed",
                        "DMA descriptors accepted"),
      wireBusyTicks(this, "wireBusyTicks",
                    "ticks the wire spent transmitting payload"),
      messageBytes(this, "messageBytes",
                   "payload bytes per message entering the wire",
                   0, 4096, 256),
      sim_(simulator), bus_(bus), base_(base), params_(params),
      name_(std::move(name))
{
    masterId_ = bus_.registerMaster(name_ + ".dma");
    simulator.registerClocked(this);
}

void
NetworkInterface::write(const bus::BusTransaction &txn, Tick now)
{
    csb_assert(txn.addr >= base_ &&
               txn.addr + txn.size <= base_ + NiMap::windowSize,
               "write outside the NI window");
    Addr offset = txn.addr - base_;

    if (offset >= NiMap::descBase &&
        offset + txn.size <= NiMap::descBase + NiMap::descSize) {
        // Descriptor region: every non-zero doubleword is one
        // descriptor; zero doublewords are CSB padding (section 3.2).
        csb_assert(txn.size % 8 == 0, "descriptor write not dword-sized");
        for (unsigned i = 0; i < txn.size; i += 8) {
            std::uint64_t desc = 0;
            std::memcpy(&desc, txn.data.data() + i, 8);
            if (desc != 0)
                pushDescriptor(desc, now);
        }
        return;
    }

    if (offset == NiMap::doorbell && txn.size == 8) {
        std::uint64_t length = 0;
        std::memcpy(&length, txn.data.data(), 8);
        csb_assert(length > 0 && length <= pioBuffer_.size(),
                   "doorbell length ", length, " exceeds PIO buffer ",
                   pioBuffer_.size());
        // Take the first `length` bytes: CSB zero-padding, when
        // present, trails the payload of the final line burst.
        std::vector<std::uint8_t> payload(
            pioBuffer_.begin(),
            pioBuffer_.begin() + static_cast<std::ptrdiff_t>(length));
        pioBuffer_.clear();
        finishMessage(std::move(payload), now, /*via_dma=*/false);
        pioMessages += 1;
        return;
    }

    if (offset >= NiMap::pioBase &&
        offset + txn.size <= NiMap::pioBase + NiMap::pioSize) {
        // PIO window: append the payload bytes in arrival order.
        pioBuffer_.insert(pioBuffer_.end(), txn.data.begin(),
                          txn.data.end());
        return;
    }

    csb_fatal("NI write to unmapped offset 0x", std::hex, offset,
              std::dec, " size ", txn.size);
}

Tick
NetworkInterface::read(const bus::BusTransaction &txn, Tick,
                       std::vector<std::uint8_t> &data)
{
    // Status register: pending DMA jobs + messages in flight.
    data.assign(txn.size, 0);
    std::uint64_t status = dmaQueue_.size() + messagesInWire_;
    std::memcpy(data.data(), &status,
                std::min<std::size_t>(8, txn.size));
    return params_.readLatency;
}

void
NetworkInterface::pushDescriptor(std::uint64_t desc, Tick now)
{
    DmaJob job;
    job.source = desc >> 16;
    job.length = static_cast<unsigned>(desc & 0xffff);
    csb_assert(job.length > 0, "descriptor with zero length");
    job.payload.reserve(job.length);
    job.startTick = now;
    dmaQueue_.push_back(std::move(job));
    descriptorsPushed += 1;
}

void
NetworkInterface::finishMessage(std::vector<std::uint8_t> payload,
                                Tick now, bool via_dma)
{
    // Serialize onto the wire.
    Tick start = std::max(now, wireFreeAt_);
    auto tx_ticks = static_cast<Tick>(
        static_cast<double>(payload.size()) * params_.wireTicksPerByte);
    Tick send_done = start + tx_ticks;
    Tick deliver = send_done + params_.wireLatency;
    wireFreeAt_ = send_done;
    bytesSent += payload.size();
    wireBusyTicks += tx_ticks;
    messageBytes.sample(static_cast<double>(payload.size()));
    ++messagesInWire_;

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonSpan(
            "ni.wire", via_dma ? "dma msg" : "pio msg", start, send_done,
            {{"bytes", std::to_string(payload.size())},
             {"deliver", std::to_string(deliver)}});
    }

    DeliveredMessage msg;
    msg.payload = std::move(payload);
    msg.sendTick = send_done;
    msg.deliverTick = deliver;
    msg.viaDma = via_dma;
    sim_.eventQueue().scheduleFunc(deliver, [this, m = std::move(msg)] {
        delivered_.push_back(m);
        --messagesInWire_;
    });
}

void
NetworkInterface::tick()
{
    if (dmaQueue_.empty())
        return;
    DmaJob &job = dmaQueue_.front();
    Tick now = sim_.curTick();

    if (!job.startupDone) {
        if (now < job.startTick + params_.dmaStartupTicks)
            return;
        job.startupDone = true;
    }

    if (job.fetched >= job.length && job.outstanding == 0) {
        // All payload fetched: transmit.
        std::vector<std::uint8_t> payload = std::move(job.payload);
        payload.resize(job.length);
        dmaQueue_.pop_front();
        finishMessage(std::move(payload), now, /*via_dma=*/true);
        dmaMessages += 1;
        return;
    }

    // Pipeline line reads: present the next one as soon as the bus
    // port is free, up to the engine's outstanding-read limit.
    if (job.issued >= job.length ||
        job.outstanding >= params_.dmaMaxOutstanding ||
        !bus_.masterIdle(masterId_)) {
        return;
    }

    // Natural alignment: if the transfer starts mid-line, fall back
    // to the largest aligned power of two at this address.
    Addr addr = job.source + job.issued;
    unsigned size = params_.dmaBurstBytes;
    while (size > 1 && (addr % size != 0))
        size /= 2;

    job.issued += size;
    ++job.outstanding;
    bool accepted = bus_.requestRead(
        masterId_, addr, size, /*strongly_ordered=*/false,
        [this](Tick, const std::vector<std::uint8_t> &data) {
            // Responses return in issue order, so appending is safe.
            csb_assert(!dmaQueue_.empty(), "DMA response without a job");
            DmaJob &current = dmaQueue_.front();
            unsigned take = std::min<unsigned>(
                static_cast<unsigned>(data.size()),
                current.length - current.fetched);
            current.payload.insert(current.payload.end(), data.begin(),
                                   data.begin() + take);
            current.fetched += take;
            csb_assert(current.outstanding > 0, "DMA response underflow");
            --current.outstanding;
        });
    csb_assert(accepted, "bus refused DMA read despite idle master");
}

bool
NetworkInterface::idle() const
{
    return dmaQueue_.empty() && messagesInWire_ == 0;
}

} // namespace csb::io
