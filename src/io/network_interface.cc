#include "network_interface.hh"

#include <cstring>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "sim/trace_json.hh"

namespace csb::io {

namespace {

/** FNV-1a 64: cheap, deterministic, catches any single flipped byte. */
std::uint64_t
fnv1a(const std::vector<std::uint8_t> &bytes)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bytes) {
        hash ^= b;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

NetworkInterface::NetworkInterface(sim::Simulator &simulator,
                                   bus::SystemBus &bus, Addr base,
                                   const NetworkInterfaceParams &params,
                                   std::string name,
                                   sim::stats::StatGroup *stat_parent)
    : sim::Clocked(name, sim::ClockDomain(1), /*eval_order=*/-3),
      sim::stats::StatGroup(name, stat_parent),
      pioMessages(this, "pioMessages", "messages sent via PIO"),
      dmaMessages(this, "dmaMessages", "messages sent via DMA"),
      bytesSent(this, "bytesSent", "payload bytes onto the wire"),
      descriptorsPushed(this, "descriptorsPushed",
                        "DMA descriptors accepted"),
      wireBusyTicks(this, "wireBusyTicks",
                    "ticks the wire spent transmitting payload"),
      busNacks(this, "busNacks", "DMA reads NACKed on the bus"),
      busRetries(this, "busRetries",
                 "NACKed DMA reads reissued after backoff"),
      retransmits(this, "retransmits",
                  "packets retransmitted after an ack timeout"),
      duplicatesSuppressed(this, "duplicatesSuppressed",
                           "duplicate arrivals suppressed at the receiver"),
      checksumDiscards(this, "checksumDiscards",
                       "arrivals discarded for a checksum mismatch"),
      linkResets(this, "linkResets",
                 "link resets after send-budget exhaustion"),
      linkDownTicks(this, "linkDownTicks",
                    "ticks from first reset to a drained window"),
      linkRecoveries(this, "linkRecoveries",
                     "recovery episodes completed after a reset"),
      messageBytes(this, "messageBytes",
                   "payload bytes per message entering the wire",
                   0, 4096, 256),
      sim_(simulator), bus_(bus), base_(base), params_(params),
      name_(std::move(name))
{
    masterId_ = bus_.registerMaster(name_ + ".dma");
    simulator.registerClocked(this);
}

void
NetworkInterface::write(const bus::BusTransaction &txn, Tick now)
{
    csb_assert(txn.addr >= base_ &&
               txn.addr + txn.size <= base_ + NiMap::windowSize,
               "write outside the NI window");
    Addr offset = txn.addr - base_;

    if (offset >= NiMap::descBase &&
        offset + txn.size <= NiMap::descBase + NiMap::descSize) {
        // Descriptor region: every non-zero doubleword is one
        // descriptor; zero doublewords are CSB padding (section 3.2).
        csb_assert(txn.size % 8 == 0, "descriptor write not dword-sized");
        for (unsigned i = 0; i < txn.size; i += 8) {
            std::uint64_t desc = 0;
            std::memcpy(&desc, txn.data.data() + i, 8);
            if (desc != 0)
                pushDescriptor(desc, now);
        }
        return;
    }

    if (offset == NiMap::doorbell && txn.size == 8) {
        std::uint64_t length = 0;
        std::memcpy(&length, txn.data.data(), 8);
        csb_assert(length > 0 && length <= pioBuffer_.size(),
                   "doorbell length ", length, " exceeds PIO buffer ",
                   pioBuffer_.size());
        // Take the first `length` bytes: CSB zero-padding, when
        // present, trails the payload of the final line burst.
        std::vector<std::uint8_t> payload(
            pioBuffer_.begin(),
            pioBuffer_.begin() + static_cast<std::ptrdiff_t>(length));
        pioBuffer_.clear();
        finishMessage(std::move(payload), now, /*via_dma=*/false);
        pioMessages += 1;
        return;
    }

    if (offset >= NiMap::pioBase &&
        offset + txn.size <= NiMap::pioBase + NiMap::pioSize) {
        // PIO window: append the payload bytes in arrival order.
        pioBuffer_.insert(pioBuffer_.end(), txn.data.begin(),
                          txn.data.end());
        return;
    }

    csb_fatal("NI write to unmapped offset 0x", std::hex, offset,
              std::dec, " size ", txn.size);
}

Tick
NetworkInterface::read(const bus::BusTransaction &txn, Tick,
                       std::vector<std::uint8_t> &data)
{
    // Status register: pending DMA jobs + messages in flight.
    data.assign(txn.size, 0);
    std::uint64_t status = dmaQueue_.size() + messagesInWire_;
    std::memcpy(data.data(), &status,
                std::min<std::size_t>(8, txn.size));
    return params_.readLatency;
}

void
NetworkInterface::pushDescriptor(std::uint64_t desc, Tick now)
{
    ungate();
    DmaJob job;
    job.source = desc >> 16;
    job.length = static_cast<unsigned>(desc & 0xffff);
    csb_assert(job.length > 0, "descriptor with zero length");
    // Pre-sized so each read response lands at its own offset; with
    // in-order responses this is byte-identical to appending, and it
    // stays correct when a NACKed read completes out of order.
    job.payload.assign(job.length, 0);
    job.startTick = now;
    dmaQueue_.push_back(std::move(job));
    descriptorsPushed += 1;
}

void
NetworkInterface::finishMessage(std::vector<std::uint8_t> payload,
                                Tick now, bool via_dma)
{
    std::uint64_t seq = nextSeq_++;
    messageBytes.sample(static_cast<double>(payload.size()));
    ++messagesInWire_;

    if (reliableMode()) {
        WirePacket pkt;
        pkt.seq = seq;
        pkt.checksum = fnv1a(payload);
        pkt.payload = std::move(payload);
        pkt.viaDma = via_dma;
        pkt.firstSendTick = now;
        unacked_.emplace(seq, std::move(pkt));
        transmitPacket(seq, now);
        return;
    }

    // Legacy lossless wire: serialize and schedule the delivery.
    Tick start = std::max(now, wireFreeAt_);
    auto tx_ticks = static_cast<Tick>(
        static_cast<double>(payload.size()) * params_.wireTicksPerByte);
    Tick send_done = start + tx_ticks;
    Tick deliver = send_done + params_.wireLatency;
    wireFreeAt_ = send_done;
    bytesSent += payload.size();
    wireBusyTicks += tx_ticks;

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonSpan(
            "ni.wire", via_dma ? "dma msg" : "pio msg", start, send_done,
            {{"bytes", std::to_string(payload.size())},
             {"deliver", std::to_string(deliver)}});
    }

    DeliveredMessage msg;
    msg.payload = std::move(payload);
    msg.sendTick = send_done;
    msg.deliverTick = deliver;
    msg.viaDma = via_dma;
    msg.seq = seq;
    sim_.eventQueue().scheduleFunc(deliver, [this, m = std::move(msg)] {
        delivered_.push_back(m);
        --messagesInWire_;
    });
}

void
NetworkInterface::transmitPacket(std::uint64_t seq, Tick now)
{
    auto it = unacked_.find(seq);
    csb_assert(it != unacked_.end(), "transmit of an unknown packet");
    WirePacket &pkt = it->second;
    ++pkt.attempts;
    if (pkt.attempts > params_.maxSendAttempts) {
        if (!params_.linkReset) {
            csb_fatal(name_, ": packet seq=", seq,
                      " undeliverable after ", params_.maxSendAttempts,
                      " send attempts");
        }
        performLinkReset(now);
        return;
    }

    Tick start = std::max(now, wireFreeAt_);
    auto tx_ticks = static_cast<Tick>(
        static_cast<double>(pkt.payload.size()) *
        params_.wireTicksPerByte);
    Tick send_done = start + tx_ticks;
    Tick arrival = send_done + params_.wireLatency;
    wireFreeAt_ = send_done;
    bytesSent += pkt.payload.size();
    wireBusyTicks += tx_ticks;

    // The wire decides the packet's fate the moment it is sent; the
    // sender only ever learns through a (missing) acknowledgment.
    bool dropped =
        injector_ &&
        injector_->shouldFault(sim::FaultSite::WireDrop, send_done);
    bool corrupted =
        !dropped && injector_ &&
        injector_->shouldFault(sim::FaultSite::WireCorrupt, send_done);

    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonSpan(
            "ni.wire", pkt.viaDma ? "dma msg" : "pio msg", start,
            send_done,
            {{"bytes", std::to_string(pkt.payload.size())},
             {"seq", std::to_string(seq)},
             {"attempt", std::to_string(pkt.attempts)},
             {"fate", dropped ? "dropped"
                              : (corrupted ? "corrupted" : "clean")}});
    }

    if (!dropped) {
        std::vector<std::uint8_t> wire_bytes = pkt.payload;
        if (corrupted && !wire_bytes.empty()) {
            // Deterministic single-byte flip; FNV-1a catches it.
            wire_bytes[seq % wire_bytes.size()] ^= 0xff;
        }
        sim_.eventQueue().scheduleFunc(
            arrival,
            [this, seq, wire_bytes = std::move(wire_bytes),
             claimed = pkt.checksum, send_done, arrival,
             via_dma = pkt.viaDma]() mutable {
                receivePacket(seq, std::move(wire_bytes), claimed,
                              send_done, arrival, via_dma);
            });
    }

    // Ack timeout: retransmit unless an ack (for any attempt) landed
    // first.  The attempt check disarms stale timers after an earlier
    // retransmission already went out.
    sim_.eventQueue().scheduleFunc(
        send_done + params_.retransmitTimeout,
        [this, seq, attempt = pkt.attempts] {
            auto pending = unacked_.find(seq);
            if (pending == unacked_.end() ||
                pending->second.attempts != attempt) {
                return;
            }
            retransmits += 1;
            if (sim::trace::jsonEnabled()) {
                sim::trace::jsonInstant(
                    "ni.wire", "retransmit", sim_.curTick(),
                    {{"seq", std::to_string(seq)},
                     {"attempt",
                      std::to_string(pending->second.attempts + 1)}});
            }
            transmitPacket(seq, sim_.curTick());
        });
}

void
NetworkInterface::receivePacket(std::uint64_t seq,
                                std::vector<std::uint8_t> wire_bytes,
                                std::uint64_t claimed_checksum,
                                Tick send_done, Tick arrival, bool via_dma)
{
    if (fnv1a(wire_bytes) != claimed_checksum) {
        checksumDiscards += 1;
        if (sim::trace::jsonEnabled()) {
            sim::trace::jsonInstant(
                "ni.wire", "checksum-discard", arrival,
                {{"seq", std::to_string(seq)}});
        }
        return; // no ack; the sender's timeout will retransmit
    }

    bool duplicate = deliveredSeqs_.count(seq) != 0;
    if (duplicate) {
        duplicatesSuppressed += 1;
        if (sim::trace::jsonEnabled()) {
            sim::trace::jsonInstant(
                "ni.wire", "dup-suppressed", arrival,
                {{"seq", std::to_string(seq)}});
        }
    } else {
        deliveredSeqs_.insert(seq);
        DeliveredMessage msg;
        msg.payload = std::move(wire_bytes);
        msg.sendTick = send_done;
        msg.deliverTick = arrival;
        msg.viaDma = via_dma;
        msg.seq = seq;
        delivered_.push_back(std::move(msg));
        --messagesInWire_;
    }

    // Acknowledge (even duplicates: the earlier ack may have been
    // lost) unless the ack itself is dropped.
    if (injector_ && injector_->shouldFault(sim::FaultSite::AckDrop,
                                            arrival))
        return;
    sim_.eventQueue().scheduleFunc(
        arrival + params_.ackLatency, [this, seq] {
            unacked_.erase(seq);
            if (unacked_.empty() && resetStartTick_ != maxTick) {
                // The retransmit window drained: the recovery episode
                // that started at the first link reset is over.
                linkDownTicks += sim_.curTick() - resetStartTick_;
                linkRecoveries += 1;
                resetStartTick_ = maxTick;
            }
        });
}

void
NetworkInterface::performLinkReset(Tick now)
{
    linkResets += 1;
    if (resetStartTick_ == maxTick)
        resetStartTick_ = now;
    sim::trace::log("ni", "link reset at ", now, ", replaying ",
                    unacked_.size(), " unacked packets");
    if (sim::trace::jsonEnabled()) {
        sim::trace::jsonInstant(
            "ni.wire", "link-reset", now,
            {{"unacked", std::to_string(unacked_.size())}});
    }

    // Quiesce: nothing enters the wire until the reset completes.
    Tick up_at = now + params_.linkResetLatency;
    wireFreeAt_ = std::max(wireFreeAt_, up_at);

    // Reinit the DMA engine's retry state: NACKed reads restart with
    // a fresh budget once the link is healthy again.
    for (DmaRetry &retry : dmaRetries_)
        retry.attempt = 0;

    // Zeroing attempts disarms every stale retransmit timer (they
    // check the attempt they were armed with).  The replay below
    // re-arms fresh ones.
    for (auto &[seq, pkt] : unacked_)
        pkt.attempts = 0;

    sim_.eventQueue().scheduleFunc(up_at, [this] {
        // Replay the retransmit window in sequence order; packets
        // acked while the link was down have left the map already.
        // std::map iterates in ascending seq order, but transmits
        // mutate wireFreeAt_, so collect the seqs first.
        std::vector<std::uint64_t> seqs;
        seqs.reserve(unacked_.size());
        for (const auto &[seq, pkt] : unacked_)
            seqs.push_back(seq);
        for (std::uint64_t seq : seqs)
            transmitPacket(seq, sim_.curTick());
        sim_.noteProgress();
    });
}

void
NetworkInterface::tick()
{
    if (dmaQueue_.empty()) {
        // The wire side is fully event-driven; only the DMA engine
        // needs edges, so sleep until a descriptor arrives.
        gate();
        return;
    }
    DmaJob &job = dmaQueue_.front();
    Tick now = sim_.curTick();

    if (!job.startupDone) {
        if (now < job.startTick + params_.dmaStartupTicks)
            return;
        job.startupDone = true;
    }

    // NACKed reads reissue before new ones.  A pending retry implies
    // fetched < length, so the job cannot complete under it.
    if (!dmaRetries_.empty()) {
        DmaRetry &head = dmaRetries_.front();
        if (now < head.earliest || !bus_.masterIdle(masterId_))
            return;
        DmaRetry redo = head;
        dmaRetries_.pop_front();
        ++job.outstanding;
        issueDmaRead(redo.addr, redo.size, redo.offset, redo.attempt);
        return;
    }

    if (job.fetched >= job.length && job.outstanding == 0) {
        // All payload fetched: transmit.
        std::vector<std::uint8_t> payload = std::move(job.payload);
        dmaQueue_.pop_front();
        finishMessage(std::move(payload), now, /*via_dma=*/true);
        dmaMessages += 1;
        return;
    }

    // Pipeline line reads: present the next one as soon as the bus
    // port is free, up to the engine's outstanding-read limit.
    if (job.issued >= job.length ||
        job.outstanding >= params_.dmaMaxOutstanding ||
        !bus_.masterIdle(masterId_)) {
        return;
    }

    // Natural alignment: if the transfer starts mid-line, fall back
    // to the largest aligned power of two at this address.
    Addr addr = job.source + job.issued;
    unsigned size = params_.dmaBurstBytes;
    while (size > 1 && (addr % size != 0))
        size /= 2;

    unsigned offset = job.issued;
    job.issued += size;
    ++job.outstanding;
    issueDmaRead(addr, size, offset, /*attempt=*/0);
}

void
NetworkInterface::issueDmaRead(Addr addr, unsigned size, unsigned offset,
                               unsigned attempt)
{
    bool accepted = bus_.requestRead(
        masterId_, addr, size, /*strongly_ordered=*/false,
        [this, addr, size, offset,
         attempt](Tick when, bus::BusStatus status,
                  const std::vector<std::uint8_t> &data) {
            csb_assert(!dmaQueue_.empty(), "DMA response without a job");
            DmaJob &current = dmaQueue_.front();
            csb_assert(current.outstanding > 0, "DMA response underflow");
            --current.outstanding;
            if (status == bus::BusStatus::Ok) {
                unsigned take = std::min<unsigned>(
                    static_cast<unsigned>(data.size()),
                    current.length - offset);
                std::memcpy(current.payload.data() + offset, data.data(),
                            take);
                current.fetched += take;
                return;
            }
            if (status == bus::BusStatus::Error) {
                csb_fatal(name_, ": bus error on DMA read at 0x",
                          std::hex, addr);
            }
            busNacks += 1;
            if (attempt + 1 >= params_.retry.maxAttempts) {
                csb_fatal(name_, ": DMA read retries exhausted (",
                          params_.retry.maxAttempts, ") at 0x", std::hex,
                          addr);
            }
            busRetries += 1;
            dmaRetries_.push_back(DmaRetry{
                addr, size, offset, attempt + 1,
                when + params_.retry.backoffFor(attempt + 1)});
        });
    csb_assert(accepted, "bus refused DMA read despite idle master");
}

bool
NetworkInterface::idle() const
{
    return dmaQueue_.empty() && dmaRetries_.empty() &&
           messagesInWire_ == 0 && unacked_.empty();
}

void
NetworkInterface::checkpointSave(sim::CheckpointWriter &cw) const
{
    csb_assert(idle(), "NI checkpoint requires an idle NI");
    cw.putU64(pioBuffer_.size());
    if (!pioBuffer_.empty())
        cw.putBytes(pioBuffer_.data(), pioBuffer_.size());
    cw.putU64(wireFreeAt_);
    cw.putU64(nextSeq_);
    cw.putU64(delivered_.size());
    for (const DeliveredMessage &msg : delivered_) {
        cw.putU64(msg.payload.size());
        if (!msg.payload.empty())
            cw.putBytes(msg.payload.data(), msg.payload.size());
        cw.putU64(msg.sendTick);
        cw.putU64(msg.deliverTick);
        cw.putU8(msg.viaDma ? 1 : 0);
        cw.putU64(msg.seq);
    }
    cw.putU64(deliveredSeqs_.size());
    for (std::uint64_t seq : deliveredSeqs_)
        cw.putU64(seq);
}

void
NetworkInterface::checkpointRestore(sim::CheckpointReader &cr)
{
    csb_assert(idle() && pioBuffer_.empty() && delivered_.empty(),
               "NI checkpoint restore into a used NI");
    const std::uint64_t pio_bytes = cr.getU64();
    if (pio_bytes > 0) {
        pioBuffer_ = cr.getBytes();
        csb_assert(pioBuffer_.size() == pio_bytes, "NI PIO payload size");
    }
    wireFreeAt_ = cr.getU64();
    nextSeq_ = cr.getU64();
    const std::uint64_t delivered = cr.getU64();
    delivered_.reserve(delivered);
    for (std::uint64_t i = 0; i < delivered; ++i) {
        DeliveredMessage msg;
        const std::uint64_t payload_bytes = cr.getU64();
        if (payload_bytes > 0) {
            msg.payload = cr.getBytes();
            csb_assert(msg.payload.size() == payload_bytes,
                       "NI message payload size");
        }
        msg.sendTick = cr.getU64();
        msg.deliverTick = cr.getU64();
        msg.viaDma = cr.getU8() != 0;
        msg.seq = cr.getU64();
        delivered_.push_back(std::move(msg));
    }
    const std::uint64_t seqs = cr.getU64();
    for (std::uint64_t i = 0; i < seqs; ++i)
        deliveredSeqs_.insert(cr.getU64());
}

void
NetworkInterface::debugDump(std::ostream &os) const
{
    os << "dmaJobs=" << dmaQueue_.size()
       << " dmaRetries=" << dmaRetries_.size()
       << " messagesInWire=" << messagesInWire_
       << " unacked=" << unacked_.size()
       << " delivered=" << delivered_.size()
       << " wireFreeAt=" << wireFreeAt_;
    if (resetStartTick_ != maxTick)
        os << " linkDownSince=" << resetStartTick_;
    if (!dmaRetries_.empty()) {
        const DmaRetry &head = dmaRetries_.front();
        os << "\n  dmaRetry head: addr=0x" << std::hex << head.addr
           << std::dec << " attempt=" << head.attempt << " earliest="
           << head.earliest;
    }
    for (const auto &[seq, pkt] : unacked_) {
        os << "\n  unacked seq=" << seq << " attempts=" << pkt.attempts
           << '/' << params_.maxSendAttempts << " firstSend="
           << pkt.firstSendTick;
    }
}

} // namespace csb::io
