#include "shrink.hh"

#include "sim/logging.hh"

namespace csb::litmus {

namespace {

/** Wrap the user predicate to count evaluations. */
struct CountingPredicate
{
    const FailPredicate &fails;
    ShrinkStats &stats;

    bool
    operator()(const TestCase &tc) const
    {
        ++stats.evaluations;
        return fails(tc);
    }
};

/** Try to drop whole contexts (highest index first, keeps pids). */
bool
shrinkContexts(TestCase &tc, const CountingPredicate &fails)
{
    bool changed = false;
    for (std::size_t i = tc.contexts.size(); i-- > 0;) {
        if (tc.contexts.size() == 1)
            break;
        TestCase candidate = tc;
        candidate.contexts.erase(candidate.contexts.begin() +
                                 std::ptrdiff_t(i));
        if (fails(candidate)) {
            tc = std::move(candidate);
            changed = true;
        }
    }
    return changed;
}

/**
 * Classic ddmin over one context's token list: try removing chunks,
 * halving the chunk size until single tokens have been tried.
 */
bool
ddminTokens(TestCase &tc, std::size_t ctx,
            const CountingPredicate &fails)
{
    bool changed = false;
    std::size_t chunk = tc.contexts[ctx].tokens.size() / 2;
    if (chunk == 0)
        chunk = 1;
    while (true) {
        if (tc.contexts[ctx].tokens.empty())
            break;
        bool removed_any = false;
        for (std::size_t start = 0;
             start < tc.contexts[ctx].tokens.size();) {
            std::size_t len =
                std::min(chunk, tc.contexts[ctx].tokens.size() - start);
            if (len == 0)
                break;
            TestCase candidate = tc;
            auto &cand_tokens = candidate.contexts[ctx].tokens;
            cand_tokens.erase(cand_tokens.begin() +
                                  std::ptrdiff_t(start),
                              cand_tokens.begin() +
                                  std::ptrdiff_t(start + len));
            if (fails(candidate)) {
                tc = std::move(candidate);
                removed_any = true;
                changed = true;
                // Same start now points at the next chunk.
            } else {
                start += len;
            }
        }
        if (chunk == 1 && !removed_any)
            break;
        if (!removed_any)
            chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return changed;
}

/** Per-token simplifications: fewer burst stores, simpler values. */
bool
simplifyTokens(TestCase &tc, const CountingPredicate &fails)
{
    bool changed = false;
    for (std::size_t c = 0; c < tc.contexts.size(); ++c) {
        for (std::size_t i = 0; i < tc.contexts[c].tokens.size(); ++i) {
            const Token &tok = tc.contexts[c].tokens[i];
            // Fewer stores in a burst lowers to fewer instructions.
            if ((tok.kind == TokenKind::CsbBurst ||
                 tok.kind == TokenKind::UnflushedStores) &&
                tok.nStores > 1) {
                TestCase candidate = tc;
                candidate.contexts[c].tokens[i].nStores = 1;
                if (fails(candidate)) {
                    tc = std::move(candidate);
                    changed = true;
                    continue;
                }
            }
            if (tok.value > 1) {
                TestCase candidate = tc;
                candidate.contexts[c].tokens[i].value = 1;
                if (fails(candidate)) {
                    tc = std::move(candidate);
                    changed = true;
                }
            }
        }
    }
    return changed;
}

} // namespace

TestCase
shrink(TestCase tc, const FailPredicate &fails, ShrinkStats *stats)
{
    ShrinkStats local;
    ShrinkStats &st = stats ? *stats : local;
    CountingPredicate counted{fails, st};

    if (!counted(tc))
        csb_fatal("shrink: the input case does not fail");

    bool changed = true;
    while (changed) {
        ++st.rounds;
        changed = false;
        changed |= shrinkContexts(tc, counted);
        for (std::size_t c = 0; c < tc.contexts.size(); ++c)
            changed |= ddminTokens(tc, c, counted);
        changed |= simplifyTokens(tc, counted);
    }
    return tc;
}

} // namespace csb::litmus
