/**
 * @file
 * Seeded random litmus-case generator.
 *
 * Pure function of the seed: the same seed always yields the same
 * TestCase, on any host and at any thread count, because the only
 * entropy source is one sim::Random stream derived from the seed.
 * The token mix is deliberately biased toward the interleavings the
 * paper's correctness argument depends on: combining bursts and their
 * retry loops, deliberately discarded (unflushed) stores, probe
 * flushes that clear a colleague's accumulation mid-burst under
 * time-sharing, plain uncached traffic that must stay strongly
 * ordered, MEMBARs, and cached traffic to keep the pipeline's
 * load/store machinery honest.
 */

#ifndef CSB_LITMUS_GENERATOR_HH
#define CSB_LITMUS_GENERATOR_HH

#include <cstdint>

#include "testcase.hh"

namespace csb::litmus {

struct GeneratorOptions
{
    /** Mean tokens per context (actual count varies a little). */
    unsigned tokensPerContext = 12;
};

/** Contexts the case for @p seed will have (1, 2 or 4). */
unsigned contextsForSeed(std::uint64_t seed);

/** Deterministically generate the case for @p seed. */
TestCase generate(std::uint64_t seed,
                  const GeneratorOptions &opts = GeneratorOptions());

} // namespace csb::litmus

#endif // CSB_LITMUS_GENERATOR_HH
