#include "testcase.hh"

#include <sstream>

#include "sim/logging.hh"

namespace csb::litmus {

using isa::ir;

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::CachedStore: return "cached-store";
      case TokenKind::CachedLoad: return "cached-load";
      case TokenKind::Alu: return "alu";
      case TokenKind::CsbBurst: return "csb-burst";
      case TokenKind::UnflushedStores: return "unflushed";
      case TokenKind::ProbeFlush: return "probe-flush";
      case TokenKind::UncachedStore: return "uncached-store";
      case TokenKind::UncachedSwap: return "uncached-swap";
      case TokenKind::Membar: return "membar";
    }
    return "?";
}

namespace {

/** Deterministic per-store data for burst store @p i. */
std::uint64_t
burstValue(std::uint64_t base, unsigned i)
{
    return base ^ ((i + 1) * 0x9e3779b97f4a7c15ULL);
}

void
emitStore(isa::Program &p, unsigned size, isa::RegId data,
          isa::RegId base, std::int64_t off)
{
    switch (size) {
      case 1: p.stb(data, base, off); break;
      case 4: p.stw(data, base, off); break;
      case 8: p.std_(data, base, off); break;
      default: csb_fatal("litmus: bad store size ", size);
    }
}

void
emitLoad(isa::Program &p, unsigned size, isa::RegId rd, isa::RegId base,
         std::int64_t off)
{
    switch (size) {
      case 1: p.ldb(rd, base, off); break;
      case 4: p.ldw(rd, base, off); break;
      case 8: p.ldd(rd, base, off); break;
      default: csb_fatal("litmus: bad load size ", size);
    }
}

bool
usesArena(const Token &t)
{
    return t.kind == TokenKind::CachedStore ||
           t.kind == TokenKind::CachedLoad;
}

bool
usesUncached(const Token &t)
{
    return t.kind == TokenKind::UncachedStore ||
           t.kind == TokenKind::UncachedSwap;
}

bool
usesCsb(const Token &t)
{
    return t.kind == TokenKind::CsbBurst ||
           t.kind == TokenKind::UnflushedStores ||
           t.kind == TokenKind::ProbeFlush;
}

} // namespace

isa::Program
lowerContext(const TestCase &tc, std::size_t ctx)
{
    csb_assert(ctx < tc.contexts.size(), "litmus: bad context index");
    const ContextProgram &cp = tc.contexts[ctx];

    // Base registers are only materialized when a token needs them, so
    // a shrunk single-token case lowers to the fewest instructions the
    // mini-ISA allows (the <= 20 instruction repro bound depends on
    // this).
    bool need_arena = false, need_unc = false, need_csb = false;
    for (const Token &t : cp.tokens) {
        need_arena |= usesArena(t);
        need_unc |= usesUncached(t);
        need_csb |= usesCsb(t);
    }

    // Register map: r1/r2/r3 = arena/uncached/CSB window bases,
    // r4 = store data, r5 = load/probe accumulator, r6 = ALU mixer,
    // r9/r12 = flush retry expected/compare, r10 = last load value.
    isa::Program p;
    if (need_arena)
        p.li(ir(1), static_cast<std::int64_t>(arenaBase(ctx)));
    if (need_unc)
        p.li(ir(2), static_cast<std::int64_t>(uncachedWindow(ctx)));
    if (need_csb)
        p.li(ir(3), static_cast<std::int64_t>(csbWindow(ctx)));

    for (const Token &t : cp.tokens) {
        std::int64_t slot_off = std::int64_t(t.slot % numSlots) * 8;
        std::int64_t line_off = std::int64_t(t.line % numLines) * 64;
        unsigned n = std::min<unsigned>(std::max<unsigned>(t.nStores, 1),
                                        maxBurstStores);
        switch (t.kind) {
          case TokenKind::CachedStore:
            p.li(ir(4), static_cast<std::int64_t>(t.value));
            emitStore(p, t.size, ir(4), ir(1), slot_off);
            break;
          case TokenKind::CachedLoad:
            emitLoad(p, t.size, ir(10), ir(1), slot_off);
            p.add_(ir(5), ir(5), ir(10));
            break;
          case TokenKind::Alu:
            p.li(ir(4), static_cast<std::int64_t>(t.value));
            p.xor_(ir(6), ir(6), ir(4));
            break;
          case TokenKind::CsbBurst: {
            // The paper's retry-loop idiom (section 3.2, also
            // core::makeCsbStoreKernel): re-run the whole burst until
            // the conditional flush reports the expected hit count.
            isa::Label retry = p.newLabel();
            p.bind(retry);
            for (unsigned i = 0; i < n; ++i) {
                p.li(ir(4),
                     static_cast<std::int64_t>(burstValue(t.value, i)));
                emitStore(p, t.size, ir(4), ir(3),
                          line_off + std::int64_t(i) * 8);
            }
            p.li(ir(9), static_cast<std::int64_t>(n));
            p.swap(ir(9), ir(3), line_off);
            p.li(ir(12), static_cast<std::int64_t>(n));
            p.bne(ir(9), ir(12), retry);
            break;
          }
          case TokenKind::UnflushedStores:
            // The discard path: combining stores that are never
            // flushed must leave no trace on the device.
            for (unsigned i = 0; i < n; ++i) {
                p.li(ir(4),
                     static_cast<std::int64_t>(burstValue(t.value, i)));
                emitStore(p, t.size, ir(4), ir(3),
                          line_off + std::int64_t(i) * 8);
            }
            break;
          case TokenKind::ProbeFlush:
            // expected = 0 can never match a non-zero hit counter, so
            // this flush fails deterministically (and clears whatever
            // happened to be accumulating).
            p.li(ir(9), 0);
            p.swap(ir(9), ir(3), line_off);
            p.add_(ir(5), ir(5), ir(9));
            break;
          case TokenKind::UncachedStore:
            p.li(ir(4), static_cast<std::int64_t>(t.value));
            emitStore(p, t.size, ir(4), ir(2), slot_off);
            break;
          case TokenKind::UncachedSwap:
            // Device registers are never programmed: the old value is
            // deterministically zero on every model.
            p.li(ir(4), static_cast<std::int64_t>(t.value));
            p.swap(ir(4), ir(2), slot_off);
            p.add_(ir(5), ir(5), ir(4));
            break;
          case TokenKind::Membar:
            p.membar();
            break;
        }
    }
    p.halt();
    p.finalize();
    return p;
}

// Layout invariants "disjoint by construction" rests on: every span a
// context can touch fits strictly inside its per-context stride, so
// neighbouring contexts can never overlap no matter what in-range
// indices the generator draws.
static_assert(arenaBase(1) - arenaBase(0) >= arenaBytes,
              "arena stride must cover the touchable arena span");
static_assert(numSlots * 8 <= arenaBytes,
              "slot indices must stay inside the arena span");
static_assert(numSlots * 8 <= 0x1000,
              "slot indices must stay inside the uncached-window stride");
static_assert((numLines - 1) * 64 + maxBurstStores * 8 <= 0x1000,
              "a max burst must stay inside the CSB-window stride");

void
TestCase::validateDisjointness() const
{
    constexpr Addr windowStride = 0x1000;
    constexpr std::size_t maxContexts =
        core::System::ioRegionSize / windowStride;
    if (contexts.size() > maxContexts)
        csb_fatal("litmus disjointness: ", contexts.size(),
                  " contexts exceed the ", maxContexts,
                  " disjoint device windows the I/O regions provide");
    if (!contexts.empty() &&
        arenaBase(contexts.size() - 1) + arenaBytes >
            core::System::ramBase + core::System::ramSize)
        csb_fatal("litmus disjointness: arena of context ",
                  contexts.size() - 1, " falls outside RAM");

    for (std::size_t ctx = 0; ctx < contexts.size(); ++ctx) {
        const ContextProgram &cp = contexts[ctx];
        for (std::size_t i = 0; i < cp.tokens.size(); ++i) {
            const Token &t = cp.tokens[i];
            auto fail = [&](const auto &...why) {
                // A minimal single-token repro: paste into a .litmus
                // file (or fromText) to reproduce the rejection.
                TestCase repro;
                repro.seed = seed;
                repro.contexts.push_back(ContextProgram{cp.pid, {t}});
                csb_fatal("litmus disjointness: context ", ctx,
                          " token ", i, " (", tokenKindName(t.kind),
                          "): ", why..., "; minimal repro:\n",
                          repro.toText());
            };
            if ((usesArena(t) || usesUncached(t)) && t.slot >= numSlots)
                fail("slot ", unsigned(t.slot), " >= ", numSlots,
                     " escapes the per-context window");
            if (usesCsb(t) && t.line >= numLines)
                fail("line ", unsigned(t.line), " >= ", numLines,
                     " escapes the per-context CSB window");
            if ((t.kind == TokenKind::CsbBurst ||
                 t.kind == TokenKind::UnflushedStores) &&
                (t.nStores < 1 || t.nStores > maxBurstStores))
                fail("burst of ", unsigned(t.nStores),
                     " stores outside 1..", maxBurstStores);
            bool sized = usesArena(t) || t.kind == TokenKind::UncachedStore ||
                         t.kind == TokenKind::CsbBurst ||
                         t.kind == TokenKind::UnflushedStores;
            if (sized && t.size != 1 && t.size != 4 && t.size != 8)
                fail("access size ", unsigned(t.size), " is not 1/4/8");
        }
    }
}

std::size_t
TestCase::loweredInstructionCount() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < contexts.size(); ++i)
        total += lowerContext(*this, i).size();
    return total;
}

std::string
TestCase::toText() const
{
    std::ostringstream os;
    os << "# csbsim litmus case v1\n";
    os << "case seed=" << seed << "\n";
    for (const ContextProgram &cp : contexts) {
        os << "context pid=" << cp.pid << "\n";
        for (const Token &t : cp.tokens) {
            os << "  " << tokenKindName(t.kind);
            switch (t.kind) {
              case TokenKind::CachedStore:
              case TokenKind::UncachedStore:
                os << " size=" << unsigned(t.size)
                   << " slot=" << unsigned(t.slot) << " value=0x"
                   << std::hex << t.value << std::dec;
                break;
              case TokenKind::CachedLoad:
                os << " size=" << unsigned(t.size)
                   << " slot=" << unsigned(t.slot);
                break;
              case TokenKind::Alu:
                os << " value=0x" << std::hex << t.value << std::dec;
                break;
              case TokenKind::CsbBurst:
              case TokenKind::UnflushedStores:
                os << " line=" << unsigned(t.line)
                   << " stores=" << unsigned(t.nStores)
                   << " size=" << unsigned(t.size) << " value=0x"
                   << std::hex << t.value << std::dec;
                break;
              case TokenKind::ProbeFlush:
                os << " line=" << unsigned(t.line);
                break;
              case TokenKind::UncachedSwap:
                os << " slot=" << unsigned(t.slot) << " value=0x"
                   << std::hex << t.value << std::dec;
                break;
              case TokenKind::Membar:
                break;
            }
            os << "\n";
        }
        os << "end\n";
    }
    return os.str();
}

namespace {

/** Parse "key=value" pairs following a keyword. */
std::uint64_t
fieldValue(const std::string &line, const std::string &key,
           std::uint64_t fallback, bool required = false)
{
    std::string needle = key + "=";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos) {
        if (required)
            csb_fatal("litmus parse: missing '", key, "' in: ", line);
        return fallback;
    }
    try {
        return std::stoull(line.substr(pos + needle.size()), nullptr, 0);
    } catch (const std::exception &) {
        csb_fatal("litmus parse: bad value for '", key, "' in: ", line);
    }
}

TokenKind
kindFromName(const std::string &name)
{
    for (unsigned k = 0; k <= unsigned(TokenKind::Membar); ++k) {
        TokenKind kind = static_cast<TokenKind>(k);
        if (name == tokenKindName(kind))
            return kind;
    }
    csb_fatal("litmus parse: unknown token kind '", name, "'");
}

} // namespace

TestCase
TestCase::fromText(const std::string &text)
{
    TestCase tc;
    ContextProgram current;
    bool in_context = false;
    bool saw_case = false;

    std::istringstream is(text);
    std::string raw;
    while (std::getline(is, raw)) {
        std::size_t start = raw.find_first_not_of(" \t\r");
        if (start == std::string::npos)
            continue;
        std::string line = raw.substr(start);
        if (line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        // Harness-owned directives live in the same file; skip them.
        if (word == "run" || word == "expect")
            continue;
        if (word == "case") {
            if (saw_case)
                csb_fatal("litmus parse: duplicate 'case' line");
            saw_case = true;
            tc.seed = fieldValue(line, "seed", 0);
            continue;
        }
        if (word == "context") {
            if (in_context)
                csb_fatal("litmus parse: nested 'context' block");
            in_context = true;
            current = ContextProgram{};
            current.pid = static_cast<ProcId>(
                fieldValue(line, "pid", tc.contexts.size() + 1));
            continue;
        }
        if (word == "end") {
            if (!in_context)
                csb_fatal("litmus parse: stray 'end'");
            in_context = false;
            tc.contexts.push_back(std::move(current));
            continue;
        }
        if (!in_context)
            csb_fatal("litmus parse: token outside context: ", line);
        Token t;
        t.kind = kindFromName(word);
        t.size = static_cast<std::uint8_t>(fieldValue(line, "size", 8));
        t.line = static_cast<std::uint8_t>(fieldValue(line, "line", 0));
        t.nStores =
            static_cast<std::uint8_t>(fieldValue(line, "stores", 1));
        t.slot = static_cast<std::uint8_t>(fieldValue(line, "slot", 0));
        t.value = fieldValue(line, "value", 0);
        if (t.size != 1 && t.size != 4 && t.size != 8)
            csb_fatal("litmus parse: bad size in: ", line);
        current.tokens.push_back(t);
    }
    if (in_context)
        csb_fatal("litmus parse: unterminated context block");
    if (!saw_case)
        csb_fatal("litmus parse: missing 'case' line");
    if (tc.contexts.empty())
        csb_fatal("litmus parse: no contexts");
    return tc;
}

} // namespace csb::litmus
