/**
 * @file
 * The litmus harness: seeded sweeps, shrinking, repros and the
 * regression corpus.
 *
 * runHarness() checks a range of generator seeds, each against the
 * hardware matrix specsForSeed() derives for it, in parallel over the
 * PR-4 SweepRunner.  The report is byte-identical at any --jobs: work
 * is collected by seed index, never completion order, and contains no
 * wall-clock content (timing goes to a separate stream).  A failing
 * seed is shrunk (deterministically, see shrink.hh) against its first
 * failing spec, rendered into the report, and -- when a repro
 * directory is configured -- written out as a self-contained corpus
 * entry: the `.litmus` file carries the run spec and expectation
 * directives plus the shrunk case, and a companion `.csbt` file
 * carries the cycle model's reference trace (PR-5 recorder).
 *
 * replayCorpus() re-checks every checked-in entry: `expect pass`
 * entries must pass all their recorded specs, `expect fail` entries
 * (bug-knob repros) must still fail every one, and a `trace=` file
 * must be reproduced byte-for-byte.
 */

#ifndef CSB_LITMUS_HARNESS_HH
#define CSB_LITMUS_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "oracle.hh"

namespace csb::litmus {

/**
 * Schedule the scheduled-fault matrix axis runs by default: a
 * 25%/10% write/read-NACK burst window covering the start of every
 * case (litmus runs begin at tick 0 and finish within a few thousand
 * ticks).  The rates are far above the uniform 1% axis but inside
 * the retry budget, so clean hardware must still converge.
 */
inline constexpr char kDefaultFaultSchedule[] =
    "burst:bus-write-nack:100..4000:0.25;"
    "burst:bus-read-nack:100..4000:0.1";

struct HarnessOptions
{
    std::uint64_t firstSeed = 1;
    std::uint64_t numSeeds = 100;
    /** SweepRunner worker count; 0 = one per hardware thread. */
    unsigned jobs = 1;
    /**
     * Soft wall-clock budget in seconds; 0 = unlimited.  Checked at
     * fixed batch boundaries only, so a budgeted run may stop after
     * fewer seeds -- the report then depends on host speed.  Leave at
     * 0 whenever byte-identical reports matter.
     */
    double timeBudgetSec = 0;
    /** Run all scheme x mode x faults combinations per seed. */
    bool fullMatrix = false;
    /** Arm the CsbFlushDrop bug knob on every spec (self-test). */
    double dropFlushRate = 0;
    /**
     * Fault schedule driven by the matrix's scheduled-fault axis
     * (docs/FAULTS.md grammar); empty disables the axis.
     */
    std::string faultSchedule = kDefaultFaultSchedule;
    /** Shrink failing cases before reporting. */
    bool shrinkFailures = true;
    /** When set, write seed_<N>.litmus/.csbt repros here. */
    std::string reproDir;
    /** Generator sizing knob. */
    unsigned tokensPerContext = 12;
    /**
     * Dispatch the sequential oracle through the translated fast path
     * on every spec (RunSpec::translatedRef).  Result-invariant by
     * construction; applied after specsForSeed so the sampled-matrix
     * RNG stream -- and therefore the matrix itself -- is unchanged.
     */
    bool translateRef = false;
    /** Run every cycle-model spec with core fast-forward
     *  (RunSpec::translatedCore); same post-matrix application. */
    bool translateCore = false;
};

struct HarnessResult
{
    std::uint64_t seedsRun = 0;
    std::uint64_t seedsFailed = 0;
    /** The time budget expired before all seeds ran. */
    bool stoppedEarly = false;
    /** Largest shrunk failing case, in lowered instructions (0 when
     *  nothing failed or shrinking was disabled). */
    std::size_t maxShrunkInstructions = 0;
    /** Deterministic report (stdout material). */
    std::string report;
};

/** The hardware matrix seed @p seed is checked against. */
std::vector<RunSpec>
specsForSeed(std::uint64_t seed, bool full_matrix, double drop_flush_rate,
             const std::string &fault_schedule = kDefaultFaultSchedule);

/** Run the seeded sweep. */
HarnessResult runHarness(const HarnessOptions &opts);

struct CorpusResult
{
    unsigned entries = 0;
    unsigned failures = 0;
    std::string report;
};

/** Replay every `.litmus` entry under @p dir (sorted by filename). */
CorpusResult replayCorpus(const std::string &dir);

} // namespace csb::litmus

#endif // CSB_LITMUS_HARNESS_HH
