#include "harness.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/sweep.hh"
#include "generator.hh"
#include "shrink.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace csb::litmus {

namespace {

namespace fs = std::filesystem;

/** Seeds per SweepRunner batch; the budget is polled between batches. */
constexpr std::uint64_t kBatchSeeds = 64;

unsigned
recorderCpus(const TestCase &tc, const RunSpec &spec)
{
    return spec.mode == CtxMode::Smp ? unsigned(tc.contexts.size()) : 1u;
}

/** Render a RunSpec as the `run ...` corpus directive. */
std::string
runDirective(const RunSpec &spec)
{
    std::ostringstream os;
    os << "run scheme=" << schemeName(spec.scheme)
       << " mode=" << ctxModeName(spec.mode)
       << " quantum=" << spec.quantum
       << " faults=" << (spec.faults ? 1 : 0)
       << " fault-seed=" << spec.faultSeed
       << " drop-flush=" << spec.dropFlushRate;
    // Schedule specs contain no whitespace, so key=value parsing
    // round-trips; omitted entirely when empty so pre-schedule corpus
    // entries render unchanged.
    if (!spec.schedule.empty())
        os << " schedule=" << spec.schedule;
    // Likewise omitted when unset so pre-coherence entries round-trip
    // byte-for-byte.
    if (spec.coherent)
        os << " coherent=1";
    if (spec.smallCaches)
        os << " tiny-caches=1";
    // translatedRef is deliberately NOT serialized: it cannot change
    // any observable, and a repro must not depend on how the oracle
    // was dispatched when it was found.
    if (spec.translatedCore)
        os << " translate-core=1";
    return os.str();
}

/** Parse one "key=value" field of a directive line. */
bool
splitField(const std::string &field, std::string &key, std::string &val)
{
    auto eq = field.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = field.substr(0, eq);
    val = field.substr(eq + 1);
    return true;
}

/** Parse a `run ...` line back into a RunSpec. */
RunSpec
parseRunDirective(const std::string &line)
{
    RunSpec spec;
    std::istringstream is(line);
    std::string word;
    is >> word; // "run"
    while (is >> word) {
        std::string key, val;
        if (!splitField(word, key, val))
            csb_fatal("litmus corpus: malformed run field '", word, "'");
        if (key == "scheme") {
            if (val == "pio")
                spec.scheme = Scheme::Pio;
            else if (val == "dma")
                spec.scheme = Scheme::Dma;
            else if (val == "csb")
                spec.scheme = Scheme::Csb;
            else
                csb_fatal("litmus corpus: unknown scheme '", val, "'");
        } else if (key == "mode") {
            if (val == "smp")
                spec.mode = CtxMode::Smp;
            else if (val == "sched")
                spec.mode = CtxMode::Sched;
            else
                csb_fatal("litmus corpus: unknown mode '", val, "'");
        } else if (key == "quantum") {
            spec.quantum = Tick(std::stoull(val, nullptr, 0));
        } else if (key == "faults") {
            spec.faults = std::stoull(val, nullptr, 0) != 0;
        } else if (key == "fault-seed") {
            spec.faultSeed = std::stoull(val, nullptr, 0);
        } else if (key == "drop-flush") {
            spec.dropFlushRate = std::stod(val);
        } else if (key == "schedule") {
            spec.schedule = val;
        } else if (key == "coherent") {
            spec.coherent = std::stoull(val, nullptr, 0) != 0;
        } else if (key == "tiny-caches") {
            spec.smallCaches = std::stoull(val, nullptr, 0) != 0;
        } else if (key == "translate-core") {
            spec.translatedCore = std::stoull(val, nullptr, 0) != 0;
        } else {
            csb_fatal("litmus corpus: unknown run field '", key, "'");
        }
    }
    return spec;
}

/** The harness-owned directives of one corpus entry. */
struct CorpusDirectives
{
    std::vector<RunSpec> specs;
    bool expectFail = false;
    bool haveExpect = false;
    std::string traceFile; ///< relative to the entry's directory
};

CorpusDirectives
parseDirectives(const std::string &text)
{
    CorpusDirectives dir;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue;
        if (word == "run") {
            dir.specs.push_back(parseRunDirective(line));
        } else if (word == "expect") {
            dir.haveExpect = true;
            while (ls >> word) {
                if (word == "pass") {
                    dir.expectFail = false;
                } else if (word == "fail") {
                    dir.expectFail = true;
                } else {
                    std::string key, val;
                    if (splitField(word, key, val) && key == "trace")
                        dir.traceFile = val;
                    else
                        csb_fatal("litmus corpus: bad expect field '",
                                  word, "'");
                }
            }
        }
    }
    return dir;
}

/** Record the cycle-model run of (tc, spec) and return the CSBT bytes. */
std::string
recordTraceBytes(const TestCase &tc, const RunSpec &spec)
{
    sim::TraceRecorder recorder(recorderCpus(tc, spec), 64);
    runCase(tc, spec, &recorder);
    std::ostringstream os(std::ios::binary);
    recorder.writeTo(os);
    return os.str();
}

/** Write seed_<N>.litmus + .csbt into the repro directory. */
void
writeRepro(const std::string &dir, std::uint64_t seed,
           const TestCase &minimal, const RunSpec &spec,
           std::ostream &report)
{
    fs::create_directories(dir);
    std::string stem = "seed_" + std::to_string(seed);
    std::string trace_name = stem + ".csbt";

    std::string bytes = recordTraceBytes(minimal, spec);
    std::ofstream trace(fs::path(dir) / trace_name, std::ios::binary);
    trace.write(bytes.data(), std::streamsize(bytes.size()));
    if (!trace)
        csb_fatal("litmus: cannot write ", dir, "/", trace_name);

    std::ofstream entry(fs::path(dir) / (stem + ".litmus"));
    entry << "# litmus repro, shrunk from generator seed " << seed
          << "\n";
    entry << "# replay: tools/litmus --corpus <this directory>\n";
    entry << runDirective(spec) << "\n";
    entry << "expect fail trace=" << trace_name << "\n";
    entry << minimal.toText();
    if (!entry)
        csb_fatal("litmus: cannot write ", dir, "/", stem, ".litmus");

    report << "  repro written: " << stem << ".litmus + " << trace_name
           << "\n";
}

/** Everything one seed contributes to the final report. */
struct SeedOutcome
{
    std::uint64_t seed = 0;
    bool failed = false;
    /** Lowered size of the shrunk case (0 without shrinking). */
    std::size_t shrunkInstructions = 0;
    std::string block; ///< rendered failure detail; empty on pass
};

SeedOutcome
checkSeed(std::uint64_t seed, const HarnessOptions &opts)
{
    SeedOutcome out;
    out.seed = seed;

    GeneratorOptions gen;
    gen.tokensPerContext = opts.tokensPerContext;
    TestCase tc = generate(seed, gen);

    std::vector<RunSpec> specs =
        specsForSeed(seed, opts.fullMatrix, opts.dropFlushRate,
                     opts.faultSchedule);
    // Translate flags apply harness-wide, after the matrix is drawn:
    // the sampled-matrix RNG stream (and so the matrix every seed has
    // always seen) is untouched.
    for (RunSpec &spec : specs) {
        spec.translatedRef = opts.translateRef;
        spec.translatedCore = opts.translateCore;
    }

    std::ostringstream os;
    const RunSpec *first_fail = nullptr;
    for (const RunSpec &spec : specs) {
        RunResult result = runCase(tc, spec);
        if (result.passed())
            continue;
        out.failed = true;
        if (!first_fail)
            first_fail = &spec;
        os << "seed " << seed << ": FAIL [" << spec.name() << "]\n";
        for (const Discrepancy &d : result.discrepancies)
            os << "  - " << d.what << "\n";
    }
    if (!out.failed)
        return out;

    // Shrink against the first failing spec: deterministic, and one
    // spec is all a repro needs.
    RunSpec spec = *first_fail;
    TestCase minimal = tc;
    if (opts.shrinkFailures) {
        ShrinkStats stats;
        minimal = shrink(
            tc,
            [&](const TestCase &cand) {
                return !runCase(cand, spec).passed();
            },
            &stats);
        out.shrunkInstructions = minimal.loweredInstructionCount();
        os << "  shrunk [" << spec.name() << "] to "
           << minimal.contexts.size() << " context(s), "
           << minimal.loweredInstructionCount()
           << " lowered instructions (" << stats.evaluations
           << " oracle runs)\n";
    }
    {
        std::istringstream body(minimal.toText());
        std::string line;
        while (std::getline(body, line))
            os << "    " << line << "\n";
    }
    if (!opts.reproDir.empty())
        writeRepro(opts.reproDir, seed, minimal, spec, os);

    out.block = os.str();
    return out;
}

} // namespace

std::vector<RunSpec>
specsForSeed(std::uint64_t seed, bool full_matrix, double drop_flush_rate,
             const std::string &fault_schedule)
{
    unsigned contexts = contextsForSeed(seed);
    constexpr Scheme kSchemes[] = {Scheme::Pio, Scheme::Dma, Scheme::Csb};

    std::vector<RunSpec> specs;
    if (full_matrix) {
        // Fault flavors: clean, uniform 1% NACKs, scheduled burst
        // (the third axis collapses when no schedule is configured).
        int fault_modes = fault_schedule.empty() ? 2 : 3;
        Tick quantum = 120 + Tick(seed % 280);
        for (Scheme scheme : kSchemes) {
            for (int sched = 0; sched < (contexts > 1 ? 2 : 1);
                 ++sched) {
                for (int fmode = 0; fmode < fault_modes; ++fmode) {
                    RunSpec spec;
                    spec.scheme = scheme;
                    spec.mode = sched ? CtxMode::Sched : CtxMode::Smp;
                    spec.quantum = quantum;
                    spec.faults = fmode == 1;
                    if (fmode == 2)
                        spec.schedule = fault_schedule;
                    spec.faultSeed = (seed ^ 0x7a017a01u) | 1;
                    spec.dropFlushRate = drop_flush_rate;
                    specs.push_back(spec);
                    // Coherent SMP flavor: the same point with
                    // snooping MESI attached and tiny caches so dirty
                    // lines actually spill and get snooped mid-run.
                    // Every differential observable must stay
                    // invariant -- coherence is timing/state only.
                    if (!sched && contexts > 1) {
                        spec.coherent = true;
                        spec.smallCaches = true;
                        specs.push_back(spec);
                    }
                }
            }
        }
        return specs;
    }

    // Sampled matrix: one concurrency/fault shape per seed, every
    // scheme.  Drawn from a private stream so the generator's own
    // draws stay untouched.  The schedule draw comes last so seeds
    // keep their pre-schedule concurrency/fault shapes.
    sim::Random rng(seed ^ 0x5bec5bec5bec5becULL);
    bool sched = contexts > 1 && rng.chance(0.5);
    Tick quantum = 120 + Tick(rng.uniform(0, 280));
    bool faults = rng.uniform(0, 3) == 0;
    bool scheduled = !fault_schedule.empty() && rng.uniform(0, 3) == 0;
    // New axes draw LAST (and unconditionally) so earlier seeds keep
    // their historical shapes and every seed consumes the same stream.
    bool coherent_draw = rng.chance(0.5);
    bool tiny = rng.uniform(0, 3) == 0;
    bool coherent = coherent_draw && contexts > 1 && !sched;
    for (Scheme scheme : kSchemes) {
        RunSpec spec;
        spec.scheme = scheme;
        spec.mode = sched ? CtxMode::Sched : CtxMode::Smp;
        spec.quantum = quantum;
        spec.faults = faults;
        if (scheduled)
            spec.schedule = fault_schedule;
        spec.faultSeed = (seed ^ 0x7a017a01u) | 1;
        spec.dropFlushRate = drop_flush_rate;
        spec.coherent = coherent;
        spec.smallCaches = tiny;
        specs.push_back(spec);
    }
    return specs;
}

HarnessResult
runHarness(const HarnessOptions &opts)
{
    HarnessResult result;
    std::ostringstream report;

    report << "litmus: seeds " << opts.firstSeed << ".."
           << (opts.firstSeed + opts.numSeeds - 1) << " ("
           << opts.numSeeds << "), matrix="
           << (opts.fullMatrix ? "full" : "sampled");
    if (opts.dropFlushRate > 0)
        report << ", drop-flush=" << opts.dropFlushRate;
    report << "\n";

    core::SweepRunner runner(opts.jobs);
    auto start = std::chrono::steady_clock::now();

    std::uint64_t done = 0;
    while (done < opts.numSeeds) {
        if (opts.timeBudgetSec > 0) {
            std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            if (elapsed.count() >= opts.timeBudgetSec) {
                result.stoppedEarly = true;
                break;
            }
        }
        std::uint64_t batch =
            std::min<std::uint64_t>(kBatchSeeds, opts.numSeeds - done);
        std::uint64_t base = opts.firstSeed + done;
        std::vector<SeedOutcome> outcomes = runner.mapIndex(
            std::size_t(batch), [&](std::size_t i) {
                return checkSeed(base + i, opts);
            });
        for (const SeedOutcome &outcome : outcomes) {
            ++result.seedsRun;
            if (outcome.failed) {
                ++result.seedsFailed;
                result.maxShrunkInstructions =
                    std::max(result.maxShrunkInstructions,
                             outcome.shrunkInstructions);
                report << outcome.block;
            }
        }
        done += batch;
    }

    if (result.stoppedEarly)
        report << "litmus: time budget expired\n";
    report << "litmus: " << result.seedsRun << " seeds run, "
           << result.seedsFailed << " failed\n";
    result.report = report.str();
    return result;
}

CorpusResult
replayCorpus(const std::string &dir)
{
    CorpusResult result;
    std::ostringstream report;

    if (!fs::is_directory(dir)) {
        result.failures = 1;
        result.report = "litmus: corpus directory missing: " + dir + "\n";
        return result;
    }

    std::vector<fs::path> entries;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".litmus")
            entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());

    for (const fs::path &path : entries) {
        ++result.entries;
        std::ifstream in(path);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!in) {
            ++result.failures;
            report << path.filename().string() << ": FAIL (unreadable)\n";
            continue;
        }
        std::string text = buf.str();

        bool ok = true;
        std::ostringstream detail;
        try {
            CorpusDirectives directives = parseDirectives(text);
            if (directives.specs.empty() || !directives.haveExpect)
                csb_fatal("litmus corpus: entry needs `run` and "
                          "`expect` directives");
            TestCase tc = TestCase::fromText(text);

            for (const RunSpec &spec : directives.specs) {
                RunResult run = runCase(tc, spec);
                if (!directives.expectFail && !run.passed()) {
                    ok = false;
                    detail << "  [" << spec.name()
                           << "] expected pass:\n";
                    for (const Discrepancy &d : run.discrepancies)
                        detail << "    - " << d.what << "\n";
                } else if (directives.expectFail && run.passed()) {
                    ok = false;
                    detail << "  [" << spec.name()
                           << "] expected failure did not reproduce\n";
                }
            }

            if (!directives.traceFile.empty()) {
                fs::path trace_path =
                    path.parent_path() / directives.traceFile;
                std::ifstream tf(trace_path, std::ios::binary);
                std::ostringstream tbuf;
                tbuf << tf.rdbuf();
                if (!tf) {
                    ok = false;
                    detail << "  trace file unreadable: "
                           << trace_path.string() << "\n";
                } else {
                    std::string want = tbuf.str();
                    std::string got =
                        recordTraceBytes(tc, directives.specs.front());
                    if (got != want) {
                        ok = false;
                        detail << "  trace mismatch: re-recorded "
                               << got.size() << " bytes, checked in "
                               << want.size() << " ("
                               << directives.traceFile << ")\n";
                    }
                }
            }
        } catch (const FatalError &err) {
            ok = false;
            detail << "  fatal: " << err.what() << "\n";
        }

        if (ok) {
            report << path.filename().string() << ": ok\n";
        } else {
            ++result.failures;
            report << path.filename().string() << ": FAIL\n"
                   << detail.str();
        }
    }

    report << "litmus: corpus " << result.entries << " entries, "
           << result.failures << " failed\n";
    result.report = report.str();
    return result;
}

} // namespace csb::litmus
