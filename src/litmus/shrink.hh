/**
 * @file
 * Delta-debugging shrinker for failing litmus cases.
 *
 * Given a case and a predicate "does this case still fail?", the
 * shrinker greedily minimizes: whole contexts first, then ddmin over
 * each context's token list, then per-token simplifications (fewer
 * stores in a burst, smaller values), iterating to a fixpoint.  The
 * procedure is a pure function of (case, predicate): no randomness,
 * no wall-clock -- re-running a shrink reproduces the identical
 * minimal case, which is what lets shrunk repros be checked into the
 * regression corpus and re-verified byte-for-byte (docs/LITMUS.md).
 */

#ifndef CSB_LITMUS_SHRINK_HH
#define CSB_LITMUS_SHRINK_HH

#include <cstdint>
#include <functional>

#include "testcase.hh"

namespace csb::litmus {

/** Returns true when @p tc still exhibits the failure. */
using FailPredicate = std::function<bool(const TestCase &)>;

struct ShrinkStats
{
    /** Fixpoint iterations of the outer loop. */
    unsigned rounds = 0;
    /** Total predicate evaluations (each one is a full oracle run). */
    std::uint64_t evaluations = 0;
};

/**
 * Minimize @p tc while @p fails keeps returning true.
 * @pre fails(tc) -- the input must actually fail.
 */
TestCase shrink(TestCase tc, const FailPredicate &fails,
                ShrinkStats *stats = nullptr);

} // namespace csb::litmus

#endif // CSB_LITMUS_SHRINK_HH
