#include "oracle.hh"

#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "core/system.hh"
#include "cpu/reference_executor.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace csb::litmus {

using core::System;
using core::SystemConfig;

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Pio: return "pio";
      case Scheme::Dma: return "dma";
      case Scheme::Csb: return "csb";
    }
    return "?";
}

const char *
ctxModeName(CtxMode mode)
{
    switch (mode) {
      case CtxMode::Smp: return "smp";
      case CtxMode::Sched: return "sched";
    }
    return "?";
}

std::string
RunSpec::name() const
{
    std::ostringstream os;
    os << schemeName(scheme) << "/" << ctxModeName(mode);
    if (mode == CtxMode::Sched)
        os << "(q=" << quantum << ")";
    if (faults)
        os << "/faults";
    if (!schedule.empty())
        os << "/scheduled";
    if (dropFlushRate > 0)
        os << "/drop-flush";
    if (coherent)
        os << "/mesi";
    if (smallCaches)
        os << "/tiny";
    if (translatedCore)
        os << "/xlat";
    return os.str();
}

namespace {

constexpr Tick kMaxTicks = 5'000'000;

SystemConfig
configFor(const RunSpec &spec, unsigned contexts)
{
    SystemConfig cfg;
    cfg.numCores = spec.mode == CtxMode::Smp ? contexts : 1;
    // The CSB stays enabled under every scheme: litmus programs
    // contain combining bursts whose retry loops would never exit
    // without it.  The scheme varies the *other* uncached path.
    cfg.enableCsb = true;
    switch (spec.scheme) {
      case Scheme::Pio:
        cfg.ubuf.combineBytes = 0;
        break;
      case Scheme::Dma:
        cfg.ubuf.combineBytes = cfg.lineBytes;
        cfg.ubuf.policy = mem::CombinePolicy::Block;
        cfg.routeMissesOverBus = true;
        break;
      case Scheme::Csb:
        cfg.ubuf.combineBytes = cfg.lineBytes;
        cfg.ubuf.policy = mem::CombinePolicy::SequentialOnly;
        cfg.csb.partialFlush = true;
        cfg.csb.numLineBuffers = 2;
        break;
    }
    if (spec.faults) {
        cfg.faults.seed = spec.faultSeed;
        cfg.faults.busWriteNackRate = 0.01;
        cfg.faults.busReadNackRate = 0.01;
    }
    if (!spec.schedule.empty()) {
        cfg.faults.seed = spec.faultSeed;
        cfg.faults.schedule = sim::parseFaultSchedule(spec.schedule);
    }
    if (spec.dropFlushRate > 0) {
        cfg.faults.seed = spec.faultSeed;
        cfg.faults.csbFlushDropRate = spec.dropFlushRate;
    }
    if (spec.coherent)
        cfg.coherence.kind = mem::CoherenceKind::Mesi;
    if (spec.translatedCore)
        cfg.cpu.translate = cpu::TranslateMode::CoreFastForward;
    if (spec.smallCaches) {
        // Two direct-mapped sets per level: consecutive arena lines
        // collide, so dirty evictions (and, under Dma, bus writebacks
        // of in-flight lines) happen constantly instead of never.
        cfg.l1 = mem::CacheParams{128, 1, cfg.lineBytes, /*hitLatency=*/2};
        cfg.l2 = mem::CacheParams{128, 1, cfg.lineBytes, /*hitLatency=*/8};
    }
    // Livelock (e.g. a retry loop that never converges) must surface
    // as a diagnosable failure, not a hung harness.
    cfg.watchdogTicks = 200'000;
    cfg.normalize();
    return cfg;
}

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

void
compareArchState(const cpu::ArchState &got, const cpu::ArchState &ref,
                 std::size_t ctx, std::vector<Discrepancy> &out)
{
    for (int r = 0; r < isa::numIntRegs; ++r) {
        if (got.intRegs[r] != ref.intRegs[r]) {
            out.push_back({"ctx " + std::to_string(ctx) + ": %r" +
                           std::to_string(r) + " = " +
                           hex(got.intRegs[r]) + ", reference " +
                           hex(ref.intRegs[r])});
        }
    }
    for (int f = 0; f < isa::numFpRegs; ++f) {
        if (got.fpRegs[f] != ref.fpRegs[f]) {
            out.push_back({"ctx " + std::to_string(ctx) + ": %f" +
                           std::to_string(f) + " = " +
                           hex(got.fpRegs[f]) + ", reference " +
                           hex(ref.fpRegs[f])});
        }
    }
    if (got.pc != ref.pc) {
        out.push_back({"ctx " + std::to_string(ctx) + ": final pc " +
                       std::to_string(got.pc) + ", reference " +
                       std::to_string(ref.pc)});
    }
}

} // namespace

RunResult
runCase(const TestCase &tc, const RunSpec &spec,
        sim::TraceRecorder *recorder)
{
    RunResult result;
    auto &out = result.discrepancies;

    std::size_t contexts = tc.contexts.size();
    csb_assert(contexts > 0, "litmus: empty case");
    // The sequential reference is only an oracle because contexts
    // touch disjoint arenas/windows; reject (loudly, with the exact
    // token) any case that breaks that assumption instead of letting
    // it silently invalidate every verdict.
    tc.validateDisjointness();

    std::vector<isa::Program> programs;
    programs.reserve(contexts);
    for (std::size_t c = 0; c < contexts; ++c)
        programs.push_back(lowerContext(tc, c));

    // --- Sequential reference.
    SystemConfig cfg = configFor(spec, unsigned(contexts));
    cpu::RefCsbModel ref_csb;
    ref_csb.lineBytes = cfg.csb.lineBytes;
    ref_csb.checkAddress = cfg.csb.checkAddress;
    ref_csb.partialFlush = cfg.csb.partialFlush;
    cpu::ReferenceExecutor reference(ref_csb);
    reference.setTranslate(spec.translatedRef);
    reference.pageTable().setAttr(System::ioUncachedBase,
                                  System::ioRegionSize,
                                  mem::PageAttr::Uncached);
    reference.pageTable().setAttr(System::ioAccelBase,
                                  System::ioRegionSize,
                                  mem::PageAttr::UncachedAccelerated);
    reference.pageTable().setAttr(System::ioCsbBase,
                                  System::ioRegionSize,
                                  mem::PageAttr::UncachedCombining);
    for (std::size_t c = 0; c < contexts; ++c) {
        unsigned unit =
            spec.mode == CtxMode::Smp ? unsigned(c) : 0u;
        reference.addContext(&programs[c], tc.contexts[c].pid, unit);
    }
    reference.run();

    // --- Cycle model.
    try {
        System system(cfg);
        if (recorder)
            system.attachTraceRecorder(recorder);

        std::unique_ptr<cpu::ContextScheduler> sched;
        bool done = false;
        if (spec.mode == CtxMode::Smp) {
            for (std::size_t c = 0; c < contexts; ++c)
                system.core(unsigned(c))
                    .loadProgram(&programs[c], tc.contexts[c].pid);
            system.simulator().run(
                [&] {
                    for (unsigned c = 0; c < system.numCores(); ++c) {
                        if (!system.core(c).halted())
                            return false;
                    }
                    return system.quiescent();
                },
                kMaxTicks);
            done = system.quiescent();
            for (unsigned c = 0; c < system.numCores(); ++c)
                done = done && system.core(c).halted();
        } else {
            sched = std::make_unique<cpu::ContextScheduler>(
                system.simulator(), system.core(), spec.quantum);
            for (std::size_t c = 0; c < contexts; ++c)
                sched->addProcess(&programs[c], tc.contexts[c].pid);
            sched->start();
            system.simulator().run(
                [&] {
                    return sched->allFinished() && system.quiescent();
                },
                kMaxTicks);
            done = sched->allFinished() && system.quiescent();
        }
        if (!done) {
            out.push_back({"run did not reach quiescence within " +
                           std::to_string(kMaxTicks) + " ticks"});
            return result;
        }

        // Architectural state, per context.
        for (std::size_t c = 0; c < contexts; ++c) {
            const cpu::ArchState &got =
                spec.mode == CtxMode::Smp
                    ? system.core(unsigned(c)).archState()
                    : sched->finalState(c);
            compareArchState(got, reference.state(c), c, out);
        }

        // Cached arenas, byte for byte.
        for (std::size_t c = 0; c < contexts; ++c) {
            std::vector<std::uint8_t> ref_arena(arenaBytes);
            std::vector<std::uint8_t> got_arena(arenaBytes);
            reference.memory().read(arenaBase(c), ref_arena.data(),
                                    arenaBytes);
            system.memory().read(arenaBase(c), got_arena.data(),
                                 arenaBytes);
            for (unsigned i = 0; i < arenaBytes; ++i) {
                if (got_arena[i] != ref_arena[i]) {
                    out.push_back(
                        {"ctx " + std::to_string(c) + ": arena byte " +
                         hex(arenaBase(c) + i) + " = " +
                         std::to_string(got_arena[i]) + ", reference " +
                         std::to_string(ref_arena[i])});
                    break; // one per arena keeps reports readable
                }
            }
        }

        // Device image: fold the write log, compare with reference.
        std::map<Addr, std::uint8_t> got_image;
        for (const io::DeviceWrite &w : system.device().writeLog()) {
            for (std::size_t i = 0; i < w.data.size(); ++i)
                got_image[w.addr + Addr(i)] = w.data[i];
        }
        if (got_image != reference.ioImage()) {
            // Name the first difference in either direction.
            const auto &ref_image = reference.ioImage();
            std::string detail = "device image mismatch";
            for (const auto &[addr, byte] : ref_image) {
                auto it = got_image.find(addr);
                if (it == got_image.end()) {
                    detail = "device byte " + hex(addr) +
                             " missing (reference " +
                             std::to_string(byte) + ")";
                    break;
                }
                if (it->second != byte) {
                    detail = "device byte " + hex(addr) + " = " +
                             std::to_string(it->second) +
                             ", reference " + std::to_string(byte);
                    break;
                }
            }
            if (detail == "device image mismatch") {
                for (const auto &[addr, byte] : got_image) {
                    if (!ref_image.count(addr)) {
                        detail = "unexpected device byte " + hex(addr) +
                                 " = " + std::to_string(byte);
                        break;
                    }
                }
            }
            out.push_back({detail});
        }

        // CSB exactly-once accounting, per unit.
        unsigned units = spec.mode == CtxMode::Smp
                             ? system.numCores()
                             : 1;
        for (unsigned u = 0; u < units; ++u) {
            const mem::ConditionalStoreBuffer *unit = system.csb(u);
            if (!unit)
                continue;
            auto succeeded =
                std::uint64_t(unit->flushesSucceeded.value());
            auto failed = std::uint64_t(unit->flushesFailed.value());
            auto attempted =
                std::uint64_t(unit->flushesAttempted.value());
            auto issued = std::uint64_t(unit->linesIssued.value());
            std::uint64_t want = reference.csbFlushesSucceeded(u);
            if (succeeded != want) {
                out.push_back(
                    {"csb" + std::to_string(u) + ": " +
                     std::to_string(succeeded) +
                     " successful flushes, reference " +
                     std::to_string(want)});
            }
            if (issued != succeeded) {
                out.push_back(
                    {"csb" + std::to_string(u) +
                     ": exactly-once violated: " +
                     std::to_string(issued) + " lines issued for " +
                     std::to_string(succeeded) +
                     " successful flushes"});
            }
            if (attempted != succeeded + failed) {
                out.push_back(
                    {"csb" + std::to_string(u) +
                     ": flush accounting broken: " +
                     std::to_string(attempted) + " attempted != " +
                     std::to_string(succeeded) + " + " +
                     std::to_string(failed)});
            }
        }

        // Strong-ordering check: under PIO every uncached store is its
        // own device write, so each context's window must receive
        // exactly the reference's transaction sequence, in order.
        // Combining schemes merge legally; fault injection reorders
        // nothing (the retry queue preserves per-master order) but
        // keep the check on clean runs only, where the claim is exact.
        if (spec.scheme == Scheme::Pio && !spec.faults &&
            spec.schedule.empty()) {
            for (std::size_t c = 0; c < contexts; ++c) {
                Addr lo = uncachedWindow(c);
                Addr hi = lo + 0x1000;
                std::vector<cpu::RefIoWrite> got_writes;
                for (const io::DeviceWrite &w :
                     system.device().writeLog()) {
                    if (w.addr < lo || w.addr >= hi)
                        continue;
                    std::uint64_t bits = 0;
                    std::memcpy(&bits, w.data.data(),
                                std::min<std::size_t>(w.data.size(),
                                                      8));
                    got_writes.push_back(
                        {w.addr, unsigned(w.data.size()), bits});
                }
                const auto &want_writes = reference.ioWrites(c);
                if (got_writes != want_writes) {
                    out.push_back(
                        {"ctx " + std::to_string(c) +
                         ": uncached write stream diverged (" +
                         std::to_string(got_writes.size()) +
                         " writes, reference " +
                         std::to_string(want_writes.size()) + ")"});
                }
            }
        }
    } catch (const FatalError &err) {
        out.push_back({std::string("fatal error: ") + err.what()});
    }
    return result;
}

} // namespace csb::litmus
