/**
 * @file
 * Litmus test cases: a store-ordering torture program as data.
 *
 * A TestCase is a small number of contexts, each a list of tokens.  A
 * token is the unit of generation and shrinking; each lowers to a
 * short, self-contained mini-ISA sequence whose final architectural
 * effect is deterministic under ANY legal interleaving of the cycle
 * model -- that is the property the differential oracle exploits
 * (docs/LITMUS.md).  The dangerous ingredients all appear at the token
 * level: conditional-flush retry loops, deliberately unflushed
 * (discarded) combining stores, always-failing probe flushes, plain
 * uncached stores and swaps, MEMBARs and cached traffic mixed in.
 *
 * Determinism rules the tokens obey by construction:
 *  - every context owns disjoint cached and I/O regions, so final
 *    state cannot depend on cross-context timing (the reduction-
 *    theorem side condition, PAPERS.md);
 *  - uncached loads only ever observe device registers that are never
 *    programmed, so they read zero everywhere;
 *  - every conditional flush is either inside a checked retry loop
 *    (succeeds exactly once) or a probe with expected count 0 (fails
 *    always);
 *  - branch conditions depend only on deterministic register values.
 */

#ifndef CSB_LITMUS_TESTCASE_HH
#define CSB_LITMUS_TESTCASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hh"
#include "isa/program.hh"
#include "sim/types.hh"

namespace csb::litmus {

/** Cached scratch arena of context @p ctx (disjoint per context). */
constexpr Addr
arenaBase(std::size_t ctx)
{
    return 0x8000 + static_cast<Addr>(ctx) * 0x400;
}

/** Bytes of arena a context may touch. */
constexpr unsigned arenaBytes = 256;

/** Plain-uncached device window of context @p ctx. */
constexpr Addr
uncachedWindow(std::size_t ctx)
{
    return core::System::ioUncachedBase + static_cast<Addr>(ctx) * 0x1000;
}

/** Uncached-combining (CSB) device window of context @p ctx. */
constexpr Addr
csbWindow(std::size_t ctx)
{
    return core::System::ioCsbBase + static_cast<Addr>(ctx) * 0x1000;
}

/** CSB lines per context window the generator draws from. */
constexpr unsigned numLines = 4;
/** 8-byte slots per arena / uncached window. */
constexpr unsigned numSlots = 32;
/** Maximum combining stores per burst (one per dword of a line). */
constexpr unsigned maxBurstStores = 8;

/** What one token does when lowered. */
enum class TokenKind : std::uint8_t {
    CachedStore,     ///< arena[slot] = value
    CachedLoad,      ///< fold arena[slot] into the accumulator register
    Alu,             ///< mix an immediate into a register
    CsbBurst,        ///< checked combining burst: stores + flush retry loop
    UnflushedStores, ///< combining stores deliberately never flushed
    ProbeFlush,      ///< conditional flush with expected=0 (always fails)
    UncachedStore,   ///< plain uncached device store
    UncachedSwap,    ///< plain uncached swap (reads a zero register)
    Membar,          ///< drain barrier
};

const char *tokenKindName(TokenKind kind);

/** One generation/shrinking unit.  Field use depends on kind. */
struct Token
{
    TokenKind kind = TokenKind::Membar;
    /** Access size in bytes (1, 4 or 8) where applicable. */
    std::uint8_t size = 8;
    /** CSB line index within the context window (CsbBurst & friends). */
    std::uint8_t line = 0;
    /** Combining stores in a burst (1..maxBurstStores). */
    std::uint8_t nStores = 1;
    /** Arena / uncached-window slot index (8-byte granules). */
    std::uint8_t slot = 0;
    /** Immediate data value. */
    std::uint64_t value = 0;

    bool operator==(const Token &) const = default;
};

/** One context's token list. */
struct ContextProgram
{
    ProcId pid = 1;
    std::vector<Token> tokens;

    bool operator==(const ContextProgram &) const = default;
};

/** A whole litmus case. */
struct TestCase
{
    /** Generator seed (provenance only; replay never re-derives). */
    std::uint64_t seed = 0;
    std::vector<ContextProgram> contexts;

    bool operator==(const TestCase &) const = default;

    /** Serialize to the `.litmus` text format (docs/LITMUS.md). */
    std::string toText() const;

    /**
     * Parse the text format.  Lines starting with '#' and directive
     * lines the harness owns (`run ...`, `expect ...`) are ignored, so
     * a corpus file parses directly.  Throws FatalError on malformed
     * input.
     */
    static TestCase fromText(const std::string &text);

    /** Total instructions the lowered contexts contain. */
    std::size_t loweredInstructionCount() const;

    /**
     * Enforce the disjoint-arena assumption the sequential reference
     * depends on: every token must index inside its context's own
     * arena / window (slot < numSlots, line < numLines, burst length
     * and size legal) and the contexts must fit the per-context
     * address strides.  Lowering masks indices defensively, so an
     * out-of-range token would otherwise wrap SILENTLY into a valid --
     * but unintended -- location; a future shared-location mode that
     * forgot to bypass the oracle would corrupt every verdict without
     * a diagnostic.  Throws FatalError naming the offending token and
     * a minimal single-token repro case.
     */
    void validateDisjointness() const;
};

/**
 * Lower context @p ctx to an executable program.  Pure: equal cases
 * lower to equal programs.
 */
isa::Program lowerContext(const TestCase &tc, std::size_t ctx);

} // namespace csb::litmus

#endif // CSB_LITMUS_TESTCASE_HH
