#include "generator.hh"

#include "sim/random.hh"

namespace csb::litmus {

unsigned
contextsForSeed(std::uint64_t seed)
{
    // 1, 2 or 4 contexts, uniformly over the seed space.
    static constexpr unsigned counts[] = {1, 2, 4};
    sim::Random rng(seed ^ 0xc047e470c047e470ULL);
    return counts[rng.uniform(0, 2)];
}

namespace {

std::uint8_t
pickSize(sim::Random &rng)
{
    static constexpr unsigned sizes[] = {1, 4, 8};
    return static_cast<std::uint8_t>(sizes[rng.uniform(0, 2)]);
}

Token
pickToken(sim::Random &rng)
{
    Token t;
    t.size = pickSize(rng);
    // Few lines and slots, so tokens collide on addresses often --
    // overlap is where ordering bugs live.
    t.line = static_cast<std::uint8_t>(rng.uniform(0, numLines - 1));
    t.slot = static_cast<std::uint8_t>(rng.uniform(0, numSlots - 1));
    t.nStores =
        static_cast<std::uint8_t>(rng.uniform(1, maxBurstStores));
    t.value = rng.next();

    std::uint64_t dice = rng.uniform(0, 99);
    if (dice < 28)
        t.kind = TokenKind::CsbBurst;
    else if (dice < 38)
        t.kind = TokenKind::UnflushedStores;
    else if (dice < 46)
        t.kind = TokenKind::ProbeFlush;
    else if (dice < 60)
        t.kind = TokenKind::CachedStore;
    else if (dice < 70)
        t.kind = TokenKind::CachedLoad;
    else if (dice < 82)
        t.kind = TokenKind::UncachedStore;
    else if (dice < 88)
        t.kind = TokenKind::UncachedSwap;
    else if (dice < 94)
        t.kind = TokenKind::Membar;
    else
        t.kind = TokenKind::Alu;

    // Reset the fields this kind's lowering ignores to their
    // defaults: generated cases round-trip through the text format
    // (which serializes meaningful fields only), and the shrinker
    // never wastes evaluations simplifying dead fields.
    Token canon;
    canon.kind = t.kind;
    switch (t.kind) {
      case TokenKind::CachedStore:
      case TokenKind::UncachedStore:
        canon.size = t.size;
        canon.slot = t.slot;
        canon.value = t.value;
        break;
      case TokenKind::CachedLoad:
        canon.size = t.size;
        canon.slot = t.slot;
        break;
      case TokenKind::Alu:
        canon.value = t.value;
        break;
      case TokenKind::CsbBurst:
      case TokenKind::UnflushedStores:
        canon.size = t.size;
        canon.line = t.line;
        canon.nStores = t.nStores;
        canon.value = t.value;
        break;
      case TokenKind::ProbeFlush:
        canon.line = t.line;
        break;
      case TokenKind::UncachedSwap:
        canon.slot = t.slot;
        canon.value = t.value;
        break;
      case TokenKind::Membar:
        break;
    }
    return canon;
}

} // namespace

TestCase
generate(std::uint64_t seed, const GeneratorOptions &opts)
{
    sim::Random rng(seed);
    TestCase tc;
    tc.seed = seed;

    unsigned contexts = contextsForSeed(seed);
    for (unsigned c = 0; c < contexts; ++c) {
        ContextProgram cp;
        cp.pid = static_cast<ProcId>(c + 1);
        unsigned lo = opts.tokensPerContext > 4
                          ? opts.tokensPerContext - 4
                          : 1;
        unsigned count = static_cast<unsigned>(
            rng.uniform(lo, opts.tokensPerContext + 4));
        cp.tokens.reserve(count);
        for (unsigned i = 0; i < count; ++i)
            cp.tokens.push_back(pickToken(rng));
        tc.contexts.push_back(std::move(cp));
    }
    return tc;
}

} // namespace csb::litmus
