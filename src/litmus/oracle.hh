/**
 * @file
 * The differential oracle: one litmus case, one hardware variant, one
 * verdict.
 *
 * A RunSpec picks the I/O scheme (PIO / DMA-style combining buffer /
 * CSB with partial flush), the concurrency shape (one core per
 * context, or every context time-shared on one core with a preemptive
 * scheduler), and whether seeded bus faults are injected.  The oracle
 * runs the lowered case on the full cycle model under that spec, runs
 * the same case on the sequential ReferenceExecutor, and compares
 * every observable the reduction theorem says must be invariant:
 *
 *  - final architectural state of every context (all registers, pc);
 *  - every context's cached arena, byte for byte;
 *  - the device image: the write log folded into a byte map must
 *    equal the reference's, so no store is lost, duplicated,
 *    misplaced or leaked from a discarded CSB accumulation;
 *  - CSB exactly-once accounting: flushesSucceeded matches the
 *    reference per unit, every success issued exactly one line
 *    (linesIssued == flushesSucceeded), and attempts balance
 *    (attempted == succeeded + failed);
 *  - under PIO with no faults, the per-context sequence of uncached
 *    device writes, in order with sizes and payloads -- the strong-
 *    ordering / MEMBAR check (combining schemes legitimately merge
 *    writes, so the per-transaction check applies to PIO only).
 *
 * A run that fails to terminate (watchdog or tick budget) or throws
 * FatalError is itself a discrepancy, never a crash of the harness.
 */

#ifndef CSB_LITMUS_ORACLE_HH
#define CSB_LITMUS_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace_recorder.hh"
#include "testcase.hh"

namespace csb::litmus {

/** I/O scheme of the system under test. */
enum class Scheme : std::uint8_t { Pio, Dma, Csb };

/** How contexts share hardware. */
enum class CtxMode : std::uint8_t {
    Smp,   ///< one core per context, private CSBs, shared bus/device
    Sched, ///< one core, preemptive round-robin, shared CSB
};

const char *schemeName(Scheme scheme);
const char *ctxModeName(CtxMode mode);

/** One point of the hardware matrix a case is checked against. */
struct RunSpec
{
    Scheme scheme = Scheme::Csb;
    CtxMode mode = CtxMode::Smp;
    /** Scheduler quantum in ticks (Sched mode only). */
    Tick quantum = 200;
    /** Inject 1% seeded bus read/write NACKs. */
    bool faults = false;
    std::uint64_t faultSeed = 1;
    /**
     * Scheduled-fault axis: a fault-schedule spec (docs/FAULTS.md
     * grammar) layered on top of the uniform rates; empty = none.
     * Composes with `faults`.
     */
    std::string schedule;
    /**
     * DEBUG bug knob: probability a successful conditional flush's
     * line is dropped (FaultSite::CsbFlushDrop).  Non-zero runs are
     * expected to FAIL -- the harness's self-test of itself.
     */
    double dropFlushRate = 0;
    /**
     * Run the SMP variant with snooping MESI coherence attached
     * (SystemConfig::coherence).  Coherence is a timing/state model --
     * the differential observables must stay invariant under it, which
     * is exactly what this axis checks.
     */
    bool coherent = false;
    /**
     * Shrink both cache levels to two direct-mapped sets so the
     * per-context arenas conflict and dirty lines spill over the bus
     * mid-run (the PR-8 writeback-payload staleness area; with the
     * default geometry litmus arenas never evict at all).
     */
    bool smallCaches = false;
    /**
     * Run the sequential reference through the basic-block translated
     * fast path (ReferenceExecutor::setTranslate).  Pure oracle
     * speedup -- bit-identical observables by construction -- so it is
     * deliberately invisible to name() and the corpus directive:
     * every archived repro must reproduce regardless of how the
     * oracle was dispatched.
     */
    bool translatedRef = false;
    /**
     * Run the cycle model with cpu.translate=core-fastforward: the
     * cores retire long pure-compute block chains through the
     * translator.  The differential observables must stay invariant
     * (timing compresses, architecture does not) -- this axis is the
     * end-to-end soundness check of the fast-forward path.
     */
    bool translatedCore = false;

    /** Stable key used in reports and corpus files, e.g. "csb/smp". */
    std::string name() const;
};

/** One observed difference between model and reference. */
struct Discrepancy
{
    std::string what;
};

/** Outcome of one (case, spec) run. */
struct RunResult
{
    std::vector<Discrepancy> discrepancies;

    bool passed() const { return discrepancies.empty(); }
};

/**
 * Run @p tc under @p spec and compare against the sequential
 * reference.  When @p recorder is non-null, every data reference of
 * the cycle-model run is captured into it (CSBT repro traces).
 */
RunResult runCase(const TestCase &tc, const RunSpec &spec,
                  sim::TraceRecorder *recorder = nullptr);

} // namespace csb::litmus

#endif // CSB_LITMUS_ORACLE_HH
