#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "logging.hh"

namespace csb::sim {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // std::to_chars, unlike snprintf, is locale-independent: under a
    // comma-decimal LC_NUMERIC (e.g. de_DE) "%.12g" would print
    // "4,00" and silently corrupt every artifact.  The chars_format
    // output below is specified to match printf "%.12g" in the "C"
    // locale, so artifacts stay byte-identical on any machine.
    if (!std::isfinite(v))
        return "null"; // JSON has no NaN/Inf
    char buf[40];
    // 2^53: largest range where every integer is exact in a double.
    if (v == std::floor(v) && std::fabs(v) <= 9007199254740992.0) {
        auto res = std::to_chars(buf, buf + sizeof(buf),
                                 static_cast<long long>(v));
        return std::string(buf, res.ptr);
    }
    auto res = std::to_chars(buf, buf + sizeof(buf), v,
                             std::chars_format::general, 12);
    csb_assert(res.ec == std::errc(), "jsonNumber buffer too small");
    return std::string(buf, res.ptr);
}

void
JsonWriter::separator()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!scopes_.empty()) {
        if (hasItems_.back())
            raw(",");
        hasItems_.back() = true;
        newline();
    }
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    raw("\n");
    raw(std::string(indent_ * scopes_.size(), ' '));
}

void
JsonWriter::raw(const std::string &text)
{
    os_ << text;
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    raw("{");
    scopes_.push_back(Scope::Object);
    hasItems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    csb_assert(!scopes_.empty() && scopes_.back() == Scope::Object,
               "endObject outside an object");
    bool had_items = hasItems_.back();
    scopes_.pop_back();
    hasItems_.pop_back();
    if (had_items)
        newline();
    raw("}");
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    raw("[");
    scopes_.push_back(Scope::Array);
    hasItems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    csb_assert(!scopes_.empty() && scopes_.back() == Scope::Array,
               "endArray outside an array");
    bool had_items = hasItems_.back();
    scopes_.pop_back();
    hasItems_.pop_back();
    if (had_items)
        newline();
    raw("]");
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    csb_assert(!scopes_.empty() && scopes_.back() == Scope::Object,
               "key() outside an object");
    separator();
    raw("\"" + jsonEscape(k) + "\":" + (indent_ > 0 ? " " : ""));
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    raw("\"" + jsonEscape(v) + "\"");
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    raw(jsonNumber(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    raw(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    raw(v ? "true" : "false");
    return *this;
}

} // namespace csb::sim
