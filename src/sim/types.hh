/**
 * @file
 * Fundamental scalar types shared by every csbsim library.
 */

#ifndef CSB_SIM_TYPES_HH
#define CSB_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace csb {

/** Simulation time, measured in CPU clock cycles. */
using Tick = std::uint64_t;

/** A tick value that is never reached; used as "not scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Physical / virtual address. The simulator uses a flat 64-bit space. */
using Addr = std::uint64_t;

/** Process (address-space) identifier, as held in a privileged register. */
using ProcId = std::uint16_t;

/** Identifier of a bus master port. */
using MasterId = std::uint16_t;

/**
 * Round @p value up to the next multiple of @p align.
 * @pre align is a power of two.
 */
constexpr Addr
roundUp(Addr value, Addr align)
{
    return (value + align - 1) & ~(align - 1);
}

/**
 * Round @p value down to the previous multiple of @p align.
 * @pre align is a power of two.
 */
constexpr Addr
roundDown(Addr value, Addr align)
{
    return value & ~(align - 1);
}

/** @return true when @p value is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace csb

#endif // CSB_SIM_TYPES_HH
