#include "event_queue.hh"

namespace csb::sim {

namespace {

/** Event adapter that runs a std::function exactly once. */
class FuncEvent : public Event
{
  public:
    FuncEvent(std::function<void()> fn, int pri,
              std::shared_ptr<detail::FuncEventState> state)
        : Event(static_cast<Priority>(pri)), fn_(std::move(fn)),
          state_(std::move(state))
    {}

    void
    process() override
    {
        state_->done = true;
        fn_();
    }

    std::string name() const override { return "func-event"; }

  private:
    std::function<void()> fn_;
    std::shared_ptr<detail::FuncEventState> state_;
};

} // namespace

Event::~Event()
{
    csb_assert(!scheduled_, "event destroyed while scheduled");
}

void
EventHandle::cancel()
{
    if (pending()) {
        queue_->deschedule(state_->event);
        state_->done = true;
    }
}

EventQueue::~EventQueue()
{
    // Drain remaining entries without firing them; free owned events.
    while (!queue_.empty()) {
        Entry entry = queue_.top();
        queue_.pop();
        if (entry.event->seq_ == entry.seq) {
            entry.event->scheduled_ = false;
            if (entry.event->selfDeleting_)
                delete entry.event;
        }
    }
}

void
EventQueue::schedule(Event *event, Tick when)
{
    csb_assert(!event->scheduled_, "double-schedule of ", event->name());
    csb_assert(when >= curTick_, "scheduling ", event->name(),
               " in the past: ", when, " < ", curTick_);
    event->when_ = when;
    event->seq_ = nextSeq_++;
    event->scheduled_ = true;
    queue_.push(Entry{when, event->priority_, event->seq_, event});
}

void
EventQueue::deschedule(Event *event)
{
    csb_assert(event->scheduled_, "deschedule of idle event");
    // Lazy removal: the stale heap entry is detected by its sequence
    // number when popped.
    event->scheduled_ = false;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    csb_assert(!event->selfDeleting_,
               "cannot reschedule a one-shot function event");
    if (event->scheduled_)
        event->scheduled_ = false;
    schedule(event, when);
}

EventHandle
EventQueue::scheduleFunc(Tick when, std::function<void()> fn, int priority)
{
    auto state = std::make_shared<detail::FuncEventState>();
    auto *ev = new FuncEvent(std::move(fn), priority, state);
    ev->selfDeleting_ = true;
    state->event = ev;
    schedule(ev, when);
    return EventHandle(this, std::move(state));
}

bool
EventQueue::empty() const
{
    return nextTick() == maxTick;
}

Tick
EventQueue::nextTick() const
{
    // Skip lazily removed entries.
    auto copy = queue_;
    while (!copy.empty()) {
        const Entry &entry = copy.top();
        if (entry.event->scheduled_ && entry.event->seq_ == entry.seq)
            return entry.when;
        copy.pop();
    }
    return maxTick;
}

bool
EventQueue::entryLive(const Entry &entry) const
{
    return entry.event->scheduled_ && entry.event->seq_ == entry.seq;
}

void
EventQueue::discard(const Entry &entry)
{
    // A cancelled one-shot function event is owned by the queue; free
    // it once its (only) heap entry is dropped.  A rescheduled caller-
    // owned event is still live under a newer sequence number.
    if (entry.event->seq_ == entry.seq && !entry.event->scheduled_ &&
        entry.event->selfDeleting_) {
        delete entry.event;
    }
}

void
EventQueue::fire(Event *event)
{
    event->scheduled_ = false;
    event->seq_ = 0;
    ++numProcessed_;
    event->process();
    if (event->selfDeleting_ && !event->scheduled_)
        delete event;
}

bool
EventQueue::serviceOne()
{
    while (!queue_.empty()) {
        Entry entry = queue_.top();
        queue_.pop();
        if (!entryLive(entry)) {
            discard(entry);
            continue;
        }
        csb_assert(entry.when >= curTick_, "event in the past");
        curTick_ = entry.when;
        fire(entry.event);
        return true;
    }
    return false;
}

void
EventQueue::serviceUntil(Tick now)
{
    csb_assert(now >= curTick_, "time going backwards");
    while (!queue_.empty()) {
        Entry entry = queue_.top();
        if (entryLive(entry) && entry.when > now)
            break;
        queue_.pop();
        if (!entryLive(entry)) {
            discard(entry);
            continue;
        }
        curTick_ = entry.when;
        fire(entry.event);
    }
    curTick_ = now;
}

} // namespace csb::sim
