#include "event_queue.hh"

#include <algorithm>
#include <utility>

namespace csb::sim {

namespace {

/**
 * Event adapter that runs a std::function exactly once.
 *
 * Instances are owned by the queue and recycled through its free
 * list, so the steady-state cost of scheduleFunc() is a pool pop and
 * a std::function move -- no heap allocation.
 */
class FuncEvent : public Event
{
  public:
    FuncEvent() = default;

    void
    process() override
    {
        state->done = true;
        // Move the callback out so its closure is released as soon as
        // it returns, even though the event itself is recycled.
        auto fn_local = std::move(fn);
        fn = nullptr;
        fn_local();
    }

    std::string name() const override { return "func-event"; }

    std::function<void()> fn;
    std::shared_ptr<detail::FuncEventState> state;
};

/** Compact once the heap is this large and mostly stale. */
constexpr std::size_t compactMinHeapSize = 64;

} // namespace

Event::~Event()
{
    csb_assert(!scheduled_, "event destroyed while scheduled");
}

void
EventHandle::cancel()
{
    if (pending())
        queue_->cancelFunc(*state_);
}

EventQueue::~EventQueue()
{
    // Drain remaining entries without firing them.  Marking the
    // handle state of every pending function event done here keeps
    // EventHandle::pending()/cancel() safe on handles that outlive
    // the queue.
    for (const Entry &entry : heap_) {
        if (!entryLive(entry))
            continue;
        entry.event->scheduled_ = false;
        if (entry.event->selfDeleting_)
            recycleFunc(entry.event);
    }
    for (Event *event : funcPool_)
        delete event;
}

void
EventQueue::schedule(Event *event, Tick when)
{
    csb_assert(!event->scheduled_, "double-schedule of ", event->name());
    csb_assert(when >= curTick_, "scheduling ", event->name(),
               " in the past: ", when, " < ", curTick_);
    event->when_ = when;
    event->seq_ = nextSeq_++;
    event->scheduled_ = true;
    heap_.push_back(Entry{when, event->priority_, event->seq_, event});
    std::push_heap(heap_.begin(), heap_.end(), Compare{});
    ++liveCount_;
    if (cacheValid_ && when < cachedNextTick_)
        cachedNextTick_ = when;
}

void
EventQueue::deschedule(Event *event)
{
    csb_assert(event->scheduled_, "deschedule of idle event");
    csb_assert(liveCount_ > 0, "live-count underflow");
    // Lazy removal: the stale heap entry is detected by its sequence
    // number; compaction bounds how many such entries accumulate.
    event->scheduled_ = false;
    --liveCount_;
    if (cacheValid_ && event->when_ <= cachedNextTick_)
        cacheValid_ = false;
    if (liveCount_ == 0)
        heap_.clear();
    else
        maybeCompact();
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    csb_assert(!event->selfDeleting_,
               "cannot reschedule a one-shot function event");
    if (event->scheduled_)
        deschedule(event);
    schedule(event, when);
}

EventHandle
EventQueue::scheduleFunc(Tick when, std::function<void()> fn, int priority)
{
    FuncEvent *ev;
    if (!funcPool_.empty()) {
        ev = static_cast<FuncEvent *>(funcPool_.back());
        funcPool_.pop_back();
    } else {
        ev = new FuncEvent;
        ev->selfDeleting_ = true;
    }
    ev->priority_ = priority;
    ev->fn = std::move(fn);
    // Reuse the attached handle state only when no old handle still
    // references it; otherwise that handle would observe this event.
    if (!ev->state || ev->state.use_count() != 1)
        ev->state = std::make_shared<detail::FuncEventState>();
    ev->state->event = ev;
    ev->state->done = false;
    schedule(ev, when);
    return EventHandle(this, ev->state);
}

void
EventQueue::cancelFunc(detail::FuncEventState &state)
{
    Event *event = state.event;
    csb_assert(event && event->scheduled_, "cancel of idle func event");
    deschedule(event);
    // Recycle immediately: the closure is freed now rather than when
    // the stale heap entry would have fired, and the event is ready
    // for the next scheduleFunc().
    recycleFunc(event);
}

void
EventQueue::recycleFunc(Event *event)
{
    auto *fe = static_cast<FuncEvent *>(event);
    fe->fn = nullptr;
    if (fe->state) {
        fe->state->done = true;
        fe->state->event = nullptr;
    }
    funcPool_.push_back(fe);
}

Tick
EventQueue::nextTick() const
{
    if (liveCount_ == 0)
        return maxTick;
    if (cacheValid_)
        return cachedNextTick_;
    purgeDeadTop();
    cachedNextTick_ = heap_.front().when;
    cacheValid_ = true;
    return cachedNextTick_;
}

void
EventQueue::advanceTo(Tick when)
{
    csb_assert(when >= curTick_, "time going backwards");
    csb_assert(nextTick() >= when, "advancing past a pending event");
    curTick_ = when;
}

void
EventQueue::purgeDeadTop() const
{
    while (!heap_.empty() && !entryLive(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), Compare{});
        heap_.pop_back();
    }
}

void
EventQueue::popAndFire()
{
    Entry entry = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Compare{});
    heap_.pop_back();
    --liveCount_;
    cacheValid_ = false;
    curTick_ = entry.when;
    fire(entry.event);
}

void
EventQueue::fire(Event *event)
{
    event->scheduled_ = false;
    event->seq_ = 0;
    ++numProcessed_;
    event->process();
    if (event->selfDeleting_ && !event->scheduled_)
        recycleFunc(event);
}

void
EventQueue::maybeCompact()
{
    const std::size_t dead = heap_.size() - liveCount_;
    if (heap_.size() < compactMinHeapSize || dead <= liveCount_)
        return;
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Entry &entry) {
                                   return !entryLive(entry);
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Compare{});
    // The live set is unchanged, so the cached next tick stays valid.
    ++numCompactions_;
}

bool
EventQueue::serviceOne()
{
    if (liveCount_ == 0) {
        heap_.clear();
        return false;
    }
    purgeDeadTop();
    csb_assert(heap_.front().when >= curTick_, "event in the past");
    popAndFire();
    return true;
}

void
EventQueue::serviceUntil(Tick now)
{
    csb_assert(now >= curTick_, "time going backwards");
    while (liveCount_ > 0) {
        purgeDeadTop();
        if (heap_.front().when > now) {
            // Free cache refresh: the front is the next live event.
            cachedNextTick_ = heap_.front().when;
            cacheValid_ = true;
            break;
        }
        popAndFire();
    }
    if (liveCount_ == 0 && !heap_.empty())
        heap_.clear();
    curTick_ = now;
}

} // namespace csb::sim
