/**
 * @file
 * Discrete event queue.
 *
 * Two usage styles are supported:
 *  - subclassing Event and overriding process(), gem5 style;
 *  - scheduling a std::function via EventQueue::scheduleFunc(), which
 *    returns a handle that can cancel the callback.
 *
 * Events at the same tick fire in (priority, insertion-order) order,
 * which keeps the simulation fully deterministic.
 *
 * The kernel is built for the hot path:
 *  - nextTick()/empty() are O(1): the next live tick is cached and
 *    the cache is invalidated on schedule/deschedule, so peeking never
 *    walks (let alone copies) the heap;
 *  - cancellation is lazy (stale heap entries are detected by sequence
 *    mismatch), but the heap is compacted eagerly once stale entries
 *    outnumber live ones, bounding memory under cancel-heavy churn;
 *  - scheduleFunc() recycles its one-shot events and their handle
 *    state through a free list, so the common case allocates nothing.
 */

#ifndef CSB_SIM_EVENT_QUEUE_HH
#define CSB_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace csb::sim {

class EventQueue;

/** Base class for schedulable events. */
class Event
{
  public:
    /** Lower value fires first within a tick. */
    enum Priority : int {
        MaximumPri = -100,
        DefaultPri = 0,
        StatDumpPri = 50,
        MinimumPri = 100,
    };

    explicit Event(Priority pri = DefaultPri)
        : priority_(pri)
    {}

    virtual ~Event();

    /** Invoked when the event fires. */
    virtual void process() = 0;

    /** @return descriptive name used in traces. */
    virtual std::string name() const { return "event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    int priority_;
    bool scheduled_ = false;
    /** Set when the owning queue should delete the event after firing. */
    bool selfDeleting_ = false;
};

namespace detail {

/** Shared bookkeeping between a scheduleFunc() event and its handle. */
struct FuncEventState
{
    Event *event = nullptr;
    /** True once the callback has fired or been cancelled. */
    bool done = false;
};

} // namespace detail

/**
 * Handle returned by scheduleFunc(); safe to use after the event fired
 * and after the owning queue was destroyed.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the callback if it has not fired yet. */
    void cancel();

    /** @return true while the callback is still pending. */
    bool pending() const { return state_ && !state_->done; }

  private:
    friend class EventQueue;

    EventHandle(EventQueue *queue,
                std::shared_ptr<detail::FuncEventState> state)
        : queue_(queue), state_(std::move(state))
    {}

    EventQueue *queue_ = nullptr;
    std::shared_ptr<detail::FuncEventState> state_;
};

/**
 * Priority queue of events ordered by (tick, priority, sequence).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p event at absolute tick @p when (>= curTick()). */
    void schedule(Event *event, Tick when);

    /** Remove a pending event. */
    void deschedule(Event *event);

    /** Reschedule to a new tick, whether or not currently scheduled. */
    void reschedule(Event *event, Tick when);

    /**
     * Schedule a one-shot callback at absolute tick @p when.
     * The returned handle may be used to cancel it.
     */
    EventHandle scheduleFunc(Tick when, std::function<void()> fn,
                             int priority = Event::DefaultPri);

    /** @return true when no events are pending.  O(1). */
    bool empty() const { return liveCount_ == 0; }

    /**
     * Tick of the next pending event, or maxTick when empty.  O(1)
     * when the cached peek is valid (amortized O(log n) otherwise,
     * popping stale entries off the heap top).
     */
    Tick nextTick() const;

    /**
     * Advance time to @p when without firing anything.
     * @pre no live event is scheduled before @p when.
     */
    void advanceTo(Tick when);

    /**
     * Advance time to the next event and fire every event scheduled
     * for that tick.  @return false when the queue was empty.
     */
    bool serviceOne();

    /** Fire all events with when() <= @p now, advancing curTick. */
    void serviceUntil(Tick now);

    /** Number of events processed so far (for stats / debugging). */
    std::uint64_t numProcessed() const { return numProcessed_; }

    /** Live (scheduled, not cancelled) events pending.  Exact. */
    std::size_t numPending() const { return liveCount_; }

    /**
     * Heap slots currently allocated, including stale entries of
     * cancelled or rescheduled events (>= numPending(); for tests and
     * the perf bench).
     */
    std::size_t heapSize() const { return heap_.size(); }

    /** Times the heap was compacted to evict stale entries. */
    std::uint64_t numCompactions() const { return numCompactions_; }

    /** One-shot function events parked on the free list. */
    std::size_t funcPoolSize() const { return funcPool_.size(); }

  private:
    friend class EventHandle;

    /** Heap entry; stale entries are detected by sequence mismatch. */
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *event;
    };

    /**
     * Min-heap order for std::push_heap/pop_heap: the comparator says
     * "fires later", so the heap front is the earliest entry.
     */
    struct Compare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    bool
    entryLive(const Entry &entry) const
    {
        return entry.event->scheduled_ && entry.event->seq_ == entry.seq;
    }

    /** Pop stale entries until the heap front is live (or empty). */
    void purgeDeadTop() const;

    /** Drop the heap front (must be live) and fire its event. */
    void popAndFire();

    void fire(Event *event);

    /** Rebuild the heap with live entries only when stale ones win. */
    void maybeCompact();

    /** Cancel a pending scheduleFunc() callback via its handle state. */
    void cancelFunc(detail::FuncEventState &state);

    /** Park a finished/cancelled one-shot event on the free list. */
    void recycleFunc(Event *event);

    /**
     * The heap is logically state, but stale-entry purging from const
     * peeks is not observable, hence mutable.
     */
    mutable std::vector<Entry> heap_;
    /** Live entries in heap_ (heap_.size() - liveCount_ are stale). */
    std::size_t liveCount_ = 0;
    /** Cached next-live tick; invalidated on schedule/deschedule/pop. */
    mutable Tick cachedNextTick_ = maxTick;
    mutable bool cacheValid_ = false;
    /** Recycled one-shot function events (owned). */
    std::vector<Event *> funcPool_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t numProcessed_ = 0;
    std::uint64_t numCompactions_ = 0;
};

} // namespace csb::sim

#endif // CSB_SIM_EVENT_QUEUE_HH
