/**
 * @file
 * Discrete event queue.
 *
 * Two usage styles are supported:
 *  - subclassing Event and overriding process(), gem5 style;
 *  - scheduling a std::function via EventQueue::scheduleFunc(), which
 *    returns a handle that can cancel the callback.
 *
 * Events at the same tick fire in (priority, insertion-order) order,
 * which keeps the simulation fully deterministic.
 */

#ifndef CSB_SIM_EVENT_QUEUE_HH
#define CSB_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace csb::sim {

class EventQueue;

/** Base class for schedulable events. */
class Event
{
  public:
    /** Lower value fires first within a tick. */
    enum Priority : int {
        MaximumPri = -100,
        DefaultPri = 0,
        StatDumpPri = 50,
        MinimumPri = 100,
    };

    explicit Event(Priority pri = DefaultPri)
        : priority_(pri)
    {}

    virtual ~Event();

    /** Invoked when the event fires. */
    virtual void process() = 0;

    /** @return descriptive name used in traces. */
    virtual std::string name() const { return "event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    int priority_;
    bool scheduled_ = false;
    /** Set when the owning queue should delete the event after firing. */
    bool selfDeleting_ = false;
};

namespace detail {

/** Shared bookkeeping between a scheduleFunc() event and its handle. */
struct FuncEventState
{
    Event *event = nullptr;
    /** True once the callback has fired or been cancelled. */
    bool done = false;
};

} // namespace detail

/** Handle returned by scheduleFunc(); safe to use after the event fired. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Cancel the callback if it has not fired yet. */
    void cancel();

    /** @return true while the callback is still pending. */
    bool pending() const { return state_ && !state_->done; }

  private:
    friend class EventQueue;

    EventHandle(EventQueue *queue,
                std::shared_ptr<detail::FuncEventState> state)
        : queue_(queue), state_(std::move(state))
    {}

    EventQueue *queue_ = nullptr;
    std::shared_ptr<detail::FuncEventState> state_;
};

/**
 * Priority queue of events ordered by (tick, priority, sequence).
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p event at absolute tick @p when (>= curTick()). */
    void schedule(Event *event, Tick when);

    /** Remove a pending event. */
    void deschedule(Event *event);

    /** Reschedule to a new tick, whether or not currently scheduled. */
    void reschedule(Event *event, Tick when);

    /**
     * Schedule a one-shot callback at absolute tick @p when.
     * The returned handle may be used to cancel it.
     */
    EventHandle scheduleFunc(Tick when, std::function<void()> fn,
                             int priority = Event::DefaultPri);

    /** @return true when no events are pending. */
    bool empty() const;

    /** Tick of the next pending event, or maxTick when empty. */
    Tick nextTick() const;

    /**
     * Advance time to the next event and fire every event scheduled
     * for that tick.  @return false when the queue was empty.
     */
    bool serviceOne();

    /** Fire all events with when() <= @p now, advancing curTick. */
    void serviceUntil(Tick now);

    /** Number of events processed so far (for stats / debugging). */
    std::uint64_t numProcessed() const { return numProcessed_; }

    /**
     * Heap entries currently queued (includes entries already
     * cancelled but not yet popped; an upper bound on live events).
     */
    std::size_t numPending() const { return queue_.size(); }

  private:
    /** Heap entry; stale entries are detected by sequence mismatch. */
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *event;
    };

    struct Compare
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    bool entryLive(const Entry &entry) const;
    void discard(const Entry &entry);
    void fire(Event *event);

    std::priority_queue<Entry, std::vector<Entry>, Compare> queue_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t numProcessed_ = 0;
};

} // namespace csb::sim

#endif // CSB_SIM_EVENT_QUEUE_HH
