/**
 * @file
 * Minimal streaming JSON writer shared by the stats exporter, the
 * Chrome trace-event writer, and the benchmark --json reports.
 *
 * The writer tracks nesting and comma placement so callers only name
 * structure: beginObject()/endObject(), beginArray()/endArray(),
 * key("name"), value(...).  Output is deterministic: integral doubles
 * are printed as integers, everything else with %.12g, and strings are
 * escaped per RFC 8259.
 */

#ifndef CSB_SIM_JSON_HH
#define CSB_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace csb::sim {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Format @p v the way JsonWriter::value(double) does. */
std::string jsonNumber(double v);

/** Comma-and-indentation-tracking JSON emitter. */
class JsonWriter
{
  public:
    /**
     * @param os     sink for the document (not owned).
     * @param indent spaces per nesting level; 0 emits compact JSON.
     */
    explicit JsonWriter(std::ostream &os, int indent = 2)
        : os_(os), indent_(indent)
    {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(bool v);

    /** key(k) followed by value(v), for any supported value type. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

  private:
    enum class Scope { Object, Array };

    void separator();
    void newline();
    void raw(const std::string &text);

    std::ostream &os_;
    int indent_;
    std::vector<Scope> scopes_;
    std::vector<bool> hasItems_;
    bool afterKey_ = false;
};

} // namespace csb::sim

#endif // CSB_SIM_JSON_HH
