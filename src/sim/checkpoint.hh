/**
 * @file
 * Simulator checkpoint container and the CSBC on-disk format.
 *
 * A checkpoint is an ordered sequence of named sections, one per
 * serialized component ("sim", "mem", "cpu0.arch", ...), each holding
 * an opaque little-endian payload written and read with the typed
 * accessors below.  The container layout (magic "CSBC", version 1) is
 * specified normatively in docs/CHECKPOINT.md.
 *
 * The reader is strict by construction: opening a missing section,
 * reading past a section's end, or closing a section before consuming
 * every payload byte throws FatalError.  Component save/restore code
 * is therefore self-checking -- any drift between the writer and the
 * reader of a section fails loudly instead of silently misaligning
 * every following field.
 *
 * Checkpoints are taken only at quiescent boundaries
 * (core::System::saveCheckpoint) and restored only into a freshly
 * constructed, identically configured system; a config fingerprint
 * section enforces the latter.
 */

#ifndef CSB_SIM_CHECKPOINT_HH
#define CSB_SIM_CHECKPOINT_HH

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "types.hh"

namespace csb::sim {

/** Builds a CSBC checkpoint section by section. */
class CheckpointWriter
{
  public:
    /** Open a new section; typed puts append to it until the next. */
    void beginSection(const std::string &name);

    void putU8(std::uint8_t v) { put(v, 1); }
    void putU32(std::uint32_t v) { put(v, 4); }
    void putU64(std::uint64_t v) { put(v, 8); }
    void putF64(double v) { put(std::bit_cast<std::uint64_t>(v), 8); }

    /** Length-prefixed byte string. */
    void putBytes(const void *data, std::uint64_t size);

    /** Length-prefixed UTF-8 string. */
    void
    putStr(const std::string &s)
    {
        putBytes(s.data(), s.size());
    }

    /** Serialize every section as CSBC v1 to @p os. */
    void writeTo(std::ostream &os) const;

    /** Serialize to @p path; throws FatalError when unwritable. */
    void writeFile(const std::string &path) const;

    std::size_t numSections() const { return sections_.size(); }

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    void put(std::uint64_t v, unsigned bytes);

    std::vector<Section> sections_;
};

/**
 * Parses a CSBC checkpoint and serves sections to component restore
 * code.  Every accessor validates bounds; closeSection() additionally
 * demands the payload was consumed exactly, so a component that reads
 * less (or more) than its saver wrote fails immediately.
 */
class CheckpointReader
{
  public:
    /** Parse a CSBC stream; throws FatalError on malformed input. */
    static CheckpointReader readFrom(std::istream &is);

    /** Parse the CSBC file at @p path; throws FatalError on error. */
    static CheckpointReader loadFile(const std::string &path);

    bool hasSection(const std::string &name) const;

    /** Position the cursor at section @p name; fatal when absent. */
    void openSection(const std::string &name);

    /** Assert the open section was consumed exactly, then leave it. */
    void closeSection();

    std::uint8_t getU8() { return std::uint8_t(get(1)); }
    std::uint32_t getU32() { return std::uint32_t(get(4)); }
    std::uint64_t getU64() { return get(8); }
    double getF64() { return std::bit_cast<double>(get(8)); }

    /** Read a length-prefixed byte string. */
    std::vector<std::uint8_t> getBytes();

    /** Read a length-prefixed UTF-8 string. */
    std::string getStr();

    std::size_t numSections() const { return sections_.size(); }

  private:
    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::uint64_t get(unsigned bytes);

    std::vector<Section> sections_;
    std::size_t current_ = SIZE_MAX;
    std::size_t cursor_ = 0;
};

} // namespace csb::sim

#endif // CSB_SIM_CHECKPOINT_HH
