/**
 * @file
 * Fixed-size worker pool with a bounded task queue.
 *
 * The pool exists to run *independent deterministic simulations*
 * concurrently (see core/sweep.hh): workers never share simulation
 * state, so the pool itself is the only synchronization point.  The
 * queue is bounded (classic SPSC/MPMC back-pressure, cf. Torquati's
 * study of producer/consumer queues on shared-cache multicores):
 * submit() blocks once `capacity` tasks are waiting, which keeps a
 * sweep's memory footprint flat no matter how many points it has.
 *
 * Exceptions thrown by tasks are captured; the first one (in
 * completion order) is rethrown from wait() -- the join point.
 * Callers that need *deterministic* exception selection should catch
 * per task and pick their own winner, as core::SweepRunner does.
 */

#ifndef CSB_SIM_THREAD_POOL_HH
#define CSB_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csb::sim {

class ThreadPool
{
  public:
    /**
     * Start @p threads workers (0 picks defaultThreads()).  The task
     * queue holds at most @p capacity pending tasks (0 picks
     * 2 x threads); submit() blocks while it is full.
     */
    explicit ThreadPool(unsigned threads = 0, std::size_t capacity = 0);

    /** Runs every submitted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task; blocks while the queue is at capacity.  Must
     * not be called from inside a pool task (a full queue would
     * deadlock the worker against itself).
     */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has finished, then
     * rethrow the first captured task exception, if any.  The pool
     * stays usable afterwards.
     */
    void wait();

    /** Worker count (always >= 1). */
    unsigned numThreads() const { return unsigned(workers_.size()); }

    /** Tasks executed to completion so far (including ones that threw). */
    std::uint64_t tasksRun() const;

    /** max(1, std::thread::hardware_concurrency()). */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable queueNotFull_;
    std::condition_variable queueNotEmpty_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_;
    std::size_t capacity_ = 0;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    std::uint64_t tasksRun_ = 0;
    std::exception_ptr firstError_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace csb::sim

#endif // CSB_SIM_THREAD_POOL_HH
