/**
 * @file
 * Deterministic pseudo-random source for workload generators.
 *
 * Simulation results must be reproducible bit-for-bit, so all random
 * behaviour flows through this explicitly seeded generator rather
 * than std::random_device.
 */

#ifndef CSB_SIM_RANDOM_HH
#define CSB_SIM_RANDOM_HH

#include <array>
#include <cstdint>

#include "logging.hh"

namespace csb::sim {

/** xoshiro256** -- fast, high-quality, fully deterministic. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 expansion of the seed into the state vector.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        csb_assert(lo <= hi, "bad uniform range");
        return lo + next() % (hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform01() < p; }

    /**
     * Raw generator state, for checkpointing (docs/CHECKPOINT.md).
     * Restoring the four words resumes the exact draw sequence.
     */
    std::array<std::uint64_t, 4>
    rawState() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Restore state captured by rawState(). */
    void
    setRawState(const std::array<std::uint64_t, 4> &state)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = state[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace csb::sim

#endif // CSB_SIM_RANDOM_HH
