/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * Production-scale simulators treat fault paths as first-class: every
 * adverse event (a NACKed bus transaction, a dropped or corrupted
 * packet on the NI wire, a lost acknowledgment) flows through one
 * seeded injector so that a faulty run is exactly as reproducible as
 * a clean one.  Each fault site draws from its own independent
 * xoshiro256** stream derived from the plan seed, so enabling or
 * re-rating one site never perturbs the decisions made at another --
 * and a site whose rate is zero never draws at all, which is what
 * makes the machinery bit-for-bit invisible when disabled.
 *
 * Beyond uniform Bernoulli rates, a plan may carry a *fault schedule*
 * (docs/FAULTS.md): time-windowed bursts, duty-cycled brownouts,
 * one-shot events, and escalating storms, composable per site and
 * parseable from a compact spec string shared by benches, the fault-
 * campaign runner, and the litmus matrix.  A site with no schedule
 * entries takes exactly the pre-schedule code path, so plans without
 * schedules remain bit-for-bit identical to builds that predate them.
 *
 * Replay guarantee: (plan, program, configuration) fully determine
 * every injected fault.  To reproduce a failure, re-run with the same
 * FaultPlan; to explore a different schedule, change only the seed.
 */

#ifndef CSB_SIM_FAULT_HH
#define CSB_SIM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "random.hh"
#include "stats.hh"
#include "types.hh"

namespace csb::sim {

/** Where a fault can be injected. */
enum class FaultSite : unsigned
{
    BusWriteNack,  ///< write transaction NACKed at completion
    BusReadNack,   ///< read transaction NACKed at the address phase
    BusError,      ///< hard error response (non-retryable)
    WireDrop,      ///< NI wire loses the packet in flight
    WireCorrupt,   ///< NI wire flips payload bits (checksum catches it)
    AckDrop,       ///< NI delivery acknowledgment is lost
    /**
     * DEBUG-ONLY model-bug knob: a successful conditional flush's line
     * is silently discarded instead of being issued to the bus.  This
     * deliberately VIOLATES the CSB's exactly-once contract; it exists
     * so the litmus harness (docs/LITMUS.md) can prove it detects and
     * shrinks real ordering bugs.  Never enable it in experiments.
     */
    CsbFlushDrop,
    /**
     * The BurstDevice stops accepting writes (its accept() hook NACKs
     * every transaction while the site is active).  Normally driven by
     * a scheduled hang window at rate 1.0, which never draws from the
     * RNG stream -- masters see sustained NACKs, exhaust their retry
     * budgets, and must recover (docs/FAULTS.md).
     */
    DeviceHang,
    NumSites,
};

const char *faultSiteName(FaultSite site);

/**
 * Parse a site name as printed by faultSiteName().  Throws FatalError
 * on unknown names.
 */
FaultSite faultSiteFromName(const std::string &name);

/**
 * One clause of a fault schedule: a deterministic, time-dependent
 * contribution to a site's injection rate (docs/FAULTS.md has the
 * grammar and semantics).  Contributions from all active entries add
 * to the site's base rate, clamped to [0, 1]; an effective rate of
 * 1.0 injects without drawing, so deterministic windows stay
 * RNG-free.
 */
struct FaultScheduleEntry
{
    enum class Kind : unsigned
    {
        Burst,     ///< constant @c rate over [start, end)
        Brownout,  ///< duty-cycled: @c rate for onTicks of every period
        OneShot,   ///< fires exactly once at the first query >= start
        Storm,     ///< rate escalates by @c multiplier every period
    };

    Kind kind = Kind::Burst;
    FaultSite site = FaultSite::BusWriteNack;
    Tick start = 0;  ///< window start (inclusive); OneShot trigger tick
    Tick end = 0;    ///< window end (exclusive); unused by OneShot
    double rate = 1.0;       ///< Burst/Brownout rate; Storm initial rate
    Tick period = 0;         ///< Brownout duty period; Storm escalation period
    Tick onTicks = 0;        ///< Brownout active portion of each period
    double multiplier = 2.0; ///< Storm per-period rate multiplier

    /** Rate contribution at @p now (OneShot handled by the injector). */
    double contributionAt(Tick now) const;

    /** Throws FatalError when the entry is malformed. */
    void validate() const;

    /** Render in the schedule-spec grammar (docs/FAULTS.md). */
    std::string spec() const;
};

/**
 * Parse a schedule spec string -- ';'-separated clauses, e.g.
 * "burst:bus-write-nack:1000..5000:0.3;hang:8000..12000" -- into
 * entries (docs/FAULTS.md documents the full grammar, including the
 * "hang" and "flap" sugar).  Throws FatalError on syntax errors.
 */
std::vector<FaultScheduleEntry> parseFaultSchedule(const std::string &spec);

/** Render @p schedule back into the spec grammar (parse round-trip). */
std::string faultScheduleSpec(
    const std::vector<FaultScheduleEntry> &schedule);

/**
 * The fault plan: one Bernoulli rate per site plus the master seed,
 * optionally extended with a schedule of time-dependent entries.
 * All rates default to zero and the schedule to empty, which disables
 * injection entirely (and costs nothing at the fault sites).
 */
struct FaultPlan
{
    std::uint64_t seed = 1;
    /** Probability a completed bus write is NACKed (not delivered). */
    double busWriteNackRate = 0;
    /** Probability a bus read is NACKed at its address phase. */
    double busReadNackRate = 0;
    /** Probability of a hard (non-retryable) bus error response. */
    double busErrorRate = 0;
    /** Probability an NI wire packet is dropped in flight. */
    double wireDropRate = 0;
    /** Probability an NI wire packet is corrupted in flight. */
    double wireCorruptRate = 0;
    /** Probability a delivery acknowledgment is lost. */
    double ackDropRate = 0;
    /**
     * Probability a successful conditional flush's line is dropped on
     * the floor (the FaultSite::CsbFlushDrop debug knob).  Unlike the
     * other sites this models a hardware BUG, not an environmental
     * fault: runs with it enabled are expected to FAIL differential
     * checking.  The litmus harness's self-tests are the only
     * legitimate user.
     */
    double csbFlushDropRate = 0;
    /**
     * Probability the BurstDevice NACKs an accepted write.  Usually
     * left 0 and driven by a scheduled hang window instead.
     */
    double deviceHangRate = 0;

    /**
     * Scheduled adversity layered on top of the base rates.  Empty by
     * default; a site with no entries is bit-for-bit identical to a
     * schedule-free build.
     */
    std::vector<FaultScheduleEntry> schedule;

    /** @return the base (schedule-independent) rate for @p site. */
    double rate(FaultSite site) const;

    /** @return true when @p site has any schedule entry. */
    bool scheduled(FaultSite site) const;

    /** @return true when any site has a nonzero rate or an entry. */
    bool enabled() const;

    /** @return true when any bus-level site (including DeviceHang)
     * has a nonzero rate or a schedule entry. */
    bool busFaultsEnabled() const;

    /** @return true when any NI-wire site has a nonzero rate or a
     * schedule entry. */
    bool wireFaultsEnabled() const;

    /** @return true when the CsbFlushDrop debug knob is armed. */
    bool csbBugEnabled() const;

    /**
     * A stable hash of the schedule contents, mixed into the System
     * config fingerprint so a checkpoint taken under one schedule is
     * rejected by a restore under another.
     */
    std::uint64_t scheduleFingerprint() const;

    /** Throws FatalError when a rate or schedule entry is invalid. */
    void validate() const;
};

/**
 * Draws fault decisions and counts every injection per site.  One
 * injector serves a whole System; components hold a plain pointer and
 * treat null as "no faults".
 */
class FaultInjector : public stats::StatGroup
{
  public:
    explicit FaultInjector(const FaultPlan &plan,
                           std::string name = "faults",
                           stats::StatGroup *stat_parent = nullptr);

    /**
     * Deterministic Bernoulli draw for @p site at tick @p now.  A
     * site with no schedule entries ignores @p now and never draws
     * from the stream (and never counts) when its rate is zero, so a
     * disabled site is bit-for-bit free.  For scheduled sites the
     * effective rate is base + active contributions clamped to
     * [0, 1]; an effective rate of 1.0 injects without drawing.
     */
    bool shouldFault(FaultSite site, Tick now);

    /**
     * Read-only view of the effective rate at @p now: no draw, no
     * counting, no one-shot consumption.  Used by diagnostics.
     */
    double effectiveRate(FaultSite site, Tick now) const;

    const FaultPlan &plan() const { return plan_; }

    /** Injection count for @p site (for dumps and scorecards). */
    std::uint64_t injectedAt(FaultSite site) const;

    /** One line per site with nonzero injections, for debugDump. */
    void debugDump(std::ostream &os) const;

    /**
     * Serialize the per-site RNG streams and one-shot fired flags
     * (the counters travel with the stats tree).  Restoring resumes
     * every site's draw sequence exactly where the checkpointed run
     * left it.
     */
    void checkpointSave(CheckpointWriter &cw) const;

    /** Restore the streams written by checkpointSave(). */
    void checkpointRestore(CheckpointReader &cr);

    // One injection counter per site (also visible in the JSON stats
    // tree under this group).
    stats::Scalar busWriteNacks;
    stats::Scalar busReadNacks;
    stats::Scalar busErrors;
    stats::Scalar wireDrops;
    stats::Scalar wireCorruptions;
    stats::Scalar ackDrops;
    stats::Scalar csbFlushDrops;
    stats::Scalar deviceHangNacks;

  private:
    stats::Scalar &counterFor(FaultSite site);
    const stats::Scalar &counterFor(FaultSite site) const;

    FaultPlan plan_;
    Random streams_[static_cast<unsigned>(FaultSite::NumSites)];
    /** Indices into plan_.schedule, bucketed by site. */
    std::vector<std::uint32_t>
        entriesFor_[static_cast<unsigned>(FaultSite::NumSites)];
    /** Fired flag per OneShot entry, indexed like plan_.schedule. */
    std::vector<std::uint8_t> oneShotFired_;
};

} // namespace csb::sim

#endif // CSB_SIM_FAULT_HH
