/**
 * @file
 * Deterministic, seeded fault injection.
 *
 * Production-scale simulators treat fault paths as first-class: every
 * adverse event (a NACKed bus transaction, a dropped or corrupted
 * packet on the NI wire, a lost acknowledgment) flows through one
 * seeded injector so that a faulty run is exactly as reproducible as
 * a clean one.  Each fault site draws from its own independent
 * xoshiro256** stream derived from the plan seed, so enabling or
 * re-rating one site never perturbs the decisions made at another --
 * and a site whose rate is zero never draws at all, which is what
 * makes the machinery bit-for-bit invisible when disabled.
 *
 * Replay guarantee: (plan, program, configuration) fully determine
 * every injected fault.  To reproduce a failure, re-run with the same
 * FaultPlan; to explore a different schedule, change only the seed.
 */

#ifndef CSB_SIM_FAULT_HH
#define CSB_SIM_FAULT_HH

#include <cstdint>
#include <string>

#include "random.hh"
#include "stats.hh"

namespace csb::sim {

/** Where a fault can be injected. */
enum class FaultSite : unsigned
{
    BusWriteNack,  ///< write transaction NACKed at completion
    BusReadNack,   ///< read transaction NACKed at the address phase
    BusError,      ///< hard error response (non-retryable)
    WireDrop,      ///< NI wire loses the packet in flight
    WireCorrupt,   ///< NI wire flips payload bits (checksum catches it)
    AckDrop,       ///< NI delivery acknowledgment is lost
    /**
     * DEBUG-ONLY model-bug knob: a successful conditional flush's line
     * is silently discarded instead of being issued to the bus.  This
     * deliberately VIOLATES the CSB's exactly-once contract; it exists
     * so the litmus harness (docs/LITMUS.md) can prove it detects and
     * shrinks real ordering bugs.  Never enable it in experiments.
     */
    CsbFlushDrop,
    NumSites,
};

const char *faultSiteName(FaultSite site);

/**
 * The fault plan: one Bernoulli rate per site plus the master seed.
 * All rates default to zero, which disables injection entirely (and
 * costs nothing at the fault sites).
 */
struct FaultPlan
{
    std::uint64_t seed = 1;
    /** Probability a completed bus write is NACKed (not delivered). */
    double busWriteNackRate = 0;
    /** Probability a bus read is NACKed at its address phase. */
    double busReadNackRate = 0;
    /** Probability of a hard (non-retryable) bus error response. */
    double busErrorRate = 0;
    /** Probability an NI wire packet is dropped in flight. */
    double wireDropRate = 0;
    /** Probability an NI wire packet is corrupted in flight. */
    double wireCorruptRate = 0;
    /** Probability a delivery acknowledgment is lost. */
    double ackDropRate = 0;
    /**
     * Probability a successful conditional flush's line is dropped on
     * the floor (the FaultSite::CsbFlushDrop debug knob).  Unlike the
     * other sites this models a hardware BUG, not an environmental
     * fault: runs with it enabled are expected to FAIL differential
     * checking.  The litmus harness's self-tests are the only
     * legitimate user.
     */
    double csbFlushDropRate = 0;

    /** @return the rate configured for @p site. */
    double rate(FaultSite site) const;

    /** @return true when any site has a nonzero rate. */
    bool enabled() const;

    /** @return true when any bus-level site has a nonzero rate. */
    bool busFaultsEnabled() const;

    /** @return true when any NI-wire site has a nonzero rate. */
    bool wireFaultsEnabled() const;

    /** @return true when the CsbFlushDrop debug knob is armed. */
    bool csbBugEnabled() const;

    /** Throws FatalError when a rate is outside [0, 1]. */
    void validate() const;
};

/**
 * Draws fault decisions and counts every injection per site.  One
 * injector serves a whole System; components hold a plain pointer and
 * treat null as "no faults".
 */
class FaultInjector : public stats::StatGroup
{
  public:
    explicit FaultInjector(const FaultPlan &plan,
                           std::string name = "faults",
                           stats::StatGroup *stat_parent = nullptr);

    /**
     * Deterministic Bernoulli draw for @p site.  Never draws from the
     * stream (and never counts) when the site's rate is zero, so a
     * disabled site is bit-for-bit free.
     */
    bool shouldFault(FaultSite site);

    const FaultPlan &plan() const { return plan_; }

    /**
     * Serialize the per-site RNG streams (the counters travel with
     * the stats tree).  Restoring resumes every site's draw sequence
     * exactly where the checkpointed run left it.
     */
    void checkpointSave(CheckpointWriter &cw) const;

    /** Restore the streams written by checkpointSave(). */
    void checkpointRestore(CheckpointReader &cr);

    // One injection counter per site (also visible in the JSON stats
    // tree under this group).
    stats::Scalar busWriteNacks;
    stats::Scalar busReadNacks;
    stats::Scalar busErrors;
    stats::Scalar wireDrops;
    stats::Scalar wireCorruptions;
    stats::Scalar ackDrops;
    stats::Scalar csbFlushDrops;

  private:
    stats::Scalar &counterFor(FaultSite site);

    FaultPlan plan_;
    Random streams_[static_cast<unsigned>(FaultSite::NumSites)];
};

} // namespace csb::sim

#endif // CSB_SIM_FAULT_HH
