#include "thread_pool.hh"

#include "logging.hh"

namespace csb::sim {

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads, std::size_t capacity)
{
    if (threads == 0)
        threads = defaultThreads();
    capacity_ = capacity > 0 ? capacity : std::size_t(threads) * 2;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Clean shutdown: finish everything already submitted.  A
        // destructor cannot rethrow, so an exception nobody collected
        // with wait() is intentionally dropped here.
        allIdle_.wait(lock, [this] { return inFlight_ == 0; });
        stopping_ = true;
    }
    queueNotEmpty_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    csb_assert(task != nullptr, "null task submitted to ThreadPool");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queueNotFull_.wait(
            lock, [this] { return queue_.size() < capacity_; });
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    queueNotEmpty_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allIdle_.wait(lock, [this] { return inFlight_ == 0; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

std::uint64_t
ThreadPool::tasksRun() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasksRun_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queueNotEmpty_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        queueNotFull_.notify_one();

        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }

        bool idle = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            ++tasksRun_;
            idle = --inFlight_ == 0;
        }
        if (idle)
            allIdle_.notify_all();
    }
}

} // namespace csb::sim
