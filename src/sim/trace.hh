/**
 * @file
 * Debug tracing with named channels, gem5 DPRINTF style.
 *
 * Channels are registered lazily by name ("cpu", "csb", "bus", ...).
 * They are disabled by default; enable programmatically with
 * trace::enable("csb") or from the environment:
 *
 *     CSBSIM_TRACE=csb,bus ./build/examples/quickstart
 *     CSBSIM_TRACE=all     ./build/tests/cpu_test_core_basic
 *
 * Each line is prefixed with the current tick and the channel name:
 *
 *     [    1234] csb: store pid=1 addr=0x22000000 counter=3
 *
 * The tick source is registered once by the owning Simulator (or any
 * clock authority); without one, ticks print as '-'.
 */

#ifndef CSB_SIM_TRACE_HH
#define CSB_SIM_TRACE_HH

#include <functional>
#include <ostream>
#include <sstream>
#include <string>

#include "types.hh"

namespace csb::sim::trace {

/** @return true when channel @p name is enabled (cheap check). */
bool enabled(const std::string &name);

/** Enable a channel ("all" enables everything). */
void enable(const std::string &name);

/** Disable a channel ("all" clears everything). */
void disable(const std::string &name);

/** Redirect trace output (default: std::cerr).  Not owned. */
void setOutput(std::ostream *os);

/**
 * Install the tick source used for line prefixes.  The source is
 * thread-local: every Simulator registers itself on the thread it is
 * constructed on, so concurrent sweep workers each stamp lines with
 * their own simulator's ticks.
 */
void setTickSource(std::function<Tick()> source);

/** Re-read CSBSIM_TRACE from the environment (called once lazily). */
void initFromEnvironment();

namespace detail {
void emit(const std::string &channel, const std::string &message);
}

/**
 * Log to a channel.  Arguments are streamed; nothing is evaluated
 * when the channel is disabled.
 */
template <typename... Args>
void
log(const std::string &channel, Args &&...args)
{
    if (!enabled(channel))
        return;
    std::ostringstream os;
    (os << ... << args);
    detail::emit(channel, os.str());
}

} // namespace csb::sim::trace

#endif // CSB_SIM_TRACE_HH
