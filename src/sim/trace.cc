#include "trace.hh"

#include <atomic>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <set>

namespace csb::sim::trace {

namespace {

/**
 * Channel configuration is process-wide and mutex-guarded so that
 * concurrent Simulator instances (core::SweepRunner workers) can
 * trace safely.  The hot disabled path reads one relaxed atomic.
 */
struct TraceState
{
    std::mutex mutex;
    std::set<std::string> channels;
    bool all = false;
    std::atomic<bool> anyEnabled{false};
    std::atomic<bool> envLoaded{false};
    std::ostream *out = &std::cerr;
};

TraceState &
state()
{
    static TraceState instance;
    return instance;
}

/**
 * The tick source is per-thread: each sweep worker runs its own
 * Simulator, and its trace lines must show that simulator's ticks.
 */
thread_local std::function<Tick()> tickSource;

void
loadEnvOnce()
{
    TraceState &s = state();
    if (s.envLoaded.load(std::memory_order_acquire))
        return;
    const char *env = std::getenv("CSBSIM_TRACE");
    std::string spec(env != nullptr ? env : "");
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.envLoaded.load(std::memory_order_relaxed))
        return; // another thread (or an explicit enable()) won
    std::size_t start = 0;
    while (start <= spec.size() && !spec.empty()) {
        std::size_t comma = spec.find(',', start);
        std::string name =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!name.empty()) {
            if (name == "all")
                s.all = true;
            else
                s.channels.insert(name);
            s.anyEnabled.store(true, std::memory_order_relaxed);
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    s.envLoaded.store(true, std::memory_order_release);
}

} // namespace

bool
enabled(const std::string &name)
{
    loadEnvOnce();
    TraceState &s = state();
    if (!s.anyEnabled.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.all || s.channels.count(name) != 0;
}

void
enable(const std::string &name)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    // explicit control overrides lazy env load
    s.envLoaded.store(true, std::memory_order_release);
    if (name == "all") {
        s.all = true;
    } else {
        s.channels.insert(name);
    }
    s.anyEnabled.store(true, std::memory_order_relaxed);
}

void
disable(const std::string &name)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (name == "all") {
        s.all = false;
        s.channels.clear();
        s.anyEnabled.store(false, std::memory_order_relaxed);
    } else {
        s.channels.erase(name);
        s.anyEnabled.store(s.all || !s.channels.empty(),
                           std::memory_order_relaxed);
    }
}

void
setOutput(std::ostream *os)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.out = os != nullptr ? os : &std::cerr;
}

void
setTickSource(std::function<Tick()> source)
{
    tickSource = std::move(source);
}

void
initFromEnvironment()
{
    loadEnvOnce();
}

namespace detail {

void
emit(const std::string &channel, const std::string &message)
{
    TraceState &s = state();
    // Format outside the lock; the tick source is thread-local.
    std::ostringstream line;
    line << "[";
    if (tickSource) {
        line << std::setw(9) << tickSource();
    } else {
        line << std::setw(9) << "-";
    }
    line << "] " << channel << ": " << message << "\n";
    std::lock_guard<std::mutex> lock(s.mutex);
    *s.out << line.str();
}

} // namespace detail
} // namespace csb::sim::trace
