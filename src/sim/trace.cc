#include "trace.hh"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <set>

namespace csb::sim::trace {

namespace {

struct TraceState
{
    std::set<std::string> channels;
    bool all = false;
    bool anyEnabled = false;
    std::ostream *out = &std::cerr;
    std::function<Tick()> tickSource;
    bool envLoaded = false;
};

TraceState &
state()
{
    static TraceState instance;
    return instance;
}

void
loadEnvOnce()
{
    TraceState &s = state();
    if (s.envLoaded)
        return;
    s.envLoaded = true;
    const char *env = std::getenv("CSBSIM_TRACE");
    if (!env)
        return;
    std::string spec(env);
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        std::string name =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!name.empty())
            enable(name);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

} // namespace

bool
enabled(const std::string &name)
{
    loadEnvOnce();
    const TraceState &s = state();
    if (!s.anyEnabled)
        return false;
    return s.all || s.channels.count(name) != 0;
}

void
enable(const std::string &name)
{
    TraceState &s = state();
    s.envLoaded = true; // explicit control overrides lazy env load
    if (name == "all") {
        s.all = true;
    } else {
        s.channels.insert(name);
    }
    s.anyEnabled = true;
}

void
disable(const std::string &name)
{
    TraceState &s = state();
    if (name == "all") {
        s.all = false;
        s.channels.clear();
        s.anyEnabled = false;
    } else {
        s.channels.erase(name);
        s.anyEnabled = s.all || !s.channels.empty();
    }
}

void
setOutput(std::ostream *os)
{
    state().out = os != nullptr ? os : &std::cerr;
}

void
setTickSource(std::function<Tick()> source)
{
    state().tickSource = std::move(source);
}

void
initFromEnvironment()
{
    loadEnvOnce();
}

namespace detail {

void
emit(const std::string &channel, const std::string &message)
{
    TraceState &s = state();
    std::ostream &os = *s.out;
    os << "[";
    if (s.tickSource) {
        os << std::setw(9) << s.tickSource();
    } else {
        os << std::setw(9) << "-";
    }
    os << "] " << channel << ": " << message << "\n";
}

} // namespace detail
} // namespace csb::sim::trace
