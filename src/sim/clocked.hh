/**
 * @file
 * Clock domains and cycle-driven (Clocked) simulation objects.
 *
 * The CPU core runs at one tick per cycle; the system bus runs at a
 * configurable ratio of CPU cycles per bus cycle (the paper's
 * "processor to bus frequency ratio").  A Clocked object registers
 * with the Simulator and has tick() invoked on every edge of its
 * domain, in ascending evaluation-order.
 */

#ifndef CSB_SIM_CLOCKED_HH
#define CSB_SIM_CLOCKED_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "types.hh"

namespace csb::sim {

class Simulator;

/** A clock derived from the global tick (CPU cycle) count. */
class ClockDomain
{
  public:
    /**
     * @param period CPU ticks per cycle of this domain (>= 1).
     * @param phase  offset of the first edge, in ticks.
     */
    explicit ClockDomain(Tick period = 1, Tick phase = 0)
        : period_(period), phase_(phase)
    {}

    Tick period() const { return period_; }
    Tick phase() const { return phase_; }

    /** @return true when @p tick is an edge of this domain. */
    bool
    isEdge(Tick tick) const
    {
        return tick >= phase_ && (tick - phase_) % period_ == 0;
    }

    /** Cycle index of this domain at @p tick (edges count up from 0). */
    std::uint64_t
    cycleAt(Tick tick) const
    {
        return tick < phase_ ? 0 : (tick - phase_) / period_;
    }

    /** Tick of cycle @p cycle of this domain. */
    Tick
    tickOfCycle(std::uint64_t cycle) const
    {
        return phase_ + cycle * period_;
    }

    /** First edge at or after @p tick. */
    Tick
    nextEdgeAt(Tick tick) const
    {
        if (tick <= phase_)
            return phase_;
        return phase_ + roundUp(tick - phase_, period_);
    }

  private:
    Tick period_;
    Tick phase_;
};

/**
 * Base class for objects evaluated once per cycle of their domain.
 *
 * Evaluation order within a tick is ascending evalOrder(); within the
 * same order value, registration order.  By convention, consumers
 * (bus, memory) use lower values than producers (CPU) so that a value
 * produced in cycle N is consumed no earlier than cycle N+1.
 *
 * A quiescent component may gate() its clock: the simulator stops
 * evaluating it (and fast-forwards over event-free spans once every
 * registered component is gated).  The component must ungate() at
 * every point where work can arrive -- gating is purely an
 * optimisation and must never change simulated behaviour.
 */
class Clocked
{
  public:
    Clocked(std::string name, ClockDomain domain, int eval_order = 0)
        : name_(std::move(name)), domain_(domain), evalOrder_(eval_order)
    {}

    virtual ~Clocked() = default;

    /** Called on every edge of the object's clock domain. */
    virtual void tick() = 0;

    /** @return true while the clock is gated off (tick() suppressed). */
    bool gated() const { return gated_; }

    /**
     * One-line description of internal state for the watchdog's
     * diagnostic dump (pending queues, in-flight counts).  The
     * default prints nothing; components with interesting liveness
     * state override it.
     */
    virtual void debugDump(std::ostream &os) const { (void)os; }

    const std::string &name() const { return name_; }
    const ClockDomain &clockDomain() const { return domain_; }
    int evalOrder() const { return evalOrder_; }

  protected:
    /**
     * Stop clock evaluation until ungate().  Call only when the
     * component provably has nothing to do on any future edge absent
     * new input.  No-op before registration with a Simulator.
     */
    void gate();

    /** Resume clock evaluation (idempotent). */
    void ungate();

  private:
    friend class Simulator;

    std::string name_;
    ClockDomain domain_;
    int evalOrder_;
    Simulator *sim_ = nullptr;
    bool gated_ = false;
};

} // namespace csb::sim

#endif // CSB_SIM_CLOCKED_HH
