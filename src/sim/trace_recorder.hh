/**
 * @file
 * Memory-reference trace capture and the CSBT on-disk format.
 *
 * A TraceRecorder collects every data reference the core (or the
 * reference interpreter) issues to the memory system -- tick, cpu,
 * context, operation, address, size, data value and phase flags -- in
 * issue order, and serializes the stream to the versioned little-endian
 * binary format specified normatively in docs/TRACE_FORMAT.md
 * (magic "CSBT", version 1, fixed 32-byte records).
 *
 * The stream is exactly what core::ReplayCore needs to re-drive the
 * cache/ubuf/CSB/bus stack without a core: records appear in global
 * issue order (ticks are monotonically non-decreasing; within a tick,
 * event-phase records precede clocked-phase records, matching the
 * simulator's events-then-clocked tick structure), so replay never
 * sorts.
 *
 * MemTrace is the reader half: it parses a CSBT stream back into
 * records, rejecting corrupt or truncated input with FatalError, and
 * provides the human-readable text dump mode.
 */

#ifndef CSB_SIM_TRACE_RECORDER_HH
#define CSB_SIM_TRACE_RECORDER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "types.hh"

namespace csb::sim {

/** Operation kind of one recorded data reference. */
enum class TraceOp : std::uint8_t {
    CachedLoad = 0,      ///< speculative cached load (value = TLB penalty)
    CachedStore = 1,     ///< cached store at commit (value = store data)
    CachedSwapStart = 2, ///< cached SWAP issue (value = new data)
    SwapMemWrite = 3,    ///< memory write inside a SWAP completion
    UncachedLoad = 4,    ///< uncached load pushed to the uncached buffer
    UncachedStore = 5,   ///< uncached store pushed to the uncached buffer
    CsbStore = 6,        ///< combining store accepted by the CSB
    CsbFlush = 7,        ///< conditional flush (value = expected hit count)
    Membar = 8,          ///< MEMBAR retired with buffers drained
};

/** @return the mnemonic used by the text dump ("cached-load", ...). */
const char *traceOpName(TraceOp op);

/** Flag bits of TraceRecord::flags. */
enum TraceFlags : std::uint8_t {
    /**
     * The reference was issued from the event phase of its tick (a
     * latency callback), not from the core's clocked evaluation.
     * Replay must reproduce the phase, because components at negative
     * eval order observe event-phase state a tick earlier.
     */
    TraceFlagEventPhase = 1u << 0,
    /** The reference is one half of a SWAP read-modify-write. */
    TraceFlagSwap = 1u << 1,
    /** Bits 2-3 carry the mem::PageAttr of the referenced page. */
    TraceFlagAttrShift = 2,
    TraceFlagAttrMask = 0x3u << TraceFlagAttrShift,
    /** Recorded by the reference interpreter (tick = step index). */
    TraceFlagInterpreter = 1u << 4,
};

/** One recorded data reference; fixed 32-byte on-disk layout. */
struct TraceRecord
{
    Tick tick = 0;           ///< CPU tick (interpreter: step index)
    Addr addr = 0;           ///< physical address
    std::uint64_t value = 0; ///< op-dependent payload (see TraceOp)
    std::uint32_t pid = 0;   ///< issuing context's process id
    TraceOp op = TraceOp::CachedLoad;
    std::uint8_t cpu = 0;    ///< issuing core index
    std::uint8_t size = 0;   ///< access size in bytes
    std::uint8_t flags = 0;  ///< TraceFlags bit set

    bool eventPhase() const { return flags & TraceFlagEventPhase; }
    bool swapPart() const { return flags & TraceFlagSwap; }

    bool
    operator==(const TraceRecord &) const = default;
};

/**
 * Collects the reference stream of one run and writes CSBT files.
 *
 * One recorder serves every core of a system; cores stamp their own
 * index into each record.  Appending is O(1) amortized; the recorder
 * never reorders (the simulator's tick loop already delivers records
 * in the canonical order the format requires).
 */
class TraceRecorder
{
  public:
    /**
     * @param num_cpus  cores feeding this recorder (header field)
     * @param line_bytes cache-line size of the recorded system; a
     *        replay system must be configured identically
     */
    explicit TraceRecorder(std::uint32_t num_cpus = 1,
                           std::uint32_t line_bytes = 64)
        : numCpus_(num_cpus), lineBytes_(line_bytes)
    {}

    /** Append one reference in issue order. */
    void append(const TraceRecord &rec) { records_.push_back(rec); }

    const std::vector<TraceRecord> &records() const { return records_; }
    std::uint32_t numCpus() const { return numCpus_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Serialize the stream as CSBT v1 to @p os. */
    void writeTo(std::ostream &os) const;

    /** Serialize to @p path; throws FatalError when unwritable. */
    void writeFile(const std::string &path) const;

  private:
    std::uint32_t numCpus_;
    std::uint32_t lineBytes_;
    std::vector<TraceRecord> records_;
};

/**
 * A parsed CSBT trace, ready for replay or text dumping.
 *
 * Loading validates magic, version, record size and stream length and
 * throws FatalError on any mismatch (corrupt or truncated files are
 * rejected, never silently shortened).
 */
class MemTrace
{
  public:
    MemTrace() = default;

    /** Parse a CSBT stream; throws FatalError on malformed input. */
    static MemTrace readFrom(std::istream &is);

    /** Parse the CSBT file at @p path; throws FatalError on error. */
    static MemTrace loadFile(const std::string &path);

    /** Build directly from an in-memory recorder (tests, benches). */
    static MemTrace fromRecorder(const TraceRecorder &rec);

    std::uint32_t numCpus() const { return numCpus_; }
    std::uint32_t lineBytes() const { return lineBytes_; }
    const std::vector<TraceRecord> &records() const { return records_; }

    /** Records of core @p cpu, preserving stream order. */
    std::vector<TraceRecord> recordsForCpu(std::uint8_t cpu) const;

    /**
     * Text dump mode: one line per record
     * (`tick op cpu pid addr size value flags`), preceded by a header
     * comment -- the human-readable view docs/TRACE_FORMAT.md shows.
     */
    void dumpText(std::ostream &os) const;

  private:
    std::uint32_t numCpus_ = 1;
    std::uint32_t lineBytes_ = 64;
    std::vector<TraceRecord> records_;
};

} // namespace csb::sim

#endif // CSB_SIM_TRACE_RECORDER_HH
