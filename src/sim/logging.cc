#include "logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace csb {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet);
}

bool
logQuiet()
{
    return quietFlag.load();
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " (" << file << ":" << line << ")";
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    if (!logQuiet())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!logQuiet())
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace csb
