/**
 * @file
 * Chrome trace-event (chrome://tracing / Perfetto) JSON writer.
 *
 * A structured companion to the textual trace channels: components
 * emit duration spans (bus transactions, CSB line lifetimes, NI wire
 * occupancy) and instant events onto named tracks.  Events are
 * buffered in memory and written as one JSON document — sorted by
 * timestamp — when the trace is flushed.
 *
 * Enable from the environment:
 *
 *     CSBSIM_TRACE_JSON=out.json ./build/examples/quickstart
 *
 * then load out.json in chrome://tracing (or ui.perfetto.dev).  One
 * simulator tick is mapped to one microsecond of trace time.  Tests
 * can point the writer at any std::ostream with jsonEnable().
 */

#ifndef CSB_SIM_TRACE_JSON_HH
#define CSB_SIM_TRACE_JSON_HH

#include <ostream>
#include <string>
#include <vector>

#include "types.hh"

namespace csb::sim::trace {

/** One key/value argument attached to a trace event. */
struct SpanArg
{
    std::string key;
    std::string value;
};

/**
 * @return true when JSON tracing is active (cheap check; reads
 * CSBSIM_TRACE_JSON once lazily, like the textual channels).
 */
bool jsonEnabled();

/** Direct JSON trace output to @p os (not owned); null disables. */
void jsonEnable(std::ostream *os);

/** Open @p path and buffer events until flush; empty path disables. */
void jsonEnableFile(const std::string &path);

/** Drop buffered events and disable JSON tracing. */
void jsonDisable();

/**
 * Sort buffered events by timestamp and write the trace document to
 * the active sink, then clear the buffer.  Called automatically at
 * process exit when a file sink from CSBSIM_TRACE_JSON is active.
 */
void jsonFlush();

/** Number of events currently buffered (for tests). */
std::size_t jsonPendingEvents();

/**
 * Record a duration span ("ph":"X") on track @p track.
 *
 * @param track logical timeline (becomes a tid row in the viewer).
 * @param name  span label, e.g. "write 64B".
 * @param start first tick covered by the span.
 * @param end   one past the work; clamped so duration is >= 1 tick.
 * @param args  optional key/value details shown on selection.
 */
void jsonSpan(const std::string &track, const std::string &name,
              Tick start, Tick end, std::vector<SpanArg> args = {});

/** Record an instant event ("ph":"i") at @p ts on track @p track. */
void jsonInstant(const std::string &track, const std::string &name,
                 Tick ts, std::vector<SpanArg> args = {});

/** Render @p addr as "0x..." for use in span args. */
std::string hexArg(Addr addr);

} // namespace csb::sim::trace

#endif // CSB_SIM_TRACE_JSON_HH
