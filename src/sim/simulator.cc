#include "simulator.hh"

#include <algorithm>
#include <sstream>

#include "logging.hh"
#include "trace.hh"

namespace csb::sim {

Simulator::Simulator()
{
    // The newest simulator provides trace timestamps; in practice one
    // simulator is live at a time per measurement.
    trace::setTickSource([this] { return curTick(); });
}

Simulator::~Simulator()
{
    // Never leave a dangling tick source behind.
    trace::setTickSource(nullptr);
}

void
Simulator::registerClocked(Clocked *obj)
{
    clocked_.push_back(obj);
    order_dirty_ = true;
}

void
Simulator::stepOne()
{
    if (order_dirty_) {
        std::stable_sort(clocked_.begin(), clocked_.end(),
                         [](const Clocked *a, const Clocked *b) {
                             return a->evalOrder() < b->evalOrder();
                         });
        order_dirty_ = false;
    }

    Tick now = events_.curTick();
    events_.serviceUntil(now);
    for (Clocked *obj : clocked_) {
        if (obj->clockDomain().isEdge(now))
            obj->tick();
    }
    events_.serviceUntil(now + 1);
}

Tick
Simulator::run(const std::function<bool()> &done, Tick max_ticks)
{
    Tick start = curTick();
    lastProgressTick_ = std::max(lastProgressTick_, start);
    while (curTick() - start < max_ticks) {
        if (done())
            return curTick();
        if (watchdogWindow_ &&
            curTick() - lastProgressTick_ >= watchdogWindow_) {
            watchdogFire(start);
        }
        stepOne();
    }
    if (!done()) {
        ++tickLimitHits_;
        csb_warn("Simulator::run: tick limit of ", max_ticks,
                 " ticks exhausted at tick ", curTick(),
                 " with the workload unfinished (deadlock or "
                 "undersized budget)");
    }
    return curTick();
}

void
Simulator::watchdogFire(Tick start)
{
    std::ostringstream diag;
    diag << "watchdog: no forward progress for " << watchdogWindow_
         << " ticks (now=" << curTick()
         << ", last progress=" << lastProgressTick_
         << ", run started=" << start << ")\n";
    diag << "  event queue: " << events_.numPending() << " pending";
    if (!events_.empty())
        diag << ", next at tick " << events_.nextTick();
    diag << ", " << events_.numProcessed() << " processed\n";
    for (const Clocked *obj : clocked_) {
        std::ostringstream state;
        obj->debugDump(state);
        if (state.str().empty())
            continue;
        diag << "  " << obj->name() << ": " << state.str() << "\n";
    }
    csb_fatal(diag.str());
}

Tick
Simulator::runFor(Tick n)
{
    for (Tick i = 0; i < n; ++i)
        stepOne();
    return curTick();
}

} // namespace csb::sim
