#include "simulator.hh"

#include <algorithm>
#include <sstream>

#include "logging.hh"
#include "trace.hh"

namespace csb::sim {

Simulator::Simulator()
{
    // The newest simulator on this thread provides trace timestamps;
    // the source is thread-local, so concurrent sweep workers each
    // stamp trace lines with their own simulator's ticks.
    trace::setTickSource([this] { return curTick(); });
}

Simulator::~Simulator()
{
    // Never leave a dangling tick source behind.
    trace::setTickSource(nullptr);
}

void
Clocked::gate()
{
    if (gated_ || !sim_)
        return;
    gated_ = true;
    sim_->noteGated();
}

void
Clocked::ungate()
{
    if (!gated_)
        return;
    gated_ = false;
    if (sim_)
        sim_->noteUngated();
}

void
Simulator::noteGated()
{
    ++gatedCount_;
    csb_assert(gatedCount_ <= clocked_.size(), "gated-count overflow");
}

void
Simulator::noteUngated()
{
    csb_assert(gatedCount_ > 0, "gated-count underflow");
    --gatedCount_;
}

void
Simulator::registerClocked(Clocked *obj)
{
    csb_assert(obj->sim_ == nullptr || obj->sim_ == this,
               obj->name(), " registered with two simulators");
    obj->sim_ = this;
    clocked_.push_back(obj);
    order_dirty_ = true;
}

void
Simulator::stepOne()
{
    if (order_dirty_) {
        std::stable_sort(clocked_.begin(), clocked_.end(),
                         [](const Clocked *a, const Clocked *b) {
                             return a->evalOrder() < b->evalOrder();
                         });
        order_dirty_ = false;
    }

    Tick now = events_.curTick();
    events_.serviceUntil(now);
    for (Clocked *obj : clocked_) {
        if (!obj->gated_ && obj->clockDomain().isEdge(now))
            obj->tick();
    }
    events_.serviceUntil(now + 1);
}

Tick
Simulator::quiescentJump(Tick budget_left) const
{
    // Only safe when nothing can change state between events: every
    // clocked component has gated itself off (trivially true for a
    // purely event-driven simulation with no clocked components).
    if (gatedCount_ != clocked_.size() || budget_left == 0)
        return 0;
    Tick now = events_.curTick();
    // Land one tick short of the next event so stepOne()'s trailing
    // serviceUntil fires it exactly as per-tick stepping would.
    Tick jump = budget_left - 1;
    if (watchdogWindow_) {
        // Do not jump past the watchdog deadline; run() re-checks it
        // at the landing tick, so it fires at the identical tick as
        // in per-tick mode.
        Tick deadline = lastProgressTick_ + watchdogWindow_;
        if (deadline <= now)
            return 0;  // runFor() never fires the watchdog; just step
        jump = std::min(jump, deadline - now);
    }
    Tick next = events_.nextTick();
    if (next <= now)
        return 0;
    if (next != maxTick)
        jump = std::min(jump, next - 1 - now);
    return jump;
}

Tick
Simulator::run(const std::function<bool()> &done, Tick max_ticks)
{
    Tick start = curTick();
    lastProgressTick_ = std::max(lastProgressTick_, start);
    while (curTick() - start < max_ticks) {
        if (done())
            return curTick();
        if (watchdogWindow_ &&
            curTick() - lastProgressTick_ >= watchdogWindow_) {
            watchdogFire(start);
        }
        if (idleFastForward_) {
            Tick jump = quiescentJump(max_ticks - (curTick() - start));
            if (jump > 0) {
                events_.advanceTo(curTick() + jump);
                fastForwardedTicks_ += jump;
                continue;
            }
        }
        stepOne();
    }
    if (!done()) {
        ++tickLimitHits_;
        csb_warn("Simulator::run: tick limit of ", max_ticks,
                 " ticks exhausted at tick ", curTick(),
                 " with the workload unfinished (deadlock or "
                 "undersized budget)");
    }
    return curTick();
}

void
Simulator::watchdogFire(Tick start)
{
    std::ostringstream diag;
    diag << "watchdog: no forward progress for " << watchdogWindow_
         << " ticks (now=" << curTick()
         << ", last progress=" << lastProgressTick_
         << ", run started=" << start << ")\n";
    diag << "  event queue: " << events_.numPending() << " pending";
    if (!events_.empty())
        diag << ", next at tick " << events_.nextTick();
    diag << ", " << events_.numProcessed() << " processed\n";
    for (const Clocked *obj : clocked_) {
        std::ostringstream state;
        obj->debugDump(state);
        if (state.str().empty())
            continue;
        diag << "  " << obj->name() << ": " << state.str() << "\n";
    }
    csb_fatal(diag.str());
}

Tick
Simulator::runFor(Tick n)
{
    Tick start = curTick();
    while (curTick() - start < n) {
        Tick jump = quiescentJump(n - (curTick() - start));
        if (jump > 0) {
            events_.advanceTo(curTick() + jump);
            fastForwardedTicks_ += jump;
            continue;
        }
        stepOne();
    }
    return curTick();
}

} // namespace csb::sim
